/**
 * @file
 * Ablation study of the network-aware manager's design choices (not a
 * paper figure; backs the DESIGN.md discussion). Each row disables one
 * Section-VI ingredient and reports power and performance deltas on
 * big networks at alpha = 5% with VWL+ROO links.
 */

#include <cstdio>

#include "bench_common.hh"

namespace
{

using namespace memnet;
using namespace memnet::bench;

struct Variant
{
    const char *name;
    AwareFeatures features;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchIo io("ablation_aware", argc, argv);

    printBanner(
        "Ablation — network-aware management ingredients",
        "Big networks, VWL+ROO, alpha = 5%; averaged over 14 workloads "
        "x 4 topologies.\nEach variant disables one Section-VI "
        "mechanism.");

    std::vector<Variant> variants;
    variants.push_back({"full scheme", {}});
    {
        AwareFeatures f;
        f.ispIterations = 1;
        variants.push_back({"1 ISP iteration", f});
    }
    {
        AwareFeatures f;
        f.ispIterations = 2;
        variants.push_back({"2 ISP iterations", f});
    }
    {
        AwareFeatures f;
        f.congestionDiscount = false;
        variants.push_back({"no congestion discount", f});
    }
    {
        AwareFeatures f;
        f.wakeCoordination = false;
        variants.push_back({"no wakeup coordination", f});
    }
    {
        AwareFeatures f;
        f.grantPool = false;
        variants.push_back({"no AMS grant pool", f});
    }

    Runner runner;

    return io.run(runner, [&] {
        TextTable t({"variant", "power reduction vs FP",
                     "avg perf degradation", "max perf degradation"});
        for (const Variant &v : variants) {
            double pr = 0.0, deg = 0.0, mx = -1.0;
            int n = 0;
            for (TopologyKind topo : allTopologies()) {
                for (const std::string &wl : workloadNames()) {
                    SystemConfig cfg =
                        makeConfig(wl, topo, SizeClass::Big,
                                   BwMechanism::Vwl, true, Policy::Aware,
                                   5.0);
                    cfg.aware = v.features;
                    pr += runner.powerReduction(cfg);
                    const double d = runner.degradation(cfg);
                    deg += d;
                    mx = std::max(mx, d);
                    ++n;
                }
            }
            t.addRow({v.name, TextTable::pct(pr / n),
                      TextTable::pct(deg / n), TextTable::pct(mx)});
        }
        t.print();

        std::printf(
            "\nExpected reading: fewer ISP iterations leave AMS stranded "
            "at busy links;\ndisabling wakeup coordination exposes "
            "response-link wake latency (worse\nperformance or less ROO "
            "saving); the grant pool mainly trims the tail.\n");
    });
}
