/**
 * @file
 * Alpha sweep (backs the Section V-C observation that raising alpha
 * past a few percent buys little extra power for growing performance
 * loss, and the Section VII-A operating point at alpha = 30%).
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace memnet;
    using namespace memnet::bench;

    BenchIo io("alpha_sweep", argc, argv);

    printBanner(
        "Alpha sweep — power/performance frontier",
        "Big networks, VWL+ROO, averaged over 14 workloads x 4 "
        "topologies.\nPaper: doubling alpha 2.5%->5% adds only ~3% "
        "power reduction while\nnearly doubling the average slowdown.");

    Runner runner;

    return io.run(runner, [&] {
        TextTable t({"alpha", "unaware: power", "unaware: perf",
                     "aware: power", "aware: perf"});
        for (double alpha : {1.0, 2.5, 5.0, 10.0, 30.0}) {
            double pr[2] = {0, 0}, deg[2] = {0, 0};
            int n = 0;
            for (TopologyKind topo : allTopologies()) {
                for (const std::string &wl : workloadNames()) {
                    int i = 0;
                    for (Policy p : {Policy::Unaware, Policy::Aware}) {
                        const SystemConfig cfg =
                            makeConfig(wl, topo, SizeClass::Big,
                                       BwMechanism::Vwl, true, p, alpha);
                        pr[i] += runner.powerReduction(cfg);
                        deg[i] += runner.degradation(cfg);
                        ++i;
                    }
                    ++n;
                }
            }
            t.addRow({TextTable::pct(alpha / 100, 1),
                      TextTable::pct(pr[0] / n), TextTable::pct(deg[0] / n),
                      TextTable::pct(pr[1] / n),
                      TextTable::pct(deg[1] / n)});
        }
        t.print();
    });
}
