/**
 * @file
 * Shared helpers for the per-figure bench binaries.
 */

#ifndef MEMNET_BENCH_BENCH_COMMON_HH
#define MEMNET_BENCH_BENCH_COMMON_HH

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "memnet/experiment.hh"
#include "memnet/journal.hh"
#include "memnet/parallel.hh"
#include "memnet/report.hh"
#include "obs/prof.hh"
#include "sim/log.hh"

namespace memnet
{
namespace bench
{

/**
 * Sweep-wide partitioned-kernel selection, installed by BenchIo from
 * --partitions/--partition-sync/--lax-window-ns and applied by
 * makeConfig so every cell of a bench sweep shards the same way.
 * Defaults match SystemConfig (serial kernel).
 */
struct PartitionOpts
{
    int partitions = 1;
    PartitionSync sync = PartitionSync::Barrier;
    Tick laxWindowPs = us(10);
};

inline PartitionOpts &
partitionOpts()
{
    static PartitionOpts opts;
    return opts;
}

/**
 * Shared command-line handling for the bench binaries:
 *
 *   --json <path>      dump every run as machine-readable JSON
 *                      (schema: ci/bench_schema.json) after the tables
 *   --jobs <n>         simulate the sweep on n worker threads
 *                      (0 = all hardware threads; default 1 = serial)
 *   --profile <path>   enable the host-side profiler and dump the
 *                      merged phase tree of the whole sweep (".json"
 *                      = JSON tree, else FlameGraph collapsed stacks)
 *   --partitions <n>   shard every run across n event-queue
 *                      partitions (1 = serial kernel; see
 *                      docs/PERFORMANCE.md)
 *   --partition-sync <barrier|lax>
 *                      barrier (deterministic, serial-identical) or
 *                      lax (fast screening)
 *   --lax-window-ns <t>
 *                      lax-mode window length
 *
 * Crash-safety flags (docs/ROBUSTNESS.md):
 *
 *   --journal <path>   append every freshly executed run to a
 *                      checksummed JSONL journal, flushed per record
 *                      (schema: ci/journal_schema.json)
 *   --resume <path>    pre-load results from a journal; only configs
 *                      without a valid record re-simulate, and the
 *                      final output is byte-identical to an
 *                      uninterrupted run
 *   --failure-policy <abort|isolate>
 *                      abort (default): rethrow the first sweep
 *                      failure after the pool drains; isolate: record
 *                      failing configs, finish the sweep, exit 1 with
 *                      partial results
 *   --config-timeout <seconds>
 *                      hang watchdog: per-config wall-clock budget,
 *                      enforced by cooperative cancellation; expiry is
 *                      routed through the failure policy
 *   --failure-manifest <path>
 *                      where the isolate policy writes its
 *                      machine-readable failure report (schema:
 *                      ci/failure_manifest_schema.json)
 *
 * Usage:
 *   int main(int argc, char **argv) {
 *       bench::BenchIo io("fig5_power_breakdown", argc, argv);
 *       Runner runner;
 *       return io.run(runner, [&] {
 *           ...sweep + print tables...
 *       });
 *   }
 *
 * run() executes the bench body twice when --jobs > 1: a silent
 * collect pass records every config the body requests (Runner returns
 * zeroed placeholders), a ParallelRunner simulates them concurrently,
 * and a replay pass re-runs the body against the warm cache to print
 * real numbers. Results are bit-identical to serial because each run
 * owns its EventQueue and seeded RNGs — only wall-clock differs.
 */
class BenchIo
{
  public:
    BenchIo(const std::string &bench, int argc, char **argv)
        : bench(bench)
    {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--json" && i + 1 < argc) {
                jsonPath = argv[++i];
            } else if (arg == "--jobs" && i + 1 < argc) {
                jobs = std::atoi(argv[++i]);
            } else if (arg == "--profile" && i + 1 < argc) {
                profilePath = argv[++i];
            } else if (arg == "--journal" && i + 1 < argc) {
                journalPath = argv[++i];
            } else if (arg == "--resume" && i + 1 < argc) {
                resumePath = argv[++i];
            } else if (arg == "--failure-policy" && i + 1 < argc) {
                if (!parseFailurePolicy(argv[++i], &policy)) {
                    std::fprintf(stderr,
                                 "%s: --failure-policy must be "
                                 "'abort' or 'isolate' (got '%s')\n",
                                 argv[0], argv[i]);
                    std::exit(2);
                }
            } else if (arg == "--config-timeout" && i + 1 < argc) {
                configTimeoutSec = std::atof(argv[++i]);
            } else if (arg == "--failure-manifest" && i + 1 < argc) {
                manifestPath = argv[++i];
            } else if (arg == "--partitions" && i + 1 < argc) {
                partitionOpts().partitions = std::atoi(argv[++i]);
                if (partitionOpts().partitions < 1) {
                    std::fprintf(stderr,
                                 "%s: --partitions must be >= 1\n",
                                 argv[0]);
                    std::exit(2);
                }
            } else if (arg == "--partition-sync" && i + 1 < argc) {
                if (!parsePartitionSync(argv[++i],
                                        &partitionOpts().sync)) {
                    std::fprintf(stderr,
                                 "%s: --partition-sync must be "
                                 "'barrier' or 'lax' (got '%s')\n",
                                 argv[0], argv[i]);
                    std::exit(2);
                }
            } else if (arg == "--lax-window-ns" && i + 1 < argc) {
                partitionOpts().laxWindowPs =
                    ns(std::atol(argv[++i]));
                if (partitionOpts().laxWindowPs <= 0) {
                    std::fprintf(
                        stderr,
                        "%s: --lax-window-ns must be positive\n",
                        argv[0]);
                    std::exit(2);
                }
            } else {
                std::fprintf(
                    stderr,
                    "usage: %s [--json <path>] [--jobs <n>] "
                    "[--profile <path>] [--journal <path>] "
                    "[--resume <path>] "
                    "[--failure-policy <abort|isolate>] "
                    "[--config-timeout <seconds>] "
                    "[--failure-manifest <path>] "
                    "[--partitions <n>] "
                    "[--partition-sync <barrier|lax>] "
                    "[--lax-window-ns <t>]\n",
                    argv[0]);
                std::exit(2);
            }
        }
    }

    /**
     * Execute the bench body (serially, or collect/execute/replay when
     * --jobs > 1) and then write the JSON dump. Returns the exit code.
     */
    int
    run(Runner &runner, const std::function<void()> &body) const
    {
        if (!profilePath.empty())
            prof::setEnabled(true);

        if (!resumePath.empty()) {
            std::map<std::string, RunResult> pool;
            JournalLoadStats stats;
            std::string err;
            if (!loadJournal(resumePath, &pool, &stats, &err)) {
                memnet_warn("--resume failed: ", err);
                return 1;
            }
            memnet_inform("resume: loaded ", stats.loaded,
                          " result(s) from ", resumePath, " (",
                          stats.corrupt, " damaged record(s) skipped)");
            runner.addResumePool(std::move(pool));
        }

        RunJournal journal(journalPath);
        if (!journalPath.empty()) {
            if (!journal.open())
                return 1;
            runner.setJournal(&journal);
        }

        int rc = 0;
        // Journal/resume work through Runner hooks alone; the engine
        // (collect/execute/replay) is needed for parallelism, failure
        // isolation, and the watchdog's monitor thread.
        const bool needEngine = resolveJobs(jobs) > 1 ||
                                policy == FailurePolicy::Isolate ||
                                configTimeoutSec > 0.0;
        if (!needEngine) {
            body();
        } else {
            ParallelRunner engine(runner, jobs);
            engine.setFailurePolicy(policy);
            engine.setConfigTimeout(configTimeoutSec);
            engine.run(collectPass(runner, body));
            body();
            rc = reportFailures(engine);
        }
        runner.setJournal(nullptr);
        if (!journalPath.empty())
            memnet_inform("journal: appended ", journal.appended(),
                          " record(s) to ", journal.path());
        const int frc = finish(runner);
        return rc != 0 ? rc : frc;
    }

    /** Write the JSON dump (if requested); returns the exit code. */
    int
    finish(const Runner &runner) const
    {
        // The profiler snapshot merges the whole sweep — worker
        // threads included, their trees are retained past the join.
        if (!profilePath.empty() && !prof::writeSnapshotFile(profilePath))
            return 1;
        if (jsonPath.empty())
            return 0;
        std::ofstream os(jsonPath);
        if (!os) {
            memnet_warn("cannot open --json output file: ", jsonPath);
            return 1;
        }
        writeBenchResultsJson(os, bench, runner.results());
        return os ? 0 : 1;
    }

  private:
    /**
     * Isolate-policy epilogue: summarize the casualties and write the
     * failure manifest when a path was given. Returns 1 when anything
     * failed, so the sweep exits non-zero alongside partial results.
     */
    int
    reportFailures(const ParallelRunner &engine) const
    {
        const std::vector<RunFailure> &failures = engine.failures();
        if (failures.empty())
            return 0;
        memnet_warn("sweep finished with ", failures.size(),
                    " failed config(s); their rows report zeros and "
                    "they are absent from --json output");
        for (const RunFailure &f : failures)
            memnet_warn("  failed: ", f.config.describe(),
                        f.timeout ? " [watchdog]" : "", ": ",
                        f.message);
        if (!manifestPath.empty()) {
            std::ofstream os(manifestPath);
            if (!os) {
                memnet_warn(
                    "cannot open --failure-manifest output file: ",
                    manifestPath);
                return 1;
            }
            writeFailureManifest(os, bench,
                                 failurePolicyName(
                                     engine.failurePolicy()),
                                 engine.configTimeout(), failures);
        }
        return 1;
    }

    /**
     * Run the body in collect mode with stdout pointed at /dev/null and
     * warnings muted, so the pass that only discovers configs produces
     * no visible output (tables full of placeholder zeros, duplicated
     * warnings). Returns the configs the body requested.
     */
    static std::vector<SystemConfig>
    collectPass(Runner &runner, const std::function<void()> &body)
    {
        std::fflush(stdout);
        const int saved = ::dup(STDOUT_FILENO);
        const int devnull = ::open("/dev/null", O_WRONLY);
        if (devnull >= 0) {
            ::dup2(devnull, STDOUT_FILENO);
            ::close(devnull);
        }
        LogSink prev = setLogSink([](LogLevel, const std::string &) {});

        runner.beginCollect();
        body();
        std::vector<SystemConfig> configs = runner.endCollect();

        setLogSink(std::move(prev));
        std::fflush(stdout);
        if (saved >= 0) {
            ::dup2(saved, STDOUT_FILENO);
            ::close(saved);
        }
        return configs;
    }

    std::string bench;
    std::string jsonPath;
    std::string profilePath;
    std::string journalPath;
    std::string resumePath;
    std::string manifestPath;
    FailurePolicy policy = FailurePolicy::Abort;
    double configTimeoutSec = 0.0;
    int jobs = 1;
};

/** Construct the standard evaluation config for one cell of a sweep. */
inline SystemConfig
makeConfig(const std::string &workload, TopologyKind topo,
           SizeClass size, BwMechanism mech, bool roo, Policy policy,
           double alpha_pct = 5.0)
{
    SystemConfig cfg;
    cfg.workload = workload;
    cfg.topology = topo;
    cfg.sizeClass = size;
    cfg.mechanism = mech;
    cfg.roo = roo;
    cfg.policy = policy;
    cfg.alphaPct = alpha_pct;
    cfg.warmup = us(100);
    // Three epochs of measurement keep the full sweep tractable on one
    // core; MEMNET_SIM_US raises fidelity when desired.
    cfg.measure = us(300);
    cfg.partitions = partitionOpts().partitions;
    cfg.partitionSync = partitionOpts().sync;
    cfg.laxWindowPs = partitionOpts().laxWindowPs;
    return cfg;
}

/** Mechanism+ROO combinations of the main evaluation (Figures 11-17). */
struct Scheme
{
    const char *name;
    BwMechanism mech;
    bool roo;
};

inline const std::vector<Scheme> &
mainSchemes()
{
    static const std::vector<Scheme> v = {
        {"VWL", BwMechanism::Vwl, false},
        {"ROO", BwMechanism::None, true},
        {"VWL+ROO", BwMechanism::Vwl, true},
    };
    return v;
}

/** Average a per-workload metric over all fourteen workloads. */
inline double
averageOverWorkloads(
    Runner &runner,
    const std::function<double(Runner &, const std::string &)> &metric)
{
    double sum = 0.0;
    for (const std::string &wl : workloadNames())
        sum += metric(runner, wl);
    return sum / static_cast<double>(workloadNames().size());
}

/** Maximum of a per-workload metric over all fourteen workloads. */
inline double
maxOverWorkloads(
    Runner &runner,
    const std::function<double(Runner &, const std::string &)> &metric)
{
    double best = -1e300;
    for (const std::string &wl : workloadNames()) {
        const double v = metric(runner, wl);
        if (v > best)
            best = v;
    }
    return best;
}

/** Per-HMC power averaged over workloads for one configured scheme. */
inline double
avgPerHmcPower(Runner &runner, TopologyKind topo, SizeClass size,
               BwMechanism mech, bool roo, Policy policy, double alpha)
{
    return averageOverWorkloads(
        runner, [&](Runner &r, const std::string &wl) {
            return r
                .get(makeConfig(wl, topo, size, mech, roo, policy,
                                alpha))
                .perHmc.totalW();
        });
}

} // namespace bench
} // namespace memnet

#endif // MEMNET_BENCH_BENCH_COMMON_HH
