/**
 * @file
 * Extension experiment (the paper's declared future work, Section
 * III-C): power implications of multi-channel memory networks.
 *
 * Compares line-interleaved vs. partitioned address spreading across
 * 1/2/4 channels, full power and network-aware managed. Partitioning
 * concentrates hot data in few channels, so management can idle the
 * cold channels almost entirely — the channel-scale analogue of the
 * consolidation argument in Section VII-A.
 */

#include <cstdio>

#include "bench_common.hh"
#include "memnet/multichannel.hh"

int
main()
{
    using namespace memnet;
    using namespace memnet::bench;

    printBanner(
        "Extension — multi-channel memory networks",
        "Workload mixC (hot head, cold tail), star topology, big-study "
        "mapping,\nVWL+ROO, alpha = 5%. Power in W for the whole "
        "system.");

    TextTable t({"channels", "spread", "policy", "modules", "power (W)",
                 "idle I/O", "Mreads/s", "min/max chan util"});

    for (int channels : {1, 2, 4}) {
        for (ChannelSpread spread :
             {ChannelSpread::InterleaveLines, ChannelSpread::Partition}) {
            if (channels == 1 &&
                spread == ChannelSpread::Partition) {
                continue; // identical to interleave with one channel
            }
            for (Policy policy : {Policy::FullPower, Policy::Aware}) {
                MultiChannelConfig mc;
                mc.base = makeConfig("mixC", TopologyKind::Star,
                                     SizeClass::Big, BwMechanism::Vwl,
                                     true, policy, 5.0);
                if (policy == Policy::FullPower) {
                    mc.base.mechanism = BwMechanism::None;
                    mc.base.roo = false;
                }
                mc.channels = channels;
                mc.spread = spread;
                const MultiChannelResult r = runMultiChannel(mc);
                double umin = 1.0, umax = 0.0;
                for (double u : r.channelUtil) {
                    umin = std::min(umin, u);
                    umax = std::max(umax, u);
                }
                t.addRow({std::to_string(channels),
                          channelSpreadName(spread),
                          policyName(policy),
                          std::to_string(r.totalModules),
                          TextTable::fmt(r.totalPowerW),
                          TextTable::pct(r.idleIoFrac),
                          TextTable::fmt(r.readsPerSec / 1e6, 0),
                          TextTable::pct(umin, 0) + "/" +
                              TextTable::pct(umax, 0)});
            }
        }
    }
    t.print();

    std::printf(
        "\nExpected reading: interleaving equalizes channel "
        "utilization (min~max);\npartitioning skews it, and managed "
        "partitioned systems save the most\npower because whole cold "
        "channels drop to the lowest link modes.\n");
    return 0;
}
