/**
 * @file
 * Fault sweep — power, performance, and reliability counters as link
 * faults grow more frequent (robustness extension; not a paper figure).
 *
 * Two sweeps on the daisy chain, mixC, big network, VWL+ROO:
 *  1. retrain flapping with shrinking MTBF (transient outages), and
 *  2. steady error bursts with rising flit error rate (CRC retries).
 * Each row compares full-power against aware management: managed runs
 * must degrade gracefully — keep their power advantage while the
 * watchdog guards that no packet ever starves.
 */

#include <cstdio>
#include <string>

#include "bench_common.hh"
#include "memnet/report.hh"

namespace
{

using namespace memnet;
using namespace memnet::bench;

SystemConfig
faultConfig(Policy policy)
{
    SystemConfig cfg = makeConfig("mixC", TopologyKind::DaisyChain,
                                  SizeClass::Big, BwMechanism::Vwl,
                                  true, policy);
    return cfg;
}

std::string
num(double v, int prec = 2)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.*f", prec, v);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchIo io("fault_sweep", argc, argv);
    Runner runner;

    return io.run(runner, [&] {
        printBanner(
            "Fault sweep — graceful degradation under link faults",
            "Daisy chain, mixC, big network, VWL+ROO. Transient retrain\n"
            "flapping (MTBF sweep) and error-rate bursts (CRC retries).\n"
            "Aware management must keep its power advantage as faults\n"
            "grow; the stalled-read watchdog aborts on any wedged packet.");

        std::printf("\nRetrain flapping (2 us windows, per-link MTBF):\n");
        TextTable flap({"MTBF", "policy", "W/HMC", "reads/s (M)",
                        "lat (ns)", "retrains", "retrain us"});
        for (Tick mtbf : {Tick{0}, us(500), us(200), us(50)}) {
            for (Policy p : {Policy::FullPower, Policy::Aware}) {
                SystemConfig cfg = faultConfig(p);
                cfg.faults.flapMeanPeriodPs = mtbf;
                cfg.faults.flapWindowPs = us(2);
                const RunResult &r = runner.get(cfg);
                flap.addRow(
                    {mtbf ? num(toSeconds(mtbf) * 1e6, 0) + " us" : "none",
                     policyName(p), num(r.perHmc.totalW()),
                     num(r.readsPerSec / 1e6, 1), num(r.avgReadLatencyNs, 0),
                     std::to_string(r.reliability.retrains),
                     num(r.reliability.retrainSeconds * 1e6, 1)});
            }
        }
        flap.print();

        std::printf("\nError bursts (whole measurement window, all links):\n");
        TextTable burst({"flit error rate", "policy", "W/HMC",
                         "reads/s (M)", "lat (ns)", "CRC retries"});
        for (double fer : {0.0, 0.005, 0.02, 0.05}) {
            for (Policy p : {Policy::FullPower, Policy::Aware}) {
                SystemConfig cfg = faultConfig(p);
                if (fer > 0.0) {
                    cfg.faults.events.push_back({FaultKind::ErrorBurst, 0,
                                                 -1, cfg.warmup + cfg.measure,
                                                 16, fer});
                }
                const RunResult &r = runner.get(cfg);
                burst.addRow({num(fer, 3), policyName(p),
                              num(r.perHmc.totalW()),
                              num(r.readsPerSec / 1e6, 1),
                              num(r.avgReadLatencyNs, 0),
                              std::to_string(r.reliability.retries)});
            }
        }
        burst.print();

        std::printf("\nOne permanent lane failure (root request link -> x4"
                    " mid-measurement):\n");
        TextTable lane({"policy", "W/HMC", "reads/s (M)", "lat (ns)",
                        "degraded us", "violations"});
        for (Policy p : {Policy::FullPower, Policy::Aware}) {
            SystemConfig cfg = faultConfig(p);
            // Shortly after warmup, so the failure lands inside the window
            // even when MEMNET_SIM_US shrinks the measurement.
            cfg.faults.events.push_back(
                {FaultKind::LaneFailure, cfg.warmup + us(20), 0, us(1), 4,
                 0.0});
            const RunResult &r = runner.get(cfg);
            lane.addRow({policyName(p), num(r.perHmc.totalW()),
                         num(r.readsPerSec / 1e6, 1),
                         num(r.avgReadLatencyNs, 0),
                         num(r.reliability.degradedSeconds * 1e6, 1),
                         std::to_string(r.violations)});
        }
        lane.print();
    });
}
