/**
 * @file
 * Figure 11: average power per HMC under network-unaware management
 * for VWL, ROO and VWL+ROO links at alpha = 2.5% and 5%, against the
 * full-power baseline, per topology and network size.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace memnet;
    using namespace memnet::bench;

    BenchIo io("fig11_unaware_power", argc, argv);

    printBanner(
        "Figure 11 — per-HMC power under network-unaware management",
        "Paper: ~14% average total power reduction for small networks, "
        "~24% for big;\nstar and DDRx-like benefit most; ternary tree "
        "least (leakage-heavy).");

    Runner runner;

    return io.run(runner, [&] {
        for (SizeClass size : {SizeClass::Small, SizeClass::Big}) {
            std::printf("\n--- %s network study (power per HMC, W) ---\n",
                        sizeClassName(size));
            TextTable t({"topology", "FP", "2.5% VWL", "5% VWL", "2.5% ROO",
                         "5% ROO", "2.5% VWL+ROO", "5% VWL+ROO"});
            const int kCols = 7;
            double col_sum[kCols] = {};
            for (TopologyKind topo : allTopologies()) {
                std::vector<std::string> row = {topologyName(topo)};
                int c = 0;
                const double fp = avgPerHmcPower(
                    runner, topo, size, BwMechanism::None, false,
                    Policy::FullPower, 5.0);
                row.push_back(TextTable::fmt(fp));
                col_sum[c++] += fp;
                for (const Scheme &s : mainSchemes()) {
                    for (double alpha : {2.5, 5.0}) {
                        const double w = avgPerHmcPower(
                            runner, topo, size, s.mech, s.roo,
                            Policy::Unaware, alpha);
                        row.push_back(TextTable::fmt(w));
                        col_sum[c++] += w;
                    }
                }
                // Reorder columns: we computed VWL(2.5,5), ROO(2.5,5),
                // VWL+ROO(2.5,5) which matches the header order.
                t.addRow(row);
            }
            std::vector<std::string> avg_row = {"avg"};
            for (int c = 0; c < kCols; ++c)
                avg_row.push_back(TextTable::fmt(col_sum[c] / 4.0));
            t.addRow(avg_row);
            t.print();

            const double fp_avg = col_sum[0] / 4.0;
            double best = fp_avg;
            for (int c = 1; c < kCols; ++c)
                best = std::min(best, col_sum[c] / 4.0);
            std::printf("best scheme saves %.0f%% of total network power "
                        "vs FP\n",
                        (1 - best / fp_avg) * 100);
        }
    });
}
