/**
 * @file
 * Figure 12: average and maximum performance (throughput) degradation
 * of network-unaware management versus full-power networks.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace memnet;
    using namespace memnet::bench;

    BenchIo io("fig12_unaware_perf", argc, argv);

    printBanner(
        "Figure 12 — performance overhead of network-unaware management",
        "Throughput degradation vs. full-power networks. Paper: "
        "maximum 3.2%\nat alpha=2.5% and 5.1% at alpha=5%; averages "
        "0.9% and 1.7%.");

    Runner runner;

    return io.run(runner, [&] {
        for (SizeClass size : {SizeClass::Small, SizeClass::Big}) {
            std::printf("\n--- %s network study ---\n",
                        sizeClassName(size));
            TextTable t({"scheme", "alpha", "daisychain", "ternary tree",
                         "star", "DDRx-like", "avg", "max"});
            for (const Scheme &s : mainSchemes()) {
                for (double alpha : {2.5, 5.0}) {
                    std::vector<std::string> row = {
                        s.name, TextTable::pct(alpha / 100, 1)};
                    double sum = 0.0, mx = -1.0;
                    for (TopologyKind topo : allTopologies()) {
                        double topo_sum = 0.0;
                        for (const std::string &wl : workloadNames()) {
                            const double d = runner.degradation(
                                makeConfig(wl, topo, size, s.mech, s.roo,
                                           Policy::Unaware, alpha));
                            topo_sum += d;
                            mx = std::max(mx, d);
                        }
                        const double avg = topo_sum / 14.0;
                        row.push_back(TextTable::pct(avg));
                        sum += avg;
                    }
                    row.push_back(TextTable::pct(sum / 4.0));
                    row.push_back(TextTable::pct(mx));
                    t.addRow(row);
                }
            }
            t.print();
        }
    });
}
