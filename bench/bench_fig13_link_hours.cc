/**
 * @file
 * Figure 13: distribution of total link hours across VWL lane modes,
 * bucketed by link utilization, under network-unaware versus
 * network-aware management (big networks, VWL links).
 *
 * The paper's pathology: unaware management leaves low-utilization
 * links in 16-lane mode while busier links run at 8 lanes; aware
 * management flips the distribution.
 */

#include <cstdio>

#include "bench_common.hh"

namespace
{

using namespace memnet;
using namespace memnet::bench;

void
printDistribution(Runner &runner, Policy policy)
{
    // Aggregate link hours over all workloads and topologies.
    double hours[kUtilBuckets][kLaneModes] = {};
    double total = 0.0;
    for (const std::string &wl : workloadNames()) {
        for (TopologyKind topo : allTopologies()) {
            const RunResult &r = runner.get(
                makeConfig(wl, topo, SizeClass::Big, BwMechanism::Vwl,
                           false, policy, 5.0));
            for (int b = 0; b < kUtilBuckets; ++b) {
                for (int l = 0; l < kLaneModes; ++l) {
                    hours[b][l] += r.linkHours[b][l];
                    total += r.linkHours[b][l];
                }
            }
        }
    }

    TextTable t({"utilization", "16 lanes", "8 lanes", "4 lanes",
                 "1 lane", "bucket total"});
    for (int b = 0; b < kUtilBuckets; ++b) {
        std::vector<std::string> row = {kUtilBucketNames[b]};
        double bucket = 0.0;
        for (int l = 0; l < kLaneModes; ++l) {
            row.push_back(TextTable::pct(hours[b][l] / total));
            bucket += hours[b][l];
        }
        row.push_back(TextTable::pct(bucket / total));
        t.addRow(row);
    }
    t.print();

    // Summary statistics mirroring the paper's reading of the figure.
    double cold_full = hours[0][0] + hours[1][0];
    double cold_low = 0.0, hot_low = 0.0;
    for (int l = 1; l < kLaneModes; ++l) {
        cold_low += hours[0][l] + hours[1][l];
        hot_low += hours[3][l] + hours[4][l];
    }
    std::printf("cold (<5%% util) links: %.1f%% of link hours at 16 "
                "lanes, %.1f%% in low modes\n",
                cold_full / total * 100, cold_low / total * 100);
    std::printf("hot (>10%% util) links in low modes: %.1f%%\n\n",
                hot_low / total * 100);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchIo io("fig13_link_hours", argc, argv);

    printBanner(
        "Figure 13 — link hours by utilization and VWL mode "
        "(big networks)",
        "Fraction of total link hours; alpha = 5%. Aware management "
        "should move\ncold links into low modes and keep hot links "
        "wide.");

    Runner runner;

    return io.run(runner, [&] {
        std::printf("== network-UNAWARE management ==\n");
        printDistribution(runner, Policy::Unaware);

        std::printf("== network-AWARE management ==\n");
        printDistribution(runner, Policy::Aware);
    });
}
