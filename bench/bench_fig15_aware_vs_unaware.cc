/**
 * @file
 * Figure 15: network-wide power reduction of network-aware management
 * relative to network-unaware management, per mechanism, alpha,
 * topology and network size.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace memnet;
    using namespace memnet::bench;

    BenchIo io("fig15_aware_vs_unaware", argc, argv);

    printBanner(
        "Figure 15 — power savings of network-aware vs. unaware",
        "Network-wide power reduction. Paper: 11% (small) and 19% "
        "(big) average\noverall; corresponding I/O power reductions "
        "17% and 29%.");

    Runner runner;

    return io.run(runner, [&] {
        for (SizeClass size : {SizeClass::Small, SizeClass::Big}) {
            std::printf("\n--- %s network study ---\n",
                        sizeClassName(size));
            TextTable t({"scheme", "alpha", "daisychain", "ternary tree",
                         "star", "DDRx-like", "avg"});
            double overall = 0.0;
            int cells = 0;
            for (const Scheme &s : mainSchemes()) {
                for (double alpha : {2.5, 5.0}) {
                    std::vector<std::string> row = {
                        s.name, TextTable::pct(alpha / 100, 1)};
                    double sum = 0.0;
                    for (TopologyKind topo : allTopologies()) {
                        double topo_sum = 0.0;
                        for (const std::string &wl : workloadNames()) {
                            const double p_unaware =
                                runner
                                    .get(makeConfig(wl, topo, size, s.mech,
                                                    s.roo, Policy::Unaware,
                                                    alpha))
                                    .totalNetworkPowerW;
                            const double p_aware =
                                runner
                                    .get(makeConfig(wl, topo, size, s.mech,
                                                    s.roo, Policy::Aware,
                                                    alpha))
                                    .totalNetworkPowerW;
                            topo_sum += 1.0 - p_aware / p_unaware;
                        }
                        const double avg = topo_sum / 14.0;
                        row.push_back(TextTable::pct(avg));
                        sum += avg;
                        overall += avg;
                        ++cells;
                    }
                    row.push_back(TextTable::pct(sum / 4.0));
                    t.addRow(row);
                }
            }
            t.print();
            std::printf("overall average reduction vs. unaware: %.1f%%\n",
                        overall / cells * 100);
        }
    });
}
