/**
 * @file
 * Figure 16: network-wide power reduction versus full power, per
 * workload, for the six scheme/policy combinations (big networks,
 * alpha = 5%, averaged across the four topologies).
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace memnet;
    using namespace memnet::bench;

    BenchIo io("fig16_by_workload", argc, argv);

    printBanner(
        "Figure 16 — power saving by workload (big networks, alpha=5%)",
        "Network-wide power reduction vs. full power, averaged over "
        "topologies.\nPaper: aware management consistently beats "
        "unaware for every workload.");

    Runner runner;

    return io.run(runner, [&] {
        TextTable t({"workload", "VWL:unaware", "ROO:unaware",
                     "VWL+ROO:unaware", "VWL:aware", "ROO:aware",
                     "VWL+ROO:aware"});

        double col_sum[6] = {};
        for (const std::string &wl : workloadNames()) {
            std::vector<std::string> row = {wl};
            int c = 0;
            for (Policy policy : {Policy::Unaware, Policy::Aware}) {
                for (const Scheme &s : mainSchemes()) {
                    double sum = 0.0;
                    for (TopologyKind topo : allTopologies()) {
                        sum += runner.powerReduction(
                            makeConfig(wl, topo, SizeClass::Big, s.mech,
                                       s.roo, policy, 5.0));
                    }
                    const double avg = sum / 4.0;
                    row.push_back(TextTable::pct(avg));
                    col_sum[c++] += avg;
                }
            }
            t.addRow(row);
        }
        std::vector<std::string> avg_row = {"avg"};
        for (int c = 0; c < 6; ++c)
            avg_row.push_back(TextTable::pct(col_sum[c] / 14.0));
        t.addRow(avg_row);
        t.print();
    });
}
