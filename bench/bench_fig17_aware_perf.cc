/**
 * @file
 * Figure 17: (left) average performance overhead of network-aware
 * versus network-unaware management; (right) maximum performance
 * overhead of network-aware management versus full-power networks.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace memnet;
    using namespace memnet::bench;

    BenchIo io("fig17_aware_perf", argc, argv);

    printBanner(
        "Figure 17 — performance overheads of network-aware management",
        "Paper: aware costs only 0.2%/0.3% average throughput vs. "
        "unaware at\nalpha=2.5%/5%; maximum overhead vs. full power is "
        "5.9% across 672 runs.");

    Runner runner;

    return io.run(runner, [&] {
        for (SizeClass size : {SizeClass::Small, SizeClass::Big}) {
            std::printf(
                "\n--- %s network study: avg overhead aware vs. unaware "
                "---\n",
                sizeClassName(size));
            TextTable t({"scheme", "alpha", "daisychain", "ternary tree",
                         "star", "DDRx-like", "avg"});
            for (const Scheme &s : mainSchemes()) {
                for (double alpha : {2.5, 5.0}) {
                    std::vector<std::string> row = {
                        s.name, TextTable::pct(alpha / 100, 1)};
                    double sum = 0.0;
                    for (TopologyKind topo : allTopologies()) {
                        double topo_sum = 0.0;
                        for (const std::string &wl : workloadNames()) {
                            const double p_un =
                                runner
                                    .get(makeConfig(wl, topo, size, s.mech,
                                                    s.roo, Policy::Unaware,
                                                    alpha))
                                    .readsPerSec;
                            const double p_aw =
                                runner
                                    .get(makeConfig(wl, topo, size, s.mech,
                                                    s.roo, Policy::Aware,
                                                    alpha))
                                    .readsPerSec;
                            topo_sum += 1.0 - p_aw / p_un;
                        }
                        const double avg = topo_sum / 14.0;
                        row.push_back(TextTable::pct(avg));
                        sum += avg;
                    }
                    row.push_back(TextTable::pct(sum / 4.0));
                    t.addRow(row);
                }
            }
            t.print();

            std::printf(
                "\n--- %s network study: max overhead aware vs. full power "
                "---\n",
                sizeClassName(size));
            TextTable m({"scheme", "alpha", "daisychain", "ternary tree",
                         "star", "DDRx-like"});
            double global_max = -1.0;
            for (const Scheme &s : mainSchemes()) {
                for (double alpha : {2.5, 5.0}) {
                    std::vector<std::string> row = {
                        s.name, TextTable::pct(alpha / 100, 1)};
                    for (TopologyKind topo : allTopologies()) {
                        double mx = -1.0;
                        for (const std::string &wl : workloadNames()) {
                            mx = std::max(
                                mx, runner.degradation(makeConfig(
                                        wl, topo, size, s.mech, s.roo,
                                        Policy::Aware, alpha)));
                        }
                        row.push_back(TextTable::pct(mx));
                        global_max = std::max(global_max, mx);
                    }
                    m.addRow(row);
                }
            }
            m.print();
            std::printf("maximum overhead vs. full power: %.1f%% "
                        "(paper: 5.9%%)\n",
                        global_max * 100);
        }
    });
}
