/**
 * @file
 * Figure 18 (sensitivity): DVFS links instead of VWL, and ROO with a
 * 20 ns wakeup instead of 14 ns. Network-wide power reduction and
 * performance degradation versus full power, alpha = 5%.
 */

#include <cstdio>

#include "bench_common.hh"

namespace
{

using namespace memnet;
using namespace memnet::bench;

SystemConfig
sensitivityConfig(const std::string &wl, TopologyKind topo,
                  SizeClass size, BwMechanism mech, bool roo,
                  Policy policy)
{
    SystemConfig cfg =
        makeConfig(wl, topo, size, mech, roo, policy, 5.0);
    cfg.rooWakeupPs = ns(20);
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchIo io("fig18_dvfs_roo20", argc, argv);

    printBanner(
        "Figure 18 — sensitivity: DVFS links and 20 ns ROO wakeup",
        "alpha = 5%. Paper: DVFS saves less than VWL (SERDES latency "
        "at low\nvoltage); 20 ns ROO saves slightly less than 14 ns; "
        "aware management\nstill beats unaware by 12%/21% "
        "(small/big).");

    const Scheme schemes[] = {
        {"DVFS", BwMechanism::Dvfs, false},
        {"ROO-20ns", BwMechanism::None, true},
        {"DVFS+ROO-20ns", BwMechanism::Dvfs, true},
    };

    Runner runner;

    return io.run(runner, [&] {
        for (SizeClass size : {SizeClass::Small, SizeClass::Big}) {
            std::printf("\n--- %s network study ---\n",
                        sizeClassName(size));
            TextTable t({"scheme", "policy", "power reduction vs FP",
                         "avg perf degradation", "max perf degradation"});
            for (const Scheme &s : schemes) {
                for (Policy policy : {Policy::Unaware, Policy::Aware}) {
                    double pr_sum = 0.0, deg_sum = 0.0, deg_max = -1.0;
                    int n = 0;
                    for (TopologyKind topo : allTopologies()) {
                        for (const std::string &wl : workloadNames()) {
                            const SystemConfig cfg = sensitivityConfig(
                                wl, topo, size, s.mech, s.roo, policy);
                            pr_sum += runner.powerReduction(cfg);
                            const double d = runner.degradation(cfg);
                            deg_sum += d;
                            deg_max = std::max(deg_max, d);
                            ++n;
                        }
                    }
                    t.addRow({s.name, policyName(policy),
                              TextTable::pct(pr_sum / n),
                              TextTable::pct(deg_sum / n),
                              TextTable::pct(deg_max)});
                }
            }
            t.print();
        }
    });
}
