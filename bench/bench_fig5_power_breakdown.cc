/**
 * @file
 * Figure 5: average power breakdown of an HMC in a full-power network,
 * per topology, for the small and big network studies. Each cell is
 * the workload-average of the six components.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace memnet;
    using namespace memnet::bench;

    BenchIo io("fig5_power_breakdown", argc, argv);

    printBanner("Figure 5 — average power breakdown per HMC (W)",
                "Full-power networks, averaged over the 14 workloads.\n"
                "Paper: ~1.8-2.0 W/HMC small study, ~2.4-2.6 W/HMC big "
                "study;\nidle I/O is the dominant component "
                "everywhere.");

    Runner runner;

    return io.run(runner, [&] {
        for (SizeClass size : {SizeClass::Small, SizeClass::Big}) {
            std::printf("\n--- %s network study ---\n",
                        sizeClassName(size));
            TextTable t({"topology", "Idle I/O", "Active I/O", "Logic leak",
                         "Logic dyn", "DRAM leak", "DRAM dyn", "total",
                         "idleIO/total"});
            PowerBreakdown avg_all{};
            double idle_frac_weighted = 0.0;
            for (TopologyKind topo : allTopologies()) {
                PowerBreakdown acc{};
                double idle_over_total = 0.0;
                for (const std::string &wl : workloadNames()) {
                    const RunResult &r = runner.get(
                        makeConfig(wl, topo, size, BwMechanism::None, false,
                                   Policy::FullPower));
                    acc.idleIoW += r.perHmc.idleIoW;
                    acc.activeIoW += r.perHmc.activeIoW;
                    acc.logicLeakW += r.perHmc.logicLeakW;
                    acc.logicDynW += r.perHmc.logicDynW;
                    acc.dramLeakW += r.perHmc.dramLeakW;
                    acc.dramDynW += r.perHmc.dramDynW;
                    idle_over_total += r.idleIoFrac;
                }
                const double n = workloadNames().size();
                acc = acc.scaled(1.0 / n);
                idle_over_total /= n;
                t.addRow({topologyName(topo), TextTable::fmt(acc.idleIoW),
                          TextTable::fmt(acc.activeIoW),
                          TextTable::fmt(acc.logicLeakW),
                          TextTable::fmt(acc.logicDynW),
                          TextTable::fmt(acc.dramLeakW),
                          TextTable::fmt(acc.dramDynW),
                          TextTable::fmt(acc.totalW()),
                          TextTable::pct(idle_over_total)});
                avg_all.idleIoW += acc.idleIoW / 4;
                avg_all.activeIoW += acc.activeIoW / 4;
                avg_all.logicLeakW += acc.logicLeakW / 4;
                avg_all.logicDynW += acc.logicDynW / 4;
                avg_all.dramLeakW += acc.dramLeakW / 4;
                avg_all.dramDynW += acc.dramDynW / 4;
                idle_frac_weighted += idle_over_total / 4;
            }
            t.addRow({"avg", TextTable::fmt(avg_all.idleIoW),
                      TextTable::fmt(avg_all.activeIoW),
                      TextTable::fmt(avg_all.logicLeakW),
                      TextTable::fmt(avg_all.logicDynW),
                      TextTable::fmt(avg_all.dramLeakW),
                      TextTable::fmt(avg_all.dramDynW),
                      TextTable::fmt(avg_all.totalW()),
                      TextTable::pct(idle_frac_weighted)});
            t.print();

            const double io_share =
                (avg_all.idleIoW + avg_all.activeIoW) / avg_all.totalW();
            std::printf("I/O share of total network power: %.0f%% "
                        "(paper: ~73%% average)\n",
                        io_share * 100);
        }
    });
}
