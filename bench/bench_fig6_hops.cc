/**
 * @file
 * Figure 6: average number of modules traversed per memory access, per
 * workload, for each topology and network size.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace memnet;
    using namespace memnet::bench;

    BenchIo io("fig6_hops", argc, argv);

    printBanner(
        "Figure 6 — modules traversed per memory access",
        "Per workload and topology; small (4 GB/HMC) and big (1 GB/HMC) "
        "studies.\nPaper: daisy chains traverse the most modules; trees "
        "the fewest;\nbig networks multiply every hop count.");

    Runner runner;

    return io.run(runner, [&] {
        for (SizeClass size : {SizeClass::Small, SizeClass::Big}) {
            std::printf("\n--- %s network study ---\n",
                        sizeClassName(size));
            TextTable t({"workload", "daisychain", "ternary tree", "star",
                         "DDRx-like"});
            double avg[4] = {0, 0, 0, 0};
            for (const std::string &wl : workloadNames()) {
                std::vector<std::string> row = {wl};
                int i = 0;
                for (TopologyKind topo : allTopologies()) {
                    const RunResult &r = runner.get(
                        makeConfig(wl, topo, size, BwMechanism::None,
                                   false, Policy::FullPower));
                    row.push_back(
                        TextTable::fmt(r.avgModulesTraversed, 2));
                    avg[i++] += r.avgModulesTraversed;
                }
                t.addRow(row);
            }
            std::vector<std::string> row = {"avg"};
            for (int i = 0; i < 4; ++i)
                row.push_back(TextTable::fmt(avg[i] / 14.0, 2));
            t.addRow(row);
            t.print();
        }
    });
}
