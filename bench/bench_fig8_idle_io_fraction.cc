/**
 * @file
 * Figure 8: idle I/O power as a fraction of total network power, per
 * workload, topology and network size (full-power networks).
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace memnet;
    using namespace memnet::bench;

    BenchIo io("fig8_idle_io_fraction", argc, argv);

    printBanner(
        "Figure 8 — idle I/O power / total network power",
        "Full-power networks. Paper: 53% average for the small study,\n"
        "67% for the big study; above 50% even for the busiest "
        "workload (mixB).");

    Runner runner;

    return io.run(runner, [&] {
        for (SizeClass size : {SizeClass::Small, SizeClass::Big}) {
            std::printf("\n--- %s network study ---\n",
                        sizeClassName(size));
            TextTable t({"workload", "daisychain", "ternary tree", "star",
                         "DDRx-like"});
            double avg_all = 0.0;
            for (const std::string &wl : workloadNames()) {
                std::vector<std::string> row = {wl};
                for (TopologyKind topo : allTopologies()) {
                    const RunResult &r = runner.get(
                        makeConfig(wl, topo, size, BwMechanism::None,
                                   false, Policy::FullPower));
                    row.push_back(TextTable::pct(r.idleIoFrac));
                    avg_all += r.idleIoFrac;
                }
                t.addRow(row);
            }
            t.print();
            std::printf("average over all cells: %.0f%%\n",
                        avg_all / (14 * 4) * 100);
        }
    });
}
