/**
 * @file
 * Figure 9: average channel utilization (the processor-facing full
 * link) and average link utilization (over every link in the network),
 * per workload, topology and size. The gap between the two — traffic
 * attenuation — is why idle I/O power stays high even when the channel
 * is busy.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace memnet;
    using namespace memnet::bench;

    BenchIo io("fig9_utilization", argc, argv);

    printBanner(
        "Figure 9 — channel vs. average link utilization",
        "Full-power networks. Paper: 43% average channel utilization; "
        "link\nutilization far below channel utilization in every "
        "topology.");

    Runner runner;

    return io.run(runner, [&] {
        for (SizeClass size : {SizeClass::Small, SizeClass::Big}) {
            std::printf("\n--- %s network study ---\n",
                        sizeClassName(size));
            TextTable t({"workload", "chan:daisy", "link:daisy",
                         "chan:ternary", "link:ternary", "chan:star",
                         "link:star", "chan:ddrx", "link:ddrx"});
            double chan_avg = 0.0, link_avg = 0.0;
            for (const std::string &wl : workloadNames()) {
                std::vector<std::string> row = {wl};
                for (TopologyKind topo : allTopologies()) {
                    const RunResult &r = runner.get(
                        makeConfig(wl, topo, size, BwMechanism::None,
                                   false, Policy::FullPower));
                    row.push_back(TextTable::pct(r.channelUtil, 0));
                    row.push_back(TextTable::pct(r.avgLinkUtil, 0));
                    chan_avg += r.channelUtil;
                    link_avg += r.avgLinkUtil;
                }
                t.addRow(row);
            }
            t.print();
            std::printf("averages: channel %.0f%%, link %.0f%%\n",
                        chan_avg / (14 * 4) * 100,
                        link_avg / (14 * 4) * 100);
        }
    });
}
