/**
 * @file
 * Google-benchmark microbenchmarks of the simulator substrate: event
 * kernel throughput, link serialization, vault service, delay-monitor
 * and end-to-end simulation cost.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "dram/vault.hh"
#include "memnet/simulator.hh"
#include "mgmt/delay_monitor.hh"
#include "net/link.hh"
#include "sim/event_queue.hh"

namespace
{

using namespace memnet;

void
BM_EventQueueScheduleFire(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(ns(i), [] {});
        benchmark::DoNotOptimize(eq.run());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleFire);

struct SwallowSink : public PacketSink
{
    void accept(Packet *pkt, Tick) override { delete pkt; }
};

void
BM_LinkPacketTransfer(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        RooConfig roo;
        SwallowSink sink;
        Link link(eq, 0, LinkType::Request, 0,
                  &ModeTable::forMechanism(BwMechanism::None), &roo,
                  1.17, &sink);
        for (int i = 0; i < 500; ++i) {
            Packet *p = new Packet;
            p->type = PacketType::ReadResp;
            p->flits = 5;
            link.enqueue(p);
        }
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_LinkPacketTransfer);

void
BM_VaultReads(benchmark::State &state)
{
    DramParams params;
    for (auto _ : state) {
        EventQueue eq;
        Vault vault(eq, params, [](std::uint64_t, bool, Tick) {});
        for (int i = 0; i < 200; ++i)
            vault.push({static_cast<std::uint64_t>(i) * 64 * 32, true,
                        static_cast<std::uint64_t>(i)});
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_VaultReads);

void
BM_DelayMonitorArrival(benchmark::State &state)
{
    DelayMonitor m;
    Tick t = 0;
    for (auto _ : state) {
        m.arrival(t, 5);
        t += ns(10);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DelayMonitorArrival);

void
BM_EndToEndSimulation(benchmark::State &state)
{
    SystemConfig cfg;
    cfg.workload = "mixE";
    cfg.topology = TopologyKind::Star;
    cfg.sizeClass = SizeClass::Small;
    cfg.warmup = us(20);
    cfg.measure = us(100);
    cfg.policy = Policy::Unaware;
    cfg.mechanism = BwMechanism::Vwl;
    cfg.roo = true;
    for (auto _ : state) {
        const RunResult r = runSimulation(cfg);
        benchmark::DoNotOptimize(r.totalNetworkPowerW);
        state.counters["events"] =
            static_cast<double>(r.eventsFired);
    }
}
BENCHMARK(BM_EndToEndSimulation)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
