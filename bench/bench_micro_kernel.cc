/**
 * @file
 * Google-benchmark microbenchmarks of the simulator substrate: event
 * kernel throughput (schedule/fire and reschedule-heavy), packet pool
 * versus heap churn, link serialization, vault service, delay-monitor,
 * end-to-end simulation cost, and the parallel sweep engine.
 *
 * BM_EndToEndSimulation reports the headline counters used by the CI
 * perf-smoke job: events_per_s, packets_per_s, and the per-run heap
 * allocations the packet pool avoided.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "dram/vault.hh"
#include "memnet/experiment.hh"
#include "memnet/multichannel.hh"
#include "memnet/parallel.hh"
#include "memnet/simulator.hh"
#include "mgmt/delay_monitor.hh"
#include "net/link.hh"
#include "net/packet_pool.hh"
#include "sim/event_queue.hh"

namespace
{

using namespace memnet;

void
BM_EventQueueScheduleFire(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(ns(i), [] {});
        benchmark::DoNotOptimize(eq.run());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleFire);

struct NopEvent : public Event
{
    void fire() override {}
};

/**
 * The pattern the lazy-deletion queue handled worst: a working set of
 * re-armable timers (link sleep timers, core issue events) that get
 * rekeyed over and over without ever firing. The intrusive heap rekeys
 * in place; the old queue accumulated a stale entry per move.
 */
void
BM_EventQueueRescheduleHeavy(benchmark::State &state)
{
    constexpr int kTimers = 256;
    constexpr int kMoves = 4000;
    for (auto _ : state) {
        EventQueue eq;
        std::vector<NopEvent> timers(kTimers);
        for (int i = 0; i < kTimers; ++i)
            eq.schedule(&timers[i], ns(1000 + i));
        std::uint64_t lcg = 0x9e3779b97f4a7c15ULL;
        for (int i = 0; i < kMoves; ++i) {
            lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
            NopEvent &ev = timers[(lcg >> 33) % kTimers];
            eq.reschedule(&ev, ns(1000 + (lcg >> 40) % 5000));
        }
        for (NopEvent &ev : timers)
            eq.deschedule(&ev);
        benchmark::DoNotOptimize(eq.pending());
    }
    state.SetItemsProcessed(state.iterations() * kMoves);
}
BENCHMARK(BM_EventQueueRescheduleHeavy);

void
BM_PacketPoolChurn(benchmark::State &state)
{
    constexpr int kBurst = 64;
    PacketPool pool;
    std::vector<Packet *> live;
    live.reserve(kBurst);
    for (auto _ : state) {
        for (int i = 0; i < kBurst; ++i)
            live.push_back(pool.acquire());
        for (Packet *p : live)
            pool.release(p);
        live.clear();
    }
    state.SetItemsProcessed(state.iterations() * kBurst);
    state.counters["allocs_avoided"] = benchmark::Counter(
        static_cast<double>(pool.allocationsAvoided()));
}
BENCHMARK(BM_PacketPoolChurn);

/** The new/delete baseline BM_PacketPoolChurn replaces. */
void
BM_PacketHeapChurn(benchmark::State &state)
{
    constexpr int kBurst = 64;
    std::vector<Packet *> live;
    live.reserve(kBurst);
    for (auto _ : state) {
        for (int i = 0; i < kBurst; ++i)
            live.push_back(new Packet);
        for (Packet *p : live)
            delete p;
        live.clear();
    }
    state.SetItemsProcessed(state.iterations() * kBurst);
}
BENCHMARK(BM_PacketHeapChurn);

struct SwallowSink : public PacketSink
{
    void accept(Packet *pkt, Tick) override { disposePacket(pkt); }
};

void
BM_LinkPacketTransfer(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        RooConfig roo;
        SwallowSink sink;
        Link link(eq, 0, LinkType::Request, 0,
                  &ModeTable::forMechanism(BwMechanism::None), &roo,
                  1.17, &sink);
        for (int i = 0; i < 500; ++i) {
            Packet *p = new Packet;
            p->type = PacketType::ReadResp;
            p->flits = 5;
            link.enqueue(p);
        }
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_LinkPacketTransfer);

void
BM_VaultReads(benchmark::State &state)
{
    DramParams params;
    for (auto _ : state) {
        EventQueue eq;
        Vault vault(eq, params, [](std::uint64_t, bool, Tick) {});
        for (int i = 0; i < 200; ++i)
            vault.push({static_cast<std::uint64_t>(i) * 64 * 32, true,
                        static_cast<std::uint64_t>(i)});
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_VaultReads);

void
BM_DelayMonitorArrival(benchmark::State &state)
{
    DelayMonitor m;
    Tick t = 0;
    for (auto _ : state) {
        m.arrival(t, 5);
        t += ns(10);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DelayMonitorArrival);

void
BM_EndToEndSimulation(benchmark::State &state)
{
    SystemConfig cfg;
    cfg.workload = "mixE";
    cfg.topology = TopologyKind::Star;
    cfg.sizeClass = SizeClass::Small;
    cfg.warmup = us(20);
    cfg.measure = us(100);
    cfg.policy = Policy::Unaware;
    cfg.mechanism = BwMechanism::Vwl;
    cfg.roo = true;
    double events = 0.0, packets = 0.0, avoided = 0.0;
    for (auto _ : state) {
        const RunResult r = runSimulation(cfg);
        benchmark::DoNotOptimize(r.totalNetworkPowerW);
        events += static_cast<double>(r.eventsFired);
        packets += static_cast<double>(r.profile.packetsIssued);
        avoided += static_cast<double>(r.profile.packetAllocsAvoided());
    }
    state.counters["events_per_s"] =
        benchmark::Counter(events, benchmark::Counter::kIsRate);
    state.counters["packets_per_s"] =
        benchmark::Counter(packets, benchmark::Counter::kIsRate);
    state.counters["pool_allocs_avoided"] = benchmark::Counter(
        avoided / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_EndToEndSimulation)->Unit(benchmark::kMillisecond);

/**
 * The sweep engine on a small four-workload batch. Arg = worker
 * threads; on a single hardware thread the interesting property is that
 * jobs > 1 costs no correctness and little overhead, not speedup.
 */
void
BM_ParallelSweep(benchmark::State &state)
{
    const int jobs = static_cast<int>(state.range(0));
    for (auto _ : state) {
        Runner runner;
        std::vector<SystemConfig> cfgs;
        for (const char *wl : {"mixA", "mixB", "mixC", "mixD"}) {
            SystemConfig cfg;
            cfg.workload = wl;
            cfg.topology = TopologyKind::Star;
            cfg.warmup = us(10);
            cfg.measure = us(50);
            cfgs.push_back(cfg);
        }
        ParallelRunner(runner, jobs).run(cfgs);
        benchmark::DoNotOptimize(runner.runsExecuted());
    }
    state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_ParallelSweep)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

/** The 16-module four-channel system the partitioned-kernel speedup
 *  is quoted on: mixA's big-study footprint (14 chunks) spread over 4
 *  channels = 4 modules per channel. */
MultiChannelConfig
partitionBenchConfig(int partitions)
{
    MultiChannelConfig mc;
    mc.base.workload = "mixA";
    mc.base.topology = TopologyKind::Star;
    mc.base.sizeClass = SizeClass::Big;
    mc.base.policy = Policy::Aware;
    mc.base.mechanism = BwMechanism::Vwl;
    mc.base.roo = true;
    mc.base.warmup = us(10);
    mc.base.measure = us(50);
    mc.base.partitions = partitions;
    mc.channels = 4;
    return mc;
}

/**
 * Intra-run parallelism (sim/partition.hh): one large multi-channel
 * simulation sharded by channel. Arg = partitions; Arg 1 is the serial
 * kernel the speedup is measured against. The wall-clock ratio between
 * the two entries is the partitioned kernel's speedup — it scales
 * with available hardware threads, so the CI baseline tracks it with
 * the loose wall-clock tolerance class rather than an exact bound.
 */
void
BM_PartitionedMultiChannel(benchmark::State &state)
{
    const MultiChannelConfig mc =
        partitionBenchConfig(static_cast<int>(state.range(0)));
    std::uint64_t reads = 0;
    for (auto _ : state) {
        const MultiChannelResult r = runMultiChannel(mc);
        benchmark::DoNotOptimize(r.totalPowerW);
        reads += static_cast<std::uint64_t>(r.readsPerSec * 1e-6);
    }
    state.counters["sim_mreads_per_s"] = benchmark::Counter(
        static_cast<double>(reads) /
        static_cast<double>(state.iterations()));
}
BENCHMARK(BM_PartitionedMultiChannel)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/**
 * The headline number: serial and partitioned runs of the same config
 * timed back to back, reported as a speedup counter so the CI baseline
 * records it directly. Wall-clock by nature (and below 1.0 on a
 * single-core host, where the barriers only add scheduling overhead),
 * so the baseline gives it a tolerance of 1.0.
 */
void
BM_PartitionedSpeedup(benchmark::State &state)
{
    using clock = std::chrono::steady_clock;
    double serialS = 0.0, partS = 0.0;
    for (auto _ : state) {
        const auto t0 = clock::now();
        const MultiChannelResult a =
            runMultiChannel(partitionBenchConfig(1));
        const auto t1 = clock::now();
        const MultiChannelResult b =
            runMultiChannel(partitionBenchConfig(4));
        const auto t2 = clock::now();
        benchmark::DoNotOptimize(a.totalPowerW + b.totalPowerW);
        serialS += std::chrono::duration<double>(t1 - t0).count();
        partS += std::chrono::duration<double>(t2 - t1).count();
    }
    state.counters["speedup"] =
        benchmark::Counter(partS > 0.0 ? serialS / partS : 0.0);
}
BENCHMARK(BM_PartitionedSpeedup)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
