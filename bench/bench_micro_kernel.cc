/**
 * @file
 * Google-benchmark microbenchmarks of the simulator substrate: event
 * kernel throughput (schedule/fire and reschedule-heavy), packet pool
 * versus heap churn, link serialization, vault service, delay-monitor,
 * end-to-end simulation cost, and the parallel sweep engine.
 *
 * BM_EndToEndSimulation reports the headline counters used by the CI
 * perf-smoke job: events_per_s, packets_per_s, and the per-run heap
 * allocations the packet pool avoided.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "dram/vault.hh"
#include "memnet/experiment.hh"
#include "memnet/parallel.hh"
#include "memnet/simulator.hh"
#include "mgmt/delay_monitor.hh"
#include "net/link.hh"
#include "net/packet_pool.hh"
#include "sim/event_queue.hh"

namespace
{

using namespace memnet;

void
BM_EventQueueScheduleFire(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(ns(i), [] {});
        benchmark::DoNotOptimize(eq.run());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleFire);

struct NopEvent : public Event
{
    void fire() override {}
};

/**
 * The pattern the lazy-deletion queue handled worst: a working set of
 * re-armable timers (link sleep timers, core issue events) that get
 * rekeyed over and over without ever firing. The intrusive heap rekeys
 * in place; the old queue accumulated a stale entry per move.
 */
void
BM_EventQueueRescheduleHeavy(benchmark::State &state)
{
    constexpr int kTimers = 256;
    constexpr int kMoves = 4000;
    for (auto _ : state) {
        EventQueue eq;
        std::vector<NopEvent> timers(kTimers);
        for (int i = 0; i < kTimers; ++i)
            eq.schedule(&timers[i], ns(1000 + i));
        std::uint64_t lcg = 0x9e3779b97f4a7c15ULL;
        for (int i = 0; i < kMoves; ++i) {
            lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
            NopEvent &ev = timers[(lcg >> 33) % kTimers];
            eq.reschedule(&ev, ns(1000 + (lcg >> 40) % 5000));
        }
        for (NopEvent &ev : timers)
            eq.deschedule(&ev);
        benchmark::DoNotOptimize(eq.pending());
    }
    state.SetItemsProcessed(state.iterations() * kMoves);
}
BENCHMARK(BM_EventQueueRescheduleHeavy);

void
BM_PacketPoolChurn(benchmark::State &state)
{
    constexpr int kBurst = 64;
    PacketPool pool;
    std::vector<Packet *> live;
    live.reserve(kBurst);
    for (auto _ : state) {
        for (int i = 0; i < kBurst; ++i)
            live.push_back(pool.acquire());
        for (Packet *p : live)
            pool.release(p);
        live.clear();
    }
    state.SetItemsProcessed(state.iterations() * kBurst);
    state.counters["allocs_avoided"] = benchmark::Counter(
        static_cast<double>(pool.allocationsAvoided()));
}
BENCHMARK(BM_PacketPoolChurn);

/** The new/delete baseline BM_PacketPoolChurn replaces. */
void
BM_PacketHeapChurn(benchmark::State &state)
{
    constexpr int kBurst = 64;
    std::vector<Packet *> live;
    live.reserve(kBurst);
    for (auto _ : state) {
        for (int i = 0; i < kBurst; ++i)
            live.push_back(new Packet);
        for (Packet *p : live)
            delete p;
        live.clear();
    }
    state.SetItemsProcessed(state.iterations() * kBurst);
}
BENCHMARK(BM_PacketHeapChurn);

struct SwallowSink : public PacketSink
{
    void accept(Packet *pkt, Tick) override { disposePacket(pkt); }
};

void
BM_LinkPacketTransfer(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        RooConfig roo;
        SwallowSink sink;
        Link link(eq, 0, LinkType::Request, 0,
                  &ModeTable::forMechanism(BwMechanism::None), &roo,
                  1.17, &sink);
        for (int i = 0; i < 500; ++i) {
            Packet *p = new Packet;
            p->type = PacketType::ReadResp;
            p->flits = 5;
            link.enqueue(p);
        }
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_LinkPacketTransfer);

void
BM_VaultReads(benchmark::State &state)
{
    DramParams params;
    for (auto _ : state) {
        EventQueue eq;
        Vault vault(eq, params, [](std::uint64_t, bool, Tick) {});
        for (int i = 0; i < 200; ++i)
            vault.push({static_cast<std::uint64_t>(i) * 64 * 32, true,
                        static_cast<std::uint64_t>(i)});
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_VaultReads);

void
BM_DelayMonitorArrival(benchmark::State &state)
{
    DelayMonitor m;
    Tick t = 0;
    for (auto _ : state) {
        m.arrival(t, 5);
        t += ns(10);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DelayMonitorArrival);

void
BM_EndToEndSimulation(benchmark::State &state)
{
    SystemConfig cfg;
    cfg.workload = "mixE";
    cfg.topology = TopologyKind::Star;
    cfg.sizeClass = SizeClass::Small;
    cfg.warmup = us(20);
    cfg.measure = us(100);
    cfg.policy = Policy::Unaware;
    cfg.mechanism = BwMechanism::Vwl;
    cfg.roo = true;
    double events = 0.0, packets = 0.0, avoided = 0.0;
    for (auto _ : state) {
        const RunResult r = runSimulation(cfg);
        benchmark::DoNotOptimize(r.totalNetworkPowerW);
        events += static_cast<double>(r.eventsFired);
        packets += static_cast<double>(r.profile.packetsIssued);
        avoided += static_cast<double>(r.profile.packetAllocsAvoided());
    }
    state.counters["events_per_s"] =
        benchmark::Counter(events, benchmark::Counter::kIsRate);
    state.counters["packets_per_s"] =
        benchmark::Counter(packets, benchmark::Counter::kIsRate);
    state.counters["pool_allocs_avoided"] = benchmark::Counter(
        avoided / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_EndToEndSimulation)->Unit(benchmark::kMillisecond);

/**
 * The sweep engine on a small four-workload batch. Arg = worker
 * threads; on a single hardware thread the interesting property is that
 * jobs > 1 costs no correctness and little overhead, not speedup.
 */
void
BM_ParallelSweep(benchmark::State &state)
{
    const int jobs = static_cast<int>(state.range(0));
    for (auto _ : state) {
        Runner runner;
        std::vector<SystemConfig> cfgs;
        for (const char *wl : {"mixA", "mixB", "mixC", "mixD"}) {
            SystemConfig cfg;
            cfg.workload = wl;
            cfg.topology = TopologyKind::Star;
            cfg.warmup = us(10);
            cfg.measure = us(50);
            cfgs.push_back(cfg);
        }
        ParallelRunner(runner, jobs).run(cfgs);
        benchmark::DoNotOptimize(runner.runsExecuted());
    }
    state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_ParallelSweep)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
