/**
 * @file
 * Section VII-A: static fat/tapered-tree bandwidth selection with page
 * interleaving versus network-aware management at alpha = 30% (big
 * networks, VWL model).
 *
 * Paper: static selection incurs 13% average / 43% worst-case / 30%
 * top-quartile throughput overheads; network-aware management at
 * alpha=30% matches the average overhead while saving 15% more power
 * and bounding the worst case at 25%.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace memnet;
    using namespace memnet::bench;

    BenchIo io("sec7a_static_taper", argc, argv);

    printBanner(
        "Section VII-A — static tapering vs. network-aware (alpha=30%)",
        "Big networks, VWL bandwidth options, 56 comparisons "
        "(4 topologies x 14 workloads).");

    Runner runner;

    return io.run(runner, [&] {
        struct Sample
        {
            double degradation;
            double power;
            double fpPower;
        };
        std::vector<Sample> stat, aware;

        for (TopologyKind topo : allTopologies()) {
            for (const std::string &wl : workloadNames()) {
                SystemConfig s = makeConfig(wl, topo, SizeClass::Big,
                                            BwMechanism::Vwl, false,
                                            Policy::StaticTaper, 5.0);
                s.interleavePages = true;
                const RunResult &rs = runner.get(s);
                const RunResult &fp =
                    runner.get(Runner::fullPowerBaseline(s));
                stat.push_back({1.0 - rs.readsPerSec / fp.readsPerSec,
                                rs.totalNetworkPowerW,
                                fp.totalNetworkPowerW});

                const SystemConfig a =
                    makeConfig(wl, topo, SizeClass::Big, BwMechanism::Vwl,
                               false, Policy::Aware, 30.0);
                const RunResult &ra = runner.get(a);
                aware.push_back({runner.degradation(a),
                                 ra.totalNetworkPowerW,
                                 fp.totalNetworkPowerW});
            }
        }

        auto summarize = [](std::vector<Sample> v, const char *name,
                            TextTable &t) {
            std::sort(v.begin(), v.end(),
                      [](const Sample &a, const Sample &b) {
                          return a.degradation > b.degradation;
                      });
            double avg = 0.0, pw = 0.0, fp = 0.0;
            for (const Sample &s : v) {
                avg += s.degradation;
                pw += s.power;
                fp += s.fpPower;
            }
            avg /= v.size();
            double top_q = 0.0;
            const std::size_t q = std::max<std::size_t>(1, v.size() / 4);
            for (std::size_t i = 0; i < q; ++i)
                top_q += v[i].degradation;
            top_q /= q;
            t.addRow({name, TextTable::pct(avg),
                      TextTable::pct(v.front().degradation),
                      TextTable::pct(top_q), TextTable::fmt(pw / v.size()),
                      TextTable::pct(1.0 - pw / fp)});
            return pw / v.size();
        };

        TextTable t({"scheme", "avg overhead", "worst case",
                     "top-quartile avg", "avg power (W)",
                     "power reduction vs FP"});
        const double p_static = summarize(stat, "static taper+interleave", t);
        const double p_aware = summarize(aware, "network-aware a=30%", t);
        t.print();

        std::printf("\nnetwork-aware power advantage over static "
                    "selection: %.1f%% (paper: 15%%)\n",
                    (1.0 - p_aware / p_static) * 100);
    });
}
