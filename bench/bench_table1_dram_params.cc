/**
 * @file
 * Table I: HMC DRAM array parameters — echoes the configuration and
 * verifies the timing model reproduces the 30 ns close-page read the
 * management hardware assumes.
 */

#include <cstdio>

#include "bench_common.hh"
#include "dram/vault.hh"
#include "sim/event_queue.hh"

int
main()
{
    using namespace memnet;

    printBanner("Table I — HMC DRAM array parameters",
                "Configuration as modeled, plus a timing self-check.");

    DramParams p;
    TextTable t({"parameter", "value"});
    t.addRow({"Capacity per HMC", "4GB"});
    t.addRow({"Vaults per HMC", std::to_string(p.vaults)});
    t.addRow({"Vault data rate", "2Gbps"});
    t.addRow({"Vault IO width", "x32"});
    t.addRow({"Buffer entries per vault",
              std::to_string(p.bufferEntries)});
    t.addRow({"Page policy", "close"});
    t.addRow({"Line address mapping", "interleaved"});
    t.addRow({"tCL/tRCD/tRAS/tRP/tRRD/tWR (ns)", "11/11/22/11/5/12"});
    t.print();

    // Self-check: a single read through an idle vault takes exactly
    // tRCD + tCL + burst = 30 ns, the paper's DRAM latency constant.
    EventQueue eq;
    Tick done = 0;
    Vault vault(eq, p,
                [&](std::uint64_t, bool, Tick now) { done = now; });
    vault.push({0, true, 1});
    eq.run();

    std::printf("\nTiming self-check: close-page read latency = %.1f ns "
                "(paper assumes 30 ns)\n",
                toSeconds(done) * 1e9);
    std::printf("Derived burst time: %.1f ns; readAccessLatency(): "
                "%.1f ns\n",
                toSeconds(p.burstTime()) * 1e9,
                toSeconds(p.readAccessLatency()) * 1e9);
    return done == ns(30) ? 0 : 1;
}
