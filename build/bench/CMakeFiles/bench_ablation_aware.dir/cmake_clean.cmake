file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_aware.dir/bench_ablation_aware.cc.o"
  "CMakeFiles/bench_ablation_aware.dir/bench_ablation_aware.cc.o.d"
  "bench_ablation_aware"
  "bench_ablation_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
