# Empty dependencies file for bench_ablation_aware.
# This may be replaced when dependencies are built.
