# Empty dependencies file for bench_ext_multichannel.
# This may be replaced when dependencies are built.
