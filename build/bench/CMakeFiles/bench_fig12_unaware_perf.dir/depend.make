# Empty dependencies file for bench_fig12_unaware_perf.
# This may be replaced when dependencies are built.
