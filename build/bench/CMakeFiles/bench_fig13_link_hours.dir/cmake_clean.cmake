file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_link_hours.dir/bench_fig13_link_hours.cc.o"
  "CMakeFiles/bench_fig13_link_hours.dir/bench_fig13_link_hours.cc.o.d"
  "bench_fig13_link_hours"
  "bench_fig13_link_hours.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_link_hours.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
