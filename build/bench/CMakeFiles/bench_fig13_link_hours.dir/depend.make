# Empty dependencies file for bench_fig13_link_hours.
# This may be replaced when dependencies are built.
