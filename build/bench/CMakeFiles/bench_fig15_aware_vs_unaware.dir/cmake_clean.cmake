file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_aware_vs_unaware.dir/bench_fig15_aware_vs_unaware.cc.o"
  "CMakeFiles/bench_fig15_aware_vs_unaware.dir/bench_fig15_aware_vs_unaware.cc.o.d"
  "bench_fig15_aware_vs_unaware"
  "bench_fig15_aware_vs_unaware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_aware_vs_unaware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
