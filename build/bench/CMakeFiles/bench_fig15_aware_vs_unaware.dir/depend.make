# Empty dependencies file for bench_fig15_aware_vs_unaware.
# This may be replaced when dependencies are built.
