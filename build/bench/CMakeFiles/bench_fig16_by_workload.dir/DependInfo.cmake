
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig16_by_workload.cc" "bench/CMakeFiles/bench_fig16_by_workload.dir/bench_fig16_by_workload.cc.o" "gcc" "bench/CMakeFiles/bench_fig16_by_workload.dir/bench_fig16_by_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/memnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memnet_mgmt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memnet_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memnet_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memnet_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memnet_linkpm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
