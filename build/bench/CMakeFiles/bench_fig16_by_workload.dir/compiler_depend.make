# Empty compiler generated dependencies file for bench_fig16_by_workload.
# This may be replaced when dependencies are built.
