# Empty dependencies file for bench_fig17_aware_perf.
# This may be replaced when dependencies are built.
