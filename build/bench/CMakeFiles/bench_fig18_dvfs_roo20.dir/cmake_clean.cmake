file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_dvfs_roo20.dir/bench_fig18_dvfs_roo20.cc.o"
  "CMakeFiles/bench_fig18_dvfs_roo20.dir/bench_fig18_dvfs_roo20.cc.o.d"
  "bench_fig18_dvfs_roo20"
  "bench_fig18_dvfs_roo20.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_dvfs_roo20.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
