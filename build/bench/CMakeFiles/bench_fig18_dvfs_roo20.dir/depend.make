# Empty dependencies file for bench_fig18_dvfs_roo20.
# This may be replaced when dependencies are built.
