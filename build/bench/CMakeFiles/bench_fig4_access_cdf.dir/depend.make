# Empty dependencies file for bench_fig4_access_cdf.
# This may be replaced when dependencies are built.
