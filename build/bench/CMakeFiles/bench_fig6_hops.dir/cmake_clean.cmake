file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_hops.dir/bench_fig6_hops.cc.o"
  "CMakeFiles/bench_fig6_hops.dir/bench_fig6_hops.cc.o.d"
  "bench_fig6_hops"
  "bench_fig6_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
