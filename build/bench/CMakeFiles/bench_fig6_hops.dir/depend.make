# Empty dependencies file for bench_fig6_hops.
# This may be replaced when dependencies are built.
