file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_idle_io_fraction.dir/bench_fig8_idle_io_fraction.cc.o"
  "CMakeFiles/bench_fig8_idle_io_fraction.dir/bench_fig8_idle_io_fraction.cc.o.d"
  "bench_fig8_idle_io_fraction"
  "bench_fig8_idle_io_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_idle_io_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
