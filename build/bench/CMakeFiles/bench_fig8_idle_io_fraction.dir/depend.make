# Empty dependencies file for bench_fig8_idle_io_fraction.
# This may be replaced when dependencies are built.
