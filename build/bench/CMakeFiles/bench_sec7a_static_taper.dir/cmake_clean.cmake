file(REMOVE_RECURSE
  "CMakeFiles/bench_sec7a_static_taper.dir/bench_sec7a_static_taper.cc.o"
  "CMakeFiles/bench_sec7a_static_taper.dir/bench_sec7a_static_taper.cc.o.d"
  "bench_sec7a_static_taper"
  "bench_sec7a_static_taper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec7a_static_taper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
