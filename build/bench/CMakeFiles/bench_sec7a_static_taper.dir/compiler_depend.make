# Empty compiler generated dependencies file for bench_sec7a_static_taper.
# This may be replaced when dependencies are built.
