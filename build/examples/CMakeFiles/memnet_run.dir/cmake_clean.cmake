file(REMOVE_RECURSE
  "CMakeFiles/memnet_run.dir/memnet_run.cpp.o"
  "CMakeFiles/memnet_run.dir/memnet_run.cpp.o.d"
  "memnet_run"
  "memnet_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memnet_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
