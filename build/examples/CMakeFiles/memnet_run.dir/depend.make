# Empty dependencies file for memnet_run.
# This may be replaced when dependencies are built.
