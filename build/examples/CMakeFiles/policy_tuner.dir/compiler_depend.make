# Empty compiler generated dependencies file for policy_tuner.
# This may be replaced when dependencies are built.
