file(REMOVE_RECURSE
  "CMakeFiles/topology_planner.dir/topology_planner.cpp.o"
  "CMakeFiles/topology_planner.dir/topology_planner.cpp.o.d"
  "topology_planner"
  "topology_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
