# Empty dependencies file for topology_planner.
# This may be replaced when dependencies are built.
