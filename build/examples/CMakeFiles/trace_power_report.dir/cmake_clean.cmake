file(REMOVE_RECURSE
  "CMakeFiles/trace_power_report.dir/trace_power_report.cpp.o"
  "CMakeFiles/trace_power_report.dir/trace_power_report.cpp.o.d"
  "trace_power_report"
  "trace_power_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_power_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
