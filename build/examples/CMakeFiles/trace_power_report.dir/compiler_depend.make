# Empty compiler generated dependencies file for trace_power_report.
# This may be replaced when dependencies are built.
