file(REMOVE_RECURSE
  "CMakeFiles/memnet.dir/memnet/experiment.cc.o"
  "CMakeFiles/memnet.dir/memnet/experiment.cc.o.d"
  "CMakeFiles/memnet.dir/memnet/multichannel.cc.o"
  "CMakeFiles/memnet.dir/memnet/multichannel.cc.o.d"
  "CMakeFiles/memnet.dir/memnet/report.cc.o"
  "CMakeFiles/memnet.dir/memnet/report.cc.o.d"
  "CMakeFiles/memnet.dir/memnet/simulator.cc.o"
  "CMakeFiles/memnet.dir/memnet/simulator.cc.o.d"
  "libmemnet.a"
  "libmemnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
