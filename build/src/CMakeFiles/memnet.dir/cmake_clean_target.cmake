file(REMOVE_RECURSE
  "libmemnet.a"
)
