# Empty dependencies file for memnet.
# This may be replaced when dependencies are built.
