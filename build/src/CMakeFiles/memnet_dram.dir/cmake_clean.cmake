file(REMOVE_RECURSE
  "CMakeFiles/memnet_dram.dir/dram/vault.cc.o"
  "CMakeFiles/memnet_dram.dir/dram/vault.cc.o.d"
  "libmemnet_dram.a"
  "libmemnet_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memnet_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
