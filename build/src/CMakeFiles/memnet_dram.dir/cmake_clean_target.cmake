file(REMOVE_RECURSE
  "libmemnet_dram.a"
)
