# Empty compiler generated dependencies file for memnet_dram.
# This may be replaced when dependencies are built.
