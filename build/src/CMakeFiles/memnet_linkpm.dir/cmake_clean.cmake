file(REMOVE_RECURSE
  "CMakeFiles/memnet_linkpm.dir/linkpm/modes.cc.o"
  "CMakeFiles/memnet_linkpm.dir/linkpm/modes.cc.o.d"
  "libmemnet_linkpm.a"
  "libmemnet_linkpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memnet_linkpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
