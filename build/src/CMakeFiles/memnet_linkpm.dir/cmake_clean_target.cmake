file(REMOVE_RECURSE
  "libmemnet_linkpm.a"
)
