# Empty compiler generated dependencies file for memnet_linkpm.
# This may be replaced when dependencies are built.
