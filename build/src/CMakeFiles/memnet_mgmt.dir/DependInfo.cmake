
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mgmt/aware.cc" "src/CMakeFiles/memnet_mgmt.dir/mgmt/aware.cc.o" "gcc" "src/CMakeFiles/memnet_mgmt.dir/mgmt/aware.cc.o.d"
  "/root/repo/src/mgmt/link_state.cc" "src/CMakeFiles/memnet_mgmt.dir/mgmt/link_state.cc.o" "gcc" "src/CMakeFiles/memnet_mgmt.dir/mgmt/link_state.cc.o.d"
  "/root/repo/src/mgmt/manager.cc" "src/CMakeFiles/memnet_mgmt.dir/mgmt/manager.cc.o" "gcc" "src/CMakeFiles/memnet_mgmt.dir/mgmt/manager.cc.o.d"
  "/root/repo/src/mgmt/static_taper.cc" "src/CMakeFiles/memnet_mgmt.dir/mgmt/static_taper.cc.o" "gcc" "src/CMakeFiles/memnet_mgmt.dir/mgmt/static_taper.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/memnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memnet_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memnet_linkpm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memnet_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
