file(REMOVE_RECURSE
  "CMakeFiles/memnet_mgmt.dir/mgmt/aware.cc.o"
  "CMakeFiles/memnet_mgmt.dir/mgmt/aware.cc.o.d"
  "CMakeFiles/memnet_mgmt.dir/mgmt/link_state.cc.o"
  "CMakeFiles/memnet_mgmt.dir/mgmt/link_state.cc.o.d"
  "CMakeFiles/memnet_mgmt.dir/mgmt/manager.cc.o"
  "CMakeFiles/memnet_mgmt.dir/mgmt/manager.cc.o.d"
  "CMakeFiles/memnet_mgmt.dir/mgmt/static_taper.cc.o"
  "CMakeFiles/memnet_mgmt.dir/mgmt/static_taper.cc.o.d"
  "libmemnet_mgmt.a"
  "libmemnet_mgmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memnet_mgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
