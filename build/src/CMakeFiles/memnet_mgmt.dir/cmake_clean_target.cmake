file(REMOVE_RECURSE
  "libmemnet_mgmt.a"
)
