# Empty compiler generated dependencies file for memnet_mgmt.
# This may be replaced when dependencies are built.
