file(REMOVE_RECURSE
  "CMakeFiles/memnet_net.dir/net/link.cc.o"
  "CMakeFiles/memnet_net.dir/net/link.cc.o.d"
  "CMakeFiles/memnet_net.dir/net/module.cc.o"
  "CMakeFiles/memnet_net.dir/net/module.cc.o.d"
  "CMakeFiles/memnet_net.dir/net/network.cc.o"
  "CMakeFiles/memnet_net.dir/net/network.cc.o.d"
  "CMakeFiles/memnet_net.dir/net/topology.cc.o"
  "CMakeFiles/memnet_net.dir/net/topology.cc.o.d"
  "libmemnet_net.a"
  "libmemnet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memnet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
