file(REMOVE_RECURSE
  "libmemnet_net.a"
)
