# Empty compiler generated dependencies file for memnet_net.
# This may be replaced when dependencies are built.
