file(REMOVE_RECURSE
  "CMakeFiles/memnet_power.dir/power/hmc_power_model.cc.o"
  "CMakeFiles/memnet_power.dir/power/hmc_power_model.cc.o.d"
  "libmemnet_power.a"
  "libmemnet_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memnet_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
