file(REMOVE_RECURSE
  "libmemnet_power.a"
)
