# Empty compiler generated dependencies file for memnet_power.
# This may be replaced when dependencies are built.
