file(REMOVE_RECURSE
  "CMakeFiles/memnet_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/memnet_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/memnet_sim.dir/sim/log.cc.o"
  "CMakeFiles/memnet_sim.dir/sim/log.cc.o.d"
  "libmemnet_sim.a"
  "libmemnet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memnet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
