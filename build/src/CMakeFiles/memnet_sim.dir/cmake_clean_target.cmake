file(REMOVE_RECURSE
  "libmemnet_sim.a"
)
