# Empty dependencies file for memnet_sim.
# This may be replaced when dependencies are built.
