file(REMOVE_RECURSE
  "CMakeFiles/memnet_workload.dir/workload/processor.cc.o"
  "CMakeFiles/memnet_workload.dir/workload/processor.cc.o.d"
  "CMakeFiles/memnet_workload.dir/workload/profile.cc.o"
  "CMakeFiles/memnet_workload.dir/workload/profile.cc.o.d"
  "CMakeFiles/memnet_workload.dir/workload/trace.cc.o"
  "CMakeFiles/memnet_workload.dir/workload/trace.cc.o.d"
  "libmemnet_workload.a"
  "libmemnet_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memnet_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
