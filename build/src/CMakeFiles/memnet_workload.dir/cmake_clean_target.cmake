file(REMOVE_RECURSE
  "libmemnet_workload.a"
)
