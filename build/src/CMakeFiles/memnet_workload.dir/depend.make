# Empty dependencies file for memnet_workload.
# This may be replaced when dependencies are built.
