file(REMOVE_RECURSE
  "CMakeFiles/test_aware_ablation.dir/test_aware_ablation.cc.o"
  "CMakeFiles/test_aware_ablation.dir/test_aware_ablation.cc.o.d"
  "test_aware_ablation"
  "test_aware_ablation.pdb"
  "test_aware_ablation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aware_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
