# Empty dependencies file for test_aware_ablation.
# This may be replaced when dependencies are built.
