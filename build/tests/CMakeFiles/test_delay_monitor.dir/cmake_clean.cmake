file(REMOVE_RECURSE
  "CMakeFiles/test_delay_monitor.dir/test_delay_monitor.cc.o"
  "CMakeFiles/test_delay_monitor.dir/test_delay_monitor.cc.o.d"
  "test_delay_monitor"
  "test_delay_monitor.pdb"
  "test_delay_monitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delay_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
