# Empty compiler generated dependencies file for test_delay_monitor.
# This may be replaced when dependencies are built.
