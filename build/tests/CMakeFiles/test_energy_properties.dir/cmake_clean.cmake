file(REMOVE_RECURSE
  "CMakeFiles/test_energy_properties.dir/test_energy_properties.cc.o"
  "CMakeFiles/test_energy_properties.dir/test_energy_properties.cc.o.d"
  "test_energy_properties"
  "test_energy_properties.pdb"
  "test_energy_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_energy_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
