file(REMOVE_RECURSE
  "CMakeFiles/test_idle_histogram.dir/test_idle_histogram.cc.o"
  "CMakeFiles/test_idle_histogram.dir/test_idle_histogram.cc.o.d"
  "test_idle_histogram"
  "test_idle_histogram.pdb"
  "test_idle_histogram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_idle_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
