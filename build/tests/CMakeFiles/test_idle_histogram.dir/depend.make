# Empty dependencies file for test_idle_histogram.
# This may be replaced when dependencies are built.
