file(REMOVE_RECURSE
  "CMakeFiles/test_isp_unit.dir/test_isp_unit.cc.o"
  "CMakeFiles/test_isp_unit.dir/test_isp_unit.cc.o.d"
  "test_isp_unit"
  "test_isp_unit.pdb"
  "test_isp_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isp_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
