# Empty dependencies file for test_isp_unit.
# This may be replaced when dependencies are built.
