file(REMOVE_RECURSE
  "CMakeFiles/test_link_errors.dir/test_link_errors.cc.o"
  "CMakeFiles/test_link_errors.dir/test_link_errors.cc.o.d"
  "test_link_errors"
  "test_link_errors.pdb"
  "test_link_errors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
