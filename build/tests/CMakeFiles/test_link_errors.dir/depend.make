# Empty dependencies file for test_link_errors.
# This may be replaced when dependencies are built.
