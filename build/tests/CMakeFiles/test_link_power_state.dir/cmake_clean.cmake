file(REMOVE_RECURSE
  "CMakeFiles/test_link_power_state.dir/test_link_power_state.cc.o"
  "CMakeFiles/test_link_power_state.dir/test_link_power_state.cc.o.d"
  "test_link_power_state"
  "test_link_power_state.pdb"
  "test_link_power_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_power_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
