# Empty dependencies file for test_link_power_state.
# This may be replaced when dependencies are built.
