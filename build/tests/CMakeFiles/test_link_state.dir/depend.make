# Empty dependencies file for test_link_state.
# This may be replaced when dependencies are built.
