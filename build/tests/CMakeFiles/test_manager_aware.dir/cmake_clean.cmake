file(REMOVE_RECURSE
  "CMakeFiles/test_manager_aware.dir/test_manager_aware.cc.o"
  "CMakeFiles/test_manager_aware.dir/test_manager_aware.cc.o.d"
  "test_manager_aware"
  "test_manager_aware.pdb"
  "test_manager_aware[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_manager_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
