# Empty dependencies file for test_manager_aware.
# This may be replaced when dependencies are built.
