file(REMOVE_RECURSE
  "CMakeFiles/test_manager_unaware.dir/test_manager_unaware.cc.o"
  "CMakeFiles/test_manager_unaware.dir/test_manager_unaware.cc.o.d"
  "test_manager_unaware"
  "test_manager_unaware.pdb"
  "test_manager_unaware[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_manager_unaware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
