# Empty compiler generated dependencies file for test_manager_unaware.
# This may be replaced when dependencies are built.
