
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_modes.cc" "tests/CMakeFiles/test_modes.dir/test_modes.cc.o" "gcc" "tests/CMakeFiles/test_modes.dir/test_modes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/memnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memnet_mgmt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memnet_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memnet_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memnet_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memnet_linkpm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
