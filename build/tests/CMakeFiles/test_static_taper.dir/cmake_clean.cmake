file(REMOVE_RECURSE
  "CMakeFiles/test_static_taper.dir/test_static_taper.cc.o"
  "CMakeFiles/test_static_taper.dir/test_static_taper.cc.o.d"
  "test_static_taper"
  "test_static_taper.pdb"
  "test_static_taper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_static_taper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
