# Empty compiler generated dependencies file for test_static_taper.
# This may be replaced when dependencies are built.
