file(REMOVE_RECURSE
  "CMakeFiles/test_vault.dir/test_vault.cc.o"
  "CMakeFiles/test_vault.dir/test_vault.cc.o.d"
  "test_vault"
  "test_vault.pdb"
  "test_vault[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
