/**
 * @file
 * memnet_run — command-line front end for single simulation runs.
 *
 *   ./memnet_run --workload mixB --topology star --size big \
 *                --mech vwl --roo --policy aware --alpha 5 \
 *                --report summary,power,modules
 *
 * Flags (all optional):
 *   --workload <name>      one of the 14 profiles        [mixA]
 *   --topology <t>         daisychain|ternary|star|ddrx  [star]
 *   --size <s>             small|big                     [small]
 *   --mech <m>             none|vwl|dvfs                 [none]
 *   --roo                  enable rapid on/off           [off]
 *   --wakeup-ns <n>        ROO wakeup latency            [14]
 *   --policy <p>           fp|unaware|aware|static       [fp]
 *   --alpha <pct>          allowable memory slowdown     [5]
 *   --measure-us <n>       measurement window            [400]
 *   --seed <n>             run seed                      [1]
 *   --seeds <k>            replicate over k seeds        [1]
 *   --jobs <n>             threads for the seed sweep
 *                          (0 = all hardware threads)    [1]
 *   --fer <p>              flit error rate (CRC retry)   [0]
 *   --audit                run the invariant auditor     [Debug: always]
 *   --no-lat-obs           disable the latency observatory (per-access
 *                          decomposition + percentile sketches); purely
 *                          observational either way       [on]
 *   --no-energy-obs        disable the energy observatory (per-joule
 *                          attribution + congestion sketches); purely
 *                          observational either way       [on]
 *   --report <list>        summary,power,modules,links   [summary]
 *   --partitions <n>       shard the run across n event-queue
 *                          partitions (1 = serial kernel; see
 *                          docs/PERFORMANCE.md)           [1]
 *   --partition-sync <m>   barrier (deterministic, serial-identical)
 *                          or lax (fast screening)       [barrier]
 *   --lax-window-ns <t>    lax-mode window length         [10000]
 *   --profile <path>       host-side profiler dump; ".json" gets the
 *                          phase tree, anything else FlameGraph
 *                          collapsed stacks (docs/PERFORMANCE.md)
 *
 * Crash-safety flags (docs/ROBUSTNESS.md; same semantics as the bench
 * binaries):
 *   --journal <path>          append completed runs to a checksummed
 *                             JSONL journal, flushed per record
 *   --resume <path>           pre-load results from a journal; only
 *                             missing configs re-simulate
 *   --failure-policy <p>      abort|isolate                 [abort]
 *   --config-timeout <sec>    per-run wall-clock budget (hang
 *                             watchdog); 0 disables          [0]
 *   --failure-manifest <path> isolate-policy failure report (JSON)
 *
 * With --seeds k > 1 the run is replicated over seeds seed..seed+k-1
 * (concurrently when --jobs > 1; results are identical to serial) and
 * a per-seed summary table plus the mean replaces the single-run
 * report.
 *
 * Observability outputs (see docs/OBSERVABILITY.md; all off by default
 * and guaranteed not to change the simulation):
 *   --stats-json <path>    named stats dump (JSON)
 *   --stats-csv <path>     named stats dump (CSV)
 *   --epoch-jsonl <path>   per-epoch time-series (JSON Lines)
 *   --chrome-trace <path>  Chrome/Perfetto trace of link power states
 *   --debug-trace <spec>   MEMNET_TRACE filter, e.g. "LinkPM:2,ISP"
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <map>
#include <string>

#include "memnet/experiment.hh"
#include "memnet/journal.hh"
#include "memnet/parallel.hh"
#include "memnet/report.hh"
#include "memnet/simulator.hh"
#include "obs/prof.hh"
#include "sim/log.hh"

namespace
{

using namespace memnet;

[[noreturn]] void
usage(const char *msg)
{
    std::fprintf(stderr, "memnet_run: %s (see the header comment for "
                         "flags)\n",
                 msg);
    std::exit(2);
}

TopologyKind
parseTopology(const std::string &v)
{
    if (v == "daisychain")
        return TopologyKind::DaisyChain;
    if (v == "ternary")
        return TopologyKind::TernaryTree;
    if (v == "star")
        return TopologyKind::Star;
    if (v == "ddrx")
        return TopologyKind::DdrxLike;
    usage("unknown topology");
}

BwMechanism
parseMech(const std::string &v)
{
    if (v == "none")
        return BwMechanism::None;
    if (v == "vwl")
        return BwMechanism::Vwl;
    if (v == "dvfs")
        return BwMechanism::Dvfs;
    usage("unknown mechanism");
}

Policy
parsePolicy(const std::string &v)
{
    if (v == "fp")
        return Policy::FullPower;
    if (v == "unaware")
        return Policy::Unaware;
    if (v == "aware")
        return Policy::Aware;
    if (v == "static")
        return Policy::StaticTaper;
    usage("unknown policy");
}

/**
 * Fail fast on an unwritable output path instead of simulating for
 * minutes and then only warning. Opened for append, so an existing
 * file's contents survive the probe.
 */
bool
preflightWritable(const std::string &path, const char *flag)
{
    if (path.empty())
        return true;
    std::ofstream probe(path, std::ios::app);
    if (!probe) {
        std::fprintf(stderr, "memnet_run: cannot open %s output file: %s\n",
                     flag, path.c_str());
        return false;
    }
    return true;
}

/** Crash-safety options shared by the single-run and --seeds paths. */
struct RobustnessOpts
{
    std::string journalPath;
    std::string resumePath;
    std::string manifestPath;
    FailurePolicy policy = FailurePolicy::Abort;
    double configTimeoutSec = 0.0;

    /** Does the single-run path need the Runner/engine machinery? */
    bool
    engaged() const
    {
        return !journalPath.empty() || !resumePath.empty() ||
               policy == FailurePolicy::Isolate || configTimeoutSec > 0.0;
    }
};

/** --resume load + --journal attach; false = exit 1. */
bool
attachRunner(Runner &runner, RunJournal &journal,
             const RobustnessOpts &opts)
{
    if (!opts.resumePath.empty()) {
        std::map<std::string, RunResult> pool;
        JournalLoadStats stats;
        std::string err;
        if (!loadJournal(opts.resumePath, &pool, &stats, &err)) {
            std::fprintf(stderr, "memnet_run: --resume failed: %s\n",
                         err.c_str());
            return false;
        }
        memnet_inform("resume: loaded ", stats.loaded, " result(s) from ",
                      opts.resumePath, " (", stats.corrupt,
                      " damaged record(s) skipped)");
        runner.addResumePool(std::move(pool));
    }
    if (!opts.journalPath.empty()) {
        if (!journal.open())
            return false;
        runner.setJournal(&journal);
    }
    return true;
}

/** Warn + write the failure manifest; 1 when anything failed. */
int
reportFailures(const ParallelRunner &engine, const RobustnessOpts &opts)
{
    const std::vector<RunFailure> &failures = engine.failures();
    if (failures.empty())
        return 0;
    for (const RunFailure &f : failures)
        memnet_warn("failed: ", f.config.describe(),
                    f.timeout ? " [watchdog]" : "", ": ", f.message);
    if (!opts.manifestPath.empty()) {
        std::ofstream os(opts.manifestPath);
        if (!os) {
            memnet_warn("cannot open --failure-manifest output file: ",
                        opts.manifestPath);
            return 1;
        }
        writeFailureManifest(os, "memnet_run",
                             failurePolicyName(engine.failurePolicy()),
                             engine.configTimeout(), failures);
    }
    return 1;
}

/**
 * One-line crash-safety accounting, printed whenever --journal or
 * --resume is active: how many runs this process actually simulated
 * versus how many were served from the resume pool. Makes a resumed
 * sweep's "did it skip the finished work?" question answerable from
 * the console instead of by diffing journals.
 */
void
printCrashSafetySummary(const Runner &runner, const RobustnessOpts &opts)
{
    if (opts.journalPath.empty() && opts.resumePath.empty())
        return;
    std::printf("crash-safety: %d run(s) executed, %llu resumed from "
                "journal%s%s\n",
                runner.runsExecuted(),
                static_cast<unsigned long long>(runner.resumedHits()),
                opts.journalPath.empty() ? "" : "; journaling to ",
                opts.journalPath.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    SystemConfig cfg;
    cfg.workload = "mixA";
    cfg.topology = TopologyKind::Star;
    std::string report = "summary";
    std::string profilePath;
    RobustnessOpts ropts;
    int seeds = 1;
    int jobs = 1;

    auto need = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            usage("missing flag value");
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--workload") {
            cfg.workload = need(i);
        } else if (a == "--topology") {
            cfg.topology = parseTopology(need(i));
        } else if (a == "--size") {
            cfg.sizeClass = need(i) == std::string("big")
                                ? SizeClass::Big
                                : SizeClass::Small;
        } else if (a == "--mech") {
            cfg.mechanism = parseMech(need(i));
        } else if (a == "--roo") {
            cfg.roo = true;
        } else if (a == "--wakeup-ns") {
            cfg.rooWakeupPs = ns(std::atol(need(i).c_str()));
        } else if (a == "--policy") {
            cfg.policy = parsePolicy(need(i));
        } else if (a == "--alpha") {
            cfg.alphaPct = std::atof(need(i).c_str());
        } else if (a == "--measure-us") {
            cfg.measure = us(std::atol(need(i).c_str()));
        } else if (a == "--seed") {
            cfg.seed = std::strtoull(need(i).c_str(), nullptr, 10);
        } else if (a == "--seeds") {
            seeds = std::atoi(need(i).c_str());
        } else if (a == "--jobs") {
            jobs = std::atoi(need(i).c_str());
        } else if (a == "--fer") {
            cfg.linkFlitErrorRate = std::atof(need(i).c_str());
        } else if (a == "--interleave") {
            cfg.interleavePages = true;
        } else if (a == "--audit") {
            cfg.audit = true;
        } else if (a == "--no-lat-obs") {
            cfg.latencyObs = false;
        } else if (a == "--no-energy-obs") {
            cfg.energyObs = false;
        } else if (a == "--partitions") {
            cfg.partitions = std::atoi(need(i).c_str());
            if (cfg.partitions < 1)
                usage("--partitions must be >= 1");
        } else if (a == "--partition-sync") {
            if (!parsePartitionSync(need(i), &cfg.partitionSync))
                usage("--partition-sync must be 'barrier' or 'lax'");
        } else if (a == "--lax-window-ns") {
            cfg.laxWindowPs = ns(std::atol(need(i).c_str()));
            if (cfg.laxWindowPs <= 0)
                usage("--lax-window-ns must be positive");
        } else if (a == "--report") {
            report = need(i);
        } else if (a == "--profile") {
            profilePath = need(i);
        } else if (a == "--journal") {
            ropts.journalPath = need(i);
        } else if (a == "--resume") {
            ropts.resumePath = need(i);
        } else if (a == "--failure-policy") {
            if (!parseFailurePolicy(need(i), &ropts.policy))
                usage("--failure-policy must be 'abort' or 'isolate'");
        } else if (a == "--config-timeout") {
            ropts.configTimeoutSec = std::atof(need(i).c_str());
        } else if (a == "--failure-manifest") {
            ropts.manifestPath = need(i);
        } else if (a == "--stats-json") {
            cfg.obs.statsJsonPath = need(i);
        } else if (a == "--stats-csv") {
            cfg.obs.statsCsvPath = need(i);
        } else if (a == "--epoch-jsonl") {
            cfg.obs.epochJsonlPath = need(i);
        } else if (a == "--chrome-trace") {
            cfg.obs.chromeTracePath = need(i);
        } else if (a == "--debug-trace") {
            cfg.obs.traceSpec = need(i);
        } else if (a == "--help" || a == "-h") {
            usage("help requested");
        } else {
            usage(("unknown flag: " + a).c_str());
        }
    }
    if (cfg.policy == Policy::StaticTaper)
        cfg.interleavePages = true;

    // Fail before simulating, not after: a typo'd output directory used
    // to cost the whole run and exit 0 with only a warning.
    if (!preflightWritable(cfg.obs.statsJsonPath, "--stats-json") ||
        !preflightWritable(cfg.obs.statsCsvPath, "--stats-csv") ||
        !preflightWritable(cfg.obs.epochJsonlPath, "--epoch-jsonl") ||
        !preflightWritable(cfg.obs.chromeTracePath, "--chrome-trace"))
        return 1;

    if (!profilePath.empty())
        prof::setEnabled(true);

    RunJournal journal(ropts.journalPath);

    if (seeds > 1) {
        if (!cfg.obs.statsJsonPath.empty() ||
            !cfg.obs.statsCsvPath.empty() ||
            !cfg.obs.epochJsonlPath.empty() ||
            !cfg.obs.chromeTracePath.empty()) {
            usage("observability outputs would collide across seed "
                  "replicas; use --seeds 1");
        }
        std::vector<SystemConfig> replicas;
        for (int s = 0; s < seeds; ++s) {
            SystemConfig c = cfg;
            c.seed = cfg.seed + static_cast<std::uint64_t>(s);
            replicas.push_back(c);
        }
        Runner runner;
        if (!attachRunner(runner, journal, ropts))
            return 1;
        ParallelRunner engine(runner, jobs);
        engine.setFailurePolicy(ropts.policy);
        engine.setConfigTimeout(ropts.configTimeoutSec);
        try {
            engine.run(replicas);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "memnet_run: sweep failed: %s\n",
                         e.what());
            return 1;
        }
        const int failRc = reportFailures(engine, ropts);

        TextTable t({"seed", "reads/s", "net power (W)", "per-HMC (W)"});
        double sumReads = 0.0, sumPower = 0.0, sumHmc = 0.0;
        std::vector<const RunResult *> runs;
        for (const SystemConfig &c : replicas) {
            const RunResult &r = runner.get(c);
            runs.push_back(&r);
            t.addRow({std::to_string(c.seed),
                      TextTable::fmt(r.readsPerSec, 0),
                      TextTable::fmt(r.totalNetworkPowerW),
                      TextTable::fmt(r.perHmc.totalW())});
            sumReads += r.readsPerSec;
            sumPower += r.totalNetworkPowerW;
            sumHmc += r.perHmc.totalW();
        }
        const double n = seeds;
        t.addRow({"mean", TextTable::fmt(sumReads / n, 0),
                  TextTable::fmt(sumPower / n),
                  TextTable::fmt(sumHmc / n)});
        std::printf("%s x%d seeds (%d thread%s)\n", cfg.describe().c_str(),
                    seeds, resolveJobs(jobs),
                    resolveJobs(jobs) == 1 ? "" : "s");
        t.print();
        printCrashSafetySummary(runner, ropts);
        printSeedProfileSummary(summarizeSeedProfiles(runs));
        // The snapshot merges every seed replica's phases, including
        // worker threads already joined (their trees are retained).
        if (!profilePath.empty() && !prof::writeSnapshotFile(profilePath))
            return 1;
        return failRc;
    }

    RunResult r;
    if (ropts.engaged()) {
        // Route the single run through a Runner so the journal, resume
        // pool, watchdog, and failure policy all apply to it.
        Runner runner;
        if (!attachRunner(runner, journal, ropts))
            return 1;
        ParallelRunner engine(runner, 1);
        engine.setFailurePolicy(ropts.policy);
        engine.setConfigTimeout(ropts.configTimeoutSec);
        try {
            engine.run({cfg});
        } catch (const std::exception &e) {
            std::fprintf(stderr, "memnet_run: run failed: %s\n",
                         e.what());
            return 1;
        }
        if (reportFailures(engine, ropts) != 0)
            return 1;
        r = runner.get(cfg);
        printCrashSafetySummary(runner, ropts);
    } else {
        r = runSimulation(cfg);
    }
    if (!profilePath.empty() && !prof::writeSnapshotFile(profilePath))
        return 1;

    const bool all = report.find("all") != std::string::npos;
    if (all || report.find("summary") != std::string::npos)
        printRunSummary(r);
    if (all || report.find("power") != std::string::npos) {
        std::printf("\n");
        printPowerBreakdown(r);
    }
    if (all || report.find("modules") != std::string::npos) {
        std::printf("\n");
        printModuleReport(r);
    }
    if (all || report.find("links") != std::string::npos) {
        std::printf("\n");
        printLinkHours(r);
    }
    return 0;
}
