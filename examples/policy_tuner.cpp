/**
 * @file
 * Policy tuner: sweep the allowable-memory-slowdown factor (alpha) for
 * one workload/topology and print the resulting power/performance
 * frontier for unaware and aware management — how an operator would
 * pick alpha for a deployment.
 *
 *   ./policy_tuner [workload] [small|big]
 */

#include <cstdio>
#include <string>

#include "memnet/experiment.hh"
#include "memnet/report.hh"
#include "memnet/simulator.hh"

int
main(int argc, char **argv)
{
    using namespace memnet;

    const std::string workload = argc > 1 ? argv[1] : "mixC";
    const SizeClass size = (argc > 2 && std::string(argv[2]) == "small")
                               ? SizeClass::Small
                               : SizeClass::Big;

    std::printf("Alpha sweep for %s on a star network (%s study), "
                "VWL+ROO links\n\n",
                workload.c_str(), sizeClassName(size));

    Runner runner;
    runner.verbose = false;

    auto base = [&](Policy p, double alpha) {
        SystemConfig cfg;
        cfg.workload = workload;
        cfg.topology = TopologyKind::Star;
        cfg.sizeClass = size;
        cfg.policy = p;
        cfg.mechanism = BwMechanism::Vwl;
        cfg.roo = true;
        cfg.alphaPct = alpha;
        return cfg;
    };

    const double alphas[] = {1.0, 2.5, 5.0, 10.0, 20.0, 30.0};

    TextTable t({"alpha", "unaware: saving", "unaware: perf loss",
                 "aware: saving", "aware: perf loss"});
    for (double a : alphas) {
        const SystemConfig un = base(Policy::Unaware, a);
        const SystemConfig aw = base(Policy::Aware, a);
        t.addRow({TextTable::pct(a / 100, 1),
                  TextTable::pct(runner.powerReduction(un)),
                  TextTable::pct(runner.degradation(un)),
                  TextTable::pct(runner.powerReduction(aw)),
                  TextTable::pct(runner.degradation(aw))});
    }
    t.print();

    std::printf("\nDetailed run report at alpha = 5%% (aware):\n\n");
    const RunResult &r = runner.get(base(Policy::Aware, 5.0));
    printRunSummary(r);
    std::printf("\nPower breakdown:\n");
    printPowerBreakdown(r);
    std::printf("\nLink hours by utilization and mode:\n");
    printLinkHours(r);
    std::printf("\nPer-module detail:\n");
    printModuleReport(r);
    return 0;
}
