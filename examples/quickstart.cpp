/**
 * @file
 * Quickstart: build a small memory network, run one workload under
 * three policies, and print the power/performance summary.
 *
 *   ./quickstart [workload] [topology]
 *
 * topology: daisychain | ternary | star | ddrx   (default star)
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "memnet/experiment.hh"
#include "memnet/simulator.hh"

namespace
{

memnet::TopologyKind
parseTopology(const std::string &s)
{
    using memnet::TopologyKind;
    if (s == "daisychain")
        return TopologyKind::DaisyChain;
    if (s == "ternary")
        return TopologyKind::TernaryTree;
    if (s == "ddrx")
        return TopologyKind::DdrxLike;
    return TopologyKind::Star;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "mixB";
    const memnet::TopologyKind topo =
        parseTopology(argc > 2 ? argv[2] : "star");

    memnet::SystemConfig cfg;
    cfg.workload = workload;
    cfg.topology = topo;
    cfg.sizeClass = memnet::SizeClass::Big;
    cfg.mechanism = memnet::BwMechanism::Vwl;
    cfg.roo = true;
    cfg.alphaPct = 5.0;

    memnet::Runner runner;
    runner.verbose = false;

    std::printf("memnet quickstart: %s on a %s network (big study)\n\n",
                workload.c_str(), memnet::topologyName(topo));

    memnet::TextTable t({"policy", "modules", "power/HMC (W)",
                         "idle I/O %", "reads/s", "perf loss"});

    for (memnet::Policy p :
         {memnet::Policy::FullPower, memnet::Policy::Unaware,
          memnet::Policy::Aware}) {
        memnet::SystemConfig c = cfg;
        c.policy = p;
        if (p == memnet::Policy::FullPower) {
            c.mechanism = memnet::BwMechanism::None;
            c.roo = false;
        }
        const memnet::RunResult &r = runner.get(c);
        t.addRow({memnet::policyName(p), std::to_string(r.numModules),
                  memnet::TextTable::fmt(r.perHmc.totalW()),
                  memnet::TextTable::pct(r.idleIoFrac),
                  memnet::TextTable::fmt(r.readsPerSec / 1e6, 1) + "M",
                  memnet::TextTable::pct(runner.degradation(c))});
    }
    t.print();

    std::printf(
        "\nVWL+ROO links under management: idle links drop to narrow\n"
        "widths or turn off entirely; network-aware management shifts\n"
        "slack toward the quiet edge of the network (see DESIGN.md).\n");
    return 0;
}
