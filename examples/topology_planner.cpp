/**
 * @file
 * Topology planner: given a memory capacity requirement, compare the
 * four network shapes on hop distance, radix mix, full-power draw and
 * managed power draw — the "which network should I build?" question a
 * system architect would ask this library.
 *
 *   ./topology_planner [capacity_gb] [workload]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "memnet/experiment.hh"
#include "memnet/simulator.hh"
#include "net/topology.hh"

int
main(int argc, char **argv)
{
    using namespace memnet;

    const int capacity_gb = argc > 1 ? std::atoi(argv[1]) : 16;
    const std::string workload = argc > 2 ? argv[2] : "mixA";
    const int modules = std::max(1, (capacity_gb + 3) / 4); // 4 GB HMCs

    std::printf("Planning a %d GB memory network (%d x 4 GB HMCs), "
                "evaluated with workload %s\n\n",
                capacity_gb, modules, workload.c_str());

    // Static shape properties.
    {
        TextTable t({"topology", "max hops", "avg hops", "high-radix",
                     "low-radix"});
        for (TopologyKind k : allTopologies()) {
            Topology topo = Topology::build(k, modules);
            int maxd = 0, high = 0;
            double avgd = 0;
            for (int m = 0; m < modules; ++m) {
                maxd = std::max(maxd, topo.hopDistance(m));
                avgd += topo.hopDistance(m);
                high += topo.radix(m) == Radix::High;
            }
            t.addRow({topologyName(k), std::to_string(maxd),
                      TextTable::fmt(avgd / modules, 2),
                      std::to_string(high),
                      std::to_string(modules - high)});
        }
        std::printf("-- shape --\n");
        t.print();
    }

    // Simulated power/performance, full power vs managed.
    Runner runner;
    runner.verbose = false;
    std::printf("\n-- simulated with %s (small study mapping) --\n",
                workload.c_str());
    TextTable t({"topology", "FP W/HMC", "managed W/HMC", "saving",
                 "perf loss", "avg latency"});
    for (TopologyKind k : allTopologies()) {
        SystemConfig cfg;
        cfg.workload = workload;
        cfg.topology = k;
        cfg.sizeClass = SizeClass::Small;
        const RunResult &fp = runner.get(cfg);

        SystemConfig managed = cfg;
        managed.policy = Policy::Aware;
        managed.mechanism = BwMechanism::Vwl;
        managed.roo = true;
        const RunResult &mg = runner.get(managed);

        t.addRow({topologyName(k), TextTable::fmt(fp.perHmc.totalW()),
                  TextTable::fmt(mg.perHmc.totalW()),
                  TextTable::pct(1 - mg.totalNetworkPowerW /
                                         fp.totalNetworkPowerW),
                  TextTable::pct(runner.degradation(managed)),
                  TextTable::fmt(mg.avgReadLatencyNs, 0) + "ns"});
    }
    t.print();

    std::printf(
        "\nReading the table: trees minimize hops (latency) but pay "
        "high-radix\nleakage on every module; chains are cheap but "
        "deep; star/DDRx-like\nbalance the two and respond best to "
        "power management.\n");
    return 0;
}
