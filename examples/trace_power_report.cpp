/**
 * @file
 * Trace-driven power report: synthesize (or load) a memory access
 * trace, replay it open-loop through a chosen network, and print the
 * power report — the workflow a user with real application traces
 * would follow.
 *
 *   ./trace_power_report                    # synthesize from mixD
 *   ./trace_power_report my.trace 24        # load a trace, 24 GB space
 *
 * Trace format: "<time_ns> <R|W> <hex_address> <core>" per line.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "memnet/experiment.hh"
#include "memnet/simulator.hh"
#include "net/network.hh"
#include "workload/trace.hh"

int
main(int argc, char **argv)
{
    using namespace memnet;

    std::vector<TraceRecord> trace;
    std::uint64_t space_bytes;

    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        trace = readTrace(in);
        const double gb = argc > 2 ? std::atof(argv[2]) : 16.0;
        space_bytes = static_cast<std::uint64_t>(gb * (1ULL << 30));
        std::printf("Loaded %zu records from %s (%.0f GB space)\n\n",
                    trace.size(), argv[1], gb);
    } else {
        const WorkloadProfile &w = workloadByName("mixD");
        trace = generateTrace(w, us(400), /*seed=*/42);
        space_bytes = w.footprintBytes();
        std::printf("Synthesized %zu records from profile %s "
                    "(400 us window)\n",
                    trace.size(), w.name.c_str());

        // Round-trip through the text format to demonstrate it.
        std::stringstream ss;
        writeTrace(ss, trace);
        trace = readTrace(ss);
        std::printf("Round-tripped through the text format: %zu "
                    "records\n\n",
                    trace.size());
    }

    // Build a big-study star network sized for the address space.
    const int modules = static_cast<int>(
        (space_bytes + (1ULL << 30) - 1) >> 30);
    Topology topo = Topology::build(TopologyKind::Star, modules);
    topo.validate();

    EventQueue eq;
    DramParams dram;
    HmcPowerModel pm;
    RooConfig roo;
    AddressMap amap;
    amap.chunkBytes = 1ULL << 30;
    Network net(eq, topo, dram, BwMechanism::None, roo, pm, amap);

    TracePlayer player(eq, net, std::move(trace));
    player.start(0);
    net.resetStats();
    eq.run();
    const Tick end = eq.now();

    const EnergyBreakdown e = net.collectEnergy(end);
    const double secs = toSeconds(end);

    std::printf("Replay finished at %.1f us simulated time "
                "(drained: %s)\n\n",
                secs * 1e6, player.drained() ? "yes" : "no");

    TextTable t({"metric", "value"});
    t.addRow({"modules", std::to_string(modules)});
    t.addRow({"reads completed",
              std::to_string(player.completedReads())});
    t.addRow({"writes retired",
              std::to_string(player.retiredWrites())});
    t.addRow({"avg read latency",
              TextTable::fmt(player.avgReadLatencyNs(), 0) + " ns"});
    t.addRow({"network energy", TextTable::fmt(e.totalJ() * 1e3, 2) +
                                    " mJ"});
    t.addRow({"avg network power",
              TextTable::fmt(e.totalJ() / secs, 2) + " W"});
    t.addRow({"idle I/O share",
              TextTable::pct(e.idleIoJ / e.totalJ())});
    t.addRow({"modules traversed/access",
              TextTable::fmt(net.avgModulesTraversed(), 2)});
    t.print();

    std::printf("\nTip: wrap this network in a PowerManager (see "
                "policy_tuner) to see\nhow much of that idle I/O "
                "energy management would recover.\n");
    return 0;
}
