#!/usr/bin/env python3
"""Continuous benchmarking: record and check bench baselines.

Replaces the old hard-coded events/s floor in CI with a checked-in
baseline (ci/bench_baseline.json) carrying per-counter tolerance
bands. Two input formats are understood:

  * memnet bench --json output (ci/bench_schema.json): the runs'
    simulation-determined counters are aggregated per bench. These are
    exact by construction — the same binary must reproduce them bit
    for bit — so they get a tight two-sided tolerance. The aggregate
    events/s is also recorded as a loose one-sided rate.
  * google-benchmark --benchmark_format=json output (bench_micro_kernel):
    the user counters (events_per_s, ...) are wall-clock rates, so they
    get a loose one-sided tolerance that only fails on regression.
    real_time/cpu_time are never compared.

Counters are classified by name: anything matching *_per_s / *_per_sec /
*_per_second (google-benchmark's items/bytes counters) / *_rate is a rate (one-sided: fail only when current < (1 - tol) *
baseline); percentile counters (*_p50_ps / *_p99_ps_max / ... — the
latency observatory's sketch quantiles) are two-sided but get a looser
default band, because a sketch quantile is quantized to its bucket's
upper bound and a one-sample shift can move it a whole ~3% bucket;
everything else is exact (two-sided relative comparison).
Raw wall-clock fields (wall_s, real_time, cpu_time) are excluded
entirely.

Usage:
    bench_compare.py record --baseline ci/bench_baseline.json BENCH_*.json
    bench_compare.py check  --baseline ci/bench_baseline.json BENCH_*.json

record overwrites the baseline entries for the given files (keeping
other entries); check compares and exits 1 on any failure:
  * a file's label missing from the baseline,
  * a baseline counter missing from the current results,
  * an exact counter outside the band,
  * a rate counter below the one-sided band.
Rate improvements and new counters are reported but never fail.

Per-label tolerance overrides live in the baseline's "tolerances" map
(regex over "label:counter" -> relative tolerance). Nothing beyond the
python3 standard library, so CI needs no pip installs.
"""

import argparse
import json
import re
import sys

BASELINE_SCHEMA_VERSION = 1
DEFAULT_EXACT_REL_TOL = 1e-6
DEFAULT_RATE_REL_TOL = 0.8  # fail below 20% of baseline rate
DEFAULT_PCTL_REL_TOL = 0.05  # sketch quantiles: ~3% bucket width

_RATE_NAME = re.compile(r"(_per_s$|_per_sec$|_per_second$|_rate$)")
_PCTL_NAME = re.compile(r"_p\d+_ps(_max|_total)?$")
_EXCLUDED = {"wall_s", "real_time", "cpu_time"}


def is_rate(counter):
    return bool(_RATE_NAME.search(counter))


def is_percentile(counter):
    return bool(_PCTL_NAME.search(counter))


def extract_memnet(doc):
    """Aggregate a memnet bench --json document into one entry."""
    runs = [r["result"] for r in doc.get("runs", [])]
    counters = {
        "runs": len(runs),
        "events_fired_total": 0,
        "events_scheduled_total": 0,
        "events_descheduled_total": 0,
        "peak_queue_depth_max": 0,
        "packets_issued_total": 0,
        "completed_reads_total": 0,
        "violations_total": 0,
    }
    wall = 0.0
    for r in runs:
        prof = r.get("profile", {})
        counters["events_fired_total"] += prof.get("events_fired", 0)
        counters["events_scheduled_total"] += prof.get("events_scheduled", 0)
        counters["events_descheduled_total"] += prof.get(
            "events_descheduled", 0)
        counters["peak_queue_depth_max"] = max(
            counters["peak_queue_depth_max"],
            prof.get("peak_queue_depth", 0))
        counters["packets_issued_total"] += prof.get("packets_issued", 0)
        counters["completed_reads_total"] += r.get("perf", {}).get(
            "completed_reads", 0)
        counters["violations_total"] += r.get("violations", 0)
        wall += prof.get("wall_s", 0.0)
        # schema_version 3: latency-observatory aggregates. Samples are
        # exact; the percentile maxima are sketch quantiles and get the
        # looser *_p*_ps tolerance class (see module docstring).
        lat = r.get("latency")
        if lat and lat.get("enabled"):
            e2e = lat.get("end_to_end", {})
            counters["lat_samples_total"] = counters.get(
                "lat_samples_total", 0) + e2e.get("samples", 0)
            for pct in ("p99_ps", "p999_ps"):
                key = f"lat_{pct}_max"
                counters[key] = max(counters.get(key, 0),
                                    e2e.get(pct, 0))
        # schema_version 4: energy-observatory aggregates. Attribution
        # joules are exact simulation-determined doubles (the same
        # binary reproduces them bit for bit), so they go in the tight
        # two-sided exact class like events_fired_total.
        en = r.get("energy")
        if en and en.get("enabled"):
            attr = en.get("attribution_j", {})
            for cause in ("tx", "retrain", "idle_floor", "sleep",
                          "wake", "serdes_leak", "router", "dram_leak",
                          "dram_dyn", "total"):
                key = f"energy_{cause}_j"
                counters[key] = counters.get(key, 0.0) + \
                    attr.get(cause, 0.0)
            occ = en.get("queue_occupancy", {})
            counters["energy_queue_occ_max"] = max(
                counters.get("energy_queue_occ_max", 0),
                occ.get("max", 0))
    if wall > 0:
        counters["events_per_s"] = counters["events_fired_total"] / wall
    return {doc.get("bench", "?"): {"kind": "memnet", "counters": counters}}


def extract_gbench(doc):
    """One entry per google-benchmark case, user counters only."""
    entries = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        counters = {}
        for k, v in b.items():
            if k in _EXCLUDED or not isinstance(v, (int, float)) \
                    or isinstance(v, bool):
                continue
            if k in ("iterations", "repetitions", "repetition_index",
                     "family_index", "per_family_instance_index",
                     "threads"):
                continue
            counters[k] = v
        if counters:
            entries[b["name"]] = {"kind": "gbench", "counters": counters}
    return entries


def extract(path):
    with open(path) as f:
        doc = json.load(f)
    if "benchmarks" in doc:
        return extract_gbench(doc)
    if "runs" in doc:
        return extract_memnet(doc)
    raise ValueError(f"{path}: neither memnet bench JSON nor "
                     "google-benchmark JSON")


def tolerance_for(baseline, label, counter):
    """Resolve the relative tolerance for one label:counter pair."""
    key = f"{label}:{counter}"
    for pattern, tol in baseline.get("tolerances", {}).items():
        if re.search(pattern, key):
            return float(tol)
    defaults = baseline.get("defaults", {})
    if is_rate(counter):
        return float(defaults.get("rate_rel_tol", DEFAULT_RATE_REL_TOL))
    if is_percentile(counter):
        return float(defaults.get("pctl_rel_tol", DEFAULT_PCTL_REL_TOL))
    return float(defaults.get("exact_rel_tol", DEFAULT_EXACT_REL_TOL))


def check_entry(baseline, label, base_counters, cur_counters, report):
    """Compare one label's counters; append report lines.

    Returns the number of failures.
    """
    failures = 0
    for counter, base in sorted(base_counters.items()):
        key = f"{label}:{counter}"
        if counter not in cur_counters:
            report.append(f"FAIL {key}: missing from current results")
            failures += 1
            continue
        cur = cur_counters[counter]
        tol = tolerance_for(baseline, label, counter)
        if is_rate(counter):
            floor = (1.0 - tol) * base
            if cur < floor:
                report.append(
                    f"FAIL {key}: {cur:.4g} < {floor:.4g} "
                    f"(baseline {base:.4g}, tol {tol})")
                failures += 1
            elif base > 0 and cur > (1.0 + tol) * base:
                report.append(
                    f"note {key}: improved {base:.4g} -> {cur:.4g}; "
                    "consider re-recording the baseline")
            else:
                report.append(f"ok   {key}: {cur:.4g} "
                              f"(baseline {base:.4g}, one-sided)")
        else:
            scale = max(abs(base), abs(cur))
            if abs(cur - base) > tol * scale:
                report.append(
                    f"FAIL {key}: {cur!r} != baseline {base!r} "
                    f"(rel tol {tol})")
                failures += 1
            else:
                report.append(f"ok   {key}: {cur!r}")
    for counter in sorted(set(cur_counters) - set(base_counters)):
        report.append(f"note {label}:{counter}: not in baseline "
                      "(re-record to start tracking it)")
    return failures


def cmd_record(args):
    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError):
        baseline = {}
    baseline.setdefault("schema_version", BASELINE_SCHEMA_VERSION)
    baseline.setdefault("defaults", {
        "exact_rel_tol": DEFAULT_EXACT_REL_TOL,
        "rate_rel_tol": DEFAULT_RATE_REL_TOL,
    })
    baseline.setdefault("tolerances", {})
    entries = baseline.setdefault("entries", {})
    for path in args.files:
        for label, entry in extract(path).items():
            entries[label] = entry
            print(f"recorded {label}: "
                  f"{len(entry['counters'])} counters")
    entries = dict(sorted(entries.items()))
    baseline["entries"] = entries
    with open(args.baseline, "w") as f:
        json.dump(baseline, f, indent=2, sort_keys=False)
        f.write("\n")
    print(f"wrote {args.baseline} ({len(entries)} entries)")
    return 0


def cmd_check(args):
    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot load baseline: {e}", file=sys.stderr)
        return 2

    entries = baseline.get("entries", {})
    failures = 0
    report = []
    for path in args.files:
        for label, entry in extract(path).items():
            if label not in entries:
                report.append(
                    f"FAIL {label}: no baseline entry (run "
                    f"'bench_compare.py record' and commit the result)")
                failures += 1
                continue
            failures += check_entry(baseline, label,
                                    entries[label]["counters"],
                                    entry["counters"], report)
    for line in report:
        print(line)
    if failures:
        print(f"{failures} failure(s) against {args.baseline}")
        return 1
    print(f"all checks passed against {args.baseline}")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="record/check bench baselines for CI")
    sub = ap.add_subparsers(dest="mode", required=True)
    for name, fn in (("record", cmd_record), ("check", cmd_check)):
        p = sub.add_parser(name)
        p.add_argument("--baseline", required=True,
                       help="baseline JSON path (ci/bench_baseline.json)")
        p.add_argument("files", nargs="+",
                       help="BENCH_*.json files to record/check")
        p.set_defaults(fn=fn)
    args = ap.parse_args()
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
