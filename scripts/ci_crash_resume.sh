#!/usr/bin/env bash
# Kill-and-resume proof for the crash-safe sweep layer
# (docs/ROBUSTNESS.md). Run from the repo root after building:
#
#     scripts/ci_crash_resume.sh [build-dir] [out-dir]
#
# Four legs:
#   1. Start a journaled sweep, SIGKILL it once the journal holds a
#      few records, and confirm the process died mid-run.
#   2. Resume from the (possibly torn) journal into the same file and
#      a fresh --json dump; only the missing configs may re-simulate.
#   3. Run the identical sweep uninterrupted and require the two
#      bench JSON dumps to agree on every simulation-determined field
#      (scripts/diff_runs.py, which ignores wall-clock/profiler keys).
#   4. Schema-validate the journal, then force watchdog kills with a
#      microscopic --config-timeout under --failure-policy isolate
#      and schema-validate the failure manifest it writes.
#   5. Journal a partitioned-kernel sweep (--partitions 2, barrier
#      sync) and resume a *serial* sweep from it: deterministic
#      partitioned runs share the serial config key, so every record
#      must load and the results must be bit-identical (only kernel-
#      layout profile counters may differ).
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-crash-resume-out}"
BENCH="$BUILD/bench/bench_fig5_power_breakdown"
# Small simulated window so the whole proof stays in CI budget; the
# value only has to be identical across the three sweep invocations.
export MEMNET_SIM_US="${MEMNET_SIM_US:-50}"

[ -x "$BENCH" ] || { echo "missing bench binary: $BENCH" >&2; exit 2; }
mkdir -p "$OUT"
rm -f "$OUT"/*.json "$OUT"/*.jsonl "$OUT"/*.log

echo "== leg 1: journaled sweep, killed mid-run =="
"$BENCH" --jobs 2 --journal "$OUT/sweep.jsonl" \
    --json "$OUT/interrupted.json" >"$OUT/interrupted.log" 2>&1 &
pid=$!
# Wait for a handful of complete records, then kill without warning.
for _ in $(seq 1 600); do
    records=$(grep -c '"journal_version"' "$OUT/sweep.jsonl" \
        2>/dev/null || true)
    [ "${records:-0}" -ge 5 ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.05
done
if ! kill -KILL "$pid" 2>/dev/null; then
    echo "sweep finished before SIGKILL landed; the run is too fast" >&2
    echo "to interrupt on this machine — lower MEMNET_SIM_US? " >&2
    exit 2
fi
wait "$pid" 2>/dev/null || true
records=$(grep -c '"journal_version"' "$OUT/sweep.jsonl" || true)
echo "killed pid $pid with $records record(s) journaled"
[ "$records" -ge 1 ] || { echo "no records journaled" >&2; exit 1; }
[ -s "$OUT/interrupted.json" ] && {
    echo "interrupted sweep still wrote its --json dump?" >&2; exit 1; }

echo "== leg 2: resume from the journal (same file) =="
"$BENCH" --jobs 2 --resume "$OUT/sweep.jsonl" \
    --journal "$OUT/sweep.jsonl" \
    --json "$OUT/resumed.json" >"$OUT/resumed.log" 2>&1
grep "resume: loaded" "$OUT/resumed.log"
grep "journal: appended" "$OUT/resumed.log"

echo "== leg 3: uninterrupted reference sweep =="
"$BENCH" --json "$OUT/reference.json" >"$OUT/reference.log" 2>&1
python3 scripts/diff_runs.py "$OUT/reference.json" "$OUT/resumed.json"

echo "== leg 4: schema validation =="
# The SIGKILL can leave one torn line, which RunJournal::open() sealed
# with a newline before the resume leg appended. Strip lines that are
# not complete JSON — there must be at most one — then schema-validate
# the rest and require full sweep coverage.
python3 - "$OUT/sweep.jsonl" "$OUT/sweep.clean.jsonl" <<'EOF'
import json, sys
src, dst = sys.argv[1], sys.argv[2]
kept, dropped = [], 0
for line in open(src):
    line = line.strip()
    if not line:
        continue
    try:
        json.loads(line)
        kept.append(line)
    except ValueError:
        dropped += 1
with open(dst, "w") as f:
    f.write("".join(l + "\n" for l in kept))
print(f"journal: {len(kept)} whole line(s), {dropped} torn fragment(s)")
if dropped > 1:
    sys.exit(f"more than one torn line ({dropped}) — append is not "
             "atomic per record")
EOF
python3 scripts/validate_bench_json.py --jsonl ci/journal_schema.json \
    "$OUT/sweep.clean.jsonl"
total=$(python3 - "$OUT/reference.json" <<'EOF'
import json, sys
print(len(json.load(open(sys.argv[1]))["runs"]))
EOF
)
clean=$(grep -c '"journal_version"' "$OUT/sweep.clean.jsonl")
[ "$clean" -ge "$total" ] || {
    echo "journal holds $clean record(s), sweep has $total config(s)" >&2
    exit 1
}

# Watchdog + isolate: a 1 ms budget no config can meet. The bench must
# exit non-zero yet still write a schema-valid machine-readable
# manifest naming every kill.
if "$BENCH" --jobs 2 --config-timeout 0.001 --failure-policy isolate \
    --failure-manifest "$OUT/manifest.json" \
    --json "$OUT/isolated.json" >"$OUT/isolated.log" 2>&1; then
    echo "isolate sweep with an unmeetable timeout exited 0" >&2
    exit 1
fi
grep -q "cancelled by watchdog" "$OUT/isolated.log" || {
    echo "no watchdog diagnostics in the isolate log" >&2; exit 1; }
python3 scripts/validate_bench_json.py ci/failure_manifest_schema.json \
    "$OUT/manifest.json"

echo "== leg 5: partitioned kernel journals interchangeably =="
# Event-count and queue-shape counters describe the kernel layout, not
# the simulation, so a partitioned-vs-serial diff must skip them (the
# same gate audit::diffRunResults applies in-process).
KERNEL_IGNORE="(wall|per_s|per_sec|_rate|elapsed|prof|events_\
|peak_queue_depth|dispatch_window|partition|lax_sync|barrier)"
"$BENCH" --partitions 2 --journal "$OUT/part.jsonl" \
    --json "$OUT/part.json" >"$OUT/part.log" 2>&1
python3 scripts/diff_runs.py "$OUT/reference.json" "$OUT/part.json" \
    --ignore "$KERNEL_IGNORE"
"$BENCH" --resume "$OUT/part.jsonl" \
    --json "$OUT/part_resumed.json" >"$OUT/part_resumed.log" 2>&1
grep "resume: loaded" "$OUT/part_resumed.log"
python3 scripts/diff_runs.py "$OUT/reference.json" \
    "$OUT/part_resumed.json" --ignore "$KERNEL_IGNORE"
python3 scripts/validate_bench_json.py --jsonl ci/journal_schema.json \
    "$OUT/part.jsonl"

echo "crash-resume proof passed: $records journaled before SIGKILL," \
    "resume matched the uninterrupted sweep ($total configs)," \
    "partitioned journal interchanged with serial"
