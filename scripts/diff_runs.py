#!/usr/bin/env python3
"""Diff two runs' JSON dumps that are expected to be equivalent.

The differential consistency harness (tests/test_differential.cc)
checks run equivalences in-process; this script does the same for the
JSON artifacts two memnet_run invocations wrote (--stats-json), so CI
can assert e.g. audit-on == audit-off or two seeds of the same config
from different builds without recompiling anything.

Nothing beyond the python3 standard library, so CI needs no pip
installs.

Usage:
    scripts/diff_runs.py a.json b.json [--ignore REGEX] [--rtol X]

Keys matching --ignore (default: wall-clock and throughput-rate keys,
which legitimately differ between equivalent runs) are skipped.
--rtol 0 (the default) demands exact equality — the runs are supposed
to be bit-identical.
Exit status: 0 when equivalent, 1 when any field differs, 2 on usage
errors.
"""

import argparse
import json
import re
import sys

# prof_phases (and any prof* key) carries host-side profiler wall-clock
# data, so a profiled run still diffs clean against an unprofiled one.
DEFAULT_IGNORE = r"(wall|per_s|per_sec|_rate|elapsed|prof)"


def walk(a, b, path, ignore, rtol, diffs):
    if type(a) is not type(b) and not (
        isinstance(a, (int, float)) and isinstance(b, (int, float))
    ):
        diffs.append(f"{path}: type {type(a).__name__} != {type(b).__name__}")
        return
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            sub = f"{path}.{key}" if path else key
            if ignore.search(sub):
                continue
            if key not in a:
                diffs.append(f"{sub}: only in second run")
            elif key not in b:
                diffs.append(f"{sub}: only in first run")
            else:
                walk(a[key], b[key], sub, ignore, rtol, diffs)
    elif isinstance(a, list):
        if len(a) != len(b):
            diffs.append(f"{path}: length {len(a)} != {len(b)}")
        for i, (x, y) in enumerate(zip(a, b)):
            walk(x, y, f"{path}[{i}]", ignore, rtol, diffs)
    elif isinstance(a, bool) or not isinstance(a, (int, float)):
        if a != b:
            diffs.append(f"{path}: {a!r} != {b!r}")
    else:
        tol = rtol * max(abs(a), abs(b))
        if abs(a - b) > tol:
            diffs.append(f"{path}: {a!r} != {b!r}")


def main():
    ap = argparse.ArgumentParser(
        description="assert two run JSON dumps are equivalent")
    ap.add_argument("a")
    ap.add_argument("b")
    ap.add_argument("--ignore", default=DEFAULT_IGNORE,
                    help="regex of key paths to skip")
    ap.add_argument("--rtol", type=float, default=0.0,
                    help="relative tolerance for numbers (default: exact)")
    args = ap.parse_args()

    try:
        with open(args.a) as f:
            a = json.load(f)
        with open(args.b) as f:
            b = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    diffs = []
    walk(a, b, "", re.compile(args.ignore), args.rtol, diffs)
    if diffs:
        print(f"{args.a} and {args.b} differ in {len(diffs)} field(s):")
        for d in diffs:
            print(f"  {d}")
        return 1
    print(f"{args.a} == {args.b} (ignoring /{args.ignore}/)")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # output piped into head etc.
        sys.exit(1)
