#!/usr/bin/env python3
"""Render per-cause energy share tables from memnet output.

Two input modes, auto-detected from the document shape:

  * a memnet_run --stats-json dump: a flat name->value map carrying the
    net.energy.* attribution counters plus the utilization/occupancy
    sketch summaries (net.energy.util_ppm.*, net.energy.occupancy.*);

  * a bench --json dump (schema_version >= 4): one table per run from
    its result.energy object. --top N keeps only the N runs with the
    highest total joules (sorted descending), bounding the output for
    golden-file checks.

Each table splits the run's total energy by attribution cause — tx
traffic, the per-mode idle floor, sleep, wake transitions, retrain,
SerDes leakage, router dynamic, DRAM leak/dynamic — with each cause's
share of the total, then summarizes the congestion telemetry (per-link
utilization and queue-occupancy sketches).

Nothing beyond the python3 standard library, so CI needs no pip
installs. Output is deterministic for a deterministic input file —
CI diffs it against ci/energy_report_fig5.golden.

Usage:
    scripts/energy_report.py stats.json
    scripts/energy_report.py --top 4 bench_fig5.json
"""

import json
import sys

# Leaf attribution causes: disjoint, exhaustive — they sum to the
# run's total energy (idle_floor is the sum over the 8 idle modes).
CAUSES = [
    "tx",
    "retrain",
    "idle_floor",
    "sleep",
    "wake",
    "serdes_leak",
    "router",
    "dram_leak",
    "dram_dyn",
]

SKETCH_FIELDS = ["samples", "p50", "p90", "p99", "p999", "max"]


def render_table(energy, out):
    """Write one attribution table; `energy` is shaped like the
    bench-JSON result.energy object."""
    attr = energy["attribution_j"]
    total = float(attr["total"])
    if total <= 0.0:
        out.write("  no energy accrued in the measurement window\n")
        return

    out.write("  {:<14} {:>14} {:>7}\n".format("cause", "joules",
                                               "share%"))
    for cause in CAUSES:
        j = float(attr[cause])
        out.write("  {:<14} {:>14.6f} {:>7.2f}\n".format(
            cause, j, 100.0 * j / total))
    out.write("  {:<14} {:>14.6f} {:>7.2f}\n".format(
        "total", total, 100.0))
    out.write("  io split: idle {:.6f} J, active {:.6f} J\n".format(
        float(attr["idle_io"]), float(attr["active_io"])))

    util = energy["link_utilization_ppm"]
    occ = energy["queue_occupancy"]
    out.write("  link utilization: p50 {:d} ppm  p99 {:d} ppm  "
              "max {:d} ppm  ({:d} samples)\n".format(
                  int(util["p50"]), int(util["p99"]),
                  int(util["max"]), int(util["samples"])))
    out.write("  queue occupancy:  p50 {:d}  p99 {:d}  max {:d}  "
              "({:d} samples)\n".format(
                  int(occ["p50"]), int(occ["p99"]), int(occ["max"]),
                  int(occ["samples"])))


def stats_json_to_energy(doc):
    """Reshape a flat --stats-json dump into the bench-JSON energy
    object; returns (energy, None) or (None, missing-key)."""
    attr = {}
    for cause in CAUSES + ["idle_io", "active_io", "total"]:
        key = "net.energy.%s_j" % cause
        if key not in doc:
            return None, key
        attr[cause] = doc[key]
    energy = {"attribution_j": attr}
    for name, scope in (("link_utilization_ppm", "util_ppm"),
                        ("queue_occupancy", "occupancy")):
        s = {}
        for field in SKETCH_FIELDS:
            key = "net.energy.%s.%s" % (scope, field)
            if key not in doc:
                return None, key
            s[field] = doc[key]
        energy[name] = s
    return energy, None


def report_stats_json(doc, out):
    """Table from a flat --stats-json dump."""
    energy, missing = stats_json_to_energy(doc)
    if energy is None:
        sys.stderr.write(
            "energy_report: %s missing — was the run made with "
            "--no-energy-obs?\n" % missing)
        return 1
    out.write("energy attribution\n")
    render_table(energy, out)
    return 0


def report_bench_json(doc, out, top):
    """Tables from a bench --json dump, one per (kept) run."""
    version = doc.get("schema_version", 0)
    if version < 4:
        sys.stderr.write(
            "energy_report: bench JSON schema_version %s carries no "
            "energy object (need >= 4)\n" % version)
        return 1

    runs = []
    for run in doc.get("runs", []):
        en = run.get("result", {}).get("energy")
        if en is None:
            sys.stderr.write("energy_report: run %r has no energy "
                             "object\n" % run.get("key", "?"))
            return 1
        if not en.get("enabled", True):
            sys.stderr.write(
                "energy_report: run %r was made with the energy "
                "observatory disabled (--no-energy-obs); re-run "
                "without it to collect attribution\n"
                % run.get("key", "?"))
            return 1
        runs.append((run.get("key", "?"), en))

    if not runs:
        sys.stderr.write("energy_report: no runs in bench JSON\n")
        return 1

    dropped = 0
    if top is not None:
        runs.sort(key=lambda kv:
                  (-float(kv[1]["attribution_j"]["total"]), kv[0]))
        dropped = max(0, len(runs) - top)
        runs = runs[:top]

    out.write("energy report: %s (%d run(s)%s)\n" % (
        doc.get("bench", "?"), len(runs),
        ", %d below --top cutoff not shown" % dropped if dropped
        else ""))
    for key, en in runs:
        out.write("\n%s\n" % key)
        render_table(en, out)
    return 0


def main(argv):
    args = list(argv[1:])
    top = None
    if "--top" in args:
        i = args.index("--top")
        try:
            top = int(args[i + 1])
        except (IndexError, ValueError):
            sys.stderr.write("energy_report: --top needs an integer\n")
            return 2
        del args[i:i + 2]
    if len(args) != 1 or args[0].startswith("-"):
        sys.stderr.write(__doc__.strip() + "\n")
        return 2

    try:
        with open(args[0]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.stderr.write("energy_report: %s: %s\n" % (args[0], e))
        return 1

    if not isinstance(doc, dict):
        sys.stderr.write("energy_report: expected a JSON object\n")
        return 1

    if "runs" in doc:
        return report_bench_json(doc, sys.stdout, top)
    return report_stats_json(doc, sys.stdout)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
