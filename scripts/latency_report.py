#!/usr/bin/env python3
"""Render a latency decomposition / percentile table from memnet output.

Two input modes, auto-detected from the document shape:

  * a memnet_run --stats-json dump: a flat name->value map carrying the
    net.lat.* sketch counters plus the per-link stall attribution
    (linkN.wake_stall_s / linkN.retrain_stall_s / linkN.queue_peak);

  * a bench --json dump (schema_version >= 3): one table per run from
    its result.latency object. --top N keeps only the N runs with the
    highest end-to-end p999 (sorted descending), bounding the output
    for golden-file checks.

Nothing beyond the python3 standard library, so CI needs no pip
installs. Output is deterministic for a deterministic input file —
CI diffs it against ci/latency_report_fig15.golden.

Usage:
    scripts/latency_report.py stats.json
    scripts/latency_report.py --top 4 bench_fig15.json
"""

import json
import re
import sys

COMPONENTS = [
    "end_to_end",
    "queue",
    "wake_stall",
    "retrain_stall",
    "serialization",
    "dram",
]

FIELDS = ["samples", "sum_ps", "p50_ps", "p90_ps", "p99_ps",
          "p999_ps", "max_ps"]


def _ns(ps):
    return float(ps) / 1e3


def render_table(latency, out):
    """Write one decomposition table; `latency` maps component name ->
    {samples, sum_ps, p50_ps, ...} like the bench-JSON latency object."""
    e2e = latency["end_to_end"]
    samples = int(e2e["samples"])
    if samples == 0:
        out.write("  no completed reads in the measurement window\n")
        return

    header = ("  {:<14} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10} "
              "{:>10}\n").format("component", "share%", "mean_ns",
                                 "p50_ns", "p90_ns", "p99_ns",
                                 "p999_ns", "max_ns")
    out.write(header)
    total_ps = int(e2e["sum_ps"])
    for comp in COMPONENTS:
        c = latency[comp]
        n = int(c["samples"])
        sum_ps = int(c["sum_ps"])
        share = 100.0 * sum_ps / total_ps if total_ps else 0.0
        mean = _ns(sum_ps) / n if n else 0.0
        out.write(("  {:<14} {:>7.1f} {:>10.1f} {:>10.1f} {:>10.1f} "
                   "{:>10.1f} {:>10.1f} {:>10.1f}\n").format(
            comp, share, mean, _ns(c["p50_ps"]), _ns(c["p90_ps"]),
            _ns(c["p99_ps"]), _ns(c["p999_ps"]), _ns(c["max_ps"])))


def report_stats_json(doc, out):
    """Table from a flat --stats-json dump."""
    latency = {}
    for comp in COMPONENTS:
        c = {}
        for field in FIELDS:
            key = "net.lat.%s.%s" % (comp, field)
            if key not in doc:
                sys.stderr.write(
                    "latency_report: %s missing — was the run made "
                    "with --no-lat-obs?\n" % key)
                return 1
            c[field] = doc[key]
        latency[comp] = c

    wake = retrain = 0.0
    peak = 0
    for name, value in doc.items():
        if re.fullmatch(r"link\d+\.wake_stall_s", name):
            wake += value
        elif re.fullmatch(r"link\d+\.retrain_stall_s", name):
            retrain += value
        elif re.fullmatch(r"link\d+\.queue_peak", name):
            peak = max(peak, int(value))

    out.write("latency decomposition (%d reads)\n"
              % int(latency["end_to_end"]["samples"]))
    render_table(latency, out)
    out.write("stall attribution: wake %.6f s, retrain %.6f s, "
              "queue peak %d\n" % (wake, retrain, peak))
    return 0


def report_bench_json(doc, out, top):
    """Tables from a bench --json dump, one per (kept) run."""
    version = doc.get("schema_version", 0)
    if version < 3:
        sys.stderr.write(
            "latency_report: bench JSON schema_version %s carries no "
            "latency object (need >= 3)\n" % version)
        return 1

    runs = []
    for run in doc.get("runs", []):
        lat = run.get("result", {}).get("latency")
        if lat is None:
            sys.stderr.write("latency_report: run %r has no latency "
                             "object\n" % run.get("key", "?"))
            return 1
        if not lat.get("enabled", True):
            sys.stderr.write(
                "latency_report: run %r was made with the latency "
                "observatory disabled (--no-lat-obs); re-run without "
                "it to collect sketches\n" % run.get("key", "?"))
            return 1
        runs.append((run.get("key", "?"), lat))

    if not runs:
        sys.stderr.write("latency_report: no runs in bench JSON\n")
        return 1

    dropped = 0
    if top is not None:
        runs.sort(key=lambda kv: (-int(kv[1]["end_to_end"]["p999_ps"]),
                                  kv[0]))
        dropped = max(0, len(runs) - top)
        runs = runs[:top]

    out.write("latency report: %s (%d run(s)%s)\n" % (
        doc.get("bench", "?"), len(runs),
        ", %d below --top cutoff not shown" % dropped if dropped
        else ""))
    for key, lat in runs:
        out.write("\n%s\n" % key)
        render_table(lat, out)
        out.write("  stall attribution: wake %.6f s, retrain %.6f s, "
                  "queue peak %d\n" % (lat["wake_stall_s"],
                                       lat["retrain_stall_s"],
                                       int(lat["queue_peak"])))
    return 0


def main(argv):
    args = list(argv[1:])
    top = None
    if "--top" in args:
        i = args.index("--top")
        try:
            top = int(args[i + 1])
        except (IndexError, ValueError):
            sys.stderr.write("latency_report: --top needs an integer\n")
            return 2
        del args[i:i + 2]
    if len(args) != 1 or args[0].startswith("-"):
        sys.stderr.write(__doc__.strip() + "\n")
        return 2

    try:
        with open(args[0]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.stderr.write("latency_report: %s: %s\n" % (args[0], e))
        return 1

    if not isinstance(doc, dict):
        sys.stderr.write("latency_report: expected a JSON object\n")
        return 1

    if "runs" in doc:
        return report_bench_json(doc, sys.stdout, top)
    return report_stats_json(doc, sys.stdout)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
