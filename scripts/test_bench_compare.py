#!/usr/bin/env python3
"""Unit tests for bench_compare.py (stdlib unittest only).

Run directly or via ctest (test_bench_compare). Exercises the
record -> check round trip for both input formats, the one-sided rate
band, the two-sided exact band, tolerance overrides, and the failure
modes check is supposed to catch.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_compare as bc


def memnet_doc(events_fired=1000, wall=0.5, completed=40, violations=0,
               p99_ps=120000, tx_j=0.5):
    return {
        "schema_version": 4,
        "bench": "bench_fig5",
        "runs": [
            {
                "key": "star/aware",
                "result": {
                    "perf": {"completed_reads": completed},
                    "violations": violations,
                    "latency": {
                        "enabled": True,
                        "samples": 40,
                        "end_to_end": {
                            "samples": 40,
                            "p99_ps": p99_ps,
                            "p999_ps": p99_ps + 5000,
                        },
                    },
                    "energy": {
                        "enabled": True,
                        "attribution_j": {
                            "tx": tx_j,
                            "retrain": 0.01,
                            "idle_floor": 1.25,
                            "sleep": 0.05,
                            "wake": 0.02,
                            "serdes_leak": 0.3,
                            "router": 0.1,
                            "dram_leak": 0.6,
                            "dram_dyn": 0.4,
                            "total": tx_j + 2.73,
                        },
                        "queue_occupancy": {"samples": 14, "max": 9},
                    },
                    "profile": {
                        "events_fired": events_fired,
                        "events_scheduled": events_fired + 10,
                        "events_descheduled": 3,
                        "peak_queue_depth": 52,
                        "packets_issued": 200,
                        "wall_s": wall,
                    },
                },
            }
        ],
    }


def gbench_doc(rate=2.0e6):
    return {
        "context": {"date": "x"},
        "benchmarks": [
            {
                "name": "BM_EventQueue",
                "run_type": "iteration",
                "iterations": 100,
                "real_time": 12.5,
                "cpu_time": 12.4,
                "events_per_s": rate,
                "events_total": 4096,
            },
            {
                "name": "BM_EventQueue_mean",
                "run_type": "aggregate",
                "events_per_s": rate,
            },
        ],
    }


class ExtractTest(unittest.TestCase):
    def test_memnet_aggregation(self):
        entries = bc.extract_memnet(memnet_doc())
        counters = entries["bench_fig5"]["counters"]
        self.assertEqual(counters["events_fired_total"], 1000)
        self.assertEqual(counters["events_scheduled_total"], 1010)
        self.assertEqual(counters["peak_queue_depth_max"], 52)
        self.assertEqual(counters["completed_reads_total"], 40)
        self.assertAlmostEqual(counters["events_per_s"], 2000.0)
        self.assertNotIn("wall_s", counters)

    def test_gbench_skips_aggregates_and_time_fields(self):
        entries = bc.extract_gbench(gbench_doc())
        self.assertEqual(list(entries), ["BM_EventQueue"])
        counters = entries["BM_EventQueue"]["counters"]
        self.assertNotIn("real_time", counters)
        self.assertNotIn("cpu_time", counters)
        self.assertNotIn("iterations", counters)
        self.assertEqual(counters["events_per_s"], 2.0e6)
        self.assertEqual(counters["events_total"], 4096)

    def test_rate_classification(self):
        self.assertTrue(bc.is_rate("events_per_s"))
        self.assertTrue(bc.is_rate("reads_per_sec"))
        self.assertTrue(bc.is_rate("miss_rate"))
        self.assertTrue(bc.is_rate("items_per_second"))
        self.assertTrue(bc.is_rate("bytes_per_second"))
        self.assertFalse(bc.is_rate("events_fired_total"))

    def test_percentile_classification(self):
        self.assertTrue(bc.is_percentile("lat_p99_ps_max"))
        self.assertTrue(bc.is_percentile("lat_p999_ps_max"))
        self.assertTrue(bc.is_percentile("queue_p50_ps"))
        self.assertFalse(bc.is_percentile("lat_samples_total"))
        self.assertFalse(bc.is_percentile("events_per_s"))

    def test_memnet_latency_aggregation(self):
        entries = bc.extract_memnet(memnet_doc(p99_ps=150000))
        counters = entries["bench_fig5"]["counters"]
        self.assertEqual(counters["lat_samples_total"], 40)
        self.assertEqual(counters["lat_p99_ps_max"], 150000)
        self.assertEqual(counters["lat_p999_ps_max"], 155000)

    def test_memnet_energy_aggregation(self):
        entries = bc.extract_memnet(memnet_doc(tx_j=0.75))
        counters = entries["bench_fig5"]["counters"]
        self.assertAlmostEqual(counters["energy_tx_j"], 0.75)
        self.assertAlmostEqual(counters["energy_idle_floor_j"], 1.25)
        self.assertAlmostEqual(counters["energy_total_j"], 3.48)
        self.assertEqual(counters["energy_queue_occ_max"], 9)
        # Exact class: no rate/percentile suffix.
        self.assertFalse(bc.is_rate("energy_tx_j"))
        self.assertFalse(bc.is_percentile("energy_tx_j"))

    def test_memnet_without_energy_object_still_extracts(self):
        doc = memnet_doc()
        del doc["runs"][0]["result"]["energy"]
        counters = bc.extract_memnet(doc)["bench_fig5"]["counters"]
        self.assertNotIn("energy_tx_j", counters)
        self.assertEqual(counters["events_fired_total"], 1000)

    def test_memnet_without_latency_object_still_extracts(self):
        doc = memnet_doc()
        del doc["runs"][0]["result"]["latency"]
        counters = bc.extract_memnet(doc)["bench_fig5"]["counters"]
        self.assertNotIn("lat_samples_total", counters)
        self.assertEqual(counters["events_fired_total"], 1000)


class RoundTripTest(unittest.TestCase):
    """record then check through the real CLI entry points."""

    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.baseline = os.path.join(self.dir.name, "baseline.json")

    def tearDown(self):
        self.dir.cleanup()

    def write(self, name, doc):
        path = os.path.join(self.dir.name, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def run_cli(self, *argv):
        old = sys.argv
        sys.argv = ["bench_compare.py"] + list(argv)
        try:
            return bc.main()
        finally:
            sys.argv = old

    def record(self, *files):
        self.assertEqual(
            self.run_cli("record", "--baseline", self.baseline, *files), 0)

    def test_identical_results_pass(self):
        f1 = self.write("m.json", memnet_doc())
        f2 = self.write("g.json", gbench_doc())
        self.record(f1, f2)
        self.assertEqual(
            self.run_cli("check", "--baseline", self.baseline, f1, f2), 0)

    def test_exact_counter_regression_fails(self):
        f1 = self.write("m.json", memnet_doc())
        self.record(f1)
        f2 = self.write("m2.json", memnet_doc(completed=39))
        self.assertEqual(
            self.run_cli("check", "--baseline", self.baseline, f2), 1)

    def test_rate_regression_fails_only_below_band(self):
        f1 = self.write("g.json", gbench_doc(rate=1.0e6))
        self.record(f1)
        # 30% slower: inside the default 0.8 one-sided band.
        ok = self.write("ok.json", gbench_doc(rate=0.7e6))
        self.assertEqual(
            self.run_cli("check", "--baseline", self.baseline, ok), 0)
        # 90% slower: below the band.
        bad = self.write("bad.json", gbench_doc(rate=0.1e6))
        self.assertEqual(
            self.run_cli("check", "--baseline", self.baseline, bad), 1)

    def test_rate_improvement_passes(self):
        f1 = self.write("g.json", gbench_doc(rate=1.0e6))
        self.record(f1)
        fast = self.write("fast.json", gbench_doc(rate=5.0e6))
        self.assertEqual(
            self.run_cli("check", "--baseline", self.baseline, fast), 0)

    def test_missing_label_fails(self):
        f1 = self.write("m.json", memnet_doc())
        self.record(f1)
        other = memnet_doc()
        other["bench"] = "bench_fig15"
        f2 = self.write("other.json", other)
        self.assertEqual(
            self.run_cli("check", "--baseline", self.baseline, f2), 1)

    def test_missing_counter_fails_extra_counter_does_not(self):
        f1 = self.write("g.json", gbench_doc())
        self.record(f1)
        doc = gbench_doc()
        del doc["benchmarks"][0]["events_total"]
        doc["benchmarks"][0]["new_metric"] = 7
        f2 = self.write("g2.json", doc)
        self.assertEqual(
            self.run_cli("check", "--baseline", self.baseline, f2), 1)

    def test_tolerance_override_applies(self):
        f1 = self.write("m.json", memnet_doc())
        self.record(f1)
        with open(self.baseline) as f:
            baseline = json.load(f)
        # Loosen completed_reads_total to a 10% band via the regex map.
        baseline["tolerances"][r"bench_fig5:completed_reads_total"] = 0.1
        with open(self.baseline, "w") as f:
            json.dump(baseline, f)
        f2 = self.write("m2.json", memnet_doc(completed=38))  # -5%
        self.assertEqual(
            self.run_cli("check", "--baseline", self.baseline, f2), 0)

    def test_record_merges_and_keeps_other_entries(self):
        f1 = self.write("m.json", memnet_doc())
        self.record(f1)
        other = memnet_doc(events_fired=777)
        other["bench"] = "bench_fig15"
        f2 = self.write("other.json", other)
        self.record(f2)
        with open(self.baseline) as f:
            baseline = json.load(f)
        self.assertEqual(sorted(baseline["entries"]),
                         ["bench_fig15", "bench_fig5"])
        # Re-recording one bench must not clobber the other.
        self.assertEqual(
            baseline["entries"]["bench_fig15"]["counters"]
            ["events_fired_total"], 777)

    def test_unknown_format_raises(self):
        path = self.write("odd.json", {"neither": True})
        with self.assertRaises(ValueError):
            bc.extract(path)

    def test_missing_baseline_is_error_not_crash(self):
        f1 = self.write("m.json", memnet_doc())
        self.assertEqual(
            self.run_cli("check", "--baseline",
                         os.path.join(self.dir.name, "absent.json"), f1),
            2)


class CheckEntryTest(unittest.TestCase):
    def test_exact_band_is_two_sided(self):
        baseline = {"defaults": {"exact_rel_tol": 1e-6}}
        report = []
        # Exactly equal: ok in both directions.
        self.assertEqual(
            bc.check_entry(baseline, "b", {"x": 100}, {"x": 100}, report),
            0)
        self.assertEqual(
            bc.check_entry(baseline, "b", {"x": 100}, {"x": 101}, report),
            1)
        self.assertEqual(
            bc.check_entry(baseline, "b", {"x": 100}, {"x": 99}, report),
            1)

    def test_zero_baseline_rate_never_divides(self):
        baseline = {"defaults": {"rate_rel_tol": 0.8}}
        report = []
        self.assertEqual(
            bc.check_entry(baseline, "b", {"x_per_s": 0.0},
                           {"x_per_s": 0.0}, report), 0)

    def test_percentile_band_is_two_sided_but_loose(self):
        baseline = {"defaults": {"pctl_rel_tol": 0.05}}
        report = []
        # Within one sketch bucket (~3%): passes in both directions.
        self.assertEqual(
            bc.check_entry(baseline, "b", {"lat_p99_ps_max": 100000},
                           {"lat_p99_ps_max": 103000}, report), 0)
        self.assertEqual(
            bc.check_entry(baseline, "b", {"lat_p99_ps_max": 100000},
                           {"lat_p99_ps_max": 97000}, report), 0)
        # A 20% tail-latency swing fails either way.
        self.assertEqual(
            bc.check_entry(baseline, "b", {"lat_p99_ps_max": 100000},
                           {"lat_p99_ps_max": 120000}, report), 1)
        self.assertEqual(
            bc.check_entry(baseline, "b", {"lat_p99_ps_max": 100000},
                           {"lat_p99_ps_max": 80000}, report), 1)


if __name__ == "__main__":
    unittest.main()
