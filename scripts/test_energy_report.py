#!/usr/bin/env python3
"""Unit tests for energy_report.py (stdlib unittest only).

Run directly or via ctest (test_energy_report). Covers both input
modes (bench --json and --stats-json), the --top cutoff, and the
clear-diagnostic paths for disabled observatories and old schemas.
"""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import energy_report as er


def sketch(samples=14, base=1000):
    return {"samples": samples, "sum": base * samples, "p50": base,
            "p90": 2 * base, "p99": 3 * base, "p999": 4 * base,
            "max": 5 * base}


def energy_obj(enabled=True, scale=1.0):
    attr = {
        "tx": 0.5 * scale,
        "retrain": 0.01 * scale,
        "idle_floor": 1.25 * scale,
        "idle_mode": [1.0 * scale, 0.25 * scale, 0, 0, 0, 0, 0, 0],
        "sleep": 0.05 * scale,
        "wake": 0.02 * scale,
        "serdes_leak": 0.3 * scale,
        "router": 0.1 * scale,
        "dram_leak": 0.6 * scale,
        "dram_dyn": 0.4 * scale,
    }
    attr["idle_io"] = (attr["idle_floor"] + attr["sleep"]
                       + attr["wake"])
    attr["active_io"] = attr["tx"] + attr["retrain"]
    attr["total"] = (attr["idle_io"] + attr["active_io"]
                     + attr["serdes_leak"] + attr["router"]
                     + attr["dram_leak"] + attr["dram_dyn"])
    return {"enabled": enabled, "attribution_j": attr,
            "link_utilization_ppm": sketch(),
            "queue_occupancy": sketch(base=3)}


def bench_doc(enabled=True, version=4, keys=("star/aware",)):
    runs = []
    for i, key in enumerate(keys):
        runs.append({"key": key,
                     "result": {"energy": energy_obj(
                         enabled=enabled, scale=float(i + 1))}})
    return {"schema_version": version, "bench": "bench_fig5",
            "runs": runs}


def stats_doc():
    doc = {}
    attr = energy_obj()["attribution_j"]
    for cause in er.CAUSES + ["idle_io", "active_io", "total"]:
        doc["net.energy.%s_j" % cause] = attr[cause]
    for scope in ("util_ppm", "occupancy"):
        for field, value in sketch().items():
            doc["net.energy.%s.%s" % (scope, field)] = value
    return doc


class ReportTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.dir.cleanup()

    def write(self, doc):
        path = os.path.join(self.dir.name, "in.json")
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def run_main(self, *argv):
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            rc = er.main(["energy_report.py"] + list(argv))
        return rc, out.getvalue(), err.getvalue()

    def test_bench_json_renders_share_table(self):
        rc, out, err = self.run_main(self.write(bench_doc()))
        self.assertEqual(rc, 0, err)
        self.assertIn("star/aware", out)
        for cause in er.CAUSES:
            self.assertIn(cause, out)
        self.assertIn("io split", out)
        self.assertIn("link utilization", out)
        self.assertIn("queue occupancy", out)
        # The leaf causes are disjoint and exhaustive, so their shares
        # must sum to ~100%.
        attr = energy_obj()["attribution_j"]
        shares = sum(100.0 * attr[c] / attr["total"]
                     for c in er.CAUSES)
        self.assertAlmostEqual(shares, 100.0, places=6)

    def test_disabled_observatory_is_clear_error_not_traceback(self):
        doc = bench_doc(enabled=False)
        for run in doc["runs"]:
            del run["result"]["energy"]["attribution_j"]
        rc, out, err = self.run_main(self.write(doc))
        self.assertEqual(rc, 1)
        self.assertIn("--no-energy-obs", err)
        self.assertNotIn("Traceback", err)

    def test_missing_energy_object_is_clear_error(self):
        doc = bench_doc()
        del doc["runs"][0]["result"]["energy"]
        rc, out, err = self.run_main(self.write(doc))
        self.assertEqual(rc, 1)
        self.assertIn("no energy object", err)

    def test_old_schema_version_is_rejected(self):
        rc, out, err = self.run_main(self.write(bench_doc(version=3)))
        self.assertEqual(rc, 1)
        self.assertIn("schema_version", err)

    def test_top_keeps_highest_total_runs(self):
        doc = bench_doc(keys=("low", "high"))  # scale 1.0 vs 2.0
        rc, out, err = self.run_main("--top", "1", self.write(doc))
        self.assertEqual(rc, 0, err)
        self.assertIn("high", out)
        self.assertNotIn("\nlow\n", out)
        self.assertIn("1 below --top cutoff not shown", out)

    def test_zero_total_renders_placeholder(self):
        doc = bench_doc()
        attr = doc["runs"][0]["result"]["energy"]["attribution_j"]
        for key in attr:
            attr[key] = [0.0] * 8 if key == "idle_mode" else 0.0
        rc, out, err = self.run_main(self.write(doc))
        self.assertEqual(rc, 0, err)
        self.assertIn("no energy accrued", out)

    def test_stats_json_renders_table(self):
        rc, out, err = self.run_main(self.write(stats_doc()))
        self.assertEqual(rc, 0, err)
        self.assertIn("energy attribution", out)
        self.assertIn("dram_dyn", out)

    def test_stats_json_without_observatory_is_clear_error(self):
        doc = stats_doc()
        for key in [k for k in doc if k.startswith("net.energy.")]:
            del doc[key]
        doc["net.lat.end_to_end.samples"] = 40  # unrelated scope stays
        rc, out, err = self.run_main(self.write(doc))
        self.assertEqual(rc, 1)
        self.assertIn("--no-energy-obs", err)


if __name__ == "__main__":
    unittest.main()
