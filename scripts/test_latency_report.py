#!/usr/bin/env python3
"""Unit tests for latency_report.py (stdlib unittest only).

Run directly or via ctest (test_latency_report). The key regression
guarded here: feeding the report a dump made with --no-lat-obs must
produce a clear one-line diagnostic and exit code 1, never a KeyError
traceback.
"""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import latency_report as lr


def component(samples=40, base_ps=100000):
    return {
        "samples": samples,
        "sum_ps": base_ps * samples,
        "p50_ps": base_ps,
        "p90_ps": 2 * base_ps,
        "p99_ps": 3 * base_ps,
        "p999_ps": 4 * base_ps,
        "max_ps": 5 * base_ps,
    }


def bench_doc(enabled=True, version=3, keys=("star/aware",)):
    runs = []
    for i, key in enumerate(keys):
        lat = {
            "enabled": enabled,
            "samples": 40,
            "wake_stall_s": 0.5,
            "retrain_stall_s": 0.25,
            "queue_peak": 9,
        }
        for comp in lr.COMPONENTS:
            lat[comp] = component(base_ps=100000 * (i + 1))
        runs.append({"key": key, "result": {"latency": lat}})
    return {"schema_version": version, "bench": "bench_fig15",
            "runs": runs}


def stats_doc():
    doc = {}
    for comp in lr.COMPONENTS:
        for field, value in component().items():
            doc["net.lat.%s.%s" % (comp, field)] = value
    doc["link0.wake_stall_s"] = 0.125
    doc["link1.retrain_stall_s"] = 0.5
    doc["link1.queue_peak"] = 17
    return doc


class ReportTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.dir.cleanup()

    def write(self, doc):
        path = os.path.join(self.dir.name, "in.json")
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def run_main(self, *argv):
        """Returns (exit code, stdout, stderr). A traceback escaping
        main() fails the test by propagating out of the call."""
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            rc = lr.main(["latency_report.py"] + list(argv))
        return rc, out.getvalue(), err.getvalue()

    def test_bench_json_renders_one_table_per_run(self):
        rc, out, err = self.run_main(self.write(bench_doc()))
        self.assertEqual(rc, 0, err)
        self.assertIn("star/aware", out)
        self.assertIn("end_to_end", out)
        self.assertIn("stall attribution", out)

    def test_disabled_observatory_is_clear_error_not_traceback(self):
        doc = bench_doc(enabled=False)
        # Disabled runs still carry zeroed sketches; blank them too so
        # a regression back to KeyError is caught either way.
        for run in doc["runs"]:
            for comp in lr.COMPONENTS:
                del run["result"]["latency"][comp]
        rc, out, err = self.run_main(self.write(doc))
        self.assertEqual(rc, 1)
        self.assertIn("--no-lat-obs", err)
        self.assertNotIn("Traceback", err)

    def test_missing_latency_object_is_clear_error(self):
        doc = bench_doc()
        del doc["runs"][0]["result"]["latency"]
        rc, out, err = self.run_main(self.write(doc))
        self.assertEqual(rc, 1)
        self.assertIn("no latency object", err)

    def test_old_schema_version_is_rejected(self):
        rc, out, err = self.run_main(self.write(bench_doc(version=2)))
        self.assertEqual(rc, 1)
        self.assertIn("schema_version", err)

    def test_top_keeps_highest_p999_runs(self):
        doc = bench_doc(keys=("low", "high"))
        rc, out, err = self.run_main("--top", "1", self.write(doc))
        self.assertEqual(rc, 0, err)
        self.assertIn("high", out)
        self.assertNotIn("\nlow\n", out)
        self.assertIn("1 below --top cutoff not shown", out)

    def test_stats_json_renders_table(self):
        rc, out, err = self.run_main(self.write(stats_doc()))
        self.assertEqual(rc, 0, err)
        self.assertIn("latency decomposition", out)
        self.assertIn("queue peak 17", out)

    def test_stats_json_without_observatory_is_clear_error(self):
        doc = stats_doc()
        # A --no-lat-obs --stats-json dump simply lacks the net.lat.*
        # scope; everything else is still present.
        for key in [k for k in doc if k.startswith("net.lat.")]:
            del doc[key]
        rc, out, err = self.run_main(self.write(doc))
        self.assertEqual(rc, 1)
        self.assertIn("--no-lat-obs", err)

    def test_bad_json_is_clear_error(self):
        path = os.path.join(self.dir.name, "broken.json")
        with open(path, "w") as f:
            f.write("{not json")
        rc, out, err = self.run_main(path)
        self.assertEqual(rc, 1)
        self.assertIn("broken.json", err)


if __name__ == "__main__":
    unittest.main()
