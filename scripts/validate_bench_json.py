#!/usr/bin/env python3
"""Validate bench --json output against ci/bench_schema.json.

Implements the subset of JSON Schema the schema files use — type,
required, properties, items, minimum, minItems — with nothing beyond
the python3 standard library, so CI needs no pip installs.

Usage:
    scripts/validate_bench_json.py ci/bench_schema.json out/*.json
    scripts/validate_bench_json.py --jsonl ci/journal_schema.json \\
        out/sweep.jsonl

With --jsonl each non-empty line of every input file is parsed and
validated independently (the run-journal format, one record per line).
A torn final line — the expected residue of a killed sweep — fails
here; CI validates journals the resume path has already cleaned, or
accepts a known-torn tail by validating all but the last line.
"""

import json
import sys

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "number": (int, float),
    "integer": int,
}


def _check_type(value, expected, path, errors):
    py = _TYPES[expected]
    # bool is an int subclass in python; keep the JSON types distinct.
    if isinstance(value, bool) and expected in ("number", "integer"):
        errors.append(f"{path}: expected {expected}, got boolean")
        return False
    if not isinstance(value, py):
        errors.append(
            f"{path}: expected {expected}, got {type(value).__name__}")
        return False
    if expected == "integer" and isinstance(value, float):
        errors.append(f"{path}: expected integer, got float")
        return False
    return True


def validate(value, schema, path, errors):
    expected = schema.get("type")
    if expected and not _check_type(value, expected, path, errors):
        return

    minimum = schema.get("minimum")
    if minimum is not None and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < minimum:
        errors.append(f"{path}: {value} < minimum {minimum}")

    if isinstance(value, dict):
        for req in schema.get("required", []):
            if req not in value:
                errors.append(f"{path}: missing required member '{req}'")
        props = schema.get("properties", {})
        for key, sub in props.items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}", errors)

    if isinstance(value, list):
        min_items = schema.get("minItems")
        if min_items is not None and len(value) < min_items:
            errors.append(
                f"{path}: {len(value)} items < minItems {min_items}")
        items = schema.get("items")
        if items:
            for i, element in enumerate(value):
                validate(element, items, f"{path}[{i}]", errors)


def _validate_jsonl(path, schema):
    """Validate every non-empty line of a JSONL file. Returns errors."""
    errors = []
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as e:
                errors.append(f"line {lineno}: not JSON: {e}")
                continue
            validate(doc, schema, f"line {lineno}", errors)
    return errors


def main(argv):
    argv = list(argv)
    jsonl = "--jsonl" in argv
    if jsonl:
        argv.remove("--jsonl")
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    with open(argv[1]) as f:
        schema = json.load(f)

    failed = False
    for path in argv[2:]:
        if jsonl:
            try:
                errors = _validate_jsonl(path, schema)
            except OSError as e:
                print(f"{path}: FAIL: {e}")
                failed = True
                continue
            if errors:
                failed = True
                print(f"{path}: FAIL ({len(errors)} problem(s))")
                for e in errors[:20]:
                    print(f"  {e}")
                if len(errors) > 20:
                    print(f"  ... and {len(errors) - 20} more")
            else:
                with open(path) as f:
                    records = sum(1 for l in f if l.strip())
                print(f"{path}: OK ({records} record(s))")
            continue

        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"{path}: FAIL: {e}")
            failed = True
            continue

        errors = []
        validate(doc, schema, "$", errors)
        if errors:
            failed = True
            print(f"{path}: FAIL ({len(errors)} problem(s))")
            for e in errors[:20]:
                print(f"  {e}")
            if len(errors) > 20:
                print(f"  ... and {len(errors) - 20} more")
        elif "failures" in doc:
            # A failure manifest, not a bench dump.
            print(f"{path}: OK ({doc.get('failure_policy', '?')} policy, "
                  f"{len(doc['failures'])} failure(s))")
        else:
            runs = doc.get("runs", [])
            # schema_version 2: note how many runs carry host-profiler
            # phases so a --profile smoke run is visible in the CI log.
            profiled = sum(
                1 for r in runs
                if r.get("result", {}).get("profile", {}).get("prof_phases")
            )
            note = f", {profiled} profiled" if profiled else ""
            print(f"{path}: OK ({doc.get('bench', '?')}, "
                  f"{len(runs)} runs{note})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
