#include "audit/audit.hh"

#include <cmath>
#include <cstdlib>

#include "mgmt/aware.hh"
#include "sim/log.hh"
#include "workload/processor.hh"

namespace memnet
{
namespace audit
{

bool
enabledFor(bool config_opt_in)
{
#ifndef NDEBUG
    // Debug builds are the auditor's home turf: every run is audited,
    // which is what makes the Debug CI tier a standing cross-check.
    (void)config_opt_in;
    return true;
#else
    if (config_opt_in)
        return true;
    const char *env = std::getenv("MEMNET_AUDIT");
    return env && env[0] != '\0' && env[0] != '0';
#endif
}

Auditor::Auditor(Network &net, const AuditOptions &opts)
    : net_(net), opts_(opts)
{
}

Auditor::~Auditor()
{
    detach();
}

void
Auditor::attach(PowerManager *mgr)
{
    net_.setAuditHook(this);
    mgr_ = mgr;
    if (mgr_)
        mgr_->addEpochObserver(this);
}

void
Auditor::detach()
{
    net_.setAuditHook(nullptr);
    if (mgr_) {
        mgr_->removeEpochObserver(this);
        mgr_ = nullptr;
    }
}

void
Auditor::onMeasureStart(Tick now)
{
    resetAt_ = now;
}

void
Auditor::fail(const char *check, std::string detail)
{
    failures_.push_back(AuditFailure{check, detail});
    if (opts_.failFast) {
        memnet_fatal("invariant audit failed [", check, "]: ", detail,
                     " (see docs/INVARIANTS.md)");
    }
}

bool
Auditor::closeEnough(double a, double b, double abs_tol) const
{
    const double scale = std::max(std::fabs(a), std::fabs(b));
    return std::fabs(a - b) <= abs_tol + opts_.relTol * scale;
}

// ---------------------------------------------------------------------
// Checks
// ---------------------------------------------------------------------

void
Auditor::checkEnergyConservation(Tick now)
{
    for (Link *l : net_.allLinks()) {
        ++checks_;
        l->finishAccounting(now);
        const LinkStats &ls = l->stats();
        const double got = ls.idleIoJ() + ls.activeIoJ();
        const double expected = l->fullPowerWatts() * ls.powerFracSeconds;
        if (!closeEnough(got, expected, opts_.absTolJ)) {
            fail("energy-conservation",
                 detail::formatMessage(
                     "link ", l->id(), ": idle+active I/O energy ", got,
                     " J but full-power x residency predicts ", expected,
                     " J (drift ", got - expected, " J)"));
        }
    }
}

void
Auditor::checkEnergyAttribution(Tick now)
{
    // Per link: the fine cause buckets must sum to the physics
    // prediction (full power x accumulated power-fraction residency).
    // Same invariant as energy-conservation, but summed over the
    // attribution buckets directly, so it pins the fine split and not
    // just the derived idle/active ledger.
    for (Link *l : net_.allLinks()) {
        ++checks_;
        l->finishAccounting(now);
        const LinkStats &ls = l->stats();
        double causes = ls.txJ + ls.retrainJ;
        for (double j : ls.idleFloorJ)
            causes += j;
        causes += ls.sleepJ + ls.wakeJ;
        const double expected = l->fullPowerWatts() * ls.powerFracSeconds;
        if (!closeEnough(causes, expected, opts_.absTolJ)) {
            fail("energy-attribution",
                 detail::formatMessage(
                     "link ", l->id(), ": cause buckets sum to ", causes,
                     " J but full-power x residency predicts ", expected,
                     " J (drift ", causes - expected, " J)"));
        }
    }

    // System level: the attribution ledger's coarse anchors and module
    // terms must equal the aggregate EnergyBreakdown bit-identically —
    // both sides run the same arithmetic over the same iteration order,
    // so any divergence is a real bug and the comparison is exact.
    ++checks_;
    const EnergyAttribution a = net_.energyAttribution(now);
    const EnergyBreakdown e = net_.collectEnergy(now);
    if (a.idleIoJ != e.idleIoJ || a.activeIoJ != e.activeIoJ ||
        a.serdesLeakJ != e.logicLeakJ || a.routerJ != e.logicDynJ ||
        a.dramLeakJ != e.dramLeakJ || a.dramDynJ != e.dramDynJ) {
        fail("energy-attribution",
             detail::formatMessage(
                 "attribution ledger diverges from the energy "
                 "breakdown: io ",
                 a.idleIoJ + a.activeIoJ, " vs ", e.idleIoJ + e.activeIoJ,
                 " J, modules ", a.moduleJ(), " vs ",
                 e.logicLeakJ + e.logicDynJ + e.dramLeakJ + e.dramDynJ,
                 " J (must match bit-identically)"));
    }
}

void
Auditor::checkLinkStates(Tick now)
{
    const double elapsed = toSeconds(now - resetAt_);
    const double sec_tol = opts_.relTol * elapsed + 1e-9;
    for (Link *l : net_.allLinks()) {
        ++checks_;
        l->finishAccounting(now);
        const LinkStats &ls = l->stats();

        double residency = 0.0;
        for (double s : ls.modeSeconds) {
            if (s < 0.0)
                fail("state-legality",
                     detail::formatMessage("link ", l->id(),
                                           ": negative mode residency"));
            residency += s;
        }
        if (!closeEnough(residency, elapsed, 1e-9)) {
            fail("residency-conservation",
                 detail::formatMessage(
                     "link ", l->id(), ": mode residencies sum to ",
                     residency, " s over an elapsed window of ", elapsed,
                     " s"));
        }

        for (double s : {ls.retrainSeconds, ls.degradedSeconds,
                         ls.offSeconds, ls.powerFracSeconds}) {
            if (s < 0.0 || s > elapsed + sec_tol) {
                fail("state-legality",
                     detail::formatMessage(
                         "link ", l->id(), ": per-state seconds ", s,
                         " outside [0, ", elapsed, "]"));
                break;
            }
        }
        if (ls.offSeconds > 0.0 && !l->power().rooEnabled()) {
            fail("state-legality",
                 detail::formatMessage("link ", l->id(),
                                       ": off time without ROO"));
        }

        const RooState rs = l->power().rooState();
        if ((rs == RooState::Off || rs == RooState::Waking ||
             l->retraining()) &&
            l->transmitting()) {
            fail("state-legality",
                 detail::formatMessage(
                     "link ", l->id(),
                     ": transmitting while off/waking/retraining"));
        }
        if (l->laneLimit() < 1 ||
            l->laneLimit() > LinkPowerState::kFullLanes) {
            fail("state-legality",
                 detail::formatMessage("link ", l->id(),
                                       ": lane limit ", l->laneLimit(),
                                       " out of range"));
        }
    }
}

void
Auditor::checkPacketCensus()
{
    if (!proc_)
        return;
    ++checks_;
    const PacketPool &pool = proc_->packetPool();
    const std::uint64_t outstanding =
        static_cast<std::uint64_t>(proc_->outstandingReads()) +
        static_cast<std::uint64_t>(proc_->outstandingWrites());
    if (!packetCensusOk(pool, outstanding)) {
        fail("packet-conservation",
             detail::formatMessage(
                 "pool census: ", pool.acquired(), " issued - ",
                 pool.released(), " retired = ", pool.inFlight(),
                 " in flight, but the processor holds ", outstanding,
                 " outstanding accesses"));
    }
}

void
Auditor::checkManagerInvariants(PowerManager &pm)
{
    const double ps_tol = opts_.absTolPs;

    for (int m = 0; m < pm.modules(); ++m) {
        for (LinkMgmtState *sp :
             {&pm.requestState(m), &pm.responseState(m)}) {
            LinkMgmtState &s = *sp;
            ++checks_;
            if (s.amsPs < -ps_tol) {
                fail("ams-budget",
                     detail::formatMessage("link ", s.link().id(),
                                           ": negative AMS budget ",
                                           s.amsPs, " ps"));
            }
            // A selection below full power must have fit its budget
            // when chosen. Exception: a mid-epoch lane failure snaps
            // selected.bw up to the surviving width regardless of FLO.
            const bool clamped =
                s.link().power().degraded() &&
                s.selected.bw == s.minUsableBw();
            if (!(s.selected == s.fullCombo()) && !clamped) {
                const double f = s.flo(s.selected);
                const double budget =
                    s.amsPs + ps_tol + opts_.relTol * std::fabs(s.amsPs);
                if (f > budget) {
                    fail("ams-budget",
                         detail::formatMessage(
                             "link ", s.link().id(), ": selected combo FLO ",
                             f, " ps exceeds AMS budget ", s.amsPs, " ps"));
                }
            }
        }
    }

    if (pm.grantPoolRemaining() < -ps_tol) {
        fail("ams-budget",
             detail::formatMessage("grant pool over-drawn: ",
                                   pm.grantPoolRemaining(), " ps"));
    }

    // ISP monotonicity (Section VI-A): only the aware policy promises
    // that an upstream link never sits at a lower power mode (narrower
    // bandwidth, earlier turn-off) than a downstream link of its type.
    if (dynamic_cast<AwareManager *>(&pm) == nullptr)
        return;
    const Topology &topo = net_.topology();
    for (int m = 0; m < pm.modules(); ++m) {
        for (int c : topo.children(m)) {
            ++checks_;
            for (bool request : {true, false}) {
                LinkMgmtState &p = request ? pm.requestState(m)
                                           : pm.responseState(m);
                LinkMgmtState &ch = request ? pm.requestState(c)
                                            : pm.responseState(c);
                if (p.selected.bw > ch.selected.bw &&
                    p.selected.bw != p.minUsableBw()) {
                    fail("isp-monotonicity",
                         detail::formatMessage(
                             "link ", p.link().id(), " (module ", m,
                             ") at bw mode ", p.selected.bw,
                             " is narrower than its child link ",
                             ch.link().id(), " at bw mode ",
                             ch.selected.bw));
                }
                if (p.selected.roo < ch.selected.roo) {
                    fail("isp-monotonicity",
                         detail::formatMessage(
                             "link ", p.link().id(), " (module ", m,
                             ") at ROO mode ", p.selected.roo,
                             " turns off earlier than its child link ",
                             ch.link().id(), " at ROO mode ",
                             ch.selected.roo));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Hook entry points
// ---------------------------------------------------------------------

void
Auditor::onEpoch(PowerManager &pm, Tick now)
{
    checkEnergyConservation(now);
    checkEnergyAttribution(now);
    checkLinkStates(now);
    checkPacketCensus();
    checkManagerInvariants(pm);
}

void
Auditor::onInject(const Packet &pkt, Tick)
{
    ++checks_;
    const AddressMap &amap = net_.addressMap();
    const std::uint64_t capacity =
        static_cast<std::uint64_t>(amap.modules) * amap.chunkBytes;
    if (pkt.addr >= capacity) {
        fail("address-map",
             detail::formatMessage(
                 "injected address ", pkt.addr,
                 " beyond mapped capacity ", capacity, " (",
                 amap.modules, " modules x ", amap.chunkBytes,
                 " bytes)"));
    }
}

void
Auditor::finalCheck(Tick now)
{
    checkEnergyConservation(now);
    checkEnergyAttribution(now);
    checkLinkStates(now);
    checkPacketCensus();
    if (mgr_ && mgr_->epochs() > 0)
        checkManagerInvariants(*mgr_);
}

} // namespace audit
} // namespace memnet
