/**
 * @file
 * Runtime invariant auditor.
 *
 * Cross-checks, while a simulation runs, that the layers of the
 * simulator still agree with the physics and with each other (see
 * docs/INVARIANTS.md for the full list with paper citations):
 *
 *  - energy conservation: per link, idleIoJ() + activeIoJ() must equal
 *    the link's full power times its accumulated power-fraction seconds
 *    (mode residency weighted by mode power), within a float-summation
 *    tolerance;
 *  - energy attribution: per link, the fine cause buckets (tx, retrain,
 *    per-mode floor, sleep, wake) must sum to the same physics
 *    prediction, and the system-level attribution ledger must equal the
 *    aggregate EnergyBreakdown with exact double equality (both are
 *    produced by the same arithmetic over the same iteration order);
 *  - residency conservation: per link, the modeSeconds buckets must sum
 *    to the elapsed measured time;
 *  - packet conservation: packets issued == packets retired + packets
 *    in flight, via PacketPool census against the processor's
 *    outstanding counters;
 *  - AMS budget legality: a selected combo's FLO never exceeds the
 *    link's allowable-memory-slowdown budget (Section V), budgets and
 *    the aware grant pool never go negative;
 *  - ISP monotonicity (Section VI): an upstream link never sits at a
 *    lower power mode than a downstream link of the same type, modulo
 *    the degraded-link exception;
 *  - ROO/retrain state legality: an off/waking/retraining link is
 *    never transmitting, off time only accrues with ROO enabled, lane
 *    clamps stay in range;
 *  - address-map validity: every injected request falls inside the
 *    network's mapped capacity.
 *
 * The auditor is a passive observer: it schedules no events and
 * mutates nothing, so an audited run is bit-identical to a bare one.
 * Debug builds audit every run; Release runs opt in via
 * SystemConfig::audit (--audit) or the MEMNET_AUDIT environment
 * variable.
 */

#ifndef MEMNET_AUDIT_AUDIT_HH
#define MEMNET_AUDIT_AUDIT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mgmt/manager.hh"
#include "net/network.hh"
#include "net/packet_pool.hh"
#include "sim/types.hh"

namespace memnet
{

class Processor;

namespace audit
{

struct AuditOptions
{
    /** memnet_fatal on the first failed check (off for unit tests). */
    bool failFast = true;
    /** Relative tolerance for float-sum comparisons. */
    double relTol = 1e-8;
    /** Absolute tolerance floor for energy comparisons (J). */
    double absTolJ = 1e-12;
    /** Absolute tolerance floor for latency-budget comparisons (ps). */
    double absTolPs = 1e-3;
};

/** One failed invariant check. */
struct AuditFailure
{
    std::string check;  ///< stable check name, e.g. "energy-conservation"
    std::string detail; ///< human-readable diagnosis
};

/**
 * Should this run be audited? True in Debug builds, when the config
 * opts in, or when MEMNET_AUDIT is set non-zero in the environment.
 */
bool enabledFor(bool config_opt_in);

class Auditor : public EpochObserver, public NetworkAuditHook
{
  public:
    explicit Auditor(Network &net, const AuditOptions &opts = {});
    ~Auditor() override;

    Auditor(const Auditor &) = delete;
    Auditor &operator=(const Auditor &) = delete;

    /** Attach the packet-census source (optional). */
    void setProcessor(const Processor *proc) { proc_ = proc; }

    /**
     * Hook into the network (inject checks) and, when @p mgr is not
     * null, the manager's epoch boundary (epoch checks).
     */
    void attach(PowerManager *mgr);

    /** Undo attach(); called automatically on destruction. */
    void detach();

    /** The measurement window starts now (stats were just reset). */
    void onMeasureStart(Tick now);

    /** End-of-run sweep over every invariant. */
    void finalCheck(Tick now);

    // -- EpochObserver -----------------------------------------------------

    void onEpoch(PowerManager &pm, Tick now) override;

    // -- NetworkAuditHook --------------------------------------------------

    void onInject(const Packet &pkt, Tick now) override;

    // -- Individual checks (public so tests can drive them directly) ------

    void checkEnergyConservation(Tick now);
    void checkEnergyAttribution(Tick now);
    void checkLinkStates(Tick now);
    void checkPacketCensus();
    void checkManagerInvariants(PowerManager &pm);

    /** The packet-conservation predicate itself (unit-testable). */
    static bool
    packetCensusOk(const PacketPool &pool, std::uint64_t outstanding)
    {
        return pool.inFlight() == outstanding;
    }

    // -- Results -----------------------------------------------------------

    const std::vector<AuditFailure> &failures() const { return failures_; }
    std::uint64_t checksRun() const { return checks_; }

  private:
    void fail(const char *check, std::string detail);
    bool closeEnough(double a, double b, double abs_tol) const;

    Network &net_;
    const Processor *proc_ = nullptr;
    PowerManager *mgr_ = nullptr;
    const AuditOptions opts_;

    /** Start of the audited window (set by onMeasureStart). */
    Tick resetAt_ = 0;

    std::uint64_t checks_ = 0;
    std::vector<AuditFailure> failures_;
};

} // namespace audit
} // namespace memnet

#endif // MEMNET_AUDIT_AUDIT_HH
