#include "audit/differential.hh"

#include <cmath>
#include <sstream>

namespace memnet
{
namespace audit
{

namespace
{

class Differ
{
  public:
    explicit Differ(const DiffOptions &opts) : opts(opts) {}

    void
    field(const std::string &name, double a, double b)
    {
        if (opts.relTol <= 0.0) {
            if (a == b)
                return;
        } else {
            const double scale =
                std::max(std::fabs(a), std::fabs(b));
            if (std::fabs(a - b) <= opts.relTol * scale)
                return;
        }
        out.push_back(DiffEntry{name, a, b});
    }

    void
    field(const std::string &name, std::uint64_t a, std::uint64_t b)
    {
        if (a != b)
            out.push_back(DiffEntry{name, static_cast<double>(a),
                                    static_cast<double>(b)});
    }

    std::vector<DiffEntry> take() { return std::move(out); }

  private:
    const DiffOptions opts;
    std::vector<DiffEntry> out;
};

void
diffPower(Differ &d, const std::string &prefix, const PowerBreakdown &a,
          const PowerBreakdown &b)
{
    d.field(prefix + ".idleIoW", a.idleIoW, b.idleIoW);
    d.field(prefix + ".activeIoW", a.activeIoW, b.activeIoW);
    d.field(prefix + ".logicLeakW", a.logicLeakW, b.logicLeakW);
    d.field(prefix + ".logicDynW", a.logicDynW, b.logicDynW);
    d.field(prefix + ".dramLeakW", a.dramLeakW, b.dramLeakW);
    d.field(prefix + ".dramDynW", a.dramDynW, b.dramDynW);
}

} // namespace

std::vector<DiffEntry>
diffRunResults(const RunResult &a, const RunResult &b,
               const DiffOptions &opts)
{
    Differ d(opts);
    d.field("numModules", static_cast<std::uint64_t>(a.numModules),
            static_cast<std::uint64_t>(b.numModules));
    diffPower(d, "perHmc", a.perHmc, b.perHmc);
    d.field("totalNetworkPowerW", a.totalNetworkPowerW,
            b.totalNetworkPowerW);
    d.field("idleIoFrac", a.idleIoFrac, b.idleIoFrac);
    d.field("readsPerSec", a.readsPerSec, b.readsPerSec);
    d.field("avgReadLatencyNs", a.avgReadLatencyNs, b.avgReadLatencyNs);
    d.field("channelUtil", a.channelUtil, b.channelUtil);
    d.field("avgLinkUtil", a.avgLinkUtil, b.avgLinkUtil);
    d.field("avgModulesTraversed", a.avgModulesTraversed,
            b.avgModulesTraversed);
    d.field("completedReads", a.completedReads, b.completedReads);
    d.field("violations", a.violations, b.violations);

    // RunProfile: the simulation-determined counters must match; the
    // wall-clock fields (wallSeconds, eventsPerSec, profPhases) are
    // deliberately NOT compared — profiled runs diff clean against
    // unprofiled ones. Event-count and queue-shape counters are only
    // compared between runs of the same kernel layout: a partitioned
    // run replays boundary crossings through pipe events the serial
    // kernel doesn't have, so its event stream is a strict superset
    // even when every simulated result above is bit-identical.
    if (a.profile.partitions == b.profile.partitions) {
        d.field("eventsFired", a.eventsFired, b.eventsFired);
        d.field("profile.eventsScheduled", a.profile.eventsScheduled,
                b.profile.eventsScheduled);
        d.field("profile.eventsDescheduled",
                a.profile.eventsDescheduled,
                b.profile.eventsDescheduled);
        d.field("profile.peakQueueDepth", a.profile.peakQueueDepth,
                b.profile.peakQueueDepth);
        d.field("profile.dispatchWindows.size",
                static_cast<std::uint64_t>(
                    a.profile.dispatchWindows.size()),
                static_cast<std::uint64_t>(
                    b.profile.dispatchWindows.size()));
        const std::size_t nw =
            std::min(a.profile.dispatchWindows.size(),
                     b.profile.dispatchWindows.size());
        for (std::size_t wdx = 0; wdx < nw; ++wdx) {
            std::ostringstream name;
            name << "profile.dispatchWindows[" << wdx << "]";
            d.field(name.str(), a.profile.dispatchWindows[wdx],
                    b.profile.dispatchWindows[wdx]);
        }
    }
    d.field("profile.packetsIssued", a.profile.packetsIssued,
            b.profile.packetsIssued);

    d.field("reliability.retries", a.reliability.retries,
            b.reliability.retries);
    d.field("reliability.replays", a.reliability.replays,
            b.reliability.replays);
    d.field("reliability.retrains", a.reliability.retrains,
            b.reliability.retrains);
    d.field("reliability.retrainSeconds", a.reliability.retrainSeconds,
            b.reliability.retrainSeconds);
    d.field("reliability.degradedSeconds",
            a.reliability.degradedSeconds,
            b.reliability.degradedSeconds);
    d.field("reliability.faultEvents", a.reliability.faultEvents,
            b.reliability.faultEvents);

    // RunResult::latency and RunResult::energy are deliberately NOT
    // compared: an observatory may legitimately be enabled on one side
    // only (the differential guarantee is that *everything above*
    // stays bit-identical — test_differential
    // LatencyObservatoryOnEqualsOff / EnergyObservatoryOnEqualsOff),
    // the same exclusion rule as wallSeconds/profPhases.

    for (int u = 0; u < kUtilBuckets; ++u) {
        for (int l = 0; l < kLaneModes; ++l) {
            std::ostringstream name;
            name << "linkHours[" << u << "][" << l << "]";
            d.field(name.str(), a.linkHours[u][l], b.linkHours[u][l]);
        }
    }

    d.field("modules.size",
            static_cast<std::uint64_t>(a.modules.size()),
            static_cast<std::uint64_t>(b.modules.size()));
    const std::size_t n = std::min(a.modules.size(), b.modules.size());
    for (std::size_t m = 0; m < n; ++m) {
        const ModuleDetail &ma = a.modules[m];
        const ModuleDetail &mb = b.modules[m];
        std::ostringstream p;
        p << "modules[" << m << "]";
        d.field(p.str() + ".dramAccesses", ma.dramAccesses,
                mb.dramAccesses);
        d.field(p.str() + ".flitsRouted", ma.flitsRouted,
                mb.flitsRouted);
        d.field(p.str() + ".requestLinkUtil", ma.requestLinkUtil,
                mb.requestLinkUtil);
        d.field(p.str() + ".responseLinkUtil", ma.responseLinkUtil,
                mb.responseLinkUtil);
        d.field(p.str() + ".requestLinkPowerFrac",
                ma.requestLinkPowerFrac, mb.requestLinkPowerFrac);
        d.field(p.str() + ".responseLinkPowerFrac",
                ma.responseLinkPowerFrac, mb.responseLinkPowerFrac);
    }
    return d.take();
}

std::vector<DiffEntry>
diffResultMaps(const std::map<std::string, RunResult> &a,
               const std::map<std::string, RunResult> &b,
               const DiffOptions &opts)
{
    std::vector<DiffEntry> out;
    auto ia = a.begin();
    auto ib = b.begin();
    while (ia != a.end() || ib != b.end()) {
        if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
            out.push_back(DiffEntry{"only_in_a:" + ia->first, 1.0, 0.0});
            ++ia;
        } else if (ia == a.end() || ib->first < ia->first) {
            out.push_back(DiffEntry{"only_in_b:" + ib->first, 0.0, 1.0});
            ++ib;
        } else {
            for (DiffEntry &e :
                 diffRunResults(ia->second, ib->second, opts)) {
                e.field = ia->first + ": " + e.field;
                out.push_back(std::move(e));
            }
            ++ia;
            ++ib;
        }
    }
    return out;
}

std::vector<DiffEntry>
diffMultiVsSingle(const MultiChannelResult &mc, const RunResult &r,
                  const DiffOptions &opts)
{
    Differ d(opts);
    d.field("totalModules",
            static_cast<std::uint64_t>(mc.totalModules),
            static_cast<std::uint64_t>(r.numModules));
    d.field("totalPowerW", mc.totalPowerW, r.totalNetworkPowerW);
    d.field("readsPerSec", mc.readsPerSec, r.readsPerSec);
    d.field("idleIoFrac", mc.idleIoFrac, r.idleIoFrac);
    if (!mc.channelUtil.empty())
        d.field("channelUtil", mc.channelUtil[0], r.channelUtil);
    return d.take();
}

std::string
describeDiffs(const std::vector<DiffEntry> &diffs)
{
    if (diffs.empty())
        return "";
    std::ostringstream os;
    os.precision(17);
    for (const DiffEntry &e : diffs)
        os << e.field << ": " << e.a << " != " << e.b << "\n";
    return os.str();
}

} // namespace audit
} // namespace memnet
