/**
 * @file
 * Differential consistency helpers: field-by-field comparison of runs
 * that must agree (the "bit-identical" claims the repo makes in prose,
 * turned into checks).
 *
 * Equivalences enforced by tests/test_differential.cc and the CI
 * differential job:
 *  - runMultiChannel(channels=1) vs the single-network Simulator;
 *  - obs-on vs obs-off;
 *  - audit-on vs audit-off;
 *  - parallel (--jobs N) vs serial sweeps.
 *
 * Only simulation-determined outputs are compared; the wall-clock /
 * event-throughput profile legitimately differs between equivalent
 * runs and is excluded.
 */

#ifndef MEMNET_AUDIT_DIFFERENTIAL_HH
#define MEMNET_AUDIT_DIFFERENTIAL_HH

#include <map>
#include <string>
#include <vector>

#include "memnet/config.hh"
#include "memnet/multichannel.hh"

namespace memnet
{
namespace audit
{

/** One mismatching field between two runs expected to agree. */
struct DiffEntry
{
    std::string field;
    double a = 0.0;
    double b = 0.0;
};

struct DiffOptions
{
    /** 0 = exact equality expected (the default: bit-identical runs). */
    double relTol = 0.0;
};

/**
 * Compare every simulation-determined field of two RunResults.
 * @return the mismatches (empty when the runs agree).
 */
std::vector<DiffEntry> diffRunResults(const RunResult &a,
                                      const RunResult &b,
                                      const DiffOptions &opts = {});

/**
 * Compare two whole result caches (Runner::results(), or a journal
 * loaded via loadJournal) key by key — the crash-safety equivalence: a
 * killed-and-resumed sweep must match the uninterrupted one exactly.
 * A key present on only one side yields a DiffEntry whose field is
 * "only_in_a:<key>" / "only_in_b:<key>"; shared keys contribute their
 * diffRunResults() mismatches prefixed with the key.
 */
std::vector<DiffEntry>
diffResultMaps(const std::map<std::string, RunResult> &a,
               const std::map<std::string, RunResult> &b,
               const DiffOptions &opts = {});

/**
 * Compare a 1-channel multi-channel result against the single-network
 * simulator result for the same SystemConfig.
 */
std::vector<DiffEntry> diffMultiVsSingle(const MultiChannelResult &mc,
                                         const RunResult &r,
                                         const DiffOptions &opts = {});

/** Render a diff list for assertion messages ("" when empty). */
std::string describeDiffs(const std::vector<DiffEntry> &diffs);

} // namespace audit
} // namespace memnet

#endif // MEMNET_AUDIT_DIFFERENTIAL_HH
