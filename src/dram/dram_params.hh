/**
 * @file
 * HMC DRAM array parameters (Table I of the paper).
 */

#ifndef MEMNET_DRAM_DRAM_PARAMS_HH
#define MEMNET_DRAM_DRAM_PARAMS_HH

#include <cstdint>

#include "sim/types.hh"

namespace memnet
{

/** Timing and organization of one HMC's DRAM stack. */
struct DramParams
{
    /** Capacity per HMC in bytes (4 GB). */
    std::uint64_t capacityBytes = 4ULL << 30;
    /** Vaults per HMC. */
    int vaults = 32;
    /** Banks per vault (not specified by Table I; HMC gen2-like). */
    int banksPerVault = 8;
    /** Vault data rate: x32 at 2 Gbps -> 8 GB/s per vault. */
    double vaultBytesPerSec = 32.0 / 8.0 * 2.0e9;
    /** Request buffer entries per vault. */
    int bufferEntries = 16;
    /** Cache line / access granularity. */
    int lineBytes = 64;

    // Close-page timing (Table I), all in ns.
    Tick tCL = ns(11);
    Tick tRCD = ns(11);
    Tick tRAS = ns(22);
    Tick tRP = ns(11);
    Tick tRRD = ns(5);
    Tick tWR = ns(12);

    /** Data burst time for one line: 64 B at 8 GB/s = 8 ns. */
    Tick
    burstTime() const
    {
        return static_cast<Tick>(lineBytes / vaultBytesPerSec * 1e12 +
                                 0.5);
    }

    /**
     * Close-page read latency through the array: ACT->RD (tRCD) +
     * RD->data (tCL) + burst. 30 ns with Table I values; this is the
     * constant the management hardware uses when accounting DRAM
     * latency (Section V-A).
     */
    Tick
    readAccessLatency() const
    {
        return tRCD + tCL + burstTime();
    }
};

} // namespace memnet

#endif // MEMNET_DRAM_DRAM_PARAMS_HH
