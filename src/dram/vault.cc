#include "dram/vault.hh"

#include <utility>

#include "sim/log.hh"

namespace memnet
{

Vault::Vault(EventQueue &eq, const DramParams &params, Callback cb)
    : eq(eq), params(params), callback(std::move(cb))
{
    bankFreeAt.assign(params.banksPerVault, 0);
}

void
Vault::push(const VaultRequest &req)
{
    if (!hasSpace())
        ++nOverflow;
    if (req.isRead) {
        readQ.push_back(req);
        ++activeReads;
    } else {
        writeQ.push_back(req);
    }
    trySchedule();
}

void
Vault::trySchedule()
{
    if (busy || (readQ.empty() && writeQ.empty()))
        return;
    if (!scheduleEvent.scheduled())
        eq.schedule(&scheduleEvent, eq.now());
}

void
Vault::startNext()
{
    if (busy)
        return;
    // Reads are prioritized: writes are posted and off the critical path.
    if (!readQ.empty()) {
        current = readQ.front();
        readQ.pop_front();
    } else if (!writeQ.empty()) {
        current = writeQ.front();
        writeQ.pop_front();
    } else {
        return;
    }
    busy = true;

    const Tick now = eq.now();
    const int bank = bankOf(current.addr);
    const Tick act = std::max({now, nextActAt, bankFreeAt[bank]});
    // Close page: ACT -> CAS (tRCD) -> data (tCL) -> burst. Writes use
    // the same CAS latency (tCWL ~= tCL simplification).
    const Tick data_ready = act + params.tRCD + params.tCL;
    const Tick bus_start = std::max(data_ready, busFreeAt);
    const Tick done = bus_start + params.burstTime();

    busFreeAt = done;
    nextActAt = act + params.tRRD;
    Tick bank_close = std::max(act + params.tRAS, done);
    if (!current.isRead)
        bank_close = std::max(bank_close, done + params.tWR);
    bankFreeAt[bank] = bank_close + params.tRP;

    if (forecast)
        forecast(current.tag, current.isRead, done);
    eq.schedule(&burstEvent, done);
}

void
Vault::onBurstDone()
{
    memnet_assert(busy, "burst completion while idle");
    busy = false;
    if (current.isRead) {
        ++nReads;
        --activeReads;
    } else {
        ++nWrites;
    }
    callback(current.tag, current.isRead, eq.now());
    trySchedule();
}

} // namespace memnet
