/**
 * @file
 * Cycle-level model of one HMC vault (a vertical slice of the DRAM
 * stack with its own TSV data bus and controller).
 *
 * Close-page policy: every access performs ACT -> RD/WR -> burst ->
 * auto-precharge. The vault serializes bursts on its data bus, spaces
 * activates by tRRD, and respects per-bank tRAS/tRP/tWR. Reads are
 * prioritized over writes (writes are posted and off the critical path).
 */

#ifndef MEMNET_DRAM_VAULT_HH
#define MEMNET_DRAM_VAULT_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "dram/dram_params.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace memnet
{

/** One queued vault request. */
struct VaultRequest
{
    std::uint64_t addr = 0;
    bool isRead = true;
    /** Opaque tag returned with the completion callback. */
    std::uint64_t tag = 0;
};

/**
 * One vault: banks + TSV bus + a 16-entry request queue.
 */
class Vault
{
  public:
    /** Completion callback: (tag, isRead, completionTick). */
    using Callback = std::function<void(std::uint64_t, bool, Tick)>;

    Vault(EventQueue &eq, const DramParams &params, Callback cb);

    /**
     * Enqueue a request. The caller must check hasSpace() first when it
     * wants to honor the 16-entry buffer; overflow is tolerated but
     * counted (in-flight traffic is bounded by the cores' MSHRs, see
     * DESIGN.md).
     */
    void push(const VaultRequest &req);

    bool
    hasSpace() const
    {
        return static_cast<int>(readQ.size() + writeQ.size()) <
               params.bufferEntries;
    }

    /** Outstanding requests (queued + in service). */
    std::size_t
    pending() const
    {
        return readQ.size() + writeQ.size() + (busy ? 1u : 0u);
    }

    /** Reads currently being serviced or queued (for wake coordination). */
    bool readsInFlight() const { return activeReads > 0; }

    std::uint64_t servicedReads() const { return nReads; }
    std::uint64_t servicedWrites() const { return nWrites; }
    std::uint64_t overflowed() const { return nOverflow; }

    /**
     * Install a service-start forecast: called from inside the
     * scheduling event the moment an access's completion tick is
     * fixed, with the same (tag, isRead, done) the completion callback
     * will later deliver. The completion tick of a started access
     * never moves, so a partitioned run can promise a posted write's
     * retirement to the processor partition at service start — the
     * promise message's key matches the burst event's exactly.
     */
    void setForecast(Callback cb) { forecast = std::move(cb); }

  private:
    void trySchedule();
    void startNext();
    void onBurstDone();

    /** Pick the bank for a line address (line-interleaved). */
    int
    bankOf(std::uint64_t addr) const
    {
        return static_cast<int>((addr / params.lineBytes /
                                 static_cast<unsigned>(params.vaults)) %
                                static_cast<unsigned>(
                                    params.banksPerVault));
    }

    EventQueue &eq;
    const DramParams &params;
    Callback callback;
    Callback forecast;

    std::deque<VaultRequest> readQ;
    std::deque<VaultRequest> writeQ;

    /** Earliest tick each bank may start a new ACT. */
    std::vector<Tick> bankFreeAt;
    /** Earliest tick the shared data bus is free. */
    Tick busFreeAt = 0;
    /** Earliest tick a new ACT may issue (tRRD spacing). */
    Tick nextActAt = 0;

    bool busy = false;
    int activeReads = 0;
    VaultRequest current{};

    std::uint64_t nReads = 0;
    std::uint64_t nWrites = 0;
    std::uint64_t nOverflow = 0;

    MemberEvent<Vault, &Vault::startNext> scheduleEvent{this};
    MemberEvent<Vault, &Vault::onBurstDone> burstEvent{this};
};

} // namespace memnet

#endif // MEMNET_DRAM_VAULT_HH
