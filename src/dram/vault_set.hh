/**
 * @file
 * The 32 vaults of one HMC module behind a line-interleaved decoder.
 */

#ifndef MEMNET_DRAM_VAULT_SET_HH
#define MEMNET_DRAM_VAULT_SET_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "dram/vault.hh"

namespace memnet
{

/**
 * Owns a module's vaults and decodes line addresses onto them
 * (line-interleaved per Table I).
 */
class VaultSet
{
  public:
    VaultSet(EventQueue &eq, const DramParams &params,
             Vault::Callback cb)
        : params(params)
    {
        vaults.reserve(params.vaults);
        for (int i = 0; i < params.vaults; ++i)
            vaults.push_back(std::make_unique<Vault>(eq, params, cb));
    }

    /** Vault index for an address (line-interleaved). */
    int
    vaultOf(std::uint64_t addr) const
    {
        return static_cast<int>(
            (addr / static_cast<unsigned>(params.lineBytes)) %
            static_cast<unsigned>(params.vaults));
    }

    void
    access(std::uint64_t addr, bool is_read, std::uint64_t tag)
    {
        vaults[vaultOf(addr)]->push(VaultRequest{addr, is_read, tag});
    }

    /** True if any vault is servicing or holding a read. */
    bool
    readsInFlight() const
    {
        for (const auto &v : vaults)
            if (v->readsInFlight())
                return true;
        return false;
    }

    std::uint64_t
    servicedReads() const
    {
        std::uint64_t n = 0;
        for (const auto &v : vaults)
            n += v->servicedReads();
        return n;
    }

    std::uint64_t
    servicedWrites() const
    {
        std::uint64_t n = 0;
        for (const auto &v : vaults)
            n += v->servicedWrites();
        return n;
    }

    const Vault &vault(int i) const { return *vaults[i]; }
    int numVaults() const { return params.vaults; }

    /** Install a service-start forecast on every vault. */
    void
    setForecast(const Vault::Callback &cb)
    {
        for (auto &v : vaults)
            v->setForecast(cb);
    }

  private:
    const DramParams &params;
    std::vector<std::unique_ptr<Vault>> vaults;
};

} // namespace memnet

#endif // MEMNET_DRAM_VAULT_SET_HH
