/**
 * @file
 * Passive power/performance state of one unidirectional link.
 *
 * Owns the bandwidth mode (VWL/DVFS operating point), the in-flight mode
 * transition if any, and the ROO on/off/waking state. It is passive:
 * the owning Link passes in the current tick and drives wake/sleep
 * timing with its own events; this keeps the state machine unit-testable
 * without an event queue.
 *
 * Modeling choices (documented in DESIGN.md): during a mode transition
 * the link keeps operating at the *lower* of the two bandwidths while
 * drawing the *higher* of the two powers, for the mechanism's published
 * transition latency (1 us VWL, 3 us DVFS).
 *
 * Lane clamp (fault model): a permanent lane failure caps the usable
 * width at `laneClamp` lanes. A mode then runs on
 * min(mode.lanes, clamp) lanes: bandwidth scales with the surviving
 * fraction of the mode's lanes and power follows the VWL-style
 * (l+1)/(L+1) rule (dead lanes stop toggling, the I/O clock stays on).
 * SERDES latency is unaffected.
 */

#ifndef MEMNET_LINKPM_LINK_POWER_STATE_HH
#define MEMNET_LINKPM_LINK_POWER_STATE_HH

#include <algorithm>
#include <cstddef>

#include "linkpm/modes.hh"
#include "sim/log.hh"
#include "sim/types.hh"

namespace memnet
{

/** ROO on/off/waking state of a link. */
enum class RooState : std::uint8_t
{
    On,
    Off,
    Waking,
};

class LinkPowerState
{
  public:
    LinkPowerState(const ModeTable *table, const RooConfig *roo)
        : table_(table), roo_(roo)
    {
        memnet_assert(table && roo, "null link power config");
        rooModeIdx_ = roo->enabled ? roo->fullModeIndex() : 0;
    }

    // -- Bandwidth mode -------------------------------------------------

    /** Currently selected (target) mode index. */
    std::size_t modeIndex() const { return modeIdx_; }

    const LinkMode &mode() const { return table_->mode(modeIdx_); }

    /**
     * Select a new bandwidth mode. If it differs from the current one, a
     * transition starts at @p now and completes after the mechanism's
     * transition latency.
     * @return the tick at which the transition completes (now if none).
     */
    Tick
    setMode(Tick now, std::size_t idx)
    {
        memnet_assert(idx < table_->size(), "mode index out of range");
        // Clamp to the surviving lanes: selections wider than the
        // degraded link can drive silently land on the widest usable
        // mode (the managers are told via LinkObserver::onDegrade, but
        // must never be able to over-select).
        idx = std::max(idx, minUsableIdx_);
        if (idx == modeIdx_)
            return std::max(now, transEnd_);
        prevModeIdx_ = effectiveModeIdx(now);
        modeIdx_ = idx;
        transEnd_ = now + table_->transitionPs();
        return transEnd_;
    }

    /** True while a mode transition is in flight. */
    bool inTransition(Tick now) const { return now < transEnd_; }

    // -- Lane clamp (permanent degradation) -----------------------------

    /**
     * Permanently cap the usable width at @p lanes. Only ever tightens:
     * a clamp wider than the current one is ignored.
     */
    void
    setLaneClamp(int lanes)
    {
        memnet_assert(lanes >= 1, "lane clamp must leave a lane");
        if (lanes >= laneClamp_)
            return;
        laneClamp_ = lanes;
        minUsableIdx_ = 0;
        for (std::size_t k = 0; k < table_->size(); ++k) {
            minUsableIdx_ = k;
            if (table_->mode(k).lanes <= laneClamp_)
                break;
        }
    }

    /** Usable width cap (16 when healthy). */
    int laneClamp() const { return laneClamp_; }

    bool degraded() const { return laneClamp_ < kFullLanes; }

    /**
     * Lowest mode index (widest mode) that fits the surviving lanes.
     * When no mode fits, the narrowest mode: it still runs, derated.
     */
    std::size_t minUsableMode() const { return minUsableIdx_; }

    /** Bandwidth multiplier the clamp imposes on mode @p k. */
    double
    laneBwMult(std::size_t k) const
    {
        const int l = table_->mode(k).lanes;
        return l <= laneClamp_
                   ? 1.0
                   : static_cast<double>(laneClamp_) / l;
    }

    /** Power multiplier the clamp imposes on mode @p k. */
    double
    lanePowerMult(std::size_t k) const
    {
        const int l = table_->mode(k).lanes;
        if (l <= laneClamp_)
            return 1.0;
        return static_cast<double>(laneClamp_ + 1) / (l + 1);
    }

    static constexpr int kFullLanes = 16;

    Tick transitionEnd() const { return transEnd_; }

    /** Effective flit serialization time at @p now. */
    Tick
    flitTime(Tick now) const
    {
        const double bw = effectiveBwFrac(now);
        return static_cast<Tick>(
            static_cast<double>(LinkTiming::kFullFlitPs) / bw + 0.5);
    }

    /** Effective SERDES latency at @p now. */
    Tick
    serdes(Tick now) const
    {
        const LinkMode &a = table_->mode(modeIdx_);
        if (!inTransition(now))
            return a.serdesPs;
        const LinkMode &b = table_->mode(prevModeIdx_);
        return std::max(a.serdesPs, b.serdesPs);
    }

    /** Power fraction drawn while the link is on, at @p now. */
    double
    onPowerFrac(Tick now) const
    {
        const double a =
            table_->mode(modeIdx_).powerFrac * lanePowerMult(modeIdx_);
        if (!inTransition(now))
            return a;
        const double b = table_->mode(prevModeIdx_).powerFrac *
                         lanePowerMult(prevModeIdx_);
        return std::max(a, b);
    }

    // -- ROO --------------------------------------------------------------

    bool rooEnabled() const { return roo_->enabled; }

    RooState rooState() const { return rooState_; }

    /** Selected ROO mode (index into thresholds). */
    std::size_t rooModeIndex() const { return rooModeIdx_; }

    void
    setRooMode(std::size_t idx)
    {
        memnet_assert(idx < roo_->thresholdsPs.size(), "bad ROO mode");
        rooModeIdx_ = idx;
    }

    /** Idleness threshold of the current ROO mode. */
    Tick idleThreshold() const { return roo_->thresholdsPs[rooModeIdx_]; }

    /** Index of the "full power" ROO mode (largest threshold). */
    std::size_t rooFullModeIndex() const { return roo_->fullModeIndex(); }

    Tick wakeupLatency() const { return roo_->wakeupPs; }

    /** Enter the off state (only valid when on). */
    void
    turnOff()
    {
        memnet_assert(rooState_ == RooState::On, "turnOff while not on");
        rooState_ = RooState::Off;
    }

    /**
     * Begin waking an off link.
     * @return the tick at which the link is usable.
     */
    Tick
    beginWake(Tick now)
    {
        memnet_assert(rooState_ == RooState::Off, "wake while not off");
        rooState_ = RooState::Waking;
        wakeEnd_ = now + roo_->wakeupPs;
        return wakeEnd_;
    }

    /** Complete a wake (owner calls at the tick beginWake returned). */
    void
    finishWake()
    {
        memnet_assert(rooState_ == RooState::Waking, "not waking");
        rooState_ = RooState::On;
    }

    Tick wakeEnd() const { return wakeEnd_; }

    /** Instantaneous power fraction including ROO state, at @p now. */
    double
    powerFrac(Tick now) const
    {
        if (rooState_ == RooState::Off)
            return roo_->offPowerFrac;
        // A waking link already draws full on-state power.
        return onPowerFrac(now);
    }

  private:
    std::size_t
    effectiveModeIdx(Tick now) const
    {
        if (!inTransition(now))
            return modeIdx_;
        // During a transition the slower of the two modes applies.
        return table_->mode(modeIdx_).bwFrac * laneBwMult(modeIdx_) <
                       table_->mode(prevModeIdx_).bwFrac *
                           laneBwMult(prevModeIdx_)
                   ? modeIdx_
                   : prevModeIdx_;
    }

    double
    effectiveBwFrac(Tick now) const
    {
        const std::size_t k = effectiveModeIdx(now);
        return table_->mode(k).bwFrac * laneBwMult(k);
    }

    const ModeTable *table_;
    const RooConfig *roo_;
    int laneClamp_ = kFullLanes;
    std::size_t minUsableIdx_ = 0;
    std::size_t modeIdx_ = 0;
    std::size_t prevModeIdx_ = 0;
    Tick transEnd_ = 0;
    RooState rooState_ = RooState::On;
    std::size_t rooModeIdx_ = 0;
    Tick wakeEnd_ = 0;
};

} // namespace memnet

#endif // MEMNET_LINKPM_LINK_POWER_STATE_HH
