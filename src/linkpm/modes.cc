#include "linkpm/modes.hh"

#include "sim/log.hh"

namespace memnet
{

// The tables are function-local statics so construction order is safe.

const ModeTable &
ModeTable::forMechanism(BwMechanism m)
{
    static const ModeTable none(
        BwMechanism::None,
        {{"full", 1.0, 1.0, LinkTiming::kSerdesPs, 16}}, 0);

    // VWL: power is (lanes + 1)/17 of full; SERDES latency unchanged;
    // 1 us to change the number of active lanes [17].
    static const ModeTable vwl(
        BwMechanism::Vwl,
        {{"16-lane", 16.0 / 16, 17.0 / 17, LinkTiming::kSerdesPs, 16},
         {"8-lane", 8.0 / 16, 9.0 / 17, LinkTiming::kSerdesPs, 8},
         {"4-lane", 4.0 / 16, 5.0 / 17, LinkTiming::kSerdesPs, 4},
         {"1-lane", 1.0 / 16, 2.0 / 17, LinkTiming::kSerdesPs, 1}},
        us(1));

    // DVFS: 100/80/50/14% bandwidth at 0/30/65/92% power reduction [16].
    // SERDES is clocked by the I/O clock, so its latency scales with the
    // inverse frequency ratio; the 14% mode is one 8-lane bundle at Vmin
    // (frequency ratio 0.14 * 16/8 = 0.28). Bundle-staged voltage
    // scaling takes up to 3 us total.
    static const ModeTable dvfs(
        BwMechanism::Dvfs,
        {{"dvfs-100", 1.00, 1.00, LinkTiming::kSerdesPs, 16},
         {"dvfs-80", 0.80, 0.70, nsf(3.2 / 0.80), 16},
         {"dvfs-50", 0.50, 0.35, nsf(3.2 / 0.50), 16},
         {"dvfs-14", 0.14, 0.08, nsf(3.2 / 0.28), 8}},
        us(3));

    switch (m) {
      case BwMechanism::None:
        return none;
      case BwMechanism::Vwl:
        return vwl;
      case BwMechanism::Dvfs:
        return dvfs;
    }
    memnet_panic("unknown mechanism");
}

} // namespace memnet
