/**
 * @file
 * Circuit-level I/O power control mechanism models (Section IV).
 *
 * Three mechanisms are modeled, matching the paper:
 *
 *  - VWL (variable-width links): 16/8/4/1 active lanes; power of an
 *    l-lane link is (l+1)/17 of full power (the +1 is the I/O clock);
 *    SERDES latency unchanged; 1 us to change width.
 *  - DVFS: modes delivering 100/80/50/14% bandwidth at 0/30/65/92% power
 *    reduction; SERDES latency scales inversely with the I/O frequency
 *    ratio (the 14% mode runs one 8-lane bundle at Vmin, i.e. frequency
 *    ratio 0.28); voltage scaling is staged over bundles, up to 3 us.
 *  - ROO (rapid on/off): a link turns off after an idleness threshold of
 *    32/128/512/2048 ns (2048 ns doubles as the "full power" ROO mode),
 *    draws 1% power when off, and takes 14 ns (20 ns for the sensitivity
 *    study) to wake.
 *
 * A bandwidth mechanism (None/VWL/DVFS) may be combined with ROO.
 */

#ifndef MEMNET_LINKPM_MODES_HH
#define MEMNET_LINKPM_MODES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace memnet
{

/** Which bandwidth-scaling mechanism a link supports. */
enum class BwMechanism : std::uint8_t
{
    None, ///< always full bandwidth
    Vwl,  ///< variable link width
    Dvfs, ///< voltage/frequency scaling
};

/** One steady-state operating point of a link's bandwidth mechanism. */
struct LinkMode
{
    std::string name;
    double bwFrac;    ///< fraction of full link bandwidth
    double powerFrac; ///< fraction of full link power while on
    Tick serdesPs;    ///< SERDES latency at this operating point
    int lanes;        ///< active lanes (16 for pure-DVFS full modes)
};

/** Nominal full-power link timing constants. */
struct LinkTiming
{
    /** One 16 B flit per 0.64 ns at 16 lanes x 12.5 Gbps. */
    static constexpr Tick kFullFlitPs = 640;
    /** Full-power SERDES latency. */
    static constexpr Tick kSerdesPs = 3200;
    /** Router: 4 pipeline cycles at 0.64 ns. */
    static constexpr Tick kRouterPs = 4 * 640;
    /**
     * Host-interface SERDES: the processor-side link controller's
     * serialization FIFO between the cores and the channel root
     * (net/boundary.hh). Every injected request crosses it, in both the
     * serial and the partitioned kernel — in the latter it is also the
     * processor partition's conservative lookahead, so it must stay
     * strictly positive (docs/PERFORMANCE.md).
     */
    static constexpr Tick kHostIfPs = 3200;
    /** Link controller buffer entries. */
    static constexpr int kBufferEntries = 128;
};

/**
 * The ordered table of modes for one mechanism; index 0 is full power and
 * indices increase toward lower power.
 */
class ModeTable
{
  public:
    /** Table for the given mechanism (None yields a single full mode). */
    static const ModeTable &forMechanism(BwMechanism m);

    const LinkMode &mode(std::size_t i) const { return modes_[i]; }
    std::size_t size() const { return modes_.size(); }

    /** Latency (per transition) to move between two modes. */
    Tick transitionPs() const { return transitionPs_; }

    BwMechanism mechanism() const { return mech_; }

  private:
    ModeTable(BwMechanism m, std::vector<LinkMode> modes, Tick trans)
        : mech_(m), modes_(std::move(modes)), transitionPs_(trans)
    {
    }

    BwMechanism mech_;
    std::vector<LinkMode> modes_;
    Tick transitionPs_;
};

/**
 * Link reliability model. HMC links protect packets with CRC and
 * retry corrupted ones from a retry buffer; at the error rates of a
 * healthy channel this is invisible, but it lets users study how
 * degraded channels inflate both latency and active-I/O energy.
 */
struct LinkErrorModel
{
    /** Probability that one transmitted flit is corrupted. */
    double flitErrorRate = 0.0;
    /** NAK turnaround before the retry begins. */
    Tick retryDelayPs = ns(10);

    bool enabled() const { return flitErrorRate > 0.0; }
};

/** ROO configuration shared by all links of a run. */
struct RooConfig
{
    bool enabled = false;
    /** Idleness thresholds; the last one is the "full power" ROO mode. */
    std::vector<Tick> thresholdsPs = {ns(32), ns(128), ns(512), ns(2048)};
    Tick wakeupPs = ns(14);
    double offPowerFrac = 0.01;

    std::size_t fullModeIndex() const { return thresholdsPs.size() - 1; }
};

} // namespace memnet

#endif // MEMNET_LINKPM_MODES_HH
