/**
 * @file
 * Top-level run configuration and result types — the library's public
 * entry surface together with Simulator.
 */

#ifndef MEMNET_MEMNET_CONFIG_HH
#define MEMNET_MEMNET_CONFIG_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "linkpm/modes.hh"
#include "net/topology.hh"
#include "obs/energy_observatory.hh"
#include "obs/options.hh"
#include "obs/prof.hh"
#include "obs/quantile_sketch.hh"
#include "power/power_breakdown.hh"
#include "sim/fault.hh"
#include "sim/partition.hh"
#include "sim/types.hh"

namespace memnet
{

/** Network scale study: how much address space each module serves. */
enum class SizeClass
{
    Small, ///< 4 GB per HMC (the paper's small network study)
    Big,   ///< 1 GB per HMC (the paper's big network study)
};

const char *sizeClassName(SizeClass s);

/** Which management policy runs on top of the link mechanisms. */
enum class Policy
{
    FullPower,   ///< no management: links always on at full bandwidth
    Unaware,     ///< Section V
    Aware,       ///< Section VI
    StaticTaper, ///< Section VII-A (static fat/tapered tree)
};

const char *policyName(Policy p);

/**
 * Ablation switches for the network-aware manager (Section VI). All on
 * by default; the ablation benches turn them off one at a time.
 */
struct AwareFeatures
{
    /** ISP scatter/gather iterations (the paper caps at three). */
    int ispIterations = 3;
    /** Apply the QD/QF congestion discount (Section VI-C). */
    bool congestionDiscount = true;
    /** Coordinate response-link wakeups along the path (Section VI-B). */
    bool wakeCoordination = true;
    /** Back mid-epoch violations with the leftover-AMS grant pool. */
    bool grantPool = true;

    bool
    operator==(const AwareFeatures &o) const
    {
        return ispIterations == o.ispIterations &&
               congestionDiscount == o.congestionDiscount &&
               wakeCoordination == o.wakeCoordination &&
               grantPool == o.grantPool;
    }
};

/** Everything needed to reproduce one simulation run. */
struct SystemConfig
{
    TopologyKind topology = TopologyKind::DaisyChain;
    SizeClass sizeClass = SizeClass::Small;
    std::string workload = "ua.D";

    BwMechanism mechanism = BwMechanism::None;
    bool roo = false;
    Tick rooWakeupPs = ns(14);
    /** I/O power attribution variant (see power/hmc_power_model.hh). */
    IoAttribution ioAttribution = IoAttribution::PerEnd;
    /** Flit corruption probability (CRC retry model; 0 = clean links). */
    double linkFlitErrorRate = 0.0;

    /**
     * Deterministic fault schedule (retrains, lane failures, error
     * bursts). The default — an empty plan — is guaranteed to be
     * bit-identical to a run without any fault machinery.
     */
    FaultPlan faults;

    /**
     * Stalled-read watchdog timeout. 0 = automatic: off for fault-free
     * runs (preserving their event stream exactly), 300 us when the
     * fault plan is non-empty. Negative = always off. Positive = use
     * the given timeout unconditionally.
     */
    Tick watchdogTimeoutPs = 0;

    Policy policy = Policy::FullPower;
    double alphaPct = 5.0;
    Tick epochLen = us(100);
    AwareFeatures aware;

    /** Page-interleaved address mapping (static-taper comparison). */
    bool interleavePages = false;

    Tick warmup = us(100);
    Tick measure = us(400);
    std::uint64_t seed = 1;

    /**
     * Event-kernel partitions (sim/partition.hh). 1 = the classic
     * serial kernel. >1 shards the run by channel onto worker threads
     * synchronized with conservative lookahead: partition 0 runs the
     * processor, the remaining partitions run the channel networks. A
     * single-channel run has exactly one channel to offload, so any
     * value >1 behaves as 2; multi-channel runs use up to one
     * partition per channel.
     */
    int partitions = 1;

    /**
     * Synchronization mode for partitioned runs. Barrier (the default)
     * is bit-identical to the serial kernel and is what differential
     * tests and journal resume rely on; Lax trades that equivalence
     * (while staying run-to-run deterministic) for fewer barriers.
     */
    PartitionSync partitionSync = PartitionSync::Barrier;

    /** Lax-mode window length (ignored under Barrier sync). */
    Tick laxWindowPs = us(10);

    int cores = 16;
    int maxReadsPerCore = 12;
    int maxWritesPerCore = 32;

    /**
     * Observability outputs (src/obs). All off by default; never part
     * of Runner's memoization key and never affects simulation results.
     */
    ObsOptions obs;

    /**
     * Run the runtime invariant auditor (src/audit) even in Release
     * builds. Debug builds always audit; the MEMNET_AUDIT environment
     * variable is a third opt-in path. Auditing is purely observational
     * — results are bit-identical with it on or off — so, like obs, it
     * is never part of Runner's memoization key.
     */
    bool audit = false;

    /**
     * Record the latency observatory (per-access decomposition into
     * QuantileSketches, RunResult::latency, net.lat.* stats). On by
     * default: recording is passive — packets are stamped either way
     * and the sketches never schedule events — so simulated results are
     * bit-identical on vs. off (test_differential) and, like obs and
     * audit, this is never part of Runner's memoization key.
     */
    bool latencyObs = true;

    /**
     * Record the energy observatory (per-joule attribution ledger,
     * congestion sketches, RunResult::energy, net.energy.* stats). On
     * by default: the attribution counters are always stamped — they
     * ARE the simulator's energy ledger — and the switch only gates the
     * occupancy sketches and summaries, so simulated results are
     * bit-identical on vs. off (test_differential) and, like
     * latencyObs, this is never part of Runner's memoization key.
     */
    bool energyObs = true;

    /** Bytes of address space served by one module. */
    std::uint64_t
    chunkBytes() const
    {
        return sizeClass == SizeClass::Small ? (4ULL << 30)
                                             : (1ULL << 30);
    }

    /** Short human-readable description. */
    std::string describe() const;
};

/** Utilization-bucket edges for the Figure 13 link-hours breakdown. */
constexpr int kUtilBuckets = 5;
extern const char *const kUtilBucketNames[kUtilBuckets];

/** Lane-mode groups reported in Figure 13 (16/8/4/1 lanes). */
constexpr int kLaneModes = 4;

/** Per-module measurement detail (for reports and examples). */
struct ModuleDetail
{
    int id = 0;
    bool highRadix = false;
    int hopDistance = 1;
    std::uint64_t dramAccesses = 0;
    std::uint64_t flitsRouted = 0;
    double requestLinkUtil = 0.0;
    double responseLinkUtil = 0.0;
    /** Time-weighted average power fraction of the two links. */
    double requestLinkPowerFrac = 1.0;
    double responseLinkPowerFrac = 1.0;
};

/**
 * Reliability counters aggregated over every link of the run's
 * measurement window (all zero for clean, fault-free runs).
 */
struct ReliabilityStats
{
    /** CRC retransmissions (LinkErrorModel + error bursts). */
    std::uint64_t retries = 0;
    /** Packets whose serialization a retrain aborted and replayed. */
    std::uint64_t replays = 0;
    /** Retrain windows entered across all links. */
    std::uint64_t retrains = 0;
    /** Link-seconds spent retraining. */
    double retrainSeconds = 0.0;
    /** Link-seconds spent at reduced width (permanent lane failures). */
    double degradedSeconds = 0.0;
    /** Fault-injector events fired over the whole run (incl. warmup). */
    std::uint64_t faultEvents = 0;

    bool
    any() const
    {
        return retries || replays || retrains || faultEvents ||
               retrainSeconds > 0.0 || degradedSeconds > 0.0;
    }
};

/**
 * Simulation-rate profile of one run (whole run, warmup included).
 * wallSeconds and profPhases are the only fields that vary between
 * identical runs; everything else is simulation-determined.
 */
/**
 * Per-partition kernel statistics of a partitioned run
 * (RunProfile::partitionLanes; empty for serial runs).
 */
struct PartitionLane
{
    std::uint64_t eventsFired = 0;
    std::uint64_t eventsScheduled = 0;
    std::uint64_t peakQueueDepth = 0;
    /** Synchronization windows this lane executed. */
    std::uint64_t windows = 0;
    /** Wall-clock nanoseconds this lane spent waiting at barriers. */
    std::uint64_t barrierWaitNs = 0;
};

struct RunProfile
{
    std::uint64_t eventsFired = 0;
    std::uint64_t eventsScheduled = 0;
    double wallSeconds = 0.0;
    double simSeconds = 0.0;

    /** Event-kernel partitions the run executed on (1 = serial). */
    int partitions = 1;
    /** True when a partitioned run used Lax (non-bit-identical) sync. */
    bool laxSync = false;
    /** Per-partition kernel statistics (empty for serial runs). */
    std::vector<PartitionLane> partitionLanes;

    /** Packets issued through the pool (whole run, warmup included). */
    std::uint64_t packetsIssued = 0;
    /** Packets actually heap-allocated (the pool's high-water mark). */
    std::uint64_t packetHeapAllocs = 0;

    /** Invariant checks the runtime auditor ran (0 = auditing off). */
    std::uint64_t auditChecksRun = 0;

    /** Explicit event removals (link sleep timers, watchdog rearms). */
    std::uint64_t eventsDescheduled = 0;
    /** High-water mark of the event queue over the whole run. */
    std::uint64_t peakQueueDepth = 0;
    /** Events fired per dispatchWindowPs of sim time (closed windows). */
    std::vector<std::uint64_t> dispatchWindows;
    /** Sim-time length of one dispatchWindows entry. */
    Tick dispatchWindowPs = 0;

    /**
     * Host-side profiler phases attributed to this run (empty unless
     * prof::setEnabled(true)). Wall-clock data: like wallSeconds, it
     * varies between identical runs and is excluded from differential
     * comparison (audit::diffRunResults) and diff_runs.py.
     */
    std::vector<prof::ProfPhase> profPhases;

    /** Heap allocations the packet freelist avoided. */
    std::uint64_t
    packetAllocsAvoided() const
    {
        return packetsIssued -
               (packetHeapAllocs < packetsIssued ? packetHeapAllocs
                                                 : packetsIssued);
    }

    double
    eventsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(eventsFired) / wallSeconds
                   : 0.0;
    }

    /** Simulated seconds per wall second (higher = faster). */
    double
    simRate() const
    {
        return wallSeconds > 0.0 ? simSeconds / wallSeconds : 0.0;
    }
};

/** Measured outputs of one run. */
struct RunResult
{
    SystemConfig config;
    int numModules = 0;

    /** Average power of one HMC, split like Figure 5. */
    PowerBreakdown perHmc;
    double totalNetworkPowerW = 0.0;
    double idleIoFrac = 0.0; ///< idle I/O / total network power

    /** Performance: completed reads per second of simulated time. */
    double readsPerSec = 0.0;
    double avgReadLatencyNs = 0.0;

    double channelUtil = 0.0;
    double avgLinkUtil = 0.0;
    double avgModulesTraversed = 0.0;

    std::uint64_t completedReads = 0;
    std::uint64_t violations = 0;

    /** Aggregated link reliability counters (measurement window). */
    ReliabilityStats reliability;

    /**
     * Latency observatory: per-component percentiles over completed
     * reads of the measurement window plus network-wide stall totals
     * ({enabled=false, all zero} when cfg.latencyObs is off).
     */
    LatencyBreakdown latency;

    /**
     * Energy observatory: the exact per-cause attribution ledger plus
     * congestion-sketch percentiles ({enabled=false, all zero} when
     * cfg.energyObs is off).
     */
    EnergySummary energy;

    /** link-seconds[util bucket][lane mode] (Figure 13). */
    std::array<std::array<double, kLaneModes>, kUtilBuckets> linkHours{};

    /** Events fired / wall time, for the harness log. */
    std::uint64_t eventsFired = 0;

    /** Wall-clock and event-throughput profile of the run. */
    RunProfile profile;

    /** Per-module measurement detail. */
    std::vector<ModuleDetail> modules;
};

} // namespace memnet

#endif // MEMNET_MEMNET_CONFIG_HH
