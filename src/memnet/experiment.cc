#include "memnet/experiment.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "sim/log.hh"
#include "workload/profile.hh"

namespace memnet
{

const std::vector<TopologyKind> &
allTopologies()
{
    static const std::vector<TopologyKind> v = {
        TopologyKind::DaisyChain, TopologyKind::TernaryTree,
        TopologyKind::Star, TopologyKind::DdrxLike};
    return v;
}

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> v = [] {
        std::vector<std::string> names;
        for (const WorkloadProfile &w : allWorkloads())
            names.push_back(w.name);
        return names;
    }();
    return v;
}

std::string
Runner::key(const SystemConfig &cfg)
{
    std::ostringstream os;
    os << cfg.workload << '|' << static_cast<int>(cfg.topology) << '|'
       << static_cast<int>(cfg.sizeClass) << '|'
       << static_cast<int>(cfg.mechanism) << '|' << cfg.roo << '|'
       << cfg.rooWakeupPs << '|' << static_cast<int>(cfg.policy) << '|'
       << cfg.alphaPct << '|' << cfg.epochLen << '|'
       << cfg.interleavePages << '|' << cfg.warmup << '|' << cfg.measure
       << '|' << cfg.seed << '|' << cfg.cores << '|'
       << cfg.maxReadsPerCore << '|' << cfg.maxWritesPerCore << '|'
       << static_cast<int>(cfg.ioAttribution) << '|'
       << cfg.linkFlitErrorRate << '|'
       << cfg.aware.ispIterations << cfg.aware.congestionDiscount
       << cfg.aware.wakeCoordination << cfg.aware.grantPool << '|'
       << cfg.watchdogTimeoutPs << '|' << cfg.faults.flapMeanPeriodPs
       << ',' << cfg.faults.flapWindowPs;
    for (const FaultSpec &f : cfg.faults.events) {
        os << ';' << static_cast<int>(f.kind) << ',' << f.at << ','
           << f.link << ',' << f.durationPs << ',' << f.survivingLanes
           << ',' << f.flitErrorRate;
    }
    return os.str();
}

SystemConfig
Runner::fullPowerBaseline(SystemConfig cfg)
{
    cfg.policy = Policy::FullPower;
    cfg.mechanism = BwMechanism::None;
    cfg.roo = false;
    cfg.interleavePages = false;
    return cfg;
}

const RunResult &
Runner::get(const SystemConfig &cfg)
{
    const std::string k = key(cfg);
    auto it = cache.find(k);
    if (it != cache.end())
        return it->second;
    RunResult r = runSimulation(cfg);
    ++executed;
    if (verbose) {
        std::fprintf(stderr, "  [run %3d] %-40s P=%6.2fW perf=%8.3g\n",
                     executed, cfg.describe().c_str(),
                     r.totalNetworkPowerW, r.readsPerSec);
    }
    return cache.emplace(k, std::move(r)).first->second;
}

double
Runner::degradation(const SystemConfig &cfg)
{
    const RunResult &base = get(fullPowerBaseline(cfg));
    const RunResult &r = get(cfg);
    if (base.readsPerSec <= 0.0)
        return 0.0;
    return 1.0 - r.readsPerSec / base.readsPerSec;
}

double
Runner::powerReduction(const SystemConfig &cfg)
{
    const RunResult &base = get(fullPowerBaseline(cfg));
    const RunResult &r = get(cfg);
    if (base.totalNetworkPowerW <= 0.0)
        return 0.0;
    return 1.0 - r.totalNetworkPowerW / base.totalNetworkPowerW;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    memnet_assert(cells.size() == headers_.size(),
                  "table row width mismatch");
    rows_.push_back(std::move(cells));
}

std::string
TextTable::fmt(double v, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::pct(double v, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
    return buf;
}

void
TextTable::print() const
{
    std::vector<std::size_t> w(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        w[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            w[c] = std::max(w[c], row[c].size());

    auto line = [&](const std::vector<std::string> &cells) {
        std::string out;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                out += "  ";
            // Left-align the first column, right-align the rest.
            const std::size_t pad = w[c] - cells[c].size();
            if (c == 0) {
                out += cells[c] + std::string(pad, ' ');
            } else {
                out += std::string(pad, ' ') + cells[c];
            }
        }
        std::printf("%s\n", out.c_str());
    };

    line(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < w.size(); ++c)
        total += w[c] + (c ? 2 : 0);
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &row : rows_)
        line(row);
}

void
printBanner(const std::string &title, const std::string &subtitle)
{
    std::printf("\n=== %s ===\n%s\n\n", title.c_str(), subtitle.c_str());
}

} // namespace memnet
