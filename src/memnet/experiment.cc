#include "memnet/experiment.hh"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <utility>

#include "memnet/journal.hh"
#include "sim/log.hh"
#include "workload/profile.hh"

namespace memnet
{

const std::vector<TopologyKind> &
allTopologies()
{
    static const std::vector<TopologyKind> v = {
        TopologyKind::DaisyChain, TopologyKind::TernaryTree,
        TopologyKind::Star, TopologyKind::DdrxLike};
    return v;
}

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> v = [] {
        std::vector<std::string> names;
        for (const WorkloadProfile &w : allWorkloads())
            names.push_back(w.name);
        return names;
    }();
    return v;
}

std::string
Runner::key(const SystemConfig &cfg)
{
    // Hot enough to matter at sweep scale (every get() builds a key):
    // a plain string appender with std::to_chars instead of an
    // ostringstream. Doubles use shortest-round-trip formatting, which
    // is injective — two distinct values never share a spelling.
    std::string k;
    k.reserve(128 + cfg.workload.size() + 48 * cfg.faults.events.size());
    char buf[32];
    const auto num = [&k, &buf](auto v) {
        const auto res = std::to_chars(buf, buf + sizeof(buf), v);
        k.append(buf, res.ptr);
    };
    const auto field = [&k, &num](auto v) {
        num(v);
        k.push_back('|');
    };
    k += cfg.workload;
    k.push_back('|');
    field(static_cast<int>(cfg.topology));
    field(static_cast<int>(cfg.sizeClass));
    field(static_cast<int>(cfg.mechanism));
    field(static_cast<int>(cfg.roo));
    field(cfg.rooWakeupPs);
    field(static_cast<int>(cfg.policy));
    field(cfg.alphaPct);
    field(cfg.epochLen);
    field(static_cast<int>(cfg.interleavePages));
    field(cfg.warmup);
    field(cfg.measure);
    field(cfg.seed);
    field(cfg.cores);
    field(cfg.maxReadsPerCore);
    field(cfg.maxWritesPerCore);
    field(static_cast<int>(cfg.ioAttribution));
    field(cfg.linkFlitErrorRate);
    // The aware block is ','-separated: streaming the four values with
    // no separators let lookalike neighbours collide (e.g. a two-digit
    // ispIterations against a one-digit one absorbing a flag digit).
    num(cfg.aware.ispIterations);
    k.push_back(',');
    num(static_cast<int>(cfg.aware.congestionDiscount));
    k.push_back(',');
    num(static_cast<int>(cfg.aware.wakeCoordination));
    k.push_back(',');
    num(static_cast<int>(cfg.aware.grantPool));
    k.push_back('|');
    field(cfg.watchdogTimeoutPs);
    num(cfg.faults.flapMeanPeriodPs);
    k.push_back(',');
    num(cfg.faults.flapWindowPs);
    for (const FaultSpec &f : cfg.faults.events) {
        k.push_back(';');
        num(static_cast<int>(f.kind));
        k.push_back(',');
        num(f.at);
        k.push_back(',');
        num(f.link);
        k.push_back(',');
        num(f.durationPs);
        k.push_back(',');
        num(f.survivingLanes);
        k.push_back(',');
        num(f.flitErrorRate);
    }
    // Deterministic (barrier) partitioned runs are bit-identical to
    // serial, so they intentionally share the serial key: a journaled
    // serial sweep resumes a partitioned one and vice versa. Only lax
    // mode changes simulated results, so only it extends the key.
    if (cfg.partitions > 1 && cfg.partitionSync == PartitionSync::Lax) {
        k += "|lax:";
        num(cfg.partitions);
        k.push_back(',');
        num(cfg.laxWindowPs);
    }
    return k;
}

SystemConfig
Runner::fullPowerBaseline(SystemConfig cfg)
{
    cfg.policy = Policy::FullPower;
    cfg.mechanism = BwMechanism::None;
    cfg.roo = false;
    cfg.interleavePages = false;
    return cfg;
}

const RunResult &
Runner::get(const SystemConfig &cfg)
{
    const std::string k = key(cfg);
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        auto it = cache.find(k);
        if (it != cache.end())
            return it->second;
        if (failedKeys.count(k))
            return placeholder;
        auto rp = resumePool.find(k);
        if (rp != resumePool.end()) {
            // Promote the journal record on first request; the pool
            // entry is spent so a later --resume load can re-fill it.
            ++resumed;
            const RunResult &slot =
                cache.emplace(k, std::move(rp->second)).first->second;
            resumePool.erase(rp);
            return slot;
        }
        if (collecting) {
            // First pass of a --jobs bench run: record, don't simulate.
            if (pendingKeys.insert(k).second)
                pendingConfigs.push_back(cfg);
            return placeholder;
        }
        if (inflight.insert(k).second)
            break;
        // Another thread is simulating this config; wait for it.
        cv.wait(lock);
    }
    lock.unlock();
    RunResult r;
    try {
        r = runSimulation(cfg);
    } catch (...) {
        // Release the key so waiters retry (and hit the same error)
        // instead of deadlocking on a result that will never arrive.
        lock.lock();
        inflight.erase(k);
        cv.notify_all();
        throw;
    }
    // Journal (its own mutex, flushed) before publishing: a crash
    // after this line can only lose results no caller ever observed.
    // The pointer is read under the cache lock but the file write
    // happens outside it, so workers don't serialize on disk I/O.
    lock.lock();
    RunJournal *j = journal;
    lock.unlock();
    if (j)
        j->append(k, r);
    lock.lock();
    ++executed;
    if (verbose) {
        std::fprintf(stderr, "  [run %3d] %-40s P=%6.2fW perf=%8.3g\n",
                     executed, cfg.describe().c_str(),
                     r.totalNetworkPowerW, r.readsPerSec);
    }
    // References into the sorted map stay valid across later inserts.
    const RunResult &slot = cache.emplace(k, std::move(r)).first->second;
    inflight.erase(k);
    cv.notify_all();
    return slot;
}

void
Runner::beginCollect()
{
    std::lock_guard<std::mutex> lock(mu);
    memnet_assert(inflight.empty(),
                  "beginCollect() while runs are in flight");
    collecting = true;
    pendingConfigs.clear();
    pendingKeys.clear();
}

void
Runner::addResumePool(std::map<std::string, RunResult> pool)
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto &kv : pool) {
        // Keys already promoted (or freshly simulated) stay as they
        // are; among pending pool entries the latest load wins, the
        // same dedup rule loadJournal applies within one file.
        if (!cache.count(kv.first))
            resumePool.insert_or_assign(kv.first, std::move(kv.second));
    }
}

void
Runner::markFailed(const SystemConfig &cfg)
{
    std::lock_guard<std::mutex> lock(mu);
    failedKeys.insert(key(cfg));
}

std::vector<SystemConfig>
Runner::endCollect()
{
    std::lock_guard<std::mutex> lock(mu);
    collecting = false;
    pendingKeys.clear();
    return std::exchange(pendingConfigs, {});
}

double
Runner::degradation(const SystemConfig &cfg)
{
    const RunResult &base = get(fullPowerBaseline(cfg));
    const RunResult &r = get(cfg);
    if (base.readsPerSec <= 0.0)
        return 0.0;
    return 1.0 - r.readsPerSec / base.readsPerSec;
}

double
Runner::powerReduction(const SystemConfig &cfg)
{
    const RunResult &base = get(fullPowerBaseline(cfg));
    const RunResult &r = get(cfg);
    if (base.totalNetworkPowerW <= 0.0)
        return 0.0;
    return 1.0 - r.totalNetworkPowerW / base.totalNetworkPowerW;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    memnet_assert(cells.size() == headers_.size(),
                  "table row width mismatch");
    rows_.push_back(std::move(cells));
}

std::string
TextTable::fmt(double v, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::pct(double v, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
    return buf;
}

void
TextTable::print() const
{
    std::vector<std::size_t> w(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        w[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            w[c] = std::max(w[c], row[c].size());

    auto line = [&](const std::vector<std::string> &cells) {
        std::string out;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                out += "  ";
            // Left-align the first column, right-align the rest.
            const std::size_t pad = w[c] - cells[c].size();
            if (c == 0) {
                out += cells[c] + std::string(pad, ' ');
            } else {
                out += std::string(pad, ' ') + cells[c];
            }
        }
        std::printf("%s\n", out.c_str());
    };

    line(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < w.size(); ++c)
        total += w[c] + (c ? 2 : 0);
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &row : rows_)
        line(row);
}

void
printBanner(const std::string &title, const std::string &subtitle)
{
    std::printf("\n=== %s ===\n%s\n\n", title.c_str(), subtitle.c_str());
}

} // namespace memnet
