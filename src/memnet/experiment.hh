/**
 * @file
 * Experiment sweep utilities shared by the bench binaries: a memoizing
 * runner (full-power baselines are reused across figures), standard
 * sweep lists, and an aligned-column table printer.
 */

#ifndef MEMNET_MEMNET_EXPERIMENT_HH
#define MEMNET_MEMNET_EXPERIMENT_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "memnet/config.hh"
#include "memnet/simulator.hh"

namespace memnet
{

/** The four evaluated topologies, in the paper's order. */
const std::vector<TopologyKind> &allTopologies();

/** The fourteen workload names, in the paper's order. */
const std::vector<std::string> &workloadNames();

/**
 * Memoizing simulation runner. Results are cached per canonical config
 * key for the lifetime of the process, so a bench can freely re-request
 * baselines.
 */
class Runner
{
  public:
    /** Run (or fetch) the simulation for @p cfg. */
    const RunResult &get(const SystemConfig &cfg);

    /** Canonical cache key. */
    static std::string key(const SystemConfig &cfg);

    /** Same config with management and mechanisms stripped. */
    static SystemConfig fullPowerBaseline(SystemConfig cfg);

    /**
     * Throughput degradation of @p cfg versus its full-power baseline
     * (positive = slower).
     */
    double degradation(const SystemConfig &cfg);

    /** Network power reduction of @p cfg versus its baseline. */
    double powerReduction(const SystemConfig &cfg);

    /** Runs executed so far (not counting cache hits). */
    int runsExecuted() const { return executed; }

    /**
     * Every cached result keyed by canonical config key (sorted map,
     * so iteration — and bench --json output — is deterministic).
     */
    const std::map<std::string, RunResult> &results() const
    {
        return cache;
    }

    /** Emit one progress line per fresh run to stderr. */
    bool verbose = false;

  private:
    std::map<std::string, RunResult> cache;
    int executed = 0;
};

/** Simple aligned-column text table, matching the paper's figures. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Format helpers. */
    static std::string fmt(double v, int precision = 2);
    static std::string pct(double v, int precision = 1);

    /** Render to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner for a bench. */
void printBanner(const std::string &title, const std::string &subtitle);

} // namespace memnet

#endif // MEMNET_MEMNET_EXPERIMENT_HH
