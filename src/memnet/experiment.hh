/**
 * @file
 * Experiment sweep utilities shared by the bench binaries: a memoizing
 * runner (full-power baselines are reused across figures), standard
 * sweep lists, and an aligned-column table printer.
 */

#ifndef MEMNET_MEMNET_EXPERIMENT_HH
#define MEMNET_MEMNET_EXPERIMENT_HH

#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "memnet/config.hh"
#include "memnet/simulator.hh"

namespace memnet
{

class RunJournal;

/** The four evaluated topologies, in the paper's order. */
const std::vector<TopologyKind> &allTopologies();

/** The fourteen workload names, in the paper's order. */
const std::vector<std::string> &workloadNames();

/**
 * Memoizing simulation runner. Results are cached per canonical config
 * key for the lifetime of the process, so a bench can freely re-request
 * baselines.
 *
 * get() is thread-safe: the ParallelRunner (memnet/parallel.hh) calls
 * it from worker threads, which share one cache. Concurrent requests
 * for the same config run it once — later callers block until the
 * first finishes. Results (and the sorted iteration order of
 * results()) are independent of thread count because every run owns
 * its EventQueue and seeded RNGs.
 */
class Runner
{
  public:
    /** Run (or fetch) the simulation for @p cfg. */
    const RunResult &get(const SystemConfig &cfg);

    /** Canonical cache key. */
    static std::string key(const SystemConfig &cfg);

    /** Same config with management and mechanisms stripped. */
    static SystemConfig fullPowerBaseline(SystemConfig cfg);

    /**
     * Throughput degradation of @p cfg versus its full-power baseline
     * (positive = slower).
     */
    double degradation(const SystemConfig &cfg);

    /** Network power reduction of @p cfg versus its baseline. */
    double powerReduction(const SystemConfig &cfg);

    /** Runs executed so far (not counting cache hits). */
    int
    runsExecuted() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return executed;
    }

    /**
     * Every cached result keyed by canonical config key (sorted map,
     * so iteration — and bench --json output — is deterministic).
     * Not synchronized: call only while no worker threads are active.
     */
    const std::map<std::string, RunResult> &results() const
    {
        return cache;
    }

    /**
     * Sweep collection, the first pass of a `--jobs N` bench run: while
     * collecting, get() records each distinct uncached config instead
     * of simulating it and returns a zeroed placeholder result. The
     * recorded list is then executed concurrently by a ParallelRunner,
     * after which the bench body replays against the warm cache.
     */
    void beginCollect();

    /** Stop collecting; returns the recorded configs (first-seen order). */
    std::vector<SystemConfig> endCollect();

    /**
     * Attach a run journal (nullptr detaches): every freshly executed
     * run is appended and flushed before get() returns it. Cache hits,
     * resumed results, and collect-mode placeholders are not journaled
     * — the journal records exactly the work this process performed.
     */
    void
    setJournal(RunJournal *j)
    {
        std::lock_guard<std::mutex> lock(mu);
        journal = j;
    }

    /**
     * Pre-warm from journal records (--resume): merged into a lazy side
     * pool, promoted into the cache only when a key is actually
     * requested. results() therefore still lists exactly the sweep's
     * own configs — a journal carrying extra runs cannot leak foreign
     * results into a bench's JSON output. Last call wins per key.
     */
    void addResumePool(std::map<std::string, RunResult> pool);

    /** Requests served from the resume pool instead of simulating. */
    std::uint64_t
    resumedHits() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return resumed;
    }

    /**
     * Poison @p cfg after a failure (isolate policy): later get() calls
     * return a zeroed placeholder instead of re-running a config known
     * to crash or hang, and results() never includes it. A waiter
     * already blocked on the failing in-flight key can slip past the
     * marker and re-simulate once; the second failure is deterministic
     * and the failure manifest dedups by key, so this only costs time.
     */
    void markFailed(const SystemConfig &cfg);

    /** Emit one progress line per fresh run to stderr. */
    bool verbose = false;

  private:
    mutable std::mutex mu;
    std::condition_variable cv;
    std::map<std::string, RunResult> cache;
    /** Keys being simulated right now (dedups concurrent requests). */
    std::set<std::string> inflight;
    /** Journal attached via setJournal() (not owned). */
    RunJournal *journal = nullptr;
    /** Loaded journal records not yet requested (see addResumePool). */
    std::map<std::string, RunResult> resumePool;
    /** Keys poisoned by markFailed(). */
    std::set<std::string> failedKeys;
    std::uint64_t resumed = 0;

    /** Collect-mode state (single-threaded first pass). */
    bool collecting = false;
    std::vector<SystemConfig> pendingConfigs;
    std::set<std::string> pendingKeys;
    RunResult placeholder;

    int executed = 0;
};

/** Simple aligned-column text table, matching the paper's figures. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Format helpers. */
    static std::string fmt(double v, int precision = 2);
    static std::string pct(double v, int precision = 1);

    /** Render to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner for a bench. */
void printBanner(const std::string &title, const std::string &subtitle);

} // namespace memnet

#endif // MEMNET_MEMNET_EXPERIMENT_HH
