#include "memnet/journal.hh"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

#include "memnet/experiment.hh"
#include "memnet/parallel.hh"
#include "obs/json.hh"
#include "sim/log.hh"

namespace memnet
{

std::uint32_t
crc32(const void *data, std::size_t n)
{
    // IEEE 802.3 / zlib polynomial (reflected), table built on first
    // use so the library carries no third-party dependency.
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c >> 1) ^ (0xEDB88320u & (0u - (c & 1u)));
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t crc = 0xFFFFFFFFu;
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i)
        crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

std::string
hexDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

bool
parseHexDouble(const std::string &s, double *out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size() || errno == ERANGE)
        return false;
    *out = v;
    return true;
}

namespace
{

using obs::JsonWriter;
using obs::json::Value;

/* ----------------------------------------------------------------- *
 * Writing: every scalar as a string (decimal integers, hex-float
 * doubles) so nothing is squeezed through a double-backed JSON DOM.
 * ----------------------------------------------------------------- */

void
numField(JsonWriter &w, const std::string &k, std::uint64_t v)
{
    w.field(k, std::to_string(v));
}

void
numField(JsonWriter &w, const std::string &k, std::int64_t v)
{
    w.field(k, std::to_string(v));
}

void
intField(JsonWriter &w, const std::string &k, int v)
{
    numField(w, k, static_cast<std::int64_t>(v));
}

void
hexField(JsonWriter &w, const std::string &k, double v)
{
    w.field(k, hexDouble(v));
}

void
writeConfig(JsonWriter &w, const SystemConfig &c)
{
    w.beginObject();
    w.field("workload", c.workload);
    intField(w, "topology", static_cast<int>(c.topology));
    intField(w, "size_class", static_cast<int>(c.sizeClass));
    intField(w, "mechanism", static_cast<int>(c.mechanism));
    w.field("roo", c.roo);
    numField(w, "roo_wakeup_ps", static_cast<std::int64_t>(c.rooWakeupPs));
    intField(w, "io_attribution", static_cast<int>(c.ioAttribution));
    hexField(w, "link_flit_error_rate", c.linkFlitErrorRate);
    numField(w, "watchdog_timeout_ps",
             static_cast<std::int64_t>(c.watchdogTimeoutPs));
    intField(w, "policy", static_cast<int>(c.policy));
    hexField(w, "alpha_pct", c.alphaPct);
    numField(w, "epoch_len", static_cast<std::int64_t>(c.epochLen));
    w.key("aware");
    w.beginObject();
    intField(w, "isp_iterations", c.aware.ispIterations);
    w.field("congestion_discount", c.aware.congestionDiscount);
    w.field("wake_coordination", c.aware.wakeCoordination);
    w.field("grant_pool", c.aware.grantPool);
    w.endObject();
    w.field("interleave_pages", c.interleavePages);
    numField(w, "warmup", static_cast<std::int64_t>(c.warmup));
    numField(w, "measure", static_cast<std::int64_t>(c.measure));
    numField(w, "seed", c.seed);
    intField(w, "cores", c.cores);
    intField(w, "max_reads_per_core", c.maxReadsPerCore);
    intField(w, "max_writes_per_core", c.maxWritesPerCore);
    intField(w, "partitions", c.partitions);
    w.field("partition_sync", partitionSyncName(c.partitionSync));
    numField(w, "lax_window_ps",
             static_cast<std::int64_t>(c.laxWindowPs));
    w.key("faults");
    w.beginObject();
    numField(w, "flap_mean_period_ps",
             static_cast<std::int64_t>(c.faults.flapMeanPeriodPs));
    numField(w, "flap_window_ps",
             static_cast<std::int64_t>(c.faults.flapWindowPs));
    w.key("events");
    w.beginArray();
    for (const FaultSpec &f : c.faults.events) {
        w.beginObject();
        intField(w, "kind", static_cast<int>(f.kind));
        numField(w, "at", static_cast<std::int64_t>(f.at));
        intField(w, "link", f.link);
        numField(w, "duration_ps", static_cast<std::int64_t>(f.durationPs));
        intField(w, "surviving_lanes", f.survivingLanes);
        hexField(w, "flit_error_rate", f.flitErrorRate);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.endObject();
}

void
writeResult(JsonWriter &w, const RunResult &r)
{
    w.beginObject();
    intField(w, "num_modules", r.numModules);
    w.key("per_hmc_w");
    w.beginObject();
    hexField(w, "idle_io", r.perHmc.idleIoW);
    hexField(w, "active_io", r.perHmc.activeIoW);
    hexField(w, "logic_leak", r.perHmc.logicLeakW);
    hexField(w, "logic_dyn", r.perHmc.logicDynW);
    hexField(w, "dram_leak", r.perHmc.dramLeakW);
    hexField(w, "dram_dyn", r.perHmc.dramDynW);
    w.endObject();
    hexField(w, "total_network_w", r.totalNetworkPowerW);
    hexField(w, "idle_io_frac", r.idleIoFrac);
    hexField(w, "reads_per_sec", r.readsPerSec);
    hexField(w, "avg_read_latency_ns", r.avgReadLatencyNs);
    hexField(w, "channel_util", r.channelUtil);
    hexField(w, "avg_link_util", r.avgLinkUtil);
    hexField(w, "avg_modules_traversed", r.avgModulesTraversed);
    numField(w, "completed_reads", r.completedReads);
    numField(w, "violations", r.violations);
    numField(w, "events_fired", r.eventsFired);
    w.key("reliability");
    w.beginObject();
    numField(w, "retries", r.reliability.retries);
    numField(w, "replays", r.reliability.replays);
    numField(w, "retrains", r.reliability.retrains);
    hexField(w, "retrain_s", r.reliability.retrainSeconds);
    hexField(w, "degraded_s", r.reliability.degradedSeconds);
    numField(w, "fault_events", r.reliability.faultEvents);
    w.endObject();
    w.key("latency");
    w.beginObject();
    w.field("enabled", r.latency.enabled);
    hexField(w, "wake_stall_s", r.latency.wakeStallSeconds);
    hexField(w, "retrain_stall_s", r.latency.retrainStallSeconds);
    numField(w, "queue_peak", r.latency.queuePeak);
    const auto latComponent = [&](const char *name,
                                  const LatencyPercentiles &lp) {
        w.key(name);
        w.beginObject();
        numField(w, "samples", lp.samples);
        numField(w, "sum_ps", lp.sumPs);
        numField(w, "p50_ps", lp.p50Ps);
        numField(w, "p90_ps", lp.p90Ps);
        numField(w, "p99_ps", lp.p99Ps);
        numField(w, "p999_ps", lp.p999Ps);
        numField(w, "max_ps", lp.maxPs);
        w.endObject();
    };
    latComponent("end_to_end", r.latency.endToEnd);
    latComponent("queue", r.latency.queue);
    latComponent("wake_stall", r.latency.wakeStall);
    latComponent("retrain_stall", r.latency.retrainStall);
    latComponent("serialization", r.latency.serialization);
    latComponent("dram", r.latency.dram);
    w.endObject();
    // Energy observatory: the attribution ledger as hex-floats so a
    // resumed result is bit-identical to the live one, plus the
    // congestion-sketch summaries (integer; latComponent's generic
    // sum/quantile fields, units are ppm / packets here).
    w.key("energy");
    w.beginObject();
    w.field("enabled", r.energy.enabled);
    const EnergyAttribution &ea = r.energy.attribution;
    hexField(w, "tx_j", ea.txJ);
    hexField(w, "retrain_j", ea.retrainJ);
    w.key("idle_mode_j");
    w.beginArray();
    for (double jv : ea.idleModeJ)
        w.value(hexDouble(jv));
    w.endArray();
    hexField(w, "sleep_j", ea.sleepJ);
    hexField(w, "wake_j", ea.wakeJ);
    hexField(w, "serdes_leak_j", ea.serdesLeakJ);
    hexField(w, "router_j", ea.routerJ);
    hexField(w, "dram_leak_j", ea.dramLeakJ);
    hexField(w, "dram_dyn_j", ea.dramDynJ);
    hexField(w, "idle_io_j", ea.idleIoJ);
    hexField(w, "active_io_j", ea.activeIoJ);
    latComponent("utilization_ppm", r.energy.utilization);
    latComponent("occupancy", r.energy.occupancy);
    w.endObject();
    // Row-major [util bucket][lane mode] flattening of the 5x4 matrix.
    w.key("link_hours");
    w.beginArray();
    for (const auto &bucket : r.linkHours)
        for (double v : bucket)
            w.value(hexDouble(v));
    w.endArray();
    w.key("profile");
    w.beginObject();
    numField(w, "events_fired", r.profile.eventsFired);
    numField(w, "events_scheduled", r.profile.eventsScheduled);
    hexField(w, "wall_s", r.profile.wallSeconds);
    hexField(w, "sim_s", r.profile.simSeconds);
    numField(w, "packets_issued", r.profile.packetsIssued);
    numField(w, "packet_heap_allocs", r.profile.packetHeapAllocs);
    numField(w, "audit_checks_run", r.profile.auditChecksRun);
    numField(w, "events_descheduled", r.profile.eventsDescheduled);
    numField(w, "peak_queue_depth", r.profile.peakQueueDepth);
    numField(w, "dispatch_window_ps",
             static_cast<std::int64_t>(r.profile.dispatchWindowPs));
    w.key("dispatch_windows");
    w.beginArray();
    for (std::uint64_t v : r.profile.dispatchWindows)
        w.value(std::to_string(v));
    w.endArray();
    // profPhases are host wall-clock data, excluded from every
    // equivalence check (audit::diffRunResults, diff_runs.py), and
    // deliberately not journaled: a resumed result has none, exactly
    // like an unprofiled run.
    w.endObject();
    w.key("modules");
    w.beginArray();
    for (const ModuleDetail &m : r.modules) {
        w.beginObject();
        intField(w, "id", m.id);
        w.field("high_radix", m.highRadix);
        intField(w, "hop_distance", m.hopDistance);
        numField(w, "dram_accesses", m.dramAccesses);
        numField(w, "flits_routed", m.flitsRouted);
        hexField(w, "request_link_util", m.requestLinkUtil);
        hexField(w, "response_link_util", m.responseLinkUtil);
        hexField(w, "request_link_power_frac", m.requestLinkPowerFrac);
        hexField(w, "response_link_power_frac", m.responseLinkPowerFrac);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

/* ----------------------------------------------------------------- *
 * Reading: typed accessors over the DOM with path-tagged errors.
 * ----------------------------------------------------------------- */

struct Reader
{
    std::string err;

    bool
    fail(const std::string &path, const std::string &what)
    {
        if (err.empty())
            err = path + ": " + what;
        return false;
    }

    const Value *
    member(const Value &obj, const std::string &path, const char *k)
    {
        const Value *v = obj.find(k);
        if (!v)
            fail(path + "." + k, "missing");
        return v;
    }

    bool
    getString(const Value &obj, const std::string &path, const char *k,
              std::string *out)
    {
        const Value *v = member(obj, path, k);
        if (!v)
            return false;
        if (!v->isString())
            return fail(path + "." + k, "not a string");
        *out = v->string;
        return true;
    }

    bool
    getBool(const Value &obj, const std::string &path, const char *k,
            bool *out)
    {
        const Value *v = member(obj, path, k);
        if (!v)
            return false;
        if (v->kind != Value::Kind::Bool)
            return fail(path + "." + k, "not a bool");
        *out = v->boolean;
        return true;
    }

    bool
    getU64(const Value &obj, const std::string &path, const char *k,
           std::uint64_t *out)
    {
        std::string s;
        if (!getString(obj, path, k, &s))
            return false;
        errno = 0;
        char *end = nullptr;
        const std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
        if (s.empty() || end != s.c_str() + s.size() || errno == ERANGE ||
            s[0] == '-')
            return fail(path + "." + k, "not a u64: '" + s + "'");
        *out = v;
        return true;
    }

    bool
    getI64(const Value &obj, const std::string &path, const char *k,
           std::int64_t *out)
    {
        std::string s;
        if (!getString(obj, path, k, &s))
            return false;
        errno = 0;
        char *end = nullptr;
        const std::int64_t v = std::strtoll(s.c_str(), &end, 10);
        if (s.empty() || end != s.c_str() + s.size() || errno == ERANGE)
            return fail(path + "." + k, "not an i64: '" + s + "'");
        *out = v;
        return true;
    }

    bool
    getInt(const Value &obj, const std::string &path, const char *k,
           int *out)
    {
        std::int64_t v = 0;
        if (!getI64(obj, path, k, &v))
            return false;
        if (v < INT32_MIN || v > INT32_MAX)
            return fail(path + "." + k, "out of int range");
        *out = static_cast<int>(v);
        return true;
    }

    bool
    getHex(const Value &obj, const std::string &path, const char *k,
           double *out)
    {
        std::string s;
        if (!getString(obj, path, k, &s))
            return false;
        if (!parseHexDouble(s, out))
            return fail(path + "." + k, "not a hex-float: '" + s + "'");
        return true;
    }
};

bool
readConfig(Reader &rd, const Value &v, SystemConfig *c)
{
    const std::string p = "config";
    if (!v.isObject())
        return rd.fail(p, "not an object");
    int topology = 0, sizeClass = 0, mechanism = 0, ioAttr = 0,
        policy = 0;
    bool ok = rd.getString(v, p, "workload", &c->workload) &&
              rd.getInt(v, p, "topology", &topology) &&
              rd.getInt(v, p, "size_class", &sizeClass) &&
              rd.getInt(v, p, "mechanism", &mechanism) &&
              rd.getBool(v, p, "roo", &c->roo) &&
              rd.getI64(v, p, "roo_wakeup_ps", &c->rooWakeupPs) &&
              rd.getInt(v, p, "io_attribution", &ioAttr) &&
              rd.getHex(v, p, "link_flit_error_rate",
                        &c->linkFlitErrorRate) &&
              rd.getI64(v, p, "watchdog_timeout_ps",
                        &c->watchdogTimeoutPs) &&
              rd.getInt(v, p, "policy", &policy) &&
              rd.getHex(v, p, "alpha_pct", &c->alphaPct) &&
              rd.getI64(v, p, "epoch_len", &c->epochLen) &&
              rd.getBool(v, p, "interleave_pages", &c->interleavePages) &&
              rd.getI64(v, p, "warmup", &c->warmup) &&
              rd.getI64(v, p, "measure", &c->measure) &&
              rd.getU64(v, p, "seed", &c->seed) &&
              rd.getInt(v, p, "cores", &c->cores) &&
              rd.getInt(v, p, "max_reads_per_core", &c->maxReadsPerCore) &&
              rd.getInt(v, p, "max_writes_per_core",
                        &c->maxWritesPerCore);
    if (!ok)
        return false;
    c->topology = static_cast<TopologyKind>(topology);
    c->sizeClass = static_cast<SizeClass>(sizeClass);
    c->mechanism = static_cast<BwMechanism>(mechanism);
    c->ioAttribution = static_cast<IoAttribution>(ioAttr);
    c->policy = static_cast<Policy>(policy);

    // Partition fields postdate the v1 journal schema: absent members
    // keep the SystemConfig defaults (serial kernel), so old journals
    // load unchanged. Probe with find() — member() would record a
    // sticky "missing" error for perfectly valid v1 records.
    if (v.find("partitions") &&
        !rd.getInt(v, p, "partitions", &c->partitions))
        return false;
    if (v.find("partition_sync")) {
        std::string sync;
        if (!rd.getString(v, p, "partition_sync", &sync))
            return false;
        if (!parsePartitionSync(sync, &c->partitionSync))
            return rd.fail(p + ".partition_sync", "unknown mode");
    }
    if (v.find("lax_window_ps") &&
        !rd.getI64(v, p, "lax_window_ps", &c->laxWindowPs))
        return false;

    const Value *aware = rd.member(v, p, "aware");
    if (!aware)
        return false;
    if (!aware->isObject())
        return rd.fail(p + ".aware", "not an object");
    if (!(rd.getInt(*aware, p + ".aware", "isp_iterations",
                    &c->aware.ispIterations) &&
          rd.getBool(*aware, p + ".aware", "congestion_discount",
                     &c->aware.congestionDiscount) &&
          rd.getBool(*aware, p + ".aware", "wake_coordination",
                     &c->aware.wakeCoordination) &&
          rd.getBool(*aware, p + ".aware", "grant_pool",
                     &c->aware.grantPool)))
        return false;

    const Value *faults = rd.member(v, p, "faults");
    if (!faults)
        return false;
    if (!faults->isObject())
        return rd.fail(p + ".faults", "not an object");
    if (!(rd.getI64(*faults, p + ".faults", "flap_mean_period_ps",
                    &c->faults.flapMeanPeriodPs) &&
          rd.getI64(*faults, p + ".faults", "flap_window_ps",
                    &c->faults.flapWindowPs)))
        return false;
    const Value *events = rd.member(*faults, p + ".faults", "events");
    if (!events)
        return false;
    if (!events->isArray())
        return rd.fail(p + ".faults.events", "not an array");
    c->faults.events.clear();
    for (std::size_t i = 0; i < events->array.size(); ++i) {
        std::ostringstream ep;
        ep << p << ".faults.events[" << i << "]";
        const Value &e = events->array[i];
        if (!e.isObject())
            return rd.fail(ep.str(), "not an object");
        FaultSpec f;
        int kind = 0;
        if (!(rd.getInt(e, ep.str(), "kind", &kind) &&
              rd.getI64(e, ep.str(), "at", &f.at) &&
              rd.getInt(e, ep.str(), "link", &f.link) &&
              rd.getI64(e, ep.str(), "duration_ps", &f.durationPs) &&
              rd.getInt(e, ep.str(), "surviving_lanes",
                        &f.survivingLanes) &&
              rd.getHex(e, ep.str(), "flit_error_rate",
                        &f.flitErrorRate)))
            return false;
        f.kind = static_cast<FaultKind>(kind);
        c->faults.events.push_back(f);
    }
    return true;
}

bool
readResult(Reader &rd, const Value &v, RunResult *r)
{
    const std::string p = "result";
    if (!v.isObject())
        return rd.fail(p, "not an object");
    if (!rd.getInt(v, p, "num_modules", &r->numModules))
        return false;

    const Value *hmc = rd.member(v, p, "per_hmc_w");
    if (!hmc)
        return false;
    const std::string hp = p + ".per_hmc_w";
    if (!(rd.getHex(*hmc, hp, "idle_io", &r->perHmc.idleIoW) &&
          rd.getHex(*hmc, hp, "active_io", &r->perHmc.activeIoW) &&
          rd.getHex(*hmc, hp, "logic_leak", &r->perHmc.logicLeakW) &&
          rd.getHex(*hmc, hp, "logic_dyn", &r->perHmc.logicDynW) &&
          rd.getHex(*hmc, hp, "dram_leak", &r->perHmc.dramLeakW) &&
          rd.getHex(*hmc, hp, "dram_dyn", &r->perHmc.dramDynW)))
        return false;

    if (!(rd.getHex(v, p, "total_network_w", &r->totalNetworkPowerW) &&
          rd.getHex(v, p, "idle_io_frac", &r->idleIoFrac) &&
          rd.getHex(v, p, "reads_per_sec", &r->readsPerSec) &&
          rd.getHex(v, p, "avg_read_latency_ns", &r->avgReadLatencyNs) &&
          rd.getHex(v, p, "channel_util", &r->channelUtil) &&
          rd.getHex(v, p, "avg_link_util", &r->avgLinkUtil) &&
          rd.getHex(v, p, "avg_modules_traversed",
                    &r->avgModulesTraversed) &&
          rd.getU64(v, p, "completed_reads", &r->completedReads) &&
          rd.getU64(v, p, "violations", &r->violations) &&
          rd.getU64(v, p, "events_fired", &r->eventsFired)))
        return false;

    const Value *rel = rd.member(v, p, "reliability");
    if (!rel)
        return false;
    const std::string rp = p + ".reliability";
    if (!(rd.getU64(*rel, rp, "retries", &r->reliability.retries) &&
          rd.getU64(*rel, rp, "replays", &r->reliability.replays) &&
          rd.getU64(*rel, rp, "retrains", &r->reliability.retrains) &&
          rd.getHex(*rel, rp, "retrain_s",
                    &r->reliability.retrainSeconds) &&
          rd.getHex(*rel, rp, "degraded_s",
                    &r->reliability.degradedSeconds) &&
          rd.getU64(*rel, rp, "fault_events",
                    &r->reliability.faultEvents)))
        return false;

    // Optional: journals written before the latency observatory lack
    // this object; they deserialize with latency disabled (the resumed
    // result then simply reports no latency data, like a --no-lat-obs
    // run) instead of being rejected wholesale.
    if (const Value *lat = v.find("latency")) {
        const std::string lp = p + ".latency";
        if (!lat->isObject())
            return rd.fail(lp, "not an object");
        if (!(rd.getBool(*lat, lp, "enabled", &r->latency.enabled) &&
              rd.getHex(*lat, lp, "wake_stall_s",
                        &r->latency.wakeStallSeconds) &&
              rd.getHex(*lat, lp, "retrain_stall_s",
                        &r->latency.retrainStallSeconds) &&
              rd.getU64(*lat, lp, "queue_peak", &r->latency.queuePeak)))
            return false;
        const auto latComponent = [&](const char *name,
                                      LatencyPercentiles *out) {
            const Value *c = rd.member(*lat, lp, name);
            if (!c)
                return false;
            const std::string cp = lp + "." + name;
            if (!c->isObject())
                return rd.fail(cp, "not an object");
            return rd.getU64(*c, cp, "samples", &out->samples) &&
                   rd.getU64(*c, cp, "sum_ps", &out->sumPs) &&
                   rd.getU64(*c, cp, "p50_ps", &out->p50Ps) &&
                   rd.getU64(*c, cp, "p90_ps", &out->p90Ps) &&
                   rd.getU64(*c, cp, "p99_ps", &out->p99Ps) &&
                   rd.getU64(*c, cp, "p999_ps", &out->p999Ps) &&
                   rd.getU64(*c, cp, "max_ps", &out->maxPs);
        };
        if (!(latComponent("end_to_end", &r->latency.endToEnd) &&
              latComponent("queue", &r->latency.queue) &&
              latComponent("wake_stall", &r->latency.wakeStall) &&
              latComponent("retrain_stall", &r->latency.retrainStall) &&
              latComponent("serialization", &r->latency.serialization) &&
              latComponent("dram", &r->latency.dram)))
            return false;
    }

    // Optional like "latency": older journals lack the energy object
    // and deserialize with the energy summary disabled.
    if (const Value *en = v.find("energy")) {
        const std::string ep = p + ".energy";
        if (!en->isObject())
            return rd.fail(ep, "not an object");
        EnergyAttribution &ea = r->energy.attribution;
        if (!(rd.getBool(*en, ep, "enabled", &r->energy.enabled) &&
              rd.getHex(*en, ep, "tx_j", &ea.txJ) &&
              rd.getHex(*en, ep, "retrain_j", &ea.retrainJ) &&
              rd.getHex(*en, ep, "sleep_j", &ea.sleepJ) &&
              rd.getHex(*en, ep, "wake_j", &ea.wakeJ) &&
              rd.getHex(*en, ep, "serdes_leak_j", &ea.serdesLeakJ) &&
              rd.getHex(*en, ep, "router_j", &ea.routerJ) &&
              rd.getHex(*en, ep, "dram_leak_j", &ea.dramLeakJ) &&
              rd.getHex(*en, ep, "dram_dyn_j", &ea.dramDynJ) &&
              rd.getHex(*en, ep, "idle_io_j", &ea.idleIoJ) &&
              rd.getHex(*en, ep, "active_io_j", &ea.activeIoJ)))
            return false;
        const Value *modes = rd.member(*en, ep, "idle_mode_j");
        if (!modes)
            return false;
        if (!modes->isArray() ||
            modes->array.size() != ea.idleModeJ.size())
            return rd.fail(ep + ".idle_mode_j",
                           "not an 8-element array");
        for (std::size_t i = 0; i < ea.idleModeJ.size(); ++i) {
            const Value &cell = modes->array[i];
            if (!cell.isString() ||
                !parseHexDouble(cell.string, &ea.idleModeJ[i]))
                return rd.fail(ep + ".idle_mode_j",
                               "bad hex-float cell");
        }
        const auto energySketch = [&](const char *name,
                                      LatencyPercentiles *out) {
            const Value *c = rd.member(*en, ep, name);
            if (!c)
                return false;
            const std::string cp = ep + "." + name;
            if (!c->isObject())
                return rd.fail(cp, "not an object");
            return rd.getU64(*c, cp, "samples", &out->samples) &&
                   rd.getU64(*c, cp, "sum_ps", &out->sumPs) &&
                   rd.getU64(*c, cp, "p50_ps", &out->p50Ps) &&
                   rd.getU64(*c, cp, "p90_ps", &out->p90Ps) &&
                   rd.getU64(*c, cp, "p99_ps", &out->p99Ps) &&
                   rd.getU64(*c, cp, "p999_ps", &out->p999Ps) &&
                   rd.getU64(*c, cp, "max_ps", &out->maxPs);
        };
        if (!(energySketch("utilization_ppm", &r->energy.utilization) &&
              energySketch("occupancy", &r->energy.occupancy)))
            return false;
    }

    const Value *lh = rd.member(v, p, "link_hours");
    if (!lh)
        return false;
    if (!lh->isArray() ||
        lh->array.size() !=
            static_cast<std::size_t>(kUtilBuckets * kLaneModes))
        return rd.fail(p + ".link_hours", "not a 20-element array");
    for (int b = 0; b < kUtilBuckets; ++b) {
        for (int l = 0; l < kLaneModes; ++l) {
            const Value &cell = lh->array[b * kLaneModes + l];
            if (!cell.isString() ||
                !parseHexDouble(cell.string, &r->linkHours[b][l]))
                return rd.fail(p + ".link_hours", "bad hex-float cell");
        }
    }

    const Value *prof = rd.member(v, p, "profile");
    if (!prof)
        return false;
    const std::string pp = p + ".profile";
    if (!(rd.getU64(*prof, pp, "events_fired",
                    &r->profile.eventsFired) &&
          rd.getU64(*prof, pp, "events_scheduled",
                    &r->profile.eventsScheduled) &&
          rd.getHex(*prof, pp, "wall_s", &r->profile.wallSeconds) &&
          rd.getHex(*prof, pp, "sim_s", &r->profile.simSeconds) &&
          rd.getU64(*prof, pp, "packets_issued",
                    &r->profile.packetsIssued) &&
          rd.getU64(*prof, pp, "packet_heap_allocs",
                    &r->profile.packetHeapAllocs) &&
          rd.getU64(*prof, pp, "audit_checks_run",
                    &r->profile.auditChecksRun) &&
          rd.getU64(*prof, pp, "events_descheduled",
                    &r->profile.eventsDescheduled) &&
          rd.getU64(*prof, pp, "peak_queue_depth",
                    &r->profile.peakQueueDepth) &&
          rd.getI64(*prof, pp, "dispatch_window_ps",
                    &r->profile.dispatchWindowPs)))
        return false;
    const Value *windows = rd.member(*prof, pp, "dispatch_windows");
    if (!windows)
        return false;
    if (!windows->isArray())
        return rd.fail(pp + ".dispatch_windows", "not an array");
    r->profile.dispatchWindows.clear();
    for (const Value &wv : windows->array) {
        errno = 0;
        char *end = nullptr;
        if (!wv.isString())
            return rd.fail(pp + ".dispatch_windows", "not a string");
        const std::uint64_t n =
            std::strtoull(wv.string.c_str(), &end, 10);
        if (wv.string.empty() ||
            end != wv.string.c_str() + wv.string.size() ||
            errno == ERANGE)
            return rd.fail(pp + ".dispatch_windows", "bad u64");
        r->profile.dispatchWindows.push_back(n);
    }

    const Value *mods = rd.member(v, p, "modules");
    if (!mods)
        return false;
    if (!mods->isArray())
        return rd.fail(p + ".modules", "not an array");
    r->modules.clear();
    for (std::size_t i = 0; i < mods->array.size(); ++i) {
        std::ostringstream mp;
        mp << p << ".modules[" << i << "]";
        const Value &mv = mods->array[i];
        if (!mv.isObject())
            return rd.fail(mp.str(), "not an object");
        ModuleDetail m;
        if (!(rd.getInt(mv, mp.str(), "id", &m.id) &&
              rd.getBool(mv, mp.str(), "high_radix", &m.highRadix) &&
              rd.getInt(mv, mp.str(), "hop_distance", &m.hopDistance) &&
              rd.getU64(mv, mp.str(), "dram_accesses",
                        &m.dramAccesses) &&
              rd.getU64(mv, mp.str(), "flits_routed", &m.flitsRouted) &&
              rd.getHex(mv, mp.str(), "request_link_util",
                        &m.requestLinkUtil) &&
              rd.getHex(mv, mp.str(), "response_link_util",
                        &m.responseLinkUtil) &&
              rd.getHex(mv, mp.str(), "request_link_power_frac",
                        &m.requestLinkPowerFrac) &&
              rd.getHex(mv, mp.str(), "response_link_power_frac",
                        &m.responseLinkPowerFrac)))
            return false;
        r->modules.push_back(m);
    }
    return true;
}

/** Fixed framing around the checksummed record payload. */
const char kFrameHead[] = "{\"journal_version\":1,\"crc32\":\"";
const char kFrameMid[] = "\",\"record\":";
constexpr std::size_t kCrcHexLen = 8;

std::string
crcHex(std::uint32_t crc)
{
    char buf[kCrcHexLen + 1];
    std::snprintf(buf, sizeof(buf), "%08x", crc);
    return buf;
}

} // namespace

std::string
journalRecordLine(const std::string &key, const RunResult &r)
{
    std::ostringstream payload;
    {
        JsonWriter w(payload);
        w.beginObject();
        w.field("key", key);
        w.key("config");
        writeConfig(w, r.config);
        w.key("result");
        writeResult(w, r);
        w.endObject();
    }
    const std::string body = payload.str();
    std::string line;
    line.reserve(body.size() + 64);
    line += kFrameHead;
    line += crcHex(crc32(body.data(), body.size()));
    line += kFrameMid;
    line += body;
    line += "}\n";
    return line;
}

bool
parseJournalLine(const std::string &line, std::string *key,
                 RunResult *result, std::string *err)
{
    const auto fail = [err](const std::string &what) {
        if (err)
            *err = what;
        return false;
    };

    std::string text = line;
    if (!text.empty() && text.back() == '\n')
        text.pop_back();

    // Framing: fixed head, 8 hex digits, fixed mid, payload, '}'.
    const std::size_t headLen = sizeof(kFrameHead) - 1;
    const std::size_t midLen = sizeof(kFrameMid) - 1;
    if (text.size() < headLen + kCrcHexLen + midLen + 1 ||
        text.compare(0, headLen, kFrameHead) != 0 ||
        text.compare(headLen + kCrcHexLen, midLen, kFrameMid) != 0 ||
        text.back() != '}')
        return fail("bad framing (torn or foreign line)");
    const std::string recordedCrc = text.substr(headLen, kCrcHexLen);
    const std::size_t payloadOff = headLen + kCrcHexLen + midLen;
    const std::string payload =
        text.substr(payloadOff, text.size() - payloadOff - 1);

    if (crcHex(crc32(payload.data(), payload.size())) != recordedCrc)
        return fail("checksum mismatch (torn or corrupt record)");

    Value record;
    std::string jsonErr;
    if (!obs::json::parse(payload, &record, &jsonErr))
        return fail("JSON error: " + jsonErr);

    Reader rd;
    std::string recordedKey;
    if (!rd.getString(record, "record", "key", &recordedKey)) {
        return fail(rd.err);
    }
    const Value *cfg = record.find("config");
    const Value *res = record.find("result");
    if (!cfg || !res)
        return fail("record.config/result: missing");

    RunResult out;
    if (!readConfig(rd, *cfg, &out.config) ||
        !readResult(rd, *res, &out))
        return fail(rd.err);

    // The recorded key must reproduce from the deserialized config:
    // catches silent format drift (a field added to Runner::key but
    // not the journal) before it poisons a resumed sweep.
    if (Runner::key(out.config) != recordedKey)
        return fail("key mismatch: recorded '" + recordedKey +
                    "' vs recomputed '" + Runner::key(out.config) + "'");

    *key = recordedKey;
    *result = std::move(out);
    return true;
}

bool
loadJournal(const std::string &path,
            std::map<std::string, RunResult> *out,
            JournalLoadStats *stats, std::string *err)
{
    std::ifstream is(path);
    if (!is) {
        if (err)
            *err = "cannot open journal: " + path;
        return false;
    }
    JournalLoadStats local;
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        std::string key, lineErr;
        RunResult r;
        if (!parseJournalLine(line, &key, &r, &lineErr)) {
            ++local.corrupt;
            memnet_warn("journal ", path, " line ", lineNo,
                        " skipped: ", lineErr);
            continue;
        }
        ++local.records;
        auto [it, inserted] = out->insert_or_assign(std::move(key),
                                                    std::move(r));
        (void)it;
        if (!inserted)
            ++local.duplicates;
    }
    local.loaded = local.records - local.duplicates;
    if (stats)
        *stats = local;
    return true;
}

bool
RunJournal::open()
{
    std::lock_guard<std::mutex> lock(mu);
    // Seal a torn tail first: a SIGKILL mid-append can leave the file
    // ending in a partial line with no terminating newline. Appending
    // straight after it would glue the next record onto the fragment
    // and corrupt that record too. A lone newline turns the fragment
    // into its own line, which loadJournal() rejects and skips.
    {
        std::ifstream probe(path_, std::ios::binary);
        if (probe) {
            probe.seekg(0, std::ios::end);
            const std::streamoff size = probe.tellg();
            if (size > 0) {
                probe.seekg(size - 1);
                char last = '\n';
                if (probe.get(last) && last != '\n') {
                    std::ofstream seal(path_, std::ios::app);
                    seal << '\n';
                }
            }
        }
    }
    os.open(path_, std::ios::app);
    if (!os) {
        memnet_warn("cannot open run journal for append: ", path_);
        return false;
    }
    return true;
}

void
RunJournal::append(const std::string &key, const RunResult &r)
{
    const std::string line = journalRecordLine(key, r);
    std::lock_guard<std::mutex> lock(mu);
    if (!os.is_open())
        return;
    os << line;
    // One flush per record: a killed sweep loses at most the line that
    // was mid-write, which loadJournal() detects and skips.
    os.flush();
    if (!os && !warned) {
        warned = true;
        memnet_warn("run journal write failed (disk full?): ", path_);
    } else if (os) {
        ++appended_;
    }
}

void
writeFailureManifest(std::ostream &os, const std::string &source,
                     const std::string &policy, double configTimeoutSec,
                     const std::vector<RunFailure> &failures)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema_version",
            static_cast<std::int64_t>(kFailureManifestVersion));
    w.field("source", source);
    w.field("failure_policy", policy);
    w.field("config_timeout_s", configTimeoutSec);
    w.key("failures");
    w.beginArray();
    // First failure wins per key: a duplicate config raced past the
    // isolation marker fails identically and adds no information.
    std::set<std::string> seen;
    for (const RunFailure &f : failures) {
        if (!seen.insert(f.key).second)
            continue;
        w.beginObject();
        w.field("key", f.key);
        w.field("describe", f.config.describe());
        w.field("timeout", f.timeout);
        w.field("wall_s", f.wallSeconds);
        w.field("error", f.message);
        w.key("config");
        writeConfig(w, f.config);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

} // namespace memnet
