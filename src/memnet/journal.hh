/**
 * @file
 * Crash-safe run journal and failure manifest.
 *
 * A RunJournal is an append-only JSONL file recording every completed
 * RunResult of a sweep, keyed by the Runner's canonical memoization
 * key. Each line is self-checking:
 *
 *   {"journal_version":1,"crc32":"xxxxxxxx","record":{...}}\n
 *
 * where crc32 is the CRC-32 (IEEE 802.3, the zlib polynomial) of the
 * exact bytes of the record value. A process killed mid-append leaves
 * at most one torn line at the tail; loadJournal() detects it (missing
 * newline, checksum mismatch, or parse failure), skips it, and keeps
 * every earlier record — so `--journal` during a sweep plus `--resume`
 * on restart re-simulates only the configs whose records never landed.
 *
 * Full-precision encoding: JSON numbers round-trip badly (doubles via
 * shortest-decimal printers are safe in theory, but any consumer that
 * re-serializes can destroy them; 64-bit counters exceed the 2^53
 * exactness window of a double-backed DOM). The journal therefore
 * encodes every scalar as a string — doubles in C99 hex-float ("%a",
 * bit-exact by construction, parsed with strtod), integers in decimal.
 * A resumed sweep's final bench JSON is byte-identical to the same
 * sweep run uninterrupted (enforced by tests/test_journal.cc and the
 * crash-resume CI job via scripts/diff_runs.py).
 *
 * Appends are thread-safe and flushed per record, so ParallelRunner
 * workers journal as they complete and a SIGKILL loses at most the
 * in-flight record. Journals are plain concatenable text: merging two
 * sweeps is `cat a.jsonl b.jsonl` (duplicate keys resolve last-wins).
 *
 * The same file also hosts the failure-manifest writer used by the
 * `isolate` failure policy (see memnet/parallel.hh): a machine-readable
 * JSON document of every config that threw or was cancelled by the
 * hang watchdog. Schemas: ci/journal_schema.json and
 * ci/failure_manifest_schema.json; format docs: docs/ROBUSTNESS.md.
 */

#ifndef MEMNET_MEMNET_JOURNAL_HH
#define MEMNET_MEMNET_JOURNAL_HH

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "memnet/config.hh"

namespace memnet
{

struct RunFailure;

/** Journal line format version (the "journal_version" member). */
constexpr int kJournalVersion = 1;

/** CRC-32 (IEEE 802.3 polynomial, zlib-compatible) of @p n bytes. */
std::uint32_t crc32(const void *data, std::size_t n);

/**
 * Bit-exact double encoding for journal records: C99 hex-float via
 * "%a" ("0x1.91eb851eb851fp+1"; "inf"/"nan" pass through strtod too).
 */
std::string hexDouble(double v);

/** Inverse of hexDouble(); false when @p s is not a full hex-float. */
bool parseHexDouble(const std::string &s, double *out);

/** Serialize one completed run as a self-checking journal line. */
std::string journalRecordLine(const std::string &key, const RunResult &r);

/**
 * Parse and verify one journal line.
 * @return false (with @p err set) on any damage: bad framing, checksum
 *         mismatch, JSON error, missing/mistyped member, or a config
 *         whose recomputed Runner key no longer matches the recorded
 *         one (format drift).
 */
bool parseJournalLine(const std::string &line, std::string *key,
                      RunResult *result, std::string *err);

/** What loadJournal() found, for the resume progress message. */
struct JournalLoadStats
{
    /** Unique keys loaded (after last-wins dedup). */
    std::size_t loaded = 0;
    /** Valid records seen (>= loaded when keys repeat). */
    std::size_t records = 0;
    /** Damaged records skipped (torn tail, corruption). */
    std::size_t corrupt = 0;
    /** Same-key overwrites (records - loaded). */
    std::size_t duplicates = 0;
};

/**
 * Load every valid record of a journal into @p out (last record wins
 * per key). Damaged lines are skipped with a warning, not fatal — a
 * torn tail is the expected signature of a killed sweep.
 * @return false only when the file cannot be read at all.
 */
bool loadJournal(const std::string &path,
                 std::map<std::string, RunResult> *out,
                 JournalLoadStats *stats = nullptr,
                 std::string *err = nullptr);

/**
 * Append-only journal writer. Attach to a Runner via setJournal():
 * every freshly executed run is appended and flushed before the result
 * is handed to the caller, so a crash can lose only work that no
 * caller ever observed.
 */
class RunJournal
{
  public:
    explicit RunJournal(std::string path) : path_(std::move(path)) {}

    RunJournal(const RunJournal &) = delete;
    RunJournal &operator=(const RunJournal &) = delete;

    /**
     * Open the file for append (created if missing). @return false,
     * with a warning, when the path is unwritable.
     */
    bool open();

    /** True after a successful open() with no write error since. */
    bool ok() const { return os.is_open() && os.good(); }

    const std::string &path() const { return path_; }

    /** Records appended by this writer. */
    std::uint64_t appended() const { return appended_; }

    /**
     * Append one completed run and flush. Thread-safe. Write errors
     * warn once and latch ok() false.
     */
    void append(const std::string &key, const RunResult &r);

  private:
    std::mutex mu;
    std::string path_;
    std::ofstream os;
    std::uint64_t appended_ = 0;
    bool warned = false;
};

/** Failure-manifest format version (the "schema_version" member). */
constexpr int kFailureManifestVersion = 1;

/**
 * Write the machine-readable failure manifest for an isolate-policy
 * sweep: one entry per failed config (first failure wins per key),
 * carrying the canonical key, the config echo, the exception text —
 * for watchdog expiries, the diagnostics snapshot — and whether the
 * hang watchdog (rather than an exception) killed it. Schema:
 * ci/failure_manifest_schema.json.
 */
void writeFailureManifest(std::ostream &os, const std::string &source,
                          const std::string &policy,
                          double configTimeoutSec,
                          const std::vector<RunFailure> &failures);

} // namespace memnet

#endif // MEMNET_MEMNET_JOURNAL_HH
