#include "memnet/multichannel.hh"

#include <memory>

#include "audit/audit.hh"
#include "dram/dram_params.hh"
#include "memnet/simulator.hh"
#include "mgmt/aware.hh"
#include "mgmt/manager.hh"
#include "mgmt/static_taper.hh"
#include "net/boundary.hh"
#include "net/network.hh"
#include "obs/prof.hh"
#include "sim/event_queue.hh"
#include "sim/log.hh"
#include "workload/processor.hh"

namespace memnet
{

const char *
channelSpreadName(ChannelSpread s)
{
    return s == ChannelSpread::InterleaveLines ? "interleave"
                                               : "partition";
}

ChannelRemap::ChannelRemap(int channels, ChannelSpread spread,
                           std::uint64_t total_bytes)
    : channels(channels), spread(spread), totalBytes(total_bytes)
{
    memnet_assert(channels >= 1, "need at least one channel");
    partBytes = (total_bytes + channels - 1) / channels;
    // Keep partitions line-aligned. partBytes * channels >= totalBytes
    // holds before and after rounding up, so every in-range address
    // lands in a valid channel without clamping.
    partBytes = (partBytes + 63) & ~std::uint64_t{63};
}

ChannelRemap::Target
ChannelRemap::map(std::uint64_t addr) const
{
    memnet_assert(addr < totalBytes, "address ", addr,
                  " outside the ", totalBytes, "-byte footprint");
    Target t;
    if (spread == ChannelSpread::InterleaveLines) {
        const std::uint64_t line = addr / 64;
        t.channel = static_cast<int>(line % channels);
        t.local = (line / channels) * 64 + addr % 64;
    } else {
        t.channel = static_cast<int>(addr / partBytes);
        t.local = addr - static_cast<std::uint64_t>(t.channel) *
                             partBytes;
    }
    return t;
}

std::uint64_t
ChannelRemap::unmap(int channel, std::uint64_t local) const
{
    memnet_assert(channel >= 0 && channel < channels,
                  "channel ", channel, " out of range");
    if (spread == ChannelSpread::InterleaveLines) {
        const std::uint64_t line =
            (local / 64) * channels + channel;
        return line * 64 + local % 64;
    }
    return static_cast<std::uint64_t>(channel) * partBytes + local;
}

namespace
{

/** Fans injected packets out over the channels, remapping addresses
 *  into each channel's local space. Each channel target is that
 *  channel's host-interface port (or, partitioned, its outbox). */
class ChannelSwitch : public TrafficTarget
{
  public:
    ChannelSwitch(std::vector<TrafficTarget *> channels,
                  ChannelSpread spread, std::uint64_t total_bytes)
        : channels(std::move(channels)),
          remap(static_cast<int>(this->channels.size()), spread,
                total_bytes)
    {
    }

    void
    inject(Packet *pkt) override
    {
        MEMNET_PROF_SCOPE("mc/fanout");
        const ChannelRemap::Target t = remap.map(pkt->addr);
        pkt->addr = t.local;
        channels[t.channel]->inject(pkt);
    }

  private:
    std::vector<TrafficTarget *> channels;
    ChannelRemap remap;
};

} // namespace

MultiChannelResult
runMultiChannel(const MultiChannelConfig &mcfg)
{
    const SystemConfig &cfg = mcfg.base;
    if (mcfg.channels < 1)
        memnet_fatal("need at least one channel");

    const WorkloadProfile &profile = workloadByName(cfg.workload);
    const std::uint64_t total = profile.footprintBytes();
    const std::uint64_t per_channel =
        (total + mcfg.channels - 1) / mcfg.channels;
    const int modules_per_channel = static_cast<int>(std::max<
        std::uint64_t>(
        1, (per_channel + cfg.chunkBytes() - 1) / cfg.chunkBytes()));

    DramParams dram;
    RooConfig roo;
    roo.enabled = cfg.roo;
    roo.wakeupPs = cfg.rooWakeupPs;
    // Same power attribution and link error model as the single-network
    // simulator — runMultiChannel(channels=1) must be bit-identical to
    // Simulator (enforced by tests/test_differential.cc).
    HmcPowerModel pm(cfg.ioAttribution);
    LinkErrorModel errors;
    errors.flitErrorRate = cfg.linkFlitErrorRate;

    // Partitioned kernel (sim/partition.hh): partition 0 runs the
    // processor, partitions 1..P-1 run the channel networks — this is
    // the natural shard boundary, since channels never talk to each
    // other. With fewer partitions than channels, channels share a
    // partition round-robin (and share its event queue).
    const bool partitioned = cfg.partitions > 1;
    const int parts =
        partitioned ? 1 + std::min(cfg.partitions - 1, mcfg.channels)
                    : 1;
    EventQueue procEq;
    std::vector<std::unique_ptr<EventQueue>> chanEqs;
    for (int p = 1; p < parts; ++p)
        chanEqs.push_back(std::make_unique<EventQueue>());
    const auto rankOf = [&](int c) {
        return partitioned ? 1 + c % (parts - 1) : 0;
    };
    const auto queueOf = [&](int c) -> EventQueue & {
        return partitioned ? *chanEqs[c % (parts - 1)] : procEq;
    };

    std::vector<std::unique_ptr<Network>> nets;
    std::vector<std::unique_ptr<PowerManager>> mgrs;
    std::vector<std::unique_ptr<StaticTaperManager>> tapers;
    std::vector<Network *> net_ptrs;

    Topology topo =
        Topology::build(cfg.topology, modules_per_channel);
    topo.validate();

    for (int c = 0; c < mcfg.channels; ++c) {
        AddressMap amap;
        amap.chunkBytes = cfg.chunkBytes();
        amap.interleavePages = cfg.interleavePages;
        amap.modules = modules_per_channel;
        nets.push_back(std::make_unique<Network>(
            queueOf(c), topo, dram, cfg.mechanism, roo, pm, amap,
            errors));
        nets.back()->setLatencyObservatory(cfg.latencyObs);
        nets.back()->setEnergyObservatory(cfg.energyObs);
        net_ptrs.push_back(nets.back().get());
    }

    // One host-interface port per channel (net/boundary.hh): the
    // processor side has a SERDES FIFO toward each channel root, same
    // as the single-network simulator's. Partitioned runs use each
    // channel's boundary twin (HostOutbox) instead.
    std::vector<std::unique_ptr<HostPort>> ports;
    std::vector<std::unique_ptr<PartitionedChannel>> chans;
    std::unique_ptr<PartitionRunner> runner;
    std::vector<TrafficTarget *> port_ptrs;
    if (partitioned) {
        std::vector<EventQueue *> queues{&procEq};
        for (auto &q : chanEqs)
            queues.push_back(q.get());
        // Channels never exchange packets, so their mutual lookahead
        // is unbounded (kTickMax = no edge).
        std::vector<Tick> look(
            static_cast<std::size_t>(parts) * parts, kTickMax);
        for (int p = 0; p < parts; ++p) {
            look[p * parts + p] = 0;
            if (p > 0) {
                look[0 * parts + p] =
                    PartitionedChannel::kHostLookaheadPs;
                look[p * parts + 0] =
                    PartitionedChannel::kChannelLookaheadPs;
            }
        }
        runner = std::make_unique<PartitionRunner>(
            std::move(queues), std::move(look),
            [&chans](int dst, BoundaryMessage &m) {
                PartitionedChannel &ch = *chans[m.channel];
                if (dst == 0)
                    ch.applyAtHost(m);
                else
                    ch.applyAtChannel(m);
            },
            cfg.partitionSync, cfg.laxWindowPs);
        for (int c = 0; c < mcfg.channels; ++c) {
            chans.push_back(std::make_unique<PartitionedChannel>(
                procEq, *net_ptrs[c], c, rankOf(c),
                runner->mail()));
            port_ptrs.push_back(&chans.back()->outbox());
        }
    } else {
        for (int c = 0; c < mcfg.channels; ++c) {
            ports.push_back(
                std::make_unique<HostPort>(procEq, *net_ptrs[c]));
            port_ptrs.push_back(ports.back().get());
        }
    }

    ChannelSwitch sw(port_ptrs, mcfg.spread, total);

    ProcessorParams pp;
    pp.cores = cfg.cores;
    pp.maxReadsPerCore = cfg.maxReadsPerCore;
    pp.maxWritesPerCore = cfg.maxWritesPerCore;
    pp.seed = cfg.seed;
    pp.rateScale = mcfg.channels;
    if (cfg.watchdogTimeoutPs > 0)
        pp.watchdogTimeoutPs = cfg.watchdogTimeoutPs;
    else if (cfg.watchdogTimeoutPs == 0 && !cfg.faults.empty())
        pp.watchdogTimeoutPs = us(300);
    Processor proc(procEq, sw, profile, pp);
    for (auto &n : nets)
        n->setHost(&proc);

    // Every channel runs the same fault plan; the flap streams are
    // decorrelated by offsetting the seed per channel. No injector is
    // built for an empty plan (bit-identical to the fault-free path).
    std::vector<std::unique_ptr<FaultInjector>> injectors;
    if (!cfg.faults.empty()) {
        for (int c = 0; c < mcfg.channels; ++c) {
            injectors.push_back(std::make_unique<FaultInjector>(
                queueOf(c), *nets[c], cfg.faults, cfg.seed + c));
            injectors.back()->start(0);
        }
    }

    ManagerParams mp;
    mp.alphaPct = cfg.alphaPct;
    mp.epochLen = cfg.epochLen;
    for (auto &n : nets) {
        switch (cfg.policy) {
          case Policy::FullPower:
            break;
          case Policy::Unaware:
            mgrs.push_back(std::make_unique<UnawareManager>(
                *n, cfg.mechanism, roo, mp));
            break;
          case Policy::Aware: {
            AwareOptions opts;
            opts.ispIterations = cfg.aware.ispIterations;
            opts.congestionDiscount = cfg.aware.congestionDiscount;
            opts.wakeCoordination = cfg.aware.wakeCoordination;
            opts.grantPool = cfg.aware.grantPool;
            mgrs.push_back(std::make_unique<AwareManager>(
                *n, cfg.mechanism, roo, mp, opts));
            break;
          }
          case Policy::StaticTaper:
            tapers.push_back(std::make_unique<StaticTaperManager>(
                *n, cfg.mechanism));
            tapers.back()->apply();
            break;
        }
    }
    for (auto &m : mgrs)
        m->start(0);

    // One auditor per channel network; the processor's packet census is
    // global, so only channel 0's auditor checks it (the pool does not
    // split by channel).
    std::vector<std::unique_ptr<audit::Auditor>> auditors;
    if (audit::enabledFor(cfg.audit)) {
        for (int c = 0; c < mcfg.channels; ++c) {
            auditors.push_back(
                std::make_unique<audit::Auditor>(*nets[c]));
            // The packet census reads processor state from channel 0's
            // epoch events; in a partitioned run that is only safe (and
            // deterministic) at Barrier merged tick-steps, where every
            // worker is parked at the same tick.
            if (c == 0 &&
                (!partitioned ||
                 cfg.partitionSync == PartitionSync::Barrier))
                auditors.back()->setProcessor(&proc);
            auditors.back()->attach(
                c < static_cast<int>(mgrs.size()) ? mgrs[c].get()
                                                  : nullptr);
        }
    }

    proc.start(0);
    const Tick measure = effectiveMeasure(cfg);
    // Manager epochs read link stats and (audited) processor state;
    // aligning sync points on the epoch grid makes them fire in merged
    // tick-steps with every partition at the same tick.
    const Tick grid = mgrs.empty() ? 0 : cfg.epochLen;
    if (runner)
        runner->runUntil(cfg.warmup, grid);
    else
        procEq.runUntil(cfg.warmup);
    for (auto &n : nets)
        n->resetStats();
    proc.resetStats();
    for (auto &a : auditors)
        a->onMeasureStart(procEq.now());
    const Tick end = cfg.warmup + measure;
    if (runner)
        runner->runUntil(end, grid);
    else
        procEq.runUntil(end);
    for (auto &a : auditors)
        a->finalCheck(procEq.now());

    MultiChannelResult r;
    r.config = mcfg;
    const double secs = toSeconds(measure);
    for (auto &n : nets) {
        const EnergyBreakdown e = n->collectEnergy(end);
        const PowerBreakdown p = PowerBreakdown::fromEnergy(e, secs);
        r.channelPower.push_back(p);
        r.totalPowerW += p.totalW();
        r.channelModules.push_back(n->numModules());
        r.totalModules += n->numModules();
        const double util =
            0.5 * (n->requestLink(0).utilization(secs) +
                   n->responseLink(0).utilization(secs));
        r.channelUtil.push_back(util);
    }
    double idle = 0.0;
    for (const PowerBreakdown &p : r.channelPower)
        idle += p.idleIoW;
    r.idleIoFrac = r.totalPowerW > 0 ? idle / r.totalPowerW : 0.0;
    r.readsPerSec =
        static_cast<double>(proc.completedReads()) / secs;

    if (cfg.latencyObs) {
        // Exact cross-channel merge of the component sketches, plus the
        // stall-attribution totals summed over every channel's links.
        obs::LatencySketches merged;
        for (auto &n : nets)
            merged.merge(n->latencySketches());
        r.latency = summarizeLatency(merged);
        for (auto &n : nets) {
            const LatencyBreakdown b = n->latencySummary();
            r.latency.wakeStallSeconds += b.wakeStallSeconds;
            r.latency.retrainStallSeconds += b.retrainStallSeconds;
            if (b.queuePeak > r.latency.queuePeak)
                r.latency.queuePeak = b.queuePeak;
        }
    }

    if (cfg.energyObs) {
        // Exact cross-channel merge: the attribution ledger adds
        // field-wise in channel order, the congestion sketches merge
        // bucket-wise — both lossless, so the multi-channel summary is
        // bit-identical to a whole-system ledger.
        EnergyAttribution a;
        obs::EnergySketches sk;
        for (auto &n : nets) {
            a += n->energyAttribution(end);
            sk.merge(n->collectEnergySketches(end));
        }
        r.energy = summarizeEnergy(a, sk);
    }
    return r;
}

} // namespace memnet
