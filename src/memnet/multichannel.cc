#include "memnet/multichannel.hh"

#include <algorithm>
#include <memory>

#include "dram/dram_params.hh"
#include "mgmt/aware.hh"
#include "mgmt/manager.hh"
#include "mgmt/static_taper.hh"
#include "net/network.hh"
#include "sim/event_queue.hh"
#include "sim/log.hh"
#include "workload/processor.hh"

namespace memnet
{

const char *
channelSpreadName(ChannelSpread s)
{
    return s == ChannelSpread::InterleaveLines ? "interleave"
                                               : "partition";
}

namespace
{

/** Fans injected packets out over the channels, remapping addresses
 *  into each channel's local space. */
class ChannelSwitch : public TrafficTarget
{
  public:
    ChannelSwitch(std::vector<Network *> nets, ChannelSpread spread,
                  std::uint64_t total_bytes)
        : nets(std::move(nets)), spread(spread)
    {
        partBytes =
            (total_bytes + this->nets.size() - 1) / this->nets.size();
        // Keep partitions line-aligned.
        partBytes = (partBytes + 63) & ~std::uint64_t{63};
    }

    void
    inject(Packet *pkt) override
    {
        const std::uint64_t c_count = nets.size();
        std::uint64_t c, local;
        if (spread == ChannelSpread::InterleaveLines) {
            const std::uint64_t line = pkt->addr / 64;
            c = line % c_count;
            local = (line / c_count) * 64;
        } else {
            c = std::min(pkt->addr / partBytes, c_count - 1);
            local = pkt->addr - c * partBytes;
        }
        pkt->addr = local;
        nets[c]->inject(pkt);
    }

  private:
    std::vector<Network *> nets;
    ChannelSpread spread;
    std::uint64_t partBytes;
};

} // namespace

MultiChannelResult
runMultiChannel(const MultiChannelConfig &mcfg)
{
    const SystemConfig &cfg = mcfg.base;
    if (mcfg.channels < 1)
        memnet_fatal("need at least one channel");

    const WorkloadProfile &profile = workloadByName(cfg.workload);
    const std::uint64_t total = profile.footprintBytes();
    const std::uint64_t per_channel =
        (total + mcfg.channels - 1) / mcfg.channels;
    const int modules_per_channel = static_cast<int>(std::max<
        std::uint64_t>(
        1, (per_channel + cfg.chunkBytes() - 1) / cfg.chunkBytes()));

    DramParams dram;
    RooConfig roo;
    roo.enabled = cfg.roo;
    roo.wakeupPs = cfg.rooWakeupPs;
    HmcPowerModel pm;
    EventQueue eq;

    std::vector<std::unique_ptr<Network>> nets;
    std::vector<std::unique_ptr<PowerManager>> mgrs;
    std::vector<std::unique_ptr<StaticTaperManager>> tapers;
    std::vector<Network *> net_ptrs;

    Topology topo =
        Topology::build(cfg.topology, modules_per_channel);
    topo.validate();

    for (int c = 0; c < mcfg.channels; ++c) {
        AddressMap amap;
        amap.chunkBytes = cfg.chunkBytes();
        amap.interleavePages = cfg.interleavePages;
        amap.modules = modules_per_channel;
        nets.push_back(std::make_unique<Network>(
            eq, topo, dram, cfg.mechanism, roo, pm, amap));
        net_ptrs.push_back(nets.back().get());
    }

    ChannelSwitch sw(net_ptrs, mcfg.spread, total);

    ProcessorParams pp;
    pp.cores = cfg.cores;
    pp.maxReadsPerCore = cfg.maxReadsPerCore;
    pp.maxWritesPerCore = cfg.maxWritesPerCore;
    pp.seed = cfg.seed;
    pp.rateScale = mcfg.channels;
    if (cfg.watchdogTimeoutPs > 0)
        pp.watchdogTimeoutPs = cfg.watchdogTimeoutPs;
    else if (cfg.watchdogTimeoutPs == 0 && !cfg.faults.empty())
        pp.watchdogTimeoutPs = us(300);
    Processor proc(eq, sw, profile, pp);
    for (auto &n : nets)
        n->setHost(&proc);

    // Every channel runs the same fault plan; the flap streams are
    // decorrelated by offsetting the seed per channel. No injector is
    // built for an empty plan (bit-identical to the fault-free path).
    std::vector<std::unique_ptr<FaultInjector>> injectors;
    if (!cfg.faults.empty()) {
        for (int c = 0; c < mcfg.channels; ++c) {
            injectors.push_back(std::make_unique<FaultInjector>(
                eq, *nets[c], cfg.faults, cfg.seed + c));
            injectors.back()->start(0);
        }
    }

    ManagerParams mp;
    mp.alphaPct = cfg.alphaPct;
    mp.epochLen = cfg.epochLen;
    for (auto &n : nets) {
        switch (cfg.policy) {
          case Policy::FullPower:
            break;
          case Policy::Unaware:
            mgrs.push_back(std::make_unique<UnawareManager>(
                *n, cfg.mechanism, roo, mp));
            break;
          case Policy::Aware: {
            AwareOptions opts;
            opts.ispIterations = cfg.aware.ispIterations;
            opts.congestionDiscount = cfg.aware.congestionDiscount;
            opts.wakeCoordination = cfg.aware.wakeCoordination;
            opts.grantPool = cfg.aware.grantPool;
            mgrs.push_back(std::make_unique<AwareManager>(
                *n, cfg.mechanism, roo, mp, opts));
            break;
          }
          case Policy::StaticTaper:
            tapers.push_back(std::make_unique<StaticTaperManager>(
                *n, cfg.mechanism));
            tapers.back()->apply();
            break;
        }
    }
    for (auto &m : mgrs)
        m->start(0);

    proc.start(0);
    eq.runUntil(cfg.warmup);
    for (auto &n : nets)
        n->resetStats();
    proc.resetStats();
    const Tick end = cfg.warmup + cfg.measure;
    eq.runUntil(end);

    MultiChannelResult r;
    r.config = mcfg;
    const double secs = toSeconds(cfg.measure);
    for (auto &n : nets) {
        const EnergyBreakdown e = n->collectEnergy(end);
        const PowerBreakdown p = PowerBreakdown::fromEnergy(e, secs);
        r.channelPower.push_back(p);
        r.totalPowerW += p.totalW();
        r.channelModules.push_back(n->numModules());
        r.totalModules += n->numModules();
        const double util =
            0.5 * (n->requestLink(0).utilization(secs) +
                   n->responseLink(0).utilization(secs));
        r.channelUtil.push_back(util);
    }
    double idle = 0.0;
    for (const PowerBreakdown &p : r.channelPower)
        idle += p.idleIoW;
    r.idleIoFrac = r.totalPowerW > 0 ? idle / r.totalPowerW : 0.0;
    r.readsPerSec =
        static_cast<double>(proc.completedReads()) / secs;
    return r;
}

} // namespace memnet
