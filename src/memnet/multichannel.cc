#include "memnet/multichannel.hh"

#include <memory>

#include "audit/audit.hh"
#include "dram/dram_params.hh"
#include "memnet/simulator.hh"
#include "mgmt/aware.hh"
#include "mgmt/manager.hh"
#include "mgmt/static_taper.hh"
#include "net/network.hh"
#include "obs/prof.hh"
#include "sim/event_queue.hh"
#include "sim/log.hh"
#include "workload/processor.hh"

namespace memnet
{

const char *
channelSpreadName(ChannelSpread s)
{
    return s == ChannelSpread::InterleaveLines ? "interleave"
                                               : "partition";
}

ChannelRemap::ChannelRemap(int channels, ChannelSpread spread,
                           std::uint64_t total_bytes)
    : channels(channels), spread(spread), totalBytes(total_bytes)
{
    memnet_assert(channels >= 1, "need at least one channel");
    partBytes = (total_bytes + channels - 1) / channels;
    // Keep partitions line-aligned. partBytes * channels >= totalBytes
    // holds before and after rounding up, so every in-range address
    // lands in a valid channel without clamping.
    partBytes = (partBytes + 63) & ~std::uint64_t{63};
}

ChannelRemap::Target
ChannelRemap::map(std::uint64_t addr) const
{
    memnet_assert(addr < totalBytes, "address ", addr,
                  " outside the ", totalBytes, "-byte footprint");
    Target t;
    if (spread == ChannelSpread::InterleaveLines) {
        const std::uint64_t line = addr / 64;
        t.channel = static_cast<int>(line % channels);
        t.local = (line / channels) * 64 + addr % 64;
    } else {
        t.channel = static_cast<int>(addr / partBytes);
        t.local = addr - static_cast<std::uint64_t>(t.channel) *
                             partBytes;
    }
    return t;
}

std::uint64_t
ChannelRemap::unmap(int channel, std::uint64_t local) const
{
    memnet_assert(channel >= 0 && channel < channels,
                  "channel ", channel, " out of range");
    if (spread == ChannelSpread::InterleaveLines) {
        const std::uint64_t line =
            (local / 64) * channels + channel;
        return line * 64 + local % 64;
    }
    return static_cast<std::uint64_t>(channel) * partBytes + local;
}

namespace
{

/** Fans injected packets out over the channels, remapping addresses
 *  into each channel's local space. */
class ChannelSwitch : public TrafficTarget
{
  public:
    ChannelSwitch(std::vector<Network *> nets, ChannelSpread spread,
                  std::uint64_t total_bytes)
        : nets(std::move(nets)),
          remap(static_cast<int>(this->nets.size()), spread,
                total_bytes)
    {
    }

    void
    inject(Packet *pkt) override
    {
        MEMNET_PROF_SCOPE("mc/fanout");
        const ChannelRemap::Target t = remap.map(pkt->addr);
        pkt->addr = t.local;
        nets[t.channel]->inject(pkt);
    }

  private:
    std::vector<Network *> nets;
    ChannelRemap remap;
};

} // namespace

MultiChannelResult
runMultiChannel(const MultiChannelConfig &mcfg)
{
    const SystemConfig &cfg = mcfg.base;
    if (mcfg.channels < 1)
        memnet_fatal("need at least one channel");

    const WorkloadProfile &profile = workloadByName(cfg.workload);
    const std::uint64_t total = profile.footprintBytes();
    const std::uint64_t per_channel =
        (total + mcfg.channels - 1) / mcfg.channels;
    const int modules_per_channel = static_cast<int>(std::max<
        std::uint64_t>(
        1, (per_channel + cfg.chunkBytes() - 1) / cfg.chunkBytes()));

    DramParams dram;
    RooConfig roo;
    roo.enabled = cfg.roo;
    roo.wakeupPs = cfg.rooWakeupPs;
    // Same power attribution and link error model as the single-network
    // simulator — runMultiChannel(channels=1) must be bit-identical to
    // Simulator (enforced by tests/test_differential.cc).
    HmcPowerModel pm(cfg.ioAttribution);
    LinkErrorModel errors;
    errors.flitErrorRate = cfg.linkFlitErrorRate;
    EventQueue eq;

    std::vector<std::unique_ptr<Network>> nets;
    std::vector<std::unique_ptr<PowerManager>> mgrs;
    std::vector<std::unique_ptr<StaticTaperManager>> tapers;
    std::vector<Network *> net_ptrs;

    Topology topo =
        Topology::build(cfg.topology, modules_per_channel);
    topo.validate();

    for (int c = 0; c < mcfg.channels; ++c) {
        AddressMap amap;
        amap.chunkBytes = cfg.chunkBytes();
        amap.interleavePages = cfg.interleavePages;
        amap.modules = modules_per_channel;
        nets.push_back(std::make_unique<Network>(
            eq, topo, dram, cfg.mechanism, roo, pm, amap, errors));
        nets.back()->setLatencyObservatory(cfg.latencyObs);
        net_ptrs.push_back(nets.back().get());
    }

    ChannelSwitch sw(net_ptrs, mcfg.spread, total);

    ProcessorParams pp;
    pp.cores = cfg.cores;
    pp.maxReadsPerCore = cfg.maxReadsPerCore;
    pp.maxWritesPerCore = cfg.maxWritesPerCore;
    pp.seed = cfg.seed;
    pp.rateScale = mcfg.channels;
    if (cfg.watchdogTimeoutPs > 0)
        pp.watchdogTimeoutPs = cfg.watchdogTimeoutPs;
    else if (cfg.watchdogTimeoutPs == 0 && !cfg.faults.empty())
        pp.watchdogTimeoutPs = us(300);
    Processor proc(eq, sw, profile, pp);
    for (auto &n : nets)
        n->setHost(&proc);

    // Every channel runs the same fault plan; the flap streams are
    // decorrelated by offsetting the seed per channel. No injector is
    // built for an empty plan (bit-identical to the fault-free path).
    std::vector<std::unique_ptr<FaultInjector>> injectors;
    if (!cfg.faults.empty()) {
        for (int c = 0; c < mcfg.channels; ++c) {
            injectors.push_back(std::make_unique<FaultInjector>(
                eq, *nets[c], cfg.faults, cfg.seed + c));
            injectors.back()->start(0);
        }
    }

    ManagerParams mp;
    mp.alphaPct = cfg.alphaPct;
    mp.epochLen = cfg.epochLen;
    for (auto &n : nets) {
        switch (cfg.policy) {
          case Policy::FullPower:
            break;
          case Policy::Unaware:
            mgrs.push_back(std::make_unique<UnawareManager>(
                *n, cfg.mechanism, roo, mp));
            break;
          case Policy::Aware: {
            AwareOptions opts;
            opts.ispIterations = cfg.aware.ispIterations;
            opts.congestionDiscount = cfg.aware.congestionDiscount;
            opts.wakeCoordination = cfg.aware.wakeCoordination;
            opts.grantPool = cfg.aware.grantPool;
            mgrs.push_back(std::make_unique<AwareManager>(
                *n, cfg.mechanism, roo, mp, opts));
            break;
          }
          case Policy::StaticTaper:
            tapers.push_back(std::make_unique<StaticTaperManager>(
                *n, cfg.mechanism));
            tapers.back()->apply();
            break;
        }
    }
    for (auto &m : mgrs)
        m->start(0);

    // One auditor per channel network; the processor's packet census is
    // global, so only channel 0's auditor checks it (the pool does not
    // split by channel).
    std::vector<std::unique_ptr<audit::Auditor>> auditors;
    if (audit::enabledFor(cfg.audit)) {
        for (int c = 0; c < mcfg.channels; ++c) {
            auditors.push_back(
                std::make_unique<audit::Auditor>(*nets[c]));
            if (c == 0)
                auditors.back()->setProcessor(&proc);
            auditors.back()->attach(
                c < static_cast<int>(mgrs.size()) ? mgrs[c].get()
                                                  : nullptr);
        }
    }

    proc.start(0);
    const Tick measure = effectiveMeasure(cfg);
    eq.runUntil(cfg.warmup);
    for (auto &n : nets)
        n->resetStats();
    proc.resetStats();
    for (auto &a : auditors)
        a->onMeasureStart(eq.now());
    const Tick end = cfg.warmup + measure;
    eq.runUntil(end);
    for (auto &a : auditors)
        a->finalCheck(eq.now());

    MultiChannelResult r;
    r.config = mcfg;
    const double secs = toSeconds(measure);
    for (auto &n : nets) {
        const EnergyBreakdown e = n->collectEnergy(end);
        const PowerBreakdown p = PowerBreakdown::fromEnergy(e, secs);
        r.channelPower.push_back(p);
        r.totalPowerW += p.totalW();
        r.channelModules.push_back(n->numModules());
        r.totalModules += n->numModules();
        const double util =
            0.5 * (n->requestLink(0).utilization(secs) +
                   n->responseLink(0).utilization(secs));
        r.channelUtil.push_back(util);
    }
    double idle = 0.0;
    for (const PowerBreakdown &p : r.channelPower)
        idle += p.idleIoW;
    r.idleIoFrac = r.totalPowerW > 0 ? idle / r.totalPowerW : 0.0;
    r.readsPerSec =
        static_cast<double>(proc.completedReads()) / secs;

    if (cfg.latencyObs) {
        // Exact cross-channel merge of the component sketches, plus the
        // stall-attribution totals summed over every channel's links.
        obs::LatencySketches merged;
        for (auto &n : nets)
            merged.merge(n->latencySketches());
        r.latency = summarizeLatency(merged);
        for (auto &n : nets) {
            const LatencyBreakdown b = n->latencySummary();
            r.latency.wakeStallSeconds += b.wakeStallSeconds;
            r.latency.retrainStallSeconds += b.retrainStallSeconds;
            if (b.queuePeak > r.latency.queuePeak)
                r.latency.queuePeak = b.queuePeak;
        }
    }
    return r;
}

} // namespace memnet
