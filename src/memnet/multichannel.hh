/**
 * @file
 * Multi-channel memory networks — the inter-channel study the paper
 * explicitly leaves to future work (Section III-C).
 *
 * A processor drives several physically independent memory networks
 * ("channels"). Addresses are distributed across channels either by
 * line interleaving (the conventional balanced scheme the paper cites
 * [13]) or by contiguous partitioning (which concentrates a workload's
 * hot head in few channels and lets entire cold channels idle — the
 * channel-scale analogue of the paper's consolidation argument in
 * Section VII-A).
 */

#ifndef MEMNET_MEMNET_MULTICHANNEL_HH
#define MEMNET_MEMNET_MULTICHANNEL_HH

#include <cstdint>
#include <vector>

#include "memnet/config.hh"

namespace memnet
{

/** How the physical address space spreads over channels. */
enum class ChannelSpread
{
    InterleaveLines, ///< line i -> channel i % C
    Partition,       ///< contiguous 1/C of the space per channel
};

const char *channelSpreadName(ChannelSpread s);

/** Configuration: a per-channel SystemConfig plus the channel count. */
struct MultiChannelConfig
{
    /** Per-channel network/policy settings (workload, topology, ...). */
    SystemConfig base;
    int channels = 4;
    ChannelSpread spread = ChannelSpread::InterleaveLines;
};

/**
 * Global-address -> (channel, channel-local address) mapping.
 *
 * Both spreads are exact bijections over [0, totalBytes): interleaving
 * keeps the sub-line offset bits (a remapped access still lands at the
 * right bytes within its 64 B line), and partitioning range-checks
 * instead of silently clamping out-of-range addresses into the last
 * channel. unmap() inverts map() — the round trip is the property the
 * multichannel tests assert.
 */
struct ChannelRemap
{
    ChannelRemap(int channels, ChannelSpread spread,
                 std::uint64_t total_bytes);

    struct Target
    {
        int channel = 0;
        std::uint64_t local = 0;
    };

    /** Remap a global address (must be < totalBytes). */
    Target map(std::uint64_t addr) const;

    /** Invert map(): reconstruct the global address. */
    std::uint64_t unmap(int channel, std::uint64_t local) const;

    /** Bytes of one contiguous partition (line-aligned, >= total/C). */
    std::uint64_t partitionBytes() const { return partBytes; }

    int channels;
    ChannelSpread spread;
    std::uint64_t totalBytes;
    std::uint64_t partBytes;
};

/** Aggregate and per-channel results. */
struct MultiChannelResult
{
    MultiChannelConfig config;
    /** Whole-system totals. */
    double totalPowerW = 0.0;
    double readsPerSec = 0.0;
    double idleIoFrac = 0.0;
    int totalModules = 0;
    /** Per-channel summaries. */
    std::vector<PowerBreakdown> channelPower;
    std::vector<double> channelUtil;
    std::vector<int> channelModules;
    /**
     * Latency observatory over all channels: the per-channel sketches
     * are exactly mergeable, so these percentiles describe the union of
     * every channel's completed reads ({enabled=false} when
     * cfg.base.latencyObs is off).
     */
    LatencyBreakdown latency;
    /**
     * Energy observatory over all channels: the attribution ledger adds
     * field-wise in channel order and the congestion sketches merge
     * exactly, so this equals a whole-system ledger bit-identically
     * ({enabled=false} when cfg.base.energyObs is off).
     */
    EnergySummary energy;
};

/** Build, run and measure a multi-channel system. */
MultiChannelResult runMultiChannel(const MultiChannelConfig &cfg);

} // namespace memnet

#endif // MEMNET_MEMNET_MULTICHANNEL_HH
