#include "memnet/parallel.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <thread>

#include "obs/prof.hh"
#include "sim/cancel.hh"
#include "sim/log.hh"

namespace memnet
{

int
resolveJobs(int jobs)
{
    if (jobs == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw > 0 ? static_cast<int>(hw) : 1;
    }
    return jobs < 1 ? 1 : jobs;
}

const char *
failurePolicyName(FailurePolicy p)
{
    return p == FailurePolicy::Abort ? "abort" : "isolate";
}

bool
parseFailurePolicy(const std::string &s, FailurePolicy *out)
{
    if (s == "abort") {
        *out = FailurePolicy::Abort;
        return true;
    }
    if (s == "isolate") {
        *out = FailurePolicy::Isolate;
        return true;
    }
    return false;
}

ParallelRunner::ParallelRunner(Runner &runner, int jobs)
    : runner_(runner), jobs_(resolveJobs(jobs))
{
}

namespace
{

/**
 * Per-worker watchdog state. The worker publishes a deadline when it
 * starts a config; the monitor thread raises the cancel flag once the
 * deadline passes. deadlineNs == 0 means idle (nothing to watch).
 */
struct WatchSlot
{
    std::atomic<bool> cancel{false};
    std::atomic<std::int64_t> deadlineNs{0};
};

std::int64_t
steadyNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

void
ParallelRunner::run(const std::vector<SystemConfig> &configs)
{
    if (configs.empty())
        return;

    const int workers =
        std::min<int>(jobs_, static_cast<int>(configs.size()));
    const bool watchdog = configTimeoutSec_ > 0.0;
    if (workers <= 1 && !watchdog && policy_ == FailurePolicy::Abort) {
        // The historical serial path, byte-for-byte: with no robustness
        // feature active the engine must not perturb anything (the
        // perf-baseline CI gate measures this loop).
        for (const SystemConfig &cfg : configs)
            runner_.get(cfg);
        return;
    }

    // Work-stealing over a shared index: configs vary wildly in cost
    // (size class x simulated time), so static partitioning would leave
    // workers idle behind the slowest shard.
    std::atomic<std::size_t> next{0};
    std::exception_ptr firstError;
    std::mutex errorMu;
    const int poolSize = std::max(workers, 1);
    const std::unique_ptr<WatchSlot[]> slots(new WatchSlot[poolSize]);

    auto recordFailure = [&](const SystemConfig &cfg,
                             const std::string &message, bool isTimeout,
                             double wallSeconds) {
        {
            std::lock_guard<std::mutex> lock(errorMu);
            failures_.push_back({cfg, Runner::key(cfg), message,
                                 isTimeout, wallSeconds});
            if (policy_ == FailurePolicy::Abort && !firstError)
                firstError = std::current_exception();
        }
        if (policy_ == FailurePolicy::Isolate)
            runner_.markFailed(cfg);
    };

    auto worker = [&](int slot) {
        MEMNET_PROF_SCOPE("parallel/worker");
        WatchSlot &ws = slots[slot];
        const ScopedCancelFlag scoped(watchdog ? &ws.cancel : nullptr);
        const std::int64_t budgetNs =
            watchdog ? static_cast<std::int64_t>(configTimeoutSec_ * 1e9)
                     : 0;
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= configs.size())
                return;
            const std::int64_t startNs = steadyNowNs();
            if (watchdog) {
                // Order matters: clear any stale cancellation before
                // arming, so a flag raised for the previous config
                // cannot kill this one at its first poll.
                ws.cancel.store(false, std::memory_order_relaxed);
                ws.deadlineNs.store(startNs + budgetNs,
                                    std::memory_order_release);
            }
            const auto wall = [startNs] {
                return static_cast<double>(steadyNowNs() - startNs) /
                       1e9;
            };
            try {
                MEMNET_PROF_SCOPE("parallel/job");
                runner_.get(configs[i]);
            } catch (const CancelledError &e) {
                recordFailure(configs[i], e.what(), true, wall());
            } catch (const std::exception &e) {
                recordFailure(configs[i], e.what(), false, wall());
            } catch (...) {
                recordFailure(configs[i], "unknown exception", false,
                              wall());
                // Keep draining: other indices may still be claimed by
                // peers blocked on this key in Runner::get().
            }
            if (watchdog)
                ws.deadlineNs.store(0, std::memory_order_release);
        }
    };

    // The monitor wakes often enough that a budget overrun is bounded
    // by ~1/8 of the budget (floor 2 ms so tiny test budgets still trip
    // promptly, ceiling 100 ms to keep the thread near-idle).
    std::mutex monMu;
    std::condition_variable monCv;
    bool monDone = false;
    std::thread monitor;
    if (watchdog) {
        const auto interval = std::chrono::milliseconds(std::clamp(
            static_cast<std::int64_t>(configTimeoutSec_ * 1e3 / 8),
            std::int64_t{2}, std::int64_t{100}));
        monitor = std::thread([&, interval] {
            std::unique_lock<std::mutex> lock(monMu);
            while (!monDone) {
                monCv.wait_for(lock, interval);
                if (monDone)
                    break;
                const std::int64_t now = steadyNowNs();
                for (int s = 0; s < poolSize; ++s) {
                    const std::int64_t deadline =
                        slots[s].deadlineNs.load(
                            std::memory_order_acquire);
                    if (deadline != 0 && now >= deadline)
                        slots[s].cancel.store(
                            true, std::memory_order_relaxed);
                }
            }
        });
    }

    std::vector<std::thread> pool;
    pool.reserve(poolSize);
    for (int t = 0; t < poolSize; ++t)
        pool.emplace_back(worker, t);
    for (std::thread &th : pool)
        th.join();
    if (monitor.joinable()) {
        {
            std::lock_guard<std::mutex> lock(monMu);
            monDone = true;
        }
        monCv.notify_all();
        monitor.join();
    }

    std::sort(failures_.begin(), failures_.end(),
              [](const RunFailure &a, const RunFailure &b) {
                  return a.key < b.key;
              });

    if (firstError) {
        if (failures_.size() > 1) {
            memnet_warn("parallel sweep: ", failures_.size() - 1,
                        " additional failure(s) suppressed under the "
                        "abort policy; rethrowing the first");
            for (std::size_t f = 0; f < failures_.size(); ++f) {
                memnet_warn("  failed [", f + 1, "/", failures_.size(),
                            "] ", failures_[f].config.describe(), ": ",
                            failures_[f].message);
            }
        }
        std::rethrow_exception(firstError);
    }
}

} // namespace memnet
