#include "memnet/parallel.hh"

#include <atomic>
#include <exception>
#include <thread>

#include "obs/prof.hh"

namespace memnet
{

int
resolveJobs(int jobs)
{
    if (jobs == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw > 0 ? static_cast<int>(hw) : 1;
    }
    return jobs < 1 ? 1 : jobs;
}

ParallelRunner::ParallelRunner(Runner &runner, int jobs)
    : runner_(runner), jobs_(resolveJobs(jobs))
{
}

void
ParallelRunner::run(const std::vector<SystemConfig> &configs)
{
    if (configs.empty())
        return;

    const int workers =
        std::min<int>(jobs_, static_cast<int>(configs.size()));
    if (workers <= 1) {
        for (const SystemConfig &cfg : configs)
            runner_.get(cfg);
        return;
    }

    // Work-stealing over a shared index: configs vary wildly in cost
    // (size class x simulated time), so static partitioning would leave
    // workers idle behind the slowest shard.
    std::atomic<std::size_t> next{0};
    std::exception_ptr firstError;
    std::mutex errorMu;

    auto worker = [&]() {
        MEMNET_PROF_SCOPE("parallel/worker");
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= configs.size())
                return;
            try {
                MEMNET_PROF_SCOPE("parallel/job");
                runner_.get(configs[i]);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMu);
                if (!firstError)
                    firstError = std::current_exception();
                // Keep draining: other indices may still be claimed by
                // peers blocked on this key in Runner::get().
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (int t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (std::thread &th : pool)
        th.join();

    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace memnet
