/**
 * @file
 * Parallel sweep engine.
 *
 * Every figure in the paper is a sweep over independent simulations
 * (topologies x workloads x size classes x mechanisms), yet runs used
 * to execute strictly serially. ParallelRunner executes a batch of
 * SystemConfigs on a thread pool, filling a shared Runner cache with
 * results that are bit-identical to serial execution: each run owns
 * its EventQueue and seeded RNGs, the Runner cache and the process-wide
 * log sink are thread-safe, and Runner::results() iterates in sorted
 * key order regardless of completion order.
 *
 * Sweep benches don't use this class directly — bench::BenchIo::run()
 * drives it from the shared `--jobs N` flag (see bench/bench_common.hh)
 * with a collect/execute/replay pass structure. memnet_run uses it for
 * seed-replica sweeps (`--seeds K --jobs N`).
 */

#ifndef MEMNET_MEMNET_PARALLEL_HH
#define MEMNET_MEMNET_PARALLEL_HH

#include <vector>

#include "memnet/experiment.hh"

namespace memnet
{

/**
 * Resolve a --jobs style request: 0 means "all hardware threads",
 * anything else is clamped to at least 1.
 */
int resolveJobs(int jobs);

/**
 * Thread-pool executor over a shared memoizing Runner.
 */
class ParallelRunner
{
  public:
    /**
     * @param runner shared result cache (thread-safe).
     * @param jobs worker threads; 0 = hardware concurrency.
     */
    explicit ParallelRunner(Runner &runner, int jobs = 0);

    /**
     * Execute every config in @p configs, blocking until all finish.
     * Duplicate configs (and configs already cached) are simulated only
     * once. Worker exceptions propagate — the first one thrown is
     * rethrown here after the pool drains.
     */
    void run(const std::vector<SystemConfig> &configs);

    /** Worker threads this engine uses. */
    int jobs() const { return jobs_; }

  private:
    Runner &runner_;
    int jobs_;
};

} // namespace memnet

#endif // MEMNET_MEMNET_PARALLEL_HH
