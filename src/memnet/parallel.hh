/**
 * @file
 * Parallel sweep engine.
 *
 * Every figure in the paper is a sweep over independent simulations
 * (topologies x workloads x size classes x mechanisms), yet runs used
 * to execute strictly serially. ParallelRunner executes a batch of
 * SystemConfigs on a thread pool, filling a shared Runner cache with
 * results that are bit-identical to serial execution: each run owns
 * its EventQueue and seeded RNGs, the Runner cache and the process-wide
 * log sink are thread-safe, and Runner::results() iterates in sorted
 * key order regardless of completion order.
 *
 * Failure handling is policy-selectable (`--failure-policy`):
 *
 *  - Abort (default, the historical behavior): the pool drains, the
 *    first exception is rethrown, and any further failures are logged
 *    as suppressed so multi-failure sweeps don't hide evidence.
 *  - Isolate: a failing config is recorded in failures() — config,
 *    canonical key, exception text, watchdog verdict — and poisoned in
 *    the Runner (markFailed) so replay passes don't re-crash; the rest
 *    of the sweep completes and the caller reports partial results
 *    plus a machine-readable failure manifest (memnet/journal.hh).
 *
 * The hang watchdog (`--config-timeout`) gives each config a
 * wall-clock budget: a monitor thread arms a per-worker deadline and
 * sets the worker's cooperative stop flag (sim/cancel.hh) when it
 * expires; the event-dispatch loop observes the flag and throws
 * CancelledError carrying an event-queue/profiler diagnostics
 * snapshot, which is routed through the failure policy like any other
 * exception. The budget covers the whole Runner::get() call — a
 * worker that spends its budget blocked on a peer's in-flight result
 * re-runs the config itself afterwards with a fresh budget.
 *
 * Sweep benches don't use this class directly — bench::BenchIo::run()
 * drives it from the shared `--jobs N` flag (see bench/bench_common.hh)
 * with a collect/execute/replay pass structure. memnet_run uses it for
 * seed-replica sweeps (`--seeds K --jobs N`).
 */

#ifndef MEMNET_MEMNET_PARALLEL_HH
#define MEMNET_MEMNET_PARALLEL_HH

#include <string>
#include <vector>

#include "memnet/experiment.hh"

namespace memnet
{

/**
 * Resolve a --jobs style request: 0 means "all hardware threads",
 * anything else is clamped to at least 1.
 */
int resolveJobs(int jobs);

/** What run() does when a config throws or trips the hang watchdog. */
enum class FailurePolicy
{
    Abort,   ///< drain the pool, then rethrow the first failure
    Isolate, ///< record + poison the config, finish the sweep
};

/** Canonical flag spelling ("abort" / "isolate"). */
const char *failurePolicyName(FailurePolicy p);

/** Parse a --failure-policy value; false on unknown spelling. */
bool parseFailurePolicy(const std::string &s, FailurePolicy *out);

/** One failed config of a sweep (see ParallelRunner::failures()). */
struct RunFailure
{
    /** The config that failed, as submitted. */
    SystemConfig config;
    /** Its canonical Runner key. */
    std::string key;
    /**
     * Exception text. Watchdog kills carry the CancelledError
     * diagnostics snapshot (event-queue health counters, hottest
     * profiler phases).
     */
    std::string message;
    /** True when the hang watchdog cancelled it (vs. an exception). */
    bool timeout = false;
    /** Wall-clock seconds spent on the config before it failed. */
    double wallSeconds = 0.0;
};

/**
 * Thread-pool executor over a shared memoizing Runner.
 */
class ParallelRunner
{
  public:
    /**
     * @param runner shared result cache (thread-safe).
     * @param jobs worker threads; 0 = hardware concurrency.
     */
    explicit ParallelRunner(Runner &runner, int jobs = 0);

    /**
     * Execute every config in @p configs, blocking until all finish.
     * Duplicate configs (and configs already cached) are simulated only
     * once. Failures follow the configured policy: under Abort the
     * first exception is rethrown here after the pool drains (with a
     * suppressed-failure log line when there were more); under Isolate
     * nothing throws and failures() reports the casualties.
     */
    void run(const std::vector<SystemConfig> &configs);

    /** Worker threads this engine uses. */
    int jobs() const { return jobs_; }

    void setFailurePolicy(FailurePolicy p) { policy_ = p; }

    FailurePolicy failurePolicy() const { return policy_; }

    /** Per-config wall-clock budget in seconds; <= 0 disables. */
    void setConfigTimeout(double seconds) { configTimeoutSec_ = seconds; }

    double configTimeout() const { return configTimeoutSec_; }

    /**
     * Failures accumulated across run() calls, sorted by canonical key
     * (so manifests are deterministically ordered). Under Abort this
     * still fills — it is what the suppressed-failure log reports.
     */
    const std::vector<RunFailure> &failures() const { return failures_; }

  private:
    Runner &runner_;
    int jobs_;
    FailurePolicy policy_ = FailurePolicy::Abort;
    double configTimeoutSec_ = 0.0;
    std::vector<RunFailure> failures_;
};

} // namespace memnet

#endif // MEMNET_MEMNET_PARALLEL_HH
