#include "memnet/report.hh"

#include <algorithm>
#include <cstdio>

#include "memnet/experiment.hh"
#include "obs/json.hh"

namespace memnet
{

void
printRunSummary(const RunResult &r)
{
    std::printf("run: %s\n", r.config.describe().c_str());
    std::printf("  modules: %d   network power: %.2f W "
                "(%.2f W per HMC, %.0f%% idle I/O)\n",
                r.numModules, r.totalNetworkPowerW, r.perHmc.totalW(),
                r.idleIoFrac * 100);
    std::printf("  throughput: %.1f M reads/s   avg read latency: "
                "%.0f ns\n",
                r.readsPerSec / 1e6, r.avgReadLatencyNs);
    std::printf("  channel util: %.0f%%   avg link util: %.0f%%   "
                "modules/access: %.2f\n",
                r.channelUtil * 100, r.avgLinkUtil * 100,
                r.avgModulesTraversed);
    if (r.latency.enabled && r.latency.endToEnd.samples) {
        const LatencyBreakdown &lat = r.latency;
        auto ns = [](std::uint64_t ps) {
            return static_cast<double>(ps) / 1e3;
        };
        std::printf("  latency: p50 %.1f ns  p99 %.1f ns  p999 %.1f ns"
                    "  max %.1f ns (%llu reads)\n",
                    ns(lat.endToEnd.p50Ps), ns(lat.endToEnd.p99Ps),
                    ns(lat.endToEnd.p999Ps), ns(lat.endToEnd.maxPs),
                    static_cast<unsigned long long>(
                        lat.endToEnd.samples));
        const double total =
            static_cast<double>(lat.endToEnd.sumPs);
        if (total > 0) {
            auto share = [total](std::uint64_t sum) {
                return 100.0 * static_cast<double>(sum) / total;
            };
            std::printf("  breakdown: queue %.1f%%  wake stall %.1f%%  "
                        "retrain stall %.1f%%  ser %.1f%%  dram %.1f%%\n",
                        share(lat.queue.sumPs),
                        share(lat.wakeStall.sumPs),
                        share(lat.retrainStall.sumPs),
                        share(lat.serialization.sumPs),
                        share(lat.dram.sumPs));
        }
    }
    if (r.energy.enabled && r.energy.attribution.totalJ() > 0) {
        const EnergyAttribution &ea = r.energy.attribution;
        const double total = ea.totalJ();
        auto share = [total](double j) { return 100.0 * j / total; };
        std::printf("  energy: %.4f J — tx %.1f%%  idle floor %.1f%%  "
                    "sleep %.1f%%  wake %.1f%%  retrain %.1f%%\n",
                    total, share(ea.txJ), share(ea.idleFloorJ()),
                    share(ea.sleepJ), share(ea.wakeJ),
                    share(ea.retrainJ));
        std::printf("    module causes: serdes leak %.1f%%  router "
                    "%.1f%%  dram leak %.1f%%  dram dyn %.1f%%   "
                    "occupancy p99: %llu pkts\n",
                    share(ea.serdesLeakJ), share(ea.routerJ),
                    share(ea.dramLeakJ), share(ea.dramDynJ),
                    static_cast<unsigned long long>(
                        r.energy.occupancy.p99Ps));
    }
    if (r.violations)
        std::printf("  AMS violations: %llu\n",
                    static_cast<unsigned long long>(r.violations));
    if (r.reliability.any()) {
        const ReliabilityStats &rel = r.reliability;
        std::printf("  reliability: %llu CRC retries, %llu replays, "
                    "%llu retrains (%.1f us), %.1f us degraded, "
                    "%llu fault events\n",
                    static_cast<unsigned long long>(rel.retries),
                    static_cast<unsigned long long>(rel.replays),
                    static_cast<unsigned long long>(rel.retrains),
                    rel.retrainSeconds * 1e6,
                    rel.degradedSeconds * 1e6,
                    static_cast<unsigned long long>(rel.faultEvents));
    }
    if (r.profile.eventsFired) {
        const RunProfile &p = r.profile;
        std::printf("  profile: %llu events (%llu scheduled) in "
                    "%.2f s wall, %.2f M events/s, %.1f us simulated "
                    "per wall second\n",
                    static_cast<unsigned long long>(p.eventsFired),
                    static_cast<unsigned long long>(p.eventsScheduled),
                    p.wallSeconds, p.eventsPerSec() / 1e6,
                    p.simRate() * 1e6);
        // Memory-pressure high-water marks, visible without
        // --stats-json: the pool's peak live-packet count and the
        // event queue's peak pending depth.
        std::printf("  peaks: packet pool %llu packets, event queue "
                    "%llu pending\n",
                    static_cast<unsigned long long>(p.packetHeapAllocs),
                    static_cast<unsigned long long>(p.peakQueueDepth));
        if (p.packetsIssued) {
            std::printf("  packets: %llu issued, %llu pooled "
                        "(%llu heap allocations avoided)\n",
                        static_cast<unsigned long long>(p.packetsIssued),
                        static_cast<unsigned long long>(
                            p.packetHeapAllocs),
                        static_cast<unsigned long long>(
                            p.packetAllocsAvoided()));
        }
        if (p.peakQueueDepth) {
            std::printf("  event queue: peak depth %llu, %llu "
                        "descheduled, %zu dispatch windows of %lld us\n",
                        static_cast<unsigned long long>(p.peakQueueDepth),
                        static_cast<unsigned long long>(
                            p.eventsDescheduled),
                        p.dispatchWindows.size(),
                        static_cast<long long>(p.dispatchWindowPs /
                                               us(1)));
        }
        if (p.partitions > 1) {
            std::printf("  partitions: %d (%s sync); events/s and "
                        "queue stats above aggregate all lanes\n",
                        p.partitions, p.laxSync ? "lax" : "barrier");
            for (std::size_t i = 0; i < p.partitionLanes.size(); ++i) {
                const PartitionLane &l = p.partitionLanes[i];
                std::printf("    lane %zu: %llu events, peak depth "
                            "%llu, %llu windows, %.1f ms in barriers\n",
                            i,
                            static_cast<unsigned long long>(
                                l.eventsFired),
                            static_cast<unsigned long long>(
                                l.peakQueueDepth),
                            static_cast<unsigned long long>(l.windows),
                            static_cast<double>(l.barrierWaitNs) / 1e6);
            }
        }
        if (!p.profPhases.empty()) {
            // Rank by self time (inclusive minus direct children), so
            // a parent whose time is all in one child doesn't shadow
            // it.
            std::vector<prof::ProfPhase> rows = p.profPhases;
            for (prof::ProfPhase &ph : rows) {
                std::uint64_t kids = 0;
                for (const prof::ProfPhase &c : p.profPhases) {
                    if (c.path.size() > ph.path.size() + 1 &&
                        c.path.compare(0, ph.path.size(), ph.path) ==
                            0 &&
                        c.path[ph.path.size()] == ';' &&
                        c.path.find(';', ph.path.size() + 1) ==
                            std::string::npos)
                        kids += c.ns;
                }
                ph.ns = ph.ns > kids ? ph.ns - kids : 0;
            }
            std::sort(rows.begin(), rows.end(),
                      [](const prof::ProfPhase &a,
                         const prof::ProfPhase &b) {
                          return a.ns > b.ns;
                      });
            std::printf("  host phases (self time):");
            int shown = 0;
            for (const prof::ProfPhase &ph : rows) {
                if (!ph.ns)
                    break;
                std::printf("%s %s %.2f ms", shown ? "," : "",
                            ph.path.c_str(),
                            static_cast<double>(ph.ns) / 1e6);
                if (++shown == 4)
                    break;
            }
            std::printf("\n");
        }
    }
}

SeedProfileSummary
summarizeSeedProfiles(const std::vector<const RunResult *> &runs)
{
    SeedProfileSummary s;
    std::vector<double> rates;
    for (const RunResult *r : runs) {
        if (!r)
            continue;
        ++s.runs;
        rates.push_back(r->profile.eventsPerSec());
        s.totalWallSeconds += r->profile.wallSeconds;
        s.totalEventsFired += r->profile.eventsFired;
    }
    if (rates.empty())
        return s;
    std::sort(rates.begin(), rates.end());
    s.minEventsPerSec = rates.front();
    s.maxEventsPerSec = rates.back();
    const std::size_t n = rates.size();
    s.medianEventsPerSec = n % 2 ? rates[n / 2]
                                 : 0.5 * (rates[n / 2 - 1] +
                                          rates[n / 2]);
    return s;
}

void
printSeedProfileSummary(const SeedProfileSummary &s)
{
    if (!s.runs)
        return;
    std::printf("profile over %d runs: %.2f/%.2f/%.2f M events/s "
                "(min/median/max), %llu events in %.2f s wall total\n",
                s.runs, s.minEventsPerSec / 1e6,
                s.medianEventsPerSec / 1e6, s.maxEventsPerSec / 1e6,
                static_cast<unsigned long long>(s.totalEventsFired),
                s.totalWallSeconds);
}

void
printModuleReport(const RunResult &r)
{
    TextTable t({"module", "radix", "hops", "DRAM accesses",
                 "flits routed", "req util", "resp util", "req power",
                 "resp power"});
    for (const ModuleDetail &m : r.modules) {
        t.addRow({std::to_string(m.id), m.highRadix ? "high" : "low",
                  std::to_string(m.hopDistance),
                  std::to_string(m.dramAccesses),
                  std::to_string(m.flitsRouted),
                  TextTable::pct(m.requestLinkUtil),
                  TextTable::pct(m.responseLinkUtil),
                  TextTable::pct(m.requestLinkPowerFrac, 0),
                  TextTable::pct(m.responseLinkPowerFrac, 0)});
    }
    t.print();
}

void
printPowerBreakdown(const RunResult &r)
{
    TextTable t({"component", "W per HMC", "share"});
    const double total = r.perHmc.totalW();
    auto row = [&](const char *name, double w) {
        t.addRow({name, TextTable::fmt(w),
                  TextTable::pct(total > 0 ? w / total : 0)});
    };
    row("Idle I/O", r.perHmc.idleIoW);
    row("Active I/O", r.perHmc.activeIoW);
    row("Logic leakage", r.perHmc.logicLeakW);
    row("Logic dynamic", r.perHmc.logicDynW);
    row("DRAM leakage", r.perHmc.dramLeakW);
    row("DRAM dynamic", r.perHmc.dramDynW);
    row("total", total);
    t.print();
}

void
printLinkHours(const RunResult &r)
{
    double total = 0;
    for (const auto &bucket : r.linkHours)
        for (double v : bucket)
            total += v;
    if (total <= 0) {
        std::printf("(no link-hour data)\n");
        return;
    }
    TextTable t({"utilization", "16 lanes", "8 lanes", "4 lanes",
                 "1 lane"});
    for (int b = 0; b < kUtilBuckets; ++b) {
        std::vector<std::string> row = {kUtilBucketNames[b]};
        for (int l = 0; l < kLaneModes; ++l)
            row.push_back(TextTable::pct(r.linkHours[b][l] / total));
        t.addRow(row);
    }
    t.print();
}

const char *
mechanismName(BwMechanism m)
{
    switch (m) {
      case BwMechanism::None:
        return "none";
      case BwMechanism::Vwl:
        return "VWL";
      case BwMechanism::Dvfs:
        return "DVFS";
    }
    return "?";
}

void
writeRunResultJson(obs::JsonWriter &w, const RunResult &r)
{
    const SystemConfig &c = r.config;
    w.beginObject();
    w.field("num_modules", static_cast<std::int64_t>(r.numModules));

    w.key("config");
    w.beginObject();
    w.field("workload", c.workload);
    w.field("topology", topologyName(c.topology));
    w.field("size_class", sizeClassName(c.sizeClass));
    w.field("policy", policyName(c.policy));
    w.field("mechanism", mechanismName(c.mechanism));
    w.field("roo", c.roo);
    w.field("alpha_pct", c.alphaPct);
    w.field("seed", c.seed);
    w.endObject();

    w.key("power");
    w.beginObject();
    w.key("per_hmc_w");
    w.beginObject();
    w.field("idle_io", r.perHmc.idleIoW);
    w.field("active_io", r.perHmc.activeIoW);
    w.field("logic_leak", r.perHmc.logicLeakW);
    w.field("logic_dyn", r.perHmc.logicDynW);
    w.field("dram_leak", r.perHmc.dramLeakW);
    w.field("dram_dyn", r.perHmc.dramDynW);
    w.field("total", r.perHmc.totalW());
    w.endObject();
    w.field("total_network_w", r.totalNetworkPowerW);
    w.field("idle_io_frac", r.idleIoFrac);
    w.endObject();

    w.key("perf");
    w.beginObject();
    w.field("reads_per_sec", r.readsPerSec);
    w.field("avg_read_latency_ns", r.avgReadLatencyNs);
    w.field("channel_util", r.channelUtil);
    w.field("avg_link_util", r.avgLinkUtil);
    w.field("avg_modules_traversed", r.avgModulesTraversed);
    w.field("completed_reads", r.completedReads);
    w.endObject();

    w.field("violations", r.violations);

    w.key("reliability");
    w.beginObject();
    w.field("retries", r.reliability.retries);
    w.field("replays", r.reliability.replays);
    w.field("retrains", r.reliability.retrains);
    w.field("retrain_s", r.reliability.retrainSeconds);
    w.field("degraded_s", r.reliability.degradedSeconds);
    w.field("fault_events", r.reliability.faultEvents);
    w.endObject();

    // schema_version 3: latency observatory. All integer-picosecond
    // percentiles, simulation-determined and deterministic; samples=0
    // (with zero percentiles, never NaN) when the window completed no
    // reads or the observatory was disabled.
    w.key("latency");
    w.beginObject();
    w.field("enabled", r.latency.enabled);
    w.field("samples", r.latency.endToEnd.samples);
    w.field("wake_stall_s", r.latency.wakeStallSeconds);
    w.field("retrain_stall_s", r.latency.retrainStallSeconds);
    w.field("queue_peak", r.latency.queuePeak);
    auto component = [&w](const char *name,
                          const LatencyPercentiles &p) {
        w.key(name);
        w.beginObject();
        w.field("samples", p.samples);
        w.field("sum_ps", p.sumPs);
        w.field("p50_ps", p.p50Ps);
        w.field("p90_ps", p.p90Ps);
        w.field("p99_ps", p.p99Ps);
        w.field("p999_ps", p.p999Ps);
        w.field("max_ps", p.maxPs);
        w.endObject();
    };
    component("end_to_end", r.latency.endToEnd);
    component("queue", r.latency.queue);
    component("wake_stall", r.latency.wakeStall);
    component("retrain_stall", r.latency.retrainStall);
    component("serialization", r.latency.serialization);
    component("dram", r.latency.dram);
    w.endObject();

    // schema_version 4: energy observatory. The attribution joules are
    // exact simulation-determined doubles (bench_compare treats them as
    // exact counters); enabled=false with all-zero fields when the
    // observatory is off.
    w.key("energy");
    w.beginObject();
    w.field("enabled", r.energy.enabled);
    const EnergyAttribution &ea = r.energy.attribution;
    w.key("attribution_j");
    w.beginObject();
    w.field("tx", ea.txJ);
    w.field("retrain", ea.retrainJ);
    w.field("idle_floor", ea.idleFloorJ());
    w.key("idle_mode");
    w.beginArray();
    for (double j : ea.idleModeJ)
        w.value(j);
    w.endArray();
    w.field("sleep", ea.sleepJ);
    w.field("wake", ea.wakeJ);
    w.field("serdes_leak", ea.serdesLeakJ);
    w.field("router", ea.routerJ);
    w.field("dram_leak", ea.dramLeakJ);
    w.field("dram_dyn", ea.dramDynJ);
    w.field("idle_io", ea.idleIoJ);
    w.field("active_io", ea.activeIoJ);
    w.field("total", ea.totalJ());
    w.endObject();
    auto sketch = [&w](const char *name, const LatencyPercentiles &p) {
        w.key(name);
        w.beginObject();
        w.field("samples", p.samples);
        w.field("sum", p.sumPs);
        w.field("p50", p.p50Ps);
        w.field("p90", p.p90Ps);
        w.field("p99", p.p99Ps);
        w.field("p999", p.p999Ps);
        w.field("max", p.maxPs);
        w.endObject();
    };
    sketch("link_utilization_ppm", r.energy.utilization);
    sketch("queue_occupancy", r.energy.occupancy);
    w.endObject();

    // wall_s and prof_phases vary between identical runs; tools
    // comparing bench JSON ignore them (scripts/bench_compare.py,
    // scripts/diff_runs.py — see ci/bench_schema.json).
    w.key("profile");
    w.beginObject();
    w.field("events_fired", r.profile.eventsFired);
    w.field("events_scheduled", r.profile.eventsScheduled);
    w.field("events_descheduled", r.profile.eventsDescheduled);
    w.field("peak_queue_depth", r.profile.peakQueueDepth);
    w.field("wall_s", r.profile.wallSeconds);
    w.field("sim_s", r.profile.simSeconds);
    w.field("packets_issued", r.profile.packetsIssued);
    w.field("packet_heap_allocs", r.profile.packetHeapAllocs);
    w.field("dispatch_window_ps",
            static_cast<std::uint64_t>(r.profile.dispatchWindowPs));
    w.key("dispatch_windows");
    w.beginArray();
    for (std::uint64_t v : r.profile.dispatchWindows)
        w.value(v);
    w.endArray();
    w.field("partitions",
            static_cast<std::uint64_t>(r.profile.partitions));
    w.field("lax_sync", r.profile.laxSync);
    // barrier_wait_ns is wall-clock, like wall_s: comparison tools
    // must not treat it as simulation-determined.
    w.key("partition_lanes");
    w.beginArray();
    for (const PartitionLane &l : r.profile.partitionLanes) {
        w.beginObject();
        w.field("events_fired", l.eventsFired);
        w.field("events_scheduled", l.eventsScheduled);
        w.field("peak_queue_depth", l.peakQueueDepth);
        w.field("windows", l.windows);
        w.field("barrier_wait_ns", l.barrierWaitNs);
        w.endObject();
    }
    w.endArray();
    w.key("prof_phases");
    w.beginArray();
    for (const prof::ProfPhase &p : r.profile.profPhases) {
        w.beginObject();
        w.field("path", p.path);
        w.field("ns", p.ns);
        w.field("count", p.count);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.endObject();
}

void
writeBenchResultsJson(std::ostream &os, const std::string &bench,
                      const std::map<std::string, RunResult> &results)
{
    obs::JsonWriter w(os);
    w.beginObject();
    w.field("schema_version",
            static_cast<std::int64_t>(kBenchJsonSchemaVersion));
    w.field("bench", bench);
    w.key("runs");
    w.beginArray();
    for (const auto &kv : results) {
        w.beginObject();
        w.field("key", kv.first);
        w.key("result");
        writeRunResultJson(w, kv.second);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

} // namespace memnet
