#include "memnet/report.hh"

#include <cstdio>

#include "memnet/experiment.hh"

namespace memnet
{

void
printRunSummary(const RunResult &r)
{
    std::printf("run: %s\n", r.config.describe().c_str());
    std::printf("  modules: %d   network power: %.2f W "
                "(%.2f W per HMC, %.0f%% idle I/O)\n",
                r.numModules, r.totalNetworkPowerW, r.perHmc.totalW(),
                r.idleIoFrac * 100);
    std::printf("  throughput: %.1f M reads/s   avg read latency: "
                "%.0f ns\n",
                r.readsPerSec / 1e6, r.avgReadLatencyNs);
    std::printf("  channel util: %.0f%%   avg link util: %.0f%%   "
                "modules/access: %.2f\n",
                r.channelUtil * 100, r.avgLinkUtil * 100,
                r.avgModulesTraversed);
    if (r.violations)
        std::printf("  AMS violations: %llu\n",
                    static_cast<unsigned long long>(r.violations));
    if (r.reliability.any()) {
        const ReliabilityStats &rel = r.reliability;
        std::printf("  reliability: %llu CRC retries, %llu replays, "
                    "%llu retrains (%.1f us), %.1f us degraded, "
                    "%llu fault events\n",
                    static_cast<unsigned long long>(rel.retries),
                    static_cast<unsigned long long>(rel.replays),
                    static_cast<unsigned long long>(rel.retrains),
                    rel.retrainSeconds * 1e6,
                    rel.degradedSeconds * 1e6,
                    static_cast<unsigned long long>(rel.faultEvents));
    }
}

void
printModuleReport(const RunResult &r)
{
    TextTable t({"module", "radix", "hops", "DRAM accesses",
                 "flits routed", "req util", "resp util", "req power",
                 "resp power"});
    for (const ModuleDetail &m : r.modules) {
        t.addRow({std::to_string(m.id), m.highRadix ? "high" : "low",
                  std::to_string(m.hopDistance),
                  std::to_string(m.dramAccesses),
                  std::to_string(m.flitsRouted),
                  TextTable::pct(m.requestLinkUtil),
                  TextTable::pct(m.responseLinkUtil),
                  TextTable::pct(m.requestLinkPowerFrac, 0),
                  TextTable::pct(m.responseLinkPowerFrac, 0)});
    }
    t.print();
}

void
printPowerBreakdown(const RunResult &r)
{
    TextTable t({"component", "W per HMC", "share"});
    const double total = r.perHmc.totalW();
    auto row = [&](const char *name, double w) {
        t.addRow({name, TextTable::fmt(w),
                  TextTable::pct(total > 0 ? w / total : 0)});
    };
    row("Idle I/O", r.perHmc.idleIoW);
    row("Active I/O", r.perHmc.activeIoW);
    row("Logic leakage", r.perHmc.logicLeakW);
    row("Logic dynamic", r.perHmc.logicDynW);
    row("DRAM leakage", r.perHmc.dramLeakW);
    row("DRAM dynamic", r.perHmc.dramDynW);
    row("total", total);
    t.print();
}

void
printLinkHours(const RunResult &r)
{
    double total = 0;
    for (const auto &bucket : r.linkHours)
        for (double v : bucket)
            total += v;
    if (total <= 0) {
        std::printf("(no link-hour data)\n");
        return;
    }
    TextTable t({"utilization", "16 lanes", "8 lanes", "4 lanes",
                 "1 lane"});
    for (int b = 0; b < kUtilBuckets; ++b) {
        std::vector<std::string> row = {kUtilBucketNames[b]};
        for (int l = 0; l < kLaneModes; ++l)
            row.push_back(TextTable::pct(r.linkHours[b][l] / total));
        t.addRow(row);
    }
    t.print();
}

} // namespace memnet
