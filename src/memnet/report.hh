/**
 * @file
 * Human-readable run reports built from RunResult, used by the example
 * applications and handy for downstream users exploring a design.
 */

#ifndef MEMNET_MEMNET_REPORT_HH
#define MEMNET_MEMNET_REPORT_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "memnet/config.hh"

namespace memnet
{

namespace obs
{
class JsonWriter;
}

/** One-paragraph summary: power, performance, utilization. */
void printRunSummary(const RunResult &r);

/** Per-module table: radix, hops, traffic, link state. */
void printModuleReport(const RunResult &r);

/** Figure-5-style component breakdown of one run. */
void printPowerBreakdown(const RunResult &r);

/** The Figure-13-style link-hours matrix of one run. */
void printLinkHours(const RunResult &r);

/** Short name of a bandwidth mechanism ("none", "VWL", "DVFS"). */
const char *mechanismName(BwMechanism m);

/**
 * Wall-clock profile aggregated over seed replicas: the spread of the
 * per-run event rates plus the totals, so a --seeds sweep reports all
 * of its runs instead of just the last one.
 */
struct SeedProfileSummary
{
    int runs = 0;
    double minEventsPerSec = 0.0;
    double medianEventsPerSec = 0.0;
    double maxEventsPerSec = 0.0;
    double totalWallSeconds = 0.0;
    std::uint64_t totalEventsFired = 0;
};

SeedProfileSummary
summarizeSeedProfiles(const std::vector<const RunResult *> &runs);

/** One-line rendering of a SeedProfileSummary. */
void printSeedProfileSummary(const SeedProfileSummary &s);

/** Schema version of the bench --json format (see ci/bench_schema.json).
 *  v3 adds the per-run "latency" object (latency observatory).
 *  v4 adds the per-run "energy" object (energy observatory). */
constexpr int kBenchJsonSchemaVersion = 4;

/** Emit one RunResult as a JSON object (config echo + measurements). */
void writeRunResultJson(obs::JsonWriter &w, const RunResult &r);

/**
 * Machine-readable bench output: every cached run of a Runner, keyed
 * and ordered by its canonical config key. Used by the shared --json
 * bench flag; validated in CI against ci/bench_schema.json.
 */
void writeBenchResultsJson(
    std::ostream &os, const std::string &bench,
    const std::map<std::string, RunResult> &results);

} // namespace memnet

#endif // MEMNET_MEMNET_REPORT_HH
