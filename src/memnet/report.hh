/**
 * @file
 * Human-readable run reports built from RunResult, used by the example
 * applications and handy for downstream users exploring a design.
 */

#ifndef MEMNET_MEMNET_REPORT_HH
#define MEMNET_MEMNET_REPORT_HH

#include <string>

#include "memnet/config.hh"

namespace memnet
{

/** One-paragraph summary: power, performance, utilization. */
void printRunSummary(const RunResult &r);

/** Per-module table: radix, hops, traffic, link state. */
void printModuleReport(const RunResult &r);

/** Figure-5-style component breakdown of one run. */
void printPowerBreakdown(const RunResult &r);

/** The Figure-13-style link-hours matrix of one run. */
void printLinkHours(const RunResult &r);

} // namespace memnet

#endif // MEMNET_MEMNET_REPORT_HH
