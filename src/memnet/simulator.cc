#include "memnet/simulator.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>

#include "audit/audit.hh"
#include "dram/dram_params.hh"
#include "mgmt/aware.hh"
#include "mgmt/manager.hh"
#include "mgmt/static_taper.hh"
#include "net/network.hh"
#include "obs/debug_trace.hh"
#include "obs/obs.hh"
#include "sim/event_queue.hh"
#include "sim/log.hh"
#include "workload/processor.hh"

namespace memnet
{

const char *
sizeClassName(SizeClass s)
{
    return s == SizeClass::Small ? "small" : "big";
}

const char *
policyName(Policy p)
{
    switch (p) {
      case Policy::FullPower:
        return "FP";
      case Policy::Unaware:
        return "unaware";
      case Policy::Aware:
        return "aware";
      case Policy::StaticTaper:
        return "static";
    }
    return "?";
}

const char *const kUtilBucketNames[kUtilBuckets] = {
    "0-1%", "1-5%", "5-10%", "10-20%", "20-100%"};

std::string
SystemConfig::describe() const
{
    std::ostringstream os;
    os << workload << "/" << topologyName(topology) << "/"
       << sizeClassName(sizeClass) << "/" << policyName(policy);
    return os.str();
}

namespace
{

/** Utilization bucket index for Figure 13. */
int
utilBucket(double u)
{
    if (u < 0.01)
        return 0;
    if (u < 0.05)
        return 1;
    if (u < 0.10)
        return 2;
    if (u < 0.20)
        return 3;
    return 4;
}

/** Map a bandwidth-mode index to the 16/8/4/1-lane reporting group. */
int
laneGroup(BwMechanism mech, std::size_t mode_idx)
{
    // VWL modes map directly; DVFS modes are grouped by their closest
    // bandwidth equivalent; mechanism None is always "16 lanes".
    if (mech == BwMechanism::None)
        return 0;
    return static_cast<int>(std::min<std::size_t>(mode_idx, 3));
}

} // namespace

Tick
effectiveMeasure(const SystemConfig &cfg)
{
    if (const char *env = std::getenv("MEMNET_SIM_US")) {
        const long v = std::atol(env);
        if (v > 0)
            return us(v);
    }
    return cfg.measure;
}

class SimulatorImpl
{
  public:
    explicit SimulatorImpl(const SystemConfig &cfg) : cfg(cfg) {}

    RunResult
    run()
    {
        // Per-run profiler capture: attributes every phase recorded on
        // this thread between here and the end of run() to this
        // RunResult, which stays correct when Runner reuses a thread
        // or ParallelRunner runs several sims concurrently.
        prof::ScopedCapture capture("sim/run");
        // The construction phase can't sit in its own block (everything
        // built here outlives it), so the scope is closed by hand right
        // before the warmup dispatch.
        prof::Scope build{"sim/build"};

        const WorkloadProfile &profile = workloadByName(cfg.workload);
        const int n = profile.modulesFor(cfg.chunkBytes());

        Topology topo = Topology::build(cfg.topology, n);
        topo.validate();

        DramParams dram;
        RooConfig roo;
        roo.enabled = cfg.roo;
        roo.wakeupPs = cfg.rooWakeupPs;

        AddressMap amap;
        amap.chunkBytes = cfg.chunkBytes();
        amap.interleavePages = cfg.interleavePages;
        amap.modules = n;

        HmcPowerModel pm(cfg.ioAttribution);
        LinkErrorModel errors;
        errors.flitErrorRate = cfg.linkFlitErrorRate;
        EventQueue eq;
        Network net(eq, topo, dram, cfg.mechanism, roo, pm, amap,
                    errors);

        ProcessorParams pp;
        pp.cores = cfg.cores;
        pp.maxReadsPerCore = cfg.maxReadsPerCore;
        pp.maxWritesPerCore = cfg.maxWritesPerCore;
        pp.seed = cfg.seed;
        pp.watchdogTimeoutPs = watchdogTimeout();
        Processor proc(eq, net, profile, pp);

        // Fault injection: only constructed for a non-empty plan so a
        // default config's event stream is bit-identical to the
        // pre-fault-model simulator.
        std::unique_ptr<FaultInjector> injector;
        if (!cfg.faults.empty()) {
            injector = std::make_unique<FaultInjector>(
                eq, net, cfg.faults, cfg.seed);
            injector->start(0);
        }

        std::unique_ptr<PowerManager> mgr;
        std::unique_ptr<StaticTaperManager> taper;
        ManagerParams mp;
        mp.alphaPct = cfg.alphaPct;
        mp.epochLen = cfg.epochLen;
        switch (cfg.policy) {
          case Policy::FullPower:
            break;
          case Policy::Unaware:
            mgr = std::make_unique<UnawareManager>(net, cfg.mechanism,
                                                   roo, mp);
            break;
          case Policy::Aware: {
            AwareOptions opts;
            opts.ispIterations = cfg.aware.ispIterations;
            opts.congestionDiscount = cfg.aware.congestionDiscount;
            opts.wakeCoordination = cfg.aware.wakeCoordination;
            opts.grantPool = cfg.aware.grantPool;
            mgr = std::make_unique<AwareManager>(net, cfg.mechanism,
                                                 roo, mp, opts);
            break;
          }
          case Policy::StaticTaper:
            taper = std::make_unique<StaticTaperManager>(
                net, cfg.mechanism);
            taper->apply();
            break;
        }
        if (mgr)
            mgr->start(0);

        // Latency observatory: passive like obs/audit (packets are
        // stamped either way; the switch only gates sketch recording),
        // so enabling it never changes simulated results. Set before
        // the hub so net.lat.* stats register when active.
        net.setLatencyObservatory(cfg.latencyObs);

        // Observability: all hooks are passive callbacks from existing
        // events, so an instrumented run is bit-identical to a bare one;
        // with nothing requested no hub is constructed at all.
        if (!cfg.obs.traceSpec.empty())
            obs::setTraceSpec(cfg.obs.traceSpec);
        std::unique_ptr<obs::ObsHub> hub;
        if (cfg.obs.active())
            hub = std::make_unique<obs::ObsHub>(cfg.obs, net, mgr.get());

        // Runtime invariant auditor (src/audit): passive like obs, so
        // an audited run stays bit-identical to a bare one. Debug
        // builds always audit; Release opts in via cfg.audit or
        // MEMNET_AUDIT.
        std::unique_ptr<audit::Auditor> auditor;
        if (audit::enabledFor(cfg.audit)) {
            auditor = std::make_unique<audit::Auditor>(net);
            auditor->setProcessor(&proc);
            auditor->attach(mgr.get());
        }

        proc.start(0);

        build.close();
        const auto wall_start = std::chrono::steady_clock::now();
        const Tick measure = effectiveMeasure(cfg);
        {
            MEMNET_PROF_SCOPE("sim/warmup");
            eq.runUntil(cfg.warmup);
        }
        net.resetStats();
        proc.resetStats();
        if (hub)
            hub->onMeasureStart(eq.now());
        if (auditor)
            auditor->onMeasureStart(eq.now());
        const Tick end = cfg.warmup + measure;
        {
            MEMNET_PROF_SCOPE("sim/measure");
            eq.runUntil(end);
        }
        if (auditor)
            auditor->finalCheck(eq.now());
        const double wall_secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall_start)
                .count();

        RunResult r;
        {
            MEMNET_PROF_SCOPE("sim/collect");
            r = collect(eq, net, proc, mgr.get(), injector.get(),
                        measure);
        }
        r.profile.eventsFired = eq.fired();
        r.profile.eventsScheduled = eq.scheduledTotal();
        r.profile.wallSeconds = wall_secs;
        r.profile.simSeconds = toSeconds(eq.now());
        r.profile.packetsIssued = proc.packetPool().acquired();
        r.profile.packetHeapAllocs = proc.packetPool().heapAllocated();
        r.profile.auditChecksRun = auditor ? auditor->checksRun() : 0;
        r.profile.eventsDescheduled = eq.descheduledTotal();
        r.profile.peakQueueDepth = eq.peakPending();
        r.profile.dispatchWindows = eq.dispatchWindows();
        r.profile.dispatchWindowPs = eq.dispatchWindowPs();
        if (hub)
            hub->finish(eq.now());
        // Close the capture last so the phase rows cover collect() and
        // the obs flush as well as the dispatch loops.
        r.profile.profPhases = capture.finish();
        return r;
    }

  private:
    /** Resolve the watchdog policy (see SystemConfig::watchdogTimeoutPs). */
    Tick
    watchdogTimeout() const
    {
        if (cfg.watchdogTimeoutPs > 0)
            return cfg.watchdogTimeoutPs;
        if (cfg.watchdogTimeoutPs == 0 && !cfg.faults.empty())
            return us(300);
        return 0;
    }

    RunResult
    collect(EventQueue &eq, Network &net, Processor &proc,
            PowerManager *mgr, const FaultInjector *injector,
            Tick measure)
    {
        RunResult r;
        r.config = cfg;
        r.numModules = net.numModules();
        const double secs = toSeconds(measure);

        const EnergyBreakdown e = net.collectEnergy(eq.now());
        const PowerBreakdown total = PowerBreakdown::fromEnergy(e, secs);
        r.totalNetworkPowerW = total.totalW();
        r.perHmc = total.scaled(1.0 / r.numModules);
        r.idleIoFrac = r.totalNetworkPowerW > 0
                           ? total.idleIoW / r.totalNetworkPowerW
                           : 0.0;

        r.completedReads = proc.completedReads();
        r.readsPerSec = static_cast<double>(r.completedReads) / secs;
        r.avgReadLatencyNs = proc.avgReadLatencyNs();
        r.avgModulesTraversed = net.avgModulesTraversed();
        r.violations = mgr ? mgr->violations() : 0;
        r.eventsFired = eq.fired();

        const double chan_req =
            net.requestLink(0).utilization(secs);
        const double chan_resp =
            net.responseLink(0).utilization(secs);
        r.channelUtil = 0.5 * (chan_req + chan_resp);

        double util_sum = 0.0;
        int links = 0;
        for (Link *l : net.allLinks()) {
            const double u = l->utilization(secs);
            util_sum += u;
            ++links;
            const int b = utilBucket(u);
            const LinkStats &ls = l->stats();
            r.reliability.retries += ls.retries;
            r.reliability.replays += ls.replays;
            r.reliability.retrains += ls.retrains;
            r.reliability.retrainSeconds += ls.retrainSeconds;
            r.reliability.degradedSeconds += ls.degradedSeconds;
            for (std::size_t k = 0; k < ls.modeSeconds.size(); ++k) {
                if (ls.modeSeconds[k] <= 0.0)
                    continue;
                r.linkHours[b][laneGroup(cfg.mechanism, k)] +=
                    ls.modeSeconds[k];
            }
        }
        r.avgLinkUtil = links ? util_sum / links : 0.0;
        if (injector)
            r.reliability.faultEvents = injector->stats().total();

        r.latency = net.latencySummary();

        const double link_full_w = net.powerModel().linkFullPowerW();
        for (int m = 0; m < net.numModules(); ++m) {
            const Module &mod = net.module(m);
            ModuleDetail d;
            d.id = m;
            d.highRadix = mod.radix() == Radix::High;
            d.hopDistance = net.topology().hopDistance(m);
            d.dramAccesses = mod.dramAccesses();
            d.flitsRouted = mod.flitsRouted();
            d.requestLinkUtil = net.requestLink(m).utilization(secs);
            d.responseLinkUtil = net.responseLink(m).utilization(secs);
            auto power_frac = [&](const Link &l) {
                const LinkStats &ls = l.stats();
                return secs > 0 ? (ls.idleIoJ + ls.activeIoJ) /
                                      (link_full_w * secs)
                                : 1.0;
            };
            d.requestLinkPowerFrac = power_frac(net.requestLink(m));
            d.responseLinkPowerFrac = power_frac(net.responseLink(m));
            r.modules.push_back(d);
        }
        return r;
    }

    SystemConfig cfg;
};

Simulator::Simulator(const SystemConfig &cfg)
    : impl(std::make_unique<SimulatorImpl>(cfg))
{
}

Simulator::~Simulator() = default;

RunResult
Simulator::run()
{
    return impl->run();
}

RunResult
runSimulation(const SystemConfig &cfg)
{
    return Simulator(cfg).run();
}

} // namespace memnet
