#include "memnet/simulator.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>

#include "audit/audit.hh"
#include "dram/dram_params.hh"
#include "mgmt/aware.hh"
#include "mgmt/manager.hh"
#include "mgmt/static_taper.hh"
#include "net/boundary.hh"
#include "net/network.hh"
#include "obs/debug_trace.hh"
#include "obs/obs.hh"
#include "sim/event_queue.hh"
#include "sim/log.hh"
#include "sim/partition.hh"
#include "workload/processor.hh"

namespace memnet
{

const char *
sizeClassName(SizeClass s)
{
    return s == SizeClass::Small ? "small" : "big";
}

const char *
policyName(Policy p)
{
    switch (p) {
      case Policy::FullPower:
        return "FP";
      case Policy::Unaware:
        return "unaware";
      case Policy::Aware:
        return "aware";
      case Policy::StaticTaper:
        return "static";
    }
    return "?";
}

const char *const kUtilBucketNames[kUtilBuckets] = {
    "0-1%", "1-5%", "5-10%", "10-20%", "20-100%"};

std::string
SystemConfig::describe() const
{
    std::ostringstream os;
    os << workload << "/" << topologyName(topology) << "/"
       << sizeClassName(sizeClass) << "/" << policyName(policy);
    return os.str();
}

namespace
{

/** Utilization bucket index for Figure 13. */
int
utilBucket(double u)
{
    if (u < 0.01)
        return 0;
    if (u < 0.05)
        return 1;
    if (u < 0.10)
        return 2;
    if (u < 0.20)
        return 3;
    return 4;
}

/** Map a bandwidth-mode index to the 16/8/4/1-lane reporting group. */
int
laneGroup(BwMechanism mech, std::size_t mode_idx)
{
    // VWL modes map directly; DVFS modes are grouped by their closest
    // bandwidth equivalent; mechanism None is always "16 lanes".
    if (mech == BwMechanism::None)
        return 0;
    return static_cast<int>(std::min<std::size_t>(mode_idx, 3));
}

} // namespace

Tick
effectiveMeasure(const SystemConfig &cfg)
{
    if (const char *env = std::getenv("MEMNET_SIM_US")) {
        const long v = std::atol(env);
        if (v > 0)
            return us(v);
    }
    return cfg.measure;
}

class SimulatorImpl
{
  public:
    explicit SimulatorImpl(const SystemConfig &cfg) : cfg(cfg) {}

    RunResult
    run()
    {
        // Per-run profiler capture: attributes every phase recorded on
        // this thread between here and the end of run() to this
        // RunResult, which stays correct when Runner reuses a thread
        // or ParallelRunner runs several sims concurrently.
        prof::ScopedCapture capture("sim/run");
        // The construction phase can't sit in its own block (everything
        // built here outlives it), so the scope is closed by hand right
        // before the warmup dispatch.
        prof::Scope build{"sim/build"};

        const WorkloadProfile &profile = workloadByName(cfg.workload);
        const int n = profile.modulesFor(cfg.chunkBytes());

        Topology topo = Topology::build(cfg.topology, n);
        topo.validate();

        DramParams dram;
        RooConfig roo;
        roo.enabled = cfg.roo;
        roo.wakeupPs = cfg.rooWakeupPs;

        AddressMap amap;
        amap.chunkBytes = cfg.chunkBytes();
        amap.interleavePages = cfg.interleavePages;
        amap.modules = n;

        HmcPowerModel pm(cfg.ioAttribution);
        LinkErrorModel errors;
        errors.flitErrorRate = cfg.linkFlitErrorRate;

        // Partitioned kernel (sim/partition.hh): the processor runs on
        // partition 0 and the channel network on partition 1, coupled
        // through the host-interface boundary (net/boundary.hh). A
        // single-channel run has exactly one channel to offload, so any
        // cfg.partitions > 1 behaves as 2. Serial runs alias both
        // queue names onto the one queue.
        const bool partitioned = cfg.partitions > 1;
        EventQueue procEq;
        std::unique_ptr<EventQueue> chanEqOwned;
        if (partitioned)
            chanEqOwned = std::make_unique<EventQueue>();
        EventQueue &netEq = partitioned ? *chanEqOwned : procEq;

        Network net(netEq, topo, dram, cfg.mechanism, roo, pm, amap,
                    errors);

        // Requests cross the host-interface SERDES FIFO before the
        // channel root (net/boundary.hh). The port is not a Network,
        // so the processor can't self-wire the response path — attach
        // the host explicitly. Partitioned runs route through the
        // boundary twin (HostOutbox) instead.
        std::unique_ptr<PartitionRunner> runner;
        std::unique_ptr<PartitionedChannel> chan;
        std::unique_ptr<HostPort> hostIf;
        TrafficTarget *target = nullptr;
        if (partitioned) {
            std::vector<Tick> look(4, 0);
            look[0 * 2 + 1] = PartitionedChannel::kHostLookaheadPs;
            look[1 * 2 + 0] = PartitionedChannel::kChannelLookaheadPs;
            runner = std::make_unique<PartitionRunner>(
                std::vector<EventQueue *>{&procEq, &netEq},
                std::move(look),
                [&chan](int dst, BoundaryMessage &m) {
                    if (dst == 0)
                        chan->applyAtHost(m);
                    else
                        chan->applyAtChannel(m);
                },
                cfg.partitionSync, cfg.laxWindowPs);
            chan = std::make_unique<PartitionedChannel>(
                procEq, net, 0, 1, runner->mail());
            target = &chan->outbox();
        } else {
            hostIf = std::make_unique<HostPort>(procEq, net);
            target = hostIf.get();
        }

        ProcessorParams pp;
        pp.cores = cfg.cores;
        pp.maxReadsPerCore = cfg.maxReadsPerCore;
        pp.maxWritesPerCore = cfg.maxWritesPerCore;
        pp.seed = cfg.seed;
        pp.watchdogTimeoutPs = watchdogTimeout();
        Processor proc(procEq, *target, profile, pp);
        net.setHost(&proc);

        // Fault injection: only constructed for a non-empty plan so a
        // default config's event stream is bit-identical to the
        // pre-fault-model simulator. Faults degrade links, so the
        // injector lives on the channel partition.
        std::unique_ptr<FaultInjector> injector;
        if (!cfg.faults.empty()) {
            injector = std::make_unique<FaultInjector>(
                netEq, net, cfg.faults, cfg.seed);
            injector->start(0);
        }

        std::unique_ptr<PowerManager> mgr;
        std::unique_ptr<StaticTaperManager> taper;
        ManagerParams mp;
        mp.alphaPct = cfg.alphaPct;
        mp.epochLen = cfg.epochLen;
        switch (cfg.policy) {
          case Policy::FullPower:
            break;
          case Policy::Unaware:
            mgr = std::make_unique<UnawareManager>(net, cfg.mechanism,
                                                   roo, mp);
            break;
          case Policy::Aware: {
            AwareOptions opts;
            opts.ispIterations = cfg.aware.ispIterations;
            opts.congestionDiscount = cfg.aware.congestionDiscount;
            opts.wakeCoordination = cfg.aware.wakeCoordination;
            opts.grantPool = cfg.aware.grantPool;
            mgr = std::make_unique<AwareManager>(net, cfg.mechanism,
                                                 roo, mp, opts);
            break;
          }
          case Policy::StaticTaper:
            taper = std::make_unique<StaticTaperManager>(
                net, cfg.mechanism);
            taper->apply();
            break;
        }
        if (mgr)
            mgr->start(0);

        // Latency observatory: passive like obs/audit (packets are
        // stamped either way; the switch only gates sketch recording),
        // so enabling it never changes simulated results. Set before
        // the hub so net.lat.* stats register when active.
        net.setLatencyObservatory(cfg.latencyObs);

        // Energy observatory: same contract — the attribution counters
        // are the energy ledger itself, always stamped; the switch only
        // materializes congestion sketches and gates the summaries.
        net.setEnergyObservatory(cfg.energyObs);

        // Observability: all hooks are passive callbacks from existing
        // events, so an instrumented run is bit-identical to a bare one;
        // with nothing requested no hub is constructed at all.
        if (!cfg.obs.traceSpec.empty())
            obs::setTraceSpec(cfg.obs.traceSpec);
        std::unique_ptr<obs::ObsHub> hub;
        if (cfg.obs.active()) {
            std::vector<EventQueue *> obsQueues;
            if (partitioned)
                obsQueues = {&procEq, &netEq};
            hub = std::make_unique<obs::ObsHub>(cfg.obs, net, mgr.get(),
                                                std::move(obsQueues));
        }

        // Runtime invariant auditor (src/audit): passive like obs, so
        // an audited run stays bit-identical to a bare one. Debug
        // builds always audit; Release opts in via cfg.audit or
        // MEMNET_AUDIT.
        std::unique_ptr<audit::Auditor> auditor;
        if (audit::enabledFor(cfg.audit)) {
            auditor = std::make_unique<audit::Auditor>(net);
            // The packet census reads processor state from the channel
            // partition's epoch events. Under Barrier sync those fire
            // during merged tick-steps — every worker parked, so the
            // read is race-free and deterministic. Lax windows offer no
            // such point, so the census is skipped there.
            if (!partitioned ||
                cfg.partitionSync == PartitionSync::Barrier)
                auditor->setProcessor(&proc);
            auditor->attach(mgr.get());
        }

        proc.start(0);

        build.close();
        const auto wall_start = std::chrono::steady_clock::now();
        const Tick measure = effectiveMeasure(cfg);
        // Manager epochs read link stats and (audited) processor state;
        // aligning sync points on the epoch grid makes them fire in
        // merged tick-steps with every partition at the same tick.
        const Tick grid = mgr ? cfg.epochLen : 0;
        {
            MEMNET_PROF_SCOPE("sim/warmup");
            if (runner)
                runner->runUntil(cfg.warmup, grid);
            else
                procEq.runUntil(cfg.warmup);
        }
        net.resetStats();
        proc.resetStats();
        if (hub)
            hub->onMeasureStart(procEq.now());
        if (auditor)
            auditor->onMeasureStart(procEq.now());
        const Tick end = cfg.warmup + measure;
        {
            MEMNET_PROF_SCOPE("sim/measure");
            if (runner)
                runner->runUntil(end, grid);
            else
                procEq.runUntil(end);
        }
        if (auditor)
            auditor->finalCheck(procEq.now());
        const double wall_secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall_start)
                .count();

        RunResult r;
        {
            MEMNET_PROF_SCOPE("sim/collect");
            r = collect(procEq, net, proc, mgr.get(), injector.get(),
                        measure);
        }
        r.profile.eventsFired = procEq.fired();
        r.profile.eventsScheduled = procEq.scheduledTotal();
        r.profile.wallSeconds = wall_secs;
        r.profile.simSeconds = toSeconds(procEq.now());
        r.profile.packetsIssued = proc.packetPool().acquired();
        r.profile.packetHeapAllocs = proc.packetPool().heapAllocated();
        r.profile.auditChecksRun = auditor ? auditor->checksRun() : 0;
        r.profile.eventsDescheduled = procEq.descheduledTotal();
        r.profile.peakQueueDepth = procEq.peakPending();
        r.profile.dispatchWindows = procEq.dispatchWindows();
        r.profile.dispatchWindowPs = procEq.dispatchWindowPs();
        if (partitioned) {
            // The health counters aggregate across partition queues:
            // rates sum, the high-water mark takes the max, and the
            // dispatch-rate histogram sums elementwise.
            r.profile.eventsFired += netEq.fired();
            r.profile.eventsScheduled += netEq.scheduledTotal();
            r.profile.eventsDescheduled += netEq.descheduledTotal();
            r.profile.peakQueueDepth = std::max<std::uint64_t>(
                r.profile.peakQueueDepth, netEq.peakPending());
            const std::vector<std::uint64_t> &cw =
                netEq.dispatchWindows();
            if (cw.size() > r.profile.dispatchWindows.size())
                r.profile.dispatchWindows.resize(cw.size(), 0);
            for (std::size_t i = 0; i < cw.size(); ++i)
                r.profile.dispatchWindows[i] += cw[i];

            r.profile.partitions = runner->partitions();
            r.profile.laxSync =
                runner->syncMode() == PartitionSync::Lax;
            const std::vector<PartitionLaneStats> &ls =
                runner->laneStats();
            for (int p = 0; p < runner->partitions(); ++p) {
                const EventQueue &q = p == 0 ? procEq : netEq;
                PartitionLane lane;
                lane.eventsFired = q.fired();
                lane.eventsScheduled = q.scheduledTotal();
                lane.peakQueueDepth = q.peakPending();
                lane.windows = ls[p].windows;
                lane.barrierWaitNs = ls[p].barrierWaitNs;
                r.profile.partitionLanes.push_back(lane);
            }
        }
        r.eventsFired = r.profile.eventsFired;
        if (hub)
            hub->finish(procEq.now());
        // Close the capture last so the phase rows cover collect() and
        // the obs flush as well as the dispatch loops.
        r.profile.profPhases = capture.finish();
        return r;
    }

  private:
    /** Resolve the watchdog policy (see SystemConfig::watchdogTimeoutPs). */
    Tick
    watchdogTimeout() const
    {
        if (cfg.watchdogTimeoutPs > 0)
            return cfg.watchdogTimeoutPs;
        if (cfg.watchdogTimeoutPs == 0 && !cfg.faults.empty())
            return us(300);
        return 0;
    }

    RunResult
    collect(EventQueue &eq, Network &net, Processor &proc,
            PowerManager *mgr, const FaultInjector *injector,
            Tick measure)
    {
        RunResult r;
        r.config = cfg;
        r.numModules = net.numModules();
        const double secs = toSeconds(measure);

        const EnergyBreakdown e = net.collectEnergy(eq.now());
        const PowerBreakdown total = PowerBreakdown::fromEnergy(e, secs);
        r.totalNetworkPowerW = total.totalW();
        r.perHmc = total.scaled(1.0 / r.numModules);
        r.idleIoFrac = r.totalNetworkPowerW > 0
                           ? total.idleIoW / r.totalNetworkPowerW
                           : 0.0;

        r.completedReads = proc.completedReads();
        r.readsPerSec = static_cast<double>(r.completedReads) / secs;
        r.avgReadLatencyNs = proc.avgReadLatencyNs();
        r.avgModulesTraversed = net.avgModulesTraversed();
        r.violations = mgr ? mgr->violations() : 0;
        r.eventsFired = eq.fired();

        const double chan_req =
            net.requestLink(0).utilization(secs);
        const double chan_resp =
            net.responseLink(0).utilization(secs);
        r.channelUtil = 0.5 * (chan_req + chan_resp);

        double util_sum = 0.0;
        int links = 0;
        for (Link *l : net.allLinks()) {
            const double u = l->utilization(secs);
            util_sum += u;
            ++links;
            const int b = utilBucket(u);
            const LinkStats &ls = l->stats();
            r.reliability.retries += ls.retries;
            r.reliability.replays += ls.replays;
            r.reliability.retrains += ls.retrains;
            r.reliability.retrainSeconds += ls.retrainSeconds;
            r.reliability.degradedSeconds += ls.degradedSeconds;
            for (std::size_t k = 0; k < ls.modeSeconds.size(); ++k) {
                if (ls.modeSeconds[k] <= 0.0)
                    continue;
                r.linkHours[b][laneGroup(cfg.mechanism, k)] +=
                    ls.modeSeconds[k];
            }
        }
        r.avgLinkUtil = links ? util_sum / links : 0.0;
        if (injector)
            r.reliability.faultEvents = injector->stats().total();

        r.latency = net.latencySummary();
        r.energy = net.energySummary(eq.now());

        const double link_full_w = net.powerModel().linkFullPowerW();
        for (int m = 0; m < net.numModules(); ++m) {
            const Module &mod = net.module(m);
            ModuleDetail d;
            d.id = m;
            d.highRadix = mod.radix() == Radix::High;
            d.hopDistance = net.topology().hopDistance(m);
            d.dramAccesses = mod.dramAccesses();
            d.flitsRouted = mod.flitsRouted();
            d.requestLinkUtil = net.requestLink(m).utilization(secs);
            d.responseLinkUtil = net.responseLink(m).utilization(secs);
            auto power_frac = [&](const Link &l) {
                const LinkStats &ls = l.stats();
                return secs > 0 ? (ls.idleIoJ() + ls.activeIoJ()) /
                                      (link_full_w * secs)
                                : 1.0;
            };
            d.requestLinkPowerFrac = power_frac(net.requestLink(m));
            d.responseLinkPowerFrac = power_frac(net.responseLink(m));
            r.modules.push_back(d);
        }
        return r;
    }

    SystemConfig cfg;
};

Simulator::Simulator(const SystemConfig &cfg)
    : impl(std::make_unique<SimulatorImpl>(cfg))
{
}

Simulator::~Simulator() = default;

RunResult
Simulator::run()
{
    return impl->run();
}

RunResult
runSimulation(const SystemConfig &cfg)
{
    return Simulator(cfg).run();
}

} // namespace memnet
