/**
 * @file
 * Simulator: builds a full system from a SystemConfig, runs it, and
 * returns a RunResult. This is the primary public API of the library.
 *
 * Typical use:
 * @code
 *   memnet::SystemConfig cfg;
 *   cfg.topology = memnet::TopologyKind::Star;
 *   cfg.workload = "mixB";
 *   cfg.mechanism = memnet::BwMechanism::Vwl;
 *   cfg.policy = memnet::Policy::Aware;
 *   memnet::RunResult r = memnet::Simulator(cfg).run();
 * @endcode
 */

#ifndef MEMNET_MEMNET_SIMULATOR_HH
#define MEMNET_MEMNET_SIMULATOR_HH

#include <memory>

#include "memnet/config.hh"

namespace memnet
{

class SimulatorImpl;

class Simulator
{
  public:
    explicit Simulator(const SystemConfig &cfg);
    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Run warmup + measurement and collect results. */
    RunResult run();

  private:
    std::unique_ptr<SimulatorImpl> impl;
};

/** Convenience: construct, run, destroy. */
RunResult runSimulation(const SystemConfig &cfg);

/**
 * The measurement window a run will actually simulate: cfg.measure,
 * unless the MEMNET_SIM_US environment variable overrides it (the CI
 * knob for shortening every window). Shared by the single-network
 * simulator and runMultiChannel so their windows always agree.
 */
Tick effectiveMeasure(const SystemConfig &cfg);

} // namespace memnet

#endif // MEMNET_MEMNET_SIMULATOR_HH
