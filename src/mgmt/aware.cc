#include "mgmt/aware.hh"

#include <algorithm>

#include "obs/debug_trace.hh"
#include "obs/prof.hh"
#include "sim/log.hh"

namespace memnet
{

AwareManager::AwareManager(Network &net, BwMechanism mech,
                           const RooConfig &roo,
                           const ManagerParams &params,
                           const AwareOptions &opts)
    : PowerManager(net, mech, roo, params), opts(opts)
{
}

// ---------------------------------------------------------------------
// Response-link wakeup coordination (Section VI-B)
// ---------------------------------------------------------------------

bool
AwareManager::maySleep(Link &l, Tick now)
{
    if (!roo.enabled || !opts.wakeCoordination ||
        l.type() == LinkType::Request) {
        return true;
    }
    // A response link may only turn off when its module's DRAM is not
    // being read and every immediate downstream response link is off.
    const int m = l.module();
    if (net.module(m).dramReadsInFlight())
        return false;
    for (int c : net.topology().children(m)) {
        if (net.responseLink(c).power().rooState() != RooState::Off)
            return false;
    }
    return true;
}

void
AwareManager::onWakeBegin(Link &l, Tick now)
{
    if (!roo.enabled || !opts.wakeCoordination ||
        l.type() != LinkType::Response) {
        return;
    }
    // Chain the wakeup upstream: the parent's response link starts
    // waking one router + SERDES + transmission interval later, so it
    // is on exactly when the first forwarded response can reach it.
    const int parent = net.topology().parent(l.module());
    if (parent < 0)
        return;
    const Tick interval = LinkTiming::kRouterPs +
                          l.power().serdes(now) +
                          flitsFor(PacketType::ReadResp) *
                              l.power().flitTime(now);
    Link *up = &net.responseLink(parent);
    eq.schedule(now + interval, [up] { up->wakeNow(); });
}

void
AwareManager::onSleep(Link &l, Tick now)
{
    if (!roo.enabled || !opts.wakeCoordination ||
        l.type() != LinkType::Response) {
        return;
    }
    const int parent = net.topology().parent(l.module());
    if (parent >= 0)
        net.responseLink(parent).noteSleepOpportunity();
}

void
AwareManager::onDramIdle(Module &m, Tick now)
{
    if (roo.enabled && opts.wakeCoordination)
        net.responseLink(m.id()).noteSleepOpportunity();
}

// ---------------------------------------------------------------------
// ISP (Section VI-A)
// ---------------------------------------------------------------------

bool
AwareManager::eligibleSrc(const LinkMgmtState &s) const
{
    // With hidden response wakeups, ROO-only networks treat only
    // request links as slowdown-receiving candidates.
    if (roo.enabled && opts.wakeCoordination &&
        mech == BwMechanism::None) {
        return s.link().type() == LinkType::Request;
    }
    return true;
}

double
AwareManager::gatherOverhead(int m) const
{
    double below = 0.0;
    for (int c : net.topology().children(m))
        below += gatherOverhead(c);
    // Overhead below a congested response link is (partly) free: had
    // the packets not been delayed downstream, they would only have
    // queued longer here (Section VI-C).
    const LinkMgmtState &rs = *states[numModules + m];
    const double discount =
        opts.congestionDiscount
            ? std::min(below * rs.lastQf, rs.lastQdPs)
            : 0.0;
    const double own = mods[m].aelPs - mods[m].felPs;
    return own + below - discount;
}

void
AwareManager::computeDsrc(LinkType t)
{
    // Children have larger ids than parents in every builder, so a
    // reverse sweep is a valid post-order.
    for (int m = numModules - 1; m >= 0; --m) {
        int count = 0;
        for (int c : net.topology().children(m)) {
            const LinkMgmtState &cs =
                t == LinkType::Request ? *states[c]
                                       : *states[numModules + c];
            count += cs.dsrc + (cs.isSrc ? 1 : 0);
        }
        state(t, m).dsrc = count;
    }
}

void
AwareManager::scatterVisit(LinkType t, int m, double pcs)
{
    LinkMgmtState &s = state(t, m);
    if (s.isSrc) {
        const double pcs_in = pcs;
        s.amsPs += pcs_in;
        const bool bw_only = bwOnlyFor(s);
        const Combo sel = s.bestCombo(s.amsPs, bw_only);
        const double f = s.flo(sel);
        const double leftover = s.amsPs - f;
        s.selected = sel;
        s.amsPs = f;
        if (s.dsrc > 0)
            pcs = pcs_in + leftover / s.dsrc;
        else
            s.stashPs += leftover;

        // Candidate again next iteration if a cheaper mode exists and
        // the per-candidate flow could plausibly reach its FLO.
        Combo lower;
        if (s.nextLowerPower(sel, &lower, bw_only)) {
            s.isSrcNext =
                pcs_in + s.amsPs >= kSrcFloFraction * s.flo(lower);
        } else {
            s.isSrcNext = false;
        }
    }
    for (int c : net.topology().children(m))
        scatterVisit(t, c, pcs);
}

double
AwareManager::gatherUnused(LinkType t)
{
    // Bottom-up: enforce that an upstream link runs at an equal or
    // higher power mode than each downstream link of the same type,
    // releasing the FLO difference as unused AMS.
    for (int m = numModules - 1; m >= 0; --m) {
        LinkMgmtState &s = state(t, m);
        Combo want = s.selected;
        for (int c : net.topology().children(m)) {
            const Combo &cc = state(t, c).selected;
            want.bw = std::min(want.bw, cc.bw);   // lower idx = more BW
            want.roo = std::max(want.roo, cc.roo); // higher idx = later off
        }
        // A degraded upstream link cannot widen past its surviving
        // lanes, however wide its children run.
        want.bw = std::max(want.bw, s.minUsableBw());
        if (!(want == s.selected)) {
            const double released = s.flo(s.selected) - s.flo(want);
            s.stashPs += std::max(0.0, released);
            s.selected = want;
            s.amsPs = s.flo(want);
        }
    }
    double total = 0.0;
    for (int m = 0; m < numModules; ++m) {
        LinkMgmtState &s = state(t, m);
        total += s.stashPs;
        s.stashPs = 0.0;
    }
    return total;
}

void
AwareManager::redistribute(Tick)
{
    // Network-level Equation 1 with the congestion discount applied
    // while gathering the overhead sum to the head module.
    double fel_sum = 0.0;
    for (int m = 0; m < numModules; ++m)
        fel_sum += mods[m].felPs;
    cumFelNetPs += fel_sum;
    cumOverNetPs += gatherOverhead(0);

    double unused = std::max(
        0.0, params.alphaPct / 100.0 * cumFelNetPs - cumOverNetPs);

    for (auto &sp : states) {
        LinkMgmtState &s = *sp;
        s.isSrc = eligibleSrc(s);
        s.isSrcNext = false;
        s.selected = s.fullCombo();
        s.amsPs = 0.0;
        s.stashPs = 0.0;
        s.dsrc = 0;
    }

    lastIspRounds_ = 0;
    for (int iter = 0; iter < opts.ispIterations && unused > 0.0;
         ++iter) {
        MEMNET_PROF_SCOPE("mgmt/isp_round");
        ++lastIspRounds_;
        ++ispRounds_;
        MEMNET_TRACE_V(ISP, 2, "iteration ", iter, ": unused AMS ",
                       unused, " ps");
        computeDsrc(LinkType::Request);
        computeDsrc(LinkType::Response);

        int n_req = 0, n_resp = 0;
        for (int m = 0; m < numModules; ++m) {
            n_req += states[m]->isSrc ? 1 : 0;
            n_resp += states[numModules + m]->isSrc ? 1 : 0;
        }
        if (n_req + n_resp == 0)
            break;

        // Per-candidate slowdown: ROO networks weight request links
        // (whose wakeups cannot be hidden) more heavily.
        double pool_req, pool_resp;
        if (roo.enabled && opts.wakeCoordination &&
            mech == BwMechanism::None) {
            pool_req = unused;
            pool_resp = 0.0;
        } else if (roo.enabled && opts.wakeCoordination) {
            pool_req = n_req ? kRequestPoolShare * unused : 0.0;
            pool_resp = n_resp ? unused - pool_req : 0.0;
        } else {
            const double per = unused / (n_req + n_resp);
            pool_req = per * n_req;
            pool_resp = per * n_resp;
        }
        double undistributed = unused - pool_req - pool_resp;

        if (n_req > 0)
            scatterVisit(LinkType::Request, 0, pool_req / n_req);
        else
            undistributed += pool_req;
        if (n_resp > 0)
            scatterVisit(LinkType::Response, 0, pool_resp / n_resp);
        else
            undistributed += pool_resp;

        for (auto &sp : states) {
            sp->isSrc = sp->isSrcNext;
            sp->isSrcNext = false;
        }

        unused = gatherUnused(LinkType::Request) +
                 gatherUnused(LinkType::Response) + undistributed;
    }

    // Whatever is left backs mid-epoch AMS-request grants.
    grantPoolPs = unused;
    grantUnitPs = unused * kGrantFraction;
    MEMNET_TRACE(ISP, lastIspRounds_, " rounds, grant pool ",
                 grantPoolPs, " ps");
}

void
AwareManager::handleViolation(LinkMgmtState &s, Tick now)
{
    // Request leftover AMS from the head module before giving up
    // (Section VI-A3); each grant is 1/16th of the original pool and a
    // link may be served at most four times per epoch.
    while (s.overheadPs() > s.amsPs) {
        if (opts.grantPool && s.grantsUsed < kMaxGrants &&
            grantPoolPs > 0.0) {
            const double g = std::min(grantUnitPs, grantPoolPs);
            grantPoolPs -= g;
            s.amsPs += g;
            ++s.grantsUsed;
        } else {
            ++nViolations;
            s.forcedFullPower = true;
            MEMNET_TRACE(Mgmt, "link ", s.link().id(),
                         " AMS violation at ", now,
                         " (grant pool exhausted)");
            s.link().forceFullPower();
            notifyViolation(s, now);
            return;
        }
    }
}

void
AwareManager::applySelections(Tick)
{
    for (auto &sp : states) {
        LinkMgmtState &s = *sp;
        std::size_t roo_idx = s.selected.roo;
        if (bwOnlyFor(s)) {
            // Wakeups of response links are fully hidden by the
            // coordination above, so they always use the most
            // aggressive idleness threshold.
            roo_idx = 0;
        }
        s.link().applyModes(s.selected.bw, roo_idx);
    }
}

} // namespace memnet
