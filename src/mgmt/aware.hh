/**
 * @file
 * Network-aware power management (Section VI).
 *
 * Builds on the epoch machinery of PowerManager and adds:
 *
 *  - Iterative Slowdown Propagation (ISP): a distributed scatter/gather
 *    message-passing algorithm (capped at three iterations) that
 *    redistributes the *network-level* AMS so that an upstream link
 *    always runs at an equal-or-higher power mode than its downstream
 *    links of the same type (Section VI-A). Unused AMS left at the head
 *    module after the last iteration backs mid-epoch AMS-request grants
 *    instead of immediate full-power violations (Section VI-A3).
 *  - Response-link wakeup coordination: a response link turns on when
 *    its module's DRAM is being read or when an immediate downstream
 *    response link started waking (plus the downstream link's router +
 *    SERDES + transmission interval), and only turns off when neither
 *    holds — so response wakeup latency is fully hidden and response
 *    links are not slowdown-receiving candidates for ROO (Section VI-B).
 *  - Congestion credit: latency accumulated below a congested upstream
 *    response link is discounted from the network overhead sum using
 *    the link's queuing-delay (QD) and queued-fraction (QF) counters
 *    (Section VI-C).
 */

#ifndef MEMNET_MGMT_AWARE_HH
#define MEMNET_MGMT_AWARE_HH

#include "mgmt/manager.hh"

namespace memnet
{

/** Ablation switches (all on for the paper's scheme). */
struct AwareOptions
{
    int ispIterations = 3;
    bool congestionDiscount = true;
    bool wakeCoordination = true;
    bool grantPool = true;
};

class AwareManager : public PowerManager
{
  public:
    AwareManager(Network &net, BwMechanism mech, const RooConfig &roo,
                 const ManagerParams &params,
                 const AwareOptions &opts = {});

    // -- LinkObserver / ModuleObserver overrides --------------------------

    bool maySleep(Link &l, Tick now) override;
    void onWakeBegin(Link &l, Tick now) override;
    void onSleep(Link &l, Tick now) override;
    void onDramIdle(Module &m, Tick now) override;

    /** Leftover AMS available for mid-epoch grants (tests). */
    double grantPool() const { return grantPoolPs; }

    // -- Observability accessors (src/obs) ---------------------------------

    int lastIspRounds() const override { return lastIspRounds_; }
    std::uint64_t ispRoundsTotal() const override { return ispRounds_; }
    double grantPoolRemaining() const override { return grantPoolPs; }

  protected:
    void redistribute(Tick now) override;
    void handleViolation(LinkMgmtState &s, Tick now) override;
    void applySelections(Tick now) override;

  private:
    /** SRC eligibility floor: 25% of the next mode's FLO. */
    static constexpr double kSrcFloFraction = 0.25;
    /** Fraction of the pool granted per AMS request. */
    static constexpr double kGrantFraction = 1.0 / 16.0;
    /** Maximum grants per link per epoch. */
    static constexpr int kMaxGrants = 4;
    /** Pool share given to request links when ROO is combined. */
    static constexpr double kRequestPoolShare = 0.75;

    const AwareOptions opts;

    LinkMgmtState &
    state(LinkType t, int m)
    {
        return t == LinkType::Request ? *states[m]
                                      : *states[numModules + m];
    }

    /** Response links with hidden wakeups choose bandwidth modes only. */
    bool
    bwOnlyFor(const LinkMgmtState &s) const
    {
        return roo.enabled && opts.wakeCoordination &&
               s.link().type() == LinkType::Response;
    }

    bool eligibleSrc(const LinkMgmtState &s) const;

    /** Discounted subtree overhead (Section VI-C), bottom-up. */
    double gatherOverhead(int m) const;

    /** Fill every link's downstream-SRC count for one type. */
    void computeDsrc(LinkType t);

    /** One scatter pass down one link type. */
    void scatterVisit(LinkType t, int m, double pcs);

    /** Monotonicity enforcement + stash collection; returns unused. */
    double gatherUnused(LinkType t);

    double cumFelNetPs = 0.0;
    double cumOverNetPs = 0.0;
    double grantPoolPs = 0.0;
    double grantUnitPs = 0.0;
    /** ISP iterations executed at the last epoch / in total. */
    int lastIspRounds_ = 0;
    std::uint64_t ispRounds_ = 0;
};

} // namespace memnet

#endif // MEMNET_MGMT_AWARE_HH
