/**
 * @file
 * Per-link-mode delay monitor (adapted from Ahn et al. [20]).
 *
 * For every candidate bandwidth mode of a link, a virtual single-server
 * queue replays the link's actual read-packet arrivals at that mode's
 * serialization speed and SERDES latency, accumulating the aggregate
 * latency the packets *would* have experienced. The difference between
 * a mode's accumulated latency and the full-power monitor's is the
 * mode's Future Latency Overhead (FLO) estimate (Section V-B).
 */

#ifndef MEMNET_MGMT_DELAY_MONITOR_HH
#define MEMNET_MGMT_DELAY_MONITOR_HH

#include <algorithm>
#include <cstdint>

#include "linkpm/modes.hh"
#include "sim/types.hh"

namespace memnet
{

class DelayMonitor
{
  public:
    DelayMonitor() = default;

    /**
     * Configure for one operating point.
     *
     * A virtual backlog extending past @p now was serialized at the old
     * flit time; left untouched, a horizon built at a slow mode would
     * keep penalizing FLO estimates long after the monitor models a
     * faster operating point (and vice versa). The pending portion is
     * rebased: the queued flits are re-serialized at the new speed.
     *
     * @param flit_ps serialization time per flit at this mode.
     * @param fixed_ps per-packet fixed latency (SERDES + router).
     * @param now current tick (backlog before it is already history).
     */
    void
    configure(Tick flit_ps, Tick fixed_ps, Tick now = 0)
    {
        if (vFree > now && flitPs > 0 && flit_ps != flitPs) {
            const double ratio = static_cast<double>(flit_ps) /
                                 static_cast<double>(flitPs);
            vFree = now +
                    static_cast<Tick>(
                        static_cast<double>(vFree - now) * ratio + 0.5);
        }
        flitPs = flit_ps;
        fixedPs = fixed_ps;
    }

    /** Replay one read-packet arrival. */
    void
    arrival(Tick now, int flits)
    {
        const Tick start = std::max(now, vFree);
        const Tick tx_done = start + static_cast<Tick>(flits) * flitPs;
        vFree = tx_done;
        agg += static_cast<double>(tx_done + fixedPs - now);
        ++n;
    }

    /** Aggregate virtual latency (ps) accumulated this epoch. */
    double aggregateLatencyPs() const { return agg; }

    std::uint64_t packets() const { return n; }

    /** Virtual backlog completion horizon (for queued-packet checks). */
    Tick virtualFree() const { return vFree; }

    void
    resetEpoch()
    {
        agg = 0.0;
        n = 0;
        // vFree persists: a backlog straddling the epoch boundary keeps
        // delaying packets, exactly as the hardware counter would.
    }

  private:
    Tick flitPs = LinkTiming::kFullFlitPs;
    Tick fixedPs = LinkTiming::kSerdesPs + LinkTiming::kRouterPs;
    Tick vFree = 0;
    double agg = 0.0;
    std::uint64_t n = 0;
};

} // namespace memnet

#endif // MEMNET_MGMT_DELAY_MONITOR_HH
