/**
 * @file
 * Idle-interval histogram for ROO latency prediction (RAMZzz-style,
 * adapted from Wu et al. [21]; Section V-B of the paper).
 *
 * One bucket per ROO idleness threshold. At the end of each link idle
 * interval the bucket of the largest threshold not exceeding the
 * interval is incremented (and the interval length accumulated, so the
 * expected off-time of each mode can also be predicted). The predicted
 * wakeup count of ROO mode r is the number of intervals at least as
 * long as threshold r.
 */

#ifndef MEMNET_MGMT_IDLE_HISTOGRAM_HH
#define MEMNET_MGMT_IDLE_HISTOGRAM_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/log.hh"
#include "sim/types.hh"

namespace memnet
{

class IdleHistogram
{
  public:
    explicit IdleHistogram(std::vector<Tick> thresholds)
        : thresholds_(std::move(thresholds)),
          counts(thresholds_.size(), 0),
          lengthSums(thresholds_.size(), 0)
    {
    }

    /** Record a completed idle interval of the given length. */
    void
    interval(Tick len)
    {
        // Find the largest threshold <= len; shorter intervals would not
        // have triggered any ROO mode and are not recorded.
        int best = -1;
        for (std::size_t i = 0; i < thresholds_.size(); ++i)
            if (len >= thresholds_[i])
                best = static_cast<int>(i);
        if (best < 0)
            return;
        ++counts[best];
        lengthSums[best] += len;
    }

    /** Predicted wakeups for ROO mode r: intervals >= threshold r. */
    std::uint64_t
    wakeups(std::size_t r) const
    {
        std::uint64_t w = 0;
        for (std::size_t i = r; i < counts.size(); ++i)
            w += counts[i];
        return w;
    }

    /**
     * Predicted time spent off under ROO mode r: for every interval at
     * least threshold r long, the link would sleep after the threshold
     * elapsed.
     */
    Tick
    offTime(std::size_t r) const
    {
        Tick t = 0;
        for (std::size_t i = r; i < counts.size(); ++i) {
            t += lengthSums[i] -
                 static_cast<Tick>(counts[i]) * thresholds_[r];
        }
        return t < 0 ? 0 : t;
    }

    void
    resetEpoch()
    {
        std::fill(counts.begin(), counts.end(), 0);
        std::fill(lengthSums.begin(), lengthSums.end(), 0);
    }

    std::size_t modes() const { return thresholds_.size(); }

  private:
    std::vector<Tick> thresholds_;
    std::vector<std::uint64_t> counts;
    std::vector<Tick> lengthSums;
};

} // namespace memnet

#endif // MEMNET_MGMT_IDLE_HISTOGRAM_HH
