#include "mgmt/link_state.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace memnet
{

LinkMgmtState::LinkMgmtState(Link &link, const ModeTable &table,
                             const RooConfig &roo)
    : link_(link),
      table_(table),
      roo_(roo),
      histogram(roo.enabled ? roo.thresholdsPs : std::vector<Tick>{})
{
    monitors.resize(table_.size());
    configureMonitors();
    floBw.assign(table_.size(), 0.0);
    floRoo.assign(rooModes(), 0.0);
    offFrac.assign(rooModes(), 0.0);
    rebuildOrder();
}

void
LinkMgmtState::configureMonitors(Tick now)
{
    for (std::size_t k = 0; k < table_.size(); ++k) {
        const LinkMode &m = table_.mode(k);
        // A mode wider than the surviving lanes serializes at the
        // degraded rate; monitor index 0 thereby estimates the
        // *achievable* full-power latency of the degraded link.
        const double bw_mult =
            m.lanes <= laneClamp_
                ? 1.0
                : static_cast<double>(laneClamp_) / m.lanes;
        const Tick flit = static_cast<Tick>(
            static_cast<double>(LinkTiming::kFullFlitPs) /
                (m.bwFrac * bw_mult) +
            0.5);
        monitors[k].configure(flit, m.serdesPs + LinkTiming::kRouterPs,
                              now);
    }
}

void
LinkMgmtState::setLaneClamp(int lanes, Tick now)
{
    if (lanes >= laneClamp_)
        return;
    laneClamp_ = lanes;
    minUsableBw_ = 0;
    for (std::size_t k = 0; k < table_.size(); ++k) {
        minUsableBw_ = k;
        if (table_.mode(k).lanes <= laneClamp_)
            break;
    }
    configureMonitors(now);
    rebuildOrder();
    // A previous selection may now be out of range; snap it up.
    selected.bw = std::max(selected.bw, minUsableBw_);
}

void
LinkMgmtState::onReadArrival(Tick now, int flits)
{
    // Congestion bookkeeping against the full-power virtual queue.
    while (!fpBacklog.empty() && fpBacklog.front() <= now)
        fpBacklog.pop_front();
    const Tick fp_wait = monitors[0].virtualFree() > now
                             ? monitors[0].virtualFree() - now
                             : 0;
    if (fpBacklog.size() >= 3) {
        ++queuedReads;
        queueDelayPs += static_cast<double>(fp_wait);
    }

    for (DelayMonitor &m : monitors)
        m.arrival(now, flits);
    fpBacklog.push_back(monitors[0].virtualFree());

    // Wakeup arrival sampler (Section V-B): every 16th read opens a
    // window one wakeup latency long; later arrivals inside it count.
    if (sampleWindowEnd >= now) {
        ++sampleArrivals;
    } else if (nReads % kSamplePeriod == 0) {
        sampleWindowEnd = now + roo_.wakeupPs;
        ++sampleWindows;
    }
    ++nReads;
}

void
LinkMgmtState::onReadDeparture(Tick arrival, Tick now)
{
    actualPs += static_cast<double>(now - arrival);
}

void
LinkMgmtState::onIdleInterval(Tick len)
{
    if (roo_.enabled)
        histogram.interval(len);
}

void
LinkMgmtState::epochEnd(Tick epoch_len)
{
    lastEpochLen = epoch_len;

    const double full = monitors[0].aggregateLatencyPs();
    for (std::size_t k = 0; k < table_.size(); ++k) {
        floBw[k] =
            std::max(0.0, monitors[k].aggregateLatencyPs() - full);
    }

    if (roo_.enabled) {
        const double avg_arrivals =
            sampleWindows
                ? static_cast<double>(sampleArrivals) /
                      static_cast<double>(sampleWindows)
                : 0.0;
        // Average latency overhead per wakeup: the wake latency itself
        // plus the wake latency inflicted on each read that arrives
        // while waking; request links additionally account for the
        // amplified response-link queue they can create (Section V-B).
        double per_wake =
            static_cast<double>(roo_.wakeupPs) * (1.0 + avg_arrivals);
        if (link_.type() == LinkType::Request) {
            per_wake +=
                static_cast<double>(roo_.wakeupPs) * avg_arrivals;
        }
        const std::uint64_t base_wakeups =
            histogram.wakeups(roo_.fullModeIndex());
        for (std::size_t r = 0; r < rooModes(); ++r) {
            const std::uint64_t extra =
                histogram.wakeups(r) - base_wakeups;
            floRoo[r] = static_cast<double>(extra) * per_wake;
            offFrac[r] =
                std::min(1.0, static_cast<double>(histogram.offTime(r)) /
                                  static_cast<double>(epoch_len));
        }
    }

    rebuildOrder();

    lastQdPs = queueDelayPs;
    lastQf = queuedFraction();

    // Stash the ending epoch's values for the epoch recorder, which
    // observes epoch boundaries after this reset has happened.
    lastEpochReads = nReads;
    lastActualPs = actualPs;
    lastFullPowerPs = monitors[0].aggregateLatencyPs();
    lastGrantsUsed = grantsUsed;
    lastForcedFullPower = forcedFullPower;

    // Reset the in-epoch counters (running sums live in the manager).
    for (DelayMonitor &m : monitors)
        m.resetEpoch();
    histogram.resetEpoch();
    actualPs = 0.0;
    nReads = 0;
    sampleWindowEnd = -1;
    sampleWindows = 0;
    sampleArrivals = 0;
    queueDelayPs = 0.0;
    queuedReads = 0;
    forcedFullPower = false;
    grantsUsed = 0;
}

double
LinkMgmtState::flo(const Combo &c) const
{
    double f = floBw[c.bw];
    if (roo_.enabled)
        f += floRoo[c.roo];
    return f;
}

double
LinkMgmtState::deratedPowerFrac(std::size_t bw) const
{
    const LinkMode &m = table_.mode(bw);
    if (m.lanes <= laneClamp_)
        return m.powerFrac;
    // Dead lanes stop toggling; the I/O clock stays on ((l+1)/(L+1)).
    return m.powerFrac * static_cast<double>(laneClamp_ + 1) /
           (m.lanes + 1);
}

double
LinkMgmtState::predictedPowerFrac(const Combo &c) const
{
    const double on = deratedPowerFrac(c.bw);
    if (!roo_.enabled)
        return on;
    const double off = offFrac[c.roo];
    return on * (1.0 - off) + roo_.offPowerFrac * off;
}

void
LinkMgmtState::rebuildOrder()
{
    ordered.clear();
    for (std::size_t b = 0; b < bwModes(); ++b)
        for (std::size_t r = 0; r < rooModes(); ++r)
            ordered.push_back(Combo{b, r});
    std::stable_sort(ordered.begin(), ordered.end(),
                     [this](const Combo &a, const Combo &b) {
                         return predictedPowerFrac(a) <
                                predictedPowerFrac(b);
                     });
}

Combo
LinkMgmtState::bestCombo(double ams_ps, bool bw_only) const
{
    const std::size_t full_roo = fullCombo().roo;
    for (const Combo &c : ordered) {
        if (!usable(c))
            continue;
        if (bw_only && c.roo != full_roo)
            continue;
        if (flo(c) <= ams_ps)
            return c;
    }
    return fullCombo();
}

bool
LinkMgmtState::nextLowerPower(const Combo &c, Combo *out,
                              bool bw_only) const
{
    // "Next lower power" = the next-cheaper combo in predicted power.
    const std::size_t full_roo = fullCombo().roo;
    const Combo *prev = nullptr;
    for (const Combo &o : ordered) {
        if (!usable(o))
            continue;
        if (bw_only && o.roo != full_roo)
            continue;
        if (o == c) {
            if (!prev)
                return false;
            *out = *prev;
            return true;
        }
        prev = &o;
    }
    return false;
}

} // namespace memnet
