/**
 * @file
 * Per-link management hardware state: the counters of Section V.
 *
 * Holds, for one unidirectional link:
 *  - the actual aggregate read-packet latency counter (AEL link part);
 *  - one delay monitor per candidate bandwidth mode (index 0 doubles as
 *    the full-power estimator used for FEL);
 *  - the idle-interval histogram and the wakeup arrival sampler for ROO
 *    FLO prediction;
 *  - queuing statistics (QD/QF) used by network-aware management on
 *    response links (Section VI-C);
 *  - the epoch's allowable-memory-slowdown budget and violation state.
 */

#ifndef MEMNET_MGMT_LINK_STATE_HH
#define MEMNET_MGMT_LINK_STATE_HH

#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "linkpm/modes.hh"
#include "mgmt/delay_monitor.hh"
#include "mgmt/idle_histogram.hh"
#include "net/link.hh"
#include "sim/types.hh"

namespace memnet
{

/** A joint (bandwidth mode, ROO mode) operating point. */
struct Combo
{
    std::size_t bw = 0;
    std::size_t roo = 0;

    bool
    operator==(const Combo &o) const
    {
        return bw == o.bw && roo == o.roo;
    }
};

class LinkMgmtState
{
  public:
    LinkMgmtState(Link &link, const ModeTable &table,
                  const RooConfig &roo);

    Link &link() { return link_; }
    const Link &link() const { return link_; }

    // -- In-epoch observation hooks ------------------------------------

    void onReadArrival(Tick now, int flits);
    void onReadDeparture(Tick arrival, Tick now);
    void onIdleInterval(Tick len);

    /**
     * The link's usable width permanently dropped (fault model). Marks
     * modes wider than the surviving lanes unselectable, re-derives the
     * per-mode delay monitors at the derated serialization speeds (so
     * FEL/FLO estimates track the achievable — degraded — full power
     * instead of a baseline the hardware can no longer reach), and
     * re-sorts the combo order by the derated powers. Each monitor's
     * pending virtual backlog is rebased to its new serialization
     * speed at @p now (see DelayMonitor::configure).
     */
    void setLaneClamp(int lanes, Tick now = 0);

    /** Widest selectable bandwidth-mode index under the clamp. */
    std::size_t minUsableBw() const { return minUsableBw_; }

    /** Actual aggregate read latency so far this epoch (ps). */
    double actualLatencyPs() const { return actualPs; }

    /** Estimated full-power aggregate latency so far this epoch (ps). */
    double fullPowerLatencyPs() const { return monitors[0].aggregateLatencyPs(); }

    /** Current latency overhead vs. full power (ps, may be negative). */
    double
    overheadPs() const
    {
        return actualPs - fullPowerLatencyPs();
    }

    std::uint64_t readPackets() const { return nReads; }

    // -- Epoch-boundary computation --------------------------------------

    /**
     * Snapshot the epoch's FLO table and reset the in-epoch counters.
     * @param epoch_len epoch duration (for off-time fractions).
     */
    void epochEnd(Tick epoch_len);

    /** FLO of a combo, from the last epochEnd() snapshot (ps). */
    double flo(const Combo &c) const;

    /** Predicted average power fraction of a combo over an epoch. */
    double predictedPowerFrac(const Combo &c) const;

    /** Number of bandwidth modes / ROO modes available. */
    std::size_t bwModes() const { return table_.size(); }
    std::size_t rooModes() const
    {
        return roo_.enabled ? roo_.thresholdsPs.size() : 1;
    }

    /** All combos ordered by ascending predicted power. */
    const std::vector<Combo> &combosByPower() const { return ordered; }

    /**
     * Cheapest combo whose FLO fits within @p ams_ps; falls back to the
     * full-power combo (whose FLO is zero by construction).
     * @param bw_only restrict to combos whose ROO mode is the full one
     *        (used for response links whose wakeups are hidden by
     *        network-aware coordination).
     */
    Combo bestCombo(double ams_ps, bool bw_only = false) const;

    /** Next combo below @p c in predicted power order (less power). */
    bool nextLowerPower(const Combo &c, Combo *out,
                        bool bw_only = false) const;

    /** Full-power combo (the widest surviving mode when degraded). */
    Combo
    fullCombo() const
    {
        return Combo{minUsableBw_,
                     roo_.enabled ? roo_.fullModeIndex() : 0};
    }

    // -- AMS / violation bookkeeping ------------------------------------

    double amsPs = 0.0;            ///< budget for the current epoch
    bool forcedFullPower = false;  ///< violation tripped this epoch
    int grantsUsed = 0;            ///< aware: AMS requests granted

    // -- ISP working state (network-aware) --------------------------------

    bool isSrc = false;
    bool isSrcNext = false;
    int dsrc = 0;
    double stashPs = 0.0;
    Combo selected{};

    /** Congestion statistics snapshotted at the last epochEnd(). */
    double lastQdPs = 0.0;
    double lastQf = 0.0;

    /**
     * In-epoch values of the epoch that just ended, stashed by
     * epochEnd() before it resets the live counters. The epoch recorder
     * (src/obs) reads these from its end-of-epoch callback, which runs
     * after the reset.
     */
    std::uint64_t lastEpochReads = 0;
    double lastActualPs = 0.0;
    double lastFullPowerPs = 0.0;
    int lastGrantsUsed = 0;
    bool lastForcedFullPower = false;

    // -- Congestion statistics (response links, Section VI-C) ------------

    double queueDelayPs = 0.0;   ///< QD
    std::uint64_t queuedReads = 0;

    double
    queuedFraction() const
    {
        return nReads ? static_cast<double>(queuedReads) /
                            static_cast<double>(nReads)
                      : 0.0;
    }

  private:
    Link &link_;
    const ModeTable &table_;
    const RooConfig &roo_;

    /** Usable width cap mirrored from the link (fault model). */
    int laneClamp_ = 16;
    std::size_t minUsableBw_ = 0;

    std::vector<DelayMonitor> monitors;
    IdleHistogram histogram;

    // Wakeup arrival sampler: every 16th read opens a window one wakeup
    // latency long; arrivals inside the window are counted.
    static constexpr std::uint64_t kSamplePeriod = 16;
    Tick sampleWindowEnd = -1;
    std::uint64_t sampleWindows = 0;
    std::uint64_t sampleArrivals = 0;

    double actualPs = 0.0;
    std::uint64_t nReads = 0;

    // FP virtual-queue completion times, to decide "queued" status.
    std::deque<Tick> fpBacklog;

    // Snapshots taken at epochEnd() for next-epoch decisions.
    std::vector<double> floBw;     ///< per bandwidth mode
    std::vector<double> floRoo;    ///< per ROO mode
    std::vector<double> offFrac;   ///< per ROO mode
    std::vector<Combo> ordered;    ///< combos by ascending power
    Tick lastEpochLen = us(100);

    void configureMonitors(Tick now = 0);
    /** Mode power fraction including the lane-clamp derate. */
    double deratedPowerFrac(std::size_t bw) const;
    bool usable(const Combo &c) const { return c.bw >= minUsableBw_; }

    void rebuildOrder();
};

} // namespace memnet

#endif // MEMNET_MGMT_LINK_STATE_HH
