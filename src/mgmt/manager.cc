#include "mgmt/manager.hh"

#include <algorithm>

#include "dram/dram_params.hh"
#include "obs/debug_trace.hh"
#include "obs/prof.hh"
#include "sim/log.hh"

namespace memnet
{

PowerManager::PowerManager(Network &net, BwMechanism mech,
                           const RooConfig &roo,
                           const ManagerParams &params)
    : net(net),
      eq(net.eventQueue()),
      mech(mech),
      roo(roo),
      params(params),
      numModules(net.numModules())
{
    mods.resize(numModules);
    const ModeTable &table = ModeTable::forMechanism(mech);
    for (Link *l : net.allLinks()) {
        memnet_assert(static_cast<std::size_t>(l->id()) == states.size(),
                      "link id mismatch");
        states.push_back(
            std::make_unique<LinkMgmtState>(*l, table, roo));
    }
    dramReadLatencyPs = DramParams{}.readAccessLatency();
}

PowerManager::~PowerManager() = default;

void
PowerManager::start(Tick at)
{
    net.setObservers(this, this);
    for (int m = 0; m < numModules; ++m)
        mods[m].lastDramReads = net.module(m).dramReadsServiced();
    eq.schedule(&epochEvent, at + params.epochLen);
}

void
PowerManager::onEnqueue(Link &l, Packet &pkt, Tick now)
{
    if (isReadPacket(pkt.type))
        stateOf(l).onReadArrival(now, pkt.flits);
}

void
PowerManager::onDepart(Link &l, Packet &pkt, Tick now)
{
    if (!isReadPacket(pkt.type))
        return;
    LinkMgmtState &s = stateOf(l);
    s.onReadDeparture(pkt.linkArrival, now);
    if (!s.forcedFullPower && s.overheadPs() > s.amsPs)
        handleViolation(s, now);
}

void
PowerManager::onIdleEnd(Link &l, Tick idle_start, Tick now)
{
    stateOf(l).onIdleInterval(now - idle_start);
}

void
PowerManager::onDegrade(Link &l, int lanes, Tick now)
{
    // Mirror the surviving-lane clamp into the management state so
    // mode selection, FEL estimation, and FLO tables all work against
    // the degraded link's real capabilities from this instant on.
    stateOf(l).setLaneClamp(lanes, now);
}

void
PowerManager::onDramRead(Module &m, Tick now)
{
    // Both schemes adapt Malladi et al. [22]: proactively wake the
    // module's response link while the DRAM array is being read, hiding
    // (most of) the wakeup latency behind the ~30 ns access.
    if (roo.enabled)
        net.responseLink(m.id()).wakeNow();
}

void
PowerManager::handleViolation(LinkMgmtState &s, Tick now)
{
    // Section V: on AMS violation, run at full power until epoch end.
    ++nViolations;
    s.forcedFullPower = true;
    MEMNET_TRACE(Mgmt, "link ", s.link().id(), " AMS violation at ",
                 now, ", forced to full power");
    s.link().forceFullPower();
    notifyViolation(s, now);
}

void
PowerManager::applySelections(Tick now)
{
    for (auto &s : states)
        s->link().applyModes(s->selected.bw, s->selected.roo);
}

void
PowerManager::epochTick()
{
    MEMNET_PROF_SCOPE("mgmt/epoch");
    const Tick now = eq.now();

    // 1. Per-module FEL/AEL for the epoch that just ended (Section V-A):
    //    DRAM read count times the 30 ns array latency, plus the actual
    //    and estimated-full-power latencies of the connectivity links.
    for (int m = 0; m < numModules; ++m) {
        ModuleState &ms = mods[m];
        const std::uint64_t reads = net.module(m).dramReadsServiced();
        const double dram_ps =
            static_cast<double>(reads - ms.lastDramReads) *
            static_cast<double>(dramReadLatencyPs);
        ms.lastDramReads = reads;

        const LinkMgmtState &rq = *states[m];
        const LinkMgmtState &rs = *states[numModules + m];
        ms.aelPs = dram_ps + rq.actualLatencyPs() + rs.actualLatencyPs();
        ms.felPs = dram_ps + rq.fullPowerLatencyPs() +
                   rs.fullPowerLatencyPs();
    }

    // 2. Snapshot per-link FLO tables and reset in-epoch counters.
    for (auto &s : states)
        s->epochEnd(params.epochLen);

    // 3. Policy: assign AMS and select combos.
    redistribute(now);

    // 4. Apply the selections.
    applySelections(now);

    ++nEpochs;
    MEMNET_TRACE_V(Mgmt, 2, "epoch ", nEpochs, " processed at ", now);
    notifyEpoch(now);
    eq.schedule(&epochEvent, now + params.epochLen);
}

// ---------------------------------------------------------------------
// Network-unaware management (Section V)
// ---------------------------------------------------------------------

void
UnawareManager::redistribute(Tick)
{
    for (int m = 0; m < numModules; ++m) {
        ModuleState &ms = mods[m];
        // Equation 1, applied per module with its own running sums.
        ms.cumFelPs += ms.felPs;
        ms.cumOverPs += ms.aelPs - ms.felPs;
        const double ams_m = std::max(
            0.0,
            params.alphaPct / 100.0 * ms.cumFelPs - ms.cumOverPs);

        // Each connectivity link gets an equal share.
        for (LinkMgmtState *s :
             {states[m].get(), states[numModules + m].get()}) {
            s->amsPs = ams_m / 2.0;
            s->selected = s->bestCombo(s->amsPs);
        }
    }
}

} // namespace memnet
