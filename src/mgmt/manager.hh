/**
 * @file
 * Epoch-based memory-network power management (Sections V and VI).
 *
 * PowerManager is the shared epoch machinery: it observes every link
 * and module through hardware-counter-equivalent state, computes the
 * per-epoch full-power (FEL) and actual (AEL) aggregate read latencies,
 * enforces the allowable-memory-slowdown (AMS) budget via violation
 * feedback, and applies the selected link power modes at epoch
 * boundaries. Concrete policies supply redistribute():
 *
 *  - UnawareManager (Section V): every module independently turns its
 *    own Equation-1 balance into AMS and splits it equally over its two
 *    connectivity links.
 *  - AwareManager (Section VI): Iterative Slowdown Propagation
 *    redistributes the network-level AMS so busier links never sit at
 *    lower power modes than less-busy ones, hides response-link wakeup
 *    latency behind DRAM accesses, and discounts latency hidden behind
 *    congested upstream response links.
 */

#ifndef MEMNET_MGMT_MANAGER_HH
#define MEMNET_MGMT_MANAGER_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "mgmt/link_state.hh"
#include "net/network.hh"
#include "sim/event_queue.hh"

namespace memnet
{

/** Shared manager tunables. */
struct ManagerParams
{
    /** AMS factor in percent (the paper evaluates 2.5 and 5). */
    double alphaPct = 5.0;
    Tick epochLen = us(100);
};

class PowerManager;

/**
 * Synchronous observer of epoch-boundary processing (src/obs epoch
 * recorder). Callbacks run from within the manager's own event
 * handlers; an observer must not schedule events or mutate simulation
 * state, so attaching one never changes simulation results.
 */
class EpochObserver
{
  public:
    virtual ~EpochObserver() = default;

    /** An epoch boundary was fully processed (selections applied). */
    virtual void onEpoch(PowerManager &pm, Tick now) = 0;

    /** An AMS violation forced @p s's link to full power. */
    virtual void onViolation(PowerManager &pm, LinkMgmtState &s,
                             Tick now)
    {
    }
};

class PowerManager : public LinkObserver, public ModuleObserver
{
  public:
    PowerManager(Network &net, BwMechanism mech, const RooConfig &roo,
                 const ManagerParams &params);
    ~PowerManager() override;

    /** Attach observers and schedule epoch processing from @p at. */
    void start(Tick at);

    // -- LinkObserver ------------------------------------------------------

    void onEnqueue(Link &l, Packet &pkt, Tick now) override;
    void onDepart(Link &l, Packet &pkt, Tick now) override;
    void onIdleEnd(Link &l, Tick idle_start, Tick now) override;
    void onDegrade(Link &l, int lanes, Tick now) override;

    // -- ModuleObserver ---------------------------------------------------

    void onDramRead(Module &m, Tick now) override;

    /** Total AMS violations seen (for tests/diagnostics). */
    std::uint64_t violations() const { return nViolations; }

    /** Epochs processed. */
    std::uint64_t epochs() const { return nEpochs; }

    LinkMgmtState &requestState(int m) { return *states[m]; }
    LinkMgmtState &responseState(int m)
    {
        return *states[numModules + m];
    }

    /**
     * Attach an epoch observer. Several may coexist (the obs hub and
     * the runtime auditor both listen); callbacks run in attach order.
     */
    void
    addEpochObserver(EpochObserver *o)
    {
        if (o)
            epochObservers.push_back(o);
    }

    /** Detach a previously attached epoch observer (no-op if absent). */
    void
    removeEpochObserver(EpochObserver *o)
    {
        epochObservers.erase(std::remove(epochObservers.begin(),
                                         epochObservers.end(), o),
                             epochObservers.end());
    }

    /** Modules under management. */
    int modules() const { return numModules; }

    /** Last epoch's full-power estimated latency for module @p m (ps). */
    double moduleFelPs(int m) const { return mods[m].felPs; }

    /** Last epoch's actual latency for module @p m (ps). */
    double moduleAelPs(int m) const { return mods[m].aelPs; }

    /** ISP iterations executed at the last epoch (aware policy only). */
    virtual int lastIspRounds() const { return 0; }

    /** ISP iterations executed across all epochs (aware policy only). */
    virtual std::uint64_t ispRoundsTotal() const { return 0; }

    /** AMS left in the mid-epoch grant pool (aware policy only). */
    virtual double grantPoolRemaining() const { return 0.0; }

  protected:
    /** Per-module Equation-1 bookkeeping. */
    struct ModuleState
    {
        std::uint64_t lastDramReads = 0;
        /** This epoch's values (filled at each boundary). */
        double felPs = 0.0;
        double aelPs = 0.0;
        /** Running sums over epochs. */
        double cumFelPs = 0.0;
        double cumOverPs = 0.0;
    };

    /**
     * Policy hook: assign states[i].amsPs and states[i].selected for
     * every link. Runs after FEL/AEL accounting and FLO snapshots.
     */
    virtual void redistribute(Tick now) = 0;

    /** Policy hook: a link exceeded its AMS mid-epoch. */
    virtual void handleViolation(LinkMgmtState &s, Tick now);

    /** Policy hook: push the selected combos into the links. */
    virtual void applySelections(Tick now);

    void epochTick();

    LinkMgmtState &stateOf(const Link &l) { return *states[l.id()]; }

    Network &net;
    EventQueue &eq;
    const BwMechanism mech;
    const RooConfig &roo;
    const ManagerParams params;
    const int numModules;

    std::vector<ModuleState> mods;
    /** Indexed by link id: request links 0..n-1, response n..2n-1. */
    std::vector<std::unique_ptr<LinkMgmtState>> states;

    Tick dramReadLatencyPs; ///< fixed 30 ns DRAM latency estimate

    /** Notify every attached observer of a processed epoch boundary. */
    void
    notifyEpoch(Tick now)
    {
        for (EpochObserver *o : epochObservers)
            o->onEpoch(*this, now);
    }

    /** Notify every attached observer of an AMS violation. */
    void
    notifyViolation(LinkMgmtState &s, Tick now)
    {
        for (EpochObserver *o : epochObservers)
            o->onViolation(*this, s, now);
    }

    std::uint64_t nViolations = 0;
    std::uint64_t nEpochs = 0;
    std::vector<EpochObserver *> epochObservers;

    MemberEvent<PowerManager, &PowerManager::epochTick> epochEvent{this};
};

/** Section V: adaptation of prior single-module management. */
class UnawareManager : public PowerManager
{
  public:
    using PowerManager::PowerManager;

  protected:
    void redistribute(Tick now) override;
};

} // namespace memnet

#endif // MEMNET_MGMT_MANAGER_HH
