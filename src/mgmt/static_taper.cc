#include "mgmt/static_taper.hh"

#include "sim/log.hh"

namespace memnet
{

StaticTaperManager::StaticTaperManager(Network &net, BwMechanism mech)
    : net(net), table(ModeTable::forMechanism(mech))
{
}

std::vector<double>
StaticTaperManager::taperFractions(const Topology &topo)
{
    // S(x): links whose downstream module sits at hop distance x; every
    // module has exactly one upstream full link, so S(x) is the number
    // of modules at depth x.
    const std::vector<int> s = topo.modulesPerHop();
    const double total = topo.numModules();

    std::vector<double> frac(s.size(), 1.0);
    double upstream = 0.0; // sum_{i<d} S(i)/T
    for (std::size_t d = 1; d < s.size(); ++d) {
        if (s[d] == 0)
            continue;
        frac[d] = (1.0 - upstream) / static_cast<double>(s[d]);
        upstream += static_cast<double>(s[d]) / total;
    }
    return frac;
}

void
StaticTaperManager::apply()
{
    const Topology &topo = net.topology();
    const std::vector<double> frac = taperFractions(topo);

    modes_.assign(frac.size(), 0);
    for (std::size_t d = 1; d < frac.size(); ++d) {
        // Round up to the nearest available bandwidth option: the
        // lowest-power mode whose bandwidth is still >= the fraction.
        std::size_t pick = 0;
        for (std::size_t k = 0; k < table.size(); ++k) {
            if (table.mode(k).bwFrac >= frac[d])
                pick = k;
        }
        modes_[d] = pick;
    }

    for (int m = 0; m < topo.numModules(); ++m) {
        const std::size_t k = modes_[topo.hopDistance(m)];
        net.requestLink(m).applyModes(k, 0);
        net.responseLink(m).applyModes(k, 0);
    }
}

} // namespace memnet
