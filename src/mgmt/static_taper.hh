/**
 * @file
 * Static fat/tapered-tree bandwidth selection (Section VII-A).
 *
 * With traffic spread evenly over the modules (page interleaving), link
 * bandwidth at hop distance d is statically set to
 *
 *     (1 - sum_{i<d} S(i)/T) / S(d)
 *
 * of maximum bandwidth, where S(x) is the number of links at hop
 * distance x and T the total number of links, rounded *up* to the
 * nearest available mode. No dynamics, no latency-overhead control —
 * this is the baseline the paper contrasts with network-aware
 * management at alpha = 30%.
 */

#ifndef MEMNET_MGMT_STATIC_TAPER_HH
#define MEMNET_MGMT_STATIC_TAPER_HH

#include <cstddef>
#include <vector>

#include "net/network.hh"

namespace memnet
{

class StaticTaperManager
{
  public:
    StaticTaperManager(Network &net, BwMechanism mech);

    /** Apply the static selection (call once before traffic starts). */
    void apply();

    /** Chosen bandwidth mode index per hop distance (for tests). */
    const std::vector<std::size_t> &modePerHop() const { return modes_; }

    /** The raw tapering fraction per hop distance (before rounding). */
    static std::vector<double> taperFractions(const Topology &topo);

  private:
    Network &net;
    const ModeTable &table;
    std::vector<std::size_t> modes_;
};

} // namespace memnet

#endif // MEMNET_MGMT_STATIC_TAPER_HH
