/**
 * @file
 * Boundary components between the processor and a channel network.
 *
 * HostPort models the processor-side host-interface SERDES: a FIFO
 * that delays every injected request by LinkTiming::kHostIfPs before
 * it reaches the channel root. It is part of the simulated machine —
 * serial runs go through it too — and it is what makes the
 * processor -> channel edge partitionable: in the partitioned kernel
 * (sim/partition.hh) the constant delay is the processor partition's
 * conservative lookahead, and the channel-side mirror of this FIFO
 * replays the same (push, due) sequence from handed-off messages so
 * deterministic mode stays bit-identical to the serial kernel.
 */

#ifndef MEMNET_NET_BOUNDARY_HH
#define MEMNET_NET_BOUNDARY_HH

#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "linkpm/modes.hh"
#include "net/network.hh"
#include "sim/event_queue.hh"
#include "sim/partition.hh"

namespace memnet
{

/**
 * The host-interface FIFO between the cores and one channel's root
 * link. Preserves injection order (the delay is constant) and
 * attributes the crossing time to the packet's serialization
 * component, so the latency observatory's decomposition identity
 * (dram = total - accounted) is unchanged.
 */
class HostPort : public TrafficTarget
{
  public:
    HostPort(EventQueue &eq, TrafficTarget &downstream)
        : eq(eq), down(downstream)
    {
    }

    void
    inject(Packet *pkt) override
    {
        const Tick due = eq.now() + LinkTiming::kHostIfPs;
        fifo.emplace_back(pkt, due);
        if (fifo.size() == 1)
            eq.schedule(&deliverEvent, due);
    }

  private:
    void
    onDeliver()
    {
        Packet *pkt = fifo.front().first;
        fifo.pop_front();
        pkt->latSerPs += LinkTiming::kHostIfPs;
        down.inject(pkt);
        if (!fifo.empty())
            eq.schedule(&deliverEvent, fifo.front().second);
    }

    EventQueue &eq;
    TrafficTarget &down;
    std::deque<std::pair<Packet *, Tick>> fifo;
    MemberEvent<HostPort, &HostPort::onDeliver> deliverEvent{this};
};

// ---------------------------------------------------------------------
// Partitioned-kernel boundary components (sim/partition.hh). One
// PartitionedChannel bundles everything one channel network needs to
// run on its own partition while staying bit-identical (in Barrier
// mode) to a serial run through HostPort + direct delivery:
//
//   processor -> channel   HostOutbox (p0): exact replica of the
//                          serial HostPort — same FIFO state machine,
//                          same pop event with the same natural keys —
//                          except the packet crosses as a mailbox
//                          message carrying the serial delivery key.
//                          RemoteInjectPipe (channel): replays the
//                          injection with that key.
//   channel -> processor   the root response link's LinkBoundary
//                          (net/link.hh) hands reads off at
//                          serialization end; IngressPipe (p0) replays
//                          the delivery tail (Network::completeRead)
//                          with the serial delivery key.
//   write retirement       vault forecasts promise a posted write's
//                          completion tick at service start;
//                          PromiseBuffer (p0) retires it with the
//                          burst event's exact key.
// ---------------------------------------------------------------------

/** Message kinds routed through the mailbox matrix. */
enum BoundaryKind : std::uint8_t
{
    kBoundaryInject = 0,   ///< request entering the channel
    kBoundaryResponse = 1, ///< read response reaching the processor
    kBoundaryRetire = 2,   ///< posted-write retirement promise
};

/**
 * Processor-side host-interface FIFO of a partitioned channel. The
 * serial HostPort's twin: inject() computes the same constant-delay
 * due tick and the same arm key its delivery event would have had
 * (arm-from-inject when the FIFO was empty, re-arm-from-the-previous-
 * delivery otherwise), sends the packet to the channel partition, and
 * keeps a local mirror FIFO popped by a real event so the empty/busy
 * state — and therefore every subsequent key — evolves exactly as the
 * serial FIFO's does, even under same-tick inject/deliver races.
 */
class HostOutbox : public TrafficTarget
{
  public:
    HostOutbox(EventQueue &eq, MailboxMatrix &mail, int channelRank,
               int channel)
        : eq(eq), mail(mail), rank(channelRank), channel(channel)
    {
    }

    void
    inject(Packet *pkt) override
    {
        const Tick due = eq.now() + LinkTiming::kHostIfPs;
        EventKey key;
        key.when = due;
        if (mirror.empty()) {
            key.sched = eq.now();
            key.parent = eq.currentParentSched();
            eq.schedule(&popEvent, due);
        } else {
            key.sched = mirror.back().due;
            key.parent = mirror.back().armSched;
        }
        mirror.push_back({due, key.sched});
        // The serial port attributes the crossing at delivery; nothing
        // touches the packet in between, so pre-stamp it here.
        pkt->latSerPs += LinkTiming::kHostIfPs;
        BoundaryMessage msg;
        msg.key = key;
        msg.payload = pkt;
        msg.channel = channel;
        msg.kind = kBoundaryInject;
        mail.send(0, rank, msg);
    }

  private:
    struct Entry
    {
        Tick due;
        Tick armSched;
    };

    void
    onPop()
    {
        mirror.pop_front();
        if (!mirror.empty())
            eq.schedule(&popEvent, mirror.front().due);
    }

    EventQueue &eq;
    MailboxMatrix &mail;
    const int rank;
    const int channel;
    std::deque<Entry> mirror;
    MemberEvent<HostOutbox, &HostOutbox::onPop> popEvent{this};
};

/**
 * Channel-side twin of the HostOutbox: applies handed-off requests by
 * replaying the serial HostPort delivery — network injection at the
 * due tick, scheduled with the sender-computed serial key on both the
 * initial arm and every re-arm.
 */
class RemoteInjectPipe
{
  public:
    explicit RemoteInjectPipe(Network &net)
        : eq(net.eventQueue()), net(net)
    {
    }

    /** Apply one kBoundaryInject message (called between windows). */
    void
    push(Packet *pkt, const EventKey &key)
    {
        fifo.push_back({pkt, key});
        if (fifo.size() == 1)
            eq.scheduleWithKey(&deliverEvent, key);
    }

  private:
    struct Entry
    {
        Packet *pkt;
        EventKey key;
    };

    void
    onDeliver()
    {
        Packet *pkt = fifo.front().pkt;
        fifo.pop_front();
        if (!fifo.empty())
            eq.scheduleWithKey(&deliverEvent, fifo.front().key);
        net.inject(pkt);
    }

    EventQueue &eq;
    Network &net;
    std::deque<Entry> fifo;
    MemberEvent<RemoteInjectPipe, &RemoteInjectPipe::onDeliver>
        deliverEvent{this};
};

/**
 * Processor-side twin of the root response link's SERDES/router pipe:
 * replays each handed-off read's delivery tail
 * (Network::completeRead — latency decomposition, packet-life trace,
 * host notification) at the due tick with the serial delivery key.
 */
class IngressPipe
{
  public:
    IngressPipe(EventQueue &eq, Network &net) : eq(eq), net(net) {}

    /** Apply one kBoundaryResponse message. */
    void
    push(Packet *pkt, const EventKey &key)
    {
        fifo.push_back({pkt, key});
        if (fifo.size() == 1)
            eq.scheduleWithKey(&deliverEvent, key);
    }

  private:
    struct Entry
    {
        Packet *pkt;
        EventKey key;
    };

    void
    onDeliver()
    {
        Packet *pkt = fifo.front().pkt;
        fifo.pop_front();
        if (!fifo.empty())
            eq.scheduleWithKey(&deliverEvent, fifo.front().key);
        net.completeRead(pkt, eq.now());
    }

    EventQueue &eq;
    Network &net;
    std::deque<Entry> fifo;
    MemberEvent<IngressPipe, &IngressPipe::onDeliver> deliverEvent{
        this};
};

/**
 * Processor-side landing zone for write promises: each retires one
 * posted write at its forecast completion tick with the burst event's
 * exact key. Events are pooled — a write-heavy phase recycles them
 * instead of allocating per promise.
 */
class PromiseBuffer
{
  public:
    PromiseBuffer(EventQueue &eq, Network &net) : eq(eq), net(net) {}

    /** Apply one kBoundaryRetire message. */
    void
    push(Packet *pkt, const EventKey &key)
    {
        RetireEvent *ev;
        if (free_.empty()) {
            storage_.push_back(std::make_unique<RetireEvent>(this));
            ev = storage_.back().get();
        } else {
            ev = free_.back();
            free_.pop_back();
        }
        ev->pkt = pkt;
        eq.scheduleWithKey(ev, key);
    }

  private:
    struct RetireEvent : Event
    {
        explicit RetireEvent(PromiseBuffer *o) : owner(o) {}

        void
        fire() override
        {
            Packet *p = pkt;
            pkt = nullptr;
            owner->free_.push_back(this);
            owner->net.host()->writeRetired(p, owner->eq.now());
        }

        PromiseBuffer *owner;
        Packet *pkt = nullptr;
    };

    EventQueue &eq;
    Network &net;
    std::vector<std::unique_ptr<RetireEvent>> storage_;
    std::vector<RetireEvent *> free_;
};

/**
 * All boundary plumbing for one channel network living on partition
 * @p channelRank, with the processor on partition 0. Construction
 * wires the network for handoff mode (root response link boundary,
 * write handoff, vault forecasts); the simulator routes the
 * processor's injections through outbox() and drained messages
 * through applyAtHost()/applyAtChannel().
 */
class PartitionedChannel : public LinkBoundary
{
  public:
    PartitionedChannel(EventQueue &hostEq, Network &net, int channel,
                       int channelRank, MailboxMatrix &mail)
        : net(net),
          mail(mail),
          channel_(channel),
          rank(channelRank),
          outbox_(hostEq, mail, channelRank, channel),
          ingress_(hostEq, net),
          promises_(hostEq, net),
          remoteInject_(net)
    {
        net.responseLink(0).setBoundary(this);
        net.setWriteHandoff(true);
        EventQueue &ceq = net.eventQueue();
        for (int m = 0; m < net.numModules(); ++m) {
            net.module(m).setVaultForecast(
                [this, &ceq](std::uint64_t tag, bool is_read,
                             Tick done) {
                    if (is_read)
                        return;
                    BoundaryMessage msg;
                    msg.key = EventKey{done, ceq.now(),
                                       ceq.currentParentSched(), 0};
                    msg.payload = reinterpret_cast<void *>(tag);
                    msg.channel = channel_;
                    msg.kind = kBoundaryRetire;
                    this->mail.send(rank, 0, msg);
                });
        }
    }

    /** Processor-side injection target for this channel. */
    TrafficTarget &outbox() { return outbox_; }

    // -- LinkBoundary (root response link, channel side) -------------------

    void
    handoff(Packet *pkt, const EventKey &key) override
    {
        BoundaryMessage msg;
        msg.key = key;
        msg.payload = pkt;
        msg.channel = channel_;
        msg.kind = kBoundaryResponse;
        mail.send(rank, 0, msg);
    }

    // -- Message application (PartitionRunner's ApplyFn) -------------------

    /** Apply a message addressed to the processor partition. */
    void
    applyAtHost(BoundaryMessage &msg)
    {
        Packet *pkt = static_cast<Packet *>(msg.payload);
        if (msg.kind == kBoundaryResponse)
            ingress_.push(pkt, msg.key);
        else
            promises_.push(pkt, msg.key);
    }

    /** Apply a message addressed to this channel's partition. */
    void
    applyAtChannel(BoundaryMessage &msg)
    {
        remoteInject_.push(static_cast<Packet *>(msg.payload),
                           msg.key);
    }

    /**
     * Conservative lookahead of the processor -> channel edge: every
     * injected request crosses the host-interface SERDES.
     */
    static constexpr Tick kHostLookaheadPs = LinkTiming::kHostIfPs;

    /**
     * Conservative lookahead of the channel -> processor edge:
     * response handoffs happen a full SERDES + router pipeline before
     * delivery (serdes() never drops below the full-power latency),
     * and write promises a whole DRAM burst ahead — longer still.
     */
    static constexpr Tick kChannelLookaheadPs =
        LinkTiming::kSerdesPs + LinkTiming::kRouterPs;

  private:
    Network &net;
    MailboxMatrix &mail;
    const int channel_;
    const int rank;
    HostOutbox outbox_;
    IngressPipe ingress_;
    PromiseBuffer promises_;
    RemoteInjectPipe remoteInject_;
};

} // namespace memnet

#endif // MEMNET_NET_BOUNDARY_HH
