#include "net/link.hh"

#include <algorithm>

#include "net/power_trace.hh"
#include "obs/debug_trace.hh"
#include "sim/log.hh"

namespace memnet
{

namespace
{

/** Observer used when none is attached. */
LinkObserver nullObserver;

} // namespace

Link::Link(EventQueue &eq, int id, LinkType type, int module,
           const ModeTable *table, const RooConfig *roo,
           double full_power_w, PacketSink *sink,
           const LinkErrorModel *errors)
    : eq(eq),
      id_(id),
      type_(type),
      module_(module),
      pstate(table, roo),
      fullPowerW(full_power_w),
      sink(sink),
      observer(&nullObserver),
      errors_(errors ? *errors : LinkErrorModel{}),
      errorRng(0x5eed5ULL + static_cast<std::uint64_t>(id),
               0x1234567ULL)
{
    idleStart = eq.now();
    lastAccrue = eq.now();
}

void
Link::setObserver(LinkObserver *obs)
{
    observer = obs ? obs : &nullObserver;
}

void
Link::accrue(Tick now)
{
    memnet_assert(now >= lastAccrue, "link accounting went backwards");
    if (now == lastAccrue)
        return;
    const double dt = toSeconds(now - lastAccrue);
    // State is constant over [lastAccrue, now): every state change calls
    // accrue() first, and a checkpoint event fires at transition ends.
    const double pf = pstate.powerFrac(lastAccrue);
    const double w = fullPowerW * pf;
    stats_.powerFracSeconds += pf * dt;
    if (busy) {
        stats_.txJ += w * dt;
    } else if (retraining_) {
        // Training sequences exercise the lanes at on-state power.
        stats_.retrainJ += w * dt;
        stats_.retrainSeconds += dt;
    } else if (pstate.rooState() == RooState::Off) {
        stats_.sleepJ += w * dt;
    } else if (pstate.rooState() == RooState::Waking) {
        stats_.wakeJ += w * dt;
    } else {
        stats_.idleFloorJ[pstate.modeIndex()] += w * dt;
    }
    if (pstate.degraded())
        stats_.degradedSeconds += dt;
    stats_.modeSeconds[pstate.modeIndex()] += dt;
    if (pstate.rooState() == RooState::Off)
        stats_.offSeconds += dt;
    lastAccrue = now;
}

void
Link::resetStats()
{
    accrue(eq.now());
    stats_ = LinkStats{};
}

void
Link::exitIdle(Tick now)
{
    if (!idle)
        return;
    observer->onIdleEnd(*this, idleStart, now);
    idle = false;
    if (sleepEvent.scheduled())
        eq.deschedule(&sleepEvent);
}

void
Link::stampWaitStart(Packet *pkt, Tick now)
{
    pkt->latWaitStart = now;
    pkt->latWakeRef = wakeStallAccum(now);
    pkt->latRetrainRef = retrainStallAccum(now);
}

void
Link::noteQueueDepth(Tick now)
{
    const std::uint64_t depth = queued();
    if (occSketch_)
        occSketch_->record(depth);
    if (depth > stats_.queuePeak) {
        stats_.queuePeak = depth;
        if (trace_)
            trace_->linkQueueDepth(*this, now, depth);
    }
}

void
Link::enqueue(Packet *pkt)
{
    const Tick now = eq.now();
    pkt->linkArrival = now;
    stampWaitStart(pkt, now);
    exitIdle(now);
    if (isReadPacket(pkt->type))
        readQ.push_back(pkt);
    else
        writeQ.push_back(pkt);
    noteQueueDepth(now);
    observer->onEnqueue(*this, *pkt, now);
    if (pstate.rooState() == RooState::Off)
        beginWakeInternal(now);
    tryStart();
}

void
Link::tryStart()
{
    if (busy || retraining_)
        return;
    const Tick now = eq.now();
    if (readQ.empty() && writeQ.empty()) {
        if (!idle) {
            idle = true;
            idleStart = now;
            armSleepTimer();
        }
        return;
    }
    if (pstate.rooState() != RooState::On)
        return; // wake in progress; onWakeDone() restarts us
    if (!readQ.empty()) {
        current = readQ.front();
        readQ.pop_front();
    } else {
        current = writeQ.front();
        writeQ.pop_front();
    }
    accrue(now);
    busy = true;

    // Latency observatory: the wait interval [latWaitStart, now) ends
    // here. The monotonic accumulator deltas say how much of it
    // overlapped a wake sequence / retrain window; both are clamped to
    // the wait (a retrain can run concurrently with a wake, and a
    // wake/retrain may predate the arrival), and the remainder is plain
    // queueing — which therefore also absorbs CRC-retry turnarounds and
    // aborted-serialization replays.
    const Tick waited = now - current->latWaitStart;
    Tick retrain_part = retrainStallAccum(now) - current->latRetrainRef;
    if (retrain_part > waited)
        retrain_part = waited;
    Tick wake_part = wakeStallAccum(now) - current->latWakeRef;
    if (wake_part > waited - retrain_part)
        wake_part = waited - retrain_part;
    current->latRetrainStallPs += retrain_part;
    current->latWakeStallPs += wake_part;
    current->latQueuePs += waited - wake_part - retrain_part;
    stats_.wakeStallSeconds += toSeconds(wake_part);
    stats_.retrainStallSeconds += toSeconds(retrain_part);
    // Re-open the wait in case this serialization aborts (CRC retry or
    // retrain replay re-admit the packet without passing enqueue()).
    stampWaitStart(current, now);
    current->latSerStart = now;

    if (trace_)
        txStart_ = now;
    const Tick tx_end = now + current->flits * pstate.flitTime(now);
    eq.schedule(&txDoneEvent, tx_end);
}

void
Link::onTxDone()
{
    const Tick now = eq.now();
    memnet_assert(busy && current, "txDone while idle");
    accrue(now);
    busy = false;

    stats_.flits += static_cast<std::uint64_t>(current->flits);
    if (trace_)
        trace_->linkTx(*this, txStart_, now, current->flits);

    // CRC check at the receiver: a corrupted packet is NAKed and
    // retransmitted from the retry buffer after the turnaround delay.
    const double fer = flitErrorRate();
    if (fer > 0.0) {
        double p_ok = 1.0;
        for (int f = 0; f < current->flits; ++f)
            p_ok *= 1.0 - fer;
        if (!errorRng.chance(p_ok)) {
            ++stats_.retries;
            if (trace_)
                trace_->linkRetry(*this, now);
            Packet *retry = current;
            current = nullptr;
            eq.schedule(now + errors_.retryDelayPs,
                        [this, retry] { admitRetry(retry); });
            return;
        }
    }

    ++stats_.packets;
    if (isReadPacket(current->type))
        ++stats_.readPackets;

    if (boundary_) {
        // Partition boundary: the packet leaves this partition now,
        // carrying the key its serial delivery event would have had,
        // and a shadow entry replays the departure locally at the
        // delivery tick. The SERDES + router latency is the receiving
        // partition's conservative lookahead on this edge — serdes()
        // never drops below the full-power latency, so the handoff is
        // always at least kSerdesPs + kRouterPs in the future.
        Tick deliver_at =
            now + pstate.serdes(now) + LinkTiming::kRouterPs;
        if (!shadow_.empty())
            deliver_at = std::max(deliver_at, shadow_.back().due);
        EventKey key;
        key.when = deliver_at;
        if (shadow_.empty()) {
            // Serially, an empty pipe schedules the delivery from
            // right here — inside this txDone firing.
            key.sched = now;
            key.parent = eq.currentParentSched();
        } else {
            // Serially, the delivery of the entry ahead re-arms the
            // pipe event from inside its own firing.
            key.sched = shadow_.back().due;
            key.parent = shadow_.back().armSched;
        }
        // Pre-stamp the serialization component the serial kernel adds
        // at delivery: nothing touches latSerStart or latSerPs while a
        // packet sits in the pipe, so the final value is identical.
        current->latSerPs += deliver_at - current->latSerStart;
        const bool was_empty = shadow_.empty();
        shadow_.push_back({current->type, current->linkArrival,
                           deliver_at, key.sched});
        boundary_->handoff(current, key);
        current = nullptr;
        if (was_empty)
            eq.schedule(&deliverEvent, deliver_at);
        tryStart();
        return;
    }

    // Last flit still crosses SERDES and the downstream router pipeline.
    Tick deliver_at = now + pstate.serdes(now) + LinkTiming::kRouterPs;
    if (!pipe.empty())
        deliver_at = std::max(deliver_at, pipe.back().second);
    const bool was_empty = pipe.empty();
    pipe.emplace_back(current, deliver_at);
    current = nullptr;
    if (was_empty)
        eq.schedule(&deliverEvent, deliver_at);

    tryStart();
}

void
Link::admitRetry(Packet *retry)
{
    // A retry lands like a (front-of-queue) arrival: the link may have
    // gone idle — or all the way into a sleep transition — during the
    // NAK turnaround, so the idle interval must be closed and an off
    // link must be woken, exactly as enqueue() does. (The observer's
    // onEnqueue is NOT replayed: the packet already counted once.)
    const Tick now = eq.now();
    exitIdle(now);
    if (isReadPacket(retry->type))
        readQ.push_front(retry);
    else
        writeQ.push_front(retry);
    noteQueueDepth(now);
    if (pstate.rooState() == RooState::Off)
        beginWakeInternal(now);
    tryStart();
}

void
Link::onDeliver()
{
    if (boundary_) {
        // Shadow replay of a handed-off packet's departure: the
        // manager's observer reads only the packet's type and link
        // arrival (onReadDeparture bookkeeping), both preserved in the
        // shadow entry, and the natural (re)arm keys of this event
        // match the serial pipe event's exactly, so every channel-side
        // effect lands in the serial order.
        memnet_assert(!shadow_.empty(), "delivery with empty pipe");
        const ShadowEntry e = shadow_.front();
        shadow_.pop_front();
        const Tick now = eq.now();
        Packet scratch;
        scratch.type = e.type;
        scratch.linkArrival = e.linkArrival;
        observer->onDepart(*this, scratch, now);
        if (!shadow_.empty())
            eq.schedule(&deliverEvent, shadow_.front().due);
        return;
    }

    memnet_assert(!pipe.empty(), "delivery with empty pipe");
    auto [pkt, at] = pipe.front();
    pipe.pop_front();
    const Tick now = eq.now();
    // Everything since serialization started — lane time, SERDES, the
    // router pipeline, and any pipe backpressure — is the hop's
    // serialization component.
    pkt->latSerPs += now - pkt->latSerStart;
    observer->onDepart(*this, *pkt, now);
    if (!pipe.empty())
        eq.schedule(&deliverEvent, pipe.front().second);
    sink->accept(pkt, now);
}

void
Link::armSleepTimer()
{
    if (!pstate.rooEnabled() || pstate.rooState() != RooState::On ||
        retraining_) {
        return;
    }
    eq.reschedule(&sleepEvent,
                  std::max(eq.now(), idleStart + pstate.idleThreshold()));
}

void
Link::onSleepTimer()
{
    const Tick now = eq.now();
    if (!idle || retraining_ || pstate.rooState() != RooState::On)
        return;
    if (now - idleStart < pstate.idleThreshold()) {
        // Threshold grew since arming; re-check at the right time.
        eq.reschedule(&sleepEvent, idleStart + pstate.idleThreshold());
        return;
    }
    if (!observer->maySleep(*this, now))
        return; // manager will call noteSleepOpportunity() later
    accrue(now);
    pstate.turnOff();
    if (trace_)
        sleepStart_ = now;
    MEMNET_TRACE(LinkPM, "link ", id_, " off at ", now, " after ",
                 now - idleStart, " ps idle");
    observer->onSleep(*this, now);
}

void
Link::noteSleepOpportunity()
{
    if (!idle || retraining_ || !pstate.rooEnabled() ||
        pstate.rooState() != RooState::On) {
        return;
    }
    const Tick due = idleStart + pstate.idleThreshold();
    eq.reschedule(&sleepEvent, std::max(eq.now(), due));
}

void
Link::beginWakeInternal(Tick now)
{
    memnet_assert(pstate.rooState() == RooState::Off, "wake while on");
    accrue(now);
    const Tick end = pstate.beginWake(now);
    wakeStart_ = now;
    if (trace_)
        trace_->linkOff(*this, sleepStart_, now);
    MEMNET_TRACE(LinkPM, "link ", id_, " wake at ", now, ", up at ", end);
    observer->onWakeBegin(*this, now);
    eq.schedule(&wakeEvent, end);
}

void
Link::wakeNow()
{
    if (pstate.rooState() == RooState::Off)
        beginWakeInternal(eq.now());
}

void
Link::onWakeDone()
{
    const Tick now = eq.now();
    pstate.finishWake();
    wakePsTotal_ += now - wakeStart_;
    if (trace_) {
        trace_->linkWake(*this, wakeStart_, now);
        trace_->linkStall(*this, now);
    }
    tryStart();
    if (readQ.empty() && writeQ.empty() && idle) {
        // Externally woken with nothing to send: restart the idle clock.
        idleStart = eq.now();
        armSleepTimer();
    }
}

void
Link::applyModes(std::size_t bw_idx, std::size_t roo_idx)
{
    const Tick now = eq.now();
    accrue(now);
    if (trace_ && (bw_idx != lastTraceBw_ || roo_idx != lastTraceRoo_)) {
        trace_->linkModeChange(*this, now, bw_idx, roo_idx);
        lastTraceBw_ = bw_idx;
        lastTraceRoo_ = roo_idx;
    }
    MEMNET_TRACE_V(LinkPM, 2, "link ", id_, " modes bw=", bw_idx,
                   " roo=", roo_idx, " at ", now);
    const Tick trans_end = pstate.setMode(now, bw_idx);
    if (trans_end > now)
        eq.reschedule(&checkpointEvent, trans_end);
    if (pstate.rooEnabled()) {
        pstate.setRooMode(roo_idx);
        if (idle && pstate.rooState() == RooState::On)
            armSleepTimer();
    }
}

void
Link::forceFullPower()
{
    // Full power is bandwidth mode 0; for ROO links it is the largest
    // idleness threshold (Section V-B). A degraded link's "full power"
    // is its widest surviving mode (setMode clamps).
    applyModes(0, pstate.rooEnabled() ? pstate.rooFullModeIndex() : 0);
}

// ---------------------------------------------------------------------
// Fault handling
// ---------------------------------------------------------------------

void
Link::beginRetrain(Tick window)
{
    memnet_assert(window > 0, "retrain window must be positive");
    const Tick now = eq.now();
    accrue(now);

    // Retraining is lane activity: close any idle interval so the ROO
    // histogram never sees a retrain window as exploitable idleness.
    exitIdle(now);

    // Abort the in-flight serialization; the packet is replayed from
    // the front of its queue once the link is back up. Packets already
    // past the link (SERDES/router pipe) continue to deliver.
    if (busy) {
        memnet_assert(current, "busy without a packet");
        eq.deschedule(&txDoneEvent);
        Packet *p = current;
        current = nullptr;
        busy = false;
        if (isReadPacket(p->type))
            readQ.push_front(p);
        else
            writeQ.push_front(p);
        ++stats_.replays;
        noteQueueDepth(now);
    }

    if (!retraining_) {
        retraining_ = true;
        ++stats_.retrains;
        retrainStart_ = now;
        MEMNET_TRACE(LinkPM, "link ", id_, " retrain begins at ", now);
        observer->onRetrainBegin(*this, now);
    }
    retrainEnd_ = std::max(retrainEnd_, now + window);
    eq.reschedule(&retrainEvent, retrainEnd_);

    // An off link trains on the way up: start the wake in parallel.
    if (pstate.rooState() == RooState::Off)
        beginWakeInternal(now);
}

void
Link::onRetrainDone()
{
    const Tick now = eq.now();
    memnet_assert(retraining_, "retrain end without retrain");
    accrue(now);
    retraining_ = false;
    retrainPsTotal_ += now - retrainStart_;
    if (trace_) {
        trace_->linkRetrain(*this, retrainStart_, now);
        trace_->linkStall(*this, now);
    }
    observer->onRetrainEnd(*this, now);
    // Resume service; with empty queues this restarts the idle clock.
    tryStart();
}

void
Link::setLaneLimit(int lanes)
{
    memnet_assert(lanes >= 1 && lanes <= LinkPowerState::kFullLanes,
                  "lane limit out of range: ", lanes);
    if (lanes >= pstate.laneClamp())
        return; // lanes never come back
    const Tick now = eq.now();
    accrue(now);
    pstate.setLaneClamp(lanes);
    if (trace_)
        trace_->linkDegrade(*this, now, lanes);
    MEMNET_TRACE(LinkPM, "link ", id_, " degraded to ", lanes,
                 " lanes at ", now);
    observer->onDegrade(*this, lanes, now);
}

} // namespace memnet
