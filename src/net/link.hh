/**
 * @file
 * One unidirectional memory-network link and its controller.
 *
 * The controller holds separate read/write queues (reads are prioritized,
 * Section III-B), serializes packets onto the lanes at the current
 * operating point, applies SERDES and downstream-router latency, and
 * delivers to a PacketSink. It owns the link's LinkPowerState and the
 * idle/active energy integration, and publishes every observable event
 * to a LinkObserver so the management hardware (src/mgmt) can maintain
 * its counters without any oracle access.
 */

#ifndef MEMNET_NET_LINK_HH
#define MEMNET_NET_LINK_HH

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "linkpm/link_power_state.hh"
#include "linkpm/modes.hh"
#include "net/packet.hh"
#include "obs/quantile_sketch.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace memnet
{

class Link;
class PowerTraceSink;

/** Anything that can receive delivered packets. */
class PacketSink
{
  public:
    virtual ~PacketSink() = default;
    virtual void accept(Packet *pkt, Tick now) = 0;
};

/**
 * Partition boundary of a link (sim/partition.hh). When one is
 * attached, a packet leaves this partition at serialization end
 * (onTxDone) instead of at delivery: handoff() receives the packet
 * together with the compound key the serial kernel's delivery event
 * would have carried, and the link keeps a shadow of its SERDES/router
 * pipe so local observers still see every departure at the exact
 * delivery tick. Only the root response link of a partitioned channel
 * ever has a boundary (net/boundary.hh).
 */
class LinkBoundary
{
  public:
    virtual ~LinkBoundary() = default;
    virtual void handoff(Packet *pkt, const EventKey &key) = 0;
};

/** Request links flow away from the processor; response links toward. */
enum class LinkType : std::uint8_t
{
    Request,
    Response,
};

/**
 * Observation interface for the management hardware. Default
 * implementation observes nothing and always allows sleep.
 */
class LinkObserver
{
  public:
    virtual ~LinkObserver() = default;

    /** A packet entered the link controller queue. */
    virtual void onEnqueue(Link &, Packet &, Tick) {}

    /** A packet's last flit left the link (pkt.linkArrival is valid). */
    virtual void onDepart(Link &, Packet &, Tick) {}

    /** An idle interval of the link just ended. */
    virtual void onIdleEnd(Link &, Tick idle_start, Tick now) {}

    /** May the link turn off now? (network-aware response gating) */
    virtual bool maySleep(Link &, Tick) { return true; }

    /** The link started its wakeup sequence. */
    virtual void onWakeBegin(Link &, Tick) {}

    /** The link turned off. */
    virtual void onSleep(Link &, Tick) {}

    /** The link's usable width permanently dropped to @p lanes. */
    virtual void onDegrade(Link &, int lanes, Tick) {}

    /** The link entered a retrain window (down until it completes). */
    virtual void onRetrainBegin(Link &, Tick) {}

    /** The link finished retraining and resumed service. */
    virtual void onRetrainEnd(Link &, Tick) {}
};

/** Per-link accumulated statistics (reset at measurement start). */
struct LinkStats
{
    // -- Energy attribution (energy observatory, src/obs) ----------------
    //
    // Every joule the link draws lands in exactly one cause bucket:
    // accrue() integrates the piecewise-constant power over an interval
    // and files it by the link state that held for that interval. The
    // coarse idle/active split the rest of the system reports is
    // *derived* from the buckets (accessors below), so the attribution
    // always sums to the reported ledger bit-identically.
    /** Serialization: lanes driving payload flits at on-state power. */
    double txJ = 0.0;
    /** Retrain windows: lanes driving training sequences at on power. */
    double retrainJ = 0.0;
    /** Static floor per bandwidth-mode index (on and idle, no wake). */
    std::array<double, 8> idleFloorJ{};
    /** ROO off state (residual sleep power). */
    double sleepJ = 0.0;
    /** Wake transitions (Off -> On sequences). */
    double wakeJ = 0.0;

    /** Active I/O energy: traffic plus retrain lane activity. */
    double activeIoJ() const { return txJ + retrainJ; }

    /** Idle I/O energy: mode floors, sleep residual, wake transitions. */
    double
    idleIoJ() const
    {
        double floor = 0.0;
        for (double j : idleFloorJ)
            floor += j;
        return (floor + sleepJ) + wakeJ;
    }

    std::uint64_t flits = 0;
    std::uint64_t packets = 0;
    std::uint64_t readPackets = 0;
    /** CRC retransmissions (LinkErrorModel). */
    std::uint64_t retries = 0;
    /** Packets whose serialization was aborted and replayed (faults). */
    std::uint64_t replays = 0;
    /** Retrain windows entered. */
    std::uint64_t retrains = 0;
    /** Seconds spent in the Retraining state. */
    double retrainSeconds = 0.0;
    /** Seconds spent with fewer than 16 usable lanes. */
    double degradedSeconds = 0.0;
    /** Residency seconds per bandwidth-mode index. */
    std::array<double, 8> modeSeconds{};
    double offSeconds = 0.0;
    /**
     * Time integral of the instantaneous power fraction (mode residency
     * weighted by mode power). Multiplied by the link's full power this
     * must equal idleIoJ() + activeIoJ() — the energy-conservation
     * invariant the runtime auditor (src/audit) enforces.
     */
    double powerFracSeconds = 0.0;
    /**
     * Stall attribution (latency observatory): packet-seconds packets
     * spent blocked at this link behind wake sequences / retrain
     * windows. Packet-weighted — N packets waiting through one wake
     * each contribute — so this can exceed wall-clock wake time.
     */
    double wakeStallSeconds = 0.0;
    double retrainStallSeconds = 0.0;
    /** High-water mark of the waiting queue (excludes in-flight). */
    std::uint64_t queuePeak = 0;
};

class Link
{
  public:
    /**
     * @param eq event queue.
     * @param id dense link id (for managers).
     * @param type request or response.
     * @param module the module this link is the connectivity link of
     *        (the downstream module of the pair it connects).
     * @param table bandwidth mechanism mode table.
     * @param roo ROO configuration.
     * @param full_power_w electrical power of this link at full power
     *        (both ends).
     * @param sink receiver of delivered packets.
     */
    Link(EventQueue &eq, int id, LinkType type, int module,
         const ModeTable *table, const RooConfig *roo,
         double full_power_w, PacketSink *sink,
         const LinkErrorModel *errors = nullptr);

    // -- Traffic ---------------------------------------------------------

    /** Enqueue a packet for transmission. */
    void enqueue(Packet *pkt);

    /** Queued packets (excluding the one being serialized). */
    std::size_t queued() const { return readQ.size() + writeQ.size(); }

    bool transmitting() const { return busy; }

    // -- Power control (called by managers) --------------------------------

    /**
     * Apply a bandwidth mode and a ROO mode. Transitions begin
     * immediately; energy accounting is exact across the boundary.
     */
    void applyModes(std::size_t bw_idx, std::size_t roo_idx);

    /** Force full power until further notice (violation feedback). */
    void forceFullPower();

    /** Externally initiated wake (network-aware response coordination). */
    void wakeNow();

    /**
     * Re-evaluate the sleep opportunity (the manager calls this when its
     * maySleep() answer may have flipped to true).
     */
    void noteSleepOpportunity();

    // -- Fault handling (called by the fault injector) ---------------------

    /**
     * Take the link down for a retrain window ending @p window from now.
     * The in-flight packet's serialization is aborted and replayed after
     * the window, queued packets wait, and nothing is dropped. The lanes
     * drive training sequences for the whole window, so the link draws
     * its on-state power (counted as active I/O). Overlapping retrains
     * extend the window.
     */
    void beginRetrain(Tick window);

    /** True while a retrain window is in progress. */
    bool retraining() const { return retraining_; }

    /**
     * Permanently clamp the usable width to @p lanes (1..16); widening
     * is ignored. Mode selections narrower than the clamp still work;
     * wider ones are derated to the surviving lanes (and applyModes
     * clamps future selections). Notifies the observer via onDegrade.
     */
    void setLaneLimit(int lanes);

    /** Usable width cap (16 when healthy). */
    int laneLimit() const { return pstate.laneClamp(); }

    /** Widest selectable mode index under the current lane limit. */
    std::size_t minUsableMode() const { return pstate.minUsableMode(); }

    /** Override the flit error rate (error burst); negative clears. */
    void setErrorRateOverride(double rate) { errorOverride = rate; }

    /** Effective flit error rate right now. */
    double
    flitErrorRate() const
    {
        return errorOverride >= 0.0 ? errorOverride
                                    : errors_.flitErrorRate;
    }

    const LinkPowerState &power() const { return pstate; }
    LinkPowerState &power() { return pstate; }

    // -- Introspection -----------------------------------------------------

    int id() const { return id_; }
    LinkType type() const { return type_; }
    /** The module whose connectivity link this is. */
    int module() const { return module_; }

    const LinkStats &stats() const { return stats_; }

    /** Electrical power at full bandwidth, both ends (W). */
    double fullPowerWatts() const { return fullPowerW; }

    /**
     * Deliberately corrupt the energy accumulators by @p joules. Exists
     * solely so the audit mutation tests can prove the
     * energy-conservation check fires; never called by simulation code.
     */
    void auditPerturbEnergy(double joules) { stats_.txJ += joules; }

    /** Reset measurement statistics (start of measurement window). */
    void resetStats();

    /** Flush energy integration up to @p now (end of run). */
    void finishAccounting(Tick now) { accrue(now); }

    /** Bytes at full bandwidth the link could move per second. */
    static double
    fullBytesPerSec()
    {
        return kFlitBytes / toSeconds(LinkTiming::kFullFlitPs);
    }

    /** Utilization over @p seconds of measured time. */
    double
    utilization(double seconds) const
    {
        if (seconds <= 0)
            return 0.0;
        return static_cast<double>(stats_.flits) * kFlitBytes /
               (fullBytesPerSec() * seconds);
    }

    /** Attach a management observer (nullptr restores the no-op one). */
    void setObserver(LinkObserver *obs);

    /**
     * Attach a partition boundary (nullptr detaches). With a boundary,
     * delivered packets are handed off instead of reaching the sink;
     * everything on this side of the link — queues, power states,
     * energy accounting, observer callbacks — is bit-identical to the
     * serial kernel (the shadow pipe replays departures locally).
     */
    void setBoundary(LinkBoundary *b) { boundary_ = b; }

    /**
     * Attach a passive power-trace sink (src/obs). Null (the default)
     * disables tracing; every hook is gated on a single pointer check.
     */
    void setTraceSink(PowerTraceSink *t) { trace_ = t; }

    /**
     * Attach a Network-owned occupancy sketch (energy observatory):
     * every waiting-queue push records the post-push depth. Null (the
     * default) disables recording; the sketch is purely passive, so
     * simulated results are identical with and without one. A link's
     * events all run on its home partition, so partitioned recording
     * is race-free.
     */
    void setOccupancySketch(obs::QuantileSketch *s) { occSketch_ = s; }

    // -- Latency observatory (monotonic stall accumulators) ----------------

    /**
     * Cumulative wake-sequence time of this link since construction,
     * including the in-progress portion of a wake still running at
     * @p now. Monotonic (never reset), so two snapshots bracket exactly
     * the wake time that elapsed between them — packets snapshot it at
     * wait start and diff it at serialization start to attribute their
     * wait to power-state stalls.
     */
    Tick
    wakeStallAccum(Tick now) const
    {
        Tick t = wakePsTotal_;
        if (pstate.rooState() == RooState::Waking)
            t += now - wakeStart_;
        return t;
    }

    /** Cumulative retrain time, same contract as wakeStallAccum(). */
    Tick
    retrainStallAccum(Tick now) const
    {
        Tick t = retrainPsTotal_;
        if (retraining_)
            t += now - retrainStart_;
        return t;
    }

  private:
    void tryStart();
    void onTxDone();
    void onDeliver();
    void onSleepTimer();
    void onWakeDone();
    void onRetrainDone();
    void onCheckpoint() { accrue(eq.now()); }

    void accrue(Tick now);
    void armSleepTimer();
    void beginWakeInternal(Tick now);
    void exitIdle(Tick now);
    void admitRetry(Packet *pkt);

    /** Open a wait interval on @p pkt (latency observatory). */
    void stampWaitStart(Packet *pkt, Tick now);
    /** Note a waiting-queue push (queue-depth high-water tracking). */
    void noteQueueDepth(Tick now);

    EventQueue &eq;
    const int id_;
    const LinkType type_;
    const int module_;
    PowerTraceSink *trace_ = nullptr;
    /** Occupancy sketch (energy observatory); null when disabled. */
    obs::QuantileSketch *occSketch_ = nullptr;
    /** Serialization span start, valid only while trace_ is attached. */
    Tick txStart_ = 0;
    /** Sleep span start, valid only while trace_ is attached. */
    Tick sleepStart_ = 0;
    /** Wake/retrain span starts — always maintained: the latency
     *  observatory's stall accumulators need them even untraced. */
    Tick wakeStart_ = 0;
    Tick retrainStart_ = 0;
    /** Completed wake/retrain time since construction (monotonic). */
    Tick wakePsTotal_ = 0;
    Tick retrainPsTotal_ = 0;
    /** Last traced operating point (emit mode changes only on change). */
    std::size_t lastTraceBw_ = static_cast<std::size_t>(-1);
    std::size_t lastTraceRoo_ = static_cast<std::size_t>(-1);
    LinkPowerState pstate;
    const double fullPowerW;
    PacketSink *const sink;
    LinkObserver *observer;
    LinkErrorModel errors_;
    Random errorRng;
    /** Burst override of the flit error rate; < 0 means "use baseline". */
    double errorOverride = -1.0;

    /** Retrain window state (fault model). */
    bool retraining_ = false;
    Tick retrainEnd_ = 0;

    std::deque<Packet *> readQ;
    std::deque<Packet *> writeQ;

    bool busy = false;
    Packet *current = nullptr;

    /** In-flight deliveries (SERDES + router pipeline). */
    std::deque<std::pair<Packet *, Tick>> pipe;

    /** Partition boundary (null on every serially-delivering link). */
    LinkBoundary *boundary_ = nullptr;

    /**
     * Boundary mode's stand-in for `pipe`: the packet itself crossed
     * the partition at serialization end, so delivery keeps only what
     * the local observers need (packet type and link arrival for the
     * manager's departure bookkeeping) plus the arm-key recurrence
     * state ((due, armSched) of the pipe event that serially would
     * re-arm the next delivery — see onTxDone).
     */
    struct ShadowEntry
    {
        PacketType type;
        Tick linkArrival;
        Tick due;
        Tick armSched;
    };
    std::deque<ShadowEntry> shadow_;

    /** When the current idle interval started (valid when idle). */
    Tick idleStart = 0;
    bool idle = true;

    /** Energy integration state. */
    Tick lastAccrue = 0;

    LinkStats stats_;

    MemberEvent<Link, &Link::onTxDone> txDoneEvent{this};
    MemberEvent<Link, &Link::onDeliver> deliverEvent{this};
    MemberEvent<Link, &Link::onSleepTimer> sleepEvent{this};
    MemberEvent<Link, &Link::onWakeDone> wakeEvent{this};
    MemberEvent<Link, &Link::onRetrainDone> retrainEvent{this};
    MemberEvent<Link, &Link::onCheckpoint> checkpointEvent{this};
};

} // namespace memnet

#endif // MEMNET_NET_LINK_HH
