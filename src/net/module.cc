#include "net/module.hh"

#include "net/network.hh"
#include "obs/prof.hh"
#include "sim/log.hh"

namespace memnet
{

Module::Module(Network &net, EventQueue &eq, int id, Radix radix,
               const DramParams &dram_params)
    : net(net),
      eq(eq),
      id_(id),
      radix_(radix),
      vaults(eq, dram_params,
             [this](std::uint64_t tag, bool is_read, Tick now) {
                 onVaultDone(tag, is_read, now);
             })
{
}

void
Module::accept(Packet *pkt, Tick now)
{
    MEMNET_PROF_SCOPE("net/route");
    flits_ += static_cast<std::uint64_t>(pkt->flits);

    if (pkt->type == PacketType::ReadResp) {
        // Forwarded up from a child's response link.
        net.responseLink(id_).enqueue(pkt);
        return;
    }

    if (pkt->homeModule == id_) {
        const bool is_read = pkt->type == PacketType::ReadReq;
        if (is_read) {
            ++readsInFlight;
            if (observer)
                observer->onDramRead(*this, now);
        }
        vaults.access(pkt->addr, is_read,
                      reinterpret_cast<std::uint64_t>(pkt));
        return;
    }

    // Route toward the home module: next hop along the path.
    const auto &path = net.pathOf(pkt->homeModule);
    ++pkt->hop;
    memnet_assert(pkt->hop < static_cast<int>(path.size()),
                  "request overran its path");
    net.requestLink(path[pkt->hop]).enqueue(pkt);
}

void
Module::onVaultDone(std::uint64_t tag, bool is_read, Tick now)
{
    if (!is_read) {
        // Partitioned: the write was already promised to the processor
        // side at service start (vault forecast), and by now the
        // processor may have retired and recycled the packet — the tag
        // must not be dereferenced on this thread.
        if (net.writeHandoff())
            return;
        net.host()->writeRetired(reinterpret_cast<Packet *>(tag), now);
        return;
    }
    Packet *pkt = reinterpret_cast<Packet *>(tag);
    ++dramReadsDone;
    --readsInFlight;
    if (readsInFlight == 0 && observer)
        observer->onDramIdle(*this, now);

    // Turn the request into a 5-flit response and send it upstream;
    // the vault-to-link crossing traverses the router once more.
    pkt->type = PacketType::ReadResp;
    pkt->flits = flitsFor(PacketType::ReadResp);
    flits_ += static_cast<std::uint64_t>(pkt->flits);
    net.responseLink(id_).enqueue(pkt);
}

} // namespace memnet
