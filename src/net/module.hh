/**
 * @file
 * One HMC module: router + vaults + the connectivity-link endpoints.
 */

#ifndef MEMNET_NET_MODULE_HH
#define MEMNET_NET_MODULE_HH

#include <cstdint>

#include "dram/vault_set.hh"
#include "net/link.hh"
#include "net/packet.hh"
#include "power/hmc_power_model.hh"

namespace memnet
{

class Network;
class Module;

/** Management hooks for module-level (DRAM) activity. */
class ModuleObserver
{
  public:
    virtual ~ModuleObserver() = default;

    /** A DRAM read started at this module (vault enqueue). */
    virtual void onDramRead(Module &, Tick) {}

    /** The module's last in-flight DRAM read completed. */
    virtual void onDramIdle(Module &, Tick) {}
};

/**
 * An HMC module. It is the PacketSink of its own request connectivity
 * link and of its children's response links.
 */
class Module : public PacketSink
{
  public:
    Module(Network &net, EventQueue &eq, int id, Radix radix,
           const DramParams &dram_params);

    /** PacketSink: a packet delivered by an attached link. */
    void accept(Packet *pkt, Tick now) override;

    int id() const { return id_; }
    Radix radix() const { return radix_; }

    /** Total flits that crossed this module's router (since reset). */
    std::uint64_t flitsRouted() const { return flits_ - flitsBase; }

    /** DRAM accesses serviced since reset. */
    std::uint64_t
    dramAccesses() const
    {
        return vaults.servicedReads() + vaults.servicedWrites() -
               dramBase;
    }

    /** Monotonic count of DRAM reads serviced (management counter). */
    std::uint64_t dramReadsServiced() const { return dramReadsDone; }

    /** True while any read is queued or in service in the vaults. */
    bool dramReadsInFlight() const { return readsInFlight > 0; }

    void
    resetStats()
    {
        flitsBase = flits_;
        dramBase = vaults.servicedReads() + vaults.servicedWrites();
    }

    void setObserver(ModuleObserver *o) { observer = o; }

    /**
     * Install a service-start forecast on every vault (partitioned
     * write promises; see Vault::setForecast).
     */
    void setVaultForecast(Vault::Callback cb) { vaults.setForecast(cb); }

    const VaultSet &vaultSet() const { return vaults; }

  private:
    void onVaultDone(std::uint64_t tag, bool is_read, Tick now);

    Network &net;
    EventQueue &eq;
    const int id_;
    const Radix radix_;
    VaultSet vaults;
    ModuleObserver *observer = nullptr;

    std::uint64_t flits_ = 0;
    std::uint64_t flitsBase = 0;
    std::uint64_t dramBase = 0;
    std::uint64_t dramReadsDone = 0;
    int readsInFlight = 0;
};

} // namespace memnet

#endif // MEMNET_NET_MODULE_HH
