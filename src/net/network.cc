#include "net/network.hh"

#include <cmath>

#include "obs/prof.hh"
#include "sim/log.hh"

namespace memnet
{

Network::Network(EventQueue &eq, const Topology &topo,
                 const DramParams &dram_params, BwMechanism mech,
                 const RooConfig &roo, const HmcPowerModel &pm,
                 const AddressMap &amap, const LinkErrorModel &errors)
    : eq(eq),
      topo_(topo),
      dramParams(dram_params),
      pm_(pm),
      amap_(amap),
      roo_(roo),
      errors_(errors),
      port(*this)
{
    const int n = topo_.numModules();
    amap_.modules = n;

    modules_.reserve(n);
    for (int i = 0; i < n; ++i) {
        modules_.push_back(std::make_unique<Module>(
            *this, eq, i, topo_.radix(i), dramParams));
    }

    // Every unidirectional link draws the same full power: the per-end
    // power works out equal for both radix classes (peak power scales
    // with link count in the [12]-derived model).
    const double link_w = pm_.linkFullPowerW();
    const ModeTable &table = ModeTable::forMechanism(mech);

    reqLinks.reserve(n);
    respLinks.reserve(n);
    for (int i = 0; i < n; ++i) {
        // Request link of module i delivers INTO module i.
        reqLinks.push_back(std::make_unique<Link>(
            eq, i, LinkType::Request, i, &table, &roo_, link_w,
            modules_[i].get(), &errors_));
        // Response link of module i delivers to its parent (or the
        // processor port for module 0).
        PacketSink *up = (i == 0)
                             ? static_cast<PacketSink *>(&port)
                             : modules_[topo_.parent(i)].get();
        respLinks.push_back(std::make_unique<Link>(
            eq, n + i, LinkType::Response, i, &table, &roo_, link_w,
            up, &errors_));
    }
}

Network::~Network() = default;

void
Network::inject(Packet *pkt)
{
    MEMNET_PROF_SCOPE("net/inject");
    if (audit_)
        audit_->onInject(*pkt, eq.now());
    pkt->homeModule = amap_.moduleOf(pkt->addr);
    pkt->hop = 0;
    const auto &path = topo_.path(pkt->homeModule);
    hops.sample(static_cast<double>(path.size()));
    requestLink(path[0]).enqueue(pkt);
}

Link &
Network::linkById(int id)
{
    const int n = numModules();
    memnet_assert(id >= 0 && id < 2 * n, "bad link id: ", id);
    return id < n ? *reqLinks[id] : *respLinks[id - n];
}

void
Network::injectRetrain(int link, Tick window)
{
    if (trace_)
        trace_->faultEvent("retrain", link, eq.now());
    linkById(link).beginRetrain(window);
}

void
Network::injectLaneFailure(int link, int surviving_lanes)
{
    if (trace_)
        trace_->faultEvent("lane_fail", link, eq.now());
    linkById(link).setLaneLimit(surviving_lanes);
}

void
Network::injectErrorBurst(int link, double flit_error_rate)
{
    if (trace_)
        trace_->faultEvent("error_burst", link, eq.now());
    linkById(link).setErrorRateOverride(flit_error_rate);
}

void
Network::clearErrorBurst(int link)
{
    if (trace_)
        trace_->faultEvent("error_clear", link, eq.now());
    linkById(link).setErrorRateOverride(-1.0);
}

std::vector<Link *>
Network::allLinks()
{
    std::vector<Link *> out;
    out.reserve(reqLinks.size() + respLinks.size());
    for (auto &l : reqLinks)
        out.push_back(l.get());
    for (auto &l : respLinks)
        out.push_back(l.get());
    return out;
}

void
Network::recordLatency(const Packet &pkt, Tick now)
{
    if (!isReadPacket(pkt.type))
        return;
    const Tick total = now - pkt.issued;
    const Tick accounted = pkt.latQueuePs + pkt.latWakeStallPs +
                           pkt.latRetrainStallPs + pkt.latSerPs;
    // The residual is vault service time: link hops stamp contiguous
    // [enqueue, deliver) intervals and module forwarding is same-tick,
    // so total - accounted is exactly the DRAM round trip (clamped
    // defensively; the identity is asserted in tests/test_latency.cc).
    const Tick dram = total > accounted ? total - accounted : 0;
    lat_.endToEnd.record(static_cast<std::uint64_t>(total));
    lat_.queue.record(static_cast<std::uint64_t>(pkt.latQueuePs));
    lat_.wakeStall.record(static_cast<std::uint64_t>(pkt.latWakeStallPs));
    lat_.retrainStall.record(
        static_cast<std::uint64_t>(pkt.latRetrainStallPs));
    lat_.ser.record(static_cast<std::uint64_t>(pkt.latSerPs));
    lat_.dram.record(static_cast<std::uint64_t>(dram));
}

LatencyBreakdown
Network::latencySummary() const
{
    if (!latObs_)
        return LatencyBreakdown{};
    LatencyBreakdown b = summarizeLatency(lat_);
    for (const auto &l : reqLinks) {
        b.wakeStallSeconds += l->stats().wakeStallSeconds;
        b.retrainStallSeconds += l->stats().retrainStallSeconds;
        if (l->stats().queuePeak > b.queuePeak)
            b.queuePeak = l->stats().queuePeak;
    }
    for (const auto &l : respLinks) {
        b.wakeStallSeconds += l->stats().wakeStallSeconds;
        b.retrainStallSeconds += l->stats().retrainStallSeconds;
        if (l->stats().queuePeak > b.queuePeak)
            b.queuePeak = l->stats().queuePeak;
    }
    return b;
}

void
Network::resetStats()
{
    measureStart = eq.now();
    lat_.reset();
    for (auto &s : occ_)
        s.reset();
    hops.reset();
    for (auto &l : reqLinks)
        l->resetStats();
    for (auto &l : respLinks)
        l->resetStats();
    for (auto &m : modules_)
        m->resetStats();
}

EnergyBreakdown
Network::collectEnergy(Tick now)
{
    EnergyBreakdown e;
    const double secs = toSeconds(now - measureStart);
    for (auto *l : allLinks()) {
        l->finishAccounting(now);
        e.idleIoJ += l->stats().idleIoJ();
        e.activeIoJ += l->stats().activeIoJ();
    }
    for (auto &m : modules_) {
        const ModuleEnergyTerms t =
            moduleEnergyTerms(pm_.params(m->radix()), secs,
                              m->flitsRouted(), m->dramAccesses());
        e.logicLeakJ += t.logicLeakJ;
        e.dramLeakJ += t.dramLeakJ;
        e.logicDynJ += t.logicDynJ;
        e.dramDynJ += t.dramDynJ;
    }
    return e;
}

void
Network::setEnergyObservatory(bool on)
{
    energyObs_ = on;
    if (on) {
        // Sized exactly once: links keep raw pointers into the vector,
        // so it must never reallocate afterwards.
        occ_.assign(2 * static_cast<std::size_t>(numModules()),
                    obs::QuantileSketch{});
        const int n = numModules();
        for (int i = 0; i < n; ++i) {
            reqLinks[i]->setOccupancySketch(&occ_[i]);
            respLinks[i]->setOccupancySketch(
                &occ_[static_cast<std::size_t>(n) + i]);
        }
    } else {
        for (auto *l : allLinks())
            l->setOccupancySketch(nullptr);
        occ_.clear();
    }
}

EnergyAttribution
Network::energyAttribution(Tick now)
{
    EnergyAttribution a;
    const double secs = toSeconds(now - measureStart);
    // Same iteration order and arithmetic as collectEnergy, so the
    // coarse anchors (and module terms) match it bit-identically.
    for (auto *l : allLinks()) {
        l->finishAccounting(now);
        a.addLink(l->stats());
    }
    for (auto &m : modules_) {
        a.addModule(moduleEnergyTerms(pm_.params(m->radix()), secs,
                                      m->flitsRouted(),
                                      m->dramAccesses()));
    }
    return a;
}

obs::EnergySketches
Network::collectEnergySketches(Tick now)
{
    obs::EnergySketches out;
    const double secs = toSeconds(now - measureStart);
    for (auto *l : allLinks()) {
        const double u = l->utilization(secs);
        out.utilization.record(static_cast<std::uint64_t>(
            std::llround((u > 0.0 ? u : 0.0) * 1e6)));
    }
    for (const auto &s : occ_)
        out.occupancy.merge(s);
    return out;
}

ModuleEnergyTerms
Network::moduleEnergy(int m, Tick now) const
{
    const Module &mod = *modules_[m];
    return moduleEnergyTerms(pm_.params(mod.radix()),
                             toSeconds(now - measureStart),
                             mod.flitsRouted(), mod.dramAccesses());
}

EnergySummary
Network::energySummary(Tick now)
{
    if (!energyObs_)
        return EnergySummary{};
    return summarizeEnergy(energyAttribution(now),
                           collectEnergySketches(now));
}

void
Network::setObservers(LinkObserver *lo, ModuleObserver *mo)
{
    for (auto *l : allLinks())
        l->setObserver(lo);
    for (auto &m : modules_)
        m->setObserver(mo);
}

void
Network::setTraceSink(PowerTraceSink *t)
{
    trace_ = t;
    for (auto *l : allLinks())
        l->setTraceSink(t);
}

} // namespace memnet
