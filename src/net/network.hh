/**
 * @file
 * The assembled memory network: topology, modules, links, processor port.
 */

#ifndef MEMNET_NET_NETWORK_HH
#define MEMNET_NET_NETWORK_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "linkpm/modes.hh"
#include "net/link.hh"
#include "net/module.hh"
#include "net/power_trace.hh"
#include "net/topology.hh"
#include "obs/energy_observatory.hh"
#include "obs/quantile_sketch.hh"
#include "power/hmc_power_model.hh"
#include "power/power_breakdown.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "sim/stats.hh"

namespace memnet
{

/**
 * The processor side of the network: receives read responses and write
 * retirement notices. Implemented by the workload library's Processor.
 */
class EndpointHost
{
  public:
    virtual ~EndpointHost() = default;
    virtual void readCompleted(Packet *pkt, Tick now) = 0;
    virtual void writeRetired(Packet *pkt, Tick now) = 0;
};

/** Anything request packets can be injected into (a Network, or a
 *  multi-channel switch fanning out over several networks). */
class TrafficTarget
{
  public:
    virtual ~TrafficTarget() = default;
    virtual void inject(Packet *pkt) = 0;
};

/**
 * Passive per-inject audit hook (src/audit). Called synchronously from
 * Network::inject before routing; an implementation must not mutate
 * the packet or schedule events, so attaching one never changes
 * simulation results.
 */
class NetworkAuditHook
{
  public:
    virtual ~NetworkAuditHook() = default;
    virtual void onInject(const Packet &pkt, Tick now) = 0;
};

/** How addresses map onto modules. */
struct AddressMap
{
    /** Contiguous bytes per module (4 GB small study, 1 GB big study). */
    std::uint64_t chunkBytes = 4ULL << 30;
    /** Interleave 4 KB pages round-robin instead (Section VII-A). */
    bool interleavePages = false;
    std::uint64_t pageBytes = 4096;
    int modules = 1;

    int
    moduleOf(std::uint64_t addr) const
    {
        if (interleavePages) {
            return static_cast<int>((addr / pageBytes) %
                                    static_cast<unsigned>(modules));
        }
        const std::uint64_t m = addr / chunkBytes;
        return static_cast<int>(
            m >= static_cast<std::uint64_t>(modules)
                ? static_cast<std::uint64_t>(modules - 1)
                : m);
    }
};

/**
 * Owns every module and link of one memory network and injects traffic
 * from the processor channel. Also the FaultTarget a FaultInjector
 * degrades: fault domains are link ids (request links 0..n-1, response
 * links n..2n-1, matching allLinks() order).
 */
class Network : public TrafficTarget, public FaultTarget
{
  public:
    Network(EventQueue &eq, const Topology &topo,
            const DramParams &dram_params, BwMechanism mech,
            const RooConfig &roo, const HmcPowerModel &pm,
            const AddressMap &amap,
            const LinkErrorModel &errors = LinkErrorModel{});
    ~Network() override;

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    /** Attach the processor-side host (must outlive the network). */
    void setHost(EndpointHost *h) { host_ = h; }
    EndpointHost *host() const { return host_; }

    /**
     * Inject a request packet from the processor. The packet's
     * homeModule is derived from its address here.
     */
    void inject(Packet *pkt) override;

    int numModules() const { return topo_.numModules(); }
    const Topology &topology() const { return topo_; }

    Module &module(int i) { return *modules_[i]; }
    const Module &module(int i) const { return *modules_[i]; }

    /** Request connectivity link of module m (parent -> m). */
    Link &requestLink(int m) { return *reqLinks[m]; }
    /** Response connectivity link of module m (m -> parent). */
    Link &responseLink(int m) { return *respLinks[m]; }
    const Link &requestLink(int m) const { return *reqLinks[m]; }
    const Link &responseLink(int m) const { return *respLinks[m]; }

    /** All links, request links first (ids match indices). */
    std::vector<Link *> allLinks();

    /** Link with the given dense id (request 0..n-1, response n..2n-1). */
    Link &linkById(int id);

    // -- FaultTarget -------------------------------------------------------

    int faultDomains() const override { return 2 * numModules(); }
    void injectRetrain(int link, Tick window) override;
    void injectLaneFailure(int link, int surviving_lanes) override;
    void injectErrorBurst(int link, double flit_error_rate) override;
    void clearErrorBurst(int link) override;

    const AddressMap &addressMap() const { return amap_; }
    const HmcPowerModel &powerModel() const { return pm_; }
    const std::vector<int> &pathOf(int m) const { return topo_.path(m); }

    /** Average modules traversed per access since reset. */
    double avgModulesTraversed() const { return hops.mean(); }
    std::uint64_t injectedPackets() const { return hops.count(); }

    /** Reset all measurement statistics (start of measure window). */
    void resetStats();

    /**
     * Total network energy over the window [reset, now], combining link
     * I/O energy and module leakage/dynamic energy.
     */
    EnergyBreakdown collectEnergy(Tick now);

    /** Attach observers to every link and module. */
    void setObservers(LinkObserver *lo, ModuleObserver *mo);

    /**
     * Attach a passive power-trace sink to the network and every link
     * (src/obs). Null disables tracing.
     */
    void setTraceSink(PowerTraceSink *t);

    /** Attach the runtime invariant auditor's inject hook (null detaches). */
    void setAuditHook(NetworkAuditHook *h) { audit_ = h; }

    // -- Partition boundary (net/boundary.hh, sim/partition.hh) ------------

    /**
     * Complete a read at the processor side: latency decomposition,
     * packet-life trace, and host notification — exactly the root
     * response link's delivery tail. Public so a partitioned run's
     * ingress pipe can replay it on the processor partition with the
     * serial delivery key.
     */
    void
    completeRead(Packet *pkt, Tick now)
    {
        if (latObs_)
            recordLatency(*pkt, now);
        if (trace_)
            trace_->packetLife(*pkt, pkt->issued, now);
        host_->readCompleted(pkt, now);
    }

    /**
     * Partitioned write retirement: when set, modules do not notify
     * the host of completed writes (and never touch the packet, which
     * the processor partition may already have recycled) — the vault
     * forecast's write promise retires it on the processor side at the
     * same tick instead.
     */
    void setWriteHandoff(bool on) { writeHandoff_ = on; }
    bool writeHandoff() const { return writeHandoff_; }

    // -- Latency observatory -----------------------------------------------

    /**
     * Enable/disable latency recording. Purely passive: packets are
     * stamped either way (integer stores on pool-owned storage), the
     * switch only gates the sketch updates at completion, so simulated
     * results are bit-identical on vs. off (test_differential).
     */
    void setLatencyObservatory(bool on) { latObs_ = on; }
    bool latencyEnabled() const { return latObs_; }

    /** Component sketches over completed reads since resetStats(). */
    const obs::LatencySketches &latencySketches() const { return lat_; }

    /**
     * Summarize the sketches plus per-link stall attribution into a
     * RunResult-ready breakdown ({enabled=false} when disabled).
     */
    LatencyBreakdown latencySummary() const;

    // -- Energy observatory ------------------------------------------------

    /**
     * Enable/disable energy recording. The attribution counters are
     * always stamped (they ARE the energy ledger); the switch only
     * materializes the per-link occupancy sketches and gates the
     * summaries, so simulated results are bit-identical on vs. off
     * (test_differential).
     */
    void setEnergyObservatory(bool on);
    bool energyEnabled() const { return energyObs_; }

    /**
     * The exact attribution ledger over [reset, now]: link cause
     * buckets, module cause terms, and the coarse idle/active anchors.
     * Accumulated by the same arithmetic as collectEnergy, so the
     * anchors match the EnergyBreakdown bit-identically (the runtime
     * auditor enforces this). Always available, observatory on or off.
     */
    EnergyAttribution energyAttribution(Tick now);

    /**
     * Congestion sketches: one utilization sample per link (ppm of
     * full bandwidth over the window) plus the merged waiting-queue
     * occupancy distribution. Empty when the observatory is off.
     */
    obs::EnergySketches collectEnergySketches(Tick now);

    /** RunResult-ready summary ({enabled=false} when disabled). */
    EnergySummary energySummary(Tick now);

    /**
     * One module's energy cause terms over [reset, now] — the same
     * expression collectEnergy folds per module, exposed for the
     * per-module stat scopes. Does not flush link accounting.
     */
    ModuleEnergyTerms moduleEnergy(int m, Tick now) const;

    EventQueue &eventQueue() { return eq; }

  private:
    friend class Module;

    /** Sink adapter delivering module 0's responses to the host. */
    class ProcessorPort : public PacketSink
    {
      public:
        explicit ProcessorPort(Network &n) : net(n) {}
        void
        accept(Packet *pkt, Tick now) override
        {
            net.completeRead(pkt, now);
        }

      private:
        Network &net;
    };

    EventQueue &eq;
    Topology topo_;
    DramParams dramParams;
    const HmcPowerModel &pm_;
    AddressMap amap_;
    RooConfig roo_;
    LinkErrorModel errors_;

    std::vector<std::unique_ptr<Module>> modules_;
    std::vector<std::unique_ptr<Link>> reqLinks;
    std::vector<std::unique_ptr<Link>> respLinks;
    ProcessorPort port;
    EndpointHost *host_ = nullptr;
    PowerTraceSink *trace_ = nullptr;
    NetworkAuditHook *audit_ = nullptr;

    /** Decompose a completed read into the component sketches. */
    void recordLatency(const Packet &pkt, Tick now);

    bool latObs_ = false;
    bool energyObs_ = false;
    bool writeHandoff_ = false;
    obs::LatencySketches lat_;
    /**
     * Per-link occupancy sketches (request links first, ids match),
     * materialized by setEnergyObservatory(true). Sized once — links
     * hold raw pointers into the vector.
     */
    std::vector<obs::QuantileSketch> occ_;

    Average hops;
    Tick measureStart = 0;
};

} // namespace memnet

#endif // MEMNET_NET_NETWORK_HH
