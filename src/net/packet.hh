/**
 * @file
 * Packets and flits of the memory network protocol.
 *
 * As in the paper (Section II-B): a read request is a single 16 B flit;
 * write requests and read responses carry five flits (64 B lines).
 * Writes are posted — no write response packet travels the network.
 */

#ifndef MEMNET_NET_PACKET_HH
#define MEMNET_NET_PACKET_HH

#include <cstdint>

#include "sim/types.hh"

namespace memnet
{

class PacketPool;

/** Bytes per flit (minimum traffic flow unit). */
constexpr int kFlitBytes = 16;

enum class PacketType : std::uint8_t
{
    ReadReq,
    WriteReq,
    ReadResp,
};

/** Number of flits for a packet type, assuming 64 B lines. */
constexpr int
flitsFor(PacketType t)
{
    return t == PacketType::ReadReq ? 1 : 5;
}

/** True for packets whose latency counts toward read latency budgets. */
constexpr bool
isReadPacket(PacketType t)
{
    return t != PacketType::WriteReq;
}

/**
 * One in-flight packet. Packets come from the issuing side's PacketPool
 * (net/packet_pool.hh) at issue and are recycled at retirement; routes
 * are walked with an index into the precomputed root-to-home module
 * path.
 */
struct Packet
{
    std::uint64_t id = 0;
    PacketType type = PacketType::ReadReq;
    std::uint64_t addr = 0;
    int homeModule = 0;
    int core = 0;
    int flits = 1;

    /** Tick the originating core issued the request. */
    Tick issued = 0;
    /** Arrival tick at the current link controller (for counters). */
    Tick linkArrival = 0;

    // -- Latency observatory (docs/OBSERVABILITY.md) -----------------------
    //
    // Links stamp and accumulate these as the packet traverses the
    // network; ProcessorPort splits a completed read's end-to-end
    // latency into queueing / power-state stall / serialization, with
    // vault service time as the residual. Pool-owned storage: zero heap
    // allocation on the hot path, and stamping never schedules events,
    // so results are bit-identical whether or not anyone reads them.

    /** Accumulated wait time not attributable to a power-state stall. */
    Tick latQueuePs = 0;
    /** Accumulated wait time blocked behind link wake sequences. */
    Tick latWakeStallPs = 0;
    /** Accumulated wait time blocked behind retrain windows. */
    Tick latRetrainStallPs = 0;
    /** Accumulated serialization + SERDES + router pipeline time. */
    Tick latSerPs = 0;
    /** Scratch: when the current wait interval began (per hop). */
    Tick latWaitStart = 0;
    /** Scratch: when the current serialization began (per hop). */
    Tick latSerStart = 0;
    /** Scratch: link wake-time accumulator snapshot at wait start. */
    Tick latWakeRef = 0;
    /** Scratch: link retrain-time accumulator snapshot at wait start. */
    Tick latRetrainRef = 0;

    /**
     * Index of the next module along the path. For requests this walks
     * the root-to-home path forward; for responses, backward.
     */
    int hop = 0;

    /**
     * Pool that issued this packet (null for plain `new` packets, e.g.
     * in unit tests). Sinks that consume packets instead of returning
     * them to the issuer must use disposePacket() (net/packet_pool.hh),
     * never `delete`, so pool storage is recycled rather than freed.
     */
    PacketPool *origin = nullptr;

    int bytes() const { return flits * kFlitBytes; }
};

} // namespace memnet

#endif // MEMNET_NET_PACKET_HH
