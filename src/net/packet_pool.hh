/**
 * @file
 * Freelist pool for Packet objects.
 *
 * Packets used to be heap-allocated at issue and freed at retirement —
 * two malloc round-trips per access on the hottest path in the
 * simulator. The pool allocates Packets in chunks and recycles retired
 * ones, so steady state runs allocation-free: the live set quickly
 * saturates at the maximum number of in-flight packets (bounded by the
 * per-core outstanding limits) and every later acquire() reuses a
 * retired slot.
 *
 * The pool is intentionally not thread-safe: each simulation run owns
 * its packet sources (Processor / TracePlayer), which own their pool,
 * so parallel sweep runs never share one.
 */

#ifndef MEMNET_NET_PACKET_POOL_HH
#define MEMNET_NET_PACKET_POOL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.hh"
#include "obs/prof.hh"

namespace memnet
{

class PacketPool
{
  public:
    PacketPool() = default;
    PacketPool(const PacketPool &) = delete;
    PacketPool &operator=(const PacketPool &) = delete;

    /** Fetch a default-initialized packet (chunk-allocating if empty). */
    Packet *
    acquire()
    {
        MEMNET_PROF_SCOPE("net/pkt_alloc");
        if (free_.empty())
            grow();
        Packet *p = free_.back();
        free_.pop_back();
        *p = Packet{};
        p->origin = this;
        ++acquired_;
        return p;
    }

    /** Return a retired packet for reuse. */
    void
    release(Packet *p)
    {
        MEMNET_PROF_SCOPE("net/pkt_dispose");
        free_.push_back(p);
        ++released_;
    }

    /** Total acquire() calls — packets issued through the pool. */
    std::uint64_t acquired() const { return acquired_; }

    /** Total release() calls — packets retired back into the pool. */
    std::uint64_t released() const { return released_; }

    /** Packets currently out of the pool (issued and not yet retired). */
    std::uint64_t inFlight() const { return acquired_ - released_; }

    /** Packets ever heap-allocated (chunked; the pool's high-water). */
    std::uint64_t
    heapAllocated() const
    {
        return static_cast<std::uint64_t>(chunks_.size()) * kChunk;
    }

    /** Heap allocations the freelist avoided versus new-per-packet. */
    std::uint64_t
    allocationsAvoided() const
    {
        return acquired_ - std::min(acquired_, heapAllocated());
    }

  private:
    static constexpr std::size_t kChunk = 256;

    void
    grow()
    {
        chunks_.push_back(std::make_unique<Packet[]>(kChunk));
        Packet *base = chunks_.back().get();
        free_.reserve(free_.size() + kChunk);
        for (std::size_t i = kChunk; i > 0; --i)
            free_.push_back(base + (i - 1));
    }

    std::vector<std::unique_ptr<Packet[]>> chunks_;
    std::vector<Packet *> free_;
    std::uint64_t acquired_ = 0;
    std::uint64_t released_ = 0;
};

/**
 * Destroy a packet regardless of where it came from: pool packets go
 * back to their issuing pool, plain `new` packets are deleted. The only
 * safe way for a sink to consume a packet it does not return.
 */
inline void
disposePacket(Packet *p)
{
    if (p->origin) {
        p->origin->release(p);
    } else {
        delete p;
    }
}

} // namespace memnet

#endif // MEMNET_NET_PACKET_POOL_HH
