/**
 * @file
 * Passive trace sink for link power-state activity.
 *
 * The observability layer (src/obs) implements this interface to export
 * Chrome trace events; the net layer only knows the abstract sink so no
 * dependency cycle forms. Links and the network call the hooks
 * synchronously from their existing event handlers — a sink must not
 * schedule events or otherwise perturb simulation state, so an attached
 * sink never changes simulation results.
 *
 * Span hooks fire once at span end with both endpoints; a span still
 * open when the run ends is simply not reported. All hooks are no-ops
 * by default, and every call site is gated on a null check, so the
 * disabled cost is one pointer compare.
 */

#ifndef MEMNET_NET_POWER_TRACE_HH
#define MEMNET_NET_POWER_TRACE_HH

#include <cstddef>

#include "sim/types.hh"

namespace memnet
{

class Link;
struct Packet;

class PowerTraceSink
{
  public:
    virtual ~PowerTraceSink() = default;

    // -- Link spans (reported at span end) ---------------------------------

    /** One packet serialization occupied the lanes over [begin, end). */
    virtual void linkTx(const Link &, Tick begin, Tick end, int flits) {}

    /** The link was off over [begin, end); end is the wake start. */
    virtual void linkOff(const Link &, Tick begin, Tick end) {}

    /** The link executed its wakeup sequence over [begin, end). */
    virtual void linkWake(const Link &, Tick begin, Tick end) {}

    /** The link was down retraining over [begin, end). */
    virtual void linkRetrain(const Link &, Tick begin, Tick end) {}

    // -- Link instants -----------------------------------------------------

    /** A manager applied a new (bandwidth, ROO) operating point. */
    virtual void linkModeChange(const Link &, Tick now, std::size_t bw_idx,
                                std::size_t roo_idx)
    {
    }

    /** The usable width permanently dropped to @p lanes. */
    virtual void linkDegrade(const Link &, Tick now, int lanes) {}

    /** A CRC-corrupted packet was NAKed for retransmission. */
    virtual void linkRetry(const Link &, Tick now) {}

    /**
     * The link's cumulative stall attribution advanced (a wake or
     * retrain finished); the sink reads wakeStallSeconds /
     * retrainStallSeconds from Link::stats(). Exported as Perfetto
     * counter tracks by the Chrome trace writer.
     */
    virtual void linkStall(const Link &, Tick now) {}

    /** The waiting queue reached a new high-water @p depth. */
    virtual void linkQueueDepth(const Link &, Tick now, std::size_t depth)
    {
    }

    // -- Network-level events ----------------------------------------------

    /** A packet completed its network lifetime over [inject, deliver). */
    virtual void packetLife(const Packet &, Tick inject, Tick deliver) {}

    /** The fault injector acted on @p module ("retrain", "lane_fail",
     *  "error_burst", "error_clear"). */
    virtual void faultEvent(const char *kind, int module, Tick now) {}
};

} // namespace memnet

#endif // MEMNET_NET_POWER_TRACE_HH
