#include "net/topology.hh"

#include <algorithm>

#include "sim/log.hh"

namespace memnet
{

const char *
topologyName(TopologyKind k)
{
    switch (k) {
      case TopologyKind::DaisyChain:
        return "daisychain";
      case TopologyKind::TernaryTree:
        return "ternary tree";
      case TopologyKind::Star:
        return "star";
      case TopologyKind::DdrxLike:
        return "DDRx-like";
    }
    return "?";
}

namespace
{

/** Downstream link budget for a radix class (one link goes upstream). */
int
downstreamCapacity(Radix r)
{
    return r == Radix::High ? 3 : 1;
}

} // namespace

Topology
Topology::build(TopologyKind kind, int n)
{
    if (n < 1)
        memnet_fatal("topology needs at least one module");

    Topology t;
    t.kind_ = kind;
    t.parent_.assign(n, -1);

    switch (kind) {
      case TopologyKind::DaisyChain:
        for (int i = 1; i < n; ++i)
            t.parent_[i] = i - 1;
        t.radix_.assign(n, Radix::Low);
        break;

      case TopologyKind::TernaryTree:
        // Breadth-first, branching factor 3, all high radix.
        for (int i = 1; i < n; ++i)
            t.parent_[i] = (i - 1) / 3;
        t.radix_.assign(n, Radix::High);
        break;

      case TopologyKind::Star:
        // Same minimal-depth shape as the ternary tree, but modules are
        // promoted to high radix only when they need >= 2 downstream
        // links; rings of equidistant modules are mostly low radix.
        for (int i = 1; i < n; ++i)
            t.parent_[i] = (i - 1) / 3;
        t.radix_.assign(n, Radix::Low);
        break;

      case TopologyKind::DdrxLike:
        // Rows of three: center (high radix) + two sides; centers chain.
        for (int i = 1; i < n; ++i) {
            const int row = i / 3;
            if (i % 3 == 0) {
                t.parent_[i] = 3 * (row - 1); // previous row's center
            } else {
                t.parent_[i] = 3 * row; // own row's center
            }
        }
        t.radix_.assign(n, Radix::Low);
        break;
    }

    t.finalize();
    return t;
}

void
Topology::finalize()
{
    const int n = numModules();
    children_.assign(n, {});
    for (int i = 1; i < n; ++i) {
        memnet_assert(parent_[i] >= 0 && parent_[i] < i,
                      "parent must precede child");
        children_[parent_[i]].push_back(i);
    }

    // Radix promotion for mixed topologies: any module that needs two or
    // more downstream links must be high radix.
    if (kind_ == TopologyKind::Star || kind_ == TopologyKind::DdrxLike) {
        for (int i = 0; i < n; ++i) {
            if (static_cast<int>(children_[i].size()) >= 2)
                radix_[i] = Radix::High;
        }
    }

    depth_.assign(n, 0);
    paths_.assign(n, {});
    for (int i = 0; i < n; ++i) {
        depth_[i] = (i == 0) ? 1 : depth_[parent_[i]] + 1;
        if (i == 0) {
            paths_[i] = {0};
        } else {
            paths_[i] = paths_[parent_[i]];
            paths_[i].push_back(i);
        }
    }
}

std::vector<int>
Topology::modulesPerHop() const
{
    int max_d = 0;
    for (int d : depth_)
        max_d = std::max(max_d, d);
    std::vector<int> s(max_d + 1, 0);
    for (int d : depth_)
        ++s[d];
    return s;
}

void
Topology::validate() const
{
    const int n = numModules();
    memnet_assert(n >= 1, "empty topology");
    memnet_assert(parent_[0] == -1, "module 0 must attach the processor");
    for (int i = 1; i < n; ++i) {
        memnet_assert(parent_[i] >= 0 && parent_[i] < n, "bad parent");
        memnet_assert(depth_[i] == depth_[parent_[i]] + 1,
                      "depth inconsistent at module ", i);
    }
    for (int i = 0; i < n; ++i) {
        const int cap = downstreamCapacity(radix_[i]);
        memnet_assert(static_cast<int>(children_[i].size()) <= cap,
                      "module ", i, " exceeds its link budget");
        memnet_assert(paths_[i].front() == 0 && paths_[i].back() == i,
                      "bad path for module ", i);
        memnet_assert(static_cast<int>(paths_[i].size()) == depth_[i],
                      "path length != depth for module ", i);
    }
}

} // namespace memnet
