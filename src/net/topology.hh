/**
 * @file
 * Minimally connected memory network topologies (Section III-A).
 *
 * A topology is a tree rooted at the processor: module 0 attaches to the
 * processor's channel, every other module attaches to exactly one parent
 * module. Four shapes are provided:
 *
 *  - DaisyChain: a chain of low-radix modules.
 *  - TernaryTree: breadth-first tree with branching factor 3; every
 *    module is high-radix (four full links).
 *  - Star: the same breadth-first shape, but a module is high-radix only
 *    if it needs two or more downstream links ("rings" of equidistant,
 *    mostly low-radix modules; see DESIGN.md for the interpretation).
 *  - DdrxLike: rows of three modules — a high-radix row center with two
 *    low-radix side modules; centers chain to the next row.
 *
 * Module numbering matters: the evaluation maps the i-th contiguous
 * address chunk to module i, so numbering determines which modules are
 * hot. Numbering follows each builder's natural growth order (chain
 * order, BFS order, row order), mirroring Figure 3.
 */

#ifndef MEMNET_NET_TOPOLOGY_HH
#define MEMNET_NET_TOPOLOGY_HH

#include <string>
#include <vector>

#include "power/hmc_power_model.hh"

namespace memnet
{

enum class TopologyKind
{
    DaisyChain,
    TernaryTree,
    Star,
    DdrxLike,
};

const char *topologyName(TopologyKind k);

/** Static description of a built network shape. */
class Topology
{
  public:
    /** Build a topology of @p n modules (n >= 1). */
    static Topology build(TopologyKind kind, int n);

    int numModules() const { return static_cast<int>(parent_.size()); }

    /** Parent module id; -1 for module 0 (attached to the processor). */
    int parent(int m) const { return parent_[m]; }

    const std::vector<int> &children(int m) const { return children_[m]; }

    /** Hop distance from the processor (module 0 is 1). */
    int hopDistance(int m) const { return depth_[m]; }

    Radix radix(int m) const { return radix_[m]; }

    TopologyKind kind() const { return kind_; }

    /**
     * Modules along the route processor -> m, starting with module 0 and
     * ending with m itself.
     */
    const std::vector<int> &path(int m) const { return paths_[m]; }

    /** Count of modules at each hop distance (index 0 unused). */
    std::vector<int> modulesPerHop() const;

    /**
     * Validate the minimally-connected invariants: a single tree rooted
     * at module 0, radix link budgets respected, depths consistent.
     * Panics on violation (used by tests).
     */
    void validate() const;

  private:
    Topology() = default;

    void finalize();

    TopologyKind kind_ = TopologyKind::DaisyChain;
    std::vector<int> parent_;
    std::vector<std::vector<int>> children_;
    std::vector<int> depth_;
    std::vector<Radix> radix_;
    std::vector<std::vector<int>> paths_;
};

} // namespace memnet

#endif // MEMNET_NET_TOPOLOGY_HH
