#include "obs/chrome_trace.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "net/link.hh"
#include "net/packet.hh"
#include "obs/json.hh"
#include "sim/log.hh"

namespace memnet
{
namespace obs
{

ChromeTraceWriter::ChromeTraceWriter(std::size_t max_events)
    : maxEvents(max_events)
{
    tidNames[kMgmtTid] = "mgmt";
    tidNames[kFaultTid] = "faults";
    tidNames[kPacketTid] = "packets";
}

double
ChromeTraceWriter::toUs(Tick t)
{
    // Tick is integer picoseconds; the trace format wants microseconds.
    return static_cast<double>(t) * 1e-6;
}

int
ChromeTraceWriter::tidFor(const Link &l)
{
    const int tid = l.id();
    auto it = tidNames.find(tid);
    if (it == tidNames.end()) {
        std::ostringstream os;
        os << "link" << l.id()
           << (l.type() == LinkType::Request ? " req m" : " resp m")
           << l.module();
        tidNames.emplace(tid, os.str());
    }
    return tid;
}

bool
ChromeTraceWriter::admit()
{
    if (buf.size() >= maxEvents) {
        ++nDropped;
        return false;
    }
    return true;
}

void
ChromeTraceWriter::span(int tid, const char *cat, std::string name,
                        Tick begin, Tick end, std::string args)
{
    if (!admit())
        return;
    buf.push_back(TraceEvent{toUs(begin), toUs(end - begin), 'X', tid,
                             std::move(name), cat, std::move(args)});
}

void
ChromeTraceWriter::instant(int tid, const char *cat, std::string name,
                           Tick now, std::string args)
{
    if (!admit())
        return;
    buf.push_back(TraceEvent{toUs(now), 0.0, 'i', tid, std::move(name),
                             cat, std::move(args)});
}

void
ChromeTraceWriter::linkTx(const Link &l, Tick begin, Tick end, int flits)
{
    std::ostringstream args;
    args << "{\"flits\":" << flits << "}";
    span(tidFor(l), "link", "tx", begin, end, args.str());
}

void
ChromeTraceWriter::linkOff(const Link &l, Tick begin, Tick end)
{
    span(tidFor(l), "link", "off", begin, end);
}

void
ChromeTraceWriter::linkWake(const Link &l, Tick begin, Tick end)
{
    span(tidFor(l), "link", "wake", begin, end);
}

void
ChromeTraceWriter::linkRetrain(const Link &l, Tick begin, Tick end)
{
    span(tidFor(l), "fault", "retrain", begin, end);
}

void
ChromeTraceWriter::linkModeChange(const Link &l, Tick now,
                                  std::size_t bw_idx, std::size_t roo_idx)
{
    std::ostringstream args;
    args << "{\"bw\":" << bw_idx << ",\"roo\":" << roo_idx << "}";
    instant(tidFor(l), "mgmt", "mode", now, args.str());
}

void
ChromeTraceWriter::linkDegrade(const Link &l, Tick now, int lanes)
{
    std::ostringstream args;
    args << "{\"lanes\":" << lanes << "}";
    instant(tidFor(l), "fault", "degrade", now, args.str());
}

void
ChromeTraceWriter::linkRetry(const Link &l, Tick now)
{
    instant(tidFor(l), "fault", "crc_retry", now);
}

void
ChromeTraceWriter::packetLife(const Packet &pkt, Tick inject, Tick deliver)
{
    std::ostringstream args;
    args << "{\"id\":" << pkt.id << ",\"module\":" << pkt.homeModule
         << "}";
    span(kPacketTid, "packet",
         pkt.type == PacketType::WriteReq ? "write" : "read", inject,
         deliver, args.str());
}

void
ChromeTraceWriter::faultEvent(const char *kind, int link_id, Tick now)
{
    std::ostringstream args;
    args << "{\"link\":" << link_id << "}";
    instant(kFaultTid, "fault", kind, now, args.str());
}

void
ChromeTraceWriter::epochMarker(Tick now, std::uint64_t epoch)
{
    std::ostringstream args;
    args << "{\"epoch\":" << epoch << "}";
    instant(kMgmtTid, "mgmt", "epoch", now, args.str());
}

void
ChromeTraceWriter::violation(int link_id, Tick now)
{
    std::ostringstream args;
    args << "{\"link\":" << link_id << "}";
    instant(kMgmtTid, "mgmt", "ams_violation", now, args.str());
}

void
ChromeTraceWriter::writeTo(std::ostream &os)
{
    if (nDropped) {
        memnet_warn("chrome trace dropped ", nDropped,
                    " events past the ", maxEvents, "-event cap");
    }
    // Span events are pushed at span end; a stable sort by start time
    // restores chronological order (ties keep emission order).
    std::stable_sort(buf.begin(), buf.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.tsUs < b.tsUs;
                     });

    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };
    // Thread-name metadata first, one per track.
    for (const auto &[tid, name] : tidNames) {
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
           << tid << ",\"args\":{\"name\":\"" << jsonEscape(name)
           << "\"}}";
    }
    char num[40];
    for (const TraceEvent &e : buf) {
        sep();
        os << "{\"name\":\"" << jsonEscape(e.name) << "\",\"cat\":\""
           << e.cat << "\",\"ph\":\"" << e.ph << "\",\"pid\":1,\"tid\":"
           << e.tid;
        std::snprintf(num, sizeof num, "%.6f", e.tsUs);
        os << ",\"ts\":" << num;
        if (e.ph == 'X') {
            std::snprintf(num, sizeof num, "%.6f", e.durUs);
            os << ",\"dur\":" << num;
        } else {
            os << ",\"s\":\"t\"";
        }
        if (!e.args.empty())
            os << ",\"args\":" << e.args;
        os << "}";
    }
    os << "],\"displayTimeUnit\":\"ms\"}\n";
}

} // namespace obs
} // namespace memnet
