#include "obs/chrome_trace.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "net/link.hh"
#include "net/packet.hh"
#include "obs/json.hh"
#include "sim/log.hh"

namespace memnet
{
namespace obs
{

ChromeTraceWriter::ChromeTraceWriter(std::size_t max_events)
    : maxEvents(max_events)
{
    pidNames[kSimPid] = "sim";
    tidNames[kMgmtTid] = {kSimPid, "mgmt"};
    tidNames[kFaultTid] = {kSimPid, "faults"};
    tidNames[kPacketTid] = {kSimPid, "packets"};
    tidNames[kEnergyTid] = {kSimPid, "energy"};
}

double
ChromeTraceWriter::toUs(Tick t)
{
    // Tick is integer picoseconds; the trace format wants microseconds.
    return static_cast<double>(t) * 1e-6;
}

int
ChromeTraceWriter::pidForLocked(const Link &l)
{
    const int pid = kModulePidBase + l.module();
    auto it = pidNames.find(pid);
    if (it == pidNames.end()) {
        std::ostringstream os;
        os << "module" << l.module();
        pidNames.emplace(pid, os.str());
    }
    return pid;
}

int
ChromeTraceWriter::pidFor(const Link &l)
{
    std::lock_guard<std::mutex> lock(mu);
    return pidForLocked(l);
}

int
ChromeTraceWriter::tidFor(const Link &l)
{
    std::lock_guard<std::mutex> lock(mu);
    const int tid = l.id();
    auto it = tidNames.find(tid);
    if (it == tidNames.end()) {
        std::ostringstream os;
        os << "link" << l.id()
           << (l.type() == LinkType::Request ? " req m" : " resp m")
           << l.module();
        tidNames.emplace(tid, TrackInfo{pidForLocked(l), os.str()});
    }
    return tid;
}

bool
ChromeTraceWriter::admit()
{
    if (buf.size() >= maxEvents) {
        ++nDropped;
        return false;
    }
    return true;
}

void
ChromeTraceWriter::span(int pid, int tid, const char *cat,
                        std::string name, Tick begin, Tick end,
                        std::string args)
{
    std::lock_guard<std::mutex> lock(mu);
    if (!admit())
        return;
    buf.push_back(TraceEvent{toUs(begin), toUs(end - begin), 'X', pid,
                             tid, std::move(name), cat,
                             std::move(args)});
}

void
ChromeTraceWriter::instant(int pid, int tid, const char *cat,
                           std::string name, Tick now, std::string args)
{
    std::lock_guard<std::mutex> lock(mu);
    if (!admit())
        return;
    buf.push_back(TraceEvent{toUs(now), 0.0, 'i', pid, tid,
                             std::move(name), cat, std::move(args)});
}

void
ChromeTraceWriter::counter(int pid, int tid, std::string name, Tick now,
                           std::string args)
{
    std::lock_guard<std::mutex> lock(mu);
    if (!admit())
        return;
    buf.push_back(TraceEvent{toUs(now), 0.0, 'C', pid, tid,
                             std::move(name), "lat", std::move(args)});
}

void
ChromeTraceWriter::linkTx(const Link &l, Tick begin, Tick end, int flits)
{
    std::ostringstream args;
    args << "{\"flits\":" << flits << "}";
    span(pidFor(l), tidFor(l), "link", "tx", begin, end, args.str());
}

void
ChromeTraceWriter::linkOff(const Link &l, Tick begin, Tick end)
{
    span(pidFor(l), tidFor(l), "link", "off", begin, end);
}

void
ChromeTraceWriter::linkWake(const Link &l, Tick begin, Tick end)
{
    span(pidFor(l), tidFor(l), "link", "wake", begin, end);
}

void
ChromeTraceWriter::linkRetrain(const Link &l, Tick begin, Tick end)
{
    span(pidFor(l), tidFor(l), "fault", "retrain", begin, end);
}

void
ChromeTraceWriter::linkModeChange(const Link &l, Tick now,
                                  std::size_t bw_idx, std::size_t roo_idx)
{
    std::ostringstream args;
    args << "{\"bw\":" << bw_idx << ",\"roo\":" << roo_idx << "}";
    instant(pidFor(l), tidFor(l), "mgmt", "mode", now, args.str());
}

void
ChromeTraceWriter::linkDegrade(const Link &l, Tick now, int lanes)
{
    std::ostringstream args;
    args << "{\"lanes\":" << lanes << "}";
    instant(pidFor(l), tidFor(l), "fault", "degrade", now, args.str());
}

void
ChromeTraceWriter::linkRetry(const Link &l, Tick now)
{
    instant(pidFor(l), tidFor(l), "fault", "crc_retry", now);
}

void
ChromeTraceWriter::linkStall(const Link &l, Tick now)
{
    // Cumulative stall attribution as a two-series counter track,
    // sampled whenever a wake or retrain completes (docs note: a step
    // graph, exact at sample points). Values are seconds.
    std::ostringstream name;
    name << "link" << l.id() << " stall_s";
    char wake[40], retrain[40];
    std::snprintf(wake, sizeof wake, "%.9f",
                  l.stats().wakeStallSeconds);
    std::snprintf(retrain, sizeof retrain, "%.9f",
                  l.stats().retrainStallSeconds);
    std::ostringstream args;
    args << "{\"wake\":" << wake << ",\"retrain\":" << retrain << "}";
    counter(pidFor(l), l.id(), name.str(), now, args.str());
}

void
ChromeTraceWriter::linkQueueDepth(const Link &l, Tick now,
                                  std::size_t depth)
{
    // Only high-water increases are reported (net/link.cc), so this
    // track stays tiny even on congested runs — it renders as the
    // queue-depth envelope, not the instantaneous depth.
    std::ostringstream name;
    name << "link" << l.id() << " queue_peak";
    std::ostringstream args;
    args << "{\"depth\":" << depth << "}";
    counter(pidFor(l), l.id(), name.str(), now, args.str());
}

void
ChromeTraceWriter::packetLife(const Packet &pkt, Tick inject, Tick deliver)
{
    std::ostringstream args;
    args << "{\"id\":" << pkt.id << ",\"module\":" << pkt.homeModule
         << "}";
    span(kSimPid, kPacketTid, "packet",
         pkt.type == PacketType::WriteReq ? "write" : "read", inject,
         deliver, args.str());
}

void
ChromeTraceWriter::faultEvent(const char *kind, int link_id, Tick now)
{
    std::ostringstream args;
    args << "{\"link\":" << link_id << "}";
    instant(kSimPid, kFaultTid, "fault", kind, now, args.str());
}

void
ChromeTraceWriter::epochMarker(Tick now, std::uint64_t epoch)
{
    std::ostringstream args;
    args << "{\"epoch\":" << epoch << "}";
    instant(kSimPid, kMgmtTid, "mgmt", "epoch", now, args.str());
}

void
ChromeTraceWriter::violation(int link_id, Tick now)
{
    std::ostringstream args;
    args << "{\"link\":" << link_id << "}";
    instant(kSimPid, kMgmtTid, "mgmt", "ams_violation", now, args.str());
}

void
ChromeTraceWriter::writeTo(std::ostream &os)
{
    if (nDropped) {
        memnet_warn("chrome trace dropped ", nDropped,
                    " events past the ", maxEvents, "-event cap");
    }
    // Span events are pushed at span end; a stable sort by start time
    // restores chronological order (ties keep emission order).
    std::stable_sort(buf.begin(), buf.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.tsUs < b.tsUs;
                     });

    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };
    // Process- and thread-name metadata first, so Perfetto groups link
    // tracks under their owning module's process.
    for (const auto &[pid, name] : pidNames) {
        sep();
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":0,\"args\":{\"name\":\"" << jsonEscape(name)
           << "\"}}";
    }
    for (const auto &[tid, info] : tidNames) {
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
           << info.pid << ",\"tid\":" << tid
           << ",\"args\":{\"name\":\"" << jsonEscape(info.name)
           << "\"}}";
    }
    char num[40];
    for (const TraceEvent &e : buf) {
        sep();
        os << "{\"name\":\"" << jsonEscape(e.name) << "\",\"cat\":\""
           << e.cat << "\",\"ph\":\"" << e.ph << "\",\"pid\":" << e.pid
           << ",\"tid\":" << e.tid;
        std::snprintf(num, sizeof num, "%.6f", e.tsUs);
        os << ",\"ts\":" << num;
        if (e.ph == 'X') {
            std::snprintf(num, sizeof num, "%.6f", e.durUs);
            os << ",\"dur\":" << num;
        } else if (e.ph == 'i') {
            os << ",\"s\":\"t\"";
        }
        if (!e.args.empty())
            os << ",\"args\":" << e.args;
        os << "}";
    }
    os << "],\"displayTimeUnit\":\"ms\"}\n";
}

} // namespace obs
} // namespace memnet
