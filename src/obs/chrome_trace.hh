/**
 * @file
 * Chrome trace-event exporter (chrome://tracing / Perfetto "JSON object
 * format": https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
 *
 * Implements the net layer's PowerTraceSink: link power-state spans
 * (tx / off / wake / retrain) become complete ('X') duration events on
 * one track per link, instants (mode changes, degrades, CRC retries,
 * fault injections, AMS violations, epoch boundaries) become instant
 * ('i') events. Packet lifetimes land on a shared "packets" track.
 * Stall attribution (latency observatory) is exported as counter ('C')
 * tracks: cumulative wake/retrain stall seconds and the waiting-queue
 * high-water per link. The energy observatory adds a sim-wide
 * "energy_w" counter track: per-cause average watts of each epoch,
 * rendered by Perfetto as a stacked area graph of where power went.
 *
 * Tracks are grouped by process: each link's track lives in the pid of
 * its owning module, and mgmt/faults/packets share a "sim" process —
 * process_name/thread_name metadata events make Perfetto render module
 * groups with human-readable names instead of raw tid integers.
 *
 * Timestamps are simulated time converted to the format's microseconds.
 * Events are buffered and stably sorted by timestamp before writing, so
 * the emitted traceEvents array is time-ordered even though span events
 * are reported at span end.
 *
 * Sink callbacks are thread-safe: a partitioned run (sim/partition.hh)
 * reports packet lifetimes from the host lane and link spans from
 * channel lanes concurrently, so the event buffer and track maps are
 * mutex-guarded. writeTo() is for after the run, on one thread.
 */

#ifndef MEMNET_OBS_CHROME_TRACE_HH
#define MEMNET_OBS_CHROME_TRACE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "net/power_trace.hh"

namespace memnet
{
namespace obs
{

class ChromeTraceWriter : public PowerTraceSink
{
  public:
    /** Track ids for non-link events. */
    static constexpr int kMgmtTid = 900;
    static constexpr int kFaultTid = 901;
    static constexpr int kPacketTid = 902;
    static constexpr int kEnergyTid = 903;

    /** Process id of the shared simulator-wide tracks. */
    static constexpr int kSimPid = 1;
    /** Module m's tracks live in process kModulePidBase + m. */
    static constexpr int kModulePidBase = 10;

    /** Default event-count cap; excess events are counted, not stored. */
    static constexpr std::size_t kDefaultMaxEvents = 2'000'000;

    explicit ChromeTraceWriter(
        std::size_t max_events = kDefaultMaxEvents);

    // -- PowerTraceSink ----------------------------------------------------

    void linkTx(const Link &l, Tick begin, Tick end, int flits) override;
    void linkOff(const Link &l, Tick begin, Tick end) override;
    void linkWake(const Link &l, Tick begin, Tick end) override;
    void linkRetrain(const Link &l, Tick begin, Tick end) override;
    void linkModeChange(const Link &l, Tick now, std::size_t bw_idx,
                        std::size_t roo_idx) override;
    void linkDegrade(const Link &l, Tick now, int lanes) override;
    void linkRetry(const Link &l, Tick now) override;
    void linkStall(const Link &l, Tick now) override;
    void linkQueueDepth(const Link &l, Tick now,
                        std::size_t depth) override;
    void packetLife(const Packet &pkt, Tick inject, Tick deliver) override;
    void faultEvent(const char *kind, int link_id, Tick now) override;

    // -- Management instants (called by ObsHub) ----------------------------

    void epochMarker(Tick now, std::uint64_t epoch);
    void violation(int link_id, Tick now);

    /**
     * One sample on the simulator-wide "energy_w" counter track: @p args
     * is a pre-rendered {"cause":watts,...} object with the epoch's
     * average power per attribution cause (see energy_observatory.cc).
     */
    void
    energyCounters(Tick now, std::string args)
    {
        counter(kSimPid, kEnergyTid, "energy_w", now, std::move(args));
    }

    // -- Output ------------------------------------------------------------

    std::size_t events() const { return buf.size(); }
    std::uint64_t dropped() const { return nDropped; }

    /** Sort buffered events by timestamp and write the whole trace. */
    void writeTo(std::ostream &os);

  private:
    struct TraceEvent
    {
        double tsUs;
        double durUs; ///< only for ph == 'X'
        char ph;      ///< 'X' complete, 'i' instant, 'C' counter
        int pid;
        int tid;
        std::string name;
        const char *cat;
        /** Pre-rendered args object text ("{...}"), may be empty. */
        std::string args;
    };

    /** Track registration: display name + owning process. */
    struct TrackInfo
    {
        int pid;
        std::string name;
    };

    static double toUs(Tick t);

    /** Register the link's track (and process) on first use. */
    int tidFor(const Link &l);
    /** The pid of the link's owning module (registers its name). */
    int pidFor(const Link &l);
    /** pidFor body; caller holds mu. */
    int pidForLocked(const Link &l);

    void span(int pid, int tid, const char *cat, std::string name,
              Tick begin, Tick end, std::string args = {});
    void instant(int pid, int tid, const char *cat, std::string name,
                 Tick now, std::string args = {});
    void counter(int pid, int tid, std::string name, Tick now,
                 std::string args);
    bool admit();

    /** Guards buf, tidNames, pidNames, nDropped (see file comment). */
    std::mutex mu;
    std::vector<TraceEvent> buf;
    std::map<int, TrackInfo> tidNames;
    std::map<int, std::string> pidNames;
    std::size_t maxEvents;
    std::uint64_t nDropped = 0;
};

} // namespace obs
} // namespace memnet

#endif // MEMNET_OBS_CHROME_TRACE_HH
