#include "obs/debug_trace.hh"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace memnet
{
namespace obs
{

namespace
{

const char *const kTraceCompNames[] = {
    "Sim", "Net", "LinkPM", "Mgmt", "ISP", "Workload",
};

static_assert(sizeof(kTraceCompNames) / sizeof(kTraceCompNames[0]) ==
                  static_cast<std::size_t>(TraceComp::NumComps),
              "trace component names out of sync");

/** Case-insensitive component lookup; -1 when unknown. */
int
compByName(const std::string &name)
{
    for (int i = 0; i < static_cast<int>(TraceComp::NumComps); ++i) {
        const char *n = kTraceCompNames[i];
        if (name.size() != std::strlen(n))
            continue;
        bool eq = true;
        for (std::size_t k = 0; k < name.size(); ++k) {
            if (std::tolower(static_cast<unsigned char>(name[k])) !=
                std::tolower(static_cast<unsigned char>(n[k]))) {
                eq = false;
                break;
            }
        }
        if (eq)
            return i;
    }
    return -1;
}

} // namespace

namespace detail
{

int traceLevels[static_cast<int>(TraceComp::NumComps)] = {};
bool traceEnvApplied = false;

bool
traceEnabledSlow(TraceComp c, int level)
{
    // First trace point reached: apply $MEMNET_TRACE exactly once
    // (unless setTraceSpec() already configured us explicitly).
    traceEnvApplied = true;
    if (const char *env = std::getenv("MEMNET_TRACE"))
        setTraceSpec(env);
    return traceLevels[static_cast<int>(c)] >= level;
}

void
traceEmit(TraceComp c, const std::string &msg)
{
    ::memnet::detail::logLine(LogLevel::Trace,
                              std::string(traceCompName(c)) + ": " + msg);
}

} // namespace detail

const char *
traceCompName(TraceComp c)
{
    return kTraceCompNames[static_cast<int>(c)];
}

int
traceVerbosity(TraceComp c)
{
    return detail::traceLevels[static_cast<int>(c)];
}

void
setTraceSpec(const std::string &spec)
{
    // Explicit configuration wins over (and suppresses) the env var.
    detail::traceEnvApplied = true;
    for (int &l : detail::traceLevels)
        l = 0;

    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;

        int level = 1;
        const std::size_t colon = item.find(':');
        if (colon != std::string::npos) {
            level = std::atoi(item.c_str() + colon + 1);
            item.resize(colon);
        }
        if (level < 0)
            level = 0;

        if (item == "all" || item == "ALL" || item == "All") {
            for (int &l : detail::traceLevels)
                l = level;
            continue;
        }
        const int c = compByName(item);
        if (c < 0) {
            memnet_warn("unknown trace component '", item,
                        "' in trace spec (known: Sim, Net, LinkPM, "
                        "Mgmt, ISP, Workload, all)");
            continue;
        }
        detail::traceLevels[c] = level;
    }
}

} // namespace obs
} // namespace memnet
