#include "obs/debug_trace.hh"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace memnet
{
namespace obs
{

namespace
{

const char *const kTraceCompNames[] = {
    "Sim", "Net", "LinkPM", "Mgmt", "ISP", "Workload",
};

static_assert(sizeof(kTraceCompNames) / sizeof(kTraceCompNames[0]) ==
                  static_cast<std::size_t>(TraceComp::NumComps),
              "trace component names out of sync");

/** Case-insensitive component lookup; -1 when unknown. */
int
compByName(const std::string &name)
{
    for (int i = 0; i < static_cast<int>(TraceComp::NumComps); ++i) {
        const char *n = kTraceCompNames[i];
        if (name.size() != std::strlen(n))
            continue;
        bool eq = true;
        for (std::size_t k = 0; k < name.size(); ++k) {
            if (std::tolower(static_cast<unsigned char>(name[k])) !=
                std::tolower(static_cast<unsigned char>(n[k]))) {
                eq = false;
                break;
            }
        }
        if (eq)
            return i;
    }
    return -1;
}

/** Guards the one-time env application and spec rewrites. */
std::mutex &
traceConfigMutex()
{
    static std::mutex m;
    return m;
}

/** Parse and apply a spec; caller holds traceConfigMutex(). */
void
applySpecLocked(const std::string &spec)
{
    for (auto &l : detail::traceLevels)
        l.store(0, std::memory_order_relaxed);

    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;

        int level = 1;
        const std::size_t colon = item.find(':');
        if (colon != std::string::npos) {
            level = std::atoi(item.c_str() + colon + 1);
            item.resize(colon);
        }
        if (level < 0)
            level = 0;

        if (item == "all" || item == "ALL" || item == "All") {
            for (auto &l : detail::traceLevels)
                l.store(level, std::memory_order_relaxed);
            continue;
        }
        const int c = compByName(item);
        if (c < 0) {
            memnet_warn("unknown trace component '", item,
                        "' in trace spec (known: Sim, Net, LinkPM, "
                        "Mgmt, ISP, Workload, all)");
            continue;
        }
        detail::traceLevels[c].store(level, std::memory_order_relaxed);
    }
}

} // namespace

namespace detail
{

std::atomic<int> traceLevels[static_cast<int>(TraceComp::NumComps)] = {};
std::atomic<bool> traceEnvApplied{false};

bool
traceEnabledSlow(TraceComp c, int level)
{
    // First trace point reached: apply $MEMNET_TRACE exactly once
    // (unless setTraceSpec() already configured us explicitly). The
    // mutex makes concurrent first trace points from parallel sweep
    // workers apply the env exactly once.
    {
        std::lock_guard<std::mutex> lock(traceConfigMutex());
        if (!traceEnvApplied.load(std::memory_order_relaxed)) {
            if (const char *env = std::getenv("MEMNET_TRACE"))
                applySpecLocked(env);
            traceEnvApplied.store(true, std::memory_order_release);
        }
    }
    return traceLevels[static_cast<int>(c)].load(
               std::memory_order_relaxed) >= level;
}

void
traceEmit(TraceComp c, const std::string &msg)
{
    ::memnet::detail::logLine(LogLevel::Trace,
                              std::string(traceCompName(c)) + ": " + msg);
}

} // namespace detail

const char *
traceCompName(TraceComp c)
{
    return kTraceCompNames[static_cast<int>(c)];
}

int
traceVerbosity(TraceComp c)
{
    return detail::traceLevels[static_cast<int>(c)].load(
        std::memory_order_relaxed);
}

void
setTraceSpec(const std::string &spec)
{
    // Explicit configuration wins over (and suppresses) the env var.
    std::lock_guard<std::mutex> lock(traceConfigMutex());
    detail::traceEnvApplied.store(true, std::memory_order_release);
    applySpecLocked(spec);
}

} // namespace obs
} // namespace memnet
