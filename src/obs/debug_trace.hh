/**
 * @file
 * Component-scoped debug tracing (gem5 DPRINTF-style), layered on the
 * sim/log backend.
 *
 *   MEMNET_TRACE(LinkPM, "link ", id, " slept after ", idle, " ps");
 *   MEMNET_TRACE_V(ISP, 2, "scatter pcs=", pcs);   // verbosity >= 2
 *
 * Filtering is runtime-configurable per component with a verbosity
 * level, via the MEMNET_TRACE environment variable or setTraceSpec():
 *
 *   MEMNET_TRACE="LinkPM"          LinkPM at verbosity 1
 *   MEMNET_TRACE="LinkPM:2,ISP"    LinkPM at 2, ISP at 1
 *   MEMNET_TRACE="all:2"           everything at verbosity 2
 *
 * Output goes through the log sink (see sim/log.hh), so the test
 * harness can capture trace lines like warnings.
 *
 * Cost: a disabled trace point is one relaxed global-array load and a
 * compare; message formatting only happens when the point is enabled.
 * Compiling with -DMEMNET_DEBUG_TRACE=0 removes trace points entirely
 * (release/perf builds); the default build keeps them.
 *
 * This file is part of the observability subsystem (src/obs) but is
 * compiled into the base sim library so that net/, mgmt/, and sim/
 * itself can trace without a dependency cycle.
 */

#ifndef MEMNET_OBS_DEBUG_TRACE_HH
#define MEMNET_OBS_DEBUG_TRACE_HH

#include <atomic>

#include "sim/log.hh"

#ifndef MEMNET_DEBUG_TRACE
#define MEMNET_DEBUG_TRACE 1
#endif

namespace memnet
{
namespace obs
{

/** Traceable components. Keep kTraceCompNames in sync. */
enum class TraceComp : int
{
    Sim,      ///< event queue, fault injector, run phases
    Net,      ///< network routing, modules
    LinkPM,   ///< link power state: sleep/wake/mode/retrain
    Mgmt,     ///< epoch machinery, violations
    ISP,      ///< iterative slowdown propagation detail
    Workload, ///< processor / trace replay
    NumComps,
};

/** Component name as used in trace specs and output prefixes. */
const char *traceCompName(TraceComp c);

/**
 * Configure filtering from a spec string ("LinkPM:2,ISP" or "all").
 * Unknown component names are reported with memnet_warn and skipped.
 * An empty spec disables everything.
 */
void setTraceSpec(const std::string &spec);

/** Current verbosity of @p c (0 = disabled). */
int traceVerbosity(TraceComp c);

namespace detail
{

/** Lazily applies $MEMNET_TRACE once, then answers the level check. */
bool traceEnabledSlow(TraceComp c, int level);

/**
 * Levels are atomics so parallel sweep workers can hit trace points
 * while another thread performs the one-time $MEMNET_TRACE application
 * (or a harness flips a component) without a data race; the disabled
 * fast path stays a single relaxed load.
 */
extern std::atomic<int> traceLevels[static_cast<int>(TraceComp::NumComps)];
extern std::atomic<bool> traceEnvApplied;

inline bool
traceEnabled(TraceComp c, int level)
{
    if (!traceEnvApplied.load(std::memory_order_acquire))
        return traceEnabledSlow(c, level);
    return traceLevels[static_cast<int>(c)].load(
               std::memory_order_relaxed) >= level;
}

void traceEmit(TraceComp c, const std::string &msg);

} // namespace detail

} // namespace obs
} // namespace memnet

#if MEMNET_DEBUG_TRACE

/** Trace at verbosity 1. */
#define MEMNET_TRACE(comp, ...)                                             \
    MEMNET_TRACE_V(comp, 1, __VA_ARGS__)

/** Trace at an explicit verbosity level. */
#define MEMNET_TRACE_V(comp, level, ...)                                    \
    do {                                                                    \
        if (::memnet::obs::detail::traceEnabled(                            \
                ::memnet::obs::TraceComp::comp, (level))) {                 \
            ::memnet::obs::detail::traceEmit(                               \
                ::memnet::obs::TraceComp::comp,                             \
                ::memnet::detail::formatMessage(__VA_ARGS__));              \
        }                                                                   \
    } while (0)

#else

#define MEMNET_TRACE(comp, ...)                                             \
    do {                                                                    \
    } while (0)
#define MEMNET_TRACE_V(comp, level, ...)                                    \
    do {                                                                    \
    } while (0)

#endif // MEMNET_DEBUG_TRACE

#endif // MEMNET_OBS_DEBUG_TRACE_HH
