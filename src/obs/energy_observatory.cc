/**
 * @file
 * Obs-side surface of the energy observatory: net.energy.* stat scopes
 * and the Chrome-trace counter-args renderer. The attribution ledger
 * itself is header-only (energy_observatory.hh) so the net layer can
 * fill it without linking this library.
 */

#include "obs/energy_observatory.hh"

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "net/network.hh"
#include "obs/stats_registry.hh"

namespace memnet
{
namespace obs
{

void
registerEnergyStats(StatsRegistry &reg, Network &net)
{
    // Dump-time cache: the registry evaluates every getter at the same
    // simulated instant, so materialize the attribution and the sketch
    // summaries once per distinct timestamp instead of once per stat
    // (the occupancy summary merges every per-link sketch).
    struct Cache
    {
        bool filled = false;
        Tick stamp = 0;
        EnergyAttribution a;
        LatencyPercentiles util;
        LatencyPercentiles occ;
    };
    auto cache = std::make_shared<Cache>();
    Network *n = &net;
    auto fill = [cache, n]() -> const Cache & {
        const Tick now = n->eventQueue().now();
        if (!cache->filled || cache->stamp != now) {
            cache->filled = true;
            cache->stamp = now;
            cache->a = n->energyAttribution(now);
            const EnergySketches s = n->collectEnergySketches(now);
            cache->util = summarizeSketch(s.utilization);
            cache->occ = summarizeSketch(s.occupancy);
        }
        return *cache;
    };

    auto e = reg.scope("net.energy.");
    struct Cause
    {
        const char *name;
        const char *desc;
        double (*get)(const EnergyAttribution &);
    };
    const Cause causes[] = {
        {"tx_j", "link serialization energy (J)",
         [](const EnergyAttribution &a) { return a.txJ; }},
        {"retrain_j", "link retrain-window energy (J)",
         [](const EnergyAttribution &a) { return a.retrainJ; }},
        {"idle_floor_j", "link static-floor energy, all modes (J)",
         [](const EnergyAttribution &a) { return a.idleFloorJ(); }},
        {"sleep_j", "link ROO off-state energy (J)",
         [](const EnergyAttribution &a) { return a.sleepJ; }},
        {"wake_j", "link wake-transition energy (J)",
         [](const EnergyAttribution &a) { return a.wakeJ; }},
        {"serdes_leak_j", "module SerDes+logic leakage (J)",
         [](const EnergyAttribution &a) { return a.serdesLeakJ; }},
        {"router_j", "module router dynamic energy (J)",
         [](const EnergyAttribution &a) { return a.routerJ; }},
        {"dram_leak_j", "module DRAM leakage (J)",
         [](const EnergyAttribution &a) { return a.dramLeakJ; }},
        {"dram_dyn_j", "module DRAM dynamic energy (J)",
         [](const EnergyAttribution &a) { return a.dramDynJ; }},
        {"idle_io_j", "coarse anchor: idle link I/O energy (J)",
         [](const EnergyAttribution &a) { return a.idleIoJ; }},
        {"active_io_j", "coarse anchor: active link I/O energy (J)",
         [](const EnergyAttribution &a) { return a.activeIoJ; }},
        {"total_j", "all attributed energy (J)",
         [](const EnergyAttribution &a) { return a.totalJ(); }},
    };
    for (const Cause &c : causes) {
        e.add(c.name, c.desc,
              [fill, get = c.get] { return get(fill().a); });
    }
    for (std::size_t i = 0; i < EnergyAttribution{}.idleModeJ.size();
         ++i) {
        std::ostringstream nm;
        nm << "idle_mode" << i << "_j";
        e.add(nm.str(),
              "static-floor energy at bandwidth-mode index " +
                  std::to_string(i) + " (J)",
              [fill, i] { return fill().a.idleModeJ[i]; });
    }

    // Congestion telemetry: percentile summaries of the per-link
    // utilization (ppm of full bandwidth) and enqueue-time queue-depth
    // distributions.
    struct Pct
    {
        const char *name;
        std::uint64_t LatencyPercentiles::*field;
    };
    const Pct pcts[] = {
        {"samples", &LatencyPercentiles::samples},
        {"p50", &LatencyPercentiles::p50Ps},
        {"p90", &LatencyPercentiles::p90Ps},
        {"p99", &LatencyPercentiles::p99Ps},
        {"p999", &LatencyPercentiles::p999Ps},
        {"max", &LatencyPercentiles::maxPs},
    };
    auto util = reg.scope("net.energy.util_ppm.");
    for (const Pct &p : pcts) {
        util.addInt(p.name,
                    std::string("per-link utilization (ppm) ") + p.name,
                    [fill, f = p.field] { return fill().util.*f; });
    }
    auto occ = reg.scope("net.energy.occupancy.");
    for (const Pct &p : pcts) {
        occ.addInt(p.name,
                   std::string("enqueue-time queue depth ") + p.name,
                   [fill, f = p.field] { return fill().occ.*f; });
    }
}

std::string
renderEnergyCounterArgs(const EnergyAttribution &cur,
                        const EnergyAttribution &prev,
                        double inv_seconds)
{
    char num[40];
    std::ostringstream os;
    os << '{';
    bool first = true;
    auto field = [&](const char *k, double cur_j, double prev_j) {
        std::snprintf(num, sizeof num, "%.9f",
                      (cur_j - prev_j) * inv_seconds);
        os << (first ? "\"" : ",\"") << k << "\":" << num;
        first = false;
    };
    field("tx", cur.txJ, prev.txJ);
    field("idle_floor", cur.idleFloorJ(), prev.idleFloorJ());
    field("sleep", cur.sleepJ, prev.sleepJ);
    field("wake", cur.wakeJ, prev.wakeJ);
    field("retrain", cur.retrainJ, prev.retrainJ);
    field("serdes_leak", cur.serdesLeakJ, prev.serdesLeakJ);
    field("router", cur.routerJ, prev.routerJ);
    field("dram_leak", cur.dramLeakJ, prev.dramLeakJ);
    field("dram_dyn", cur.dramDynJ, prev.dramDynJ);
    os << '}';
    return os.str();
}

} // namespace obs
} // namespace memnet
