/**
 * @file
 * Energy observatory: exact per-joule attribution and congestion
 * telemetry for the memory network.
 *
 * The latency observatory (quantile_sketch.hh) answers "where did each
 * picosecond of an access go"; this one answers "where did each joule
 * go" — which component (link I/O, SerDes/logic, router, DRAM), which
 * power state, and why (traffic vs. static floor vs. sleep/wake/retrain
 * transitions). It follows the same pattern:
 *
 *  - the underlying counters (LinkStats cause buckets, module activity
 *    counters) are always stamped — they ARE the simulator's energy
 *    ledger, not a parallel one;
 *  - `SystemConfig::energyObs` only gates the congestion sketches and
 *    the summaries, so obs-on vs. obs-off runs are bit-identical
 *    (test_differential) and the flag stays out of the Runner memo key;
 *  - rollups are fixed-footprint: one EnergyAttribution per scope
 *    (link -> module -> channel -> system) regardless of fabric size,
 *    plus two QuantileSketches for the per-link utilization/occupancy
 *    distributions, so thousands of links stay affordable;
 *  - merges (multichannel, partition lanes) are exact: attribution adds
 *    field-wise in channel order, sketches merge bucket-wise.
 *
 * Exactness contract (enforced by src/audit's "energy-attribution"
 * check and the CI differential tests): the attribution's coarse
 * anchors equal Network::collectEnergy's EnergyBreakdown bit-identically
 * because both are accumulated by the same expressions over the same
 * iteration order, and the cause buckets sum to the coarse anchors by
 * construction (LinkStats derives idleIoJ()/activeIoJ() from them).
 *
 * Header-only so the net layer can embed it without linking the obs
 * library; energy_observatory.cc holds only obs-side surface code
 * (stats registry scopes, Chrome-trace counters).
 */

#ifndef MEMNET_OBS_ENERGY_OBSERVATORY_HH
#define MEMNET_OBS_ENERGY_OBSERVATORY_HH

#include <array>
#include <cstdint>

#include "net/link.hh"
#include "obs/quantile_sketch.hh"
#include "power/hmc_power_model.hh"

namespace memnet
{
namespace obs
{

/**
 * Congestion telemetry sketches. Utilization holds one sample per link
 * per collection (parts-per-million of full bandwidth over the measure
 * window); occupancy holds the waiting-queue depth at every enqueue,
 * recorded by the link into a Network-owned per-link sketch (a link's
 * events all run on its home partition, so partitioned recording is
 * race-free and bit-identical to serial).
 */
struct EnergySketches
{
    QuantileSketch utilization;
    QuantileSketch occupancy;

    void
    reset()
    {
        utilization.reset();
        occupancy.reset();
    }

    void
    merge(const EnergySketches &o)
    {
        utilization.merge(o.utilization);
        occupancy.merge(o.occupancy);
    }
};

} // namespace obs

/**
 * The attribution ledger: every joule of a run filed under exactly one
 * cause, alongside the coarse idle/active anchors the rest of the
 * system reports. Field-wise addition is the exact merge.
 */
struct EnergyAttribution
{
    // -- Link I/O causes (sum == idleIoJ + activeIoJ exactly) ----------
    /** Serialization: lanes driving payload flits. */
    double txJ = 0.0;
    /** Retrain windows: training sequences at on-state power. */
    double retrainJ = 0.0;
    /** Static floor per bandwidth-mode index (on, idle, not waking). */
    std::array<double, 8> idleModeJ{};
    /** ROO off-state residual. */
    double sleepJ = 0.0;
    /** Wake transitions (Off -> On sequences). */
    double wakeJ = 0.0;

    // -- Module causes (mirror EnergyBreakdown's module fields) --------
    /** SerDes + logic-die leakage. */
    double serdesLeakJ = 0.0;
    /** Router/logic dynamic energy (per routed flit hop). */
    double routerJ = 0.0;
    /** DRAM die leakage. */
    double dramLeakJ = 0.0;
    /** DRAM activate/IO dynamic energy (per array access). */
    double dramDynJ = 0.0;

    // -- Coarse anchors ------------------------------------------------
    // Accumulated per link via LinkStats::idleIoJ()/activeIoJ() in
    // allLinks() order — the exact arithmetic Network::collectEnergy
    // performs, so these match the EnergyBreakdown bit-identically.
    double idleIoJ = 0.0;
    double activeIoJ = 0.0;

    /** Fold one link's ledger in (allLinks() order for exactness). */
    void
    addLink(const LinkStats &ls)
    {
        txJ += ls.txJ;
        retrainJ += ls.retrainJ;
        for (std::size_t i = 0; i < idleModeJ.size(); ++i)
            idleModeJ[i] += ls.idleFloorJ[i];
        sleepJ += ls.sleepJ;
        wakeJ += ls.wakeJ;
        idleIoJ += ls.idleIoJ();
        activeIoJ += ls.activeIoJ();
    }

    /** Fold one module's window terms in (module-index order). */
    void
    addModule(const ModuleEnergyTerms &t)
    {
        serdesLeakJ += t.logicLeakJ;
        routerJ += t.logicDynJ;
        dramLeakJ += t.dramLeakJ;
        dramDynJ += t.dramDynJ;
    }

    /** Idle-floor causes summed (canonical order, matches idleIoJ()). */
    double
    idleFloorJ() const
    {
        double floor = 0.0;
        for (double j : idleModeJ)
            floor += j;
        return floor;
    }

    /** Link I/O energy by cause. */
    double
    linkIoJ() const
    {
        return txJ + retrainJ + ((idleFloorJ() + sleepJ) + wakeJ);
    }

    /** Module energy by cause. */
    double
    moduleJ() const
    {
        return serdesLeakJ + routerJ + dramLeakJ + dramDynJ;
    }

    double totalJ() const { return linkIoJ() + moduleJ(); }

    /** Exact field-wise merge (multichannel: apply in channel order). */
    EnergyAttribution &
    operator+=(const EnergyAttribution &o)
    {
        txJ += o.txJ;
        retrainJ += o.retrainJ;
        for (std::size_t i = 0; i < idleModeJ.size(); ++i)
            idleModeJ[i] += o.idleModeJ[i];
        sleepJ += o.sleepJ;
        wakeJ += o.wakeJ;
        serdesLeakJ += o.serdesLeakJ;
        routerJ += o.routerJ;
        dramLeakJ += o.dramLeakJ;
        dramDynJ += o.dramDynJ;
        idleIoJ += o.idleIoJ;
        activeIoJ += o.activeIoJ;
        return *this;
    }
};

/**
 * RunResult's energy decomposition: the attribution ledger plus
 * percentile summaries of the congestion sketches. Deterministic, but
 * excluded from audit::diffRunResults like the latency breakdown
 * because the observatory may legitimately be off on one side.
 */
struct EnergySummary
{
    bool enabled = false;
    EnergyAttribution attribution;
    /** Per-link utilization distribution (ppm of full bandwidth). */
    LatencyPercentiles utilization;
    /** Waiting-queue depth distribution over all enqueues. */
    LatencyPercentiles occupancy;
};

inline EnergySummary
summarizeEnergy(const EnergyAttribution &a, const obs::EnergySketches &s)
{
    EnergySummary e;
    e.enabled = true;
    e.attribution = a;
    e.utilization = summarizeSketch(s.utilization);
    e.occupancy = summarizeSketch(s.occupancy);
    return e;
}

class Network;

namespace obs
{

class StatsRegistry;

/**
 * Register the net.energy.* stat scopes (system-level cause rollups
 * plus the congestion-sketch percentiles). Caller gates on
 * Network::energyEnabled(); values are materialized at dump time.
 * Implemented in energy_observatory.cc (obs library).
 */
void registerEnergyStats(StatsRegistry &reg, Network &net);

/**
 * Render the Chrome-trace counter args for one epoch: average watts
 * per attribution cause over the window between @p prev and @p cur,
 * where @p inv_seconds is 1 / window length (0 renders zeros).
 */
std::string renderEnergyCounterArgs(const EnergyAttribution &cur,
                                    const EnergyAttribution &prev,
                                    double inv_seconds);

} // namespace obs

} // namespace memnet

#endif // MEMNET_OBS_ENERGY_OBSERVATORY_HH
