#include "obs/epoch_recorder.hh"

#include "mgmt/manager.hh"
#include "obs/json.hh"

namespace memnet
{
namespace obs
{

EpochRecorder::EpochRecorder(std::ostream &os, Network &net)
    : os(os), net(net)
{
    snapshot(net.eventQueue().now());
}

void
EpochRecorder::snapshot(Tick now)
{
    lastTick = now;
    lastEnergy = net.collectEnergy(now);
    lastAttr = net.energyAttribution(now);
    lastLink.clear();
    for (Link *l : net.allLinks())
        lastLink.push_back(l->stats());
    lastLat = net.latencySketches();
}

void
EpochRecorder::onMeasureStart(Tick now)
{
    // The network's cumulative counters were just reset; any diff
    // against pre-reset snapshots would go negative.
    snapshot(now);
    lastViolations = 0;
}

void
EpochRecorder::onEpoch(PowerManager &pm, Tick now)
{
    const double dt = toSeconds(now - lastTick);
    const EnergyBreakdown e = net.collectEnergy(now);
    const std::vector<Link *> links = net.allLinks();
    const int n = net.numModules();

    JsonWriter w(os);
    w.beginObject();
    w.field("v", static_cast<std::int64_t>(kSchemaVersion));
    w.field("epoch", static_cast<std::uint64_t>(pm.epochs()));
    w.field("t_ps", static_cast<std::int64_t>(now));

    const double inv = dt > 0.0 ? 1.0 / dt : 0.0;
    w.key("power_w");
    w.beginObject();
    w.field("idle_io", (e.idleIoJ - lastEnergy.idleIoJ) * inv);
    w.field("active_io", (e.activeIoJ - lastEnergy.activeIoJ) * inv);
    w.field("logic_leak", (e.logicLeakJ - lastEnergy.logicLeakJ) * inv);
    w.field("dram_leak", (e.dramLeakJ - lastEnergy.dramLeakJ) * inv);
    w.field("logic_dyn", (e.logicDynJ - lastEnergy.logicDynJ) * inv);
    w.field("dram_dyn", (e.dramDynJ - lastEnergy.dramDynJ) * inv);
    w.field("total", (e.totalJ() - lastEnergy.totalJ()) * inv);
    w.endObject();

    // Energy observatory (v3): average power per attribution cause,
    // from exact ledger deltas — splits power_w's idle_io/active_io by
    // why the joules were spent.
    const EnergyAttribution a = net.energyAttribution(now);
    w.key("energy_w");
    w.beginObject();
    w.field("tx", (a.txJ - lastAttr.txJ) * inv);
    w.field("retrain", (a.retrainJ - lastAttr.retrainJ) * inv);
    w.field("idle_floor",
            (a.idleFloorJ() - lastAttr.idleFloorJ()) * inv);
    w.field("sleep", (a.sleepJ - lastAttr.sleepJ) * inv);
    w.field("wake", (a.wakeJ - lastAttr.wakeJ) * inv);
    w.field("serdes_leak",
            (a.serdesLeakJ - lastAttr.serdesLeakJ) * inv);
    w.field("router", (a.routerJ - lastAttr.routerJ) * inv);
    w.field("dram_leak", (a.dramLeakJ - lastAttr.dramLeakJ) * inv);
    w.field("dram_dyn", (a.dramDynJ - lastAttr.dramDynJ) * inv);
    w.endObject();

    w.key("mgmt");
    w.beginObject();
    w.field("violations",
            static_cast<std::uint64_t>(pm.violations() - lastViolations));
    w.field("violations_total",
            static_cast<std::uint64_t>(pm.violations()));
    w.field("isp_rounds", static_cast<std::int64_t>(pm.lastIspRounds()));
    w.field("grant_pool_ps", pm.grantPoolRemaining());
    w.endObject();

    std::uint64_t d_retries = 0, d_replays = 0, d_retrains = 0;
    w.key("links");
    w.beginArray();
    for (std::size_t i = 0; i < links.size(); ++i) {
        const Link &l = *links[i];
        const LinkStats &cur = l.stats();
        const LinkStats &prev = lastLink[i];
        const int id = l.id();
        const LinkMgmtState &s = id < n
                                     ? pm.requestState(id)
                                     : pm.responseState(id - n);
        d_retries += cur.retries - prev.retries;
        d_replays += cur.replays - prev.replays;
        d_retrains += cur.retrains - prev.retrains;

        // Zero-activity elision (v3): a link that moved no flits and
        // had no fault, stall, or queue-peak movement this epoch is
        // omitted — on large mostly-idle fabrics this shrinks records
        // by orders of magnitude. Its static-floor energy is still in
        // the system power_w/energy_w blocks; consumers look entries
        // up by the "id" field, never by array position.
        const bool active =
            cur.flits != prev.flits || cur.packets != prev.packets ||
            cur.retries != prev.retries ||
            cur.replays != prev.replays ||
            cur.retrains != prev.retrains ||
            cur.wakeStallSeconds != prev.wakeStallSeconds ||
            cur.retrainStallSeconds != prev.retrainStallSeconds ||
            cur.queuePeak != prev.queuePeak;
        if (!active)
            continue;

        w.beginObject();
        w.field("id", static_cast<std::int64_t>(id));
        w.field("reads", s.lastEpochReads);
        w.field("actual_ps", s.lastActualPs);
        w.field("full_ps", s.lastFullPowerPs);
        w.field("ams_ps", s.amsPs);
        w.field("flo_ps", s.flo(s.selected));
        w.field("grants", static_cast<std::int64_t>(s.lastGrantsUsed));
        w.field("forced_fp", s.lastForcedFullPower);
        w.field("bw_mode", static_cast<std::uint64_t>(s.selected.bw));
        w.field("roo_mode", static_cast<std::uint64_t>(s.selected.roo));
        w.field("off_s", cur.offSeconds - prev.offSeconds);
        w.field("retrain_s",
                cur.retrainSeconds - prev.retrainSeconds);
        w.field("wake_stall_s",
                cur.wakeStallSeconds - prev.wakeStallSeconds);
        w.field("retrain_stall_s",
                cur.retrainStallSeconds - prev.retrainStallSeconds);
        // Cumulative high-water, not an epoch diff (a high-water mark
        // has no meaningful delta).
        w.field("queue_peak", cur.queuePeak);
        // Energy observatory (v3): this epoch's joules by cause,
        // exact deltas of the link's attribution buckets.
        w.key("energy_j");
        w.beginObject();
        w.field("tx", cur.txJ - prev.txJ);
        w.field("retrain", cur.retrainJ - prev.retrainJ);
        double d_floor = 0.0;
        for (std::size_t k = 0; k < cur.idleFloorJ.size(); ++k)
            d_floor += cur.idleFloorJ[k] - prev.idleFloorJ[k];
        w.field("idle_floor", d_floor);
        w.field("sleep", cur.sleepJ - prev.sleepJ);
        w.field("wake", cur.wakeJ - prev.wakeJ);
        w.endObject();
        w.key("mode_s");
        w.beginArray();
        for (std::size_t k = 0; k < cur.modeSeconds.size(); ++k)
            w.value(cur.modeSeconds[k] - prev.modeSeconds[k]);
        w.endArray();
        w.endObject();
    }
    w.endArray();

    w.key("faults");
    w.beginObject();
    w.field("retries", d_retries);
    w.field("replays", d_replays);
    w.field("retrains", d_retrains);
    w.endObject();

    // Latency observatory: exact sketch deltas for this epoch's reads.
    // Subtraction is bucket-wise, so the percentiles are those of the
    // epoch's own sample set (no running-average smearing); the exact
    // per-epoch max is not recoverable from a snapshot diff, so there
    // is deliberately no max_ps here.
    LatencySketches delta = net.latencySketches();
    delta.subtract(lastLat);
    w.key("lat");
    w.beginObject();
    w.field("samples", delta.endToEnd.samples());
    auto lat_component = [&w](const char *name,
                              const QuantileSketch &s) {
        w.key(name);
        w.beginObject();
        w.field("samples", s.samples());
        w.field("sum_ps", s.sum());
        w.field("p50_ps", s.quantile(0.50));
        w.field("p90_ps", s.quantile(0.90));
        w.field("p99_ps", s.quantile(0.99));
        w.field("p999_ps", s.quantile(0.999));
        w.endObject();
    };
    lat_component("end_to_end", delta.endToEnd);
    lat_component("queue", delta.queue);
    lat_component("wake_stall", delta.wakeStall);
    lat_component("retrain_stall", delta.retrainStall);
    lat_component("serialization", delta.ser);
    lat_component("dram", delta.dram);
    w.endObject();

    w.endObject();
    os << '\n';

    ++nRecords;
    lastTick = now;
    lastEnergy = e;
    lastAttr = a;
    for (std::size_t i = 0; i < links.size(); ++i)
        lastLink[i] = links[i]->stats();
    lastLat = net.latencySketches();
    lastViolations = pm.violations();
}

} // namespace obs
} // namespace memnet
