/**
 * @file
 * Per-epoch time-series recorder (JSONL).
 *
 * Rides the management epoch boundary (EpochObserver): at every epoch it
 * diffs the network's cumulative energy and per-link counters against
 * the previous boundary and appends one self-contained JSON object per
 * line. Runs under the FullPower policy have no epoch machinery and
 * therefore produce no records — epoch observability presumes a manager.
 *
 * The recorder only *reads* simulation state (energy collection is an
 * idempotent flush of piecewise-constant integration) and never
 * schedules events, so attaching it cannot change simulation results.
 *
 * Record schema (one line each, schema_version bumps on change):
 *   {"v":2,"epoch":N,"t_ps":T,
 *    "power_w":{"idle_io":..,"active_io":..,"logic_leak":..,
 *               "dram_leak":..,"logic_dyn":..,"dram_dyn":..,"total":..},
 *    "mgmt":{"violations":dN,"violations_total":N,"isp_rounds":r,
 *            "grant_pool_ps":g},
 *    "links":[{"id":i,"reads":n,"actual_ps":a,"full_ps":f,"ams_ps":b,
 *              "flo_ps":o,"grants":k,"forced_fp":bool,"bw_mode":m,
 *              "roo_mode":r,"off_s":s,"retrain_s":s,
 *              "wake_stall_s":s,"retrain_stall_s":s,"queue_peak":n,
 *              "mode_s":[...]},...],
 *    "faults":{"retries":dr,"replays":dp,"retrains":dt},
 *    "lat":{"samples":dn,
 *           "end_to_end":{"samples":dn,"sum_ps":ds,"p50_ps":..,
 *                         "p90_ps":..,"p99_ps":..,"p999_ps":..},
 *           "queue":{...},"wake_stall":{...},"retrain_stall":{...},
 *           "serialization":{...},"dram":{...}}}
 *
 * v2 (latency observatory): per-link wake_stall_s / retrain_stall_s
 * deltas, queue_peak (cumulative high-water, not diffed), and the
 * per-epoch "lat" object — exact sketch deltas, so the percentiles
 * describe only the reads completed in that epoch; the per-epoch max
 * is not derivable from a counter diff, hence no max_ps here. All
 * zero when the run disables the observatory.
 */

#ifndef MEMNET_OBS_EPOCH_RECORDER_HH
#define MEMNET_OBS_EPOCH_RECORDER_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "net/network.hh"
#include "power/power_breakdown.hh"

namespace memnet
{

class PowerManager;

namespace obs
{

class EpochRecorder
{
  public:
    /** Current record schema version (the "v" field). */
    static constexpr int kSchemaVersion = 2;

    EpochRecorder(std::ostream &os, Network &net);

    /**
     * Re-baseline the diffs at measurement start (the network's own
     * counters are reset there; our snapshots must follow).
     */
    void onMeasureStart(Tick now);

    /** Append one record for the epoch ending at @p now. */
    void onEpoch(PowerManager &pm, Tick now);

    std::uint64_t records() const { return nRecords; }

  private:
    void snapshot(Tick now);

    std::ostream &os;
    Network &net;

    Tick lastTick = 0;
    std::uint64_t lastViolations = 0;
    EnergyBreakdown lastEnergy;
    std::vector<LinkStats> lastLink;
    /** Sketch snapshot at the previous boundary (exact delta basis). */
    LatencySketches lastLat;
    std::uint64_t nRecords = 0;
};

} // namespace obs
} // namespace memnet

#endif // MEMNET_OBS_EPOCH_RECORDER_HH
