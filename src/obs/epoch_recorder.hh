/**
 * @file
 * Per-epoch time-series recorder (JSONL).
 *
 * Rides the management epoch boundary (EpochObserver): at every epoch it
 * diffs the network's cumulative energy and per-link counters against
 * the previous boundary and appends one self-contained JSON object per
 * line. Runs under the FullPower policy have no epoch machinery and
 * therefore produce no records — epoch observability presumes a manager.
 *
 * The recorder only *reads* simulation state (energy collection is an
 * idempotent flush of piecewise-constant integration) and never
 * schedules events, so attaching it cannot change simulation results.
 *
 * Record schema (one line each, schema_version bumps on change):
 *   {"v":3,"epoch":N,"t_ps":T,
 *    "power_w":{"idle_io":..,"active_io":..,"logic_leak":..,
 *               "dram_leak":..,"logic_dyn":..,"dram_dyn":..,"total":..},
 *    "energy_w":{"tx":..,"retrain":..,"idle_floor":..,"sleep":..,
 *                "wake":..,"serdes_leak":..,"router":..,
 *                "dram_leak":..,"dram_dyn":..},
 *    "mgmt":{"violations":dN,"violations_total":N,"isp_rounds":r,
 *            "grant_pool_ps":g},
 *    "links":[{"id":i,"reads":n,"actual_ps":a,"full_ps":f,"ams_ps":b,
 *              "flo_ps":o,"grants":k,"forced_fp":bool,"bw_mode":m,
 *              "roo_mode":r,"off_s":s,"retrain_s":s,
 *              "wake_stall_s":s,"retrain_stall_s":s,"queue_peak":n,
 *              "energy_j":{"tx":..,"retrain":..,"idle_floor":..,
 *                          "sleep":..,"wake":..},
 *              "mode_s":[...]},...],
 *    "faults":{"retries":dr,"replays":dp,"retrains":dt},
 *    "lat":{"samples":dn,
 *           "end_to_end":{"samples":dn,"sum_ps":ds,"p50_ps":..,
 *                         "p90_ps":..,"p99_ps":..,"p999_ps":..},
 *           "queue":{...},"wake_stall":{...},"retrain_stall":{...},
 *           "serialization":{...},"dram":{...}}}
 *
 * v2 (latency observatory): per-link wake_stall_s / retrain_stall_s
 * deltas, queue_peak (cumulative high-water, not diffed), and the
 * per-epoch "lat" object — exact sketch deltas, so the percentiles
 * describe only the reads completed in that epoch; the per-epoch max
 * is not derivable from a counter diff, hence no max_ps here. All
 * zero when the run disables the observatory.
 *
 * v3 (energy observatory): the system "energy_w" object (per-cause
 * average power from exact attribution-ledger deltas), the per-link
 * "energy_j" cause deltas, and zero-activity link elision — a link
 * with no traffic, fault, stall, or queue-peak movement in the epoch
 * is omitted from "links" entirely. Its static-floor energy is still
 * in the system blocks; loaders must look links up by "id" instead of
 * array position (which the id field has supported since v1, so v1/v2
 * readers that already do so parse v3 records unchanged).
 */

#ifndef MEMNET_OBS_EPOCH_RECORDER_HH
#define MEMNET_OBS_EPOCH_RECORDER_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "net/network.hh"
#include "power/power_breakdown.hh"

namespace memnet
{

class PowerManager;

namespace obs
{

class EpochRecorder
{
  public:
    /** Current record schema version (the "v" field). */
    static constexpr int kSchemaVersion = 3;

    EpochRecorder(std::ostream &os, Network &net);

    /**
     * Re-baseline the diffs at measurement start (the network's own
     * counters are reset there; our snapshots must follow).
     */
    void onMeasureStart(Tick now);

    /** Append one record for the epoch ending at @p now. */
    void onEpoch(PowerManager &pm, Tick now);

    std::uint64_t records() const { return nRecords; }

  private:
    void snapshot(Tick now);

    std::ostream &os;
    Network &net;

    Tick lastTick = 0;
    std::uint64_t lastViolations = 0;
    EnergyBreakdown lastEnergy;
    /** Attribution-ledger snapshot (exact per-cause delta basis). */
    EnergyAttribution lastAttr;
    std::vector<LinkStats> lastLink;
    /** Sketch snapshot at the previous boundary (exact delta basis). */
    LatencySketches lastLat;
    std::uint64_t nRecords = 0;
};

} // namespace obs
} // namespace memnet

#endif // MEMNET_OBS_EPOCH_RECORDER_HH
