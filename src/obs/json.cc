#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sim/log.hh"

namespace memnet
{
namespace obs
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
JsonWriter::separate()
{
    if (pendingKey) {
        pendingKey = false;
        return; // the key already emitted the comma and ':' follows it
    }
    if (!hasMember.empty() && hasMember.back())
        os << ',';
}

void
JsonWriter::noteValue()
{
    if (!hasMember.empty())
        hasMember.back() = true;
}

void
JsonWriter::beginObject()
{
    separate();
    os << '{';
    noteValue();
    hasMember.push_back(false);
}

void
JsonWriter::endObject()
{
    memnet_assert(!hasMember.empty(), "endObject without beginObject");
    hasMember.pop_back();
    os << '}';
}

void
JsonWriter::beginArray()
{
    separate();
    os << '[';
    noteValue();
    hasMember.push_back(false);
}

void
JsonWriter::endArray()
{
    memnet_assert(!hasMember.empty(), "endArray without beginArray");
    hasMember.pop_back();
    os << ']';
}

void
JsonWriter::key(const std::string &k)
{
    memnet_assert(!pendingKey, "two keys in a row");
    if (!hasMember.empty() && hasMember.back())
        os << ',';
    os << '"' << jsonEscape(k) << "\":";
    pendingKey = true;
}

void
JsonWriter::value(double v)
{
    separate();
    if (!std::isfinite(v)) {
        os << "null";
    } else {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", v);
        os << buf;
    }
    noteValue();
}

void
JsonWriter::value(std::int64_t v)
{
    separate();
    os << v;
    noteValue();
}

void
JsonWriter::value(std::uint64_t v)
{
    separate();
    os << v;
    noteValue();
}

void
JsonWriter::value(bool v)
{
    separate();
    os << (v ? "true" : "false");
    noteValue();
}

void
JsonWriter::value(const std::string &v)
{
    separate();
    os << '"' << jsonEscape(v) << '"';
    noteValue();
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::null()
{
    separate();
    os << "null";
    noteValue();
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

namespace json
{

namespace
{

struct Parser
{
    const char *p;
    const char *end;
    std::string err;

    bool
    fail(const std::string &msg)
    {
        if (err.empty())
            err = msg;
        return false;
    }

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r')) {
            ++p;
        }
    }

    bool
    literal(const char *lit)
    {
        const char *q = lit;
        const char *s = p;
        while (*q) {
            if (s >= end || *s != *q)
                return fail(std::string("expected '") + lit + "'");
            ++s;
            ++q;
        }
        p = s;
        return true;
    }

    bool
    parseString(std::string *out)
    {
        if (p >= end || *p != '"')
            return fail("expected string");
        ++p;
        out->clear();
        while (p < end && *p != '"') {
            char c = *p++;
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (p >= end)
                return fail("truncated escape");
            const char e = *p++;
            switch (e) {
              case '"':
                *out += '"';
                break;
              case '\\':
                *out += '\\';
                break;
              case '/':
                *out += '/';
                break;
              case 'b':
                *out += '\b';
                break;
              case 'f':
                *out += '\f';
                break;
              case 'n':
                *out += '\n';
                break;
              case 'r':
                *out += '\r';
                break;
              case 't':
                *out += '\t';
                break;
              case 'u': {
                if (end - p < 4)
                    return fail("truncated \\u escape");
                unsigned v = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = *p++;
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // Encode as UTF-8 (surrogate pairs are not recombined;
                // the writers never emit them).
                if (v < 0x80) {
                    *out += static_cast<char>(v);
                } else if (v < 0x800) {
                    *out += static_cast<char>(0xC0 | (v >> 6));
                    *out += static_cast<char>(0x80 | (v & 0x3F));
                } else {
                    *out += static_cast<char>(0xE0 | (v >> 12));
                    *out += static_cast<char>(0x80 | ((v >> 6) & 0x3F));
                    *out += static_cast<char>(0x80 | (v & 0x3F));
                }
                break;
              }
              default:
                return fail("bad escape");
            }
        }
        if (p >= end)
            return fail("unterminated string");
        ++p; // closing quote
        return true;
    }

    bool
    parseValue(Value *out)
    {
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        switch (*p) {
          case '{': {
            ++p;
            out->kind = Value::Kind::Object;
            skipWs();
            if (p < end && *p == '}') {
                ++p;
                return true;
            }
            while (true) {
                skipWs();
                std::string k;
                if (!parseString(&k))
                    return false;
                skipWs();
                if (p >= end || *p != ':')
                    return fail("expected ':'");
                ++p;
                Value v;
                if (!parseValue(&v))
                    return false;
                out->object.emplace(std::move(k), std::move(v));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == '}') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
          }
          case '[': {
            ++p;
            out->kind = Value::Kind::Array;
            skipWs();
            if (p < end && *p == ']') {
                ++p;
                return true;
            }
            while (true) {
                Value v;
                if (!parseValue(&v))
                    return false;
                out->array.push_back(std::move(v));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == ']') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
          }
          case '"':
            out->kind = Value::Kind::String;
            return parseString(&out->string);
          case 't':
            out->kind = Value::Kind::Bool;
            out->boolean = true;
            return literal("true");
          case 'f':
            out->kind = Value::Kind::Bool;
            out->boolean = false;
            return literal("false");
          case 'n':
            out->kind = Value::Kind::Null;
            return literal("null");
          default: {
            // Number.
            char *num_end = nullptr;
            const double v = std::strtod(p, &num_end);
            if (num_end == p || num_end > end)
                return fail("bad number");
            out->kind = Value::Kind::Number;
            out->number = v;
            p = num_end;
            return true;
          }
        }
    }
};

} // namespace

bool
parse(const std::string &text, Value *out, std::string *err)
{
    Parser ps{text.data(), text.data() + text.size(), {}};
    *out = Value{};
    bool ok = ps.parseValue(out);
    if (ok) {
        ps.skipWs();
        if (ps.p != ps.end)
            ok = ps.fail("trailing content after document");
    }
    if (!ok && err)
        *err = ps.err;
    return ok;
}

} // namespace json

} // namespace obs
} // namespace memnet
