/**
 * @file
 * Minimal JSON support for the observability layer.
 *
 * JsonWriter is a streaming emitter used by the stats registry, the
 * epoch recorder, the Chrome-trace exporter, and the bench --json
 * output; it never builds a DOM, so arbitrarily long time-series stream
 * straight to disk. The json::Value parser is the matching reader used
 * by tests and tools to round-trip what the writers produce — it is a
 * strict (no comments, no trailing commas) recursive-descent parser
 * over the JSON grammar, small enough to avoid any third-party
 * dependency.
 */

#ifndef MEMNET_OBS_JSON_HH
#define MEMNET_OBS_JSON_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace memnet
{
namespace obs
{

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

/**
 * Streaming JSON emitter. The caller provides the structure via
 * begin/end calls; the writer tracks nesting to place commas. Doubles
 * are written with round-trip precision; non-finite values become null
 * (JSON has no NaN/Inf).
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os(os) {}

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; the next value/begin call is its value. */
    void key(const std::string &k);

    void value(double v);
    void value(std::int64_t v);
    void value(std::uint64_t v);
    void value(bool v);
    void value(const std::string &v);
    void value(const char *v);
    void null();

    /** key(k) + value(v) in one call. */
    template <typename T>
    void
    field(const std::string &k, T v)
    {
        key(k);
        value(v);
    }

  private:
    /** Emit a comma if the current container already has a member. */
    void separate();
    /** A value was emitted into the current container. */
    void noteValue();

    std::ostream &os;
    /** One entry per open container: has it seen a member yet? */
    std::vector<bool> hasMember;
    /** A key was just written; the next value completes the pair. */
    bool pendingKey = false;
};

namespace json
{

/** Parsed JSON value (DOM), for tests and validators. */
struct Value
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::map<std::string, Value> object;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *
    find(const std::string &k) const
    {
        if (kind != Kind::Object)
            return nullptr;
        auto it = object.find(k);
        return it == object.end() ? nullptr : &it->second;
    }
};

/**
 * Parse one JSON document.
 * @param text the document; trailing whitespace is allowed, any other
 *        trailing content is an error.
 * @param out parsed value (valid only on success).
 * @param err optional: receives a one-line error description.
 * @return true on success.
 */
bool parse(const std::string &text, Value *out, std::string *err = nullptr);

} // namespace json

} // namespace obs
} // namespace memnet

#endif // MEMNET_OBS_JSON_HH
