#include "obs/obs.hh"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

#include "sim/log.hh"

namespace memnet
{
namespace obs
{

ObsHub::ObsHub(const ObsOptions &opts, Network &net, PowerManager *mgr,
               std::vector<EventQueue *> queues)
    : opts(opts), net(net), mgr(mgr), eqs(std::move(queues))
{
    if (eqs.empty())
        eqs.push_back(&net.eventQueue());
    if (!opts.chromeTracePath.empty()) {
        trace = std::make_unique<ChromeTraceWriter>();
        net.setTraceSink(trace.get());
    }
    if (!opts.epochJsonlPath.empty()) {
        if (!mgr) {
            memnet_warn("epoch recording requested but the ",
                        "policy has no epoch machinery; no records "
                        "will be produced");
        } else {
            epochFile.open(opts.epochJsonlPath);
            if (!epochFile) {
                memnet_warn("cannot open epoch JSONL path: ",
                            opts.epochJsonlPath);
            } else {
                rec = std::make_unique<EpochRecorder>(epochFile, net);
            }
        }
    }
    if (mgr && (rec || trace))
        mgr->addEpochObserver(this);
    registerStats();
}

ObsHub::~ObsHub()
{
    // The hub is destroyed before the network/manager it observes;
    // detach so no dangling sink survives it.
    if (trace)
        net.setTraceSink(nullptr);
    if (mgr)
        mgr->removeEpochObserver(this);
}

void
ObsHub::onMeasureStart(Tick now)
{
    if (rec)
        rec->onMeasureStart(now);
    // Re-baseline the energy-counter deltas: the network's ledgers
    // were just reset, so the previous attribution no longer applies.
    lastEnergy = EnergyAttribution{};
    lastEnergyTick = now;
}

void
ObsHub::onEpoch(PowerManager &pm, Tick now)
{
    if (rec)
        rec->onEpoch(pm, now);
    if (trace) {
        trace->epochMarker(now, pm.epochs());
        if (net.energyEnabled()) {
            const EnergyAttribution a = net.energyAttribution(now);
            const double secs = toSeconds(now - lastEnergyTick);
            trace->energyCounters(
                now, renderEnergyCounterArgs(a, lastEnergy,
                                             secs > 0.0 ? 1.0 / secs
                                                        : 0.0));
            lastEnergy = a;
            lastEnergyTick = now;
        }
    }
}

void
ObsHub::onViolation(PowerManager &pm, LinkMgmtState &s, Tick now)
{
    if (trace)
        trace->violation(s.link().id(), now);
}

void
ObsHub::registerStats()
{
    // sim.* / sim.eq.* aggregate across every event queue of the run:
    // one queue for the serial kernel, one per partition otherwise
    // (events summed, depths maxed), so dashboards read the same
    // counters whichever kernel produced them.
    const std::vector<EventQueue *> &qs = eqs;
    auto sim = reg.scope("sim.");
    sim.addInt("events_fired", "events executed so far", [&qs] {
        std::uint64_t n = 0;
        for (const EventQueue *q : qs)
            n += q->fired();
        return n;
    });
    sim.addInt("events_scheduled", "schedule() calls so far", [&qs] {
        std::uint64_t n = 0;
        for (const EventQueue *q : qs)
            n += q->scheduledTotal();
        return n;
    });
    sim.addInt("now_ps", "current simulated time (ps)", [&qs] {
        return static_cast<std::uint64_t>(qs.front()->now());
    });

    // Event-queue health: how deep the heap gets and how dispatch load
    // spreads over sim time. All simulation-determined (no wall clock).
    auto eqh = reg.scope("sim.eq.");
    eqh.addInt("events_descheduled", "deschedule() calls so far",
               [&qs] {
                   std::uint64_t n = 0;
                   for (const EventQueue *q : qs)
                       n += q->descheduledTotal();
                   return n;
               });
    eqh.addInt("peak_depth", "pending-event high-water mark (max "
                             "over partitions)",
               [&qs] {
                   std::uint64_t n = 0;
                   for (const EventQueue *q : qs)
                       n = std::max(n, q->peakPending());
                   return n;
               });
    eqh.addInt("pending", "events pending right now", [&qs] {
        std::uint64_t n = 0;
        for (const EventQueue *q : qs)
            n += q->pending();
        return n;
    });
    eqh.addInt("dispatch_window_ps", "dispatch-rate window length (ps)",
               [&qs] {
                   return static_cast<std::uint64_t>(
                       qs.front()->dispatchWindowPs());
               });
    eqh.addInt("dispatch_windows", "closed dispatch-rate windows",
               [&qs] {
                   std::size_t n = 0;
                   for (const EventQueue *q : qs)
                       n = std::max(n, q->dispatchWindows().size());
                   return n;
               });
    eqh.addInt("dispatch_window_max", "busiest window's event count "
                                      "(partitions summed per window)",
               [&qs] {
                   std::vector<std::uint64_t> sum;
                   for (const EventQueue *q : qs) {
                       const auto &w = q->dispatchWindows();
                       if (w.size() > sum.size())
                           sum.resize(w.size(), 0);
                       for (std::size_t i = 0; i < w.size(); ++i)
                           sum[i] += w[i];
                   }
                   return sum.empty()
                              ? std::uint64_t{0}
                              : *std::max_element(sum.begin(),
                                                  sum.end());
               });
    // Depth histogram, one stat per occupied power-of-two bucket.
    for (std::size_t b = 0; b < EventQueue::kDepthBuckets; ++b) {
        std::ostringstream nm;
        nm << "depth_hist_p2_" << b;
        eqh.addInt(nm.str(),
                   "dispatches with bit_width(pending) == " +
                       std::to_string(b),
                   [&qs, b] {
                       std::uint64_t n = 0;
                       for (const EventQueue *q : qs)
                           n += q->depthHistogram()[b];
                       return n;
                   });
    }
    // Per-partition lanes, only when there is more than one queue.
    if (qs.size() > 1) {
        for (std::size_t i = 0; i < qs.size(); ++i) {
            std::ostringstream sc;
            sc << "sim.eq.p" << i << ".";
            auto lane = reg.scope(sc.str());
            EventQueue *q = qs[i];
            lane.addInt("events_fired", "events this partition fired",
                        [q] { return q->fired(); });
            lane.addInt("peak_depth",
                        "this partition's pending high-water mark",
                        [q] { return q->peakPending(); });
        }
    }

    auto n = reg.scope("net.");
    n.addInt("injected_packets", "request packets injected",
             [this] { return net.injectedPackets(); });
    n.add("avg_modules_traversed", "mean modules per access",
          [this] { return net.avgModulesTraversed(); });

    // Latency observatory: per-component percentile stats over the
    // completed reads since reset. Integer picoseconds, deterministic;
    // empty sketches answer 0 with samples == 0.
    if (net.latencyEnabled()) {
        struct LatComponent
        {
            const char *name;
            const QuantileSketch *sketch;
        };
        const LatComponent comps[] = {
            {"end_to_end", &net.latencySketches().endToEnd},
            {"queue", &net.latencySketches().queue},
            {"wake_stall", &net.latencySketches().wakeStall},
            {"retrain_stall", &net.latencySketches().retrainStall},
            {"serialization", &net.latencySketches().ser},
            {"dram", &net.latencySketches().dram},
        };
        const std::pair<const char *, double> quantiles[] = {
            {"p50_ps", 0.50},
            {"p90_ps", 0.90},
            {"p99_ps", 0.99},
            {"p999_ps", 0.999},
        };
        for (const LatComponent &c : comps) {
            auto s = reg.scope(std::string("net.lat.") + c.name + '.');
            const QuantileSketch *sk = c.sketch;
            s.addInt("samples", "completed reads recorded",
                     [sk] { return sk->samples(); });
            s.addInt("sum_ps", "summed component latency (ps)",
                     [sk] { return sk->sum(); });
            s.addInt("max_ps", "maximum component latency (ps)",
                     [sk] { return sk->maxValue(); });
            for (const auto &q : quantiles) {
                s.addInt(q.first,
                         std::string("latency quantile ") + q.first,
                         [sk, qv = q.second] {
                             return sk->quantile(qv);
                         });
            }
        }
    }

    // Energy observatory: system-level cause rollups plus the
    // congestion-sketch percentiles (net.energy.*).
    if (net.energyEnabled())
        registerEnergyStats(reg, net);

    for (Link *l : net.allLinks()) {
        std::ostringstream pre;
        pre << "link" << l->id() << '.';
        auto s = reg.scope(pre.str());
        s.add("idle_energy_j", "idle I/O energy since reset (J)",
              [l] { return l->stats().idleIoJ(); });
        s.add("active_energy_j", "active I/O energy since reset (J)",
              [l] { return l->stats().activeIoJ(); });
        // Energy observatory: the fine cause buckets behind the two
        // coarse ledgers above (idle floor is their difference from
        // sleep + wake; see net/link.hh).
        if (net.energyEnabled()) {
            s.add("tx_energy_j", "serialization energy (J)",
                  [l] { return l->stats().txJ; });
            s.add("retrain_energy_j", "retrain-window energy (J)",
                  [l] { return l->stats().retrainJ; });
            s.add("sleep_energy_j", "ROO off-state energy (J)",
                  [l] { return l->stats().sleepJ; });
            s.add("wake_energy_j", "wake-transition energy (J)",
                  [l] { return l->stats().wakeJ; });
        }
        s.addInt("flits", "flits serialized",
                 [l] { return l->stats().flits; });
        s.addInt("packets", "packets delivered",
                 [l] { return l->stats().packets; });
        s.addInt("read_packets", "read packets delivered",
                 [l] { return l->stats().readPackets; });
        s.addInt("retries", "CRC retransmissions",
                 [l] { return l->stats().retries; });
        s.addInt("replays", "serializations aborted by retrains",
                 [l] { return l->stats().replays; });
        s.addInt("retrains", "retrain windows entered",
                 [l] { return l->stats().retrains; });
        s.add("retrain_s", "seconds spent retraining",
              [l] { return l->stats().retrainSeconds; });
        s.add("degraded_s", "seconds at reduced width",
              [l] { return l->stats().degradedSeconds; });
        s.add("off_s", "seconds powered off",
              [l] { return l->stats().offSeconds; });
        // Stall attribution (latency observatory): packet-seconds
        // blocked at this link per cause, and the queue high-water.
        s.add("wake_stall_s", "packet-seconds blocked behind wakes",
              [l] { return l->stats().wakeStallSeconds; });
        s.add("retrain_stall_s",
              "packet-seconds blocked behind retrains",
              [l] { return l->stats().retrainStallSeconds; });
        s.addInt("queue_peak", "waiting-queue high-water mark",
                 [l] { return l->stats().queuePeak; });
    }

    for (int m = 0; m < net.numModules(); ++m) {
        std::ostringstream pre;
        pre << "module" << m << '.';
        auto s = reg.scope(pre.str());
        Module *mod = &net.module(m);
        s.addInt("dram_accesses", "DRAM accesses serviced",
                 [mod] { return mod->dramAccesses(); });
        s.addInt("flits_routed", "flits routed through the module",
                 [mod] { return mod->flitsRouted(); });
        // Energy observatory: the module's cause terms at dump time.
        if (net.energyEnabled()) {
            Network *np = &net;
            auto term =
                [np, m](double ModuleEnergyTerms::*f) {
                    return np->moduleEnergy(m, np->eventQueue().now())
                        .*f;
                };
            s.add("serdes_leak_j", "SerDes+logic leakage (J)", [term] {
                return term(&ModuleEnergyTerms::logicLeakJ);
            });
            s.add("router_j", "router dynamic energy (J)", [term] {
                return term(&ModuleEnergyTerms::logicDynJ);
            });
            s.add("dram_leak_j", "DRAM leakage (J)", [term] {
                return term(&ModuleEnergyTerms::dramLeakJ);
            });
            s.add("dram_dyn_j", "DRAM dynamic energy (J)", [term] {
                return term(&ModuleEnergyTerms::dramDynJ);
            });
        }
    }

    if (mgr) {
        auto s = reg.scope("mgmt.");
        PowerManager *pm = mgr;
        s.addInt("epochs", "management epochs processed",
                 [pm] { return pm->epochs(); });
        s.addInt("violations", "AMS violations",
                 [pm] { return pm->violations(); });
        s.addInt("isp.rounds_total", "ISP iterations executed",
                 [pm] { return pm->ispRoundsTotal(); });
        s.add("isp.last_rounds", "ISP iterations at the last epoch",
              [pm] { return static_cast<double>(pm->lastIspRounds()); });
        s.add("grant_pool_ps", "AMS left in the grant pool (ps)",
              [pm] { return pm->grantPoolRemaining(); });
    }
}

void
ObsHub::finish(Tick now)
{
    net.collectEnergy(now); // flush energy integration for the dumps

    if (!opts.statsJsonPath.empty()) {
        std::ofstream f(opts.statsJsonPath);
        if (!f)
            memnet_warn("cannot open stats JSON path: ",
                        opts.statsJsonPath);
        else
            reg.dumpJson(f);
    }
    if (!opts.statsCsvPath.empty()) {
        std::ofstream f(opts.statsCsvPath);
        if (!f)
            memnet_warn("cannot open stats CSV path: ",
                        opts.statsCsvPath);
        else
            reg.dumpCsv(f);
    }
    if (epochFile.is_open())
        epochFile.close();
    if (trace) {
        std::ofstream f(opts.chromeTracePath);
        if (!f)
            memnet_warn("cannot open chrome trace path: ",
                        opts.chromeTracePath);
        else
            trace->writeTo(f);
    }
}

} // namespace obs
} // namespace memnet
