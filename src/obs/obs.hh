/**
 * @file
 * ObsHub — the assembled observability subsystem for one simulation run.
 *
 * Construction wires everything the options ask for:
 *  - registers gem5-style named stats for the event queue, network,
 *    links, modules, and manager in a StatsRegistry (dumped to JSON/CSV
 *    at finish());
 *  - attaches a ChromeTraceWriter to the network as the PowerTraceSink;
 *  - attaches itself to the manager as the EpochObserver, feeding the
 *    EpochRecorder (JSONL) and epoch/violation trace instants.
 *
 * Everything is passive: hooks are synchronous callbacks from existing
 * simulation events, and the hub never schedules events of its own, so
 * an instrumented run produces bit-identical RunResults to a bare one.
 * When ObsOptions::active() is false the simulator does not construct a
 * hub at all.
 */

#ifndef MEMNET_OBS_OBS_HH
#define MEMNET_OBS_OBS_HH

#include <fstream>
#include <memory>
#include <vector>

#include "mgmt/manager.hh"
#include "net/network.hh"
#include "obs/chrome_trace.hh"
#include "obs/epoch_recorder.hh"
#include "obs/options.hh"
#include "obs/stats_registry.hh"

namespace memnet
{
namespace obs
{

class ObsHub : public EpochObserver
{
  public:
    /**
     * @param opts which outputs to produce (paths may be empty).
     * @param net the network under observation.
     * @param mgr the power manager, or null (FullPower / StaticTaper);
     *        without one there are no epoch records or mgmt stats.
     * @param queues the run's event queues for sim.* health stats —
     *        empty means the network's own queue (serial kernel). A
     *        partitioned run passes all partition queues: the sim.eq.*
     *        aggregates then sum/max across lanes and each lane gets a
     *        sim.eq.pN.* scope.
     */
    ObsHub(const ObsOptions &opts, Network &net, PowerManager *mgr,
           std::vector<EventQueue *> queues = {});
    ~ObsHub() override;

    ObsHub(const ObsHub &) = delete;
    ObsHub &operator=(const ObsHub &) = delete;

    /** Re-baseline epoch diffs after the network's stats reset. */
    void onMeasureStart(Tick now);

    /** Flush and write every requested output file. */
    void finish(Tick now);

    // -- EpochObserver -----------------------------------------------------

    void onEpoch(PowerManager &pm, Tick now) override;
    void onViolation(PowerManager &pm, LinkMgmtState &s,
                     Tick now) override;

    StatsRegistry &registry() { return reg; }
    ChromeTraceWriter *traceWriter() { return trace.get(); }
    EpochRecorder *recorder() { return rec.get(); }

  private:
    void registerStats();

    ObsOptions opts;
    Network &net;
    PowerManager *mgr;
    std::vector<EventQueue *> eqs;

    StatsRegistry reg;
    std::unique_ptr<ChromeTraceWriter> trace;
    std::ofstream epochFile;
    std::unique_ptr<EpochRecorder> rec;

    /**
     * Energy-counter baselines for the trace's "energy_w" track: the
     * attribution and timestamp at the previous epoch, so each sample
     * renders the epoch's average watts per cause (delta / window).
     */
    EnergyAttribution lastEnergy;
    Tick lastEnergyTick = 0;
};

} // namespace obs
} // namespace memnet

#endif // MEMNET_OBS_OBS_HH
