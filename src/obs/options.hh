/**
 * @file
 * Plain-data observability options, embeddable in SystemConfig without
 * pulling any of the obs machinery into the public config header.
 *
 * Everything defaults to off. An empty path disables the corresponding
 * output; with all outputs disabled no observability object is even
 * constructed, so a disabled run is bit-identical to a build without
 * the subsystem.
 *
 * None of these fields participate in Runner's memoization key: they
 * affect only what is written to disk, never the simulation itself.
 */

#ifndef MEMNET_OBS_OPTIONS_HH
#define MEMNET_OBS_OPTIONS_HH

#include <string>

namespace memnet
{

struct ObsOptions
{
    /** Dump the stats registry as flat JSON here at end of run. */
    std::string statsJsonPath;

    /** Dump the stats registry as name,value,description CSV here. */
    std::string statsCsvPath;

    /** Stream one JSON object per management epoch (JSONL) here. */
    std::string epochJsonlPath;

    /** Write a Chrome trace-event file (chrome://tracing, Perfetto). */
    std::string chromeTracePath;

    /**
     * Debug-trace spec applied at run start (see obs/debug_trace.hh),
     * e.g. "LinkPM:2,ISP". Empty leaves the MEMNET_TRACE env in charge.
     */
    std::string traceSpec;

    /** True when any file output is requested. */
    bool
    active() const
    {
        return !statsJsonPath.empty() || !statsCsvPath.empty() ||
               !epochJsonlPath.empty() || !chromeTracePath.empty();
    }
};

} // namespace memnet

#endif // MEMNET_OBS_OPTIONS_HH
