#include "obs/prof.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <utility>

#include "sim/log.hh"

namespace memnet
{
namespace prof
{

std::uint64_t
PhaseTree::selfNs() const
{
    std::uint64_t kids = 0;
    for (const PhaseTree &c : children)
        kids += c.ns;
    return ns > kids ? ns - kids : 0;
}

const PhaseTree *
PhaseTree::child(const std::string &want) const
{
    for (const PhaseTree &c : children) {
        if (c.name == want)
            return &c;
    }
    return nullptr;
}

namespace
{

void
writeEscaped(std::ostream &os, const std::string &s)
{
    for (char ch : s) {
        if (ch == '"' || ch == '\\')
            os << '\\';
        os << ch;
    }
}

void
jsonNode(std::ostream &os, const PhaseTree &t, int indent)
{
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    os << pad << "{\"name\": \"";
    writeEscaped(os, t.name);
    os << "\", \"ns\": " << t.ns << ", \"self_ns\": " << t.selfNs()
       << ", \"count\": " << t.count;
    if (t.children.empty()) {
        os << ", \"children\": []}";
        return;
    }
    os << ", \"children\": [\n";
    for (std::size_t i = 0; i < t.children.size(); ++i) {
        jsonNode(os, t.children[i], indent + 1);
        if (i + 1 < t.children.size())
            os << ',';
        os << '\n';
    }
    os << pad << "]}";
}

void
collapse(std::ostream &os, const PhaseTree &t, const std::string &prefix)
{
    const std::string path =
        prefix.empty() ? t.name : prefix + ';' + t.name;
    if (const std::uint64_t self = t.selfNs())
        os << path << ' ' << self << '\n';
    for (const PhaseTree &c : t.children)
        collapse(os, c, path);
}

void
flattenInto(const PhaseTree &t, const std::string &prefix,
            std::vector<ProfPhase> &out)
{
    const std::string path =
        prefix.empty() ? t.name : prefix + ';' + t.name;
    out.push_back(ProfPhase{path, t.ns, t.count});
    for (const PhaseTree &c : t.children)
        flattenInto(c, path, out);
}

} // namespace

void
writeCollapsed(std::ostream &os, const PhaseTree &tree)
{
    // The synthetic root ("all") is omitted from stacks; its self time
    // is zero by construction anyway.
    for (const PhaseTree &c : tree.children)
        collapse(os, c, "");
}

void
writeJson(std::ostream &os, const PhaseTree &tree)
{
    jsonNode(os, tree, 0);
    os << '\n';
}

std::vector<ProfPhase>
flatten(const PhaseTree &tree)
{
    std::vector<ProfPhase> out;
    for (const PhaseTree &c : tree.children)
        flattenInto(c, "", out);
    return out;
}

bool
writeSnapshotFile(const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        memnet_warn("cannot open profile output file: ", path);
        return false;
    }
    const PhaseTree tree = snapshot();
    const bool json = path.size() >= 5 &&
                      path.compare(path.size() - 5, 5, ".json") == 0;
    if (json)
        writeJson(os, tree);
    else
        writeCollapsed(os, tree);
    return static_cast<bool>(os);
}

#if MEMNET_PROFILE

namespace detail
{

std::atomic<bool> g_enabled{false};

namespace
{

/**
 * One thread's phase tree. The owning thread mutates it lock-free;
 * snapshot()/reset() read it under the registry mutex, which is only
 * safe while no profiled region runs on that thread (the documented
 * quiescence contract — benches snapshot after their pools joined).
 */
struct ThreadCollector
{
    Node root{"thread"};
    Node *cur = &root;
};

/** Registry of live collectors plus the merged trees of dead threads. */
struct Registry
{
    std::mutex mu;
    std::vector<ThreadCollector *> live;
    PhaseTree retained{"all", 0, 0, {}};
};

Registry &
registry()
{
    static Registry *r = new Registry; // leaked: outlives all threads
    return *r;
}

void
freeNodes(Node *n)
{
    for (Node *c : n->children)
        freeNodes(c);
    delete n;
}

void
mergeNode(PhaseTree &dst, const Node &src)
{
    dst.ns += src.ns;
    dst.count += src.count;
    for (const Node *c : src.children) {
        PhaseTree *slot = nullptr;
        for (PhaseTree &d : dst.children) {
            if (d.name == c->name) {
                slot = &d;
                break;
            }
        }
        if (!slot) {
            dst.children.push_back(PhaseTree{c->name, 0, 0, {}});
            slot = &dst.children.back();
        }
        mergeNode(*slot, *c);
    }
}

void
sortTree(PhaseTree &t)
{
    std::sort(t.children.begin(), t.children.end(),
              [](const PhaseTree &a, const PhaseTree &b) {
                  return a.name < b.name;
              });
    for (PhaseTree &c : t.children)
        sortTree(c);
}

void
zeroNodes(Node *n)
{
    n->ns = 0;
    n->count = 0;
    for (Node *c : n->children)
        zeroNodes(c);
}

/**
 * Registers the thread's collector on first use and, on thread exit,
 * folds its tree into the retained merge so pool workers' phases
 * survive the join.
 */
struct TlsSlot
{
    ThreadCollector collector;

    TlsSlot()
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        r.live.push_back(&collector);
    }

    ~TlsSlot()
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        mergeNode(r.retained, collector.root);
        r.live.erase(std::remove(r.live.begin(), r.live.end(),
                                 &collector),
                     r.live.end());
        for (Node *c : collector.root.children)
            freeNodes(c);
        collector.root.children.clear();
    }
};

ThreadCollector &
tls()
{
    static thread_local TlsSlot slot;
    return slot.collector;
}

} // namespace

Node *
enterScope(const char *name)
{
    ThreadCollector &c = tls();
    Node *parent = c.cur;
    // Scope names are string literals, so the pointer usually matches;
    // strcmp covers the same literal emitted by multiple TUs.
    for (Node *child : parent->children) {
        if (child->name == name ||
            std::strcmp(child->name, name) == 0) {
            c.cur = child;
            return child;
        }
    }
    Node *child = new Node(name);
    child->parent = parent;
    parent->children.push_back(child);
    c.cur = child;
    return child;
}

void
exitScope(Node *node, std::uint64_t ns)
{
    node->ns += ns;
    ++node->count;
    tls().cur = node->parent;
}

namespace
{

PhaseTree
toTree(const Node *n)
{
    PhaseTree t{n->name, n->ns, n->count, {}};
    t.children.reserve(n->children.size());
    for (const Node *c : n->children)
        t.children.push_back(toTree(c));
    return t;
}

std::vector<ProfPhase>
flattenSubtree(const Node *n)
{
    PhaseTree t = toTree(n);
    sortTree(t);
    std::vector<ProfPhase> out;
    out.push_back(ProfPhase{t.name, t.ns, t.count});
    for (const PhaseTree &c : t.children)
        flattenInto(c, t.name, out);
    return out;
}

} // namespace

} // namespace detail

void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

PhaseTree
snapshot()
{
    detail::Registry &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mu);
    PhaseTree out = r.retained;
    for (const auto *c : r.live) {
        // Fold each live thread's top-level phases into the root.
        for (const detail::Node *top : c->root.children) {
            PhaseTree *slot = nullptr;
            for (PhaseTree &d : out.children) {
                if (d.name == top->name) {
                    slot = &d;
                    break;
                }
            }
            if (!slot) {
                out.children.push_back(PhaseTree{top->name, 0, 0, {}});
                slot = &out.children.back();
            }
            detail::mergeNode(*slot, *top);
        }
    }
    out.name = "all";
    out.count = 0;
    out.ns = 0;
    for (const PhaseTree &c : out.children)
        out.ns += c.ns;
    detail::sortTree(out);
    return out;
}

void
reset()
{
    detail::Registry &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.retained = PhaseTree{"all", 0, 0, {}};
    // Zero live trees in place: any open scope's node chain stays
    // valid, so a reset between runs never dangles a cur pointer.
    for (auto *c : r.live)
        detail::zeroNodes(&c->root);
}

ScopedCapture::ScopedCapture(const char *name)
{
    if (detail::g_enabled.load(std::memory_order_relaxed)) {
        node_ = detail::enterScope(name);
        before_ = detail::flattenSubtree(node_);
        start_ = std::chrono::steady_clock::now();
    }
}

std::vector<ProfPhase>
ScopedCapture::finish()
{
    if (done_ || !node_)
        return {};
    done_ = true;
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count();
    detail::exitScope(node_, static_cast<std::uint64_t>(ns));

    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> prev;
    for (const ProfPhase &p : before_)
        prev[p.path] = {p.ns, p.count};

    std::vector<ProfPhase> out;
    for (const ProfPhase &p : detail::flattenSubtree(node_)) {
        auto it = prev.find(p.path);
        const std::uint64_t ns0 = it == prev.end() ? 0 : it->second.first;
        const std::uint64_t n0 =
            it == prev.end() ? 0 : it->second.second;
        if (p.ns == ns0 && p.count == n0)
            continue; // untouched by this capture
        out.push_back(
            ProfPhase{p.path, p.ns - ns0, p.count - n0});
    }
    return out;
}

ScopedCapture::~ScopedCapture()
{
    if (node_ && !done_)
        finish();
}

#else // !MEMNET_PROFILE

void
setEnabled(bool)
{
}

bool
enabled()
{
    return false;
}

PhaseTree
snapshot()
{
    return PhaseTree{"all", 0, 0, {}};
}

void
reset()
{
}

#endif // MEMNET_PROFILE

} // namespace prof
} // namespace memnet
