/**
 * @file
 * Host-side hierarchical profiler: where does the *simulator itself*
 * spend wall-clock time?
 *
 * The rest of src/obs observes the simulated network; this observes
 * the simulation process, the way gem5's stats/profiling framework
 * does for real simulators. Call sites mark phases with an RAII scope:
 *
 *   void Network::inject(Packet *pkt) {
 *       MEMNET_PROF_SCOPE("net/inject");
 *       ...
 *   }
 *
 * Scopes nest into a phase tree ("sim/run" > "eq/dispatch" >
 * "net/inject"), recorded into per-thread collectors so the parallel
 * sweep engine profiles without contention: the hot path touches only
 * thread_local state, and trees merge at snapshot time. Merging by
 * phase name keeps the tree stable across thread counts.
 *
 * Cost model (the contract the perf-baseline CI job guards):
 *  - compiled out (-DMEMNET_PROFILE=0): zero — the macro expands to
 *    nothing, simulation behavior is byte-identical;
 *  - compiled in, profiling disabled (the default): one relaxed
 *    atomic load and branch per scope;
 *  - enabled: two steady_clock reads plus a child lookup per scope.
 * Profiling never touches the EventQueue or any simulated state, so a
 * profiled run's RunResult is bit-identical to an unprofiled one in
 * every simulation-determined field (tests/test_differential.cc).
 *
 * Exports: FlameGraph/speedscope collapsed stacks ("a;b;c <self-ns>"
 * per line) and a nested JSON tree. Wired into `memnet_run --profile`
 * and the shared bench `--profile` flag (bench/bench_common.hh).
 */

#ifndef MEMNET_OBS_PROF_HH
#define MEMNET_OBS_PROF_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#ifndef MEMNET_PROFILE
#define MEMNET_PROFILE 1
#endif

namespace memnet
{
namespace prof
{

/** One phase of a flattened profile; path components join with ';'. */
struct ProfPhase
{
    std::string path;
    std::uint64_t ns = 0;    ///< inclusive wall time
    std::uint64_t count = 0; ///< times the scope was entered
};

/**
 * Value-type phase tree, the snapshot/merge/export currency. Plain and
 * publicly constructible so exporter tests can build golden inputs.
 */
struct PhaseTree
{
    std::string name;
    std::uint64_t ns = 0;    ///< inclusive wall time
    std::uint64_t count = 0; ///< times the scope was entered
    std::vector<PhaseTree> children;

    /** Inclusive time minus the children's (what FlameGraph plots). */
    std::uint64_t selfNs() const;

    /** Child by name, or null. */
    const PhaseTree *child(const std::string &name) const;
};

/** Globally enable/disable recording (off by default). */
void setEnabled(bool on);
bool enabled();

/**
 * Merge every collector — live threads and already-exited ones — into
 * one tree rooted at "all". Call with worker threads quiescent (after
 * ParallelRunner::run returned); exited threads' data is retained, so
 * pool workers show up after join.
 */
PhaseTree snapshot();

/** Drop all recorded data (live and retained). */
void reset();

/** Collapsed-stack export: one "a;b;c <self-ns>" line per phase. */
void writeCollapsed(std::ostream &os, const PhaseTree &tree);

/** Nested JSON export: {"name","ns","self_ns","count","children"}. */
void writeJson(std::ostream &os, const PhaseTree &tree);

/** Flatten into ProfPhase rows (depth-first, root excluded). */
std::vector<ProfPhase> flatten(const PhaseTree &tree);

/**
 * Write a snapshot to @p path in the format its extension picks:
 * ".json" gets the JSON tree, anything else collapsed stacks.
 * @return false (with a warning) when the file cannot be opened.
 */
bool writeSnapshotFile(const std::string &path);

#if MEMNET_PROFILE

namespace detail
{

/** Node of a per-thread (or retained) tree; owned by its collector. */
struct Node
{
    const char *name;
    std::uint64_t ns = 0;
    std::uint64_t count = 0;
    Node *parent = nullptr;
    std::vector<Node *> children; // few per node; linear scan

    explicit Node(const char *name) : name(name) {}
};

extern std::atomic<bool> g_enabled;

/** Enter a child scope of the calling thread's current node. */
Node *enterScope(const char *name);

/** Leave @p node, accumulating @p ns of inclusive time. */
void exitScope(Node *node, std::uint64_t ns);

} // namespace detail

/**
 * RAII phase scope. @p name must outlive the program (string literal).
 * Near-free while profiling is disabled.
 */
class Scope
{
  public:
    explicit Scope(const char *name)
    {
        if (detail::g_enabled.load(std::memory_order_relaxed)) {
            node_ = detail::enterScope(name);
            start_ = std::chrono::steady_clock::now();
        }
    }

    ~Scope() { close(); }

    /**
     * Exit the scope before the end of the block (idempotent; the
     * destructor becomes a no-op). For phases that can't live in their
     * own block because what they build outlives them.
     */
    void
    close()
    {
        if (node_) {
            const auto ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
            detail::exitScope(node_,
                              static_cast<std::uint64_t>(ns));
            node_ = nullptr;
        }
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    detail::Node *node_ = nullptr;
    std::chrono::steady_clock::time_point start_;
};

/**
 * Captures the calling thread's phases recorded between construction
 * and finish() as a flat delta, rooted at its own named scope. The
 * simulator uses one per run to attribute phases to that RunResult
 * even when several runs share a thread (Runner) or run concurrently
 * (ParallelRunner — each capture only reads its own thread's tree).
 */
class ScopedCapture
{
  public:
    explicit ScopedCapture(const char *name);
    ~ScopedCapture();

    ScopedCapture(const ScopedCapture &) = delete;
    ScopedCapture &operator=(const ScopedCapture &) = delete;

    /**
     * Close the scope and return the phases recorded under it during
     * this capture (empty when profiling is disabled). Paths are
     * relative to the capture's scope, which is included as the first
     * row. Idempotent; the destructor closes the scope if needed.
     */
    std::vector<ProfPhase> finish();

  private:
    detail::Node *node_ = nullptr;
    std::chrono::steady_clock::time_point start_;
    std::vector<ProfPhase> before_;
    bool done_ = false;
};

#define MEMNET_PROF_CONCAT2(a, b) a##b
#define MEMNET_PROF_CONCAT(a, b) MEMNET_PROF_CONCAT2(a, b)

/** Time the enclosing block as phase @p name (a string literal). */
#define MEMNET_PROF_SCOPE(name)                                        \
    ::memnet::prof::Scope MEMNET_PROF_CONCAT(memnet_prof_scope_,       \
                                             __LINE__)(name)

#else // !MEMNET_PROFILE

/** Profiler compiled out: captures yield nothing, scopes vanish. */
class Scope
{
  public:
    explicit Scope(const char *) {}
    void close() {}
};

class ScopedCapture
{
  public:
    explicit ScopedCapture(const char *) {}
    std::vector<ProfPhase> finish() { return {}; }
};

#define MEMNET_PROF_SCOPE(name)                                        \
    do {                                                               \
    } while (false)

#endif // MEMNET_PROFILE

} // namespace prof
} // namespace memnet

#endif // MEMNET_OBS_PROF_HH
