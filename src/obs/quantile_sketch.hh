/**
 * @file
 * Fixed-memory streaming quantile sketch for latency distributions.
 *
 * An HDR-histogram-style log-bucketed counter array: values below
 * 2*kSubBuckets land in exact unit buckets; above that, each power-of-
 * two octave is split into kSubBuckets linear sub-buckets, bounding the
 * relative rank error at 1/kSubBuckets (~3.1%). Everything is integer
 * arithmetic over picosecond ticks, so results are identical across
 * platforms, merges are exact and associative (bucket-wise addition),
 * and epoch deltas are exact subtractions.
 *
 * Header-only with no dependencies beyond <array>/<cstdint> so the net
 * layer can embed sketches without linking the obs library; the hot
 * path (record) is a handful of integer ops and one array increment —
 * no heap allocation, ever.
 */

#ifndef MEMNET_OBS_QUANTILE_SKETCH_HH
#define MEMNET_OBS_QUANTILE_SKETCH_HH

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace memnet
{
namespace obs
{

class QuantileSketch
{
  public:
    /** Linear sub-buckets per octave: 2^5 = 32. */
    static constexpr int kSubBits = 5;
    static constexpr std::uint64_t kSubBuckets = 1ULL << kSubBits;
    /**
     * Bucket count covering all of uint64: indices [0, 2*kSubBuckets)
     * are exact; each further shift (1..63-kSubBits) adds kSubBuckets.
     */
    static constexpr std::size_t kBuckets =
        static_cast<std::size_t>((64 - kSubBits + 1) * kSubBuckets);

    /** Worst-case relative error of any quantile estimate. */
    static constexpr double kRelativeError = 1.0 / kSubBuckets;

    /** Index of the bucket holding @p v. */
    static constexpr std::size_t
    bucketOf(std::uint64_t v)
    {
        if (v < 2 * kSubBuckets)
            return static_cast<std::size_t>(v);
        const int msb = 63 - std::countl_zero(v);
        const int shift = msb - kSubBits;
        const std::uint64_t sub = (v >> shift) & (kSubBuckets - 1);
        return static_cast<std::size_t>(
            (static_cast<std::uint64_t>(shift) + 1) * kSubBuckets + sub);
    }

    /** Largest value mapping to bucket @p idx (quantiles err high). */
    static constexpr std::uint64_t
    bucketUpperBound(std::size_t idx)
    {
        if (idx < 2 * kSubBuckets)
            return idx;
        const int shift = static_cast<int>(idx / kSubBuckets) - 1;
        const std::uint64_t sub = idx % kSubBuckets;
        return ((kSubBuckets + sub + 1) << shift) - 1;
    }

    void
    record(std::uint64_t v)
    {
        ++counts_[bucketOf(v)];
        ++n_;
        sum_ += v;
        if (v > max_)
            max_ = v;
    }

    std::uint64_t samples() const { return n_; }
    std::uint64_t sum() const { return sum_; }
    /** Exact maximum recorded value (0 when empty). */
    std::uint64_t maxValue() const { return max_; }

    /**
     * Value at quantile @p q in [0, 1]. Returns an upper bound within
     * kRelativeError of the exact order statistic, clamped to the exact
     * maximum. An empty sketch always answers 0 (never NaN/UB) — callers
     * pair the value with samples() to tell "no data" from "all zero".
     */
    std::uint64_t
    quantile(double q) const
    {
        if (n_ == 0)
            return 0;
        if (q < 0.0)
            q = 0.0;
        if (q > 1.0)
            q = 1.0;
        // Rank of the target order statistic, 1-based.
        std::uint64_t rank =
            static_cast<std::uint64_t>(q * static_cast<double>(n_) + 0.5);
        if (rank < 1)
            rank = 1;
        if (rank > n_)
            rank = n_;
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            cum += counts_[i];
            if (cum >= rank) {
                const std::uint64_t ub = bucketUpperBound(i);
                return ub < max_ ? ub : max_;
            }
        }
        return max_; // unreachable: cum == n_ after the loop
    }

    /** Exact bucket-wise merge; associative and commutative. */
    void
    merge(const QuantileSketch &o)
    {
        for (std::size_t i = 0; i < kBuckets; ++i)
            counts_[i] += o.counts_[i];
        n_ += o.n_;
        sum_ += o.sum_;
        if (o.max_ > max_)
            max_ = o.max_;
    }

    /**
     * Exact bucket-wise subtraction of an earlier snapshot (epoch
     * deltas). The caller guarantees @p prev is a prefix of this
     * sketch's history. maxValue() keeps the cumulative maximum — an
     * upper bound for the delta window, not its exact max.
     */
    void
    subtract(const QuantileSketch &prev)
    {
        for (std::size_t i = 0; i < kBuckets; ++i)
            counts_[i] -= prev.counts_[i];
        n_ -= prev.n_;
        sum_ -= prev.sum_;
    }

    void reset() { *this = QuantileSketch{}; }

    bool
    operator==(const QuantileSketch &o) const
    {
        return n_ == o.n_ && sum_ == o.sum_ && max_ == o.max_ &&
               counts_ == o.counts_;
    }

  private:
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t n_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * The latency observatory's component sketches, all in picoseconds.
 * dram is the residual (end-to-end minus everything attributed to
 * links), i.e. vault service time; see docs/OBSERVABILITY.md.
 */
struct LatencySketches
{
    QuantileSketch endToEnd;
    QuantileSketch queue;
    QuantileSketch wakeStall;
    QuantileSketch retrainStall;
    QuantileSketch ser;
    QuantileSketch dram;

    void
    reset()
    {
        endToEnd.reset();
        queue.reset();
        wakeStall.reset();
        retrainStall.reset();
        ser.reset();
        dram.reset();
    }

    void
    merge(const LatencySketches &o)
    {
        endToEnd.merge(o.endToEnd);
        queue.merge(o.queue);
        wakeStall.merge(o.wakeStall);
        retrainStall.merge(o.retrainStall);
        ser.merge(o.ser);
        dram.merge(o.dram);
    }

    void
    subtract(const LatencySketches &prev)
    {
        endToEnd.subtract(prev.endToEnd);
        queue.subtract(prev.queue);
        wakeStall.subtract(prev.wakeStall);
        retrainStall.subtract(prev.retrainStall);
        ser.subtract(prev.ser);
        dram.subtract(prev.dram);
    }
};

} // namespace obs

/** Percentile summary of one latency component (picoseconds). */
struct LatencyPercentiles
{
    std::uint64_t samples = 0;
    std::uint64_t sumPs = 0;
    std::uint64_t p50Ps = 0;
    std::uint64_t p90Ps = 0;
    std::uint64_t p99Ps = 0;
    std::uint64_t p999Ps = 0;
    std::uint64_t maxPs = 0;
};

inline LatencyPercentiles
summarizeSketch(const obs::QuantileSketch &s)
{
    LatencyPercentiles p;
    p.samples = s.samples();
    p.sumPs = s.sum();
    p.p50Ps = s.quantile(0.50);
    p.p90Ps = s.quantile(0.90);
    p.p99Ps = s.quantile(0.99);
    p.p999Ps = s.quantile(0.999);
    p.maxPs = s.maxValue();
    return p;
}

/**
 * RunResult's latency decomposition: per-component percentiles plus the
 * network-wide stall-attribution totals. All simulation-determined and
 * deterministic, but excluded from audit::diffRunResults like wall_s
 * because the observatory may legitimately be off on one side.
 */
struct LatencyBreakdown
{
    bool enabled = false;
    LatencyPercentiles endToEnd;
    LatencyPercentiles queue;
    LatencyPercentiles wakeStall;
    LatencyPercentiles retrainStall;
    LatencyPercentiles serialization;
    LatencyPercentiles dram;
    /** Sum over links of packet-seconds blocked behind wakes. */
    double wakeStallSeconds = 0.0;
    /** Sum over links of packet-seconds blocked behind retrains. */
    double retrainStallSeconds = 0.0;
    /** Largest waiting-queue depth seen on any link. */
    std::uint64_t queuePeak = 0;
};

inline LatencyBreakdown
summarizeLatency(const obs::LatencySketches &s)
{
    LatencyBreakdown b;
    b.enabled = true;
    b.endToEnd = summarizeSketch(s.endToEnd);
    b.queue = summarizeSketch(s.queue);
    b.wakeStall = summarizeSketch(s.wakeStall);
    b.retrainStall = summarizeSketch(s.retrainStall);
    b.serialization = summarizeSketch(s.ser);
    b.dram = summarizeSketch(s.dram);
    return b;
}

} // namespace memnet

#endif // MEMNET_OBS_QUANTILE_SKETCH_HH
