#include "obs/stats_registry.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/json.hh"
#include "sim/log.hh"

namespace memnet
{
namespace obs
{

void
StatsRegistry::add(const std::string &name, const std::string &desc,
                   std::function<double()> get)
{
    memnet_assert(!find(name), "duplicate stat name: ", name);
    entries.push_back(StatEntry{name, desc, std::move(get), false});
}

void
StatsRegistry::addInt(const std::string &name, const std::string &desc,
                      std::function<std::uint64_t()> get)
{
    memnet_assert(!find(name), "duplicate stat name: ", name);
    entries.push_back(StatEntry{
        name, desc,
        [g = std::move(get)]() { return static_cast<double>(g()); },
        true});
}

const StatEntry *
StatsRegistry::find(const std::string &name) const
{
    for (const StatEntry &e : entries) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

std::vector<std::size_t>
StatsRegistry::sortedOrder() const
{
    std::vector<std::size_t> idx(entries.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [this](std::size_t a, std::size_t b) {
                  return entries[a].name < entries[b].name;
              });
    return idx;
}

void
StatsRegistry::dumpJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    for (std::size_t i : sortedOrder()) {
        const StatEntry &e = entries[i];
        const double v = e.get();
        w.key(e.name);
        if (e.integral)
            w.value(static_cast<std::int64_t>(v));
        else
            w.value(v);
    }
    w.endObject();
    os << '\n';
}

void
StatsRegistry::dumpCsv(std::ostream &os) const
{
    os << "name,value,description\n";
    for (std::size_t i : sortedOrder()) {
        const StatEntry &e = entries[i];
        char buf[40];
        if (e.integral) {
            std::snprintf(buf, sizeof buf, "%" PRId64,
                          static_cast<std::int64_t>(e.get()));
        } else {
            std::snprintf(buf, sizeof buf, "%.17g", e.get());
        }
        // Descriptions are quoted: they may contain commas.
        std::string desc = e.desc;
        std::string quoted;
        quoted.reserve(desc.size() + 2);
        quoted += '"';
        for (char c : desc) {
            if (c == '"')
                quoted += '"';
            quoted += c;
        }
        quoted += '"';
        os << e.name << ',' << buf << ',' << quoted << '\n';
    }
}

} // namespace obs
} // namespace memnet
