/**
 * @file
 * Named, hierarchical run statistics (gem5-style).
 *
 * Components (or the simulator on their behalf) register stat sources
 * under dotted names — `link3.req.idle_energy_j`, `mgmt.isp.rounds` —
 * each with a one-line description and a getter that reads the live
 * component when the registry is dumped. Registration costs one
 * std::function per stat at setup time and nothing on the simulation
 * hot path; values are only materialized at dump time.
 *
 * Dumpers: a flat JSON object keyed by stat name (sorted, so dumps are
 * byte-stable for a deterministic run) and a CSV with descriptions.
 */

#ifndef MEMNET_OBS_STATS_REGISTRY_HH
#define MEMNET_OBS_STATS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace memnet
{
namespace obs
{

/** One registered statistic. */
struct StatEntry
{
    std::string name; ///< dotted hierarchical name
    std::string desc; ///< one-line description
    /** Reads the live value at dump time. */
    std::function<double()> get;
    /** Integer-valued stats dump without a decimal point. */
    bool integral = false;
};

class StatsRegistry
{
  public:
    /** Register a real-valued stat. Names must be unique. */
    void add(const std::string &name, const std::string &desc,
             std::function<double()> get);

    /** Register an integer-valued stat. */
    void addInt(const std::string &name, const std::string &desc,
                std::function<std::uint64_t()> get);

    /**
     * Helper for registering groups: returns a callable that prefixes
     * names, e.g. `auto link = reg.scope("link3.req."); link("flits", ...)`.
     */
    class Scope
    {
      public:
        Scope(StatsRegistry &reg, std::string prefix)
            : reg(reg), prefix(std::move(prefix))
        {
        }

        void
        add(const std::string &name, const std::string &desc,
            std::function<double()> get) const
        {
            reg.add(prefix + name, desc, std::move(get));
        }

        void
        addInt(const std::string &name, const std::string &desc,
               std::function<std::uint64_t()> get) const
        {
            reg.addInt(prefix + name, desc, std::move(get));
        }

      private:
        StatsRegistry &reg;
        std::string prefix;
    };

    Scope scope(const std::string &prefix) { return Scope(*this, prefix); }

    std::size_t size() const { return entries.size(); }

    /** Look up an entry by exact name (tests); nullptr when absent. */
    const StatEntry *find(const std::string &name) const;

    /**
     * Dump as one flat JSON object `{"name": value, ...}`, keys sorted
     * lexicographically.
     */
    void dumpJson(std::ostream &os) const;

    /** Dump as CSV: `name,value,description`, names sorted. */
    void dumpCsv(std::ostream &os) const;

  private:
    /** Indices into entries, sorted by name (rebuilt lazily on dump). */
    std::vector<std::size_t> sortedOrder() const;

    std::vector<StatEntry> entries;
};

} // namespace obs
} // namespace memnet

#endif // MEMNET_OBS_STATS_REGISTRY_HH
