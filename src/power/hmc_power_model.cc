#include "power/hmc_power_model.hh"

#include "sim/log.hh"

namespace memnet
{

namespace
{

/** Build the parameter block for one radix class. */
HmcPowerParams
makeParams(double peak_total, int link_ends)
{
    HmcPowerParams p{};
    p.peakTotalW = peak_total;
    p.peakDramW = peak_total * HmcPowerModel::kDramShare;
    p.peakLogicW = peak_total * HmcPowerModel::kLogicShare;
    p.peakIoW = peak_total * HmcPowerModel::kIoShare;
    p.idleDramW = p.peakDramW * HmcPowerModel::kDramIdleFrac;
    p.idleLogicW = p.peakLogicW * HmcPowerModel::kLogicIdleFrac;
    p.linkEndW = p.peakIoW / link_ends;

    // DRAM dynamic energy per access: the non-leakage DRAM power at peak
    // internal bandwidth divided by the peak access rate.
    const double peak_access_rate = HmcPowerModel::kDramPeakBytesPerSec /
                                    HmcPowerModel::kBytesPerAccess;
    p.dramAccessJ = (p.peakDramW - p.idleDramW) / peak_access_rate;

    // Logic dynamic energy per flit-hop: non-leakage logic power when all
    // link ends stream flits at peak rate.
    const double peak_flit_rate =
        HmcPowerModel::kPeakFlitsPerSecPerEnd * link_ends;
    p.flitHopJ = (p.peakLogicW - p.idleLogicW) / peak_flit_rate;
    return p;
}

} // namespace

HmcPowerModel::HmcPowerModel(IoAttribution attr)
    : attr_(attr),
      high(makeParams(kHighRadixPeakW, kHighRadixLinkEnds)),
      low(makeParams(kHighRadixPeakW / 2.0, kLowRadixLinkEnds))
{
}

const HmcPowerParams &
HmcPowerModel::params(Radix r) const
{
    return r == Radix::High ? high : low;
}

} // namespace memnet
