/**
 * @file
 * Analytical HMC power model.
 *
 * Reproduces the model the paper takes from Pugsley et al. [12]:
 *  - a high-radix HMC (four full links) with 12.5 Gbps lanes peaks at
 *    13.4 W, split 43% DRAM dies / 22% logic / 35% I/O links;
 *  - idle DRAM draws 10% of DRAM peak, idle logic 25% of logic peak;
 *  - idle I/O power equals active I/O power (links keep toggling to stay
 *    synchronized);
 *  - a low-radix HMC (two full links) peaks at half of 13.4 W with the
 *    same relative breakdown (peak power assumed proportional to peak
 *    bandwidth).
 *
 * Derived quantities used by the simulator:
 *  - per-unidirectional-link-END power: a high-radix HMC hosts 4 TX and
 *    4 RX link ends, so each end draws 35% * 13.4 / 8 W. A connected
 *    unidirectional link costs two ends (TX on one module, RX on the
 *    other); unconnected ports are disabled and free.
 *  - DRAM dynamic energy per 64 B access, calibrated so that accesses at
 *    the module's peak internal bandwidth reproduce DRAM peak power.
 *  - logic dynamic energy per flit-hop, calibrated so that routing at
 *    peak link rate on all links reproduces logic peak power.
 */

#ifndef MEMNET_POWER_HMC_POWER_MODEL_HH
#define MEMNET_POWER_HMC_POWER_MODEL_HH

#include <cstdint>

namespace memnet
{

/** Module radix classes from the HMC specification. */
enum class Radix : std::uint8_t
{
    Low,  ///< two full links (four unidirectional link ends)
    High, ///< four full links (eight unidirectional link ends)
};

/**
 * How the [12] per-module I/O budget maps onto network links. The
 * paper is ambiguous about whether 35% * 13.4 W / 8 covers one *end*
 * of a unidirectional link (so a connected link costs two shares, one
 * per module) or the whole link. PerEnd is our default — it matches
 * the paper's idle-I/O *fractions* best; PerLink brackets the absolute
 * watts from below (see EXPERIMENTS.md).
 */
enum class IoAttribution : std::uint8_t
{
    PerEnd,  ///< a connected unidirectional link costs two shares
    PerLink, ///< a connected unidirectional link costs one share
};

/** Static power parameters for one HMC radix class. */
struct HmcPowerParams
{
    double peakTotalW;   ///< total module peak power
    double peakDramW;    ///< DRAM dies share of peak
    double peakLogicW;   ///< logic-die (non-I/O) share of peak
    double peakIoW;      ///< I/O links share of peak
    double idleDramW;    ///< DRAM leakage (always on)
    double idleLogicW;   ///< logic leakage (always on)
    double linkEndW;     ///< one unidirectional link end at full power
    double dramAccessJ;  ///< dynamic energy per 64 B DRAM array access
    double flitHopJ;     ///< dynamic logic energy per routed flit
};

/**
 * Energy drawn by one module over a measurement window, split by cause.
 * Computed in one place so the aggregate ledger (Network::collectEnergy)
 * and the energy observatory's attribution (Network::energyAttribution)
 * are bit-identical by construction — the runtime auditor compares the
 * two with exact double equality.
 */
struct ModuleEnergyTerms
{
    double logicLeakJ = 0.0; ///< SerDes + logic-die leakage (always on)
    double dramLeakJ = 0.0;  ///< DRAM die leakage (always on)
    double logicDynJ = 0.0;  ///< router/logic dynamic energy per flit hop
    double dramDynJ = 0.0;   ///< DRAM array dynamic energy per access
};

inline ModuleEnergyTerms
moduleEnergyTerms(const HmcPowerParams &p, double seconds,
                  std::uint64_t flits_routed, std::uint64_t dram_accesses)
{
    ModuleEnergyTerms t;
    t.logicLeakJ = p.idleLogicW * seconds;
    t.dramLeakJ = p.idleDramW * seconds;
    t.logicDynJ = static_cast<double>(flits_routed) * p.flitHopJ;
    t.dramDynJ = static_cast<double>(dram_accesses) * p.dramAccessJ;
    return t;
}

/**
 * The full power model; immutable after construction. All "fraction"
 * constants live here so tests can check internal consistency.
 */
class HmcPowerModel
{
  public:
    // Model constants from the paper / [12].
    static constexpr double kHighRadixPeakW = 13.4;
    static constexpr double kDramShare = 0.43;
    static constexpr double kLogicShare = 0.22;
    static constexpr double kIoShare = 0.35;
    static constexpr double kDramIdleFrac = 0.10;
    static constexpr double kLogicIdleFrac = 0.25;
    /** Unidirectional link ends hosted by a high-radix module. */
    static constexpr int kHighRadixLinkEnds = 8;
    static constexpr int kLowRadixLinkEnds = 4;
    /** ROO off-state power as a fraction of on power. */
    static constexpr double kRooOffFrac = 0.01;

    /** Peak internal DRAM bandwidth: 32 vaults * 32 bits * 2 Gbps. */
    static constexpr double kDramPeakBytesPerSec = 32.0 * 4.0 * 2.0e9;
    /** Bytes per DRAM array access (one cache line). */
    static constexpr double kBytesPerAccess = 64.0;
    /** Peak flit rate per link end: one 16 B flit per 0.64 ns. */
    static constexpr double kPeakFlitsPerSecPerEnd = 1.0 / 0.64e-9;

    explicit HmcPowerModel(IoAttribution attr = IoAttribution::PerEnd);

    /** Parameters for a module of the given radix. */
    const HmcPowerParams &params(Radix r) const;

    /** Power of one connected unidirectional link at full power. */
    double
    linkFullPowerW() const
    {
        return (attr_ == IoAttribution::PerEnd ? 2.0 : 1.0) *
               high.linkEndW;
    }

    IoAttribution attribution() const { return attr_; }

  private:
    IoAttribution attr_;
    HmcPowerParams high;
    HmcPowerParams low;
};

} // namespace memnet

#endif // MEMNET_POWER_HMC_POWER_MODEL_HH
