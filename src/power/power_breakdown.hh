/**
 * @file
 * Energy/power bookkeeping result types.
 *
 * The six components mirror Figure 5 of the paper: idle I/O, active I/O,
 * logic leakage, logic dynamic, DRAM leakage, DRAM dynamic.
 */

#ifndef MEMNET_POWER_POWER_BREAKDOWN_HH
#define MEMNET_POWER_POWER_BREAKDOWN_HH

namespace memnet
{

/** Energy totals in joules for one run (whole network). */
struct EnergyBreakdown
{
    double idleIoJ = 0.0;
    double activeIoJ = 0.0;
    double logicLeakJ = 0.0;
    double logicDynJ = 0.0;
    double dramLeakJ = 0.0;
    double dramDynJ = 0.0;

    double
    totalJ() const
    {
        return idleIoJ + activeIoJ + logicLeakJ + logicDynJ + dramLeakJ +
               dramDynJ;
    }

    EnergyBreakdown &
    operator+=(const EnergyBreakdown &o)
    {
        idleIoJ += o.idleIoJ;
        activeIoJ += o.activeIoJ;
        logicLeakJ += o.logicLeakJ;
        logicDynJ += o.logicDynJ;
        dramLeakJ += o.dramLeakJ;
        dramDynJ += o.dramDynJ;
        return *this;
    }
};

/** Average power in watts over a measurement window. */
struct PowerBreakdown
{
    double idleIoW = 0.0;
    double activeIoW = 0.0;
    double logicLeakW = 0.0;
    double logicDynW = 0.0;
    double dramLeakW = 0.0;
    double dramDynW = 0.0;

    double
    totalW() const
    {
        return idleIoW + activeIoW + logicLeakW + logicDynW + dramLeakW +
               dramDynW;
    }

    double ioW() const { return idleIoW + activeIoW; }

    /** Scale (e.g. divide by module count for per-HMC figures). */
    PowerBreakdown
    scaled(double f) const
    {
        return PowerBreakdown{idleIoW * f,   activeIoW * f, logicLeakW * f,
                              logicDynW * f, dramLeakW * f, dramDynW * f};
    }

    /** Convert energy over a window into average power. */
    static PowerBreakdown
    fromEnergy(const EnergyBreakdown &e, double seconds)
    {
        PowerBreakdown p;
        if (seconds <= 0.0)
            return p;
        p.idleIoW = e.idleIoJ / seconds;
        p.activeIoW = e.activeIoJ / seconds;
        p.logicLeakW = e.logicLeakJ / seconds;
        p.logicDynW = e.logicDynJ / seconds;
        p.dramLeakW = e.dramLeakJ / seconds;
        p.dramDynW = e.dramDynJ / seconds;
        return p;
    }
};

} // namespace memnet

#endif // MEMNET_POWER_POWER_BREAKDOWN_HH
