#include "sim/cancel.hh"

namespace memnet
{

namespace
{

thread_local const std::atomic<bool> *t_cancelFlag = nullptr;

} // namespace

const std::atomic<bool> *
setCancelFlag(const std::atomic<bool> *flag)
{
    const std::atomic<bool> *prev = t_cancelFlag;
    t_cancelFlag = flag;
    return prev;
}

const std::atomic<bool> *
cancelFlag()
{
    return t_cancelFlag;
}

} // namespace memnet
