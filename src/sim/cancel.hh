/**
 * @file
 * Cooperative cancellation for long-running simulations.
 *
 * A monitor thread (the ParallelRunner hang watchdog) cannot safely
 * interrupt a simulation from outside — the kernel has no preemption
 * points and killing a worker thread would leak the run's whole object
 * graph. Instead the watchdog sets a per-worker atomic stop flag, and
 * the event-dispatch loop (EventQueue::runUntil) polls it every few
 * thousand events. On observation the loop throws CancelledError with
 * a diagnostics snapshot (event-queue health counters plus the hottest
 * host-profiler phases when profiling is on), which unwinds the run
 * cleanly through Simulator's normal destructors.
 *
 * The flag is installed per thread (thread_local), so concurrent
 * ParallelRunner workers are cancellable independently and a run with
 * no flag installed pays a single pointer test per runUntil call —
 * behavior and results are bit-identical to a build without this
 * header unless a cancellation actually fires.
 */

#ifndef MEMNET_SIM_CANCEL_HH
#define MEMNET_SIM_CANCEL_HH

#include <atomic>
#include <stdexcept>
#include <string>

namespace memnet
{

/**
 * Events dispatched between polls of the cooperative stop flag. At the
 * kernel's ~10M events/s this is a cancellation latency well under a
 * millisecond while keeping the poll off the per-event hot path.
 * Shared by the serial dispatch loop (EventQueue::runUntil) and the
 * partitioned kernel's window loop (sim/partition.cc), so both honor
 * the same cancellation latency contract.
 */
constexpr std::uint64_t kCancelPollInterval = 4096;

/** Poll predicate mask: poll when (dispatchCount & mask) == 0. */
constexpr std::uint64_t kCancelPollMask = kCancelPollInterval - 1;

/**
 * Thrown by the dispatch loop when the installed stop flag is set.
 * what() carries the diagnostics captured at the cancellation point.
 */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(const std::string &diagnostics)
        : std::runtime_error(diagnostics)
    {
    }
};

/**
 * Install @p flag as the calling thread's cooperative stop flag
 * (nullptr uninstalls). Returns the previously installed flag so
 * scoped users can restore it.
 */
const std::atomic<bool> *setCancelFlag(const std::atomic<bool> *flag);

/** The calling thread's stop flag (nullptr when none installed). */
const std::atomic<bool> *cancelFlag();

/** RAII installer: sets the thread's stop flag, restores on exit. */
class ScopedCancelFlag
{
  public:
    explicit ScopedCancelFlag(const std::atomic<bool> *flag)
        : prev(setCancelFlag(flag))
    {
    }

    ~ScopedCancelFlag() { setCancelFlag(prev); }

    ScopedCancelFlag(const ScopedCancelFlag &) = delete;
    ScopedCancelFlag &operator=(const ScopedCancelFlag &) = delete;

  private:
    const std::atomic<bool> *prev;
};

} // namespace memnet

#endif // MEMNET_SIM_CANCEL_HH
