#include "sim/event_queue.hh"

namespace memnet
{

EventQueue::~EventQueue()
{
    // Events deschedule themselves on destruction, so every pointer
    // still in the heap here is a live event and safe to touch. Unhook
    // them all first (their later destruction must not come back to the
    // dead queue), then reclaim the pending one-shot callables scheduled
    // via schedule(Tick, F), which are the queue's own.
    for (const Entry &e : heap)
        e.ev->_scheduled = false;
    for (const Entry &e : heap) {
        if (e.oneShot)
            delete e.ev;
    }
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t n = 0;
    while (!heap.empty()) {
        Event *ev = heap.front().ev;
        if (ev->_when > limit)
            break;
        memnet_assert(ev->_when >= _now, "time went backwards");
        removeAt(0);
        _now = ev->_when;
        ev->_scheduled = false;
        ++_fired;
        ++n;
        ev->fire();
    }
    if (_now < limit && limit != kTickMax)
        _now = limit;
    return n;
}

} // namespace memnet
