#include "sim/event_queue.hh"

namespace memnet
{

EventQueue::~EventQueue()
{
    // Drain the heap, deleting any still-pending one-shot events would
    // require ownership knowledge we don't have; components own their
    // events, so simply drop the entries. OneShotEvents that never fired
    // are deliberately leaked only at process teardown of failed runs.
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t n = 0;
    while (!heap.empty()) {
        const Entry top = heap.top();
        Event *ev = top.ev;
        // Stale entry: descheduled or rescheduled since it was pushed.
        if (!ev->_scheduled || ev->_seq != top.seq) {
            heap.pop();
            continue;
        }
        if (top.when > limit)
            break;
        heap.pop();
        memnet_assert(top.when >= _now, "time went backwards");
        _now = top.when;
        ev->_scheduled = false;
        --_pending;
        ++_fired;
        ++n;
        ev->fire();
    }
    if (_now < limit && limit != kTickMax)
        _now = limit;
    return n;
}

} // namespace memnet
