#include "sim/event_queue.hh"

#include "obs/prof.hh"

namespace memnet
{

EventQueue::~EventQueue()
{
    // Events deschedule themselves on destruction, so every pointer
    // still in the heap here is a live event and safe to touch. Unhook
    // them all first (their later destruction must not come back to the
    // dead queue), then reclaim the pending one-shot callables scheduled
    // via schedule(Tick, F), which are the queue's own.
    for (const Entry &e : heap)
        e.ev->_scheduled = false;
    for (const Entry &e : heap) {
        if (e.oneShot)
            delete e.ev;
    }
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    // One scope per runUntil call, not per event: the per-dispatch cost
    // of two clock reads would distort the very loop being measured.
    MEMNET_PROF_SCOPE("eq/dispatch");
    std::uint64_t n = 0;
    while (!heap.empty()) {
        Event *ev = heap.front().ev;
        if (ev->_when > limit)
            break;
        memnet_assert(ev->_when >= _now, "time went backwards");

        // Depth histogram: sample pending() as the dispatch finds it.
        const std::size_t bucket = std::min<std::size_t>(
            std::bit_width(heap.size()), kDepthBuckets - 1);
        ++_depthHist[bucket];

        // Close every dispatch-rate window the queue jumped over. A
        // sparse tail (one event eons ahead) would fill unbounded zero
        // windows, so past a generous cap the window grid realigns to
        // the event instead of recording the gap.
        if (ev->_when - _windowStart >= _dispatchWindowPs) {
            std::uint64_t gap =
                static_cast<std::uint64_t>(ev->_when - _windowStart) /
                static_cast<std::uint64_t>(_dispatchWindowPs);
            if (gap > 1u << 16) {
                _windowStart = ev->_when - ev->_when % _dispatchWindowPs;
                _windowFired = 0;
            } else {
                while (gap--) {
                    _dispatchWindows.push_back(_windowFired);
                    _windowFired = 0;
                    _windowStart += _dispatchWindowPs;
                }
            }
        }
        ++_windowFired;

        removeAt(0);
        _now = ev->_when;
        ev->_scheduled = false;
        ++_fired;
        ++n;
        ev->fire();
    }
    if (_now < limit && limit != kTickMax)
        _now = limit;
    return n;
}

} // namespace memnet
