#include "sim/event_queue.hh"

#include <algorithm>
#include <sstream>

#include "obs/prof.hh"
#include "sim/cancel.hh"

namespace memnet
{

namespace
{

/**
 * Build the hang diagnostics and throw. Captures the event-queue
 * health counters at the cancellation point plus, when the host-side
 * profiler is live, the three hottest phases by inclusive time — the
 * failure manifest records all of it for post-mortem triage.
 */
[[noreturn]] void
throwCancelled(const EventQueue &eq)
{
    std::ostringstream os;
    os << "simulation cancelled by watchdog at t=" << eq.now()
       << " ps: fired=" << eq.fired()
       << " pending=" << eq.pending()
       << " peak_depth=" << eq.peakPending()
       << " scheduled=" << eq.scheduledTotal()
       << " descheduled=" << eq.descheduledTotal();
    if (prof::enabled()) {
        std::vector<prof::ProfPhase> phases =
            prof::flatten(prof::snapshot());
        std::sort(phases.begin(), phases.end(),
                  [](const prof::ProfPhase &a, const prof::ProfPhase &b) {
                      return a.ns > b.ns;
                  });
        os << "; top phases:";
        int shown = 0;
        for (const prof::ProfPhase &p : phases) {
            os << ' ' << p.path << '='
               << static_cast<double>(p.ns) / 1e6 << "ms";
            if (++shown == 3)
                break;
        }
    }
    throw CancelledError(os.str());
}

} // namespace

EventQueue::~EventQueue()
{
    // Events deschedule themselves on destruction, so every pointer
    // still in the heap here is a live event and safe to touch. Unhook
    // them all first (their later destruction must not come back to the
    // dead queue), then reclaim the pending one-shot callables scheduled
    // via schedule(Tick, F), which are the queue's own.
    for (const Entry &e : heap)
        e.ev->_scheduled = false;
    for (const Entry &e : heap) {
        if (e.oneShot)
            delete e.ev;
    }
}

void
EventQueue::dispatchFront()
{
    Event *ev = heap.front().ev;
    memnet_assert(ev->_when >= _now, "time went backwards");

    // Depth histogram: sample pending() as the dispatch finds it.
    const std::size_t bucket = std::min<std::size_t>(
        std::bit_width(heap.size()), kDepthBuckets - 1);
    ++_depthHist[bucket];

    // Close every dispatch-rate window the queue jumped over. A
    // sparse tail (one event eons ahead) would fill unbounded zero
    // windows, so past a generous cap the window grid realigns to
    // the event instead of recording the gap.
    if (ev->_when - _windowStart >= _dispatchWindowPs) {
        std::uint64_t gap =
            static_cast<std::uint64_t>(ev->_when - _windowStart) /
            static_cast<std::uint64_t>(_dispatchWindowPs);
        if (gap > 1u << 16) {
            _windowStart = ev->_when - ev->_when % _dispatchWindowPs;
            _windowFired = 0;
        } else {
            while (gap--) {
                _dispatchWindows.push_back(_windowFired);
                _windowFired = 0;
                _windowStart += _dispatchWindowPs;
            }
        }
    }
    ++_windowFired;

    // Capture the parent component before fire(), which may reschedule
    // the event and restamp its key.
    const Tick sched = ev->_schedTick;
    removeAt(0);
    _now = ev->_when;
    ev->_scheduled = false;
    ++_fired;
    _curParentSched = sched;
    ev->fire();
    _curParentSched = kTickInvalid;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    // One scope per runUntil call, not per event: the per-dispatch cost
    // of two clock reads would distort the very loop being measured.
    MEMNET_PROF_SCOPE("eq/dispatch");
    // Hoisted: a run without an installed stop flag (the overwhelmingly
    // common case) pays one null test per dispatch, nothing more.
    const std::atomic<bool> *cancel = cancelFlag();
    std::uint64_t n = 0;
    while (!heap.empty()) {
        if (cancel && (n & kCancelPollMask) == 0 &&
            cancel->load(std::memory_order_relaxed))
            throwCancelled(*this);
        if (heap.front().ev->_when > limit)
            break;
        dispatchFront();
        ++n;
    }
    if (_now < limit && limit != kTickMax)
        _now = limit;
    return n;
}

std::uint64_t
EventQueue::runUntilBefore(Tick limit)
{
    // No prof scope here: the partitioned window loop calls this once
    // per window (hundreds of thousands of times per run) and attributes
    // the whole loop from the worker instead. The stop-flag poll at
    // n == 0 guarantees at least one poll per window, so partitioned
    // runs observe a watchdog cancellation within one window.
    const std::atomic<bool> *cancel = cancelFlag();
    std::uint64_t n = 0;
    while (!heap.empty()) {
        if (cancel && (n & kCancelPollMask) == 0 &&
            cancel->load(std::memory_order_relaxed))
            throwCancelled(*this);
        if (heap.front().ev->_when >= limit)
            break;
        dispatchFront();
        ++n;
    }
    return n;
}

void
EventQueue::fireFront()
{
    memnet_assert(!heap.empty(), "fireFront on an empty queue");
    dispatchFront();
}

} // namespace memnet
