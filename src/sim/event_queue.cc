#include "sim/event_queue.hh"

namespace memnet
{

EventQueue::~EventQueue()
{
    // Components own their re-armable events, and nothing ties their
    // lifetime to the queue's — an owner may already be destroyed by the
    // time the queue goes down, so pending entries must not be
    // dereferenced here. One-shot callables scheduled via
    // schedule(Tick, F) are the queue's own; their flag was snapshotted
    // into the heap entry at schedule time, so they can be reclaimed
    // without reading any foreign Event. (The old lazy-deletion queue
    // had to leak them.)
    for (const Entry &e : heap) {
        if (e.oneShot)
            delete e.ev;
    }
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t n = 0;
    while (!heap.empty()) {
        Event *ev = heap.front().ev;
        if (ev->_when > limit)
            break;
        memnet_assert(ev->_when >= _now, "time went backwards");
        removeAt(0);
        _now = ev->_when;
        ev->_scheduled = false;
        ++_fired;
        ++n;
        ev->fire();
    }
    if (_now < limit && limit != kTickMax)
        _now = limit;
    return n;
}

} // namespace memnet
