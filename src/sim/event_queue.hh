/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives the whole system. Components own re-armable
 * Event subclasses (no per-firing allocation on the hot path); ad-hoc
 * one-shot work can be scheduled with a callable via schedule().
 *
 * Events at the same tick fire in scheduling order (FIFO), which keeps
 * runs deterministic for a fixed seed. The FIFO order is realized with a
 * compound key (see EventKey) rather than a single global sequence
 * number so the partitioned kernel (sim/partition.hh) can reproduce the
 * serial firing order across several queues.
 *
 * The queue is an intrusive indexed d-ary heap (d = 4): each scheduled
 * Event carries its own heap slot, so deschedule() and reschedule() are
 * true O(log n) removals/rekeys instead of lazy squashes. There are no
 * stale heap entries — reschedule-heavy runs (link sleep timers, core
 * issue events) no longer grow the heap with dead weight, and the pop
 * path never filters. A 4-ary layout keeps the sift paths short and the
 * child scans within one cache line of pointers.
 */

#ifndef MEMNET_SIM_EVENT_QUEUE_HH
#define MEMNET_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/log.hh"
#include "sim/types.hh"

namespace memnet
{

class EventQueue;

/**
 * Total firing order of an event, portable across queues.
 *
 * Serially, same-tick FIFO order could be kept with one global sequence
 * number; a partitioned run has no global counter, so the order is
 * decomposed into pieces each partition can compute locally:
 *
 *  - when:   the firing tick;
 *  - sched:  the queue's now() at the schedule()/reschedule() call;
 *  - parent: the sched of the event that was firing when this one was
 *            scheduled (kTickInvalid when scheduled outside the
 *            dispatch loop, i.e. during construction);
 *  - ctr:    a per-queue monotone counter breaking remaining ties.
 *
 * On a single queue, lexicographic (when, sched, parent, ctr) order is
 * exactly the legacy (when, seq) FIFO order: sched is monotone
 * non-decreasing in seq (time never goes backwards), events firing at
 * one tick fire in seq order so their scheds — the parents of what they
 * schedule — are also non-decreasing in seq, and ctr is seq itself.
 * Cross-partition messages carry the (sched, parent) their serial
 * counterpart would have had, which is what lets the deterministic
 * partitioned mode replay the serial interleaving (sim/partition.hh);
 * their ctr sorts after all local events (kRemoteCtrBit) — full
 * (when, sched, parent) collisions across a partition boundary are the
 * one place the parallel order may deviate from the serial one, which
 * the differential tests bound.
 */
struct EventKey
{
    Tick when = 0;
    Tick sched = 0;
    Tick parent = kTickInvalid;
    std::uint64_t ctr = 0;

    /** Set on message ctrs so remote ties sort after local events. */
    static constexpr std::uint64_t kRemoteCtrBit = 1ULL << 63;

    bool
    operator<(const EventKey &o) const
    {
        if (when != o.when)
            return when < o.when;
        if (sched != o.sched)
            return sched < o.sched;
        if (parent != o.parent)
            return parent < o.parent;
        return ctr < o.ctr;
    }
};

/**
 * Base class for schedulable events. An Event may be scheduled on at most
 * one queue at a time; descheduling and rescheduling are supported.
 */
class Event
{
  public:
    /**
     * An event still sitting in a queue removes itself on destruction,
     * so tearing down a component mid-run (a Network rebuilt on a live
     * queue, a manager destroyed before its EventQueue) never leaves a
     * dangling pointer in the heap.
     */
    virtual ~Event();

    /** Invoked when simulated time reaches the scheduled tick. */
    virtual void fire() = 0;

    /** @return true while the event sits in a queue. */
    bool scheduled() const { return _scheduled; }

    /** @return the tick this event is (or was last) scheduled for. */
    Tick when() const { return _when; }

  protected:
    /**
     * See OneShotEvent. The flag is snapshotted into the heap entry at
     * schedule time so queue teardown can tell its own pending
     * one-shots apart from component-owned re-armable events.
     */
    bool _oneShot = false;

  private:
    friend class EventQueue;

    bool _scheduled = false;
    Tick _when = kTickInvalid;
    /** Tick the schedule()/reschedule() call was made at. */
    Tick _schedTick = 0;
    /** _schedTick of the event firing when this one was scheduled. */
    Tick _parentTick = kTickInvalid;
    /** Per-queue tie-break counter (the legacy sequence number). */
    std::uint64_t _seq = 0;
    /** Slot in the owning queue's heap while scheduled. */
    std::size_t _slot = 0;
    /** The queue holding this event while scheduled. */
    EventQueue *_queue = nullptr;
};

/** Event wrapping an arbitrary callable; fires once then deletes itself. */
template <typename F>
class OneShotEvent : public Event
{
  public:
    explicit OneShotEvent(F f) : func(std::move(f)) { _oneShot = true; }

    void
    fire() override
    {
        F local(std::move(func));
        delete this;
        local();
    }

  private:
    F func;
};

/** Event calling a member function of its owner; re-armable. */
template <typename T, void (T::*Method)()>
class MemberEvent : public Event
{
  public:
    explicit MemberEvent(T *owner) : obj(owner) {}

    void fire() override { (obj->*Method)(); }

  private:
    T *obj;
};

/**
 * The central time-ordered queue of pending events.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule an event at an absolute tick (>= now()).
     * @param ev event to arm; must not already be scheduled.
     * @param when absolute firing tick.
     */
    void
    schedule(Event *ev, Tick when)
    {
        memnet_assert(!ev->_scheduled, "event double-scheduled");
        memnet_assert(when >= _now,
                      "event scheduled in the past: ", when, " < ", _now);
        ev->_scheduled = true;
        ev->_when = when;
        ev->_schedTick = _now;
        ev->_parentTick = _curParentSched;
        ev->_seq = nextSeq++;
        ev->_queue = this;
        ev->_slot = heap.size();
        heap.push_back({ev, ev->_oneShot});
        siftUp(ev->_slot);
        ++_scheduledTotal;
        if (heap.size() > _peakDepth)
            _peakDepth = heap.size();
    }

    /**
     * Schedule with an explicit firing key instead of the natural local
     * one. Used by the partitioned kernel to apply cross-partition
     * messages with the key their serial counterpart would have carried;
     * never needed on the serial path.
     */
    void
    scheduleWithKey(Event *ev, const EventKey &key)
    {
        memnet_assert(!ev->_scheduled, "event double-scheduled");
        memnet_assert(key.when >= _now, "message applied in the past: ",
                      key.when, " < ", _now);
        ev->_scheduled = true;
        ev->_when = key.when;
        ev->_schedTick = key.sched;
        ev->_parentTick = key.parent;
        ev->_seq = key.ctr;
        ev->_queue = this;
        ev->_slot = heap.size();
        heap.push_back({ev, ev->_oneShot});
        siftUp(ev->_slot);
        ++_scheduledTotal;
        if (heap.size() > _peakDepth)
            _peakDepth = heap.size();
    }

    /** Schedule a one-shot callable at an absolute tick. */
    template <typename F>
    void
    schedule(Tick when, F &&f)
    {
        schedule(new OneShotEvent<std::decay_t<F>>(std::forward<F>(f)),
                 when);
    }

    /**
     * Remove a scheduled event from the queue in O(log n). The heap slot
     * is vacated immediately; the event can be destroyed or rescheduled
     * freely afterwards.
     */
    void
    deschedule(Event *ev)
    {
        memnet_assert(ev->_scheduled, "descheduling unscheduled event");
        removeAt(ev->_slot);
        ev->_scheduled = false;
        ++_descheduledTotal;
    }

    /**
     * (Re)schedule, descheduling first if needed. A scheduled event is
     * rekeyed in place — one sift instead of a remove plus an insert.
     * Keeps the legacy FIFO contract: the move consumes a fresh sequence
     * number, exactly as deschedule()+schedule() always did.
     */
    void
    reschedule(Event *ev, Tick when)
    {
        if (!ev->_scheduled) {
            schedule(ev, when);
            return;
        }
        memnet_assert(when >= _now,
                      "event scheduled in the past: ", when, " < ", _now);
        const Tick old = ev->_when;
        ev->_when = when;
        ev->_schedTick = _now;
        ev->_parentTick = _curParentSched;
        ev->_seq = nextSeq++;
        ++_scheduledTotal;
        // The sequence number grew, so an equal-tick rekey still moves
        // the event after its same-tick peers — sift down covers it.
        if (when < old)
            siftUp(ev->_slot);
        else
            siftDown(ev->_slot);
    }

    /**
     * Run until the queue empties or simulated time would exceed @p limit.
     * Events exactly at @p limit are executed.
     * @return number of events fired.
     */
    std::uint64_t runUntil(Tick limit);

    /**
     * Run events strictly before @p limit (the partitioned kernel's
     * window dispatch: events exactly at a window horizon belong to the
     * next window or to a merged tick-step). Unlike runUntil, now() is
     * left at the last fired event — messages due at or after @p limit
     * may still be applied before time formally advances.
     */
    std::uint64_t runUntilBefore(Tick limit);

    /** Run everything. */
    std::uint64_t run() { return runUntil(kTickMax); }

    /**
     * Fire exactly the front event (merged tick-step dispatch). The
     * caller has already checked the front's key; the same per-dispatch
     * bookkeeping as runUntil applies.
     */
    void fireFront();

    /**
     * The front event's firing key, or a key with when == kTickMax for
     * an empty queue (so min-scans can treat empty as "never").
     */
    EventKey
    frontKey() const
    {
        if (heap.empty())
            return EventKey{kTickMax, 0, kTickInvalid, 0};
        const Event *ev = heap.front().ev;
        return EventKey{ev->_when, ev->_schedTick, ev->_parentTick,
                        ev->_seq};
    }

    /** Earliest pending tick (kTickMax when empty). */
    Tick
    nextTick() const
    {
        return heap.empty() ? kTickMax : heap.front().ev->_when;
    }

    /**
     * Advance now() to @p t without dispatching (must not skip pending
     * events). The partitioned coordinator uses this at sync points so
     * phase-boundary accounting (resetStats, collectEnergy) sees the
     * same now() the serial runUntil(limit) would have left.
     */
    void
    advanceTo(Tick t)
    {
        memnet_assert(t >= _now, "advanceTo went backwards");
        memnet_assert(t <= nextTick(), "advanceTo skipped events");
        _now = t;
    }

    /**
     * The _schedTick of the event currently firing (kTickInvalid outside
     * the dispatch loop). Cross-partition messages capture this as the
     * parent component of their key.
     */
    Tick currentParentSched() const { return _curParentSched; }

    /** Number of scheduled events. */
    std::uint64_t pending() const { return heap.size(); }

    /** Total number of events ever fired. */
    std::uint64_t fired() const { return _fired; }

    /** Total number of schedule() calls ever made (incl. reschedules). */
    std::uint64_t scheduledTotal() const { return _scheduledTotal; }

    /** Total number of deschedule() calls ever made. */
    std::uint64_t descheduledTotal() const { return _descheduledTotal; }

    /** High-water mark of pending() over the queue's lifetime. */
    std::uint64_t peakPending() const { return _peakDepth; }

    /** Buckets in the dispatch-time depth histogram. */
    static constexpr std::size_t kDepthBuckets = 33;

    /**
     * Histogram of heap depth sampled at every dispatch: bucket b counts
     * dispatches that found bit_width(pending) == b, i.e. bucket 1 is a
     * single pending event, bucket 11 is 1024..2047, and the last bucket
     * absorbs anything deeper. All deterministic — no wall clock.
     */
    const std::array<std::uint64_t, kDepthBuckets> &
    depthHistogram() const
    {
        return _depthHist;
    }

    /** Length of one dispatch-rate window in ticks. */
    Tick dispatchWindowPs() const { return _dispatchWindowPs; }

    /**
     * Set the dispatch-rate window length. Only meaningful before the
     * first event fires; @p window must be positive.
     */
    void
    setDispatchWindow(Tick window)
    {
        memnet_assert(window > 0, "dispatch window must be positive");
        _dispatchWindowPs = window;
    }

    /**
     * Events fired per completed sim-time window of dispatchWindowPs()
     * ticks, in order from tick 0. The window containing now() is still
     * open and not included.
     */
    const std::vector<std::uint64_t> &
    dispatchWindows() const
    {
        return _dispatchWindows;
    }

  private:
    /** Children per heap node. */
    static constexpr std::size_t kAry = 4;

    /**
     * Heap entry. Carries the owning-ness flag alongside the pointer so
     * ~EventQueue can reclaim pending one-shots without reading any
     * Event whose component owner may already be gone.
     */
    struct Entry {
        Event *ev;
        bool oneShot;
    };

    /**
     * Strict heap order: earlier tick first, FIFO within a tick (the
     * compound key reproduces the legacy sequence-number order exactly;
     * see EventKey).
     */
    static bool
    before(const Event *a, const Event *b)
    {
        if (a->_when != b->_when)
            return a->_when < b->_when;
        if (a->_schedTick != b->_schedTick)
            return a->_schedTick < b->_schedTick;
        if (a->_parentTick != b->_parentTick)
            return a->_parentTick < b->_parentTick;
        return a->_seq < b->_seq;
    }

    void
    place(const Entry &e, std::size_t slot)
    {
        heap[slot] = e;
        e.ev->_slot = slot;
    }

    void
    siftUp(std::size_t slot)
    {
        const Entry e = heap[slot];
        while (slot > 0) {
            const std::size_t parent = (slot - 1) / kAry;
            if (!before(e.ev, heap[parent].ev))
                break;
            place(heap[parent], slot);
            slot = parent;
        }
        place(e, slot);
    }

    void
    siftDown(std::size_t slot)
    {
        const Entry e = heap[slot];
        const std::size_t n = heap.size();
        for (;;) {
            const std::size_t first = slot * kAry + 1;
            if (first >= n)
                break;
            std::size_t best = first;
            const std::size_t last = std::min(first + kAry, n);
            for (std::size_t c = first + 1; c < last; ++c) {
                if (before(heap[c].ev, heap[best].ev))
                    best = c;
            }
            if (!before(heap[best].ev, e.ev))
                break;
            place(heap[best], slot);
            slot = best;
        }
        place(e, slot);
    }

    /** Vacate @p slot, restoring heap order around the moved filler. */
    void
    removeAt(std::size_t slot)
    {
        const Entry filler = heap.back();
        heap.pop_back();
        if (slot == heap.size())
            return; // removed the tail entry
        place(filler, slot);
        if (slot > 0 && before(filler.ev, heap[(slot - 1) / kAry].ev))
            siftUp(slot);
        else
            siftDown(slot);
    }

    /** Pop the front, advance time, and fire it (shared bookkeeping). */
    void dispatchFront();

    std::vector<Entry> heap;
    Tick _now = 0;
    /** _schedTick of the event being fired (kTickInvalid outside). */
    Tick _curParentSched = kTickInvalid;
    std::uint64_t nextSeq = 0;
    std::uint64_t _fired = 0;
    std::uint64_t _scheduledTotal = 0;
    std::uint64_t _descheduledTotal = 0;
    std::uint64_t _peakDepth = 0;
    std::array<std::uint64_t, kDepthBuckets> _depthHist{};
    Tick _dispatchWindowPs = us(100);
    Tick _windowStart = 0;
    std::uint64_t _windowFired = 0;
    std::vector<std::uint64_t> _dispatchWindows;
};

inline Event::~Event()
{
    if (_scheduled)
        _queue->deschedule(this);
}

} // namespace memnet

#endif // MEMNET_SIM_EVENT_QUEUE_HH
