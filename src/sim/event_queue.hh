/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives the whole system. Components own re-armable
 * Event subclasses (no per-firing allocation on the hot path); ad-hoc
 * one-shot work can be scheduled with a callable via schedule().
 *
 * Events at the same tick fire in scheduling order (FIFO), which keeps
 * runs deterministic for a fixed seed.
 */

#ifndef MEMNET_SIM_EVENT_QUEUE_HH
#define MEMNET_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "sim/log.hh"
#include "sim/types.hh"

namespace memnet
{

class EventQueue;

/**
 * Base class for schedulable events. An Event may be scheduled on at most
 * one queue at a time; descheduling and rescheduling are supported.
 */
class Event
{
  public:
    virtual ~Event() = default;

    /** Invoked when simulated time reaches the scheduled tick. */
    virtual void fire() = 0;

    /** @return true while the event sits in a queue. */
    bool scheduled() const { return _scheduled; }

    /** @return the tick this event is (or was last) scheduled for. */
    Tick when() const { return _when; }

  private:
    friend class EventQueue;

    bool _scheduled = false;
    Tick _when = kTickInvalid;
    std::uint64_t _seq = 0;
};

/** Event wrapping an arbitrary callable; fires once then deletes itself. */
template <typename F>
class OneShotEvent : public Event
{
  public:
    explicit OneShotEvent(F f) : func(std::move(f)) {}

    void
    fire() override
    {
        F local(std::move(func));
        delete this;
        local();
    }

  private:
    F func;
};

/** Event calling a member function of its owner; re-armable. */
template <typename T, void (T::*Method)()>
class MemberEvent : public Event
{
  public:
    explicit MemberEvent(T *owner) : obj(owner) {}

    void fire() override { (obj->*Method)(); }

  private:
    T *obj;
};

/**
 * The central time-ordered queue of pending events.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule an event at an absolute tick (>= now()).
     * @param ev event to arm; must not already be scheduled.
     * @param when absolute firing tick.
     */
    void
    schedule(Event *ev, Tick when)
    {
        memnet_assert(!ev->_scheduled, "event double-scheduled");
        memnet_assert(when >= _now,
                      "event scheduled in the past: ", when, " < ", _now);
        ev->_scheduled = true;
        ev->_when = when;
        ev->_seq = nextSeq++;
        heap.push(Entry{when, ev->_seq, ev});
        ++_pending;
        ++_scheduledTotal;
    }

    /** Schedule a one-shot callable at an absolute tick. */
    template <typename F>
    void
    schedule(Tick when, F &&f)
    {
        schedule(new OneShotEvent<std::decay_t<F>>(std::forward<F>(f)),
                 when);
    }

    /**
     * Remove a scheduled event from the queue. The heap entry is lazily
     * discarded (stale entries are detected by sequence number); the event
     * object must outlive its stale entries, so components should own
     * their events for the duration of the run.
     */
    void
    deschedule(Event *ev)
    {
        memnet_assert(ev->_scheduled, "descheduling unscheduled event");
        ev->_scheduled = false;
        --_pending;
    }

    /** Convenience: (re)schedule, descheduling first if needed. */
    void
    reschedule(Event *ev, Tick when)
    {
        if (ev->_scheduled)
            deschedule(ev);
        schedule(ev, when);
    }

    /**
     * Run until the queue empties or simulated time would exceed @p limit.
     * Events exactly at @p limit are executed.
     * @return number of events fired.
     */
    std::uint64_t runUntil(Tick limit);

    /** Run everything. */
    std::uint64_t run() { return runUntil(kTickMax); }

    /** Number of live (non-squashed) scheduled events. */
    std::uint64_t pending() const { return _pending; }

    /** Total number of events ever fired. */
    std::uint64_t fired() const { return _fired; }

    /** Total number of schedule() calls ever made (incl. reschedules). */
    std::uint64_t scheduledTotal() const { return _scheduledTotal; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Event *ev;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        heap;
    Tick _now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t _pending = 0;
    std::uint64_t _fired = 0;
    std::uint64_t _scheduledTotal = 0;
};

} // namespace memnet

#endif // MEMNET_SIM_EVENT_QUEUE_HH
