#include "sim/fault.hh"

#include <algorithm>

#include "sim/log.hh"

namespace memnet
{

namespace
{

/** Stream selector base for per-link flap RNGs (arbitrary constant). */
constexpr std::uint64_t kFlapStream = 0xfa0175ULL;

} // namespace

FaultInjector::FaultInjector(EventQueue &eq, FaultTarget &target,
                             const FaultPlan &plan, std::uint64_t seed)
    : eq(eq), target(target), plan(plan), seed(seed)
{
}

void
FaultInjector::start(Tick at)
{
    memnet_assert(!started, "fault injector started twice");
    started = true;
    if (plan.empty())
        return;

    const int n = target.faultDomains();
    for (const FaultSpec &spec : plan.events) {
        if (spec.link < -1 || spec.link >= n) {
            memnet_fatal("fault plan targets link ", spec.link,
                         " but the network has ", n, " links");
        }
        if (spec.kind == FaultKind::LaneFailure &&
            (spec.survivingLanes < 1 || spec.survivingLanes > 16)) {
            memnet_fatal("lane failure must leave 1..16 lanes, got ",
                         spec.survivingLanes);
        }
        if (spec.kind != FaultKind::LaneFailure && spec.durationPs <= 0)
            memnet_fatal("transient faults need a positive duration");
        if (spec.kind == FaultKind::ErrorBurst &&
            (spec.flitErrorRate < 0.0 || spec.flitErrorRate >= 1.0)) {
            memnet_fatal("error burst rate must be in [0, 1), got ",
                         spec.flitErrorRate);
        }
        const Tick when = std::max(at, spec.at);
        FaultSpec s = spec;
        eq.schedule(when, [this, s] { fire(s); });
    }

    if (plan.flapMeanPeriodPs > 0) {
        if (plan.flapWindowPs <= 0)
            memnet_fatal("flap retrain window must be positive");
        flapRng.reserve(n);
        for (int l = 0; l < n; ++l) {
            flapRng.emplace_back(
                seed, kFlapStream + static_cast<std::uint64_t>(l));
            scheduleFlap(l, at);
        }
    }
}

void
FaultInjector::fire(const FaultSpec &spec)
{
    switch (spec.kind) {
      case FaultKind::LinkRetrain:
        forEachLink(spec.link, &FaultInjector::fireRetrain, spec);
        break;
      case FaultKind::LaneFailure:
        forEachLink(spec.link, &FaultInjector::fireLaneFailure, spec);
        break;
      case FaultKind::ErrorBurst:
        forEachLink(spec.link, &FaultInjector::fireErrorBurst, spec);
        break;
    }
}

void
FaultInjector::forEachLink(int link,
                           void (FaultInjector::*fn)(int,
                                                     const FaultSpec &),
                           const FaultSpec &spec)
{
    if (link >= 0) {
        (this->*fn)(link, spec);
        return;
    }
    for (int l = 0; l < target.faultDomains(); ++l)
        (this->*fn)(l, spec);
}

void
FaultInjector::fireRetrain(int link, const FaultSpec &spec)
{
    ++stats_.retrains;
    target.injectRetrain(link, spec.durationPs);
}

void
FaultInjector::fireLaneFailure(int link, const FaultSpec &spec)
{
    ++stats_.laneFailures;
    target.injectLaneFailure(link, spec.survivingLanes);
}

void
FaultInjector::fireErrorBurst(int link, const FaultSpec &spec)
{
    ++stats_.errorBursts;
    target.injectErrorBurst(link, spec.flitErrorRate);
    eq.schedule(eq.now() + spec.durationPs,
                [this, link] { target.clearErrorBurst(link); });
}

void
FaultInjector::scheduleFlap(int link, Tick from)
{
    const Tick gap = static_cast<Tick>(flapRng[link].exponential(
        static_cast<double>(plan.flapMeanPeriodPs)));
    const Tick when = from + std::max<Tick>(gap, 1);
    eq.schedule(when, [this, link] {
        ++stats_.retrains;
        target.injectRetrain(link, plan.flapWindowPs);
        scheduleFlap(link, eq.now());
    });
}

} // namespace memnet
