/**
 * @file
 * Deterministic fault injection for link-level degradation studies.
 *
 * A FaultPlan describes when and how links degrade: transient retrain
 * windows (the link goes down, queued and in-flight packets are replayed
 * afterwards, nothing is dropped), permanent lane failures (the link's
 * maximum usable width drops for the rest of the run), and error-rate
 * bursts (a time-bounded override of the CRC flit error rate). The
 * FaultInjector turns a plan into event-queue events against an abstract
 * FaultTarget, so this layer stays independent of the network library.
 *
 * Determinism: explicit events fire at their configured ticks; the
 * optional stochastic retrain flapping draws from a dedicated PCG32
 * stream per link seeded from the run seed, so the same seed and plan
 * always produce the same fault sequence, and an empty plan schedules
 * nothing at all (bit-identical to a fault-free run).
 */

#ifndef MEMNET_SIM_FAULT_HH
#define MEMNET_SIM_FAULT_HH

#include <cstdint>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace memnet
{

/** Kinds of injectable link faults. */
enum class FaultKind : std::uint8_t
{
    LinkRetrain, ///< transient: link down for a retrain window
    LaneFailure, ///< permanent: usable width drops to survivingLanes
    ErrorBurst,  ///< transient: flit error rate override for a window
};

/** One scheduled fault event. */
struct FaultSpec
{
    FaultKind kind = FaultKind::LinkRetrain;
    /** Absolute injection tick. */
    Tick at = 0;
    /** Target link id (Network numbering); -1 hits every link. */
    int link = -1;
    /** Retrain window or error-burst duration. */
    Tick durationPs = us(1);
    /** LaneFailure: lanes still working afterwards (1..16). */
    int survivingLanes = 8;
    /** ErrorBurst: flit corruption probability during the window. */
    double flitErrorRate = 0.0;
};

/**
 * Everything the injector needs for one run. Default-constructed plans
 * are empty and guarantee bit-identical behavior to a fault-free run.
 */
struct FaultPlan
{
    std::vector<FaultSpec> events;

    /**
     * Stochastic retrain flapping: every link independently retrains
     * with exponential inter-arrival of this mean (0 disables). Draws
     * come from per-link streams of the run seed, so the flap schedule
     * is reproducible and independent of traffic.
     */
    Tick flapMeanPeriodPs = 0;
    /** Retrain window used by stochastic flaps. */
    Tick flapWindowPs = us(1);

    bool
    empty() const
    {
        return events.empty() && flapMeanPeriodPs <= 0;
    }
};

/** What a fault plan acts upon (implemented by Network). */
class FaultTarget
{
  public:
    virtual ~FaultTarget() = default;

    /** Number of addressable links (valid ids are 0..n-1). */
    virtual int faultDomains() const = 0;

    /** Take the link down for @p window; replay traffic afterwards. */
    virtual void injectRetrain(int link, Tick window) = 0;

    /** Permanently clamp the link's usable width. */
    virtual void injectLaneFailure(int link, int surviving_lanes) = 0;

    /** Override the link's flit error rate (burst start). */
    virtual void injectErrorBurst(int link, double flit_error_rate) = 0;

    /** Restore the link's baseline flit error rate (burst end). */
    virtual void clearErrorBurst(int link) = 0;
};

/** Counters describing what the injector actually fired. */
struct FaultInjectorStats
{
    std::uint64_t retrains = 0;
    std::uint64_t laneFailures = 0;
    std::uint64_t errorBursts = 0;

    std::uint64_t
    total() const
    {
        return retrains + laneFailures + errorBursts;
    }
};

class FaultInjector
{
  public:
    /**
     * @param eq event queue driving the run.
     * @param target link fabric to degrade.
     * @param plan fault schedule (validated in start()).
     * @param seed run seed; only used for stochastic flapping.
     */
    FaultInjector(EventQueue &eq, FaultTarget &target,
                  const FaultPlan &plan, std::uint64_t seed);

    /**
     * Validate the plan and schedule every fault event at or after
     * @p at. A no-op for an empty plan. Calling twice is an error.
     */
    void start(Tick at);

    const FaultInjectorStats &stats() const { return stats_; }

  private:
    void fire(const FaultSpec &spec);
    void forEachLink(int link, void (FaultInjector::*fn)(int,
                                                         const FaultSpec &),
                     const FaultSpec &spec);
    void fireRetrain(int link, const FaultSpec &spec);
    void fireLaneFailure(int link, const FaultSpec &spec);
    void fireErrorBurst(int link, const FaultSpec &spec);
    void scheduleFlap(int link, Tick from);

    EventQueue &eq;
    FaultTarget &target;
    FaultPlan plan;
    const std::uint64_t seed;
    bool started = false;

    /** One independent stream per link for flap inter-arrival draws. */
    std::vector<Random> flapRng;

    FaultInjectorStats stats_;
};

} // namespace memnet

#endif // MEMNET_SIM_FAULT_HH
