#include "sim/log.hh"

#include <mutex>
#include <stdexcept>
#include <utility>

namespace memnet
{

namespace
{

/** Active sink for non-fatal lines; empty means "default stderr". */
LogSink activeSink;

/**
 * Serializes sink replacement and delivery so concurrent simulation
 * runs (ParallelRunner workers) can't interleave lines or race a
 * replacement mid-call. Recursive so a sink that itself warns (e.g. a
 * capturing harness hitting an unexpected condition) doesn't deadlock.
 */
std::recursive_mutex &
logMutex()
{
    static std::recursive_mutex m;
    return m;
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Trace:
        return "trace";
      case LogLevel::Inform:
        return "info";
      case LogLevel::Warn:
        return "warn";
    }
    return "log";
}

LogSink
setLogSink(LogSink sink)
{
    std::lock_guard<std::recursive_mutex> lock(logMutex());
    LogSink prev = std::move(activeSink);
    activeSink = std::move(sink);
    return prev;
}

namespace detail
{

namespace
{

/**
 * Thrown by panic/fatal in unit tests instead of aborting the process.
 * Production binaries never enable this.
 */
bool throwOnError = false;

} // namespace

/** Test hook: make panic/fatal throw std::runtime_error instead. */
void
setThrowOnError(bool enable)
{
    throwOnError = enable;
}

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    if (throwOnError)
        throw std::runtime_error("panic: " + msg);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    if (throwOnError)
        throw std::runtime_error("fatal: " + msg);
    std::exit(1);
}

void
logLine(LogLevel level, const std::string &msg)
{
    // Delivery happens under the lock: a sink is never invoked
    // concurrently with itself or with its own replacement.
    std::lock_guard<std::recursive_mutex> lock(logMutex());
    if (activeSink) {
        activeSink(level, msg);
        return;
    }
    std::fprintf(stderr, "%s: %s\n", logLevelName(level), msg.c_str());
}

void
warnImpl(const std::string &msg)
{
    logLine(LogLevel::Warn, msg);
}

void
informImpl(const std::string &msg)
{
    logLine(LogLevel::Inform, msg);
}

} // namespace detail
} // namespace memnet
