#include "sim/log.hh"

#include <stdexcept>

namespace memnet
{
namespace detail
{

namespace
{

/**
 * Thrown by panic/fatal in unit tests instead of aborting the process.
 * Production binaries never enable this.
 */
bool throwOnError = false;

} // namespace

/** Test hook: make panic/fatal throw std::runtime_error instead. */
void
setThrowOnError(bool enable)
{
    throwOnError = enable;
}

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    if (throwOnError)
        throw std::runtime_error("panic: " + msg);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    if (throwOnError)
        throw std::runtime_error("fatal: " + msg);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace memnet
