/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic() is for internal invariant violations (simulator bugs); fatal()
 * is for user errors (bad configuration). Both terminate. warn() and
 * inform() only print.
 *
 * Non-fatal output (warn/inform, and the obs debug-trace lines) is
 * routed through a replaceable LogSink so harnesses can capture and
 * assert on it; the default sink writes to stderr.
 *
 * Sink replacement and line delivery are serialized by one process-wide
 * mutex, so concurrent simulation runs (see memnet/parallel.hh) neither
 * interleave within a line nor race a setLogSink() call. A sink
 * installed for a parallel sweep must itself tolerate being called from
 * worker threads.
 */

#ifndef MEMNET_SIM_LOG_HH
#define MEMNET_SIM_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>

namespace memnet
{

/** Severity of one non-fatal log line. */
enum class LogLevel
{
    Trace,  ///< obs debug-trace output (MEMNET_TRACE)
    Inform, ///< status messages
    Warn,   ///< non-fatal warnings
};

/** Prefix used for a level by the default stderr sink ("warn", ...). */
const char *logLevelName(LogLevel level);

/** Receives every non-fatal log line (message without prefix/newline). */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/**
 * Replace the process-wide log sink; an empty function restores the
 * default stderr sink. Returns the previous sink (empty when the
 * default was active) so scoped captures can restore it.
 */
LogSink setLogSink(LogSink sink);

namespace detail
{

/** Fold any streamable arguments into one string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Deliver one line to the active sink (used by warn/inform/trace). */
void logLine(LogLevel level, const std::string &msg);

/** Test hook: panic/fatal throw std::runtime_error instead of aborting. */
void setThrowOnError(bool enable);

} // namespace detail

/** Abort on a simulator bug; never a user error. */
#define memnet_panic(...)                                                   \
    ::memnet::detail::panicImpl(                                            \
        __FILE__, __LINE__, ::memnet::detail::formatMessage(__VA_ARGS__))

/** Exit on a user/configuration error. */
#define memnet_fatal(...)                                                   \
    ::memnet::detail::fatalImpl(                                            \
        __FILE__, __LINE__, ::memnet::detail::formatMessage(__VA_ARGS__))

/** Non-fatal warning to stderr. */
#define memnet_warn(...)                                                    \
    ::memnet::detail::warnImpl(::memnet::detail::formatMessage(__VA_ARGS__))

/** Status message to stderr. */
#define memnet_inform(...)                                                  \
    ::memnet::detail::informImpl(                                           \
        ::memnet::detail::formatMessage(__VA_ARGS__))

/** Cheap always-on assertion used for simulator invariants. */
#define memnet_assert(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            memnet_panic("assertion failed: " #cond " ", ##__VA_ARGS__);    \
        }                                                                   \
    } while (0)

} // namespace memnet

#endif // MEMNET_SIM_LOG_HH
