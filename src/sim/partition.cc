#include "sim/partition.hh"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/prof.hh"
#include "sim/cancel.hh"
#include "sim/log.hh"

namespace memnet
{

namespace
{

/** Tick addition that saturates at kTickMax instead of wrapping. */
Tick
satAdd(Tick a, Tick b)
{
    return a >= kTickMax - b ? kTickMax : a + b;
}

} // namespace

const char *
partitionSyncName(PartitionSync s)
{
    return s == PartitionSync::Barrier ? "barrier" : "lax";
}

bool
parsePartitionSync(const std::string &name, PartitionSync *out)
{
    if (name == "barrier") {
        *out = PartitionSync::Barrier;
        return true;
    }
    if (name == "lax") {
        *out = PartitionSync::Lax;
        return true;
    }
    return false;
}

MailboxMatrix::MailboxMatrix(int parts)
    : parts_(parts),
      boxes_(static_cast<std::size_t>(parts) * parts)
{
}

void
MailboxMatrix::send(int src, int dst, BoundaryMessage msg)
{
    Box &b = box(src, dst);
    std::lock_guard<std::mutex> lock(b.mu);
    // The ctr makes remote keys unique and deterministic: per-box
    // counters follow the sender's program order, which is fixed by
    // simulated time, and the src-rank bits keep two sources' messages
    // distinct at the same destination.
    msg.key.ctr = EventKey::kRemoteCtrBit |
                  (static_cast<std::uint64_t>(src) << 48) | b.nextCtr++;
    b.msgs.push_back(msg);
}

void
MailboxMatrix::drain(int dst, std::vector<BoundaryMessage> &out)
{
    for (int src = 0; src < parts_; ++src) {
        Box &b = box(src, dst);
        std::lock_guard<std::mutex> lock(b.mu);
        out.insert(out.end(), b.msgs.begin(), b.msgs.end());
        b.msgs.clear();
    }
}

bool
SpinBarrier::wait(std::uint64_t *waitNs)
{
    const std::uint64_t gen =
        generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        parties_) {
        // Reset before the generation bump: waiters only release on the
        // bump (acquire), so the zero is visible before anyone can
        // re-enter for the next generation.
        arrived_.store(0, std::memory_order_relaxed);
        generation_.fetch_add(1, std::memory_order_release);
        return !abort_->load(std::memory_order_relaxed);
    }
    const auto t0 = std::chrono::steady_clock::now();
    bool ok = true;
    std::uint64_t spins = 0;
    while (generation_.load(std::memory_order_acquire) == gen) {
        if (abort_->load(std::memory_order_relaxed)) {
            ok = false;
            break;
        }
        // Spin briefly for the parallel-hardware case, then yield every
        // iteration: once the peers are descheduled (oversubscribed or
        // single-core hosts) further spinning only burns the timeslice
        // the releasing thread needs.
        if (++spins > 256)
            std::this_thread::yield();
    }
    if (waitNs) {
        *waitNs += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
    }
    return ok && !abort_->load(std::memory_order_relaxed);
}

PartitionRunner::PartitionRunner(std::vector<EventQueue *> queues,
                                 std::vector<Tick> lookaheadPs,
                                 ApplyFn apply, PartitionSync sync,
                                 Tick laxWindowPs)
    : queues_(std::move(queues)),
      look_(std::move(lookaheadPs)),
      apply_(std::move(apply)),
      sync_(sync),
      laxWindow_(laxWindowPs),
      mail_(static_cast<int>(queues_.size())),
      barrier_(static_cast<int>(queues_.size()), abort_)
{
    const std::size_t p = queues_.size();
    memnet_assert(p >= 2, "a partitioned run needs >= 2 partitions");
    memnet_assert(look_.size() == p * p,
                  "lookahead matrix must be partitions^2");
    for (std::size_t src = 0; src < p; ++src) {
        for (std::size_t dst = 0; dst < p; ++dst) {
            const Tick l = look_[src * p + dst];
            memnet_assert(src == dst || l > 0,
                          "cross-partition edge ", src, " -> ", dst,
                          " has zero lookahead; conservative sync "
                          "would deadlock");
        }
    }
    if (sync_ == PartitionSync::Lax)
        memnet_assert(laxWindow_ > 0, "lax window must be positive");
    horizons_ =
        std::make_unique<std::atomic<Tick>[]>(p);
    eff_.resize(p);
    scratch_.resize(p);
    errors_.resize(p);
    lane_.resize(p);
}

Tick
PartitionRunner::nextSyncPoint(Tick after, Tick limit, Tick grid) const
{
    if (grid <= 0)
        return limit;
    const Tick next = satAdd(after - after % grid, grid);
    return std::min(next, limit);
}

void
PartitionRunner::drainInbox(int dst, Tick floor)
{
    std::vector<BoundaryMessage> &buf = scratch_[dst];
    mail_.drain(dst, buf);
    for (BoundaryMessage &m : buf) {
        if (m.key.when < floor)
            m.key.when = floor;
        apply_(dst, m);
    }
    buf.clear();
}

void
PartitionRunner::mergedStep(Tick s)
{
    // Fire everything due exactly at the sync point in global compound-
    // key order. Events fired here may schedule further same-tick local
    // events (the rescan picks them up); messages they send are due at
    // least one lookahead later, so the step itself never delivers.
    for (;;) {
        int best = -1;
        EventKey bestKey{};
        for (std::size_t i = 0; i < queues_.size(); ++i) {
            const EventKey k = queues_[i]->frontKey();
            if (k.when > s)
                continue;
            if (best < 0 || k < bestKey) {
                best = static_cast<int>(i);
                bestKey = k;
            }
        }
        if (best < 0)
            break;
        queues_[static_cast<std::size_t>(best)]->fireFront();
    }
    for (EventQueue *q : queues_)
        q->advanceTo(s);
    for (int dst = 0; dst < partitions(); ++dst)
        drainInbox(dst, 0);
}

void
PartitionRunner::coordinate(Tick limit, Tick grid)
{
    // Every worker is parked between the two barriers, so the
    // coordinator owns all queues: apply the previous window's sends
    // first (every one of them is in a mailbox — the entry barrier
    // ordered the windows before this call), making each queue's
    // nextTick() an exact progress bound. Draining from a worker's own
    // loop instead would race a slower peer still mid-window.
    for (int dst = 0; dst < partitions(); ++dst)
        drainInbox(dst, 0);

    const std::size_t p = queues_.size();
    Tick minHead = kTickMax;
    for (EventQueue *q : queues_)
        minHead = std::min(minHead, q->nextTick());

    // Every partition has reached the sync point: execute it (and any
    // further empty grid points) as merged tick-steps.
    while (minHead >= syncPoint_) {
        mergedStep(syncPoint_);
        if (syncPoint_ == limit) {
            done_.store(true, std::memory_order_relaxed);
            return;
        }
        syncPoint_ = nextSyncPoint(syncPoint_, limit, grid);
        minHead = kTickMax;
        for (EventQueue *q : queues_)
            minHead = std::min(minHead, q->nextTick());
    }

    // Earliest-effect bounds, relaxed to a fixed point: eff_[q] lower-
    // bounds the tick of *any* future firing on q — its own heap head,
    // or an event induced by a message chain relayed through other
    // partitions (src fires no earlier than eff_[src], so anything it
    // sends dst lands no earlier than eff_[src] + L). A raw nextTick()
    // is not such a bound: a drained-empty partition reports kTickMax
    // yet wakes as soon as a peer's response reaches it, and a horizon
    // granted from kTickMax would let that peer race past the reply
    // the woken partition is about to send. Edge weights are positive,
    // so P - 1 relaxation sweeps reach the fixed point.
    for (std::size_t q = 0; q < p; ++q)
        eff_[q] = queues_[q]->nextTick();
    for (bool changed = true; changed;) {
        changed = false;
        for (std::size_t src = 0; src < p; ++src) {
            for (std::size_t dst = 0; dst < p; ++dst) {
                if (src == dst)
                    continue;
                const Tick l = lookahead(static_cast<int>(src),
                                         static_cast<int>(dst));
                if (l == kTickMax)
                    continue;
                const Tick via = satAdd(eff_[src], l);
                if (via < eff_[dst]) {
                    eff_[dst] = via;
                    changed = true;
                }
            }
        }
    }

    // Conservative horizons: dst may dispatch strictly before the
    // earliest tick any incoming edge could still deliver at, clamped
    // to the sync point so events *at* it stay with the merged step.
    // The minimum-head partition always gets a horizon past its head
    // (eff_[src] >= minHead and L > 0), so windows make progress.
    for (std::size_t dst = 0; dst < p; ++dst) {
        Tick h = syncPoint_;
        for (std::size_t src = 0; src < p; ++src) {
            if (src == dst)
                continue;
            const Tick l = lookahead(static_cast<int>(src),
                                     static_cast<int>(dst));
            if (l == kTickMax)
                continue;
            h = std::min(h, satAdd(eff_[src], l));
        }
        horizons_[dst].store(h, std::memory_order_relaxed);
    }
}

void
PartitionRunner::runBarrierMode(int rank, Tick limit, Tick grid)
{
    EventQueue &eq = *queues_[static_cast<std::size_t>(rank)];
    PartitionLaneStats &st = lane_[static_cast<std::size_t>(rank)];
    if (rank == 0)
        syncPoint_ = nextSyncPoint(eq.now(), limit, grid);
    for (;;) {
        if (!barrier_.wait(&st.barrierWaitNs))
            return;
        if (rank == 0)
            coordinate(limit, grid);
        if (!barrier_.wait(&st.barrierWaitNs))
            return;
        if (done_.load(std::memory_order_relaxed))
            return;
        eq.runUntilBefore(
            horizons_[static_cast<std::size_t>(rank)].load(
                std::memory_order_relaxed));
        ++st.windows;
    }
}

void
PartitionRunner::runLaxMode(int rank, Tick limit)
{
    EventQueue &eq = *queues_[static_cast<std::size_t>(rank)];
    PartitionLaneStats &st = lane_[static_cast<std::size_t>(rank)];
    // Every rank sees the same window sequence (queues enter a phase
    // at a common now()), so the drains below always cover exactly the
    // completed windows — that, not the bump floor, is what keeps lax
    // runs deterministic from run to run.
    Tick w = eq.now();
    for (;;) {
        // Entry barrier: the previous window is complete on every
        // rank, so all of its sends are in the mailboxes and no rank
        // is producing new ones while the drains run.
        if (!barrier_.wait(&st.barrierWaitNs))
            return;
        // Deliveries the sender outran are bumped to this window's
        // start — the approximation lax mode trades for speed. On the
        // final pass (w == limit) the bump parks them at the limit,
        // still scheduled, so a following phase resumes with nothing
        // lost.
        drainInbox(rank, w);
        if (!barrier_.wait(&st.barrierWaitNs))
            return;
        if (w >= limit)
            return;
        const Tick next = std::min(limit, satAdd(w, laxWindow_));
        if (next == limit)
            eq.runUntil(limit);
        else
            eq.runUntilBefore(next);
        ++st.windows;
        w = next;
    }
}

void
PartitionRunner::workerBody(int rank, Tick limit, Tick grid)
{
    // One scope per lane per phase, covering windows and barrier waits
    // alike (runUntilBefore carries no eq/dispatch scope — per-window
    // clock reads would distort the loop). Lane 0 nests under the
    // caller's sim/measure; the other lanes are thread roots.
    MEMNET_PROF_SCOPE("part/worker");
    try {
        if (sync_ == PartitionSync::Barrier)
            runBarrierMode(rank, limit, grid);
        else
            runLaxMode(rank, limit);
    } catch (...) {
        errors_[static_cast<std::size_t>(rank)] =
            std::current_exception();
        abort_.store(true, std::memory_order_release);
    }
}

void
PartitionRunner::runUntil(Tick limit, Tick epochGridPs)
{
    const int p = partitions();
    abort_.store(false, std::memory_order_relaxed);
    done_.store(false, std::memory_order_relaxed);
    std::fill(errors_.begin(), errors_.end(), nullptr);

    // Workers inherit the calling thread's cooperative stop flag, so a
    // ParallelRunner watchdog cancellation reaches every partition: the
    // first worker to observe it throws CancelledError, flips the abort
    // flag, and the barriers release the rest within one poll interval.
    const std::atomic<bool> *cancel = cancelFlag();

    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(p) - 1);
    for (int r = 1; r < p; ++r) {
        workers.emplace_back([this, r, limit, epochGridPs, cancel] {
            ScopedCancelFlag scoped(cancel);
            workerBody(r, limit, epochGridPs);
        });
    }
    workerBody(0, limit, epochGridPs);
    for (std::thread &t : workers)
        t.join();

    for (std::exception_ptr &e : errors_) {
        if (e)
            std::rethrow_exception(e);
    }
}

} // namespace memnet
