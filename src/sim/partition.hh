/**
 * @file
 * Partitioned parallel event kernel: conservative-lookahead windowed
 * execution of several EventQueues on a worker pool.
 *
 * A partitioned run shards the simulated machine into P partitions,
 * each owning one EventQueue and the components scheduled on it.
 * Partitions interact only through boundary messages posted to a
 * mutex-guarded mailbox matrix; every cross-partition edge (src, dst)
 * declares a strictly positive lookahead L[src][dst]: a lower bound,
 * in ticks, on how far in the future any message sent by src can be
 * due at dst. For this simulator the lookahead comes from physical
 * pipeline delays — the host-interface SERDES on the processor ->
 * channel edge and the response SERDES + router stage on the channel
 * -> processor edge (docs/PERFORMANCE.md) — so it is never zero and
 * never requires null messages.
 *
 * Two synchronization modes:
 *
 *  - PartitionSync::Barrier (deterministic): windowed conservative
 *    execution. Each iteration, every rank drains its inbox and
 *    parks at a barrier; the coordinator (rank 0, the calling
 *    thread) computes per-queue earliest-effect bounds E[q] =
 *    min(next[q], min over incoming edges of E[src] + L[src][dst])
 *    as a fixed point — the Chandy-Misra lower bound on any future
 *    firing, including firings induced by messages still to be
 *    relayed through other partitions — and grants each destination
 *    a horizon H[dst] = min over incoming edges of
 *    (E[src] + L[src][dst]), clamped to the next sync point; after
 *    a second barrier every rank dispatches events strictly before
 *    its horizon. Events *at* a sync point (management epochs, phase
 *    limits) are executed by the coordinator alone in a merged
 *    tick-step, in global compound-key order across all queues, which
 *    serializes same-tick cross-partition couplings exactly as the
 *    serial kernel would. Combined with cross-partition messages
 *    carrying the event keys their serial counterparts would have
 *    (net/boundary.hh), this mode is bit-identical to the serial
 *    kernel (enforced by tests/test_partition.cc).
 *
 *  - PartitionSync::Lax (fast screening): fixed time windows of
 *    laxWindowPs; messages are delivered at window granularity (their
 *    due tick bumped to the receiving window's start when the sender
 *    outran it). Run-to-run deterministic, but not serial-identical —
 *    use it for parameter sweeps where ~window-sized latency error on
 *    cross-partition edges is acceptable.
 *
 * The runner itself is model-agnostic: payloads are opaque pointers
 * and message application is delegated to an ApplyFn installed by the
 * model layer (memnet/simulator.cc wires packets, pipes, and write
 * promises through it).
 */

#ifndef MEMNET_SIM_PARTITION_HH
#define MEMNET_SIM_PARTITION_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace memnet
{

/** How a partitioned run synchronizes its partitions. */
enum class PartitionSync : std::uint8_t
{
    Barrier, ///< deterministic; bit-identical to the serial kernel
    Lax,     ///< fixed windows; fast, reproducible, not serial-equal
};

/** "barrier" / "lax". */
const char *partitionSyncName(PartitionSync s);

/** Parse a --partition-sync value; false on unknown name. */
bool parsePartitionSync(const std::string &name, PartitionSync *out);

/**
 * One cross-partition handoff. The sim layer treats payload/channel/
 * kind as opaque routing data for the model layer's ApplyFn; key is
 * the compound event key the receiver schedules the message with —
 * in deterministic mode the sender computes the exact key the
 * corresponding serial event would have carried.
 */
struct BoundaryMessage
{
    EventKey key;
    void *payload = nullptr;
    std::int32_t channel = -1;
    std::uint8_t kind = 0;
};

/**
 * P x P mutex-guarded MPSC mailboxes. send() stamps the message ctr
 * with EventKey::kRemoteCtrBit | src-rank | per-box counter, so remote
 * ties sort after local events, deterministically, and uniquely across
 * sources. Boxes preserve per-source program order, which the model
 * layer's FIFO pipes rely on.
 */
class MailboxMatrix
{
  public:
    explicit MailboxMatrix(int parts);

    /** Post @p msg on the src -> dst edge (thread-safe). */
    void send(int src, int dst, BoundaryMessage msg);

    /**
     * Move every pending message for @p dst into @p out (appended;
     * sources in rank order, program order within a source).
     */
    void drain(int dst, std::vector<BoundaryMessage> &out);

  private:
    struct Box
    {
        std::mutex mu;
        std::vector<BoundaryMessage> msgs;
        std::uint64_t nextCtr = 0;
    };

    Box &box(int src, int dst) { return boxes_[src * parts_ + dst]; }

    int parts_;
    std::vector<Box> boxes_;
};

/**
 * Spinning generation barrier for the window loop. Reusable across
 * iterations; polls an abort flag so a failed or cancelled worker
 * releases everyone within microseconds. Wait wall-clock is
 * accumulated per caller for the run summary's stall attribution.
 */
class SpinBarrier
{
  public:
    SpinBarrier(int parties, const std::atomic<bool> &abort)
        : parties_(parties), abort_(&abort)
    {
    }

    /** @return false when the abort flag was observed. */
    bool wait(std::uint64_t *waitNs);

  private:
    int parties_;
    const std::atomic<bool> *abort_;
    std::atomic<int> arrived_{0};
    std::atomic<std::uint64_t> generation_{0};
};

/** Per-partition execution counters, accumulated across phases. */
struct PartitionLaneStats
{
    std::uint64_t windows = 0;      ///< dispatch windows executed
    std::uint64_t barrierWaitNs = 0; ///< wall-clock spent in barriers
};

/**
 * Drives P EventQueues to a common time limit. runUntil() spawns
 * P - 1 worker threads and runs rank 0 on the calling thread, so
 * phase-boundary work before and after each call (resetStats,
 * auditor checkpoints, energy collection) stays single-threaded.
 */
class PartitionRunner
{
  public:
    /** Applies one drained message to partition @p dst's model. */
    using ApplyFn = std::function<void(int dst, BoundaryMessage &msg)>;

    /**
     * @param queues      one EventQueue per partition (>= 2)
     * @param lookaheadPs row-major P x P edge lookaheads; kTickMax
     *                    marks "no edge", every real edge must be > 0
     * @param apply       model-layer message application
     * @param sync        Barrier (deterministic) or Lax
     * @param laxWindowPs fixed window length for Lax mode
     */
    PartitionRunner(std::vector<EventQueue *> queues,
                    std::vector<Tick> lookaheadPs, ApplyFn apply,
                    PartitionSync sync, Tick laxWindowPs);

    /**
     * Run every partition to @p limit (events at the limit included,
     * as EventQueue::runUntil). In Barrier mode @p epochGridPs > 0
     * additionally serializes every multiple of the grid as a merged
     * tick-step, which any run with management epochs needs so epoch
     * work observes a globally consistent machine. Callable
     * repeatedly (warmup then measure); counters accumulate.
     */
    void runUntil(Tick limit, Tick epochGridPs);

    /** The mailbox matrix boundary components send through. */
    MailboxMatrix &mail() { return mail_; }

    int partitions() const { return static_cast<int>(queues_.size()); }

    PartitionSync syncMode() const { return sync_; }

    const std::vector<PartitionLaneStats> &
    laneStats() const
    {
        return lane_;
    }

  private:
    Tick lookahead(int src, int dst) const
    {
        return look_[static_cast<std::size_t>(src) * queues_.size() +
                     static_cast<std::size_t>(dst)];
    }

    Tick nextSyncPoint(Tick after, Tick limit, Tick grid) const;

    void workerBody(int rank, Tick limit, Tick grid);
    void runBarrierMode(int rank, Tick limit, Tick grid);
    void runLaxMode(int rank, Tick limit);

    /** Rank 0 between the barriers: merged steps + horizon grants. */
    void coordinate(Tick limit, Tick grid);

    /** Fire every event at exactly @p s across all queues, in key
     *  order, then advance every queue to @p s and apply the step's
     *  own boundary messages. */
    void mergedStep(Tick s);

    /** Apply dst's pending messages; dues below @p floor are bumped
     *  (Lax mode only; Barrier mode passes 0 = never bumps). */
    void drainInbox(int dst, Tick floor);

    std::vector<EventQueue *> queues_;
    std::vector<Tick> look_;
    ApplyFn apply_;
    PartitionSync sync_;
    Tick laxWindow_;

    MailboxMatrix mail_;
    std::atomic<bool> abort_{false};
    SpinBarrier barrier_;
    std::unique_ptr<std::atomic<Tick>[]> horizons_;
    std::atomic<bool> done_{false};
    /** Coordinator-only sync-point cursor (rank 0 touches it while
     *  the workers are parked, so a plain member is race-free). */
    Tick syncPoint_ = 0;
    /** Coordinator scratch: per-partition earliest-effect bounds. */
    std::vector<Tick> eff_;
    std::vector<std::vector<BoundaryMessage>> scratch_;
    std::vector<std::exception_ptr> errors_;
    std::vector<PartitionLaneStats> lane_;
};

} // namespace memnet

#endif // MEMNET_SIM_PARTITION_HH
