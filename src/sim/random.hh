/**
 * @file
 * Deterministic pseudo-random number generation (PCG32).
 *
 * Every stochastic component owns a Random stream seeded from the run
 * seed plus a stable stream id, so adding components never perturbs the
 * draws seen by existing ones.
 */

#ifndef MEMNET_SIM_RANDOM_HH
#define MEMNET_SIM_RANDOM_HH

#include <cmath>
#include <cstdint>

namespace memnet
{

/** PCG32 generator (O'Neill); small, fast, statistically solid. */
class Random
{
  public:
    /**
     * @param seed run-level seed.
     * @param stream component-level stream selector.
     */
    explicit Random(std::uint64_t seed = 0x853c49e6748fea9bULL,
                    std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        inc = (stream << 1u) | 1u;
        state = 0;
        next();
        state += seed;
        next();
    }

    /** Next raw 32-bit draw. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state;
        state = old * 6364136223846793005ULL + inc;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /** Uniform integer in [0, n). n must be > 0. */
    std::uint32_t
    below(std::uint32_t n)
    {
        // Lemire-style rejection-free mapping is fine here; a slight
        // modulo bias at n close to 2^32 never occurs in our uses.
        return static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(next()) * n) >> 32);
    }

    /** Uniform 64-bit integer in [0, n). */
    std::uint64_t
    below64(std::uint64_t n)
    {
        // Compose from two 32-bit draws; exact enough for address picks.
        std::uint64_t r =
            (static_cast<std::uint64_t>(next()) << 32) | next();
        return r % n;
    }

    /** Exponentially distributed double with the given mean. */
    double
    exponential(double mean)
    {
        double u = uniform();
        if (u <= 0.0)
            u = 1e-12;
        return -mean * std::log(1.0 - u + 1e-18);
    }

    /** Bernoulli draw. */
    bool chance(double p) { return uniform() < p; }

  private:
    std::uint64_t state;
    std::uint64_t inc;
};

} // namespace memnet

#endif // MEMNET_SIM_RANDOM_HH
