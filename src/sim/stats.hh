/**
 * @file
 * Lightweight statistics accumulators.
 *
 * These are deliberately simple value types; components embed them and
 * the facade reads them out at the end of a run.
 */

#ifndef MEMNET_SIM_STATS_HH
#define MEMNET_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/log.hh"
#include "sim/types.hh"

namespace memnet
{

/** Running mean over double samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum += v;
        ++n;
    }

    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
    std::uint64_t count() const { return n; }
    double total() const { return sum; }

    void
    reset()
    {
        sum = 0.0;
        n = 0;
    }

  private:
    double sum = 0.0;
    std::uint64_t n = 0;
};

/**
 * Integrates a piecewise-constant value over simulated time, e.g. power
 * into energy or a state indicator into residency time.
 */
class TimeIntegrator
{
  public:
    /** Start integrating @p value at @p now. */
    void
    start(Tick now, double value)
    {
        last = now;
        current = value;
    }

    /** Change the integrated value, accruing the elapsed interval. */
    void
    update(Tick now, double value)
    {
        accrue(now);
        current = value;
    }

    /** Accrue up to @p now without changing the value. */
    void
    accrue(Tick now)
    {
        memnet_assert(now >= last, "integrator time went backwards");
        acc += current * toSeconds(now - last);
        last = now;
    }

    /** Integrated value-seconds so far (call accrue(now) first). */
    double total() const { return acc; }

    /** Value currently being integrated. */
    double value() const { return current; }

    void
    reset(Tick now)
    {
        acc = 0.0;
        last = now;
    }

  private:
    double acc = 0.0;
    double current = 0.0;
    Tick last = 0;
};

/** Fixed-bucket histogram over Tick-valued samples. */
class TickHistogram
{
  public:
    /** @param bounds ascending lower bounds; bucket i counts samples in
     *  [bounds[i], bounds[i+1]). A final open bucket catches the rest. */
    explicit TickHistogram(std::vector<Tick> bounds = {})
        : lowerBounds(std::move(bounds)),
          counts(lowerBounds.size() + 1, 0)
    {
    }

    void
    sample(Tick v)
    {
        // Index of the first bound > v, i.e. 1 past the last bound <= v;
        // bucket 0 is "below all". ROO idle histograms carry tens of
        // bounds and sample on every idle interval, so binary search
        // instead of a linear scan.
        const std::size_t i = static_cast<std::size_t>(
            std::upper_bound(lowerBounds.begin(), lowerBounds.end(), v) -
            lowerBounds.begin());
        ++counts[i];
        ++n;
    }

    /** Count of samples >= lowerBounds[i]. */
    std::uint64_t
    countAtLeast(std::size_t i) const
    {
        std::uint64_t c = 0;
        for (std::size_t b = i + 1; b < counts.size(); ++b)
            c += counts[b];
        return c;
    }

    std::uint64_t bucket(std::size_t i) const { return counts[i]; }
    std::uint64_t samples() const { return n; }
    std::size_t buckets() const { return counts.size(); }

    void
    reset()
    {
        std::fill(counts.begin(), counts.end(), 0);
        n = 0;
    }

  private:
    std::vector<Tick> lowerBounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t n = 0;
};

} // namespace memnet

#endif // MEMNET_SIM_STATS_HH
