/**
 * @file
 * Fundamental simulation types and time units.
 *
 * The whole simulator counts time in integer picoseconds so that every
 * timing constant in the reproduced paper (0.64 ns flit slots, 3.2 ns
 * SERDES, 14 ns wakeups, 100 us epochs, ...) is exactly representable.
 */

#ifndef MEMNET_SIM_TYPES_HH
#define MEMNET_SIM_TYPES_HH

#include <cstdint>

namespace memnet
{

/** Simulation time in picoseconds. */
using Tick = std::int64_t;

/** Sentinel for "no scheduled time". */
constexpr Tick kTickInvalid = -1;

/** Largest representable tick. */
constexpr Tick kTickMax = INT64_MAX;

/** Convert picoseconds to ticks (identity, for readability). */
constexpr Tick
ps(std::int64_t v)
{
    return v;
}

/** Convert nanoseconds to ticks. */
constexpr Tick
ns(std::int64_t v)
{
    return v * 1000;
}

/** Convert microseconds to ticks. */
constexpr Tick
us(std::int64_t v)
{
    return v * 1000 * 1000;
}

/** Convert milliseconds to ticks. */
constexpr Tick
msec(std::int64_t v)
{
    return v * 1000 * 1000 * 1000;
}

/** Convert ticks to seconds as a double (for rates and powers). */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) * 1e-12;
}

/** Convert a double value in nanoseconds to ticks (rounded). */
constexpr Tick
nsf(double v)
{
    return static_cast<Tick>(v * 1000.0 + 0.5);
}

} // namespace memnet

#endif // MEMNET_SIM_TYPES_HH
