#include "workload/processor.hh"

#include <algorithm>

#include "net/packet.hh"
#include "sim/log.hh"

namespace memnet
{

/** Per-core issue state machine. */
struct Processor::Core
{
    Core(Processor &p, int idx, std::uint64_t seed)
        : proc(p), id(idx), rng(seed, 0x9e3779b97f4a7c15ULL + idx)
    {
    }

    void
    tick()
    {
        proc.issueFrom(*this);
    }

    Processor &proc;
    const int id;
    Random rng;

    int outstandingReads = 0;
    int outstandingWrites = 0;
    bool stalledOnReads = false;
    bool stalledOnWrites = false;

    /** Current burst ends at this tick; idle gaps push it forward. */
    Tick burstEnd = 0;

    /** Working-region center (address fraction) for the current burst. */
    double regionFrac = -1.0;

    MemberEvent<Core, &Core::tick> issueEvent{this};
};

Processor::Processor(EventQueue &eq, TrafficTarget &target,
                     const WorkloadProfile &profile,
                     ProcessorParams params)
    : eq(eq), target(target), profile(profile), params(params)
{
    // Calibrate the aggregate access rate so the full-power network sees
    // the profile's channel utilization: per access the channel moves
    // r*16 + (1-r)*80 request bytes and r*80 response bytes, and channel
    // utilization is the mean of the two directions' utilizations.
    const double r = profile.readFraction;
    const double bytes_both = (16.0 * r + 80.0 * (1.0 - r)) + 80.0 * r;
    const double dir_bw = Link::fullBytesPerSec();
    targetRate = profile.channelUtil * 2.0 * dir_bw / bytes_both *
                 params.rateScale;

    const double duty = std::clamp(profile.burstDuty, 0.05, 1.0);
    // Mean issue gap during bursts across `cores` issuing cores.
    gapMeanPs = params.cores * duty / targetRate * 1e12;
    idleMeanPs = profile.idleMeanUs * 1e6;
    burstMeanPs = duty >= 0.999 ? 0.0 : idleMeanPs * duty / (1.0 - duty);

    for (int i = 0; i < params.cores; ++i) {
        cores.push_back(
            std::make_unique<Core>(*this, i, params.seed * 1000003 + i));
    }
    if (auto *net = dynamic_cast<Network *>(&target))
        net->setHost(this);
}

Processor::~Processor() = default;

void
Processor::start(Tick at)
{
    if (params.watchdogTimeoutPs > 0) {
        lastReadCompletion = at;
        eq.schedule(&watchdogEvent, at + params.watchdogTimeoutPs);
    }
    for (auto &c : cores) {
        // Desynchronize cores by a random fraction of the issue gap.
        const Tick jitter =
            static_cast<Tick>(c->rng.uniform() * (gapMeanPs + 1000));
        c->burstEnd =
            at + static_cast<Tick>(c->rng.exponential(
                     burstMeanPs > 0 ? burstMeanPs : 1e12));
        c->regionFrac = profile.addressFracFor(c->rng.uniform());
        eq.schedule(&c->issueEvent, at + jitter);
    }
}

void
Processor::issueFrom(Core &c)
{
    const Tick now = eq.now();

    // Burst/idle alternation: if the burst expired, take an idle gap
    // and move the core's working region (phase change).
    if (burstMeanPs > 0.0 && now >= c.burstEnd) {
        const Tick gap = static_cast<Tick>(c.rng.exponential(idleMeanPs));
        c.burstEnd = now + gap + static_cast<Tick>(
                                     c.rng.exponential(burstMeanPs));
        c.regionFrac = profile.addressFracFor(c.rng.uniform());
        eq.reschedule(&c.issueEvent, now + gap);
        return;
    }

    const bool is_read = c.rng.chance(profile.readFraction);
    if (is_read && c.outstandingReads >= params.maxReadsPerCore) {
        c.stalledOnReads = true; // resume on a read completion
        return;
    }
    if (!is_read && c.outstandingWrites >= params.maxWritesPerCore) {
        c.stalledOnWrites = true; // resume on a write retirement
        return;
    }

    const double frac = profile.drawAddressFrac(c.rng, c.regionFrac);
    std::uint64_t addr = static_cast<std::uint64_t>(
        frac * static_cast<double>(profile.footprintBytes()));
    addr &= ~std::uint64_t{63};

    Packet *pkt = pool.acquire();
    pkt->id = nextPktId++;
    pkt->type = is_read ? PacketType::ReadReq : PacketType::WriteReq;
    pkt->addr = addr;
    pkt->core = c.id;
    pkt->flits = flitsFor(pkt->type);
    pkt->issued = now;

    if (is_read) {
        ++c.outstandingReads;
        ++pendingReads;
    } else {
        ++c.outstandingWrites;
        ++pendingWrites;
    }

    target.inject(pkt);

    eq.reschedule(&c.issueEvent,
                  now + static_cast<Tick>(c.rng.exponential(gapMeanPs)));
}

void
Processor::onWatchdog()
{
    const Tick now = eq.now();
    const Tick starved = now - lastReadCompletion;
    if (pendingReads > 0 && starved >= params.watchdogTimeoutPs) {
        memnet_fatal(
            "read watchdog: ", pendingReads,
            " read(s) outstanding with no completion for ", starved,
            " ps (timeout ", params.watchdogTimeoutPs, " ps, now ", now,
            " ps, ", nReads, " reads completed so far). A link is "
            "likely dropping or wedging packets; if a configured fault "
            "window legitimately exceeds the timeout, raise "
            "watchdogTimeoutPs.");
    }
    // Re-check one timeout after the most recent completion.
    const Tick base = pendingReads > 0 ? lastReadCompletion : now;
    eq.schedule(&watchdogEvent, base + params.watchdogTimeoutPs);
}

void
Processor::readCompleted(Packet *pkt, Tick now)
{
    Core &c = *cores[pkt->core];
    --c.outstandingReads;
    --pendingReads;
    lastReadCompletion = now;
    ++nReads;
    readLat.sample(toSeconds(now - pkt->issued) * 1e9);
    pool.release(pkt);
    if (c.stalledOnReads) {
        c.stalledOnReads = false;
        eq.reschedule(&c.issueEvent, now);
    }
}

void
Processor::writeRetired(Packet *pkt, Tick now)
{
    Core &c = *cores[pkt->core];
    --c.outstandingWrites;
    --pendingWrites;
    ++nWrites;
    pool.release(pkt);
    if (c.stalledOnWrites) {
        c.stalledOnWrites = false;
        eq.reschedule(&c.issueEvent, now);
    }
}

void
Processor::resetStats()
{
    nReads = 0;
    nWrites = 0;
    readLat.reset();
}

} // namespace memnet
