/**
 * @file
 * Closed-loop 16-core processor front end.
 *
 * Substitutes for the paper's gem5 full-system x86 host (Table II). Each
 * core alternates issuing bursts and idle gaps, keeps a bounded number
 * of outstanding reads (MSHR-style) and posted writes, and draws
 * addresses from the workload's access CDF. Because issue is
 * closed-loop, added memory latency feeds back into lost throughput,
 * which is what the paper's allowable-memory-slowdown knob bounds.
 */

#ifndef MEMNET_WORKLOAD_PROCESSOR_HH
#define MEMNET_WORKLOAD_PROCESSOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "net/network.hh"
#include "net/packet_pool.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "workload/profile.hh"

namespace memnet
{

/** Processor configuration (Table II reduced to what traffic needs). */
struct ProcessorParams
{
    int cores = 16;
    /** Outstanding read misses per core. */
    int maxReadsPerCore = 12;
    /** Posted writes in flight per core (write buffer). */
    int maxWritesPerCore = 32;
    std::uint64_t seed = 1;
    /**
     * Scales the calibrated aggregate access rate; multi-channel
     * systems use the channel count here so every channel sees the
     * profile's utilization.
     */
    double rateScale = 1.0;
    /**
     * Stalled-read watchdog: if reads are outstanding and none has
     * completed for this long, the run is aborted with a diagnostic
     * (memnet_fatal) instead of silently starving the event loop.
     * 0 disables. Enabled automatically by Simulator for fault runs.
     */
    Tick watchdogTimeoutPs = 0;
};

class Processor : public EndpointHost
{
  public:
    /**
     * @param target where requests are injected (a Network wires its
     *        host to this Processor automatically; a multi-channel
     *        switch wires each channel's host itself).
     */
    Processor(EventQueue &eq, TrafficTarget &target,
              const WorkloadProfile &profile, ProcessorParams params);
    ~Processor() override;

    /** Begin issuing at @p at. */
    void start(Tick at);

    // EndpointHost
    void readCompleted(Packet *pkt, Tick now) override;
    void writeRetired(Packet *pkt, Tick now) override;

    /** Reset measurement counters (start of measure window). */
    void resetStats();

    std::uint64_t completedReads() const { return nReads; }
    std::uint64_t retiredWrites() const { return nWrites; }
    double avgReadLatencyNs() const { return readLat.mean(); }

    /** Aggregate target access rate (accesses/s) for this profile. */
    double targetAccessRate() const { return targetRate; }

    /** Reads in flight across all cores (watchdog/diagnostics). */
    int outstandingReads() const { return pendingReads; }

    /** Posted writes in flight across all cores (audit census). */
    int outstandingWrites() const { return pendingWrites; }

    /** Packet freelist (profiling: pool reuse vs heap traffic). */
    const PacketPool &packetPool() const { return pool; }

  private:
    struct Core;

    void issueFrom(Core &c);
    void onWatchdog();

    EventQueue &eq;
    TrafficTarget &target;
    const WorkloadProfile &profile;
    const ProcessorParams params;

    std::vector<std::unique_ptr<Core>> cores;

    /** Issue-side packet freelist; completions recycle into it. */
    PacketPool pool;

    double targetRate = 0.0;
    /** Mean issue gap during a burst, in ticks. */
    double gapMeanPs = 0.0;
    double burstMeanPs = 0.0;
    double idleMeanPs = 0.0;

    std::uint64_t nextPktId = 1;
    std::uint64_t nReads = 0;
    std::uint64_t nWrites = 0;
    Average readLat;

    /** Watchdog state. */
    int pendingReads = 0;
    int pendingWrites = 0;
    Tick lastReadCompletion = 0;

    MemberEvent<Processor, &Processor::onWatchdog> watchdogEvent{this};
};

} // namespace memnet

#endif // MEMNET_WORKLOAD_PROCESSOR_HH
