#include "workload/profile.hh"

#include <algorithm>

#include "sim/log.hh"
#include "sim/random.hh"

namespace memnet
{

double
WorkloadProfile::addressFracFor(double u) const
{
    // Walk the piecewise-linear CDF (anchored at (0,0) and (1,1)) and
    // invert the segment containing u.
    double x0 = 0.0, y0 = 0.0;
    for (const CdfPoint &p : cdf) {
        if (u < p.accessFrac) {
            const double dy = p.accessFrac - y0;
            if (dy <= 0.0)
                return p.addrFrac;
            return x0 + (p.addrFrac - x0) * (u - y0) / dy;
        }
        x0 = p.addrFrac;
        y0 = p.accessFrac;
    }
    const double dy = 1.0 - y0;
    if (dy <= 0.0)
        return x0;
    return x0 + (1.0 - x0) * (u - y0) / dy;
}

double
WorkloadProfile::drawAddressFrac(Random &rng, double region_frac) const
{
    if (region_frac >= 0.0 && rng.chance(locality)) {
        const double window =
            regionMB * 1024.0 * 1024.0 /
            static_cast<double>(footprintBytes());
        const double f =
            region_frac + (rng.uniform() - 0.5) * window;
        return std::clamp(f, 0.0, 0.999999);
    }
    return addressFracFor(rng.uniform());
}

namespace
{

std::vector<WorkloadProfile>
makeWorkloads()
{
    std::vector<WorkloadProfile> v;

    // --- NAS class-D style HPC workloads -----------------------------
    // Mostly regular sweeps over large footprints: CDFs near the
    // diagonal, moderate-to-high duty cycles.
    v.push_back({"ua.D", 12, 0.40, 0.70,
                 {{0.30, 0.38}, {0.70, 0.80}}, 0.80, 2.0});
    v.push_back({"lu.D", 9, 0.55, 0.72,
                 {{0.50, 0.52}}, 0.85, 1.5});
    v.push_back({"bt.D", 38, 0.35, 0.70,
                 {{0.25, 0.28}, {0.75, 0.78}}, 0.75, 3.0});
    // sp.D: lowest channel utilization of the suite (Figure 9).
    v.push_back({"sp.D", 36, 0.10, 0.68,
                 {{0.40, 0.42}}, 0.30, 8.0});
    // cg.D: sparse solver; hot index/vector region up front.
    v.push_back({"cg.D", 24, 0.45, 0.75,
                 {{0.20, 0.55}, {0.60, 0.90}}, 0.80, 2.0});
    v.push_back({"mg.D", 26, 0.50, 0.72,
                 {{0.15, 0.45}, {0.50, 0.80}}, 0.80, 2.0});
    // is.D: bucketed integer sort; stepped CDF with cold stretches.
    v.push_back({"is.D", 17, 0.30, 0.55,
                 {{0.20, 0.10}, {0.30, 0.55}, {0.85, 0.75}}, 0.60, 4.0,
                 0.80, 32.0}); // bucket scatter: weaker locality

    // --- Cloud mixes (Table III) --------------------------------------
    // Applications are invoked in sequence, so earlier (lower) address
    // ranges belong to the first apps; hot first apps give convex CDFs
    // and the late-invoked instances leave cold tails (the flat
    // segments of Figure 4 that let far modules idle).
    v.push_back({"mixA", 14, 0.55, 0.70,
                 {{0.30, 0.50}, {0.70, 0.92}}, 0.85, 1.5});
    // mixB: highest channel utilization (~75%), mcf/GemsFDTD heavy.
    v.push_back({"mixB", 11, 0.75, 0.65,
                 {{0.25, 0.55}, {0.50, 0.85}}, 0.92, 1.0,
                 0.85, 48.0}); // mcf/Gems pointer chasing
    v.push_back({"mixC", 13, 0.60, 0.63,
                 {{0.35, 0.60}, {0.65, 0.90}}, 0.85, 1.5});
    v.push_back({"mixD", 9, 0.25, 0.66,
                 {{0.30, 0.55}, {0.55, 0.90}}, 0.55, 5.0});
    v.push_back({"mixE", 8, 0.30, 0.68,
                 {{0.40, 0.70}}, 0.60, 4.0});
    v.push_back({"mixF", 10, 0.35, 0.70,
                 {{0.30, 0.60}, {0.60, 0.88}}, 0.65, 3.0});
    v.push_back({"mixG", 12, 0.50, 0.62,
                 {{0.20, 0.50}, {0.45, 0.82}}, 0.80, 2.0, 0.85, 48.0});

    return v;
}

} // namespace

const std::vector<WorkloadProfile> &
allWorkloads()
{
    static const std::vector<WorkloadProfile> v = makeWorkloads();
    return v;
}

const WorkloadProfile &
workloadByName(const std::string &name)
{
    for (const WorkloadProfile &w : allWorkloads())
        if (w.name == name)
            return w;
    memnet_fatal("unknown workload: ", name);
}

} // namespace memnet
