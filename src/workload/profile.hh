/**
 * @file
 * Synthetic workload profiles.
 *
 * The paper drives its networks with gem5 full-system traces of seven
 * NAS class-D benchmarks and seven SPEC/SPLASH2X cloud mixes. We cannot
 * rerun those, so each workload is distilled into the properties the
 * power study actually consumes (see DESIGN.md "Substitutions"):
 *
 *  - memory footprint (determines network size: ceil(fp / 4 GB) modules
 *    in the small study, ceil(fp / 1 GB) in the big study);
 *  - the cumulative distribution of accesses over the address space
 *    (Figure 4) as piecewise-linear control points;
 *  - target channel utilization at full power (Figure 9);
 *  - read fraction and burstiness (duty cycle + mean idle gap), which
 *    shape the idle-interval distribution that ROO exploits.
 */

#ifndef MEMNET_WORKLOAD_PROFILE_HH
#define MEMNET_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace memnet
{

/** One control point of the access CDF: (address fraction, CDF value). */
struct CdfPoint
{
    double addrFrac;
    double accessFrac;
};

/** Distilled description of one workload. */
struct WorkloadProfile
{
    std::string name;
    /** Memory footprint in gigabytes. */
    double footprintGB = 16.0;
    /**
     * Target utilization of the processor channel at full power
     * (average of the request and response direction utilizations).
     */
    double channelUtil = 0.4;
    /** Fraction of accesses that are reads. */
    double readFraction = 0.67;
    /**
     * Access CDF control points, strictly increasing in both
     * coordinates, implicitly anchored at (0,0) and (1,1).
     */
    std::vector<CdfPoint> cdf;
    /** Fraction of time each core spends in an issuing burst. */
    double burstDuty = 0.8;
    /** Mean idle-gap duration between bursts, microseconds. */
    double idleMeanUs = 2.0;
    /**
     * Spatio-temporal phase locality: during a burst each core works
     * in a region (picked per burst from the CDF); this fraction of
     * its accesses stay within the region window. Locality is what
     * gives edge modules the multi-microsecond idle gaps that rapid
     * on/off exploits — without it every module sees a thin continuous
     * stream from all cores.
     */
    double locality = 0.95;
    /** Width of a core's working region, in megabytes. */
    double regionMB = 96.0;

    std::uint64_t
    footprintBytes() const
    {
        return static_cast<std::uint64_t>(footprintGB *
                                          (1024.0 * 1024.0 * 1024.0));
    }

    /** Modules needed at a given per-module chunk size. */
    int
    modulesFor(std::uint64_t chunk_bytes) const
    {
        const std::uint64_t fp = footprintBytes();
        return static_cast<int>((fp + chunk_bytes - 1) / chunk_bytes);
    }

    /** Inverse-CDF: map u in [0,1) to an address fraction in [0,1). */
    double addressFracFor(double u) const;

    /**
     * Draw one access's address fraction given the core's current
     * region (a fraction, or negative for "no region"): local to the
     * region window with probability `locality`, globally CDF-
     * distributed otherwise.
     */
    double drawAddressFrac(class Random &rng, double region_frac) const;
};

/** The fourteen evaluated workloads (7 NAS-like + 7 cloud mixes). */
const std::vector<WorkloadProfile> &allWorkloads();

/** Lookup by name; fatal if unknown. */
const WorkloadProfile &workloadByName(const std::string &name);

} // namespace memnet

#endif // MEMNET_WORKLOAD_PROFILE_HH
