#include "workload/trace.hh"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "net/packet.hh"
#include "sim/log.hh"
#include "sim/random.hh"

namespace memnet
{

std::vector<TraceRecord>
readTrace(std::istream &in)
{
    std::vector<TraceRecord> out;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        double t_ns;
        std::string op;
        std::string addr_hex;
        int core;
        if (!(ls >> t_ns >> op >> addr_hex >> core) ||
            (op != "R" && op != "W")) {
            memnet_fatal("malformed trace line ", lineno, ": ", line);
        }
        TraceRecord r;
        r.when = nsf(t_ns);
        r.isRead = op == "R";
        r.addr = std::stoull(addr_hex, nullptr, 16);
        r.core = core;
        out.push_back(r);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         return a.when < b.when;
                     });
    return out;
}

void
writeTrace(std::ostream &out, const std::vector<TraceRecord> &trace)
{
    out << "# memnet trace: <time_ns> <R|W> <hex_address> <core>\n";
    for (const TraceRecord &r : trace) {
        out << toSeconds(r.when) * 1e9 << ' '
            << (r.isRead ? 'R' : 'W') << ' ' << std::hex << "0x"
            << r.addr << std::dec << ' ' << r.core << '\n';
    }
}

std::vector<TraceRecord>
generateTrace(const WorkloadProfile &profile, Tick duration,
              std::uint64_t seed, int cores)
{
    // Open-loop rendering of the profile: same aggregate rate, spatial
    // CDF and burst/idle alternation the closed-loop Processor uses.
    const double r = profile.readFraction;
    const double bytes_both = 16.0 * r + 80.0 * (1.0 - r) + 80.0 * r;
    const double rate =
        profile.channelUtil * 2.0 * Link::fullBytesPerSec() /
        bytes_both;
    const double duty = std::clamp(profile.burstDuty, 0.05, 1.0);
    const double gap_mean = cores * duty / rate * 1e12;
    const double idle_mean = profile.idleMeanUs * 1e6;
    const double burst_mean =
        duty >= 0.999 ? 0.0 : idle_mean * duty / (1.0 - duty);

    std::vector<TraceRecord> out;
    for (int c = 0; c < cores; ++c) {
        Random rng(seed * 7919 + c, 0xabcdef12345ULL + c);
        Tick t = static_cast<Tick>(rng.uniform() * gap_mean);
        Tick burst_end =
            burst_mean > 0
                ? static_cast<Tick>(rng.exponential(burst_mean))
                : duration;
        double region = profile.addressFracFor(rng.uniform());
        while (t < duration) {
            if (burst_mean > 0 && t >= burst_end) {
                t += static_cast<Tick>(rng.exponential(idle_mean));
                burst_end =
                    t + static_cast<Tick>(rng.exponential(burst_mean));
                region = profile.addressFracFor(rng.uniform());
                continue;
            }
            TraceRecord rec;
            rec.when = t;
            rec.core = c;
            rec.isRead = rng.chance(r);
            rec.addr = static_cast<std::uint64_t>(
                           profile.drawAddressFrac(rng, region) *
                           static_cast<double>(
                               profile.footprintBytes())) &
                       ~std::uint64_t{63};
            out.push_back(rec);
            t += static_cast<Tick>(rng.exponential(gap_mean));
        }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         return a.when < b.when;
                     });
    return out;
}

TracePlayer::TracePlayer(EventQueue &eq, Network &net,
                         std::vector<TraceRecord> trace)
    : eq(eq), net(net), trace_(std::move(trace))
{
    net.setHost(this);
}

void
TracePlayer::start(Tick at)
{
    origin = at;
    next = 0;
    if (!trace_.empty())
        eq.schedule(&injectEvent, at + trace_[0].when);
}

void
TracePlayer::injectNext()
{
    const Tick now = eq.now();
    while (next < trace_.size() &&
           origin + trace_[next].when <= now) {
        const TraceRecord &r = trace_[next];
        Packet *pkt = pool.acquire();
        pkt->id = next;
        pkt->type =
            r.isRead ? PacketType::ReadReq : PacketType::WriteReq;
        pkt->addr = r.addr;
        pkt->core = r.core;
        pkt->flits = flitsFor(pkt->type);
        pkt->issued = now;
        net.inject(pkt);
        ++next;
        ++injected;
    }
    if (next < trace_.size())
        eq.schedule(&injectEvent, origin + trace_[next].when);
}

void
TracePlayer::readCompleted(Packet *pkt, Tick now)
{
    ++nReads;
    readLat.sample(toSeconds(now - pkt->issued) * 1e9);
    pool.release(pkt);
}

void
TracePlayer::writeRetired(Packet *pkt, Tick now)
{
    ++nWrites;
    pool.release(pkt);
}

} // namespace memnet
