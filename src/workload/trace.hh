/**
 * @file
 * Trace-driven traffic: record format, text (de)serialization, a
 * synthetic trace generator, and an open-loop trace player.
 *
 * The paper drives its networks from gem5 full-system traces; this
 * module gives downstream users the equivalent entry point: capture or
 * synthesize a memory access trace, then replay it through any network
 * configuration to obtain a power report.
 *
 * Text format, one record per line:
 *
 *     <time_ns> <R|W> <hex_address> <core>
 *
 * Lines starting with '#' are comments.
 */

#ifndef MEMNET_WORKLOAD_TRACE_HH
#define MEMNET_WORKLOAD_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/network.hh"
#include "net/packet_pool.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "workload/profile.hh"

namespace memnet
{

/** One memory access of a trace. */
struct TraceRecord
{
    Tick when = 0;
    std::uint64_t addr = 0;
    bool isRead = true;
    int core = 0;

    bool
    operator==(const TraceRecord &o) const
    {
        return when == o.when && addr == o.addr &&
               isRead == o.isRead && core == o.core;
    }
};

/** Parse a trace from a text stream. Fatal on malformed input. */
std::vector<TraceRecord> readTrace(std::istream &in);

/** Serialize a trace to a text stream (readTrace-compatible). */
void writeTrace(std::ostream &out,
                const std::vector<TraceRecord> &trace);

/**
 * Synthesize an open-loop trace with a profile's spatial distribution,
 * intensity and burstiness over @p duration simulated time.
 */
std::vector<TraceRecord> generateTrace(const WorkloadProfile &profile,
                                       Tick duration,
                                       std::uint64_t seed,
                                       int cores = 16);

/**
 * Replays a trace into a network, open loop (records are injected at
 * their recorded times regardless of completions — a trace carries its
 * own timing). Completion statistics are still collected.
 */
class TracePlayer : public EndpointHost
{
  public:
    TracePlayer(EventQueue &eq, Network &net,
                std::vector<TraceRecord> trace);

    /** Schedule all injections starting at @p at. */
    void start(Tick at);

    // EndpointHost
    void readCompleted(Packet *pkt, Tick now) override;
    void writeRetired(Packet *pkt, Tick now) override;

    std::uint64_t completedReads() const { return nReads; }
    std::uint64_t retiredWrites() const { return nWrites; }
    double avgReadLatencyNs() const { return readLat.mean(); }

    /** Packet freelist (profiling: pool reuse vs heap traffic). */
    const PacketPool &packetPool() const { return pool; }

    /** True once every trace record has been injected and retired. */
    bool
    drained() const
    {
        return injected == trace_.size() &&
               nReads + nWrites == injected;
    }

  private:
    void injectNext();

    EventQueue &eq;
    Network &net;
    std::vector<TraceRecord> trace_;
    PacketPool pool;
    std::size_t next = 0;
    std::size_t injected = 0;
    Tick origin = 0;

    std::uint64_t nReads = 0;
    std::uint64_t nWrites = 0;
    Average readLat;

    MemberEvent<TracePlayer, &TracePlayer::injectNext> injectEvent{
        this};
};

} // namespace memnet

#endif // MEMNET_WORKLOAD_TRACE_HH
