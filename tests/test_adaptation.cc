/**
 * @file
 * Multi-epoch adaptation behavior: managers must learn over epochs,
 * recover from violation storms, and respond to workload intensity.
 */

#include <gtest/gtest.h>

#include <memory>

#include "memnet/experiment.hh"
#include "memnet/simulator.hh"
#include "mgmt/manager.hh"
#include "net/network.hh"
#include "sim/event_queue.hh"
#include "workload/processor.hh"

namespace memnet
{
namespace
{

/**
 * Run a managed network and sample total link power fraction at each
 * epoch boundary (just after selections are applied).
 */
class EpochSampler : public ::testing::Test
{
  protected:
    void
    run(Tick horizon)
    {
        const WorkloadProfile &w = workloadByName("mixC");
        topo = Topology::build(TopologyKind::Star,
                               w.modulesFor(1ULL << 30));
        AddressMap amap;
        amap.chunkBytes = 1ULL << 30;
        net = std::make_unique<Network>(eq, topo, dram,
                                        BwMechanism::Vwl, roo, pm,
                                        amap);
        proc = std::make_unique<Processor>(eq, *net, w,
                                           ProcessorParams{});
        ManagerParams mp;
        mp.alphaPct = 5.0;
        mgr = std::make_unique<UnawareManager>(*net, BwMechanism::Vwl,
                                               roo, mp);
        mgr->start(0);
        proc->start(0);

        for (Tick t = us(100); t <= horizon; t += us(100)) {
            eq.runUntil(t + ns(1)); // just past the epoch boundary
            double frac = 0.0;
            int n = 0;
            for (Link *l : net->allLinks()) {
                frac += l->power().mode().powerFrac;
                ++n;
            }
            samples.push_back(frac / n);
        }
    }

    EventQueue eq;
    DramParams dram;
    HmcPowerModel pm;
    RooConfig roo;
    Topology topo{Topology::build(TopologyKind::Star, 1)};
    std::unique_ptr<Network> net;
    std::unique_ptr<Processor> proc;
    std::unique_ptr<UnawareManager> mgr;
    std::vector<double> samples;
};

TEST_F(EpochSampler, FirstEpochIsFullPowerThenModesDrop)
{
    run(us(500));
    ASSERT_GE(samples.size(), 5u);
    // During epoch 0 there is no history: everything at full power.
    // After the first boundary some links must have dropped modes.
    EXPECT_LT(samples.back(), 1.0);
    // Average link power fraction should not grow over time.
    EXPECT_LE(samples.back(), samples.front() + 0.05);
}

TEST_F(EpochSampler, EpochCountMatchesSimulatedTime)
{
    run(us(500));
    EXPECT_EQ(mgr->epochs(), 5u);
}

TEST(Adaptation, LongerRunsDoNotDegradeSavings)
{
    // The Equation-1 running sums must keep the budget stable: power
    // reduction at 8 epochs should be at least as good as at 3.
    Runner r;
    SystemConfig cfg;
    cfg.workload = "mixE";
    cfg.topology = TopologyKind::Star;
    cfg.sizeClass = SizeClass::Big;
    cfg.policy = Policy::Unaware;
    cfg.mechanism = BwMechanism::Vwl;
    cfg.roo = true;
    cfg.warmup = us(100);
    cfg.measure = us(300);
    const double short_red = r.powerReduction(cfg);
    cfg.measure = us(800);
    const double long_red = r.powerReduction(cfg);
    EXPECT_GT(long_red, short_red - 0.05);
}

TEST(Adaptation, QuietWorkloadSavesMoreThanBusyOne)
{
    Runner r;
    auto reduction = [&](const char *wl) {
        SystemConfig cfg;
        cfg.workload = wl;
        cfg.topology = TopologyKind::Star;
        cfg.sizeClass = SizeClass::Big;
        cfg.policy = Policy::Aware;
        cfg.mechanism = BwMechanism::Vwl;
        cfg.roo = true;
        cfg.warmup = us(100);
        cfg.measure = us(300);
        return r.powerReduction(cfg);
    };
    // sp.D has 10% channel utilization, mixB 75%: far more headroom.
    EXPECT_GT(reduction("sp.D"), reduction("mixB"));
}

TEST(Adaptation, StrictSerializationCoreStillProgresses)
{
    // One outstanding read per core: a degenerate latency-bound host.
    SystemConfig cfg;
    cfg.workload = "mixE";
    cfg.topology = TopologyKind::DaisyChain;
    cfg.sizeClass = SizeClass::Small;
    cfg.maxReadsPerCore = 1;
    cfg.maxWritesPerCore = 1;
    cfg.warmup = us(50);
    cfg.measure = us(200);
    const RunResult r = runSimulation(cfg);
    EXPECT_GT(r.completedReads, 100u);
}

} // namespace
} // namespace memnet
