/**
 * @file
 * Tests for the runtime invariant auditor (src/audit).
 *
 * The clean-run tests prove every check holds over real simulations of
 * all four policies; the mutation tests prove the checks actually fire
 * when an invariant is deliberately broken (an auditor that never
 * trips is worthless).
 */

#include <gtest/gtest.h>

#include <memory>

#include "audit/audit.hh"
#include "dram/dram_params.hh"
#include "memnet/simulator.hh"
#include "mgmt/aware.hh"
#include "net/packet_pool.hh"
#include "sim/event_queue.hh"

namespace memnet
{
namespace
{

SystemConfig
auditedConfig(Policy p)
{
    SystemConfig cfg;
    cfg.workload = "mixE";
    cfg.topology = TopologyKind::Star;
    cfg.policy = p;
    cfg.mechanism = BwMechanism::Vwl;
    cfg.roo = true;
    cfg.warmup = us(50);
    cfg.measure = us(150);
    cfg.epochLen = us(30);
    cfg.audit = true; // explicit, so Release test builds audit too
    return cfg;
}

TEST(Audit, CleanRunsPassEveryCheckAllPolicies)
{
    for (Policy p : {Policy::FullPower, Policy::Unaware, Policy::Aware,
                     Policy::StaticTaper}) {
        // failFast is on: any failed invariant aborts the run, so
        // completing the run *is* the assertion.
        const RunResult r = runSimulation(auditedConfig(p));
        EXPECT_GT(r.profile.auditChecksRun, 0u) << policyName(p);
    }
}

TEST(Audit, AuditedRunIsBitIdenticalToBareRun)
{
    // The auditor promises to be purely observational. Release builds
    // can run bare; in Debug both runs audit and the comparison is
    // trivially true — either way nothing diverges.
    SystemConfig on = auditedConfig(Policy::Aware);
    SystemConfig off = on;
    off.audit = false;
    const RunResult a = runSimulation(on);
    const RunResult b = runSimulation(off);
    EXPECT_EQ(a.completedReads, b.completedReads);
    EXPECT_DOUBLE_EQ(a.totalNetworkPowerW, b.totalNetworkPowerW);
    EXPECT_DOUBLE_EQ(a.avgReadLatencyNs, b.avgReadLatencyNs);
    EXPECT_EQ(a.eventsFired, b.eventsFired);
}

class AuditMutation : public ::testing::Test
{
  protected:
    AuditMutation()
        : topo(Topology::build(TopologyKind::TernaryTree, 7))
    {
        amap.chunkBytes = 1ULL << 30;
        amap.modules = 7;
        net = std::make_unique<Network>(eq, topo, dram,
                                        BwMechanism::Vwl, roo, pm,
                                        amap);
    }

    audit::AuditOptions
    recording() const
    {
        audit::AuditOptions o;
        o.failFast = false;
        return o;
    }

    EventQueue eq;
    Topology topo;
    DramParams dram;
    HmcPowerModel pm;
    RooConfig roo;
    AddressMap amap;
    std::unique_ptr<Network> net;
};

TEST_F(AuditMutation, PerturbedLinkEnergyTripsConservationCheck)
{
    eq.runUntil(us(10)); // accrue some idle time on every link
    audit::Auditor a(*net, recording());
    a.onMeasureStart(0);

    a.checkEnergyConservation(eq.now());
    ASSERT_TRUE(a.failures().empty());

    net->requestLink(2).auditPerturbEnergy(1e-3);
    a.checkEnergyConservation(eq.now());
    ASSERT_FALSE(a.failures().empty());
    EXPECT_EQ(a.failures().front().check, "energy-conservation");
}

TEST_F(AuditMutation, PerturbedLinkEnergyIsFatalWhenFailFast)
{
    eq.runUntil(us(10));
    audit::Auditor a(*net); // default options: failFast
    a.onMeasureStart(0);
    net->requestLink(1).auditPerturbEnergy(1e-3);
    EXPECT_DEATH(a.checkEnergyConservation(eq.now()),
                 "energy-conservation");
}

TEST_F(AuditMutation, PerturbedAttributionBucketTripsAttributionCheck)
{
    eq.runUntil(us(10)); // accrue some idle time on every link
    audit::Auditor a(*net, recording());
    a.onMeasureStart(0);

    a.checkEnergyAttribution(eq.now());
    ASSERT_TRUE(a.failures().empty());

    // auditPerturbEnergy bumps the txJ cause bucket without touching
    // residency, so the per-link cause sum drifts away from what
    // full-power x residency predicts.
    net->requestLink(3).auditPerturbEnergy(1e-3);
    a.checkEnergyAttribution(eq.now());
    ASSERT_FALSE(a.failures().empty());
    EXPECT_EQ(a.failures().front().check, "energy-attribution");
}

TEST_F(AuditMutation, PerturbedAttributionBucketIsFatalWhenFailFast)
{
    eq.runUntil(us(10));
    audit::Auditor a(*net); // default options: failFast
    a.onMeasureStart(0);
    net->requestLink(1).auditPerturbEnergy(1e-3);
    EXPECT_DEATH(a.checkEnergyAttribution(eq.now()),
                 "energy-attribution");
}

TEST_F(AuditMutation, OutOfRangeInjectTripsAddressMapCheck)
{
    audit::Auditor a(*net, recording());
    Packet pkt;
    pkt.addr = amap.modules * amap.chunkBytes; // first invalid byte
    a.onInject(pkt, 0);
    ASSERT_FALSE(a.failures().empty());
    EXPECT_EQ(a.failures().front().check, "address-map");

    audit::Auditor ok(*net, recording());
    pkt.addr = amap.modules * amap.chunkBytes - 1;
    ok.onInject(pkt, 0);
    EXPECT_TRUE(ok.failures().empty());
}

TEST_F(AuditMutation, TamperedIspSelectionTripsMonotonicityCheck)
{
    ManagerParams mp;
    AwareManager mgr(*net, BwMechanism::Vwl, roo, mp, AwareOptions{});

    audit::Auditor a(*net, recording());
    a.checkManagerInvariants(mgr);
    ASSERT_TRUE(a.failures().empty());

    // Root narrower than its child: the ISP gather step forbids this
    // (Section VI-A); forging the state must trip the check.
    mgr.requestState(0).selected.bw = 2;
    a.checkManagerInvariants(mgr);
    bool found = false;
    for (const audit::AuditFailure &f : a.failures())
        found = found || f.check == "isp-monotonicity";
    EXPECT_TRUE(found);
}

TEST(AuditCensus, PoolCensusPredicate)
{
    PacketPool pool;
    EXPECT_TRUE(audit::Auditor::packetCensusOk(pool, 0));

    Packet *p = pool.acquire();
    EXPECT_TRUE(audit::Auditor::packetCensusOk(pool, 1));
    // A leaked (or double-counted) packet breaks the census both ways.
    EXPECT_FALSE(audit::Auditor::packetCensusOk(pool, 0));
    EXPECT_FALSE(audit::Auditor::packetCensusOk(pool, 2));

    pool.release(p);
    EXPECT_TRUE(audit::Auditor::packetCensusOk(pool, 0));
    EXPECT_EQ(pool.acquired(), 1u);
    EXPECT_EQ(pool.released(), 1u);
    EXPECT_EQ(pool.inFlight(), 0u);
}

} // namespace
} // namespace memnet
