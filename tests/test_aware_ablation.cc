/**
 * @file
 * Tests for the network-aware ablation switches: each Section-VI
 * ingredient can be disabled independently and the full scheme should
 * not be worse than its ablated variants on the axis each ingredient
 * targets.
 */

#include <gtest/gtest.h>

#include "memnet/experiment.hh"
#include "memnet/simulator.hh"

namespace memnet
{
namespace
{

SystemConfig
awareConfig()
{
    SystemConfig cfg;
    cfg.workload = "mixC";
    cfg.topology = TopologyKind::Star;
    cfg.sizeClass = SizeClass::Big;
    cfg.policy = Policy::Aware;
    cfg.mechanism = BwMechanism::Vwl;
    cfg.roo = true;
    cfg.alphaPct = 5.0;
    cfg.warmup = us(100);
    cfg.measure = us(400);
    return cfg;
}

TEST(AwareAblation, KeyChangesWithFeatures)
{
    SystemConfig a = awareConfig();
    SystemConfig b = a;
    b.aware.wakeCoordination = false;
    EXPECT_NE(Runner::key(a), Runner::key(b));
    b = a;
    b.aware.ispIterations = 1;
    EXPECT_NE(Runner::key(a), Runner::key(b));
}

TEST(AwareAblation, EveryVariantRunsToCompletion)
{
    Runner r;
    r.verbose = false;
    for (int it : {1, 2, 3}) {
        for (bool cong : {false, true}) {
            for (bool wake : {false, true}) {
                for (bool grants : {false, true}) {
                    SystemConfig cfg = awareConfig();
                    cfg.workload = "mixE"; // keep it quick
                    cfg.measure = us(200);
                    cfg.aware.ispIterations = it;
                    cfg.aware.congestionDiscount = cong;
                    cfg.aware.wakeCoordination = wake;
                    cfg.aware.grantPool = grants;
                    const RunResult &res = r.get(cfg);
                    EXPECT_GT(res.completedReads, 50u)
                        << it << cong << wake << grants;
                }
            }
        }
    }
}

TEST(AwareAblation, MoreIspIterationsDoNotHurtPower)
{
    Runner r;
    r.verbose = false;
    SystemConfig one = awareConfig();
    one.aware.ispIterations = 1;
    SystemConfig three = awareConfig();
    const double p1 = r.get(one).totalNetworkPowerW;
    const double p3 = r.get(three).totalNetworkPowerW;
    // Three iterations distribute strictly more AMS; allow sim noise.
    EXPECT_LT(p3, p1 * 1.03);
}

TEST(AwareAblation, WakeCoordinationHelpsRooPerformanceOrPower)
{
    Runner r;
    r.verbose = false;
    SystemConfig with = awareConfig();
    with.mechanism = BwMechanism::None; // pure ROO
    SystemConfig without = with;
    without.aware.wakeCoordination = false;

    const double pw = r.get(with).totalNetworkPowerW;
    const double po = r.get(without).totalNetworkPowerW;
    const double dw = r.degradation(with);
    const double do_ = r.degradation(without);
    // Coordination must win on at least one axis without losing badly
    // on the other.
    const bool power_ok = pw <= po * 1.02;
    const bool perf_ok = dw <= do_ + 0.02;
    EXPECT_TRUE(power_ok && perf_ok)
        << "power " << pw << " vs " << po << ", degradation " << dw
        << " vs " << do_;
}

TEST(AwareAblation, GrantPoolReducesViolations)
{
    Runner r;
    r.verbose = false;
    SystemConfig with = awareConfig();
    with.workload = "mixB"; // busy: violations likely
    with.alphaPct = 2.5;
    SystemConfig without = with;
    without.aware.grantPool = false;
    EXPECT_LE(r.get(with).violations, r.get(without).violations);
}

} // namespace
} // namespace memnet
