/**
 * @file
 * Unit tests for the per-mode delay monitor (virtual queue).
 */

#include <gtest/gtest.h>

#include "mgmt/delay_monitor.hh"

namespace memnet
{
namespace
{

constexpr Tick kFixed = LinkTiming::kSerdesPs + LinkTiming::kRouterPs;

TEST(DelayMonitor, EmptyHasNoLatency)
{
    DelayMonitor m;
    EXPECT_DOUBLE_EQ(m.aggregateLatencyPs(), 0.0);
    EXPECT_EQ(m.packets(), 0u);
}

TEST(DelayMonitor, SinglePacketLatencyIsServiceTime)
{
    DelayMonitor m; // default: full-power configuration
    m.arrival(ns(100), 5);
    // 5 flits * 0.64 ns + serdes + router.
    EXPECT_DOUBLE_EQ(m.aggregateLatencyPs(),
                     static_cast<double>(5 * 640 + kFixed));
    EXPECT_EQ(m.packets(), 1u);
}

TEST(DelayMonitor, BackToBackArrivalsQueue)
{
    DelayMonitor m;
    m.arrival(0, 5); // busy until 3200 ps
    m.arrival(0, 5); // waits 3200, done at 6400
    EXPECT_DOUBLE_EQ(m.aggregateLatencyPs(),
                     static_cast<double>((3200 + kFixed) +
                                         (6400 + kFixed)));
}

TEST(DelayMonitor, SpacedArrivalsDoNotQueue)
{
    DelayMonitor m;
    m.arrival(0, 1);
    m.arrival(ns(100), 1);
    EXPECT_DOUBLE_EQ(m.aggregateLatencyPs(),
                     2.0 * (640 + kFixed));
}

TEST(DelayMonitor, SlowerModeAccumulatesMoreLatency)
{
    DelayMonitor full, quarter;
    full.configure(640, kFixed);
    quarter.configure(640 * 4, kFixed); // 4-lane VWL
    for (int i = 0; i < 50; ++i) {
        const Tick t = ns(20) * i;
        full.arrival(t, 5);
        quarter.arrival(t, 5);
    }
    EXPECT_GT(quarter.aggregateLatencyPs(), full.aggregateLatencyPs());
    // At 20 ns spacing even the quarter link keeps up (12.8 ns/packet),
    // so the difference is pure serialization: 50 * 5 * 3 * 640 ps.
    EXPECT_DOUBLE_EQ(quarter.aggregateLatencyPs() -
                         full.aggregateLatencyPs(),
                     50.0 * 5 * 3 * 640);
}

TEST(DelayMonitor, DvfsSerdesPenaltyCounted)
{
    DelayMonitor dvfs;
    dvfs.configure(800, nsf(4.0) + LinkTiming::kRouterPs); // 80% mode
    dvfs.arrival(0, 1);
    EXPECT_DOUBLE_EQ(dvfs.aggregateLatencyPs(),
                     800.0 + 4000.0 + LinkTiming::kRouterPs);
}

TEST(DelayMonitor, ReconfigureRebasesPendingBacklog)
{
    DelayMonitor m;
    m.configure(640, kFixed);
    m.arrival(0, 10); // backlog until 6400 ps
    ASSERT_EQ(m.virtualFree(), 6400);

    // At t = 1600, 4800 ps of backlog remain. Dropping to quarter speed
    // re-serializes those queued flits 4x slower.
    m.configure(640 * 4, kFixed, 1600);
    EXPECT_EQ(m.virtualFree(), 1600 + 4 * 4800);

    // Speeding back up shrinks the (new) pending portion again.
    const Tick pending = m.virtualFree() - 1600;
    m.configure(640, kFixed, 1600);
    EXPECT_EQ(m.virtualFree(), 1600 + pending / 4);
}

TEST(DelayMonitor, ReconfigureLeavesDrainedQueueAlone)
{
    DelayMonitor m;
    m.configure(640, kFixed);
    m.arrival(0, 5); // backlog until 3200 ps
    // By t = 3200 the virtual queue is empty: a reconfigure must not
    // invent a backlog (the stale-vFree bug — the horizon used to be
    // kept verbatim across configure()).
    m.configure(640 * 4, kFixed, 3200);
    EXPECT_EQ(m.virtualFree(), 3200);
    m.arrival(3200, 1);
    EXPECT_DOUBLE_EQ(m.aggregateLatencyPs(),
                     static_cast<double>((3200 + kFixed) +
                                         (4 * 640 + kFixed)));
}

TEST(DelayMonitor, EpochResetKeepsBacklog)
{
    DelayMonitor m;
    m.arrival(0, 5);
    m.arrival(0, 5);
    m.resetEpoch();
    EXPECT_DOUBLE_EQ(m.aggregateLatencyPs(), 0.0);
    EXPECT_EQ(m.packets(), 0u);
    // A packet arriving right after still queues behind the backlog.
    const Tick vfree = m.virtualFree();
    EXPECT_EQ(vfree, 6400);
    m.arrival(0, 1);
    EXPECT_DOUBLE_EQ(m.aggregateLatencyPs(),
                     static_cast<double>(vfree + 640 + kFixed));
}

} // namespace
} // namespace memnet
