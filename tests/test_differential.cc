/**
 * @file
 * Differential consistency harness: pairs of runs the repo claims are
 * equivalent really are, field by field.
 *
 *  - runMultiChannel(channels=1) vs the single-network Simulator;
 *  - obs-on vs obs-off;
 *  - latency observatory on vs off;
 *  - audit-on vs audit-off;
 *  - host profiler enabled vs disabled;
 *  - parallel sweep (--jobs style) vs serial execution;
 *  - a sweep killed mid-run and resumed from its journal vs the same
 *    sweep uninterrupted.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "audit/differential.hh"
#include "memnet/journal.hh"
#include "memnet/parallel.hh"
#include "memnet/simulator.hh"
#include "obs/prof.hh"

namespace memnet
{
namespace
{

SystemConfig
shortConfig(TopologyKind topo, Policy p)
{
    SystemConfig cfg;
    cfg.workload = "mixE";
    cfg.topology = topo;
    cfg.policy = p;
    cfg.mechanism = p == Policy::FullPower ? BwMechanism::None
                                           : BwMechanism::Vwl;
    cfg.roo = p != Policy::FullPower;
    cfg.warmup = us(50);
    cfg.measure = us(150);
    cfg.epochLen = us(30);
    if (p == Policy::StaticTaper)
        cfg.interleavePages = true;
    return cfg;
}

constexpr TopologyKind kTopologies[] = {
    TopologyKind::DaisyChain, TopologyKind::TernaryTree,
    TopologyKind::Star, TopologyKind::DdrxLike};
constexpr Policy kPolicies[] = {Policy::FullPower, Policy::Unaware,
                                Policy::Aware, Policy::StaticTaper};

TEST(Differential, OneChannelEqualsSingleNetworkEverywhere)
{
    // The strongest multichannel claim: with one channel the switch is
    // a pass-through and the run must match the plain Simulator on
    // every aggregate output, for every topology x policy pair.
    for (TopologyKind t : kTopologies) {
        for (Policy p : kPolicies) {
            const SystemConfig cfg = shortConfig(t, p);
            MultiChannelConfig mc;
            mc.base = cfg;
            mc.channels = 1;
            mc.spread = ChannelSpread::InterleaveLines;

            const MultiChannelResult m = runMultiChannel(mc);
            const RunResult s = runSimulation(cfg);
            const auto diffs = audit::diffMultiVsSingle(m, s);
            EXPECT_TRUE(diffs.empty())
                << topologyName(t) << "/" << policyName(p) << "\n"
                << audit::describeDiffs(diffs);
        }
    }
}

TEST(Differential, PartitionSpreadAlsoEqualsSingleNetwork)
{
    const SystemConfig cfg =
        shortConfig(TopologyKind::Star, Policy::Aware);
    MultiChannelConfig mc;
    mc.base = cfg;
    mc.channels = 1;
    mc.spread = ChannelSpread::Partition;
    const auto diffs =
        audit::diffMultiVsSingle(runMultiChannel(mc),
                                 runSimulation(cfg));
    EXPECT_TRUE(diffs.empty()) << audit::describeDiffs(diffs);
}

TEST(Differential, ObservabilityOnEqualsOff)
{
    SystemConfig bare = shortConfig(TopologyKind::Star, Policy::Aware);
    SystemConfig obs = bare;
    obs.obs.statsJsonPath = "diff_obs_stats.json";
    obs.obs.epochJsonlPath = "diff_obs_epochs.jsonl";

    const auto diffs =
        audit::diffRunResults(runSimulation(bare), runSimulation(obs));
    EXPECT_TRUE(diffs.empty()) << audit::describeDiffs(diffs);
    std::remove("diff_obs_stats.json");
    std::remove("diff_obs_epochs.jsonl");
}

TEST(Differential, LatencyObservatoryOnEqualsOff)
{
    // The latency observatory's core contract: packet timestamps are
    // always stamped, but recording them into sketches (latencyObs)
    // must never perturb the simulation. Every simulation-determined
    // field diffs bit-identical; only RunResult::latency (excluded from
    // diffRunResults, like wallSeconds) may differ.
    SystemConfig off = shortConfig(TopologyKind::Star, Policy::Aware);
    off.latencyObs = false;
    SystemConfig on = off;
    on.latencyObs = true;

    const RunResult roff = runSimulation(off);
    const RunResult ron = runSimulation(on);
    const auto diffs = audit::diffRunResults(roff, ron);
    EXPECT_TRUE(diffs.empty()) << audit::describeDiffs(diffs);

    // And the toggle actually took effect on the excluded field.
    EXPECT_FALSE(roff.latency.enabled);
    ASSERT_TRUE(ron.latency.enabled);
    EXPECT_EQ(ron.latency.endToEnd.samples, ron.completedReads);
}

TEST(Differential, EnergyObservatoryOnEqualsOff)
{
    // The energy observatory's core contract: the attribution counters
    // are always stamped (they are the simulator's energy ledger), so
    // enabling the occupancy sketches and summaries must never perturb
    // the simulation. Only RunResult::energy (excluded from
    // diffRunResults, like latency and wallSeconds) may differ.
    SystemConfig off = shortConfig(TopologyKind::Star, Policy::Aware);
    off.energyObs = false;
    SystemConfig on = off;
    on.energyObs = true;

    const RunResult roff = runSimulation(off);
    const RunResult ron = runSimulation(on);
    const auto diffs = audit::diffRunResults(roff, ron);
    EXPECT_TRUE(diffs.empty()) << audit::describeDiffs(diffs);

    // And the toggle actually took effect on the excluded field.
    EXPECT_FALSE(roff.energy.enabled);
    ASSERT_TRUE(ron.energy.enabled);
    // The attribution ledger's total times the measure window length
    // reproduces the reported network power bit-identically: both are
    // derived from the same EnergyBreakdown arithmetic.
    EXPECT_GT(ron.energy.attribution.totalJ(), 0.0);
    EXPECT_GT(ron.energy.occupancy.samples, 0u);
    // Utilization records one sample per link.
    EXPECT_EQ(ron.energy.utilization.samples,
              static_cast<std::uint64_t>(2 * ron.numModules));
}

TEST(Differential, AuditOnEqualsOff)
{
    SystemConfig bare = shortConfig(TopologyKind::Star, Policy::Aware);
    SystemConfig audited = bare;
    audited.audit = true;

    const auto diffs = audit::diffRunResults(runSimulation(bare),
                                             runSimulation(audited));
    EXPECT_TRUE(diffs.empty()) << audit::describeDiffs(diffs);
}

TEST(Differential, ProfilingOnEqualsOff)
{
    // The host-side profiler reads clocks and writes thread_local
    // memory only, so every simulation-determined field — including
    // the new event-queue health counters — must be bit-identical
    // with it on or off. Only wallSeconds/profPhases (excluded from
    // diffRunResults) may differ.
    const SystemConfig cfg =
        shortConfig(TopologyKind::Star, Policy::Aware);
    const RunResult off = runSimulation(cfg);

    prof::reset();
    prof::setEnabled(true);
    const RunResult on = runSimulation(cfg);
    prof::setEnabled(false);

    const auto diffs = audit::diffRunResults(off, on);
    EXPECT_TRUE(diffs.empty()) << audit::describeDiffs(diffs);

#if MEMNET_PROFILE
    // And the profiled run actually carried phase data.
    EXPECT_FALSE(on.profile.profPhases.empty());
    EXPECT_TRUE(off.profile.profPhases.empty());
#endif
}

TEST(Differential, ParallelSweepEqualsSerial)
{
    std::vector<SystemConfig> configs;
    for (TopologyKind t : kTopologies) {
        SystemConfig cfg = shortConfig(t, Policy::Aware);
        for (std::uint64_t seed = 1; seed <= 2; ++seed) {
            cfg.seed = seed;
            configs.push_back(cfg);
        }
    }

    Runner serial;
    for (const SystemConfig &cfg : configs)
        serial.get(cfg);

    Runner parallel_cache;
    ParallelRunner pool(parallel_cache, 4);
    pool.run(configs);

    for (const SystemConfig &cfg : configs) {
        const auto diffs = audit::diffRunResults(
            serial.get(cfg), parallel_cache.get(cfg));
        EXPECT_TRUE(diffs.empty())
            << cfg.describe() << " seed " << cfg.seed << "\n"
            << audit::describeDiffs(diffs);
    }
}

TEST(Differential, ResumedSweepEqualsUninterrupted)
{
    // The crash-safety equivalence behind --journal/--resume: a sweep
    // interrupted partway (here: only part of it journaled) and then
    // resumed must match the uninterrupted sweep on every
    // simulation-determined field of every config.
    std::vector<SystemConfig> configs;
    for (TopologyKind t : kTopologies)
        configs.push_back(shortConfig(t, Policy::Aware));

    const std::string path =
        ::testing::TempDir() + "/differential_resume.jsonl";

    Runner uninterrupted;
    {
        RunJournal journal(path);
        ASSERT_TRUE(journal.open());
        uninterrupted.setJournal(&journal);
        // "Crash" after the first half: later configs never journal.
        for (std::size_t i = 0; i < configs.size() / 2; ++i)
            uninterrupted.get(configs[i]);
        uninterrupted.setJournal(nullptr);
    }
    for (const SystemConfig &cfg : configs)
        uninterrupted.get(cfg);

    Runner resumed;
    std::map<std::string, RunResult> pool;
    ASSERT_TRUE(loadJournal(path, &pool, nullptr, nullptr));
    resumed.addResumePool(std::move(pool));
    for (const SystemConfig &cfg : configs)
        resumed.get(cfg);

    EXPECT_EQ(resumed.runsExecuted(),
              static_cast<int>(configs.size() - configs.size() / 2));
    const auto diffs = audit::diffResultMaps(uninterrupted.results(),
                                             resumed.results());
    EXPECT_TRUE(diffs.empty()) << audit::describeDiffs(diffs);
}

TEST(Differential, DiffResultMapsFlagsMissingAndDifferingKeys)
{
    Runner runner;
    const SystemConfig cfg = shortConfig(TopologyKind::Star,
                                         Policy::FullPower);
    const RunResult &r = runner.get(cfg);
    const std::string k = Runner::key(cfg);

    std::map<std::string, RunResult> a{{k, r}};
    std::map<std::string, RunResult> b; // empty
    auto diffs = audit::diffResultMaps(a, b);
    ASSERT_EQ(diffs.size(), 1u);
    EXPECT_EQ(diffs[0].field, "only_in_a:" + k);

    diffs = audit::diffResultMaps(b, a);
    ASSERT_EQ(diffs.size(), 1u);
    EXPECT_EQ(diffs[0].field, "only_in_b:" + k);

    RunResult tweaked = r;
    tweaked.completedReads += 1;
    b = {{k, tweaked}};
    diffs = audit::diffResultMaps(a, b);
    ASSERT_EQ(diffs.size(), 1u);
    EXPECT_EQ(diffs[0].field, k + ": completedReads");

    EXPECT_TRUE(audit::diffResultMaps(a, a).empty());
}

TEST(ChannelRemap, InterleavePreservesSubLineOffset)
{
    const ChannelRemap remap(4, ChannelSpread::InterleaveLines,
                             1ULL << 30);
    // Regression: the old remap dropped addr % 64, folding every access
    // onto its line base.
    const ChannelRemap::Target t = remap.map(64 * 7 + 13);
    EXPECT_EQ(t.channel, 3);      // line 7 -> channel 7 % 4
    EXPECT_EQ(t.local % 64, 13u); // offset must survive
    EXPECT_EQ(t.local, (7u / 4) * 64 + 13);
}

TEST(ChannelRemap, RoundTripsBothSpreadsNonDividingFootprint)
{
    // 13 GB over 4 channels: footprint divides by neither the channel
    // count nor the partition size — the regression case for the old
    // clamped partition remap.
    const std::uint64_t total = 13ULL << 30;
    for (ChannelSpread s :
         {ChannelSpread::InterleaveLines, ChannelSpread::Partition}) {
        const ChannelRemap remap(4, s, total);
        const std::vector<std::uint64_t> addrs = {
            0, 63, 64, 64 * 4 - 1, (3ULL << 30) + 177,
            remap.partitionBytes() - 1, remap.partitionBytes(),
            remap.partitionBytes() * 3 + 12345, total - 64, total - 1};
        for (std::uint64_t addr : addrs) {
            const ChannelRemap::Target t = remap.map(addr);
            ASSERT_GE(t.channel, 0);
            ASSERT_LT(t.channel, 4);
            if (s == ChannelSpread::Partition) {
                EXPECT_LT(t.local, remap.partitionBytes());
            }
            EXPECT_EQ(remap.unmap(t.channel, t.local), addr)
                << channelSpreadName(s) << " addr " << addr;
        }
    }
}

TEST(ChannelRemap, PartitionNeverClampsInRangeAddresses)
{
    // partBytes * channels >= total, so the last in-range address maps
    // into the last channel *by division*, not by a clamp; the old code
    // could fold out-of-range addresses into channel C-1 with
    // local >= partBytes.
    const std::uint64_t total = (13ULL << 30) + 4096; // odd tail
    const ChannelRemap remap(4, ChannelSpread::Partition, total);
    const ChannelRemap::Target last = remap.map(total - 1);
    EXPECT_LT(last.local, remap.partitionBytes());
    EXPECT_EQ(last.channel, static_cast<int>(
                                (total - 1) / remap.partitionBytes()));
}

TEST(ChannelRemapDeath, OutOfRangeAddressDies)
{
    const ChannelRemap remap(4, ChannelSpread::Partition, 1ULL << 30);
    EXPECT_DEATH(remap.map(1ULL << 30), "outside");
}

} // namespace
} // namespace memnet
