/**
 * @file
 * Differential consistency harness: pairs of runs the repo claims are
 * equivalent really are, field by field.
 *
 *  - runMultiChannel(channels=1) vs the single-network Simulator;
 *  - obs-on vs obs-off;
 *  - audit-on vs audit-off;
 *  - host profiler enabled vs disabled;
 *  - parallel sweep (--jobs style) vs serial execution.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "audit/differential.hh"
#include "memnet/parallel.hh"
#include "memnet/simulator.hh"
#include "obs/prof.hh"

namespace memnet
{
namespace
{

SystemConfig
shortConfig(TopologyKind topo, Policy p)
{
    SystemConfig cfg;
    cfg.workload = "mixE";
    cfg.topology = topo;
    cfg.policy = p;
    cfg.mechanism = p == Policy::FullPower ? BwMechanism::None
                                           : BwMechanism::Vwl;
    cfg.roo = p != Policy::FullPower;
    cfg.warmup = us(50);
    cfg.measure = us(150);
    cfg.epochLen = us(30);
    if (p == Policy::StaticTaper)
        cfg.interleavePages = true;
    return cfg;
}

constexpr TopologyKind kTopologies[] = {
    TopologyKind::DaisyChain, TopologyKind::TernaryTree,
    TopologyKind::Star, TopologyKind::DdrxLike};
constexpr Policy kPolicies[] = {Policy::FullPower, Policy::Unaware,
                                Policy::Aware, Policy::StaticTaper};

TEST(Differential, OneChannelEqualsSingleNetworkEverywhere)
{
    // The strongest multichannel claim: with one channel the switch is
    // a pass-through and the run must match the plain Simulator on
    // every aggregate output, for every topology x policy pair.
    for (TopologyKind t : kTopologies) {
        for (Policy p : kPolicies) {
            const SystemConfig cfg = shortConfig(t, p);
            MultiChannelConfig mc;
            mc.base = cfg;
            mc.channels = 1;
            mc.spread = ChannelSpread::InterleaveLines;

            const MultiChannelResult m = runMultiChannel(mc);
            const RunResult s = runSimulation(cfg);
            const auto diffs = audit::diffMultiVsSingle(m, s);
            EXPECT_TRUE(diffs.empty())
                << topologyName(t) << "/" << policyName(p) << "\n"
                << audit::describeDiffs(diffs);
        }
    }
}

TEST(Differential, PartitionSpreadAlsoEqualsSingleNetwork)
{
    const SystemConfig cfg =
        shortConfig(TopologyKind::Star, Policy::Aware);
    MultiChannelConfig mc;
    mc.base = cfg;
    mc.channels = 1;
    mc.spread = ChannelSpread::Partition;
    const auto diffs =
        audit::diffMultiVsSingle(runMultiChannel(mc),
                                 runSimulation(cfg));
    EXPECT_TRUE(diffs.empty()) << audit::describeDiffs(diffs);
}

TEST(Differential, ObservabilityOnEqualsOff)
{
    SystemConfig bare = shortConfig(TopologyKind::Star, Policy::Aware);
    SystemConfig obs = bare;
    obs.obs.statsJsonPath = "diff_obs_stats.json";
    obs.obs.epochJsonlPath = "diff_obs_epochs.jsonl";

    const auto diffs =
        audit::diffRunResults(runSimulation(bare), runSimulation(obs));
    EXPECT_TRUE(diffs.empty()) << audit::describeDiffs(diffs);
    std::remove("diff_obs_stats.json");
    std::remove("diff_obs_epochs.jsonl");
}

TEST(Differential, AuditOnEqualsOff)
{
    SystemConfig bare = shortConfig(TopologyKind::Star, Policy::Aware);
    SystemConfig audited = bare;
    audited.audit = true;

    const auto diffs = audit::diffRunResults(runSimulation(bare),
                                             runSimulation(audited));
    EXPECT_TRUE(diffs.empty()) << audit::describeDiffs(diffs);
}

TEST(Differential, ProfilingOnEqualsOff)
{
    // The host-side profiler reads clocks and writes thread_local
    // memory only, so every simulation-determined field — including
    // the new event-queue health counters — must be bit-identical
    // with it on or off. Only wallSeconds/profPhases (excluded from
    // diffRunResults) may differ.
    const SystemConfig cfg =
        shortConfig(TopologyKind::Star, Policy::Aware);
    const RunResult off = runSimulation(cfg);

    prof::reset();
    prof::setEnabled(true);
    const RunResult on = runSimulation(cfg);
    prof::setEnabled(false);

    const auto diffs = audit::diffRunResults(off, on);
    EXPECT_TRUE(diffs.empty()) << audit::describeDiffs(diffs);

#if MEMNET_PROFILE
    // And the profiled run actually carried phase data.
    EXPECT_FALSE(on.profile.profPhases.empty());
    EXPECT_TRUE(off.profile.profPhases.empty());
#endif
}

TEST(Differential, ParallelSweepEqualsSerial)
{
    std::vector<SystemConfig> configs;
    for (TopologyKind t : kTopologies) {
        SystemConfig cfg = shortConfig(t, Policy::Aware);
        for (std::uint64_t seed = 1; seed <= 2; ++seed) {
            cfg.seed = seed;
            configs.push_back(cfg);
        }
    }

    Runner serial;
    for (const SystemConfig &cfg : configs)
        serial.get(cfg);

    Runner parallel_cache;
    ParallelRunner pool(parallel_cache, 4);
    pool.run(configs);

    for (const SystemConfig &cfg : configs) {
        const auto diffs = audit::diffRunResults(
            serial.get(cfg), parallel_cache.get(cfg));
        EXPECT_TRUE(diffs.empty())
            << cfg.describe() << " seed " << cfg.seed << "\n"
            << audit::describeDiffs(diffs);
    }
}

TEST(ChannelRemap, InterleavePreservesSubLineOffset)
{
    const ChannelRemap remap(4, ChannelSpread::InterleaveLines,
                             1ULL << 30);
    // Regression: the old remap dropped addr % 64, folding every access
    // onto its line base.
    const ChannelRemap::Target t = remap.map(64 * 7 + 13);
    EXPECT_EQ(t.channel, 3);      // line 7 -> channel 7 % 4
    EXPECT_EQ(t.local % 64, 13u); // offset must survive
    EXPECT_EQ(t.local, (7u / 4) * 64 + 13);
}

TEST(ChannelRemap, RoundTripsBothSpreadsNonDividingFootprint)
{
    // 13 GB over 4 channels: footprint divides by neither the channel
    // count nor the partition size — the regression case for the old
    // clamped partition remap.
    const std::uint64_t total = 13ULL << 30;
    for (ChannelSpread s :
         {ChannelSpread::InterleaveLines, ChannelSpread::Partition}) {
        const ChannelRemap remap(4, s, total);
        const std::vector<std::uint64_t> addrs = {
            0, 63, 64, 64 * 4 - 1, (3ULL << 30) + 177,
            remap.partitionBytes() - 1, remap.partitionBytes(),
            remap.partitionBytes() * 3 + 12345, total - 64, total - 1};
        for (std::uint64_t addr : addrs) {
            const ChannelRemap::Target t = remap.map(addr);
            ASSERT_GE(t.channel, 0);
            ASSERT_LT(t.channel, 4);
            if (s == ChannelSpread::Partition) {
                EXPECT_LT(t.local, remap.partitionBytes());
            }
            EXPECT_EQ(remap.unmap(t.channel, t.local), addr)
                << channelSpreadName(s) << " addr " << addr;
        }
    }
}

TEST(ChannelRemap, PartitionNeverClampsInRangeAddresses)
{
    // partBytes * channels >= total, so the last in-range address maps
    // into the last channel *by division*, not by a clamp; the old code
    // could fold out-of-range addresses into channel C-1 with
    // local >= partBytes.
    const std::uint64_t total = (13ULL << 30) + 4096; // odd tail
    const ChannelRemap remap(4, ChannelSpread::Partition, total);
    const ChannelRemap::Target last = remap.map(total - 1);
    EXPECT_LT(last.local, remap.partitionBytes());
    EXPECT_EQ(last.channel, static_cast<int>(
                                (total - 1) / remap.partitionBytes()));
}

TEST(ChannelRemapDeath, OutOfRangeAddressDies)
{
    const ChannelRemap remap(4, ChannelSpread::Partition, 1ULL << 30);
    EXPECT_DEATH(remap.map(1ULL << 30), "outside");
}

} // namespace
} // namespace memnet
