/**
 * @file
 * Unit tests for the energy observatory's attribution ledger
 * (src/obs/energy_observatory.hh): cause-bucket folding, the derived
 * identities, exact merge, the bit-identity of the rollup against
 * Network::collectEnergy, the net.energy.* stat scopes, and the
 * Chrome-trace counter renderer. The run-level guarantees (obs-on ==
 * obs-off, partitioned == serial, mutation-tested auditor check) live
 * in test_differential.cc / test_partition.cc / test_audit.cc.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "dram/dram_params.hh"
#include "memnet/simulator.hh"
#include "net/network.hh"
#include "obs/energy_observatory.hh"
#include "obs/json.hh"
#include "obs/stats_registry.hh"
#include "sim/event_queue.hh"

namespace memnet
{
namespace
{

LinkStats
syntheticStats(double scale)
{
    LinkStats ls;
    ls.txJ = 0.5 * scale;
    ls.retrainJ = 0.125 * scale;
    ls.idleFloorJ[0] = 1.0 * scale;
    ls.idleFloorJ[3] = 0.25 * scale;
    ls.sleepJ = 0.0625 * scale;
    ls.wakeJ = 0.03125 * scale;
    return ls;
}

TEST(EnergyAttributionLedger, AddLinkFoldsEveryCauseBucket)
{
    const LinkStats ls = syntheticStats(1.0);
    EnergyAttribution a;
    a.addLink(ls);

    EXPECT_DOUBLE_EQ(a.txJ, ls.txJ);
    EXPECT_DOUBLE_EQ(a.retrainJ, ls.retrainJ);
    EXPECT_DOUBLE_EQ(a.idleModeJ[0], ls.idleFloorJ[0]);
    EXPECT_DOUBLE_EQ(a.idleModeJ[3], ls.idleFloorJ[3]);
    EXPECT_DOUBLE_EQ(a.sleepJ, ls.sleepJ);
    EXPECT_DOUBLE_EQ(a.wakeJ, ls.wakeJ);

    // Anchors come from the link's own derived accessors, so for a
    // single link they are exactly the cause sums (the values above
    // are dyadic rationals: no rounding anywhere).
    EXPECT_EQ(a.activeIoJ, ls.txJ + ls.retrainJ);
    EXPECT_EQ(a.idleIoJ, ls.idleIoJ());
    EXPECT_EQ(a.idleFloorJ(), 1.25);
    EXPECT_EQ(a.linkIoJ(), a.idleIoJ + a.activeIoJ);
    EXPECT_EQ(a.moduleJ(), 0.0);
    EXPECT_EQ(a.totalJ(), a.linkIoJ());
}

TEST(EnergyAttributionLedger, AddModuleFoldsTerms)
{
    ModuleEnergyTerms t;
    t.logicLeakJ = 0.5;
    t.logicDynJ = 0.25;
    t.dramLeakJ = 0.125;
    t.dramDynJ = 0.0625;
    EnergyAttribution a;
    a.addModule(t);

    EXPECT_DOUBLE_EQ(a.serdesLeakJ, t.logicLeakJ);
    EXPECT_DOUBLE_EQ(a.routerJ, t.logicDynJ);
    EXPECT_DOUBLE_EQ(a.dramLeakJ, t.dramLeakJ);
    EXPECT_DOUBLE_EQ(a.dramDynJ, t.dramDynJ);
    EXPECT_EQ(a.moduleJ(), 0.9375);
    EXPECT_EQ(a.totalJ(), 0.9375);
}

TEST(EnergyAttributionLedger, MergeIsFieldWiseExact)
{
    EnergyAttribution a, b;
    a.addLink(syntheticStats(1.0));
    b.addLink(syntheticStats(2.0));

    EnergyAttribution sum = a;
    sum += b;
    // Dyadic values again: field-wise addition must be exact, and the
    // merged ledger must equal folding both links into one.
    EnergyAttribution both;
    both.addLink(syntheticStats(1.0));
    both.addLink(syntheticStats(2.0));
    EXPECT_EQ(sum.txJ, both.txJ);
    EXPECT_EQ(sum.retrainJ, both.retrainJ);
    EXPECT_EQ(sum.idleFloorJ(), both.idleFloorJ());
    EXPECT_EQ(sum.sleepJ, both.sleepJ);
    EXPECT_EQ(sum.wakeJ, both.wakeJ);
    EXPECT_EQ(sum.idleIoJ, both.idleIoJ);
    EXPECT_EQ(sum.activeIoJ, both.activeIoJ);
    EXPECT_EQ(sum.totalJ(), both.totalJ());
}

class EnergyObservatoryNet : public ::testing::Test
{
  protected:
    EnergyObservatoryNet()
        : topo(Topology::build(TopologyKind::TernaryTree, 7))
    {
        amap.chunkBytes = 1ULL << 30;
        amap.modules = 7;
        net = std::make_unique<Network>(eq, topo, dram,
                                        BwMechanism::Vwl, roo, pm,
                                        amap);
    }

    EventQueue eq;
    Topology topo;
    DramParams dram;
    HmcPowerModel pm;
    RooConfig roo;
    AddressMap amap;
    std::unique_ptr<Network> net;
};

TEST_F(EnergyObservatoryNet, AnchorsMatchCollectEnergyBitIdentically)
{
    eq.runUntil(us(10)); // accrue idle floor on every link
    const EnergyAttribution a = net->energyAttribution(eq.now());
    const EnergyBreakdown e = net->collectEnergy(eq.now());

    // The exactness contract the auditor enforces every epoch: same
    // expressions, same iteration order, so == on doubles.
    EXPECT_EQ(a.idleIoJ, e.idleIoJ);
    EXPECT_EQ(a.activeIoJ, e.activeIoJ);
    EXPECT_EQ(a.serdesLeakJ, e.logicLeakJ);
    EXPECT_EQ(a.routerJ, e.logicDynJ);
    EXPECT_EQ(a.dramLeakJ, e.dramLeakJ);
    EXPECT_EQ(a.dramDynJ, e.dramDynJ);
    EXPECT_GT(a.totalJ(), 0.0);

    // The cause-level and anchor-level views agree to float-summation
    // tolerance (their addition orders differ across links).
    EXPECT_NEAR(a.linkIoJ(), a.idleIoJ + a.activeIoJ,
                1e-12 * a.linkIoJ());
}

TEST_F(EnergyObservatoryNet, SketchesCoverEveryLinkWhenEnabled)
{
    net->setEnergyObservatory(true);
    eq.runUntil(us(10));
    const EnergySummary s = net->energySummary(eq.now());
    EXPECT_TRUE(s.enabled);
    // One utilization sample per link; an idle net has all-zero ppm
    // and no enqueues.
    EXPECT_EQ(s.utilization.samples, 2u * 7u);
    EXPECT_EQ(s.utilization.maxPs, 0u);
    EXPECT_EQ(s.occupancy.samples, 0u);
}

TEST_F(EnergyObservatoryNet, StatScopesMaterializeTheLedger)
{
    net->setEnergyObservatory(true);
    eq.runUntil(us(10));
    obs::StatsRegistry reg;
    obs::registerEnergyStats(reg, *net);

    std::ostringstream os;
    reg.dumpJson(os);
    obs::json::Value doc;
    std::string err;
    ASSERT_TRUE(obs::json::parse(os.str(), &doc, &err)) << err;

    const auto num = [&doc](const char *name) {
        const obs::json::Value *v = doc.find(name);
        EXPECT_TRUE(v != nullptr) << name;
        return v ? v->number : -1.0;
    };
    const EnergyAttribution a = net->energyAttribution(eq.now());
    EXPECT_EQ(num("net.energy.total_j"), a.totalJ());
    EXPECT_EQ(num("net.energy.idle_floor_j"), a.idleFloorJ());
    EXPECT_EQ(num("net.energy.tx_j"), 0.0);
    EXPECT_EQ(num("net.energy.idle_mode0_j"), a.idleModeJ[0]);
    EXPECT_EQ(num("net.energy.util_ppm.samples"), 14.0);
    EXPECT_EQ(num("net.energy.occupancy.samples"), 0.0);
}

TEST(EnergyCounterArgs, RendersPerCauseWatts)
{
    EnergyAttribution prev, cur;
    cur.txJ = 1.5;
    cur.idleModeJ[0] = 3.0;
    cur.sleepJ = 0.5;
    // 2-second window.
    const std::string args =
        obs::renderEnergyCounterArgs(cur, prev, 0.5);
    obs::json::Value v;
    std::string err;
    ASSERT_TRUE(obs::json::parse(args, &v, &err))
        << err << " in " << args;
    const auto watts = [&v](const char *key) {
        const obs::json::Value *m = v.find(key);
        EXPECT_TRUE(m != nullptr) << key;
        return m ? m->number : -1.0;
    };
    EXPECT_DOUBLE_EQ(watts("tx"), 0.75);
    EXPECT_DOUBLE_EQ(watts("idle_floor"), 1.5);
    EXPECT_DOUBLE_EQ(watts("sleep"), 0.25);
    EXPECT_DOUBLE_EQ(watts("wake"), 0.0);
    for (const char *key : {"tx", "idle_floor", "sleep", "wake",
                            "retrain", "serdes_leak", "router",
                            "dram_leak", "dram_dyn"})
        EXPECT_TRUE(v.find(key) != nullptr) << key;

    // Zero-length window renders zeros rather than infinities.
    const std::string flat =
        obs::renderEnergyCounterArgs(cur, prev, 0.0);
    obs::json::Value z;
    ASSERT_TRUE(obs::json::parse(flat, &z, &err)) << err;
    EXPECT_DOUBLE_EQ(z.find("tx") ? z.find("tx")->number : -1.0, 0.0);
}

} // namespace
} // namespace memnet
