/**
 * @file
 * Property tests over the energy accounting, parameterized across
 * mechanisms, policies and topologies: components are non-negative,
 * per-HMC and network totals agree, managed power never exceeds full
 * power, and I/O energy is bounded by always-on link power.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "memnet/experiment.hh"
#include "memnet/simulator.hh"

namespace memnet
{
namespace
{

using Param = std::tuple<TopologyKind, BwMechanism, bool, Policy>;

class EnergyProperty : public ::testing::TestWithParam<Param>
{
  protected:
    SystemConfig
    config() const
    {
        const auto [topo, mech, roo, policy] = GetParam();
        SystemConfig cfg;
        cfg.workload = "mixF";
        cfg.topology = topo;
        cfg.sizeClass = SizeClass::Big; // 10 modules
        cfg.mechanism = mech;
        cfg.roo = roo;
        cfg.policy = policy;
        cfg.warmup = us(50);
        cfg.measure = us(200);
        if (policy == Policy::StaticTaper)
            cfg.interleavePages = true;
        return cfg;
    }
};

TEST_P(EnergyProperty, ComponentsNonNegativeAndConsistent)
{
    const RunResult r = runSimulation(config());
    EXPECT_GE(r.perHmc.idleIoW, 0.0);
    EXPECT_GE(r.perHmc.activeIoW, 0.0);
    EXPECT_GE(r.perHmc.logicLeakW, 0.0);
    EXPECT_GE(r.perHmc.logicDynW, 0.0);
    EXPECT_GE(r.perHmc.dramLeakW, 0.0);
    EXPECT_GE(r.perHmc.dramDynW, 0.0);
    EXPECT_NEAR(r.perHmc.totalW() * r.numModules,
                r.totalNetworkPowerW, 1e-6);
    EXPECT_GE(r.idleIoFrac, 0.0);
    EXPECT_LE(r.idleIoFrac, 1.0);
}

TEST_P(EnergyProperty, IoEnergyBoundedByAlwaysOnLinks)
{
    const RunResult r = runSimulation(config());
    // 2 links per module at full power is the ceiling.
    HmcPowerModel pm;
    const double ceiling = 2.0 * pm.linkFullPowerW();
    EXPECT_LE(r.perHmc.ioW(), ceiling * 1.0001);
}

TEST_P(EnergyProperty, ManagedNeverBeatsPhysicsOrExceedsFp)
{
    Runner runner;
    runner.verbose = false;
    const SystemConfig cfg = config();
    const RunResult &r = runner.get(cfg);
    const RunResult &fp = runner.get(Runner::fullPowerBaseline(cfg));
    EXPECT_LE(r.totalNetworkPowerW, fp.totalNetworkPowerW * 1.01);
    // Leakage is unmanageable: identical across policies.
    EXPECT_NEAR(r.perHmc.logicLeakW, fp.perHmc.logicLeakW, 1e-9);
    EXPECT_NEAR(r.perHmc.dramLeakW, fp.perHmc.dramLeakW, 1e-9);
}

TEST_P(EnergyProperty, ThroughputSurvivesManagement)
{
    Runner runner;
    runner.verbose = false;
    const SystemConfig cfg = config();
    const double deg = runner.degradation(cfg);
    // No configuration may lose more than ~15% throughput at the
    // default alpha (the paper's worst case is 5.9%; static tapering
    // is allowed more).
    const double limit =
        cfg.policy == Policy::StaticTaper ? 0.45 : 0.15;
    EXPECT_LT(deg, limit) << cfg.describe();
    EXPECT_GT(deg, -0.05) << cfg.describe(); // no speedups from noise
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnergyProperty,
    ::testing::Values(
        Param{TopologyKind::DaisyChain, BwMechanism::Vwl, false,
              Policy::Unaware},
        Param{TopologyKind::TernaryTree, BwMechanism::Vwl, true,
              Policy::Unaware},
        Param{TopologyKind::Star, BwMechanism::None, true,
              Policy::Unaware},
        Param{TopologyKind::Star, BwMechanism::Dvfs, false,
              Policy::Unaware},
        Param{TopologyKind::DaisyChain, BwMechanism::Vwl, true,
              Policy::Aware},
        Param{TopologyKind::Star, BwMechanism::None, true,
              Policy::Aware},
        Param{TopologyKind::DdrxLike, BwMechanism::Dvfs, true,
              Policy::Aware},
        Param{TopologyKind::Star, BwMechanism::Vwl, false,
              Policy::StaticTaper},
        Param{TopologyKind::DdrxLike, BwMechanism::None, false,
              Policy::FullPower}));

} // namespace
} // namespace memnet
