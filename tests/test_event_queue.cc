/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace memnet
{
namespace
{

TEST(EventQueue, StartsAtTimeZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.fired(), 0u);
}

TEST(EventQueue, OneShotLambdaFiresAtScheduledTick)
{
    EventQueue eq;
    Tick seen = kTickInvalid;
    eq.schedule(ns(5), [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, ns(5));
    EXPECT_EQ(eq.now(), ns(5));
}

TEST(EventQueue, EventsFireInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(ns(30), [&] { order.push_back(3); });
    eq.schedule(ns(10), [&] { order.push_back(1); });
    eq.schedule(ns(20), [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(ns(7), [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RunUntilStopsAtLimitInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(ns(10), [&] { ++fired; });
    eq.schedule(ns(20), [&] { ++fired; });
    eq.schedule(ns(30), [&] { ++fired; });
    eq.runUntil(ns(20));
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), ns(20));
    eq.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue eq;
    eq.runUntil(us(3));
    EXPECT_EQ(eq.now(), us(3));
}

struct CountingEvent : public Event
{
    int fired = 0;
    void fire() override { ++fired; }
};

TEST(EventQueue, MemberStyleEventReArmable)
{
    EventQueue eq;
    CountingEvent ev;
    eq.schedule(&ev, ns(1));
    eq.run();
    EXPECT_EQ(ev.fired, 1);
    EXPECT_FALSE(ev.scheduled());
    eq.schedule(&ev, ns(2));
    eq.run();
    EXPECT_EQ(ev.fired, 2);
}

TEST(EventQueue, DescheduleCancelsFiring)
{
    EventQueue eq;
    CountingEvent ev;
    eq.schedule(&ev, ns(5));
    EXPECT_TRUE(ev.scheduled());
    eq.deschedule(&ev);
    EXPECT_FALSE(ev.scheduled());
    eq.run();
    EXPECT_EQ(ev.fired, 0);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, RescheduleMovesFiringTime)
{
    EventQueue eq;
    CountingEvent ev;
    eq.schedule(&ev, ns(5));
    eq.reschedule(&ev, ns(9));
    Tick when = kTickInvalid;
    eq.schedule(ns(6), [&] {
        // At ns(6) the event must not have fired yet.
        EXPECT_EQ(ev.fired, 0);
        when = eq.now();
    });
    eq.run();
    EXPECT_EQ(when, ns(6));
    EXPECT_EQ(ev.fired, 1);
    EXPECT_EQ(ev.when(), ns(9));
}

TEST(EventQueue, RescheduleEarlierFiresEarlier)
{
    EventQueue eq;
    CountingEvent ev;
    eq.schedule(&ev, ns(100));
    eq.reschedule(&ev, ns(2));
    eq.runUntil(ns(10));
    EXPECT_EQ(ev.fired, 1);
}

TEST(EventQueue, EventsScheduledDuringFiringRun)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            eq.schedule(eq.now() + ns(1), chain);
    };
    eq.schedule(ns(1), chain);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), ns(5));
}

TEST(EventQueue, PendingTracksLiveEvents)
{
    EventQueue eq;
    CountingEvent a, b;
    eq.schedule(&a, ns(1));
    eq.schedule(&b, ns(2));
    EXPECT_EQ(eq.pending(), 2u);
    eq.deschedule(&a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.fired(), 1u);
}

} // namespace
} // namespace memnet
