/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "sim/event_queue.hh"

namespace memnet
{
namespace
{

TEST(EventQueue, StartsAtTimeZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.fired(), 0u);
}

TEST(EventQueue, OneShotLambdaFiresAtScheduledTick)
{
    EventQueue eq;
    Tick seen = kTickInvalid;
    eq.schedule(ns(5), [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, ns(5));
    EXPECT_EQ(eq.now(), ns(5));
}

TEST(EventQueue, EventsFireInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(ns(30), [&] { order.push_back(3); });
    eq.schedule(ns(10), [&] { order.push_back(1); });
    eq.schedule(ns(20), [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(ns(7), [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RunUntilStopsAtLimitInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(ns(10), [&] { ++fired; });
    eq.schedule(ns(20), [&] { ++fired; });
    eq.schedule(ns(30), [&] { ++fired; });
    eq.runUntil(ns(20));
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), ns(20));
    eq.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue eq;
    eq.runUntil(us(3));
    EXPECT_EQ(eq.now(), us(3));
}

struct CountingEvent : public Event
{
    int fired = 0;
    void fire() override { ++fired; }
};

TEST(EventQueue, MemberStyleEventReArmable)
{
    EventQueue eq;
    CountingEvent ev;
    eq.schedule(&ev, ns(1));
    eq.run();
    EXPECT_EQ(ev.fired, 1);
    EXPECT_FALSE(ev.scheduled());
    eq.schedule(&ev, ns(2));
    eq.run();
    EXPECT_EQ(ev.fired, 2);
}

TEST(EventQueue, DescheduleCancelsFiring)
{
    EventQueue eq;
    CountingEvent ev;
    eq.schedule(&ev, ns(5));
    EXPECT_TRUE(ev.scheduled());
    eq.deschedule(&ev);
    EXPECT_FALSE(ev.scheduled());
    eq.run();
    EXPECT_EQ(ev.fired, 0);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, RescheduleMovesFiringTime)
{
    EventQueue eq;
    CountingEvent ev;
    eq.schedule(&ev, ns(5));
    eq.reschedule(&ev, ns(9));
    Tick when = kTickInvalid;
    eq.schedule(ns(6), [&] {
        // At ns(6) the event must not have fired yet.
        EXPECT_EQ(ev.fired, 0);
        when = eq.now();
    });
    eq.run();
    EXPECT_EQ(when, ns(6));
    EXPECT_EQ(ev.fired, 1);
    EXPECT_EQ(ev.when(), ns(9));
}

TEST(EventQueue, RescheduleEarlierFiresEarlier)
{
    EventQueue eq;
    CountingEvent ev;
    eq.schedule(&ev, ns(100));
    eq.reschedule(&ev, ns(2));
    eq.runUntil(ns(10));
    EXPECT_EQ(ev.fired, 1);
}

TEST(EventQueue, EventsScheduledDuringFiringRun)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            eq.schedule(eq.now() + ns(1), chain);
    };
    eq.schedule(ns(1), chain);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), ns(5));
}

TEST(EventQueue, PendingTracksLiveEvents)
{
    EventQueue eq;
    CountingEvent a, b;
    eq.schedule(&a, ns(1));
    eq.schedule(&b, ns(2));
    EXPECT_EQ(eq.pending(), 2u);
    eq.deschedule(&a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.fired(), 1u);
}

// ---------------------------------------------------------------------
// Queue-health counters (peak depth, deschedules, depth histogram,
// dispatch-rate windows) — surfaced through RunProfile and the stats
// registry, so their semantics are pinned down here.
// ---------------------------------------------------------------------

TEST(EventQueueHealth, PeakDepthIsHighWaterNotCurrent)
{
    EventQueue eq;
    CountingEvent a, b, c;
    eq.schedule(&a, ns(1));
    eq.schedule(&b, ns(2));
    eq.schedule(&c, ns(3));
    EXPECT_EQ(eq.peakPending(), 3u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.peakPending(), 3u); // high-water survives the drain
    EXPECT_EQ(eq.scheduledTotal(), 3u);
}

TEST(EventQueueHealth, DescheduledCountsExplicitCancelsOnly)
{
    EventQueue eq;
    CountingEvent a, b;
    eq.schedule(&a, ns(1));
    eq.schedule(&b, ns(2));
    eq.deschedule(&a);
    EXPECT_EQ(eq.descheduledTotal(), 1u);
    // Dispatch pops and reschedules are not deschedules.
    eq.schedule(&a, ns(3));
    eq.reschedule(&a, ns(4));
    eq.run();
    EXPECT_EQ(eq.descheduledTotal(), 1u);
}

TEST(EventQueueHealth, DepthHistogramCountsEveryDispatch)
{
    EventQueue eq;
    for (int i = 0; i < 10; ++i)
        eq.schedule(ns(i + 1), [] {});
    eq.run();
    std::uint64_t total = 0;
    for (std::uint64_t v : eq.depthHistogram())
        total += v;
    EXPECT_EQ(total, eq.fired());
    // First dispatch saw all 10 pending: bucket bit_width(10) = 4.
    EXPECT_GE(eq.depthHistogram()[4], 1u);
}

TEST(EventQueueHealth, DispatchWindowsCloseOnSimTimeBoundaries)
{
    EventQueue eq;
    eq.setDispatchWindow(ns(100));
    EXPECT_EQ(eq.dispatchWindowPs(), ns(100));
    for (Tick t : {ns(10), ns(50), ns(120), ns(350)})
        eq.schedule(t, [] {});
    eq.run();
    // [0,100): 2 events; [100,200): 1; [200,300): 0. The window holding
    // the final event stays open and is not reported.
    EXPECT_EQ(eq.dispatchWindows(),
              (std::vector<std::uint64_t>{2, 1, 0}));
}

TEST(EventQueueHealth, HugeIdleGapRealignsInsteadOfZeroFilling)
{
    EventQueue eq;
    eq.setDispatchWindow(ns(1));
    eq.schedule(us(100), [] {}); // 1e5 windows ahead: over the cap
    eq.run();
    EXPECT_TRUE(eq.dispatchWindows().empty());
    EXPECT_EQ(eq.fired(), 1u);
}

// ---------------------------------------------------------------------
// Randomized stress test against a reference model
// ---------------------------------------------------------------------

struct RecordingEvent : public Event
{
    std::vector<int> *log = nullptr;
    int id = 0;
    void fire() override { log->push_back(id); }
};

/** One scheduled entry mirrored outside the queue. */
struct RefEntry
{
    Tick when;
    std::uint64_t seq;
    int id;
};

/**
 * Drives the indexed heap through a long random mix of schedule /
 * deschedule / reschedule / runUntil and checks the exact firing order
 * against a brute-force model that replays the documented contract:
 * earlier tick first, FIFO (by consumed sequence number) within a tick.
 */
TEST(EventQueueStress, RandomOpsMatchReferenceModel)
{
    constexpr int kEvents = 48;
    constexpr int kOps = 5000;

    EventQueue eq;
    std::vector<int> log;
    std::vector<RecordingEvent> events(kEvents);
    for (int i = 0; i < kEvents; ++i) {
        events[i].log = &log;
        events[i].id = i;
    }

    std::vector<RefEntry> model;
    std::uint64_t seq = 0; // mirrors the queue's sequence counter
    std::vector<int> expected;

    std::mt19937 rng(20170205); // fixed: the run must be reproducible
    const auto delta = [&rng] {
        return ns(std::uniform_int_distribution<int>(0, 400)(rng));
    };
    const auto modelFind = [&model](int id) {
        return std::find_if(model.begin(), model.end(),
                            [id](const RefEntry &e) {
                                return e.id == id;
                            });
    };

    for (int op = 0; op < kOps; ++op) {
        RecordingEvent &ev =
            events[std::uniform_int_distribution<int>(
                0, kEvents - 1)(rng)];
        const int action =
            std::uniform_int_distribution<int>(0, 9)(rng);
        if (!ev.scheduled()) {
            const Tick when = eq.now() + delta();
            eq.schedule(&ev, when);
            model.push_back({when, seq++, ev.id});
        } else if (action < 2) {
            eq.deschedule(&ev);
            model.erase(modelFind(ev.id));
        } else if (action < 8) {
            const Tick when = eq.now() + delta();
            eq.reschedule(&ev, when);
            RefEntry &e = *modelFind(ev.id);
            e.when = when;
            e.seq = seq++;
        }

        if (op % 40 == 39) {
            const Tick limit = eq.now() + delta();
            // Everything due by the limit fires in (when, seq) order.
            std::vector<RefEntry> due;
            for (const RefEntry &e : model) {
                if (e.when <= limit)
                    due.push_back(e);
            }
            std::sort(due.begin(), due.end(),
                      [](const RefEntry &a, const RefEntry &b) {
                          return a.when != b.when ? a.when < b.when
                                                  : a.seq < b.seq;
                      });
            for (const RefEntry &e : due) {
                expected.push_back(e.id);
                model.erase(modelFind(e.id));
            }
            eq.runUntil(limit);
            ASSERT_EQ(log, expected) << "diverged at op " << op;
            ASSERT_EQ(eq.pending(), model.size());
        }
    }

    // Drain: everything left fires in model order.
    std::sort(model.begin(), model.end(),
              [](const RefEntry &a, const RefEntry &b) {
                  return a.when != b.when ? a.when < b.when
                                          : a.seq < b.seq;
              });
    for (const RefEntry &e : model)
        expected.push_back(e.id);
    eq.run();
    EXPECT_EQ(log, expected);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueueStress, DestructorReleasesPendingOneShots)
{
    // Pending component-owned events are unhooked but left alive at
    // teardown; pending lambda one-shots are owned by the queue and
    // freed (ASan would flag a leak or double-free here). An unhooked
    // survivor must be safely destructible after its queue is gone.
    CountingEvent survivor;
    {
        EventQueue eq;
        eq.schedule(&survivor, ns(10));
        for (int i = 0; i < 100; ++i)
            eq.schedule(ns(i), [] {});
    }
    EXPECT_EQ(survivor.fired, 0);
}

TEST(EventQueueStress, DestructorToleratesOwnerDyingFirst)
{
    // Components and the queue have independent lifetimes: a Network and
    // its Links can be destroyed while their events still sit in the
    // queue. Under ASan/TSan this test catches any use-after-free.
    auto *orphan = new CountingEvent;
    EventQueue eq;
    eq.schedule(orphan, ns(10));
    eq.schedule(ns(5), [] {});
    delete orphan;
}

TEST(EventQueueStress, DyingOwnerRemovesItsPendingEvents)
{
    // Regression: a component destroyed while its events were still
    // scheduled used to leave dangling heap entries, and the next
    // schedule() dereferenced them while sifting (segfaulted when a
    // test fixture rebuilt a Network on a live queue). A scheduled
    // event now removes itself on destruction.
    EventQueue eq;
    auto *doomed = new CountingEvent;
    eq.schedule(doomed, ns(10));
    EXPECT_EQ(eq.pending(), 1u);
    delete doomed;
    EXPECT_EQ(eq.pending(), 0u);

    CountingEvent later;
    eq.schedule(&later, ns(20));
    eq.run();
    EXPECT_EQ(later.fired, 1);
    EXPECT_EQ(eq.fired(), 1u);
}

} // namespace
} // namespace memnet
