/**
 * @file
 * Tests for the experiment runner and table utilities.
 */

#include <gtest/gtest.h>

#include "memnet/experiment.hh"

namespace memnet
{
namespace
{

SystemConfig
tinyConfig()
{
    SystemConfig cfg;
    cfg.workload = "mixE";
    cfg.topology = TopologyKind::DaisyChain;
    cfg.sizeClass = SizeClass::Small;
    cfg.warmup = us(20);
    cfg.measure = us(100);
    return cfg;
}

TEST(Runner, CachesRepeatRuns)
{
    Runner r;
    r.verbose = false;
    const SystemConfig cfg = tinyConfig();
    r.get(cfg);
    EXPECT_EQ(r.runsExecuted(), 1);
    r.get(cfg);
    EXPECT_EQ(r.runsExecuted(), 1);
    const RunResult &a = r.get(cfg);
    const RunResult &b = r.get(cfg);
    EXPECT_EQ(&a, &b);
}

TEST(Runner, KeyDistinguishesConfigs)
{
    SystemConfig a = tinyConfig();
    SystemConfig b = a;
    EXPECT_EQ(Runner::key(a), Runner::key(b));
    b.alphaPct = 2.5;
    EXPECT_NE(Runner::key(a), Runner::key(b));
    b = a;
    b.topology = TopologyKind::Star;
    EXPECT_NE(Runner::key(a), Runner::key(b));
    b = a;
    b.roo = true;
    EXPECT_NE(Runner::key(a), Runner::key(b));
}

TEST(Runner, KeySeparatesAwareFields)
{
    // The aware block is ','-separated so that a multi-digit
    // ispIterations can never absorb an adjacent flag digit: with the
    // values streamed back to back, {isp=11, cd=0} and {isp=1, cd=1}
    // would both start "110...".
    SystemConfig a = tinyConfig();
    a.policy = Policy::Aware;
    a.aware.ispIterations = 11;
    a.aware.congestionDiscount = false;
    a.aware.wakeCoordination = false;
    a.aware.grantPool = false;

    SystemConfig b = a;
    b.aware.ispIterations = 1;
    b.aware.congestionDiscount = true;
    EXPECT_NE(Runner::key(a), Runner::key(b));

    const std::string k = Runner::key(a);
    EXPECT_NE(k.find("11,0,0,0"), std::string::npos) << k;

    // Every aware field participates in the key.
    for (auto mutate : {+[](SystemConfig &c) { c.aware.ispIterations++; },
                        +[](SystemConfig &c) {
                            c.aware.congestionDiscount =
                                !c.aware.congestionDiscount;
                        },
                        +[](SystemConfig &c) {
                            c.aware.wakeCoordination =
                                !c.aware.wakeCoordination;
                        },
                        +[](SystemConfig &c) {
                            c.aware.grantPool = !c.aware.grantPool;
                        }}) {
        SystemConfig m = a;
        mutate(m);
        EXPECT_NE(Runner::key(a), Runner::key(m));
    }
}

TEST(Runner, FullPowerBaselineStripsManagement)
{
    SystemConfig cfg = tinyConfig();
    cfg.policy = Policy::Aware;
    cfg.mechanism = BwMechanism::Dvfs;
    cfg.roo = true;
    cfg.interleavePages = true;
    const SystemConfig base = Runner::fullPowerBaseline(cfg);
    EXPECT_EQ(base.policy, Policy::FullPower);
    EXPECT_EQ(base.mechanism, BwMechanism::None);
    EXPECT_FALSE(base.roo);
    EXPECT_FALSE(base.interleavePages);
    // Workload and topology untouched.
    EXPECT_EQ(base.workload, cfg.workload);
    EXPECT_EQ(base.topology, cfg.topology);
}

TEST(Runner, FullPowerDegradationIsZero)
{
    Runner r;
    r.verbose = false;
    EXPECT_DOUBLE_EQ(r.degradation(tinyConfig()), 0.0);
    EXPECT_DOUBLE_EQ(r.powerReduction(tinyConfig()), 0.0);
}

TEST(Lists, TopologiesAndWorkloadsComplete)
{
    EXPECT_EQ(allTopologies().size(), 4u);
    EXPECT_EQ(workloadNames().size(), 14u);
    EXPECT_EQ(workloadNames().front(), "ua.D");
}

TEST(TextTableTest, FormatsNumbers)
{
    EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
    EXPECT_EQ(TextTable::pct(0.123, 1), "12.3%");
    EXPECT_EQ(TextTable::pct(-0.05, 0), "-5%");
}

TEST(TextTableTest, PrintsAlignedColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1.0"});
    t.addRow({"a-much-longer-label", "2"});
    ::testing::internal::CaptureStdout();
    t.print();
    const std::string out =
        ::testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("a-much-longer-label"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(ConfigTest, DescribeAndNames)
{
    SystemConfig cfg = tinyConfig();
    cfg.policy = Policy::Aware;
    const std::string d = cfg.describe();
    EXPECT_NE(d.find("mixE"), std::string::npos);
    EXPECT_NE(d.find("daisychain"), std::string::npos);
    EXPECT_NE(d.find("small"), std::string::npos);
    EXPECT_NE(d.find("aware"), std::string::npos);
    EXPECT_STREQ(sizeClassName(SizeClass::Big), "big");
    EXPECT_STREQ(policyName(Policy::StaticTaper), "static");
}

TEST(ConfigTest, ChunkBytesPerSizeClass)
{
    SystemConfig cfg;
    cfg.sizeClass = SizeClass::Small;
    EXPECT_EQ(cfg.chunkBytes(), 4ULL << 30);
    cfg.sizeClass = SizeClass::Big;
    EXPECT_EQ(cfg.chunkBytes(), 1ULL << 30);
}

} // namespace
} // namespace memnet
