/**
 * @file
 * Tests for the fault-injection subsystem: injector determinism and
 * validation, retrain packet conservation, lane-failure degradation,
 * error bursts, the stalled-read watchdog, and the system-level
 * acceptance scenario (daisy-chain aware run with a mid-measurement
 * lane failure).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "memnet/multichannel.hh"
#include "memnet/simulator.hh"
#include "mgmt/aware.hh"
#include "net/link.hh"
#include "net/network.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "sim/log.hh"
#include "workload/processor.hh"

namespace memnet
{
namespace
{

// ---------------------------------------------------------------------
// Injector unit tests against a recording target
// ---------------------------------------------------------------------

struct RecordedFault
{
    enum Op { Retrain, LaneFail, BurstOn, BurstOff } op;
    int link;
    Tick at;
};

struct RecordingTarget : public FaultTarget
{
    explicit RecordingTarget(EventQueue &eq, int domains)
        : eq(eq), domains(domains)
    {
    }

    int faultDomains() const override { return domains; }
    void
    injectRetrain(int link, Tick) override
    {
        log.push_back({RecordedFault::Retrain, link, eq.now()});
    }
    void
    injectLaneFailure(int link, int) override
    {
        log.push_back({RecordedFault::LaneFail, link, eq.now()});
    }
    void
    injectErrorBurst(int link, double) override
    {
        log.push_back({RecordedFault::BurstOn, link, eq.now()});
    }
    void
    clearErrorBurst(int link) override
    {
        log.push_back({RecordedFault::BurstOff, link, eq.now()});
    }

    EventQueue &eq;
    int domains;
    std::vector<RecordedFault> log;
};

TEST(FaultInjector, EmptyPlanSchedulesNothing)
{
    EventQueue eq;
    RecordingTarget target(eq, 4);
    FaultPlan plan;
    EXPECT_TRUE(plan.empty());
    FaultInjector inj(eq, target, plan, 1);
    inj.start(0);
    eq.run();
    EXPECT_EQ(eq.fired(), 0u);
    EXPECT_TRUE(target.log.empty());
    EXPECT_EQ(inj.stats().total(), 0u);
}

TEST(FaultInjector, ExplicitEventsFireAtTheirTicks)
{
    EventQueue eq;
    RecordingTarget target(eq, 4);
    FaultPlan plan;
    plan.events.push_back(
        {FaultKind::LinkRetrain, us(10), 2, us(1), 8, 0.0});
    plan.events.push_back(
        {FaultKind::LaneFailure, us(20), 0, us(1), 4, 0.0});
    plan.events.push_back(
        {FaultKind::ErrorBurst, us(30), 1, us(5), 8, 0.05});
    FaultInjector inj(eq, target, plan, 1);
    inj.start(0);
    eq.run();

    ASSERT_EQ(target.log.size(), 4u); // burst fires a clear too
    EXPECT_EQ(target.log[0].op, RecordedFault::Retrain);
    EXPECT_EQ(target.log[0].link, 2);
    EXPECT_EQ(target.log[0].at, us(10));
    EXPECT_EQ(target.log[1].op, RecordedFault::LaneFail);
    EXPECT_EQ(target.log[1].at, us(20));
    EXPECT_EQ(target.log[2].op, RecordedFault::BurstOn);
    EXPECT_EQ(target.log[2].at, us(30));
    EXPECT_EQ(target.log[3].op, RecordedFault::BurstOff);
    EXPECT_EQ(target.log[3].at, us(35));
    EXPECT_EQ(inj.stats().retrains, 1u);
    EXPECT_EQ(inj.stats().laneFailures, 1u);
    EXPECT_EQ(inj.stats().errorBursts, 1u);
}

TEST(FaultInjector, BroadcastLinkHitsEveryDomain)
{
    EventQueue eq;
    RecordingTarget target(eq, 3);
    FaultPlan plan;
    plan.events.push_back(
        {FaultKind::LinkRetrain, us(1), -1, us(1), 8, 0.0});
    FaultInjector inj(eq, target, plan, 1);
    inj.start(0);
    eq.run();
    ASSERT_EQ(target.log.size(), 3u);
    for (int l = 0; l < 3; ++l)
        EXPECT_EQ(target.log[l].link, l);
}

TEST(FaultInjector, RejectsOutOfRangePlans)
{
    detail::setThrowOnError(true);
    EventQueue eq;
    RecordingTarget target(eq, 2);

    FaultPlan bad_link;
    bad_link.events.push_back(
        {FaultKind::LinkRetrain, us(1), 7, us(1), 8, 0.0});
    FaultInjector inj1(eq, target, bad_link, 1);
    EXPECT_THROW(inj1.start(0), std::runtime_error);

    FaultPlan bad_lanes;
    bad_lanes.events.push_back(
        {FaultKind::LaneFailure, us(1), 0, us(1), 0, 0.0});
    FaultInjector inj2(eq, target, bad_lanes, 1);
    EXPECT_THROW(inj2.start(0), std::runtime_error);

    FaultPlan bad_rate;
    bad_rate.events.push_back(
        {FaultKind::ErrorBurst, us(1), 0, us(1), 8, 1.5});
    FaultInjector inj3(eq, target, bad_rate, 1);
    EXPECT_THROW(inj3.start(0), std::runtime_error);
    detail::setThrowOnError(false);
}

TEST(FaultInjector, FlapScheduleIsSeedDeterministic)
{
    FaultPlan plan;
    plan.flapMeanPeriodPs = us(40);
    plan.flapWindowPs = us(1);

    auto fire_ticks = [&](std::uint64_t seed) {
        EventQueue eq;
        RecordingTarget target(eq, 2);
        FaultInjector inj(eq, target, plan, seed);
        inj.start(0);
        eq.runUntil(us(400));
        std::vector<Tick> ticks;
        for (const RecordedFault &f : target.log)
            ticks.push_back(f.at);
        return ticks;
    };

    const std::vector<Tick> a = fire_ticks(7);
    const std::vector<Tick> b = fire_ticks(7);
    const std::vector<Tick> c = fire_ticks(8);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

// ---------------------------------------------------------------------
// Link-level fault behavior
// ---------------------------------------------------------------------

struct CountSink : public PacketSink
{
    int delivered = 0;
    Tick last = 0;
    void
    accept(Packet *pkt, Tick now) override
    {
        ++delivered;
        last = now;
        delete pkt;
    }
};

Packet *
makeReq(int flits = 5)
{
    Packet *p = new Packet;
    p->type = PacketType::ReadReq;
    p->flits = flits;
    return p;
}

TEST(LinkFaults, RetrainUnderLoadDeliversEveryPacket)
{
    EventQueue eq;
    RooConfig roo;
    CountSink sink;
    Link link(eq, 0, LinkType::Request, 0,
              &ModeTable::forMechanism(BwMechanism::None), &roo, 1.0,
              &sink);
    for (int i = 0; i < 200; ++i)
        link.enqueue(makeReq());
    // Three retrain windows land mid-stream; the middle pair overlaps.
    eq.schedule(ns(100), [&] { link.beginRetrain(ns(50)); });
    eq.schedule(ns(250), [&] { link.beginRetrain(ns(80)); });
    eq.schedule(ns(300), [&] { link.beginRetrain(ns(80)); });
    eq.run();

    EXPECT_EQ(sink.delivered, 200);
    EXPECT_EQ(link.stats().packets, 200u);
    // The overlapping pair merges into one retrain window.
    EXPECT_EQ(link.stats().retrains, 2u);
    EXPECT_GE(link.stats().replays, 1u);
    EXPECT_GT(link.stats().retrainSeconds, 0.0);
    EXPECT_FALSE(link.retraining());
}

TEST(LinkFaults, RetrainOnIdleRooLinkWakesAndResumesService)
{
    EventQueue eq;
    RooConfig roo;
    roo.enabled = true;
    CountSink sink;
    Link link(eq, 0, LinkType::Request, 0,
              &ModeTable::forMechanism(BwMechanism::None), &roo, 1.0,
              &sink);
    link.power().setRooMode(0); // 32 ns idle threshold

    // One packet, then a long quiet period: the link turns off.
    link.enqueue(makeReq());
    eq.schedule(us(10), [&] {
        ASSERT_EQ(link.power().rooState(), RooState::Off);
        link.beginRetrain(us(1));
    });
    // Traffic arriving mid-retrain waits and is served afterwards.
    eq.schedule(us(10) + ns(200), [&] { link.enqueue(makeReq()); });
    eq.run();

    EXPECT_EQ(sink.delivered, 2);
    EXPECT_GE(sink.last, us(11));
    // (The link legitimately dozes off again once the queue drains.)
    EXPECT_GT(link.stats().offSeconds, 0.0);
    EXPECT_GT(link.stats().retrainSeconds, 0.0);
}

TEST(LinkFaults, LaneFailureClampsModeSelection)
{
    EventQueue eq;
    RooConfig roo;
    CountSink sink;
    const ModeTable &vwl = ModeTable::forMechanism(BwMechanism::Vwl);
    Link link(eq, 0, LinkType::Request, 0, &vwl, &roo, 1.0, &sink);

    EXPECT_EQ(link.laneLimit(), 16);
    EXPECT_EQ(link.minUsableMode(), 0u);

    link.setLaneLimit(4);
    EXPECT_EQ(link.laneLimit(), 4);
    EXPECT_TRUE(link.power().degraded());
    // VWL modes are 16/8/4/1 lanes: first usable mode is index 2.
    EXPECT_EQ(link.minUsableMode(), 2u);
    EXPECT_LE(vwl.mode(link.minUsableMode()).lanes, 4);

    // Selecting a wider mode silently lands on the clamp.
    link.applyModes(0, 0);
    EXPECT_GE(link.power().modeIndex(), link.minUsableMode());

    // Widening is ignored; further narrowing sticks.
    link.setLaneLimit(8);
    EXPECT_EQ(link.laneLimit(), 4);
    link.setLaneLimit(1);
    EXPECT_EQ(link.laneLimit(), 1);
    EXPECT_EQ(link.minUsableMode(), 3u);
}

TEST(LinkFaults, DeratedWideModeMatchesEquivalentNarrowMode)
{
    // A 16-lane mode clamped to 4 lanes must serialize and draw power
    // exactly like the native 4-lane mode (dead lanes stop toggling).
    const ModeTable &vwl = ModeTable::forMechanism(BwMechanism::Vwl);
    RooConfig roo;
    LinkPowerState wide(&vwl, &roo);
    LinkPowerState narrow(&vwl, &roo);
    wide.setLaneClamp(4);
    narrow.setMode(0, 2); // native x4
    EXPECT_EQ(wide.flitTime(us(10)), narrow.flitTime(us(10)));
    EXPECT_DOUBLE_EQ(wide.onPowerFrac(us(10)),
                     narrow.onPowerFrac(us(10)));
}

// ---------------------------------------------------------------------
// Stalled-read watchdog
// ---------------------------------------------------------------------

/** Swallows every packet: the memory network equivalent of a dead link. */
struct BlackHole : public TrafficTarget
{
    void
    inject(Packet *pkt) override
    {
        disposePacket(pkt); // pkt came from the processor's pool
    }
};

TEST(Watchdog, AbortsWhenReadsStopCompleting)
{
    detail::setThrowOnError(true);
    EventQueue eq;
    BlackHole hole;
    ProcessorParams pp;
    pp.watchdogTimeoutPs = us(10);
    Processor proc(eq, hole, workloadByName("ua.D"), pp);
    proc.start(0);
    EXPECT_THROW(eq.runUntil(us(1000)), std::runtime_error);
    EXPECT_GT(proc.outstandingReads(), 0);
    detail::setThrowOnError(false);
}

TEST(Watchdog, StaysQuietOnAHealthyRun)
{
    SystemConfig cfg;
    cfg.workload = "ua.D";
    cfg.warmup = us(20);
    cfg.measure = us(100);
    cfg.watchdogTimeoutPs = us(50); // explicit opt-in, healthy network
    const RunResult r = runSimulation(cfg);
    EXPECT_GT(r.completedReads, 0u);
}

// ---------------------------------------------------------------------
// System-level fault scenarios
// ---------------------------------------------------------------------

SystemConfig
faultBase()
{
    SystemConfig cfg;
    cfg.workload = "mixC";
    cfg.topology = TopologyKind::DaisyChain;
    cfg.sizeClass = SizeClass::Big;
    cfg.warmup = us(50);
    cfg.measure = us(200);
    return cfg;
}

TEST(SystemFaults, CleanRunHasZeroReliabilityCounters)
{
    SystemConfig cfg = faultBase();
    cfg.mechanism = BwMechanism::Vwl;
    cfg.roo = true;
    cfg.policy = Policy::Aware;
    const RunResult r = runSimulation(cfg);
    EXPECT_FALSE(r.reliability.any());
    EXPECT_EQ(r.reliability.retries, 0u);
    EXPECT_EQ(r.reliability.faultEvents, 0u);
    EXPECT_EQ(r.reliability.degradedSeconds, 0.0);
}

TEST(SystemFaults, ErrorBurstRaisesRetriesAndActiveEnergy)
{
    SystemConfig cfg = faultBase();
    const RunResult clean = runSimulation(cfg);

    SystemConfig noisy = cfg;
    noisy.faults.events.push_back(
        {FaultKind::ErrorBurst, us(60), -1, us(150), 8, 0.02});
    const RunResult burst = runSimulation(noisy);

    EXPECT_GT(burst.reliability.retries, 100u);
    EXPECT_GT(burst.reliability.faultEvents, 0u);
    EXPECT_GT(burst.perHmc.activeIoW, clean.perHmc.activeIoW);
    EXPECT_GT(burst.avgReadLatencyNs, clean.avgReadLatencyNs);
    EXPECT_GT(burst.completedReads, 0u);
}

TEST(SystemFaults, RetrainStormCompletesWithoutStarvation)
{
    SystemConfig cfg = faultBase();
    cfg.mechanism = BwMechanism::Vwl;
    cfg.roo = true;
    cfg.policy = Policy::Aware;
    cfg.faults.flapMeanPeriodPs = us(50);
    cfg.faults.flapWindowPs = us(2);
    // The automatic watchdog is armed for fault runs: reaching the end
    // of the run proves no packet wedged anywhere.
    const RunResult r = runSimulation(cfg);
    EXPECT_GT(r.reliability.retrains, 0u);
    EXPECT_GT(r.reliability.retrainSeconds, 0.0);
    EXPECT_GT(r.completedReads, 0u);
}

TEST(SystemFaults, MultiChannelRunsThePlanOnEveryChannel)
{
    MultiChannelConfig mc;
    mc.base = faultBase();
    mc.base.measure = us(100);
    mc.channels = 2;
    mc.base.faults.flapMeanPeriodPs = us(50);
    mc.base.faults.flapWindowPs = us(2);
    // The watchdog is armed automatically for fault runs, so finishing
    // at all proves the retrain storm wedged nothing in either channel.
    const MultiChannelResult r = runMultiChannel(mc);
    EXPECT_GT(r.readsPerSec, 0.0);
    EXPECT_EQ(r.channelPower.size(), 2u);
}

TEST(SystemFaults, SameSeedSamePlanIsBitIdentical)
{
    SystemConfig cfg = faultBase();
    cfg.mechanism = BwMechanism::Vwl;
    cfg.policy = Policy::Unaware;
    cfg.faults.events.push_back(
        {FaultKind::LinkRetrain, us(100), 0, us(5), 8, 0.0});
    cfg.faults.events.push_back(
        {FaultKind::LaneFailure, us(120), 1, us(1), 4, 0.0});
    cfg.faults.events.push_back(
        {FaultKind::ErrorBurst, us(150), -1, us(40), 8, 0.01});
    cfg.faults.flapMeanPeriodPs = us(200);

    const RunResult a = runSimulation(cfg);
    const RunResult b = runSimulation(cfg);
    EXPECT_EQ(a.completedReads, b.completedReads);
    EXPECT_EQ(a.eventsFired, b.eventsFired);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.reliability.retries, b.reliability.retries);
    EXPECT_EQ(a.reliability.retrains, b.reliability.retrains);
    EXPECT_EQ(a.reliability.faultEvents, b.reliability.faultEvents);
    EXPECT_EQ(a.totalNetworkPowerW, b.totalNetworkPowerW);
    EXPECT_EQ(a.avgReadLatencyNs, b.avgReadLatencyNs);
    EXPECT_EQ(a.reliability.degradedSeconds, b.reliability.degradedSeconds);
    EXPECT_GT(a.reliability.degradedSeconds, 0.0);
}

/**
 * Acceptance scenario: a daisy-chain aware run loses 12 of 16 lanes on
 * the root request link mid-measurement. The run must complete with
 * every read serviced (the watchdog guards starvation), the manager
 * must never select a mode wider than the surviving lanes, and the
 * violation feedback must settle rather than storm.
 */
struct LaneFailureRun
{
    std::uint64_t violations = 0;
    std::uint64_t epochs = 0;
    std::uint64_t completedReads = 0;
    int outstandingReads = 0;
    int samples = 0;
};

LaneFailureRun
runDaisyChainAware(bool inject_failure)
{
    const WorkloadProfile &w = workloadByName("mixC");
    Topology topo = Topology::build(TopologyKind::DaisyChain,
                                    w.modulesFor(1ULL << 30));
    EventQueue eq;
    DramParams dram;
    HmcPowerModel pm;
    RooConfig roo;
    roo.enabled = true;
    AddressMap amap;
    amap.chunkBytes = 1ULL << 30;
    Network net(eq, topo, dram, BwMechanism::Vwl, roo, pm, amap);
    ProcessorParams pp;
    pp.watchdogTimeoutPs = us(100);
    Processor proc(eq, net, w, pp);
    ManagerParams mp;
    mp.alphaPct = 5.0;
    AwareManager mgr(net, BwMechanism::Vwl, roo, mp);

    mgr.start(0);
    proc.start(0);

    // Fail the root request link down to 4 lanes mid-run.
    if (inject_failure)
        eq.schedule(us(250), [&] { net.injectLaneFailure(0, 4); });

    // Sample the manager's selections every 10 us after the failure has
    // been through at least one epoch boundary: no link may be selected
    // wider than its surviving lanes.
    LaneFailureRun out;
    for (Tick t = us(400); t <= us(800); t += us(10)) {
        eq.schedule(t, [&] {
            ++out.samples;
            for (int m = 0; m < net.numModules(); ++m) {
                const LinkMgmtState &rs = mgr.requestState(m);
                EXPECT_GE(rs.selected.bw, rs.minUsableBw());
                const Link &l = net.requestLink(m);
                EXPECT_GE(l.power().modeIndex(), l.minUsableMode());
            }
        });
    }

    eq.runUntil(us(800)); // watchdog would throw on starvation

    if (inject_failure) {
        const Link &failed = net.requestLink(0);
        EXPECT_EQ(failed.laneLimit(), 4);
        EXPECT_TRUE(failed.power().degraded());
        EXPECT_GE(failed.power().modeIndex(), failed.minUsableMode());
        EXPECT_EQ(mgr.requestState(0).minUsableBw(),
                  failed.minUsableMode());
        EXPECT_GT(failed.stats().degradedSeconds, 0.0);
    }

    out.violations = mgr.violations();
    out.epochs = mgr.epochs();
    out.completedReads = proc.completedReads();
    out.outstandingReads = proc.outstandingReads();
    return out;
}

TEST(LaneFailureAcceptance, AwareRunSurvivesMidRunLaneFailure)
{
    const LaneFailureRun clean = runDaisyChainAware(false);
    const LaneFailureRun faulty = runDaisyChainAware(true);

    EXPECT_GT(faulty.samples, 30);
    EXPECT_GE(faulty.epochs, 7u);

    // The violation feedback settles instead of storming: losing 3/4 of
    // the root link's lanes must not blow up the violation count
    // relative to this workload's fault-free baseline.
    EXPECT_LT(faulty.violations, 2 * clean.violations + 10);

    // Traffic kept flowing after the failure (degraded, not starved).
    EXPECT_GT(faulty.completedReads, clean.completedReads / 2);
    EXPECT_LE(faulty.outstandingReads, 16 * 12);
}

} // namespace
} // namespace memnet
