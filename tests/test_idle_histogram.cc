/**
 * @file
 * Unit tests for the ROO idle-interval histogram.
 */

#include <gtest/gtest.h>

#include "mgmt/idle_histogram.hh"

namespace memnet
{
namespace
{

std::vector<Tick>
paperThresholds()
{
    return {ns(32), ns(128), ns(512), ns(2048)};
}

TEST(IdleHistogram, ShortIntervalsIgnored)
{
    IdleHistogram h(paperThresholds());
    h.interval(ns(10));
    h.interval(ns(31));
    for (std::size_t r = 0; r < 4; ++r)
        EXPECT_EQ(h.wakeups(r), 0u);
}

TEST(IdleHistogram, WakeupsAreCumulativeFromThreshold)
{
    IdleHistogram h(paperThresholds());
    h.interval(ns(40));   // >= 32 only
    h.interval(ns(200));  // >= 32, 128
    h.interval(ns(600));  // >= 32, 128, 512
    h.interval(ns(5000)); // all
    EXPECT_EQ(h.wakeups(0), 4u);
    EXPECT_EQ(h.wakeups(1), 3u);
    EXPECT_EQ(h.wakeups(2), 2u);
    EXPECT_EQ(h.wakeups(3), 1u);
}

TEST(IdleHistogram, OffTimeSubtractsThreshold)
{
    IdleHistogram h(paperThresholds());
    h.interval(ns(100)); // 32-mode sleeps 68 ns
    h.interval(ns(160)); // 32-mode: 128; 128-mode: 32
    EXPECT_EQ(h.offTime(0), ns(68) + ns(128));
    EXPECT_EQ(h.offTime(1), ns(32));
    EXPECT_EQ(h.offTime(2), 0);
}

TEST(IdleHistogram, OffTimeForLargestThreshold)
{
    IdleHistogram h(paperThresholds());
    h.interval(us(10));
    EXPECT_EQ(h.offTime(3), us(10) - ns(2048));
    EXPECT_EQ(h.wakeups(3), 1u);
}

TEST(IdleHistogram, ExactThresholdCounts)
{
    IdleHistogram h(paperThresholds());
    h.interval(ns(32));
    EXPECT_EQ(h.wakeups(0), 1u);
    EXPECT_EQ(h.offTime(0), 0);
}

TEST(IdleHistogram, ResetClears)
{
    IdleHistogram h(paperThresholds());
    h.interval(us(1));
    h.resetEpoch();
    EXPECT_EQ(h.wakeups(0), 0u);
    EXPECT_EQ(h.offTime(0), 0);
}

TEST(IdleHistogram, OffTimePropertyNonNegativeAndMonotone)
{
    // Property over a pseudo-random interval mix: predicted off time is
    // never negative (each recorded interval is at least its bucket's
    // threshold, hence at least threshold r for every r <= bucket), and
    // it can only shrink as the threshold index grows — a deeper ROO
    // mode waits longer before sleeping, so it never sleeps more.
    IdleHistogram h(paperThresholds());
    std::uint64_t x = 0x9e3779b97f4a7c15ULL;
    for (int i = 0; i < 500; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        h.interval(static_cast<Tick>(x % us(5)));
        for (std::size_t r = 0; r < h.modes(); ++r)
            ASSERT_GE(h.offTime(r), 0) << "after interval " << i;
        for (std::size_t r = 1; r < h.modes(); ++r)
            ASSERT_LE(h.offTime(r), h.offTime(r - 1))
                << "after interval " << i;
    }
}

TEST(IdleHistogram, EmptyThresholdListIsInert)
{
    IdleHistogram h({});
    h.interval(us(1));
    EXPECT_EQ(h.modes(), 0u);
}

} // namespace
} // namespace memnet
