/**
 * @file
 * White-box unit tests of Iterative Slowdown Propagation: drive the
 * AwareManager's redistribute() directly with synthetic counter state
 * and check the budget arithmetic, scatter division and monotonicity
 * enforcement in isolation from full-system noise.
 */

#include <gtest/gtest.h>

#include <memory>

#include "mgmt/aware.hh"
#include "net/network.hh"
#include "sim/event_queue.hh"

namespace memnet
{
namespace
{

/** Exposes the protected policy machinery for testing. */
class IspHarness : public AwareManager
{
  public:
    using AwareManager::AwareManager;
    using AwareManager::redistribute;

    void
    setModuleEpoch(int m, double fel_ps, double ael_ps)
    {
        mods[m].felPs = fel_ps;
        mods[m].aelPs = ael_ps;
    }
};

class IspUnitTest : public ::testing::Test
{
  protected:
    /** A 4-deep daisy chain with VWL links and no ROO. */
    void
    build(BwMechanism mech = BwMechanism::Vwl, int n = 4,
          double alpha = 5.0, AwareOptions opts = {})
    {
        Topology topo = Topology::build(TopologyKind::DaisyChain, n);
        AddressMap amap;
        net = std::make_unique<Network>(eq, topo, dram, mech, roo, pm,
                                        amap);
        ManagerParams mp;
        mp.alphaPct = alpha;
        mgr = std::make_unique<IspHarness>(*net, mech, roo, mp, opts);
        // Not started: we drive redistribute() by hand.
    }

    /** Feed N spaced read arrivals into a link and close its epoch. */
    void
    feedReads(LinkMgmtState &s, int n, int flits = 5)
    {
        for (int i = 0; i < n; ++i)
            s.onReadArrival(ns(100) * i, flits);
        s.epochEnd(us(100));
    }

    EventQueue eq;
    DramParams dram;
    HmcPowerModel pm;
    RooConfig roo; // disabled
    std::unique_ptr<Network> net;
    std::unique_ptr<IspHarness> mgr;
};

TEST_F(IspUnitTest, NoBudgetKeepsEveryLinkFullPower)
{
    build();
    // Traffic on every link but zero AMS (alpha small, big overhead).
    for (int m = 0; m < 4; ++m) {
        feedReads(mgr->requestState(m), 100);
        feedReads(mgr->responseState(m), 100);
        mgr->setModuleEpoch(m, /*fel=*/1e6, /*ael=*/5e6); // deep debt
    }
    mgr->redistribute(0);
    for (int m = 0; m < 4; ++m) {
        EXPECT_EQ(mgr->requestState(m).selected.bw, 0u);
        EXPECT_EQ(mgr->responseState(m).selected.bw, 0u);
    }
    EXPECT_DOUBLE_EQ(mgr->grantPool(), 0.0);
}

TEST_F(IspUnitTest, IdleNetworkDropsToLowestModes)
{
    build();
    for (int m = 0; m < 4; ++m) {
        mgr->requestState(m).epochEnd(us(100)); // zero traffic: FLO 0
        mgr->responseState(m).epochEnd(us(100));
        mgr->setModuleEpoch(m, 1e6, 1e6); // AMS generated, no debt
    }
    mgr->redistribute(0);
    for (int m = 0; m < 4; ++m) {
        EXPECT_EQ(mgr->requestState(m).selected.bw, 3u)
            << "request link " << m;
        EXPECT_EQ(mgr->responseState(m).selected.bw, 3u)
            << "response link " << m;
    }
    // Zero FLO everywhere: the entire budget returns as grant pool.
    EXPECT_NEAR(mgr->grantPool(), 0.05 * 4e6, 1.0);
}

TEST_F(IspUnitTest, BudgetFollowsEquationOneAcrossEpochs)
{
    build();
    // Epoch 1: generate budget.
    for (int m = 0; m < 4; ++m) {
        mgr->requestState(m).epochEnd(us(100));
        mgr->responseState(m).epochEnd(us(100));
        mgr->setModuleEpoch(m, 1e6, 1e6);
    }
    mgr->redistribute(0);
    const double pool1 = mgr->grantPool();
    // Epoch 2: overhead spends some of the cumulative budget.
    for (int m = 0; m < 4; ++m) {
        mgr->requestState(m).epochEnd(us(100));
        mgr->responseState(m).epochEnd(us(100));
        mgr->setModuleEpoch(m, 1e6, 1e6 + 2e4); // 20 ns overhead each
    }
    mgr->redistribute(0);
    // Cumulative: alpha * 8e6 - 8e4 = 4e5 - 8e4.
    EXPECT_NEAR(mgr->grantPool(), 0.05 * 8e6 - 4 * 2e4, 1.0);
    EXPECT_GT(pool1, 0.0);
}

TEST_F(IspUnitTest, BudgetGoesToTheLinkThatCanUseIt)
{
    build();
    // Only module 2's request link has (modest) traffic; everyone
    // else is idle. Give the network a budget that affords module 2's
    // 8-lane mode.
    for (int m = 0; m < 4; ++m) {
        if (m == 2) {
            feedReads(mgr->requestState(m), 50); // flo(8l) = 160 ns
        } else {
            mgr->requestState(m).epochEnd(us(100));
        }
        mgr->responseState(m).epochEnd(us(100));
        mgr->setModuleEpoch(m, m == 2 ? 1e7 : 0.0, m == 2 ? 1e7 : 0.0);
    }
    mgr->redistribute(0);
    // flo(8-lane) for 50 5-flit packets = 50*5*640 ps = 160000 ps;
    // budget alpha=5% of 1e7 = 5e5 ps, plenty. Module 2's request
    // link must leave full power.
    EXPECT_GT(mgr->requestState(2).selected.bw, 0u);
    // Idle links all drop to 1 lane.
    EXPECT_EQ(mgr->requestState(3).selected.bw, 3u);
}

TEST_F(IspUnitTest, MonotonicityHoldsWithUnequalTraffic)
{
    build();
    // Downstream-heavy traffic pattern: module 3's links busiest.
    const int reads[4] = {200, 150, 100, 400};
    for (int m = 0; m < 4; ++m) {
        feedReads(mgr->requestState(m), reads[m]);
        feedReads(mgr->responseState(m), reads[m]);
        mgr->setModuleEpoch(m, 2e6, 2e6);
    }
    mgr->redistribute(0);
    for (int m = 0; m + 1 < 4; ++m) {
        EXPECT_LE(mgr->requestState(m).selected.bw,
                  mgr->requestState(m + 1).selected.bw);
        EXPECT_LE(mgr->responseState(m).selected.bw,
                  mgr->responseState(m + 1).selected.bw);
    }
}

TEST_F(IspUnitTest, SingleIterationDistributesLessThanThree)
{
    AwareOptions one;
    one.ispIterations = 1;
    build(BwMechanism::Vwl, 4, 5.0, one);
    for (int m = 0; m < 4; ++m) {
        feedReads(mgr->requestState(m), 100 * (m + 1));
        mgr->responseState(m).epochEnd(us(100));
        mgr->setModuleEpoch(m, 1e6, 1e6);
    }
    mgr->redistribute(0);
    double total_flo_1 = 0;
    for (int m = 0; m < 4; ++m)
        total_flo_1 += mgr->requestState(m).amsPs;

    // Same scenario with the full three iterations.
    build(BwMechanism::Vwl, 4, 5.0, {});
    for (int m = 0; m < 4; ++m) {
        feedReads(mgr->requestState(m), 100 * (m + 1));
        mgr->responseState(m).epochEnd(us(100));
        mgr->setModuleEpoch(m, 1e6, 1e6);
    }
    mgr->redistribute(0);
    double total_flo_3 = 0;
    for (int m = 0; m < 4; ++m)
        total_flo_3 += mgr->requestState(m).amsPs;

    // More iterations allocate at least as much slowdown budget.
    EXPECT_GE(total_flo_3, total_flo_1);
}

TEST_F(IspUnitTest, CongestionDiscountShrinksDebt)
{
    // Two managers, identical counters except the discount switch.
    double discounted = 0.0, undiscounted = 0.0;
    for (bool discount : {false, true}) {
        AwareOptions opts;
        opts.congestionDiscount = discount;
        build(BwMechanism::Vwl, 4, 5.0, opts);
        for (int m = 0; m < 4; ++m) {
            LinkMgmtState &resp = mgr->responseState(m);
            // Congest the response links: bursts of back-to-back reads.
            for (int i = 0; i < 50; ++i)
                resp.onReadArrival(ns(1), 5);
            resp.epochEnd(us(100));
            mgr->requestState(m).epochEnd(us(100));
            mgr->setModuleEpoch(m, 1e6, 1e6 + 5e4); // debt everywhere
        }
        mgr->redistribute(0);
        if (discount)
            discounted = mgr->grantPool();
        else
            undiscounted = mgr->grantPool();
    }
    // Discounting hidden downstream overhead leaves more budget.
    EXPECT_GE(discounted, undiscounted);
}

} // namespace
} // namespace memnet
