/**
 * @file
 * Tests for the crash-safe run journal (memnet/journal.hh): bit-exact
 * hex-float round-trips, self-checking record framing, torn-tail and
 * corruption rejection, last-wins duplicate handling, and the headline
 * guarantee — a resumed sweep is byte-identical to an uninterrupted
 * one.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <random>
#include <regex>
#include <sstream>

#include "audit/differential.hh"
#include "memnet/experiment.hh"
#include "memnet/journal.hh"
#include "memnet/parallel.hh"
#include "memnet/report.hh"
#include "obs/json.hh"

namespace memnet
{
namespace
{

double
bitsToDouble(std::uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

std::uint64_t
doubleToBits(double d)
{
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

/** A config exercising every serialized field, fault plan included. */
SystemConfig
fancyConfig()
{
    SystemConfig cfg;
    cfg.workload = "mixB";
    cfg.topology = TopologyKind::TernaryTree;
    cfg.sizeClass = SizeClass::Big;
    cfg.mechanism = BwMechanism::Vwl;
    cfg.roo = true;
    cfg.rooWakeupPs = ns(21);
    cfg.ioAttribution = IoAttribution::PerEnd;
    cfg.linkFlitErrorRate = 1.0 / 3.0; // not decimal-representable
    cfg.watchdogTimeoutPs = us(123);
    cfg.policy = Policy::Aware;
    cfg.alphaPct = 7.5;
    cfg.epochLen = us(80);
    cfg.aware.ispIterations = 2;
    cfg.aware.congestionDiscount = false;
    cfg.interleavePages = true;
    cfg.warmup = us(11);
    cfg.measure = us(53);
    // Above 2^53: a double-backed DOM would silently round this.
    cfg.seed = (1ULL << 60) + 12345ULL;
    cfg.cores = 12;
    cfg.maxReadsPerCore = 7;
    cfg.maxWritesPerCore = 21;
    cfg.faults.flapMeanPeriodPs = us(9);
    cfg.faults.flapWindowPs = us(2);
    FaultSpec f;
    f.kind = FaultKind::LinkRetrain;
    f.at = us(15);
    f.link = 3;
    f.durationPs = ns(750);
    f.survivingLanes = 8;
    f.flitErrorRate = 0.1;
    cfg.faults.events.push_back(f);
    return cfg;
}

/** A result with adversarial values in every field. */
RunResult
fancyResult()
{
    RunResult r;
    r.config = fancyConfig();
    r.numModules = 27;
    r.perHmc.idleIoW = 1.0 / 3.0;
    r.perHmc.activeIoW = 0x1.fffffffffffffp-3;
    r.perHmc.logicLeakW = 5e-324; // smallest denormal
    r.perHmc.logicDynW = -0.0;
    r.perHmc.dramLeakW = std::numeric_limits<double>::max();
    r.perHmc.dramDynW = std::numeric_limits<double>::min();
    r.totalNetworkPowerW = 88.25;
    r.idleIoFrac = 0.1; // classic non-representable decimal
    r.readsPerSec = 1.93e8;
    r.avgReadLatencyNs = 58.321;
    r.channelUtil = 0.515;
    r.avgLinkUtil = 0.19;
    r.avgModulesTraversed = 1.48;
    r.completedReads = (1ULL << 61) + 7; // above 2^53
    r.violations = 3;
    r.reliability.retries = 11;
    r.reliability.replays = 5;
    r.reliability.retrains = 2;
    r.reliability.retrainSeconds = 1e-7;
    r.reliability.degradedSeconds = 0.25;
    r.reliability.faultEvents = 4;
    for (int b = 0; b < kUtilBuckets; ++b)
        for (int l = 0; l < kLaneModes; ++l)
            r.linkHours[b][l] = (b * kLaneModes + l) / 7.0;
    r.eventsFired = 289805;
    r.profile.eventsFired = 289805;
    r.profile.eventsScheduled = 289838;
    r.profile.wallSeconds = 0.034;
    r.profile.simSeconds = 150e-6;
    r.profile.packetsIssued = 35487;
    r.profile.packetHeapAllocs = 256;
    r.profile.auditChecksRun = 12;
    r.profile.eventsDescheduled = 9;
    r.profile.peakQueueDepth = 46;
    r.profile.dispatchWindows = {40961, 0, (1ULL << 55) + 3};
    r.profile.dispatchWindowPs = us(100);
    ModuleDetail m;
    m.id = 5;
    m.highRadix = true;
    m.hopDistance = 2;
    m.dramAccesses = 123456789;
    m.flitsRouted = 987654321;
    m.requestLinkUtil = 0.33;
    m.responseLinkUtil = 0.44;
    m.requestLinkPowerFrac = 0.55;
    m.responseLinkPowerFrac = 0.66;
    r.modules.push_back(m);
    m.id = 6;
    m.highRadix = false;
    r.modules.push_back(m);
    return r;
}

/** A tiny real sweep (shared with the resume-equivalence tests). */
std::vector<SystemConfig>
sweepConfigs()
{
    std::vector<SystemConfig> v;
    for (const char *wl : {"mixA", "mixB"}) {
        for (TopologyKind topo :
             {TopologyKind::Star, TopologyKind::DaisyChain}) {
            SystemConfig cfg;
            cfg.workload = wl;
            cfg.topology = topo;
            cfg.policy = Policy::Unaware;
            cfg.mechanism = BwMechanism::Vwl;
            cfg.warmup = us(10);
            cfg.measure = us(50);
            v.push_back(cfg);
        }
    }
    return v;
}

std::string
benchJson(const Runner &runner)
{
    std::ostringstream os;
    writeBenchResultsJson(os, "journal_test", runner.results());
    return os.str();
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

TEST(HexDouble, RoundTripsSpecialValues)
{
    const double specials[] = {
        0.0,
        -0.0,
        1.0,
        -1.0,
        1.0 / 3.0,
        0.1,
        5e-324, // min denormal
        -5e-324,
        std::numeric_limits<double>::min(),
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::lowest(),
        std::numeric_limits<double>::epsilon(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        3.141592653589793,
        2.2250738585072011e-308, // famous strtod stress value
    };
    for (double v : specials) {
        double back = 0.0;
        ASSERT_TRUE(parseHexDouble(hexDouble(v), &back))
            << hexDouble(v);
        EXPECT_EQ(doubleToBits(v), doubleToBits(back))
            << "value " << v << " spelled " << hexDouble(v);
    }
}

TEST(HexDouble, RoundTripsRandomBitPatternsExactly)
{
    std::mt19937_64 rng(20260807);
    int checked = 0;
    while (checked < 10000) {
        const std::uint64_t bits = rng();
        const double v = bitsToDouble(bits);
        if (std::isnan(v))
            continue; // NaN payloads aren't promised through "%a"
        ++checked;
        double back = 0.0;
        ASSERT_TRUE(parseHexDouble(hexDouble(v), &back));
        ASSERT_EQ(bits, doubleToBits(back))
            << "bits " << bits << " spelled " << hexDouble(v);
    }
}

TEST(HexDouble, RejectsPartialAndEmptyInput)
{
    double out = 0.0;
    EXPECT_FALSE(parseHexDouble("", &out));
    EXPECT_FALSE(parseHexDouble("0x1p+1 trailing", &out));
    EXPECT_FALSE(parseHexDouble("zebra", &out));
}

TEST(JournalRecord, RoundTripsEveryFieldExactly)
{
    const RunResult r = fancyResult();
    const std::string k = Runner::key(r.config);
    const std::string line = journalRecordLine(k, r);

    std::string keyBack, err;
    RunResult back;
    ASSERT_TRUE(parseJournalLine(line, &keyBack, &back, &err)) << err;
    EXPECT_EQ(keyBack, k);
    EXPECT_EQ(Runner::key(back.config), k);

    // Everything diffRunResults covers, exactly.
    const auto diffs = audit::diffRunResults(r, back);
    EXPECT_TRUE(diffs.empty()) << audit::describeDiffs(diffs);

    // Fields the differ deliberately ignores must still round-trip.
    EXPECT_EQ(doubleToBits(back.profile.wallSeconds),
              doubleToBits(r.profile.wallSeconds));
    EXPECT_EQ(back.profile.simSeconds, r.profile.simSeconds);
    EXPECT_EQ(back.profile.packetHeapAllocs,
              r.profile.packetHeapAllocs);
    EXPECT_EQ(back.profile.auditChecksRun, r.profile.auditChecksRun);
    EXPECT_EQ(back.profile.dispatchWindowPs,
              r.profile.dispatchWindowPs);
    EXPECT_EQ(back.completedReads, r.completedReads); // > 2^53
    EXPECT_EQ(back.config.seed, r.config.seed);       // > 2^53
    EXPECT_EQ(back.avgReadLatencyNs, r.avgReadLatencyNs);
    EXPECT_EQ(doubleToBits(back.perHmc.logicDynW),
              doubleToBits(r.perHmc.logicDynW)); // -0.0 keeps its sign
    ASSERT_EQ(back.modules.size(), r.modules.size());
    EXPECT_EQ(back.modules[0].id, r.modules[0].id);
    EXPECT_TRUE(back.modules[0].highRadix);
    EXPECT_EQ(back.modules[1].hopDistance, r.modules[1].hopDistance);
    ASSERT_EQ(back.config.faults.events.size(), 1u);
    EXPECT_EQ(back.config.faults.events[0].link, 3);
    EXPECT_EQ(back.config.faults.events[0].flitErrorRate, 0.1);
}

TEST(JournalRecord, RejectsCorruptTruncatedAndForeignLines)
{
    const RunResult r = fancyResult();
    const std::string line =
        journalRecordLine(Runner::key(r.config), r);

    std::string k, err;
    RunResult out;

    // One flipped payload byte: checksum catches it.
    std::string flipped = line;
    flipped[line.size() / 2] ^= 0x01;
    EXPECT_FALSE(parseJournalLine(flipped, &k, &out, &err));
    EXPECT_NE(err.find("checksum"), std::string::npos) << err;

    // Truncation at any interesting depth: framing or checksum fails.
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{10}, line.size() / 4,
          line.size() / 2, line.size() - 2}) {
        EXPECT_FALSE(
            parseJournalLine(line.substr(0, keep), &k, &out, &err))
            << "accepted a record truncated to " << keep << " bytes";
    }

    // Foreign JSON and non-JSON garbage.
    EXPECT_FALSE(parseJournalLine("{\"not\":\"a record\"}", &k, &out,
                                  &err));
    EXPECT_FALSE(parseJournalLine("complete garbage", &k, &out, &err));
}

TEST(JournalRecord, RejectsKeyConfigMismatch)
{
    // Internally consistent line (framing + checksum pass) whose
    // recorded key does not reproduce from its config — the format-
    // drift guard must refuse it.
    const RunResult r = fancyResult();
    const std::string line = journalRecordLine("tampered|key", r);
    std::string k, err;
    RunResult out;
    EXPECT_FALSE(parseJournalLine(line, &k, &out, &err));
    EXPECT_NE(err.find("key mismatch"), std::string::npos) << err;
}

TEST(JournalLoad, SkipsTornTailKeepsEarlierRecords)
{
    const std::string path = tempPath("torn_tail.jsonl");
    RunResult r1 = fancyResult();
    RunResult r2 = fancyResult();
    r2.config.seed = 99; // distinct key
    const std::string l1 = journalRecordLine(Runner::key(r1.config), r1);
    const std::string l2 = journalRecordLine(Runner::key(r2.config), r2);
    {
        std::ofstream os(path);
        // Two whole records, then a record cut mid-write (no newline),
        // exactly what SIGKILL during append leaves behind.
        os << l1 << l2 << l1.substr(0, l1.size() / 2);
    }

    std::map<std::string, RunResult> pool;
    JournalLoadStats stats;
    std::string err;
    ASSERT_TRUE(loadJournal(path, &pool, &stats, &err)) << err;
    EXPECT_EQ(stats.records, 2u);
    EXPECT_EQ(stats.loaded, 2u);
    EXPECT_EQ(stats.corrupt, 1u);
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_TRUE(pool.count(Runner::key(r1.config)));
    EXPECT_TRUE(pool.count(Runner::key(r2.config)));
}

TEST(JournalLoad, DuplicateKeysLastRecordWins)
{
    const std::string path = tempPath("dup_keys.jsonl");
    RunResult first = fancyResult();
    first.totalNetworkPowerW = 1.0;
    RunResult second = fancyResult();
    second.totalNetworkPowerW = 2.0;
    const std::string k = Runner::key(first.config);
    ASSERT_EQ(k, Runner::key(second.config));
    {
        std::ofstream os(path);
        os << journalRecordLine(k, first) << journalRecordLine(k, second);
    }

    std::map<std::string, RunResult> pool;
    JournalLoadStats stats;
    ASSERT_TRUE(loadJournal(path, &pool, &stats, nullptr));
    EXPECT_EQ(stats.records, 2u);
    EXPECT_EQ(stats.duplicates, 1u);
    EXPECT_EQ(stats.loaded, 1u);
    ASSERT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.at(k).totalNetworkPowerW, 2.0);
}

TEST(JournalLoad, MissingFileFails)
{
    std::map<std::string, RunResult> pool;
    std::string err;
    EXPECT_FALSE(loadJournal(tempPath("does_not_exist.jsonl"), &pool,
                             nullptr, &err));
    EXPECT_FALSE(err.empty());
}

TEST(RunJournal, OpenFailsOnUnwritablePath)
{
    RunJournal j(tempPath("no/such/dir/journal.jsonl"));
    EXPECT_FALSE(j.open());
    EXPECT_FALSE(j.ok());
}

TEST(RunJournal, ResumedSweepIsByteIdenticalAndRunsNothing)
{
    const std::vector<SystemConfig> configs = sweepConfigs();
    const std::string path = tempPath("resume_full.jsonl");

    // Uninterrupted journaled sweep.
    Runner original;
    {
        RunJournal journal(path);
        ASSERT_TRUE(journal.open());
        original.setJournal(&journal);
        for (const SystemConfig &cfg : configs)
            original.get(cfg);
        original.setJournal(nullptr);
        EXPECT_EQ(journal.appended(), configs.size());
    }

    // Resume into a fresh Runner: nothing re-simulates and the bench
    // JSON matches byte for byte — wall_s included, because the
    // journal preserved the original's profile bit-exactly.
    Runner resumed;
    std::map<std::string, RunResult> pool;
    ASSERT_TRUE(loadJournal(path, &pool, nullptr, nullptr));
    resumed.addResumePool(std::move(pool));
    for (const SystemConfig &cfg : configs)
        resumed.get(cfg);
    EXPECT_EQ(resumed.runsExecuted(), 0);
    EXPECT_EQ(resumed.resumedHits(),
              static_cast<std::uint64_t>(configs.size()));
    EXPECT_EQ(benchJson(original), benchJson(resumed));

    const auto diffs =
        audit::diffResultMaps(original.results(), resumed.results());
    EXPECT_TRUE(diffs.empty()) << audit::describeDiffs(diffs);
}

TEST(RunJournal, PartialJournalResumesOnlyMissingConfigs)
{
    const std::vector<SystemConfig> configs = sweepConfigs();
    const std::string path = tempPath("resume_partial.jsonl");

    // Journal only the first half — a sweep killed mid-run.
    Runner original;
    {
        RunJournal journal(path);
        ASSERT_TRUE(journal.open());
        original.setJournal(&journal);
        for (std::size_t i = 0; i < configs.size() / 2; ++i)
            original.get(configs[i]);
        original.setJournal(nullptr);
    }
    // Finish the reference sweep without the journal attached.
    for (const SystemConfig &cfg : configs)
        original.get(cfg);

    Runner resumed;
    std::map<std::string, RunResult> pool;
    ASSERT_TRUE(loadJournal(path, &pool, nullptr, nullptr));
    resumed.addResumePool(std::move(pool));
    for (const SystemConfig &cfg : configs)
        resumed.get(cfg);

    EXPECT_EQ(resumed.runsExecuted(),
              static_cast<int>(configs.size() - configs.size() / 2));
    // wall_s differs for the re-simulated half; everything
    // simulation-determined must not.
    const auto diffs =
        audit::diffResultMaps(original.results(), resumed.results());
    EXPECT_TRUE(diffs.empty()) << audit::describeDiffs(diffs);
}

TEST(RunJournal, OpenSealsTornTailBeforeAppending)
{
    // --journal and --resume may name the same file. After a SIGKILL
    // mid-append the file can end in a partial line with no newline;
    // reopening for append must not glue the next record onto the
    // fragment (which would corrupt a good record too).
    const std::vector<SystemConfig> configs = sweepConfigs();
    const std::string path = tempPath("torn_tail.jsonl");

    RunResult r0 = fancyResult();
    r0.config = configs[0];
    const std::string whole =
        journalRecordLine(Runner::key(configs[0]), r0);
    {
        std::ofstream os(path, std::ios::binary);
        os << whole;
        os << whole.substr(0, whole.size() / 2); // torn, no newline
    }

    {
        RunJournal journal(path);
        ASSERT_TRUE(journal.open());
        Runner runner;
        runner.setJournal(&journal);
        runner.get(configs[1]);
        runner.setJournal(nullptr);
        EXPECT_EQ(journal.appended(), 1u);
    }

    std::map<std::string, RunResult> pool;
    JournalLoadStats stats;
    ASSERT_TRUE(loadJournal(path, &pool, &stats, nullptr));
    // Both complete records survive; only the sealed fragment is lost.
    EXPECT_EQ(stats.records, 2u);
    EXPECT_EQ(stats.corrupt, 1u);
    EXPECT_EQ(pool.count(Runner::key(configs[0])), 1u);
    EXPECT_EQ(pool.count(Runner::key(configs[1])), 1u);
}

TEST(RunJournal, ResumePoolIsLazyAndLeaksNothingForeign)
{
    const std::vector<SystemConfig> configs = sweepConfigs();

    // A journal carrying one foreign record (a config this sweep never
    // requests) plus one relevant record.
    RunResult foreign = fancyResult();
    Runner reference;
    const RunResult &relevant = reference.get(configs.front());

    Runner runner;
    std::map<std::string, RunResult> pool;
    pool.emplace(Runner::key(foreign.config), foreign);
    pool.emplace(Runner::key(relevant.config), relevant);
    runner.addResumePool(std::move(pool));

    for (const SystemConfig &cfg : configs)
        runner.get(cfg);
    EXPECT_EQ(runner.resumedHits(), 1u);
    EXPECT_EQ(runner.runsExecuted(),
              static_cast<int>(configs.size()) - 1);
    // results() lists exactly the sweep's own configs.
    EXPECT_EQ(runner.results().size(), configs.size());
    EXPECT_FALSE(runner.results().count(Runner::key(foreign.config)));
}

TEST(FailureManifest, WritesValidJsonWithDedupedEntries)
{
    RunFailure f1;
    f1.config = fancyConfig();
    f1.key = Runner::key(f1.config);
    f1.message = "simulation cancelled by watchdog at t=42 ps";
    f1.timeout = true;
    f1.wallSeconds = 1.5;
    RunFailure dup = f1; // racing duplicate of the same config
    dup.message = "identical second failure";

    std::ostringstream os;
    writeFailureManifest(os, "test_bench", "isolate", 1.25, {f1, dup});

    obs::json::Value doc;
    std::string err;
    ASSERT_TRUE(obs::json::parse(os.str(), &doc, &err)) << err;
    EXPECT_EQ(doc.find("schema_version")->number, 1.0);
    EXPECT_EQ(doc.find("source")->string, "test_bench");
    EXPECT_EQ(doc.find("failure_policy")->string, "isolate");
    const obs::json::Value *failures = doc.find("failures");
    ASSERT_TRUE(failures && failures->isArray());
    ASSERT_EQ(failures->array.size(), 1u); // dedup by key
    const obs::json::Value &e = failures->array[0];
    EXPECT_EQ(e.find("key")->string, f1.key);
    EXPECT_TRUE(e.find("timeout")->boolean);
    EXPECT_EQ(e.find("error")->string, f1.message);
    ASSERT_TRUE(e.find("config") && e.find("config")->isObject());
    EXPECT_EQ(e.find("config")->find("workload")->string, "mixB");
}

} // namespace
} // namespace memnet
