/**
 * @file
 * End-to-end tests of the latency observatory: the per-access
 * decomposition is exact (components sum to the end-to-end latency),
 * the sketch mean reproduces the processor's independently-computed
 * average, stall components appear exactly when their causes (link
 * sleep, retrain windows) are configured, and disabling the
 * observatory zeroes the reported breakdown.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "memnet/multichannel.hh"
#include "memnet/simulator.hh"

namespace memnet
{
namespace
{

SystemConfig
latBase()
{
    SystemConfig cfg;
    cfg.workload = "mixC";
    cfg.topology = TopologyKind::DaisyChain;
    cfg.sizeClass = SizeClass::Big;
    cfg.warmup = us(50);
    cfg.measure = us(200);
    return cfg;
}

/** Exact per-sample identity, summed: the components partition the
 *  end-to-end latency with no gap and no overlap. */
void
expectExactDecomposition(const LatencyBreakdown &lat)
{
    ASSERT_TRUE(lat.enabled);
    EXPECT_EQ(lat.endToEnd.sumPs,
              lat.queue.sumPs + lat.wakeStall.sumPs +
                  lat.retrainStall.sumPs + lat.serialization.sumPs +
                  lat.dram.sumPs);
    for (const LatencyPercentiles *c :
         {&lat.queue, &lat.wakeStall, &lat.retrainStall,
          &lat.serialization, &lat.dram})
        EXPECT_EQ(c->samples, lat.endToEnd.samples);
}

void
expectMonotonePercentiles(const LatencyPercentiles &p)
{
    EXPECT_LE(p.p50Ps, p.p90Ps);
    EXPECT_LE(p.p90Ps, p.p99Ps);
    EXPECT_LE(p.p99Ps, p.p999Ps);
    EXPECT_LE(p.p999Ps, p.maxPs);
}

TEST(LatencyObservatory, FullPowerRunDecomposesExactly)
{
    const RunResult r = runSimulation(latBase());
    ASSERT_TRUE(r.latency.enabled);
    EXPECT_EQ(r.latency.endToEnd.samples, r.completedReads);
    EXPECT_GT(r.latency.endToEnd.samples, 0u);
    expectExactDecomposition(r.latency);
    expectMonotonePercentiles(r.latency.endToEnd);

    // Full power, no ROO, no faults: nothing can stall on a power
    // state, so those components are exactly zero...
    EXPECT_EQ(r.latency.wakeStall.sumPs, 0u);
    EXPECT_EQ(r.latency.retrainStall.sumPs, 0u);
    EXPECT_EQ(r.latency.wakeStallSeconds, 0.0);
    EXPECT_EQ(r.latency.retrainStallSeconds, 0.0);
    // ...while serialization and DRAM service are always present.
    EXPECT_GT(r.latency.serialization.sumPs, 0u);
    EXPECT_GT(r.latency.dram.sumPs, 0u);
}

TEST(LatencyObservatory, SketchMeanMatchesProcessorAverage)
{
    // The sketch's sum is exact (only quantiles are approximate), so
    // sum/samples must reproduce the processor's independently
    // accumulated average read latency to double precision.
    const RunResult r = runSimulation(latBase());
    ASSERT_GT(r.latency.endToEnd.samples, 0u);
    const double mean_ns =
        static_cast<double>(r.latency.endToEnd.sumPs) /
        static_cast<double>(r.latency.endToEnd.samples) / 1000.0;
    EXPECT_NEAR(mean_ns, r.avgReadLatencyNs,
                1e-9 * r.avgReadLatencyNs + 1e-9);
}

TEST(LatencyObservatory, SleepingLinksProduceWakeStall)
{
    // A power-unaware policy with ROO puts links to sleep in front of
    // traffic; the wake stalls it causes must show up in the
    // decomposition — this is the component the paper's Figure 15
    // latency penalty is made of.
    SystemConfig cfg = latBase();
    cfg.workload = "mixE"; // low utilization: links actually sleep
    cfg.mechanism = BwMechanism::Vwl;
    cfg.roo = true;
    cfg.policy = Policy::Unaware;
    const RunResult r = runSimulation(cfg);
    ASSERT_TRUE(r.latency.enabled);
    expectExactDecomposition(r.latency);
    EXPECT_GT(r.latency.wakeStall.sumPs, 0u);
    EXPECT_GT(r.latency.wakeStallSeconds, 0.0);
    EXPECT_EQ(r.latency.retrainStall.sumPs, 0u); // no faults configured
}

TEST(LatencyObservatory, RetrainWindowsProduceRetrainStall)
{
    SystemConfig cfg = latBase();
    // A 5 us retrain on the root request link mid-measurement: every
    // request issued during the window queues behind it.
    cfg.faults.events.push_back(
        {FaultKind::LinkRetrain, us(100), 0, us(5), 8, 0.0});
    const RunResult r = runSimulation(cfg);
    ASSERT_TRUE(r.latency.enabled);
    expectExactDecomposition(r.latency);
    EXPECT_GT(r.latency.retrainStall.sumPs, 0u);
    EXPECT_GT(r.latency.retrainStallSeconds, 0.0);
    EXPECT_GT(r.reliability.retrains, 0u);
}

TEST(LatencyObservatory, QueuePeakIsObservedOnCongestedRuns)
{
    SystemConfig cfg = latBase();
    cfg.workload = "mixA"; // heavy enough that links queue
    const RunResult r = runSimulation(cfg);
    ASSERT_TRUE(r.latency.enabled);
    EXPECT_GE(r.latency.queuePeak, 1u);
}

TEST(LatencyObservatory, DisabledObservatoryReportsNothing)
{
    SystemConfig cfg = latBase();
    cfg.latencyObs = false;
    const RunResult r = runSimulation(cfg);
    EXPECT_FALSE(r.latency.enabled);
    EXPECT_EQ(r.latency.endToEnd.samples, 0u);
    EXPECT_EQ(r.latency.wakeStallSeconds, 0.0);
    EXPECT_EQ(r.latency.queuePeak, 0u);
}

TEST(LatencyObservatory, MultiChannelMergesAcrossChannels)
{
    MultiChannelConfig mc;
    mc.base = latBase();
    mc.base.topology = TopologyKind::Star;
    mc.channels = 2;
    mc.spread = ChannelSpread::InterleaveLines;
    const MultiChannelResult r = runMultiChannel(mc);
    ASSERT_TRUE(r.latency.enabled);
    EXPECT_GT(r.latency.endToEnd.samples, 0u);
    expectExactDecomposition(r.latency);
    expectMonotonePercentiles(r.latency.endToEnd);

    // And the merged sample count is the union of both channels'
    // completed reads (reads/s times the measured window): every read
    // lands in exactly one channel's sketch.
    const double secs = toSeconds(effectiveMeasure(mc.base));
    EXPECT_NEAR(static_cast<double>(r.latency.endToEnd.samples),
                r.readsPerSec * secs, 1.0);
}

} // namespace
} // namespace memnet
