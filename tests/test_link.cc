/**
 * @file
 * Unit tests for the unidirectional link controller: serialization
 * timing, read priority, ROO behavior, energy split, observer hooks.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/link.hh"
#include "sim/event_queue.hh"

namespace memnet
{
namespace
{

/** Sink capturing delivered packets and their arrival times. */
struct CaptureSink : public PacketSink
{
    struct Item
    {
        Packet *pkt;
        Tick when;
    };
    std::vector<Item> items;

    void
    accept(Packet *pkt, Tick now) override
    {
        items.push_back({pkt, now});
    }
};

/** Observer recording hook invocations. */
struct RecordingObserver : public LinkObserver
{
    int enqueues = 0;
    int departs = 0;
    int wakes = 0;
    int sleeps = 0;
    std::vector<Tick> idleIntervals;
    bool allowSleep = true;

    void onEnqueue(Link &, Packet &, Tick) override { ++enqueues; }
    void onDepart(Link &, Packet &, Tick) override { ++departs; }
    void
    onIdleEnd(Link &, Tick start, Tick now) override
    {
        idleIntervals.push_back(now - start);
    }
    bool maySleep(Link &, Tick) override { return allowSleep; }
    void onWakeBegin(Link &, Tick) override { ++wakes; }
    void onSleep(Link &, Tick) override { ++sleeps; }
};

Packet *
makePacket(PacketType type, std::uint64_t id)
{
    Packet *p = new Packet;
    p->id = id;
    p->type = type;
    p->flits = flitsFor(type);
    return p;
}

class LinkTest : public ::testing::Test
{
  protected:
    void
    build(BwMechanism mech, bool roo_on,
          double power_w = 1.0)
    {
        roo.enabled = roo_on;
        link = std::make_unique<Link>(
            eq, 0, LinkType::Request, 0,
            &ModeTable::forMechanism(mech), &roo, power_w, &sink);
        link->setObserver(&obs);
    }

    void
    drainAndFree()
    {
        eq.run();
        for (auto &it : sink.items)
            delete it.pkt;
        sink.items.clear();
    }

    EventQueue eq;
    RooConfig roo;
    CaptureSink sink;
    RecordingObserver obs;
    std::unique_ptr<Link> link;
};

TEST_F(LinkTest, SinglePacketDeliveryTiming)
{
    build(BwMechanism::None, false);
    link->enqueue(makePacket(PacketType::ReadReq, 1));
    eq.run();
    ASSERT_EQ(sink.items.size(), 1u);
    // 1 flit * 0.64 ns + 3.2 ns SERDES + 2.56 ns router.
    EXPECT_EQ(sink.items[0].when,
              640 + LinkTiming::kSerdesPs + LinkTiming::kRouterPs);
    EXPECT_EQ(obs.enqueues, 1);
    EXPECT_EQ(obs.departs, 1);
    drainAndFree();
}

TEST_F(LinkTest, FiveFlitPacketTakesFiveSlots)
{
    build(BwMechanism::None, false);
    link->enqueue(makePacket(PacketType::ReadResp, 1));
    eq.run();
    ASSERT_EQ(sink.items.size(), 1u);
    EXPECT_EQ(sink.items[0].when,
              5 * 640 + LinkTiming::kSerdesPs + LinkTiming::kRouterPs);
    drainAndFree();
}

TEST_F(LinkTest, ReadsPreemptQueuedWrites)
{
    build(BwMechanism::None, false);
    link->enqueue(makePacket(PacketType::WriteReq, 1));
    link->enqueue(makePacket(PacketType::WriteReq, 2));
    link->enqueue(makePacket(PacketType::ReadReq, 3));
    eq.run();
    ASSERT_EQ(sink.items.size(), 3u);
    // Write 1 is already serializing; the read passes write 2.
    EXPECT_EQ(sink.items[0].pkt->id, 1u);
    EXPECT_EQ(sink.items[1].pkt->id, 3u);
    EXPECT_EQ(sink.items[2].pkt->id, 2u);
    drainAndFree();
}

TEST_F(LinkTest, SerializationPipelinesAheadOfSerdes)
{
    build(BwMechanism::None, false);
    link->enqueue(makePacket(PacketType::ReadReq, 1));
    link->enqueue(makePacket(PacketType::ReadReq, 2));
    eq.run();
    ASSERT_EQ(sink.items.size(), 2u);
    // Second starts serializing at 0.64 ns, not after delivery.
    EXPECT_EQ(sink.items[1].when - sink.items[0].when, 640);
    drainAndFree();
}

TEST_F(LinkTest, VwlModeSlowsSerialization)
{
    build(BwMechanism::Vwl, false);
    link->applyModes(2, 0); // 4 lanes
    eq.runUntil(us(2));     // let the transition finish
    link->enqueue(makePacket(PacketType::ReadReq, 1));
    eq.run();
    ASSERT_EQ(sink.items.size(), 1u);
    EXPECT_EQ(sink.items[0].when,
              us(2) + 4 * 640 + LinkTiming::kSerdesPs +
                  LinkTiming::kRouterPs);
    drainAndFree();
}

TEST_F(LinkTest, RooSleepsAfterIdleThreshold)
{
    build(BwMechanism::None, true);
    link->applyModes(0, 0); // 32 ns threshold
    eq.runUntil(ns(100));
    EXPECT_EQ(link->power().rooState(), RooState::Off);
    EXPECT_EQ(obs.sleeps, 1);
}

TEST_F(LinkTest, RooWakeAddsLatency)
{
    build(BwMechanism::None, true);
    link->applyModes(0, 0);
    eq.runUntil(ns(1000)); // asleep now
    link->enqueue(makePacket(PacketType::ReadReq, 1));
    eq.run();
    ASSERT_EQ(sink.items.size(), 1u);
    EXPECT_EQ(obs.wakes, 1);
    EXPECT_EQ(sink.items[0].when,
              ns(1000) + ns(14) + 640 + LinkTiming::kSerdesPs +
                  LinkTiming::kRouterPs);
    drainAndFree();
}

TEST_F(LinkTest, SleepGuardBlocksAndOpportunityRetries)
{
    build(BwMechanism::None, true);
    obs.allowSleep = false;
    link->applyModes(0, 0);
    eq.runUntil(us(1));
    EXPECT_EQ(link->power().rooState(), RooState::On);
    obs.allowSleep = true;
    link->noteSleepOpportunity();
    eq.runUntil(us(2));
    EXPECT_EQ(link->power().rooState(), RooState::Off);
}

TEST_F(LinkTest, ExternalWakeIsHarmlessWhenIdle)
{
    build(BwMechanism::None, true);
    link->applyModes(0, 0);
    eq.runUntil(us(1));
    ASSERT_EQ(link->power().rooState(), RooState::Off);
    link->wakeNow();
    eq.runUntil(us(1) + ns(14));
    EXPECT_EQ(link->power().rooState(), RooState::On);
    // With nothing to send it goes back to sleep after the threshold.
    eq.runUntil(us(2));
    EXPECT_EQ(link->power().rooState(), RooState::Off);
}

TEST_F(LinkTest, IdleIntervalsReported)
{
    build(BwMechanism::None, false);
    link->enqueue(makePacket(PacketType::ReadReq, 1));
    eq.run();
    // Second packet after a gap; the idle interval spans from delivery
    // completion of serialization to the next enqueue.
    eq.runUntil(us(1));
    link->enqueue(makePacket(PacketType::ReadReq, 2));
    eq.run();
    // Two intervals: the initial one (0 -> first enqueue) and the gap.
    ASSERT_EQ(obs.idleIntervals.size(), 2u);
    EXPECT_EQ(obs.idleIntervals[0], 0);
    EXPECT_GT(obs.idleIntervals[1], ns(900));
    drainAndFree();
}

TEST_F(LinkTest, EnergySplitsIdleAndActive)
{
    build(BwMechanism::None, false, /*power_w=*/2.0);
    link->enqueue(makePacket(PacketType::ReadResp, 1)); // 5 flits
    eq.runUntil(us(1));
    link->finishAccounting(us(1));
    const LinkStats &s = link->stats();
    // Active: 3.2 ns of serialization at 2 W.
    EXPECT_NEAR(s.activeIoJ(), 2.0 * 3.2e-9, 1e-15);
    EXPECT_NEAR(s.idleIoJ(), 2.0 * (1e-6 - 3.2e-9), 1e-12);
    // Cause attribution: all active energy is serialization, all idle
    // energy is mode-0 floor (no ROO, no retrain).
    EXPECT_DOUBLE_EQ(s.txJ, s.activeIoJ());
    EXPECT_DOUBLE_EQ(s.idleFloorJ[0], s.idleIoJ());
    drainAndFree();
}

TEST_F(LinkTest, OffStateEnergyIsOnePercent)
{
    build(BwMechanism::None, true, /*power_w=*/2.0);
    link->applyModes(0, 0);
    eq.runUntil(us(1));
    link->finishAccounting(us(1));
    const LinkStats &s = link->stats();
    // 32 ns on + ~968 ns off at 1%.
    const double expected =
        2.0 * 32e-9 + 0.02 * (1e-6 - 32e-9);
    EXPECT_NEAR(s.idleIoJ() + s.activeIoJ(), expected, 1e-12);
    EXPECT_NEAR(s.offSeconds, 1e-6 - 32e-9, 1e-12);
    // The off-state residual is attributed to the sleep bucket.
    EXPECT_NEAR(s.sleepJ, 0.02 * (1e-6 - 32e-9), 1e-12);
    EXPECT_DOUBLE_EQ(s.txJ, 0.0);
}

TEST_F(LinkTest, ModeResidencyTracked)
{
    build(BwMechanism::Vwl, false);
    link->applyModes(3, 0); // 1 lane
    eq.runUntil(us(10));
    link->finishAccounting(us(10));
    const LinkStats &s = link->stats();
    EXPECT_NEAR(s.modeSeconds[3], 10e-6, 1e-12);
    EXPECT_NEAR(s.modeSeconds[0], 0.0, 1e-12);
}

TEST_F(LinkTest, UtilizationFromFlits)
{
    build(BwMechanism::None, false);
    for (int i = 0; i < 100; ++i)
        link->enqueue(makePacket(PacketType::ReadResp, i));
    eq.run();
    link->finishAccounting(eq.now());
    // 500 flits * 16 B over window.
    const double secs = 1e-5;
    EXPECT_NEAR(link->utilization(secs),
                500.0 * 16 / (Link::fullBytesPerSec() * secs), 1e-9);
    drainAndFree();
}

TEST_F(LinkTest, ResetStatsClearsCounters)
{
    build(BwMechanism::None, false);
    link->enqueue(makePacket(PacketType::ReadReq, 1));
    eq.run();
    link->resetStats();
    EXPECT_EQ(link->stats().packets, 0u);
    EXPECT_DOUBLE_EQ(link->stats().activeIoJ(), 0.0);
    drainAndFree();
}

TEST_F(LinkTest, ForceFullPowerRestoresMode)
{
    build(BwMechanism::Vwl, true);
    link->applyModes(3, 0);
    eq.runUntil(us(2));
    link->forceFullPower();
    EXPECT_EQ(link->power().modeIndex(), 0u);
    EXPECT_EQ(link->power().rooModeIndex(), roo.fullModeIndex());
}

} // namespace
} // namespace memnet
