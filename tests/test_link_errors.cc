/**
 * @file
 * Tests for the link CRC/retry error model.
 */

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "memnet/simulator.hh"
#include "net/link.hh"
#include "sim/event_queue.hh"

namespace memnet
{
namespace
{

struct CountSink : public PacketSink
{
    int delivered = 0;
    Tick last = 0;
    void
    accept(Packet *pkt, Tick now) override
    {
        ++delivered;
        last = now;
        delete pkt;
    }
};

Packet *
makeResp()
{
    Packet *p = new Packet;
    p->type = PacketType::ReadResp;
    p->flits = 5;
    return p;
}

class LinkErrorTest : public ::testing::Test
{
  protected:
    void
    build(double fer)
    {
        errors.flitErrorRate = fer;
        link = std::make_unique<Link>(
            eq, 0, LinkType::Request, 0,
            &ModeTable::forMechanism(BwMechanism::None), &roo, 1.0,
            &sink, &errors);
    }

    EventQueue eq;
    RooConfig roo;
    LinkErrorModel errors;
    CountSink sink;
    std::unique_ptr<Link> link;
};

TEST_F(LinkErrorTest, CleanLinkNeverRetries)
{
    build(0.0);
    for (int i = 0; i < 200; ++i)
        link->enqueue(makeResp());
    eq.run();
    EXPECT_EQ(sink.delivered, 200);
    EXPECT_EQ(link->stats().retries, 0u);
}

TEST_F(LinkErrorTest, NoisyLinkRetriesButDelivers)
{
    build(0.02); // ~10% packet error for 5 flits
    for (int i = 0; i < 500; ++i)
        link->enqueue(makeResp());
    eq.run();
    EXPECT_EQ(sink.delivered, 500);
    EXPECT_GT(link->stats().retries, 10u);
    EXPECT_LT(link->stats().retries, 200u);
    // Retransmitted flits count toward utilization/energy.
    EXPECT_EQ(link->stats().flits,
              5 * (500 + link->stats().retries));
}

TEST_F(LinkErrorTest, RetriesAddLatency)
{
    build(0.0);
    link->enqueue(makeResp());
    eq.run();
    const Tick clean = sink.last;

    // Same single packet on a very noisy link takes longer.
    EventQueue eq2;
    CountSink sink2;
    LinkErrorModel noisy;
    noisy.flitErrorRate = 0.2;
    Link link2(eq2, 0, LinkType::Request, 0,
               &ModeTable::forMechanism(BwMechanism::None), &roo, 1.0,
               &sink2, &noisy);
    int attempts = 0;
    while (sink2.delivered == 0 && attempts < 50) {
        // A fresh packet per attempt would skew stats; just run once —
        // the retry loop is internal.
        if (attempts++ == 0)
            link2.enqueue(makeResp());
        eq2.run();
    }
    ASSERT_EQ(sink2.delivered, 1);
    EXPECT_GE(sink2.last, clean);
}

/** Records every idle interval the link reports. */
struct IdleRecorder : public LinkObserver
{
    std::vector<std::pair<Tick, Tick>> intervals;
    void
    onIdleEnd(Link &, Tick idle_start, Tick now) override
    {
        intervals.emplace_back(idle_start, now);
    }
};

/**
 * Regression: a CRC retry lands after the NAK turnaround like a fresh
 * arrival. If the link went idle in between, the retry must close the
 * idle interval (otherwise the ROO histogram sees the retry's own
 * transmission as idleness). Fully deterministic: the first attempt
 * fails at rate 1.0, then the override drops the rate to zero.
 */
TEST_F(LinkErrorTest, RetryLandingOnIdleLinkClosesIdleInterval)
{
    errors.flitErrorRate = 1.0;
    errors.retryDelayPs = us(1);
    IdleRecorder rec;
    Link link2(eq, 0, LinkType::Request, 0,
               &ModeTable::forMechanism(BwMechanism::None), &roo, 1.0,
               &sink, &errors);
    link2.setObserver(&rec);

    link2.enqueue(makeResp()); // NAKed at t=3200
    eq.schedule(ns(4), [&] {
        link2.setErrorRateOverride(0.0);
        link2.enqueue(makeResp()); // clean, done at t=7200
    });
    eq.run();

    EXPECT_EQ(sink.delivered, 2);
    EXPECT_EQ(link2.stats().retries, 1u);
    EXPECT_EQ(link2.stats().packets, 2u);
    // Interval 1 is the trivial one ending at the first enqueue; the
    // retry landing at 3200 + retryDelay must close interval 2, which
    // started when the clean packet finished serializing.
    ASSERT_EQ(rec.intervals.size(), 2u);
    EXPECT_EQ(rec.intervals[1].first, Tick{7200});
    EXPECT_EQ(rec.intervals[1].second, us(1) + Tick{3200});
}

/**
 * Regression: a retry landing on a link that slept during the NAK
 * turnaround must wake it — re-queuing without the wake wedges the
 * packet forever (tryStart returns while the link is off and nothing
 * else will ever call it).
 */
TEST_F(LinkErrorTest, RetryLandingOnSleepingLinkWakesIt)
{
    RooConfig roo_on;
    roo_on.enabled = true;
    errors.flitErrorRate = 1.0;
    errors.retryDelayPs = us(1);
    Link link2(eq, 0, LinkType::Request, 0,
               &ModeTable::forMechanism(BwMechanism::None), &roo_on,
               1.0, &sink, &errors);
    link2.power().setRooMode(0); // 32 ns idle threshold

    link2.enqueue(makeResp());
    eq.schedule(ns(4), [&] {
        link2.setErrorRateOverride(0.0);
        link2.enqueue(makeResp());
    });
    // After the clean packet the link idles and turns off well before
    // the retry lands at ~1.003 us.
    eq.run();

    EXPECT_EQ(sink.delivered, 2);
    EXPECT_EQ(link2.stats().retries, 1u);
    EXPECT_GT(link2.stats().offSeconds, 0.0);
}

/** A retry landing mid-retrain waits for the window, nothing is lost. */
TEST_F(LinkErrorTest, RetryLandingDuringRetrainWaitsForTheWindow)
{
    errors.flitErrorRate = 1.0;
    errors.retryDelayPs = us(1);
    Link link2(eq, 0, LinkType::Request, 0,
               &ModeTable::forMechanism(BwMechanism::None), &roo, 1.0,
               &sink, &errors);

    link2.enqueue(makeResp());
    eq.schedule(ns(4), [&] { link2.setErrorRateOverride(0.0); });
    // Window spans the retry's landing tick (~1.003 us).
    eq.schedule(us(1), [&] { link2.beginRetrain(ns(100)); });
    eq.run();

    EXPECT_EQ(sink.delivered, 1);
    EXPECT_EQ(link2.stats().retrains, 1u);
    EXPECT_EQ(link2.stats().replays, 0u); // link was quiet at injection
    // Serialization restarts only after the retrain window closes.
    EXPECT_GE(sink.last, us(1) + ns(100) + ns(3));
}

TEST_F(LinkErrorTest, SystemLevelErrorsInflatePowerAndLatency)
{
    SystemConfig cfg;
    cfg.workload = "mixE";
    cfg.topology = TopologyKind::Star;
    cfg.sizeClass = SizeClass::Big;
    cfg.warmup = us(50);
    cfg.measure = us(200);
    const RunResult clean = runSimulation(cfg);
    cfg.linkFlitErrorRate = 0.02;
    const RunResult noisy = runSimulation(cfg);
    EXPECT_GT(noisy.avgReadLatencyNs, clean.avgReadLatencyNs);
    // Retransmissions burn extra active-I/O energy.
    EXPECT_GT(noisy.perHmc.activeIoW, clean.perHmc.activeIoW);
    EXPECT_EQ(noisy.completedReads + 0, noisy.completedReads); // sane
    EXPECT_GT(noisy.completedReads, 1000u);
}

} // namespace
} // namespace memnet
