/**
 * @file
 * Tests for the link CRC/retry error model.
 */

#include <gtest/gtest.h>

#include <memory>

#include "memnet/simulator.hh"
#include "net/link.hh"
#include "sim/event_queue.hh"

namespace memnet
{
namespace
{

struct CountSink : public PacketSink
{
    int delivered = 0;
    Tick last = 0;
    void
    accept(Packet *pkt, Tick now) override
    {
        ++delivered;
        last = now;
        delete pkt;
    }
};

Packet *
makeResp()
{
    Packet *p = new Packet;
    p->type = PacketType::ReadResp;
    p->flits = 5;
    return p;
}

class LinkErrorTest : public ::testing::Test
{
  protected:
    void
    build(double fer)
    {
        errors.flitErrorRate = fer;
        link = std::make_unique<Link>(
            eq, 0, LinkType::Request, 0,
            &ModeTable::forMechanism(BwMechanism::None), &roo, 1.0,
            &sink, &errors);
    }

    EventQueue eq;
    RooConfig roo;
    LinkErrorModel errors;
    CountSink sink;
    std::unique_ptr<Link> link;
};

TEST_F(LinkErrorTest, CleanLinkNeverRetries)
{
    build(0.0);
    for (int i = 0; i < 200; ++i)
        link->enqueue(makeResp());
    eq.run();
    EXPECT_EQ(sink.delivered, 200);
    EXPECT_EQ(link->stats().retries, 0u);
}

TEST_F(LinkErrorTest, NoisyLinkRetriesButDelivers)
{
    build(0.02); // ~10% packet error for 5 flits
    for (int i = 0; i < 500; ++i)
        link->enqueue(makeResp());
    eq.run();
    EXPECT_EQ(sink.delivered, 500);
    EXPECT_GT(link->stats().retries, 10u);
    EXPECT_LT(link->stats().retries, 200u);
    // Retransmitted flits count toward utilization/energy.
    EXPECT_EQ(link->stats().flits,
              5 * (500 + link->stats().retries));
}

TEST_F(LinkErrorTest, RetriesAddLatency)
{
    build(0.0);
    link->enqueue(makeResp());
    eq.run();
    const Tick clean = sink.last;

    // Same single packet on a very noisy link takes longer.
    EventQueue eq2;
    CountSink sink2;
    LinkErrorModel noisy;
    noisy.flitErrorRate = 0.2;
    Link link2(eq2, 0, LinkType::Request, 0,
               &ModeTable::forMechanism(BwMechanism::None), &roo, 1.0,
               &sink2, &noisy);
    int attempts = 0;
    while (sink2.delivered == 0 && attempts < 50) {
        // A fresh packet per attempt would skew stats; just run once —
        // the retry loop is internal.
        if (attempts++ == 0)
            link2.enqueue(makeResp());
        eq2.run();
    }
    ASSERT_EQ(sink2.delivered, 1);
    EXPECT_GE(sink2.last, clean);
}

TEST_F(LinkErrorTest, SystemLevelErrorsInflatePowerAndLatency)
{
    SystemConfig cfg;
    cfg.workload = "mixE";
    cfg.topology = TopologyKind::Star;
    cfg.sizeClass = SizeClass::Big;
    cfg.warmup = us(50);
    cfg.measure = us(200);
    const RunResult clean = runSimulation(cfg);
    cfg.linkFlitErrorRate = 0.02;
    const RunResult noisy = runSimulation(cfg);
    EXPECT_GT(noisy.avgReadLatencyNs, clean.avgReadLatencyNs);
    // Retransmissions burn extra active-I/O energy.
    EXPECT_GT(noisy.perHmc.activeIoW, clean.perHmc.activeIoW);
    EXPECT_EQ(noisy.completedReads + 0, noisy.completedReads); // sane
    EXPECT_GT(noisy.completedReads, 1000u);
}

} // namespace
} // namespace memnet
