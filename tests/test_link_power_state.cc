/**
 * @file
 * Unit tests for the passive link power state machine.
 */

#include <gtest/gtest.h>

#include "linkpm/link_power_state.hh"

namespace memnet
{
namespace
{

class LinkPowerStateVwl : public ::testing::Test
{
  protected:
    LinkPowerStateVwl()
        : table(&ModeTable::forMechanism(BwMechanism::Vwl))
    {
        roo.enabled = true;
        state = std::make_unique<LinkPowerState>(table, &roo);
    }

    const ModeTable *table;
    RooConfig roo;
    std::unique_ptr<LinkPowerState> state;
};

TEST_F(LinkPowerStateVwl, StartsFullPowerOn)
{
    EXPECT_EQ(state->modeIndex(), 0u);
    EXPECT_EQ(state->rooState(), RooState::On);
    EXPECT_EQ(state->rooModeIndex(), roo.fullModeIndex());
    EXPECT_DOUBLE_EQ(state->powerFrac(0), 1.0);
    EXPECT_EQ(state->flitTime(0), LinkTiming::kFullFlitPs);
}

TEST_F(LinkPowerStateVwl, SetModeStartsTransition)
{
    const Tick end = state->setMode(ns(100), 1); // 8 lanes
    EXPECT_EQ(end, ns(100) + us(1));
    EXPECT_TRUE(state->inTransition(ns(500)));
    EXPECT_FALSE(state->inTransition(end));
}

TEST_F(LinkPowerStateVwl, TransitionUsesWorstOfBothModes)
{
    state->setMode(0, 2); // 16 -> 4 lanes
    // During the transition: bandwidth of the slower mode, power of the
    // higher mode.
    EXPECT_EQ(state->flitTime(ns(10)), LinkTiming::kFullFlitPs * 4);
    EXPECT_DOUBLE_EQ(state->onPowerFrac(ns(10)), 1.0);
    // After: the new mode's numbers.
    EXPECT_EQ(state->flitTime(us(2)), LinkTiming::kFullFlitPs * 4);
    EXPECT_NEAR(state->onPowerFrac(us(2)), 5.0 / 17.0, 1e-12);
}

TEST_F(LinkPowerStateVwl, UpTransitionAlsoWorstCase)
{
    state->setMode(0, 3);       // to 1 lane
    state->setMode(us(2), 0);   // back to 16 lanes
    // Still 1-lane bandwidth and full power during the up transition.
    EXPECT_EQ(state->flitTime(us(2) + ns(10)),
              LinkTiming::kFullFlitPs * 16);
    EXPECT_DOUBLE_EQ(state->onPowerFrac(us(2) + ns(10)), 1.0);
    EXPECT_EQ(state->flitTime(us(4)), LinkTiming::kFullFlitPs);
}

TEST_F(LinkPowerStateVwl, SettingSameModeIsNoOp)
{
    const Tick end = state->setMode(ns(50), 0);
    EXPECT_EQ(end, ns(50));
    EXPECT_FALSE(state->inTransition(ns(50)));
}

TEST_F(LinkPowerStateVwl, RooOffAndWakeSequence)
{
    state->turnOff();
    EXPECT_EQ(state->rooState(), RooState::Off);
    EXPECT_DOUBLE_EQ(state->powerFrac(ns(10)), 0.01);

    const Tick up = state->beginWake(ns(100));
    EXPECT_EQ(up, ns(100) + ns(14));
    EXPECT_EQ(state->rooState(), RooState::Waking);
    // Waking draws full on-state power.
    EXPECT_DOUBLE_EQ(state->powerFrac(ns(105)), 1.0);

    state->finishWake();
    EXPECT_EQ(state->rooState(), RooState::On);
}

TEST_F(LinkPowerStateVwl, RooModeSelectsThreshold)
{
    state->setRooMode(0);
    EXPECT_EQ(state->idleThreshold(), ns(32));
    state->setRooMode(2);
    EXPECT_EQ(state->idleThreshold(), ns(512));
    EXPECT_EQ(state->rooFullModeIndex(), 3u);
}

TEST_F(LinkPowerStateVwl, OffPowerIndependentOfBwMode)
{
    state->setMode(0, 3);
    state->turnOff();
    // Off power is 1% of *full* link power regardless of lane mode.
    EXPECT_DOUBLE_EQ(state->powerFrac(us(5)), 0.01);
}

TEST(LinkPowerStateDvfs, SerdesTracksTransitionWorstCase)
{
    RooConfig roo; // disabled
    LinkPowerState s(&ModeTable::forMechanism(BwMechanism::Dvfs), &roo);
    s.setMode(0, 2); // 50% mode, serdes 6.4 ns
    EXPECT_EQ(s.serdes(ns(10)), nsf(6.4));
    EXPECT_EQ(s.serdes(us(4)), nsf(6.4));
    s.setMode(us(4), 0);
    // Transitioning back up still reports the slower SERDES.
    EXPECT_EQ(s.serdes(us(4) + ns(1)), nsf(6.4));
    EXPECT_EQ(s.serdes(us(8)), LinkTiming::kSerdesPs);
}

TEST(LinkPowerStateNoRoo, RooDisabledDefaults)
{
    RooConfig roo;
    LinkPowerState s(&ModeTable::forMechanism(BwMechanism::Vwl), &roo);
    EXPECT_FALSE(s.rooEnabled());
    EXPECT_EQ(s.rooState(), RooState::On);
    EXPECT_EQ(s.rooModeIndex(), 0u);
}

} // namespace
} // namespace memnet
