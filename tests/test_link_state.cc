/**
 * @file
 * Unit tests for the per-link management state: FLO estimation, combo
 * selection, congestion counters.
 */

#include <gtest/gtest.h>

#include <memory>

#include "mgmt/link_state.hh"
#include "sim/event_queue.hh"

namespace memnet
{
namespace
{

struct NullSink : public PacketSink
{
    void accept(Packet *pkt, Tick) override { delete pkt; }
};

class LinkStateTest : public ::testing::Test
{
  protected:
    void
    build(BwMechanism mech, bool roo_on,
          LinkType type = LinkType::Response)
    {
        roo.enabled = roo_on;
        const ModeTable &table = ModeTable::forMechanism(mech);
        link = std::make_unique<Link>(eq, 0, type, 0, &table, &roo, 1.0,
                                      &sink);
        state = std::make_unique<LinkMgmtState>(*link, table, roo);
    }

    EventQueue eq;
    RooConfig roo;
    NullSink sink;
    std::unique_ptr<Link> link;
    std::unique_ptr<LinkMgmtState> state;
};

TEST_F(LinkStateTest, FloZeroWithNoTraffic)
{
    build(BwMechanism::Vwl, false);
    state->epochEnd(us(100));
    for (const Combo &c : state->combosByPower())
        EXPECT_DOUBLE_EQ(state->flo(c), 0.0);
}

TEST_F(LinkStateTest, FloGrowsForSlowerModes)
{
    build(BwMechanism::Vwl, false);
    for (int i = 0; i < 100; ++i)
        state->onReadArrival(ns(100) * i, 5);
    state->epochEnd(us(100));
    double prev = -1.0;
    for (std::size_t b = 0; b < state->bwModes(); ++b) {
        const double f = state->flo(Combo{b, 0});
        EXPECT_GE(f, prev);
        prev = f;
    }
    // 8-lane mode adds one extra flit time per flit: 100 * 5 * 640 ps.
    EXPECT_DOUBLE_EQ(state->flo(Combo{1, 0}), 100.0 * 5 * 640);
}

TEST_F(LinkStateTest, BestComboRespectsAms)
{
    build(BwMechanism::Vwl, false);
    for (int i = 0; i < 100; ++i)
        state->onReadArrival(ns(100) * i, 5);
    state->epochEnd(us(100));
    // Tiny budget: must stay at full power.
    EXPECT_EQ(state->bestCombo(10.0).bw, 0u);
    // Budget for 8 lanes but not 4: flo(8)=320 ns, flo(4)=960 ns.
    const Combo c = state->bestCombo(5e5);
    EXPECT_EQ(c.bw, 1u);
    // Huge budget: cheapest mode wins.
    EXPECT_EQ(state->bestCombo(1e12).bw, 3u);
}

TEST_F(LinkStateTest, ActualLatencyAndOverhead)
{
    build(BwMechanism::Vwl, false);
    state->onReadArrival(0, 5);
    state->onReadDeparture(0, ns(50));
    // Full-power estimate for one 5-flit packet: 3.2+3.2+2.56 ns.
    EXPECT_DOUBLE_EQ(state->actualLatencyPs(), 50000.0);
    EXPECT_DOUBLE_EQ(state->fullPowerLatencyPs(), 8960.0);
    EXPECT_DOUBLE_EQ(state->overheadPs(), 50000.0 - 8960.0);
}

TEST_F(LinkStateTest, RooFloCountsOnlyExtraWakeups)
{
    build(BwMechanism::None, true, LinkType::Response);
    // Three intervals long enough for 128 ns mode but not 2048 ns.
    state->onIdleInterval(ns(200));
    state->onIdleInterval(ns(300));
    state->onIdleInterval(ns(250));
    // One interval that even the full mode would sleep through.
    state->onIdleInterval(us(10));
    state->epochEnd(us(100));
    // Full mode wakeup (the us(10) interval) is the baseline.
    EXPECT_DOUBLE_EQ(state->flo(Combo{0, 3}), 0.0);
    // 128 ns mode: 3 extra wakeups at 14 ns each (no sampled arrivals).
    EXPECT_DOUBLE_EQ(state->flo(Combo{0, 1}), 3.0 * 14000);
}

TEST_F(LinkStateTest, RequestLinksPayResponseAmplification)
{
    build(BwMechanism::None, true, LinkType::Request);
    // Create sampled arrivals during wake windows: bursts of reads.
    for (int burst = 0; burst < 20; ++burst) {
        const Tick t0 = us(1) * burst;
        for (int j = 0; j < 4; ++j)
            state->onReadArrival(t0 + ns(2) * j, 1);
        state->onIdleInterval(ns(600));
    }
    state->epochEnd(us(100));
    // avg arrivals-during-wake is ~3, so per-wake overhead is
    // 14 ns * (1 + 2*avg) for request links: strictly more than the
    // response-link formula 14 ns * (1 + avg).
    const double flo = state->flo(Combo{0, 0});
    EXPECT_GT(flo, 20.0 * 14000 * (1.0 + 3.0) * 0.9);
}

TEST_F(LinkStateTest, PredictedPowerUsesOffFraction)
{
    build(BwMechanism::None, true);
    // Idle essentially the whole epoch.
    state->onIdleInterval(us(99));
    state->epochEnd(us(100));
    const double p_aggressive = state->predictedPowerFrac(Combo{0, 0});
    const double p_full = state->predictedPowerFrac(Combo{0, 3});
    EXPECT_LT(p_aggressive, 0.05);
    EXPECT_LT(p_full, p_aggressive + 0.05); // both mostly off
    EXPECT_GT(p_full, 0.0);
}

TEST_F(LinkStateTest, CongestionCountersDetectQueuing)
{
    build(BwMechanism::Vwl, false);
    // Twenty packets arriving simultaneously: deep virtual queue.
    for (int i = 0; i < 20; ++i)
        state->onReadArrival(ns(1), 5);
    EXPECT_GT(state->queuedFraction(), 0.5);
    state->epochEnd(us(100));
    EXPECT_GT(state->lastQf, 0.5);
    EXPECT_GT(state->lastQdPs, 0.0);
}

TEST_F(LinkStateTest, NoQueuingForSpacedArrivals)
{
    build(BwMechanism::Vwl, false);
    for (int i = 0; i < 20; ++i)
        state->onReadArrival(us(1) * i, 5);
    EXPECT_DOUBLE_EQ(state->queuedFraction(), 0.0);
}

TEST_F(LinkStateTest, EpochEndResetsInEpochCounters)
{
    build(BwMechanism::Vwl, true);
    state->onReadArrival(0, 5);
    state->onReadDeparture(0, ns(10));
    state->onIdleInterval(us(1));
    state->epochEnd(us(100));
    EXPECT_DOUBLE_EQ(state->actualLatencyPs(), 0.0);
    EXPECT_EQ(state->readPackets(), 0u);
    EXPECT_FALSE(state->forcedFullPower);
    EXPECT_EQ(state->grantsUsed, 0);
}

TEST_F(LinkStateTest, NextLowerPowerWalksOrdering)
{
    build(BwMechanism::Vwl, false);
    state->epochEnd(us(100));
    const auto &ordered = state->combosByPower();
    ASSERT_GE(ordered.size(), 2u);
    Combo lower;
    // The cheapest combo has no lower-power neighbor.
    EXPECT_FALSE(state->nextLowerPower(ordered.front(), &lower));
    // The most expensive one does.
    EXPECT_TRUE(state->nextLowerPower(ordered.back(), &lower));
    EXPECT_LE(state->predictedPowerFrac(lower),
              state->predictedPowerFrac(ordered.back()));
}

TEST_F(LinkStateTest, FullComboIsAlwaysAffordable)
{
    build(BwMechanism::Dvfs, true);
    for (int i = 0; i < 50; ++i)
        state->onReadArrival(ns(10) * i, 5);
    state->onIdleInterval(ns(100));
    state->epochEnd(us(100));
    EXPECT_DOUBLE_EQ(state->flo(state->fullCombo()), 0.0);
    const Combo c = state->bestCombo(0.0);
    EXPECT_DOUBLE_EQ(state->flo(c), 0.0);
}

} // namespace
} // namespace memnet
