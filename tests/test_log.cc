/**
 * @file
 * Tests for the logging/error helpers.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/log.hh"

namespace memnet
{
namespace
{

TEST(Log, PanicAbortsByDefault)
{
    EXPECT_DEATH(memnet_panic("boom ", 42), "panic: boom 42");
}

TEST(Log, FatalExitsWithError)
{
    EXPECT_EXIT(memnet_fatal("bad config: ", "x"),
                ::testing::ExitedWithCode(1), "fatal: bad config: x");
}

TEST(Log, AssertPassesOnTrue)
{
    memnet_assert(1 + 1 == 2, "arithmetic");
    SUCCEED();
}

TEST(Log, AssertDiesOnFalse)
{
    EXPECT_DEATH(memnet_assert(false, "ctx ", 7),
                 "assertion failed.*ctx 7");
}

TEST(Log, ThrowOnErrorHookThrowsInstead)
{
    detail::setThrowOnError(true);
    EXPECT_THROW(memnet_panic("thrown"), std::runtime_error);
    EXPECT_THROW(memnet_fatal("thrown too"), std::runtime_error);
    detail::setThrowOnError(false);
}

TEST(Log, MessageFormatterConcatenatesMixedTypes)
{
    EXPECT_EQ(detail::formatMessage("a=", 1, " b=", 2.5, " c"),
              "a=1 b=2.5 c");
    EXPECT_EQ(detail::formatMessage(), "");
}

TEST(Log, WarnAndInformDoNotTerminate)
{
    memnet_warn("just a warning ", 1);
    memnet_inform("status ", 2);
    SUCCEED();
}

TEST(Log, SinkCapturesWarnAndInformWithLevels)
{
    std::vector<std::pair<LogLevel, std::string>> captured;
    LogSink prev = setLogSink([&](LogLevel level, const std::string &m) {
        captured.emplace_back(level, m);
    });
    memnet_warn("disk ", 90, "% full");
    memnet_inform("phase ", 2, " done");
    setLogSink(std::move(prev));

    ASSERT_EQ(captured.size(), 2u);
    EXPECT_EQ(captured[0].first, LogLevel::Warn);
    EXPECT_EQ(captured[0].second, "disk 90% full");
    EXPECT_EQ(captured[1].first, LogLevel::Inform);
    EXPECT_EQ(captured[1].second, "phase 2 done");
}

TEST(Log, SetLogSinkReturnsPreviousAndEmptyRestoresDefault)
{
    int outer = 0, inner = 0;
    LogSink none = setLogSink(
        [&](LogLevel, const std::string &) { ++outer; });
    EXPECT_FALSE(none); // default stderr sink was active

    LogSink prev = setLogSink(
        [&](LogLevel, const std::string &) { ++inner; });
    EXPECT_TRUE(prev);
    memnet_inform("to inner");
    EXPECT_EQ(inner, 1);
    EXPECT_EQ(outer, 0);

    setLogSink(std::move(prev)); // restore the outer capture
    memnet_inform("to outer");
    EXPECT_EQ(outer, 1);

    setLogSink({}); // back to the default stderr sink
    memnet_warn("default again");
    EXPECT_EQ(outer, 1);
    EXPECT_EQ(inner, 1);
}

TEST(Log, LevelNames)
{
    EXPECT_STREQ(logLevelName(LogLevel::Trace), "trace");
    EXPECT_STREQ(logLevelName(LogLevel::Inform), "info");
    EXPECT_STREQ(logLevelName(LogLevel::Warn), "warn");
}

} // namespace
} // namespace memnet
