/**
 * @file
 * Tests for the logging/error helpers.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/log.hh"

namespace memnet
{
namespace
{

TEST(Log, PanicAbortsByDefault)
{
    EXPECT_DEATH(memnet_panic("boom ", 42), "panic: boom 42");
}

TEST(Log, FatalExitsWithError)
{
    EXPECT_EXIT(memnet_fatal("bad config: ", "x"),
                ::testing::ExitedWithCode(1), "fatal: bad config: x");
}

TEST(Log, AssertPassesOnTrue)
{
    memnet_assert(1 + 1 == 2, "arithmetic");
    SUCCEED();
}

TEST(Log, AssertDiesOnFalse)
{
    EXPECT_DEATH(memnet_assert(false, "ctx ", 7),
                 "assertion failed.*ctx 7");
}

TEST(Log, ThrowOnErrorHookThrowsInstead)
{
    detail::setThrowOnError(true);
    EXPECT_THROW(memnet_panic("thrown"), std::runtime_error);
    EXPECT_THROW(memnet_fatal("thrown too"), std::runtime_error);
    detail::setThrowOnError(false);
}

TEST(Log, MessageFormatterConcatenatesMixedTypes)
{
    EXPECT_EQ(detail::formatMessage("a=", 1, " b=", 2.5, " c"),
              "a=1 b=2.5 c");
    EXPECT_EQ(detail::formatMessage(), "");
}

TEST(Log, WarnAndInformDoNotTerminate)
{
    memnet_warn("just a warning ", 1);
    memnet_inform("status ", 2);
    SUCCEED();
}

} // namespace
} // namespace memnet
