/**
 * @file
 * Integration tests for network-aware management (Section VI): ISP
 * monotonicity, power advantage over unaware, wakeup hiding.
 */

#include <gtest/gtest.h>

#include <memory>

#include "memnet/experiment.hh"
#include "memnet/simulator.hh"
#include "mgmt/aware.hh"
#include "net/network.hh"
#include "sim/event_queue.hh"
#include "workload/processor.hh"

namespace memnet
{
namespace
{

SystemConfig
baseConfig(const std::string &wl = "mixC")
{
    SystemConfig cfg;
    cfg.workload = wl;
    cfg.topology = TopologyKind::Star;
    cfg.sizeClass = SizeClass::Big;
    cfg.warmup = us(100);
    cfg.measure = us(400);
    cfg.policy = Policy::Aware;
    cfg.alphaPct = 5.0;
    return cfg;
}

TEST(AwareManager, BeatsUnawareOnPowerVwl)
{
    Runner r;
    r.verbose = false;
    SystemConfig aware = baseConfig();
    aware.mechanism = BwMechanism::Vwl;
    SystemConfig unaware = aware;
    unaware.policy = Policy::Unaware;
    EXPECT_GT(r.powerReduction(aware),
              r.powerReduction(unaware) - 0.005);
}

TEST(AwareManager, BeatsUnawareOnPowerRoo)
{
    Runner r;
    r.verbose = false;
    SystemConfig aware = baseConfig();
    aware.mechanism = BwMechanism::None;
    aware.roo = true;
    SystemConfig unaware = aware;
    unaware.policy = Policy::Unaware;
    EXPECT_GT(r.powerReduction(aware),
              r.powerReduction(unaware) - 0.005);
}

TEST(AwareManager, PerformanceStaysNearAlpha)
{
    Runner r;
    r.verbose = false;
    SystemConfig cfg = baseConfig("mixB");
    cfg.mechanism = BwMechanism::Vwl;
    cfg.roo = true;
    EXPECT_LT(r.degradation(cfg), 0.08);
}

/**
 * Drive a real network + aware manager directly so we can inspect ISP's
 * invariant: an upstream link never runs at a lower power mode than a
 * downstream link of the same type.
 */
class IspInvariantTest : public ::testing::Test
{
  protected:
    void
    run(BwMechanism mech, bool roo_on)
    {
        const WorkloadProfile &w = workloadByName("mixC");
        const std::uint64_t chunk = 1ULL << 30;
        topo = Topology::build(TopologyKind::DaisyChain,
                               w.modulesFor(chunk));
        RooConfig *roo = new RooConfig; // leaked in test, fine
        roo->enabled = roo_on;
        AddressMap amap;
        amap.chunkBytes = chunk;
        net = std::make_unique<Network>(eq, topo, dram, mech, *roo, pm,
                                        amap);
        ProcessorParams pp;
        proc = std::make_unique<Processor>(eq, *net, w, pp);
        ManagerParams mp;
        mp.alphaPct = 5.0;
        mgr = std::make_unique<AwareManager>(*net, mech, *roo, mp);
        mgr->start(0);
        proc->start(0);
        eq.runUntil(us(450)); // several epochs
    }

    EventQueue eq;
    DramParams dram;
    HmcPowerModel pm;
    Topology topo{Topology::build(TopologyKind::DaisyChain, 1)};
    std::unique_ptr<Network> net;
    std::unique_ptr<Processor> proc;
    std::unique_ptr<AwareManager> mgr;
};

TEST_F(IspInvariantTest, UpstreamNeverAtLowerBwModeThanDownstream)
{
    run(BwMechanism::Vwl, false);
    ASSERT_GT(mgr->epochs(), 2u);
    // Inspect ISP's selections (the live link mode can additionally be
    // snapped to full power by mid-epoch violation feedback).
    for (int m = 0; m + 1 < net->numModules(); ++m) {
        EXPECT_LE(mgr->requestState(m).selected.bw,
                  mgr->requestState(m + 1).selected.bw)
            << "request link " << m;
        EXPECT_LE(mgr->responseState(m).selected.bw,
                  mgr->responseState(m + 1).selected.bw)
            << "response link " << m;
    }
}

TEST_F(IspInvariantTest, UpstreamRooThresholdAtLeastDownstream)
{
    run(BwMechanism::None, true);
    ASSERT_GT(mgr->epochs(), 2u);
    for (int m = 0; m + 1 < net->numModules(); ++m) {
        EXPECT_GE(mgr->requestState(m).selected.roo,
                  mgr->requestState(m + 1).selected.roo)
            << "request link " << m;
    }
}

TEST_F(IspInvariantTest, ResponseLinksUseAggressiveRooWithCoordination)
{
    run(BwMechanism::None, true);
    for (int m = 0; m < net->numModules(); ++m) {
        if (mgr->responseState(m).forcedFullPower)
            continue; // violation feedback overrides until epoch end
        EXPECT_EQ(net->responseLink(m).power().rooModeIndex(), 0u)
            << "response link " << m;
    }
}

TEST_F(IspInvariantTest, GrantPoolIsNonNegative)
{
    run(BwMechanism::Vwl, true);
    EXPECT_GE(mgr->grantPool(), 0.0);
}

TEST(AwareManager, ShiftsLinkHoursTowardColdLinks)
{
    // Figure 13: network-aware management increases low-power residency
    // of low-utilization links relative to unaware management.
    Runner r;
    r.verbose = false;
    SystemConfig aware = baseConfig("mixB");
    aware.mechanism = BwMechanism::Vwl;
    aware.alphaPct = 2.5;
    SystemConfig unaware = aware;
    unaware.policy = Policy::Unaware;
    const RunResult &ra = r.get(aware);
    const RunResult &ru = r.get(unaware);

    auto narrow_cold = [](const RunResult &res) {
        double t = 0;
        for (int b = 0; b <= 1; ++b) // 0-1% and 1-5% buckets
            for (int lane = 1; lane < kLaneModes; ++lane)
                t += res.linkHours[b][lane];
        return t;
    };
    EXPECT_GE(narrow_cold(ra), narrow_cold(ru) * 0.9);
}

TEST(AwareManager, WorksAcrossAllTopologies)
{
    Runner r;
    r.verbose = false;
    for (TopologyKind k : allTopologies()) {
        SystemConfig cfg = baseConfig("mixE");
        cfg.topology = k;
        cfg.mechanism = BwMechanism::Vwl;
        cfg.roo = true;
        const RunResult &res = r.get(cfg);
        EXPECT_GT(res.completedReads, 100u) << topologyName(k);
        EXPECT_GT(res.totalNetworkPowerW, 0.0) << topologyName(k);
        EXPECT_LT(r.degradation(cfg), 0.15) << topologyName(k);
    }
}

TEST(AwareManager, TwentyNsWakeupStillSaves)
{
    Runner r;
    r.verbose = false;
    SystemConfig cfg = baseConfig();
    cfg.mechanism = BwMechanism::None;
    cfg.roo = true;
    cfg.rooWakeupPs = ns(20);
    EXPECT_GT(r.powerReduction(cfg), 0.0);
}

} // namespace
} // namespace memnet
